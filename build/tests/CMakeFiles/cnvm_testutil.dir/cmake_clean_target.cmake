file(REMOVE_RECURSE
  "libcnvm_testutil.a"
)
