# Empty dependencies file for cnvm_testutil.
# This may be replaced when dependencies are built.
