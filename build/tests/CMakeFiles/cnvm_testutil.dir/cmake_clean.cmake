file(REMOVE_RECURSE
  "CMakeFiles/cnvm_testutil.dir/testutil.cc.o"
  "CMakeFiles/cnvm_testutil.dir/testutil.cc.o.d"
  "libcnvm_testutil.a"
  "libcnvm_testutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_testutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
