
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/test_workloads.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/test_workloads.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/cnvm_testutil.dir/DependInfo.cmake"
  "/root/repo/build/src/runtimes/CMakeFiles/cnvm_runtimes.dir/DependInfo.cmake"
  "/root/repo/build/src/structures/CMakeFiles/cnvm_structs.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cnvm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cnvm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cir/CMakeFiles/cnvm_cir.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/cnvm_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cnvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/cnvm_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/cnvm_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cnvm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cnvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
