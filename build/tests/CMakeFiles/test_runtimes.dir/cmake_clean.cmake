file(REMOVE_RECURSE
  "CMakeFiles/test_runtimes.dir/test_runtimes.cc.o"
  "CMakeFiles/test_runtimes.dir/test_runtimes.cc.o.d"
  "test_runtimes"
  "test_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
