file(REMOVE_RECURSE
  "CMakeFiles/test_cir.dir/test_cir.cc.o"
  "CMakeFiles/test_cir.dir/test_cir.cc.o.d"
  "test_cir"
  "test_cir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
