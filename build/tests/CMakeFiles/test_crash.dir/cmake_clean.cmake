file(REMOVE_RECURSE
  "CMakeFiles/test_crash.dir/test_crash.cc.o"
  "CMakeFiles/test_crash.dir/test_crash.cc.o.d"
  "test_crash"
  "test_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
