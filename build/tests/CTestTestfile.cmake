# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;cnvm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nvm "/root/repo/build/tests/test_nvm")
set_tests_properties(test_nvm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;14;cnvm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_alloc "/root/repo/build/tests/test_alloc")
set_tests_properties(test_alloc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;15;cnvm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtimes "/root/repo/build/tests/test_runtimes")
set_tests_properties(test_runtimes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;16;cnvm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_crash "/root/repo/build/tests/test_crash")
set_tests_properties(test_crash PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;17;cnvm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_structures "/root/repo/build/tests/test_structures")
set_tests_properties(test_structures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;18;cnvm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_apps "/root/repo/build/tests/test_apps")
set_tests_properties(test_apps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;19;cnvm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cir "/root/repo/build/tests/test_cir")
set_tests_properties(test_cir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;20;cnvm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;21;cnvm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;22;cnvm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_txn "/root/repo/build/tests/test_txn")
set_tests_properties(test_txn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;23;cnvm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;24;cnvm_test;/root/repo/tests/CMakeLists.txt;0;")
