# Empty dependencies file for ablation_lazy_begin.
# This may be replaced when dependencies are built.
