file(REMOVE_RECURSE
  "CMakeFiles/ablation_lazy_begin.dir/ablation_lazy_begin.cc.o"
  "CMakeFiles/ablation_lazy_begin.dir/ablation_lazy_begin.cc.o.d"
  "ablation_lazy_begin"
  "ablation_lazy_begin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lazy_begin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
