file(REMOVE_RECURSE
  "CMakeFiles/fig8_ido.dir/fig8_ido.cc.o"
  "CMakeFiles/fig8_ido.dir/fig8_ido.cc.o.d"
  "fig8_ido"
  "fig8_ido.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ido.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
