# Empty compiler generated dependencies file for fig8_ido.
# This may be replaced when dependencies are built.
