file(REMOVE_RECURSE
  "CMakeFiles/fig10_memcached.dir/fig10_memcached.cc.o"
  "CMakeFiles/fig10_memcached.dir/fig10_memcached.cc.o.d"
  "fig10_memcached"
  "fig10_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
