# Empty compiler generated dependencies file for fig10_memcached.
# This may be replaced when dependencies are built.
