file(REMOVE_RECURSE
  "CMakeFiles/fig9_recovery.dir/fig9_recovery.cc.o"
  "CMakeFiles/fig9_recovery.dir/fig9_recovery.cc.o.d"
  "fig9_recovery"
  "fig9_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
