# Empty compiler generated dependencies file for fig9_recovery.
# This may be replaced when dependencies are built.
