file(REMOVE_RECURSE
  "CMakeFiles/fig14_compile_time.dir/fig14_compile_time.cc.o"
  "CMakeFiles/fig14_compile_time.dir/fig14_compile_time.cc.o.d"
  "fig14_compile_time"
  "fig14_compile_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_compile_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
