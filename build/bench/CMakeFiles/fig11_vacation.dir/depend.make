# Empty dependencies file for fig11_vacation.
# This may be replaced when dependencies are built.
