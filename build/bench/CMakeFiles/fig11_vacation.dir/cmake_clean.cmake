file(REMOVE_RECURSE
  "CMakeFiles/fig11_vacation.dir/fig11_vacation.cc.o"
  "CMakeFiles/fig11_vacation.dir/fig11_vacation.cc.o.d"
  "fig11_vacation"
  "fig11_vacation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vacation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
