file(REMOVE_RECURSE
  "CMakeFiles/extra_ycsb_mixes.dir/extra_ycsb_mixes.cc.o"
  "CMakeFiles/extra_ycsb_mixes.dir/extra_ycsb_mixes.cc.o.d"
  "extra_ycsb_mixes"
  "extra_ycsb_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_ycsb_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
