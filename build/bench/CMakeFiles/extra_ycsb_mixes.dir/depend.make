# Empty dependencies file for extra_ycsb_mixes.
# This may be replaced when dependencies are built.
