# Empty dependencies file for fig13_optimization.
# This may be replaced when dependencies are built.
