file(REMOVE_RECURSE
  "CMakeFiles/fig13_optimization.dir/fig13_optimization.cc.o"
  "CMakeFiles/fig13_optimization.dir/fig13_optimization.cc.o.d"
  "fig13_optimization"
  "fig13_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
