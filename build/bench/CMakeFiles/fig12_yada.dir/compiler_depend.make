# Empty compiler generated dependencies file for fig12_yada.
# This may be replaced when dependencies are built.
