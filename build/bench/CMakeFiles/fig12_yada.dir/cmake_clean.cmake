file(REMOVE_RECURSE
  "CMakeFiles/fig12_yada.dir/fig12_yada.cc.o"
  "CMakeFiles/fig12_yada.dir/fig12_yada.cc.o.d"
  "fig12_yada"
  "fig12_yada.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_yada.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
