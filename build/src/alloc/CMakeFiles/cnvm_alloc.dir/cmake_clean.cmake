file(REMOVE_RECURSE
  "CMakeFiles/cnvm_alloc.dir/pm_allocator.cc.o"
  "CMakeFiles/cnvm_alloc.dir/pm_allocator.cc.o.d"
  "libcnvm_alloc.a"
  "libcnvm_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
