
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/pm_allocator.cc" "src/alloc/CMakeFiles/cnvm_alloc.dir/pm_allocator.cc.o" "gcc" "src/alloc/CMakeFiles/cnvm_alloc.dir/pm_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cnvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cnvm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/cnvm_nvm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
