file(REMOVE_RECURSE
  "libcnvm_alloc.a"
)
