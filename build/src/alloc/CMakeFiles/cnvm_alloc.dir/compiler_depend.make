# Empty compiler generated dependencies file for cnvm_alloc.
# This may be replaced when dependencies are built.
