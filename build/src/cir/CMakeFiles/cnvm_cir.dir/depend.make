# Empty dependencies file for cnvm_cir.
# This may be replaced when dependencies are built.
