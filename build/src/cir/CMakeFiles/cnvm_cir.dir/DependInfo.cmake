
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cir/analysis.cc" "src/cir/CMakeFiles/cnvm_cir.dir/analysis.cc.o" "gcc" "src/cir/CMakeFiles/cnvm_cir.dir/analysis.cc.o.d"
  "/root/repo/src/cir/builders.cc" "src/cir/CMakeFiles/cnvm_cir.dir/builders.cc.o" "gcc" "src/cir/CMakeFiles/cnvm_cir.dir/builders.cc.o.d"
  "/root/repo/src/cir/clobber_pass.cc" "src/cir/CMakeFiles/cnvm_cir.dir/clobber_pass.cc.o" "gcc" "src/cir/CMakeFiles/cnvm_cir.dir/clobber_pass.cc.o.d"
  "/root/repo/src/cir/ir.cc" "src/cir/CMakeFiles/cnvm_cir.dir/ir.cc.o" "gcc" "src/cir/CMakeFiles/cnvm_cir.dir/ir.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cnvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
