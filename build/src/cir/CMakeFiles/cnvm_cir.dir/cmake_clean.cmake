file(REMOVE_RECURSE
  "CMakeFiles/cnvm_cir.dir/analysis.cc.o"
  "CMakeFiles/cnvm_cir.dir/analysis.cc.o.d"
  "CMakeFiles/cnvm_cir.dir/builders.cc.o"
  "CMakeFiles/cnvm_cir.dir/builders.cc.o.d"
  "CMakeFiles/cnvm_cir.dir/clobber_pass.cc.o"
  "CMakeFiles/cnvm_cir.dir/clobber_pass.cc.o.d"
  "CMakeFiles/cnvm_cir.dir/ir.cc.o"
  "CMakeFiles/cnvm_cir.dir/ir.cc.o.d"
  "libcnvm_cir.a"
  "libcnvm_cir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_cir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
