file(REMOVE_RECURSE
  "libcnvm_cir.a"
)
