# Empty dependencies file for cnvm_structs.
# This may be replaced when dependencies are built.
