file(REMOVE_RECURSE
  "CMakeFiles/cnvm_structs.dir/avltree.cc.o"
  "CMakeFiles/cnvm_structs.dir/avltree.cc.o.d"
  "CMakeFiles/cnvm_structs.dir/bptree.cc.o"
  "CMakeFiles/cnvm_structs.dir/bptree.cc.o.d"
  "CMakeFiles/cnvm_structs.dir/hashmap.cc.o"
  "CMakeFiles/cnvm_structs.dir/hashmap.cc.o.d"
  "CMakeFiles/cnvm_structs.dir/kv.cc.o"
  "CMakeFiles/cnvm_structs.dir/kv.cc.o.d"
  "CMakeFiles/cnvm_structs.dir/list.cc.o"
  "CMakeFiles/cnvm_structs.dir/list.cc.o.d"
  "CMakeFiles/cnvm_structs.dir/rbtree.cc.o"
  "CMakeFiles/cnvm_structs.dir/rbtree.cc.o.d"
  "CMakeFiles/cnvm_structs.dir/skiplist.cc.o"
  "CMakeFiles/cnvm_structs.dir/skiplist.cc.o.d"
  "libcnvm_structs.a"
  "libcnvm_structs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_structs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
