
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/structures/avltree.cc" "src/structures/CMakeFiles/cnvm_structs.dir/avltree.cc.o" "gcc" "src/structures/CMakeFiles/cnvm_structs.dir/avltree.cc.o.d"
  "/root/repo/src/structures/bptree.cc" "src/structures/CMakeFiles/cnvm_structs.dir/bptree.cc.o" "gcc" "src/structures/CMakeFiles/cnvm_structs.dir/bptree.cc.o.d"
  "/root/repo/src/structures/hashmap.cc" "src/structures/CMakeFiles/cnvm_structs.dir/hashmap.cc.o" "gcc" "src/structures/CMakeFiles/cnvm_structs.dir/hashmap.cc.o.d"
  "/root/repo/src/structures/kv.cc" "src/structures/CMakeFiles/cnvm_structs.dir/kv.cc.o" "gcc" "src/structures/CMakeFiles/cnvm_structs.dir/kv.cc.o.d"
  "/root/repo/src/structures/list.cc" "src/structures/CMakeFiles/cnvm_structs.dir/list.cc.o" "gcc" "src/structures/CMakeFiles/cnvm_structs.dir/list.cc.o.d"
  "/root/repo/src/structures/rbtree.cc" "src/structures/CMakeFiles/cnvm_structs.dir/rbtree.cc.o" "gcc" "src/structures/CMakeFiles/cnvm_structs.dir/rbtree.cc.o.d"
  "/root/repo/src/structures/skiplist.cc" "src/structures/CMakeFiles/cnvm_structs.dir/skiplist.cc.o" "gcc" "src/structures/CMakeFiles/cnvm_structs.dir/skiplist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cnvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cnvm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/cnvm_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cnvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/cnvm_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/cnvm_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
