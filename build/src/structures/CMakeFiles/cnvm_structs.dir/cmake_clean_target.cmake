file(REMOVE_RECURSE
  "libcnvm_structs.a"
)
