# Empty dependencies file for cnvm_runtimes.
# This may be replaced when dependencies are built.
