file(REMOVE_RECURSE
  "libcnvm_runtimes.a"
)
