
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtimes/atlas.cc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/atlas.cc.o" "gcc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/atlas.cc.o.d"
  "/root/repo/src/runtimes/base.cc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/base.cc.o" "gcc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/base.cc.o.d"
  "/root/repo/src/runtimes/clobber.cc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/clobber.cc.o" "gcc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/clobber.cc.o.d"
  "/root/repo/src/runtimes/factory.cc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/factory.cc.o" "gcc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/factory.cc.o.d"
  "/root/repo/src/runtimes/ido.cc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/ido.cc.o" "gcc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/ido.cc.o.d"
  "/root/repo/src/runtimes/nolog.cc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/nolog.cc.o" "gcc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/nolog.cc.o.d"
  "/root/repo/src/runtimes/redo.cc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/redo.cc.o" "gcc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/redo.cc.o.d"
  "/root/repo/src/runtimes/undo.cc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/undo.cc.o" "gcc" "src/runtimes/CMakeFiles/cnvm_runtimes.dir/undo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cnvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cnvm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/cnvm_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cnvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/cnvm_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/cnvm_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
