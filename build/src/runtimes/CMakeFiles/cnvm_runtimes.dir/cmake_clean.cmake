file(REMOVE_RECURSE
  "CMakeFiles/cnvm_runtimes.dir/atlas.cc.o"
  "CMakeFiles/cnvm_runtimes.dir/atlas.cc.o.d"
  "CMakeFiles/cnvm_runtimes.dir/base.cc.o"
  "CMakeFiles/cnvm_runtimes.dir/base.cc.o.d"
  "CMakeFiles/cnvm_runtimes.dir/clobber.cc.o"
  "CMakeFiles/cnvm_runtimes.dir/clobber.cc.o.d"
  "CMakeFiles/cnvm_runtimes.dir/factory.cc.o"
  "CMakeFiles/cnvm_runtimes.dir/factory.cc.o.d"
  "CMakeFiles/cnvm_runtimes.dir/ido.cc.o"
  "CMakeFiles/cnvm_runtimes.dir/ido.cc.o.d"
  "CMakeFiles/cnvm_runtimes.dir/nolog.cc.o"
  "CMakeFiles/cnvm_runtimes.dir/nolog.cc.o.d"
  "CMakeFiles/cnvm_runtimes.dir/redo.cc.o"
  "CMakeFiles/cnvm_runtimes.dir/redo.cc.o.d"
  "CMakeFiles/cnvm_runtimes.dir/undo.cc.o"
  "CMakeFiles/cnvm_runtimes.dir/undo.cc.o.d"
  "libcnvm_runtimes.a"
  "libcnvm_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
