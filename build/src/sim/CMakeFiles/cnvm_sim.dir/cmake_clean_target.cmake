file(REMOVE_RECURSE
  "libcnvm_sim.a"
)
