# Empty dependencies file for cnvm_sim.
# This may be replaced when dependencies are built.
