file(REMOVE_RECURSE
  "CMakeFiles/cnvm_nvm.dir/cache_sim.cc.o"
  "CMakeFiles/cnvm_nvm.dir/cache_sim.cc.o.d"
  "CMakeFiles/cnvm_nvm.dir/hooks.cc.o"
  "CMakeFiles/cnvm_nvm.dir/hooks.cc.o.d"
  "CMakeFiles/cnvm_nvm.dir/pool.cc.o"
  "CMakeFiles/cnvm_nvm.dir/pool.cc.o.d"
  "libcnvm_nvm.a"
  "libcnvm_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
