file(REMOVE_RECURSE
  "libcnvm_txn.a"
)
