file(REMOVE_RECURSE
  "CMakeFiles/cnvm_txn.dir/engine.cc.o"
  "CMakeFiles/cnvm_txn.dir/engine.cc.o.d"
  "CMakeFiles/cnvm_txn.dir/registry.cc.o"
  "CMakeFiles/cnvm_txn.dir/registry.cc.o.d"
  "libcnvm_txn.a"
  "libcnvm_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
