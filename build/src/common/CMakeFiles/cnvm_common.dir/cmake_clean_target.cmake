file(REMOVE_RECURSE
  "libcnvm_common.a"
)
