file(REMOVE_RECURSE
  "CMakeFiles/cnvm_common.dir/error.cc.o"
  "CMakeFiles/cnvm_common.dir/error.cc.o.d"
  "CMakeFiles/cnvm_common.dir/rand.cc.o"
  "CMakeFiles/cnvm_common.dir/rand.cc.o.d"
  "libcnvm_common.a"
  "libcnvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
