# Empty compiler generated dependencies file for cnvm_common.
# This may be replaced when dependencies are built.
