
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/memslap.cc" "src/workloads/CMakeFiles/cnvm_workloads.dir/memslap.cc.o" "gcc" "src/workloads/CMakeFiles/cnvm_workloads.dir/memslap.cc.o.d"
  "/root/repo/src/workloads/ycsb.cc" "src/workloads/CMakeFiles/cnvm_workloads.dir/ycsb.cc.o" "gcc" "src/workloads/CMakeFiles/cnvm_workloads.dir/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cnvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
