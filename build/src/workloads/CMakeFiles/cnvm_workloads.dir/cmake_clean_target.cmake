file(REMOVE_RECURSE
  "libcnvm_workloads.a"
)
