file(REMOVE_RECURSE
  "CMakeFiles/cnvm_workloads.dir/memslap.cc.o"
  "CMakeFiles/cnvm_workloads.dir/memslap.cc.o.d"
  "CMakeFiles/cnvm_workloads.dir/ycsb.cc.o"
  "CMakeFiles/cnvm_workloads.dir/ycsb.cc.o.d"
  "libcnvm_workloads.a"
  "libcnvm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
