file(REMOVE_RECURSE
  "CMakeFiles/cnvm_stats.dir/counters.cc.o"
  "CMakeFiles/cnvm_stats.dir/counters.cc.o.d"
  "CMakeFiles/cnvm_stats.dir/simtime.cc.o"
  "CMakeFiles/cnvm_stats.dir/simtime.cc.o.d"
  "libcnvm_stats.a"
  "libcnvm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
