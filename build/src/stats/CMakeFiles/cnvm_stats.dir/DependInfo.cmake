
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/counters.cc" "src/stats/CMakeFiles/cnvm_stats.dir/counters.cc.o" "gcc" "src/stats/CMakeFiles/cnvm_stats.dir/counters.cc.o.d"
  "/root/repo/src/stats/simtime.cc" "src/stats/CMakeFiles/cnvm_stats.dir/simtime.cc.o" "gcc" "src/stats/CMakeFiles/cnvm_stats.dir/simtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cnvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
