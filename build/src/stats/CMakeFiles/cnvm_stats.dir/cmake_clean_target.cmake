file(REMOVE_RECURSE
  "libcnvm_stats.a"
)
