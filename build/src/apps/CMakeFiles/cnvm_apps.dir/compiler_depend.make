# Empty compiler generated dependencies file for cnvm_apps.
# This may be replaced when dependencies are built.
