file(REMOVE_RECURSE
  "CMakeFiles/cnvm_apps.dir/kv/kv_server.cc.o"
  "CMakeFiles/cnvm_apps.dir/kv/kv_server.cc.o.d"
  "CMakeFiles/cnvm_apps.dir/vacation/vacation.cc.o"
  "CMakeFiles/cnvm_apps.dir/vacation/vacation.cc.o.d"
  "CMakeFiles/cnvm_apps.dir/yada/yada.cc.o"
  "CMakeFiles/cnvm_apps.dir/yada/yada.cc.o.d"
  "libcnvm_apps.a"
  "libcnvm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
