file(REMOVE_RECURSE
  "libcnvm_apps.a"
)
