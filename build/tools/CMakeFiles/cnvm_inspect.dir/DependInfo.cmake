
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/cnvm_inspect.cpp" "tools/CMakeFiles/cnvm_inspect.dir/cnvm_inspect.cpp.o" "gcc" "tools/CMakeFiles/cnvm_inspect.dir/cnvm_inspect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/cnvm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/structures/CMakeFiles/cnvm_structs.dir/DependInfo.cmake"
  "/root/repo/build/src/runtimes/CMakeFiles/cnvm_runtimes.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/cnvm_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/cnvm_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/cnvm_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cnvm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cnvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cnvm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
