# Empty compiler generated dependencies file for cnvm_inspect.
# This may be replaced when dependencies are built.
