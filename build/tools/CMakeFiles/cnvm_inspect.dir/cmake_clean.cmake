file(REMOVE_RECURSE
  "CMakeFiles/cnvm_inspect.dir/cnvm_inspect.cpp.o"
  "CMakeFiles/cnvm_inspect.dir/cnvm_inspect.cpp.o.d"
  "cnvm_inspect"
  "cnvm_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvm_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
