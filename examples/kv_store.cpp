/**
 * @file
 * Example: a persistent key-value store with crash recovery across
 * process restarts.
 *
 * Uses the library's persistent HashMap on a file-backed pool. The
 * first run populates the store and then simulates a power failure in
 * the middle of an insert; rerunning the program reopens the pool,
 * runs recovery (which re-executes the interrupted insert from its
 * v_log), and verifies every record.
 *
 * Run twice:  ./kv_store [pool-file]
 */
#include <cstdio>
#include <string>

#include "alloc/pm_allocator.h"
#include "nvm/pool.h"
#include "runtimes/clobber.h"
#include "structures/hashmap.h"
#include <sys/stat.h>
#include <unistd.h>

using namespace cnvm;

namespace {

std::string
keyOf(int i)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "user%04d", i);
    return buf;
}

std::string
valOf(int i)
{
    return "profile-data-" + std::to_string(int64_t(i) * 1000000007);
}

bool
fileExists(const std::string& path)
{
    struct ::stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string path = argc > 1 ? argv[1] : "/tmp/cnvm_kv_example.pool";
    constexpr int kRecords = 500;

    if (!fileExists(path)) {
        std::printf("[first run] creating pool %s\n", path.c_str());
        nvm::PoolConfig cfg;
        cfg.path = path;
        cfg.size = 64 << 20;
        auto pool = nvm::Pool::create(cfg);
        alloc::PmAllocator heap(*pool);
        rt::ClobberRuntime runtime(*pool, heap);
        txn::Engine eng(runtime);

        ds::KvConfig kvCfg;
        kvCfg.hashShards = 32;
        kvCfg.hashBucketsPerShard = 128;
        ds::HashMap map(eng, 0, kvCfg);
        pool->setRoot(map.rootOff());

        for (int i = 0; i < kRecords; i++)
            map.insert(keyOf(i), valOf(i));
        std::printf("[first run] inserted %d records\n", kRecords);

        // Crash in the middle of one more insert, then "lose power":
        // the process exits without completing the transaction.
        pool->armWriteTrap(8);
        try {
            map.insert(keyOf(kRecords), valOf(kRecords));
        } catch (const nvm::CrashInjected&) {
            std::printf("[first run] simulated crash mid-insert of %s\n",
                        keyOf(kRecords).c_str());
        }
        pool->armWriteTrap(0);
        pool->simulateCrash(/* seed */ 7);
        std::printf("[first run] rerun this program to recover\n");
        return 0;
    }

    std::printf("[second run] reopening pool %s\n", path.c_str());
    std::unique_ptr<nvm::Pool> pool;
    try {
        pool = nvm::Pool::open(path);
    } catch (const nvm::PoolOpenError& e) {
        // A stale or damaged pool (old layout version, truncation,
        // corrupt header) is operator-recoverable: discard it and
        // start over instead of dying on the exception.
        std::printf("[second run] cannot reuse pool: %s\n", e.what());
        ::unlink(path.c_str());
        std::printf("[second run] stale pool removed; run again for a "
                    "fresh demo\n");
        return 0;
    }
    alloc::PmAllocator heap(*pool);
    rt::ClobberRuntime runtime(*pool, heap);
    // Re-executes the interrupted insert from its v_log — unless a
    // fence-eliding log writer (CNVM_LOG_WRITER=zero|zerocached) was
    // in use: then the interrupted transaction's inputs cannot be
    // trusted after a torn crash, so recovery rolls it back
    // best-effort and *declares* the salvage abort instead
    // (DESIGN.md §15).
    auto report = runtime.recover();
    if (report.salvageAborted > 0)
        std::printf("[second run] recovery declared %llu salvage "
                    "abort(s): the interrupted insert was rolled "
                    "back, not re-executed\n",
                    static_cast<unsigned long long>(
                        report.salvageAborted));
    txn::Engine eng(runtime);
    ds::HashMap map(eng, pool->root());

    int present = 0;
    int intact = 0;
    for (int i = 0; i <= kRecords; i++) {
        ds::LookupResult r;
        if (map.lookup(keyOf(i), &r)) {
            present++;
            if (r.str() == valOf(i))
                intact++;
        }
    }
    std::printf("[second run] %d/%d records present, %d intact "
                "(including the interrupted insert)\n",
                present, kRecords + 1, intact);
    std::printf("[second run] store size: %llu\n",
                static_cast<unsigned long long>(map.size()));
    ::unlink(path.c_str());
    std::printf("[second run] pool removed; run again for a fresh "
                "demo\n");
    // Committed records must always survive; the interrupted insert is
    // present exactly when recovery did not declare a salvage abort.
    int expectPresent = kRecords + (report.salvageAborted > 0 ? 0 : 1);
    return present == expectPresent && intact == present ? 0 : 1;
}
