/**
 * @file
 * Quickstart: the paper's Figure 2a list-insert example, end to end.
 *
 * Demonstrates the Clobber-NVM programming model:
 *  - create/open a persistent pool;
 *  - write a transaction as a registered txfunc (the handle recovery
 *    uses to re-execute);
 *  - volatile inputs (the value string) travel in the v_log via the
 *    argument blob — the vlog_preserve equivalent;
 *  - the clobbered input (the list head) is detected and logged by the
 *    runtime automatically;
 *  - after a crash, recovery restores clobbered inputs and re-executes.
 *
 * Run:  ./quickstart [pool-file]
 */
#include <cstdio>
#include <string>

#include "alloc/pm_allocator.h"
#include "nvm/pool.h"
#include "nvm/pptr.h"
#include "runtimes/clobber.h"
#include "stats/counters.h"
#include "txn/txrun.h"

using namespace cnvm;

namespace {

struct Node {
    nvm::PPtr<Node> next;
    uint32_t len;
    // value bytes follow inline
};

struct PListRoot {
    nvm::PPtr<Node> head;
    uint64_t count;
};

/**
 * The txfunc — compare with Figure 2a's plist_ins. There are no
 * TX_ADD-style annotations: the runtime identifies that `root->head`
 * is read and then overwritten (a clobbered input) and undo-logs just
 * that one word.
 */
void
listInsert(txn::Tx& tx, txn::ArgReader& args)
{
    auto root = nvm::PPtr<PListRoot>(args.get<uint64_t>());
    auto value = args.getString();  // preserved volatile input

    auto node = tx.pnew<Node>(value.size());
    tx.st(node->len, static_cast<uint32_t>(value.size()));
    tx.stBytes(node.get() + 1, value.data(), value.size());

    tx.st(node->next, tx.ld(root->head));
    tx.st(root->head, node);  // <- the clobber write
    tx.st(root->count, tx.ld(root->count) + 1);
}

const txn::FuncId kListInsert =
    txn::registerTxFunc("quickstart_list_insert", listInsert);

}  // namespace

int
main(int argc, char** argv)
{
    std::string path = argc > 1 ? argv[1] : "/tmp/cnvm_quickstart.pool";

    // 1. Create the pool and attach allocator + Clobber-NVM runtime.
    nvm::PoolConfig cfg;
    cfg.path = path;
    cfg.size = 16 << 20;
    auto pool = nvm::Pool::create(cfg);
    alloc::PmAllocator heap(*pool);
    rt::ClobberRuntime runtime(*pool, heap);
    txn::Engine eng(runtime);

    // 2. Create the persistent root object.
    static const txn::FuncId kMakeRoot = txn::registerTxFunc(
        "quickstart_make_root", [](txn::Tx& tx, txn::ArgReader&) {
            auto r = tx.pnew<PListRoot>();
            tx.pool().setRoot(r.raw());
        });
    txn::run(eng, kMakeRoot);
    auto root = nvm::PPtr<PListRoot>(pool->root());

    // 3. Insert a few values failure-atomically.
    for (const char* v : {"alpha", "beta", "gamma"})
        txn::run(eng, kListInsert, root.raw(), std::string_view(v));

    std::printf("inserted %llu values:",
                static_cast<unsigned long long>(root->count));
    for (auto n = root->head; !n.isNull(); n = n->next) {
        std::printf(" %.*s", n->len,
                    reinterpret_cast<const char*>(n.get() + 1));
    }
    std::printf("\n");

    // 4. Crash an insert mid-transaction and watch recovery finish it.
    pool->armWriteTrap(9);  // power fails at the 9th NVM write
    try {
        txn::run(eng, kListInsert, root.raw(),
                 std::string_view("delta"));
    } catch (const nvm::CrashInjected&) {
        std::printf("-- simulated power failure mid-transaction --\n");
    }
    pool->armWriteTrap(0);
    pool->cache().crashAllLost();  // volatile caches are gone

    runtime.recover();  // restore clobbered inputs + re-execute

    std::printf("after recovery (%llu values):",
                static_cast<unsigned long long>(root->count));
    for (auto n = root->head; !n.isNull(); n = n->next) {
        std::printf(" %.*s", n->len,
                    reinterpret_cast<const char*>(n.get() + 1));
    }
    std::printf("\n");

    auto snap = stats::aggregate();
    std::printf("clobber_log entries: %llu (bytes: %llu), "
                "v_log entries: %llu, re-executions: %llu\n",
                static_cast<unsigned long long>(
                    snap[stats::Counter::clobberEntries]),
                static_cast<unsigned long long>(
                    snap[stats::Counter::clobberBytes]),
                static_cast<unsigned long long>(
                    snap[stats::Counter::vlogEntries]),
                static_cast<unsigned long long>(
                    snap[stats::Counter::reexecutions]));
    return 0;
}
