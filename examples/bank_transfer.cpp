/**
 * @file
 * Example: failure-atomic bank transfers — the classic multi-write
 * invariant demo, hammered with random crash injection.
 *
 * A transfer debits one account and credits another; the sum of all
 * balances must never change, no matter where a power failure lands.
 * The demo runs hundreds of transfers with crashes injected at random
 * NVM writes, recovering after each, and checks the invariant every
 * time — under Clobber-NVM (roll-forward) and PMDK-style undo
 * (roll-back) side by side.
 *
 * Run:  ./bank_transfer
 */
#include <cstdio>

#include "alloc/pm_allocator.h"
#include "common/rand.h"
#include "nvm/pool.h"
#include "nvm/pptr.h"
#include "runtimes/factory.h"
#include "txn/txrun.h"

using namespace cnvm;

namespace {

constexpr uint64_t kAccounts = 64;
constexpr uint64_t kInitialBalance = 1000;

struct Bank {
    uint64_t balances[kAccounts];
};

void
transferFn(txn::Tx& tx, txn::ArgReader& args)
{
    auto bank = nvm::PPtr<Bank>(args.get<uint64_t>());
    auto from = args.get<uint64_t>();
    auto to = args.get<uint64_t>();
    auto amount = args.get<uint64_t>();
    if (from == to)
        return;

    uint64_t src = tx.ld(bank->balances[from]);
    if (src < amount)
        return;  // insufficient funds: deterministic no-op
    uint64_t dst = tx.ld(bank->balances[to]);
    tx.st(bank->balances[from], src - amount);  // clobber write
    tx.st(bank->balances[to], dst + amount);    // clobber write
}

const txn::FuncId kTransfer =
    txn::registerTxFunc("bank_transfer", transferFn);

uint64_t
totalBalance(nvm::PPtr<Bank> bank)
{
    uint64_t sum = 0;
    for (uint64_t i = 0; i < kAccounts; i++)
        sum += bank->balances[i];
    return sum;
}

int
demo(txn::RuntimeKind kind)
{
    nvm::PoolConfig cfg;
    cfg.size = 32 << 20;
    cfg.maxThreads = 8;
    auto pool = nvm::Pool::create(cfg);
    nvm::Pool::setCurrent(pool.get());
    alloc::PmAllocator heap(*pool);
    auto runtime = rt::makeRuntime(kind, *pool, heap);
    txn::Engine eng(*runtime);

    static const txn::FuncId kMakeBank = txn::registerTxFunc(
        "bank_make", [](txn::Tx& tx, txn::ArgReader&) {
            auto b = tx.pnew<Bank>();
            for (uint64_t i = 0; i < kAccounts; i++)
                tx.st(b->balances[i], kInitialBalance);
            tx.pool().setRoot(b.raw());
        });
    txn::run(eng, kMakeBank);
    auto bank = nvm::PPtr<Bank>(pool->root());

    uint64_t expected = kAccounts * kInitialBalance;
    Xorshift rng(kind == txn::RuntimeKind::clobber ? 11 : 22);
    int crashes = 0;
    int declared = 0;
    for (int i = 0; i < 500; i++) {
        uint64_t from = rng.nextUint(kAccounts);
        uint64_t to = rng.nextUint(kAccounts);
        uint64_t amount = rng.nextUint(200);
        if (rng.nextBool(0.4))
            pool->armWriteTrap(1 + rng.nextUint(12));
        try {
            txn::run(eng, kTransfer, bank.raw(), from, to, amount);
        } catch (const nvm::CrashInjected&) {
            crashes++;
            pool->simulateCrash(rng.next());
            auto report = runtime->recover();
            if (report.salvageAborted > 0) {
                // A fence-eliding log writer (CNVM_LOG_WRITER=zero|
                // zerocached) *declares* a torn mid-flight transfer it
                // could only roll back best-effort instead of hiding
                // it (DESIGN.md §15); conservation restarts from the
                // salvaged total. The default baseline writer never
                // declares here, so the strict invariant holds
                // throughout.
                declared++;
                expected = totalBalance(bank);
            }
        }
        pool->armWriteTrap(0);
        uint64_t total = totalBalance(bank);
        if (total != expected) {
            std::printf("  INVARIANT BROKEN at transfer %d: total %llu "
                        "!= %llu\n",
                        i, static_cast<unsigned long long>(total),
                        static_cast<unsigned long long>(expected));
            return 1;
        }
    }
    if (declared > 0) {
        std::printf("  %-8s: 500 transfers, %d injected crashes, %d "
                    "declared salvage aborts, balance conserved "
                    "between declarations\n",
                    runtime->name(), crashes, declared);
    } else {
        std::printf("  %-8s: 500 transfers, %d injected crashes, "
                    "balance invariant held throughout\n",
                    runtime->name(), crashes);
    }
    nvm::Pool::setCurrent(nullptr);
    return 0;
}

}  // namespace

int
main()
{
    std::printf("bank transfer demo: sum of balances must survive any "
                "crash\n");
    int rc = 0;
    rc |= demo(txn::RuntimeKind::clobber);
    rc |= demo(txn::RuntimeKind::undo);
    rc |= demo(txn::RuntimeKind::redo);
    return rc;
}
