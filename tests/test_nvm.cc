/** @file Unit tests for the pool, cache model, and persistent pointers. */
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/error.h"

#include "common/rand.h"
#include "nvm/pool.h"
#include "nvm/pptr.h"
#include "stats/counters.h"

namespace cnvm::nvm {
namespace {

std::unique_ptr<Pool>
makePool(size_t size = 8 << 20)
{
    PoolConfig cfg;
    cfg.size = size;
    cfg.maxThreads = 4;
    cfg.slotBytes = 64 << 10;
    return Pool::create(cfg);
}

TEST(Pool, CreateAndLayout)
{
    auto p = makePool();
    EXPECT_EQ(p->header().magic, Pool::kMagic);
    EXPECT_EQ(p->size(), 8u << 20);
    EXPECT_EQ(p->maxThreads(), 4u);
    EXPECT_GT(p->heapOff(), 0u);
    EXPECT_LT(p->heapOff(), p->size());
    // Slots are disjoint and inside the pool.
    for (unsigned t = 0; t < 4; t++) {
        auto* s = static_cast<uint8_t*>(p->slot(t));
        EXPECT_TRUE(p->contains(s));
        EXPECT_TRUE(p->contains(s + p->slotBytes() - 1));
    }
    EXPECT_LE(p->offsetOf(p->slot(3)) + p->slotBytes(), p->heapOff());
}

TEST(Pool, WriteReadRoundtrip)
{
    auto p = makePool();
    auto* dst = static_cast<uint8_t*>(p->at(p->heapOff() + 4096));
    const char msg[] = "persistent";
    p->write(dst, msg, sizeof(msg));
    EXPECT_EQ(std::memcmp(dst, msg, sizeof(msg)), 0);
}

TEST(Pool, RootPersists)
{
    auto p = makePool();
    p->setRoot(12345);
    EXPECT_EQ(p->root(), 12345u);
}

TEST(Pool, WriteTrapFires)
{
    auto p = makePool();
    uint64_t x = 1;
    auto* dst = static_cast<uint8_t*>(p->at(p->heapOff() + 4096));
    p->armWriteTrap(2);
    p->write(dst, &x, sizeof(x));  // first write passes
    EXPECT_THROW(p->write(dst, &x, sizeof(x)), CrashInjected);
    // Disarmed after firing.
    p->write(dst, &x, sizeof(x));
}

TEST(CacheSim, UnflushedWriteRevertsOnTotalLoss)
{
    auto p = makePool();
    auto* dst = reinterpret_cast<uint64_t*>(p->at(p->heapOff() + 8192));
    uint64_t before = 0xAAAAAAAAAAAAAAAAull;
    p->write(dst, &before, sizeof(before));
    p->persist(dst, sizeof(before));  // durable floor

    uint64_t after = 0xBBBBBBBBBBBBBBBBull;
    p->write(dst, &after, sizeof(after));
    // No flush/fence: a total-loss crash must revert it.
    p->cache().crashAllLost();
    EXPECT_EQ(*dst, before);
}

TEST(CacheSim, FlushedAndFencedWriteSurvivesAnyCrash)
{
    auto p = makePool();
    auto* dst = reinterpret_cast<uint64_t*>(p->at(p->heapOff() + 8192));
    uint64_t v = 0x1234567890ABCDEFull;
    p->write(dst, &v, sizeof(v));
    p->persist(dst, sizeof(v));
    p->cache().crashAllLost();
    EXPECT_EQ(*dst, v);
}

TEST(CacheSim, FlushWithoutFenceGivesNoGuarantee)
{
    auto p = makePool();
    auto* dst = reinterpret_cast<uint64_t*>(p->at(p->heapOff() + 8192));
    uint64_t before = 1, after = 2;
    p->write(dst, &before, sizeof(before));
    p->persist(dst, sizeof(before));
    p->write(dst, &after, sizeof(after));
    p->flush(dst, sizeof(after));  // clwb but no sfence
    p->cache().crashAllLost();
    EXPECT_EQ(*dst, before);
}

TEST(CacheSim, RandomCrashTearsAtWordGranularity)
{
    auto p = makePool();
    auto* dst = static_cast<uint8_t*>(p->at(p->heapOff() + 16384));
    std::vector<uint8_t> before(256, 0x11), after(256, 0x22);
    p->write(dst, before.data(), before.size());
    p->persist(dst, before.size());
    p->write(dst, after.data(), after.size());

    Xorshift rng(99);
    p->cache().crash(rng);
    // Every 8-byte word must be entirely old or entirely new.
    int oldWords = 0, newWords = 0;
    for (size_t w = 0; w < 256; w += 8) {
        bool isOld = std::memcmp(dst + w, before.data() + w, 8) == 0;
        bool isNew = std::memcmp(dst + w, after.data() + w, 8) == 0;
        EXPECT_TRUE(isOld || isNew) << "torn word at " << w;
        oldWords += isOld;
        newWords += isNew;
    }
    // With survival 0.5 over 32 words, both outcomes should appear.
    EXPECT_GT(oldWords, 0);
    EXPECT_GT(newWords, 0);
}

TEST(CacheSim, VolatileLineAccounting)
{
    auto p = makePool();
    auto* dst = static_cast<uint8_t*>(p->at(p->heapOff() + 4096));
    EXPECT_EQ(p->cache().volatileLines(), 0u);
    uint64_t v = 7;
    p->write(dst, &v, sizeof(v));
    EXPECT_EQ(p->cache().volatileLines(), 1u);
    p->write(dst + 64, &v, sizeof(v));
    EXPECT_EQ(p->cache().volatileLines(), 2u);
    p->persist(dst, 128);
    EXPECT_EQ(p->cache().volatileLines(), 0u);
}

TEST(CacheSim, CountsFlushesAndFences)
{
    auto p = makePool();
    auto base = stats::aggregate();
    auto* dst = static_cast<uint8_t*>(p->at(p->heapOff() + 4096));
    uint64_t v = 7;
    p->write(dst, &v, sizeof(v));
    p->flush(dst, 128);  // two lines
    p->fence();
    auto delta = stats::aggregate() - base;
    EXPECT_EQ(delta[stats::Counter::flushes], 2u);
    EXPECT_EQ(delta[stats::Counter::fences], 1u);
    EXPECT_EQ(delta[stats::Counter::nvmWrites], 1u);
    EXPECT_EQ(delta[stats::Counter::nvmWriteBytes], 8u);
}

/**
 * Real std::thread stress for the sharded CacheSim: concurrent store
 * bursts (fast path + shard inserts), batched flushes, fences, and
 * O(1) volatileLines() polling, plus mutex-guarded writes to one
 * shared line so cross-thread dirty/flush transitions happen. Runs
 * under -DCNVM_SANITIZE=ON; all cross-thread accesses to pool bytes
 * are lock-ordered so the test is also TSan-clean.
 */
TEST(CacheSimConcurrency, ShardedStressSurvivesCrash)
{
    auto p = makePool(32 << 20);
    constexpr unsigned kThreads = 4;
    constexpr size_t kStripeLines = 96;  // spans several shard blocks
    const size_t iters = 1500;
    uint64_t heap = p->heapOff();
    uint64_t sharedOff = heap + 4096;
    std::mutex sharedMu;
    auto stripeOff = [&](unsigned t) {
        return heap + (64 << 10) +
               t * (kStripeLines * kCacheLine + 4096);
    };

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            uint64_t base = stripeOff(t);
            std::vector<uint64_t> lines;
            for (size_t i = 0; i < iters; i++) {
                lines.clear();
                for (size_t l = 0; l < 8; l++) {
                    uint64_t ln = (i + l * 7) % kStripeLines;
                    uint64_t off = base + ln * kCacheLine + (i % 8) * 8;
                    uint64_t v = t * 1000003 + i;
                    p->writeAt(off, &v, sizeof(v));
                    // Repeat store to the same line: fast-path food.
                    p->writeAt(off, &v, sizeof(v));
                    lines.push_back(off / kCacheLine);
                }
                p->flushLines(lines.data(), lines.size());
                p->fence();
                {
                    std::lock_guard<std::mutex> g(sharedMu);
                    uint64_t sv = t;
                    p->writeAt(sharedOff + t * 8, &sv, sizeof(sv));
                    if (i % 4 == 0)
                        p->persist(p->at(sharedOff), sizeof(sv));
                }
                if (i % 64 == 0)
                    (void)p->cache().volatileLines();
            }
            uint64_t fin = 0xF00D0000ull + t;
            p->writeAt(base, &fin, sizeof(fin));
            p->persist(p->at(base), sizeof(fin));
        });
    }
    for (auto& th : threads)
        th.join();

    // Worst-case power loss: everything fenced must survive.
    p->cache().crashAllLost();
    for (unsigned t = 0; t < kThreads; t++) {
        uint64_t got;
        std::memcpy(&got, p->at(stripeOff(t)), sizeof(got));
        EXPECT_EQ(got, 0xF00D0000ull + t);
    }
    EXPECT_EQ(p->cache().volatileLines(), 0u);
}

TEST(PPtr, NullAndRoundtrip)
{
    auto p = makePool();
    Pool::setCurrent(p.get());
    PPtr<uint64_t> null;
    EXPECT_TRUE(null.isNull());
    EXPECT_EQ(null.get(), nullptr);

    auto* obj = reinterpret_cast<uint64_t*>(p->at(p->heapOff() + 4096));
    auto ptr = PPtr<uint64_t>::of(obj);
    EXPECT_FALSE(ptr.isNull());
    EXPECT_EQ(ptr.get(), obj);
    EXPECT_EQ(ptr.raw(), p->offsetOf(obj));
    Pool::setCurrent(nullptr);
}

TEST(PPtr, SurvivesRemapToDifferentBase)
{
    // File-backed pool reopened: base address changes, offsets hold.
    std::string path = "/tmp/cnvm_test_remap.pool";
    uint64_t off;
    {
        PoolConfig cfg;
        cfg.path = path;
        cfg.size = 4 << 20;
        cfg.maxThreads = 2;
        cfg.slotBytes = 64 << 10;
        auto p = Pool::create(cfg);
        Pool::setCurrent(p.get());
        auto* obj =
            reinterpret_cast<uint64_t*>(p->at(p->heapOff() + 4096));
        p->write64(obj, 777);
        p->persist(obj, 8);
        off = p->offsetOf(obj);
        p->setRoot(off);
        Pool::setCurrent(nullptr);
    }
    {
        auto p = Pool::open(path);
        Pool::setCurrent(p.get());
        PPtr<uint64_t> ptr(p->root());
        EXPECT_EQ(ptr.raw(), off);
        EXPECT_EQ(*ptr, 777u);
        Pool::setCurrent(nullptr);
    }
    ::unlink(path.c_str());
}

TEST(PoolErrors, OpenMissingFileIsFatal)
{
    EXPECT_THROW(Pool::open("/tmp/cnvm_does_not_exist.pool"),
                 FatalError);
}

TEST(PoolErrors, OpenNonPoolFileIsFatal)
{
    std::string path = "/tmp/cnvm_not_a_pool.bin";
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        std::string junk(1 << 20, 'x');
        std::fwrite(junk.data(), 1, junk.size(), f);
        std::fclose(f);
    }
    EXPECT_THROW(Pool::open(path), FatalError);
    ::unlink(path.c_str());
}

TEST(PoolErrors, TooSmallForMetadataIsFatal)
{
    PoolConfig cfg;
    cfg.size = 1 << 20;  // 1 MiB cannot hold 4 x 64 KiB slots + heap
    cfg.maxThreads = 32;
    cfg.slotBytes = 256 << 10;
    EXPECT_THROW(Pool::create(cfg), PanicError);
}

TEST(PoolErrors, WriteOutsidePoolIsCaught)
{
    auto p = makePool();
    uint64_t v = 1;
    EXPECT_THROW(p->write(&v, &v, sizeof(v)), PanicError);
}

/** Create a file-backed pool at `path` and release it. */
void
makePoolFile(const std::string& path, size_t size = 8 << 20)
{
    PoolConfig cfg;
    cfg.path = path;
    cfg.size = size;
    cfg.maxThreads = 4;
    cfg.slotBytes = 64 << 10;
    auto p = Pool::create(cfg);
    if (Pool::current() == p.get())
        Pool::setCurrent(nullptr);
}

/** Overwrite `n` bytes at `off` of the pool file. */
void
patchFile(const std::string& path, long off, const void* bytes,
          size_t n)
{
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, off, SEEK_SET);
    std::fwrite(bytes, 1, n, f);
    std::fclose(f);
}

PoolOpenError::Reason
openReason(const std::string& path)
{
    try {
        Pool::open(path);
    } catch (const PoolOpenError& e) {
        return e.reason();
    }
    ADD_FAILURE() << "open of " << path << " did not throw";
    return PoolOpenError::Reason::io;
}

TEST(PoolErrors, TypedReasonMissingFile)
{
    EXPECT_EQ(openReason("/tmp/cnvm_does_not_exist.pool"),
              PoolOpenError::Reason::io);
}

TEST(PoolErrors, TypedReasonTruncatedFile)
{
    std::string path = "/tmp/cnvm_truncated.pool";
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fwrite("tiny", 1, 4, f);
    std::fclose(f);
    EXPECT_EQ(openReason(path), PoolOpenError::Reason::truncated);
    ::unlink(path.c_str());
}

TEST(PoolErrors, TypedReasonBadMagic)
{
    std::string path = "/tmp/cnvm_badmagic.pool";
    makePoolFile(path);
    uint64_t junk = 0x4141414141414141ULL;
    patchFile(path, 0, &junk, sizeof(junk));
    EXPECT_EQ(openReason(path), PoolOpenError::Reason::badMagic);
    ::unlink(path.c_str());
}

TEST(PoolErrors, TypedReasonBadVersion)
{
    std::string path = "/tmp/cnvm_badversion.pool";
    makePoolFile(path);
    uint64_t futureVersion = Pool::kVersion + 7;
    patchFile(path, offsetof(PoolHeader, version), &futureVersion,
              sizeof(futureVersion));
    EXPECT_EQ(openReason(path), PoolOpenError::Reason::badVersion);
    ::unlink(path.c_str());
}

TEST(PoolErrors, TypedReasonSizeMismatchOnReopen)
{
    std::string path = "/tmp/cnvm_sizemismatch.pool";
    makePoolFile(path);
    // Simulate a wrong-size reopen: the file grew behind our back.
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    char zero = 0;
    std::fwrite(&zero, 1, 1, f);
    std::fclose(f);
    EXPECT_EQ(openReason(path), PoolOpenError::Reason::sizeMismatch);
    ::unlink(path.c_str());
}

TEST(PoolErrors, TypedReasonCorruptHeaderOffsets)
{
    std::string path = "/tmp/cnvm_corrupthdr.pool";
    makePoolFile(path);
    uint64_t insane = ~0ULL;
    patchFile(path, offsetof(PoolHeader, heapOff), &insane,
              sizeof(insane));
    EXPECT_EQ(openReason(path), PoolOpenError::Reason::corruptHeader);
    ::unlink(path.c_str());
}

TEST(PoolErrors, CleanReopenStillWorks)
{
    std::string path = "/tmp/cnvm_cleanreopen.pool";
    makePoolFile(path);
    auto p = Pool::open(path);
    EXPECT_EQ(p->header().magic, Pool::kMagic);
    if (Pool::current() == p.get())
        Pool::setCurrent(nullptr);
    p.reset();
    ::unlink(path.c_str());
}

TEST(FaultModel, InjectionIsDeterministicFromSeed)
{
    auto run = [](uint64_t seed) {
        auto p = makePool();
        FaultConfig fc;
        fc.seed = seed;
        fc.bitFlips = 4;
        fc.poisons = 2;
        fc.transients = 2;
        fc.regionMask = kFaultAllRegions;
        p->setFaultModel(std::make_unique<FaultModel>(fc));
        p->faults()->inject(*p);
        return p->faults()->taintedLines();
    };
    EXPECT_EQ(run(42), run(42));
    EXPECT_NE(run(42), run(43));
}

TEST(FaultModel, PoisonedLineRaisesOnGuardedReadOnly)
{
    auto p = makePool();
    FaultConfig fc;
    fc.poisons = 1;
    p->setFaultModel(std::make_unique<FaultModel>(fc));
    uint64_t off = p->heapOff() + 256;
    p->faults()->poisonAt(off);
    // Unguarded access to the mapped bytes stays a plain load — only
    // the guarded (recovery-path) read observes the machine check.
    volatile uint8_t sink = *(p->base() + off);
    (void)sink;
    EXPECT_THROW(p->checkRead(p->at(off), 8), MediaFaultError);
    EXPECT_TRUE(p->faults()->poisoned(off, 1));
}

TEST(FaultModel, WriteClearsPoisonAndTaint)
{
    auto p = makePool();
    FaultConfig fc;
    fc.poisons = 1;
    p->setFaultModel(std::make_unique<FaultModel>(fc));
    uint64_t off = p->heapOff() + 512;
    p->faults()->poisonAt(off);
    p->faults()->flipBit(*p, off + 64, 3);
    EXPECT_TRUE(p->faults()->poisoned(off, 1));
    EXPECT_TRUE(p->faults()->tainted(off + 64, 1));
    uint8_t fresh[128] = {};
    p->write(p->at(off), fresh, sizeof(fresh));
    EXPECT_FALSE(p->faults()->poisoned(off, 1));
    EXPECT_FALSE(p->faults()->tainted(off + 64, 1));
    p->checkRead(p->at(off), 128);  // must not throw
}

TEST(FaultModel, TransientFaultSucceedsWithinRetryBudget)
{
    auto p = makePool();
    FaultConfig fc;
    fc.maxRetries = 4;
    p->setFaultModel(std::make_unique<FaultModel>(fc));
    uint64_t off = p->heapOff() + 1024;
    p->faults()->poisonAt(off, /* transientCount */ 2);
    // Two failing reads are absorbed by the retry loop.
    p->checkRead(p->at(off), 8);
    EXPECT_GE(p->faults()->retries(), 2u);
    // Retries cleared the transient; later reads are clean.
    p->checkRead(p->at(off), 8);
}

TEST(FaultModel, TransientFaultExhaustsRetryBudget)
{
    auto p = makePool();
    FaultConfig fc;
    fc.maxRetries = 2;
    p->setFaultModel(std::make_unique<FaultModel>(fc));
    uint64_t off = p->heapOff() + 2048;
    p->faults()->poisonAt(off, /* transientCount */ 100);
    try {
        p->checkRead(p->at(off), 8);
        FAIL() << "retry exhaustion did not raise";
    } catch (const MediaFaultError& e) {
        EXPECT_TRUE(e.transient());
        EXPECT_EQ(e.off() / 64, off / 64);
    }
}

TEST(FaultModel, RegionTargetingRespectsTheMask)
{
    auto p = makePool();
    FaultConfig fc;
    fc.seed = 9;
    fc.bitFlips = 16;
    fc.regionMask = kFaultHeap;
    p->setFaultModel(std::make_unique<FaultModel>(fc));
    p->faults()->inject(*p);
    // Every tainted line must fall inside the heap region.
    for (uint64_t line : p->faults()->taintedLines()) {
        uint64_t off = line * 64;
        EXPECT_GE(off, p->heapOff());
        EXPECT_LT(off, p->heapOff() + p->heapSize());
    }
    EXPECT_GT(p->faults()->flipsInjected(), 0u);
}

}  // namespace
}  // namespace cnvm::nvm
