/**
 * @file
 * Tests of the concurrency/timing simulator: logical clocks, the
 * persistence-stall model, discrete-event lock contention, and the
 * executor's scaling behaviour (what makes Figures 6/10 meaningful on
 * a single-core host).
 */
#include <gtest/gtest.h>

#include "sim/executor.h"
#include "sim/lock.h"
#include "stats/simtime.h"

namespace cnvm::sim {
namespace {

TEST(PersistClock, FlushesOverlapFencesDrain)
{
    stats::PersistParams p;
    p.flushNs = 100;
    p.fenceNs = 10;
    p.writeNsPerByte = 0;
    stats::PersistClock clock(p);

    // Three flushes issued back to back overlap: one fence waits for
    // the last completion only.
    clock.onFlush(0);
    clock.onFlush(1);
    clock.onFlush(2);
    uint64_t stall = clock.onFence(5);
    EXPECT_EQ(stall, (2 + 100 - 5) + 10u);

    // A fence long after the flush completes costs only the fence.
    clock.onFlush(1000);
    EXPECT_EQ(clock.onFence(2000), 10u);
}

TEST(PersistClock, WriteBandwidthTermScalesWithBytes)
{
    stats::PersistParams p;
    p.flushNs = 0;
    p.fenceNs = 0;
    p.writeNsPerByte = 2.0;
    stats::PersistClock clock(p);
    clock.onFlush(0, 64);
    EXPECT_EQ(clock.onFence(0), 128u);
}

TEST(ThreadCtx, WaitUntilNeverGoesBackwards)
{
    ThreadCtx c(0);
    c.advance(100);
    c.waitUntil(50);
    EXPECT_EQ(c.clockNs(), 100u);
    c.waitUntil(250);
    EXPECT_EQ(c.clockNs(), 250u);
}

TEST(SimMutex, SerializesLogicalTime)
{
    // Two logical threads each spend 1000ns inside the same mutex:
    // total simulated time must be ~2000ns, not ~1000ns.
    Executor exec(2);
    SimMutex mu;
    exec.run(1, [&](ThreadCtx& ctx, size_t) {
        mu.lock();
        ctx.advance(1000);
        mu.unlock();
    });
    EXPECT_GE(exec.elapsedNs(), 2000u);
}

TEST(SimSharedMutex, ReadersOverlapWritersSerialize)
{
    // Readers: 8 threads of 1000ns critical sections overlap.
    {
        Executor exec(8);
        SimSharedMutex mu;
        exec.run(1, [&](ThreadCtx& ctx, size_t) {
            mu.lock_shared();
            ctx.advance(1000);
            mu.unlock_shared();
        });
        EXPECT_LT(exec.elapsedNs(), 4000u);
    }
    // Writers: the same pattern exclusive must serialize.
    {
        Executor exec(8);
        SimSharedMutex mu;
        exec.run(1, [&](ThreadCtx& ctx, size_t) {
            mu.lock();
            ctx.advance(1000);
            mu.unlock();
        });
        EXPECT_GE(exec.elapsedNs(), 8000u);
    }
}

TEST(SimSharedMutex, WriterWaitsForReaders)
{
    Executor exec(2);
    SimSharedMutex mu;
    exec.run(1, [&](ThreadCtx& ctx, size_t) {
        if (ctx.tid() == 0) {
            mu.lock_shared();
            ctx.advance(5000);
            mu.unlock_shared();
        } else {
            mu.lock();
            ctx.advance(100);
            mu.unlock();
        }
    });
    // The writer must land after the reader's 5000ns window.
    EXPECT_GE(exec.ctx(1).clockNs(), 5000u);
}

TEST(LockShard, DistinctOffsetsRarelyCollide)
{
    LockShard shard(1024);
    // Sharded locks must spread: consecutive node offsets should not
    // all map to one lock.
    auto* first = &shard.forOffset(64);
    int same = 0;
    for (uint64_t off = 64; off < 64 + 64 * 100; off += 64) {
        if (&shard.forOffset(off) == first)
            same++;
    }
    EXPECT_LT(same, 10);
}

TEST(Executor, PerfectScalingWithoutSharing)
{
    // Independent threads doing fixed logical work: simulated elapsed
    // time stays flat as threads are added (per-thread ops constant).
    uint64_t elapsed1;
    {
        Executor exec(1);
        exec.run(4, [&](ThreadCtx& ctx, size_t) {
            ctx.advance(1000);
        });
        elapsed1 = exec.elapsedNs();
    }
    Executor exec(8);
    exec.run(4, [&](ThreadCtx& ctx, size_t) { ctx.advance(1000); });
    // 8 threads x same per-thread work: elapsed within noise of the
    // single-thread run (all clocks advance in parallel).
    EXPECT_LT(exec.elapsedNs(), elapsed1 * 2);
}

TEST(Executor, GlobalLockFlattensScaling)
{
    auto throughput = [](unsigned threads) {
        Executor exec(threads);
        SimMutex mu;
        size_t perThread = 64;
        double secs = exec.run(perThread,
                               [&](ThreadCtx& ctx, size_t) {
                                   mu.lock();
                                   ctx.advance(1000);
                                   mu.unlock();
                               });
        return static_cast<double>(perThread * threads) / secs;
    };
    double t1 = throughput(1);
    double t8 = throughput(8);
    // With every op inside one global lock, 8 threads must not
    // meaningfully beat 1 thread.
    EXPECT_LT(t8, t1 * 1.6);
}

TEST(Executor, ResetClocksStartsFresh)
{
    Executor exec(2);
    exec.run(1, [](ThreadCtx& ctx, size_t) { ctx.advance(500); });
    EXPECT_GT(exec.elapsedNs(), 0u);
    exec.resetClocks();
    EXPECT_EQ(exec.elapsedNs(), 0u);
}

TEST(Scope, InstallsAndClearsCurrentContext)
{
    EXPECT_EQ(cur(), nullptr);
    {
        ThreadCtx ctx(3);
        Scope scope(&ctx);
        EXPECT_EQ(cur(), &ctx);
        EXPECT_EQ(cur()->tid(), 3u);
    }
    EXPECT_EQ(cur(), nullptr);
}

}  // namespace
}  // namespace cnvm::sim
