/**
 * @file
 * Tests of the clobber-identification compiler pass: alias analysis,
 * dominators, the conservative two-step identification (Figure 4),
 * and the unexposed/shadowed refinement (Figure 5).
 */
#include <gtest/gtest.h>

#include "cir/analysis.h"
#include "cir/builders.h"
#include "cir/clobber_pass.h"
#include "cir/summaries.h"

namespace cnvm::cir {
namespace {

TEST(AliasAnalysis, BasicVerdicts)
{
    Function f("alias");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId q = emitArg(f, b, "q");
    ValueId m = emitMalloc(f, b, "m");
    ValueId a = emitAlloca(f, b, "a");
    ValueId p8 = emitGep(f, b, p, 8);
    ValueId p8b = emitGep(f, b, p, 8);
    ValueId p16 = emitGep(f, b, p, 16);
    ValueId pU = emitGep(f, b, p, -1);
    ValueId ld = emitLoad(f, b, p8);

    AliasAnalysis aa(f);
    EXPECT_EQ(aa.alias(p, p), Alias::must);
    EXPECT_EQ(aa.alias(p8, p8b), Alias::must);   // same base+offset
    EXPECT_EQ(aa.alias(p8, p16), Alias::no);     // distinct fields
    EXPECT_EQ(aa.alias(p8, pU), Alias::may);     // unknown offset
    EXPECT_EQ(aa.alias(p, q), Alias::may);       // two args
    EXPECT_EQ(aa.alias(m, p), Alias::no);        // fresh vs arg
    EXPECT_EQ(aa.alias(m, a), Alias::no);        // fresh vs fresh
    EXPECT_EQ(aa.alias(ld, p), Alias::may);      // loaded pointer
    EXPECT_EQ(aa.alias(ld, m), Alias::may);      // loaded vs fresh
}

TEST(Dominators, StraightLineAndBranch)
{
    Function f("dom");
    int e = f.addBlock("entry");
    int l = f.addBlock("left");
    int r = f.addBlock("right");
    int j = f.addBlock("join");
    f.addEdge(e, l);
    f.addEdge(e, r);
    f.addEdge(l, j);
    f.addEdge(r, j);

    emitArg(f, e, "x");

    Dominators dom(f);
    EXPECT_TRUE(dom.blockDominates(e, l));
    EXPECT_TRUE(dom.blockDominates(e, j));
    EXPECT_FALSE(dom.blockDominates(l, j));
    EXPECT_FALSE(dom.blockDominates(l, r));
    EXPECT_TRUE(dom.mayFollow({0, 0}, {3, 0}));
    EXPECT_FALSE(dom.mayFollow({3, 0}, {0, 0}));
}

TEST(Dominators, LoopsReachThemselves)
{
    Function f("loop");
    int e = f.addBlock("entry");
    int body = f.addBlock("body");
    int exit = f.addBlock("exit");
    f.addEdge(e, body);
    f.addEdge(body, body);
    f.addEdge(body, exit);
    emitArg(f, e, "x");

    Dominators dom(f);
    // An instruction later in a loop body may execute before an
    // earlier one (next iteration).
    EXPECT_TRUE(dom.mayFollow({1, 5}, {1, 0}));
    EXPECT_TRUE(dom.blockDominates(body, exit));
}

TEST(ClobberPass, Figure2aListInsert)
{
    Function f = buildListInsert();
    ClobberResult res = analyzeClobbers(f);
    // Exactly one clobber site: the store to lst->hd. The stores to
    // the fresh node never alias transaction inputs.
    EXPECT_EQ(res.refinedSites.size(), 1u);
    EXPECT_EQ(f.at(res.refinedSites[0]).name,
              "lst.hd = n (clobber)");
}

TEST(ClobberPass, DominatedReadIsNotAnInput)
{
    // store p; x = load p; store p, y  -- the read is not an input.
    Function f("dominated_read");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId v = emitArg(f, b, "v");
    emitStore(f, b, p, v, "init");
    ValueId x = emitLoad(f, b, p, "read own write");
    emitStore(f, b, p, x, "write back");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_TRUE(res.candidateReads.empty());
    EXPECT_TRUE(res.refinedSites.empty());
}

TEST(ClobberPass, ReadThenWriteIsAClobber)
{
    Function f("rmw");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId x = emitLoad(f, b, p, "input read");
    ValueId y = emitBinop(f, b, x, "x+1");
    emitStore(f, b, p, y, "clobber");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_EQ(res.candidateReads.size(), 1u);
    ASSERT_EQ(res.refinedSites.size(), 1u);
    EXPECT_EQ(f.at(res.refinedSites[0]).name, "clobber");
}

TEST(ClobberPass, UnexposedCandidateIsRemoved)
{
    // Figure 5 (left): w1 dominates the read (may-alias), w2 after
    // the read must-aliases w1 -> if w2 hits the read's location,
    // the read was never an input.
    Function f("unexposed");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId v = emitArg(f, b, "v");
    ValueId exact = emitGep(f, b, p, 8, "p.f");
    ValueId fuzzy = emitGep(f, b, p, -1, "p.?");
    emitStore(f, b, exact, v, "w1");
    emitLoad(f, b, fuzzy, "candidate read");
    emitStore(f, b, exact, v, "w2 (unexposed)");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_EQ(res.removedUnexposed, 1);
    EXPECT_TRUE(res.refinedSites.empty());
    EXPECT_EQ(res.conservativeSites.size(), 1u);
}

TEST(ClobberPass, ShadowedCandidateIsRemoved)
{
    // Figure 5 (right): both w1 and w2 must-alias the read; w1
    // dominates w2, so w2's clobber is already logged.
    Function f("shadowed");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId x = emitLoad(f, b, p, "input read");
    ValueId y = emitBinop(f, b, x, "f(x)");
    emitStore(f, b, p, y, "w1 (real clobber)");
    emitStore(f, b, p, x, "w2 (shadowed)");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_EQ(res.conservativeSites.size(), 2u);
    ASSERT_EQ(res.refinedSites.size(), 1u);
    EXPECT_EQ(f.at(res.refinedSites[0]).name, "w1 (real clobber)");
    EXPECT_EQ(res.removedShadowed, 1);
}

TEST(ClobberPass, BranchesKeepBothSides)
{
    // A store on only one branch cannot shadow the other branch's.
    Function f("branches");
    int e = f.addBlock("entry");
    int l = f.addBlock("left");
    int r = f.addBlock("right");
    int j = f.addBlock("join");
    f.addEdge(e, l);
    f.addEdge(e, r);
    f.addEdge(l, j);
    f.addEdge(r, j);

    ValueId p = emitArg(f, e, "p");
    ValueId x = emitLoad(f, e, p, "input");
    emitStore(f, l, p, x, "left clobber");
    emitStore(f, r, p, x, "right clobber");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_EQ(res.refinedSites.size(), 2u);
}

TEST(ClobberPass, BothRefinementsFireInOneFunction)
{
    // The unexposed pattern (on p) and the shadowed pattern (on q)
    // concatenated in one body: each removal must fire independently
    // and only the real clobber survives.
    Function f("both_refinements");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId q = emitArg(f, b, "q");
    ValueId v = emitArg(f, b, "v");
    // Unexposed: w1 dominates the fuzzy read and must-aliases w2.
    ValueId exact = emitGep(f, b, p, 8, "p.f");
    ValueId fuzzy = emitGep(f, b, p, -1, "p.?");
    emitStore(f, b, exact, v, "w1");
    emitLoad(f, b, fuzzy, "unexposed read");
    emitStore(f, b, exact, v, "w2 (unexposed)");
    // Shadowed: w3 must-aliases and dominates w4.
    ValueId x = emitLoad(f, b, q, "input read");
    ValueId y = emitBinop(f, b, x, "f(x)");
    emitStore(f, b, q, y, "w3 (real clobber)");
    emitStore(f, b, q, x, "w4 (shadowed)");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_GE(res.removedUnexposed, 1);
    EXPECT_GE(res.removedShadowed, 1);
    ASSERT_EQ(res.refinedSites.size(), 1u);
    EXPECT_EQ(f.at(res.refinedSites[0]).name, "w3 (real clobber)");
}

TEST(ClobberPass, SiteSurvivesOnlyViaSecondPair)
{
    // S pairs with two reads. The (r1, S) pair dies as unexposed
    // (w0 dominates r1 and must-aliases S), but w0 sits on a branch,
    // so it neither unexposes nor shadows the entry read r2 — S must
    // stay instrumented via (r2, S) alone.
    Function f("second_pair");
    int e = f.addBlock("entry");
    int l = f.addBlock("left");
    int r = f.addBlock("right");
    int j = f.addBlock("join");
    f.addEdge(e, l);
    f.addEdge(e, r);
    f.addEdge(l, j);
    f.addEdge(r, j);

    ValueId p = emitArg(f, e, "p");
    ValueId v = emitArg(f, e, "v");
    ValueId pU = emitGep(f, e, p, -1, "p.u");
    ValueId pU2 = emitGep(f, e, p, -1, "p.u2");
    ValueId p16 = emitGep(f, e, p, 16, "p.g");
    emitLoad(f, e, p16, "r2 (wide read)");
    emitStore(f, l, pU, v, "w0");
    emitLoad(f, l, pU2, "r1 (unexposed)");
    emitStore(f, j, pU, v, "S (second-pair survivor)");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_EQ(res.removedUnexposed, 1);
    // Both w0 (clobbers r2 on the left path) and S survive.
    ASSERT_EQ(res.refinedSites.size(), 2u);
    bool sSurvives = false;
    for (const auto& site : res.refinedSites)
        sSurvives |= f.at(site).name == "S (second-pair survivor)";
    EXPECT_TRUE(sSurvives);
    // S's only surviving pair is with the entry read r2.
    int sPairs = 0;
    for (const auto& [rd, st] : res.refinedPairs) {
        if (f.at(st).name != "S (second-pair survivor)")
            continue;
        sPairs++;
        EXPECT_EQ(f.at(rd).name, "r2 (wide read)");
    }
    EXPECT_EQ(sPairs, 1);
}

TEST(ClobberPass, SkiplistMatchesPaperCounts)
{
    // Paper Section 5.9: the pass removes two of five skiplist
    // clobber candidates, leaving three logged per transaction.
    Function f = buildSkiplistInsert(3);
    ClobberResult res = analyzeClobbers(f);
    EXPECT_GT(res.conservativeSites.size(), res.refinedSites.size());
    EXPECT_GE(res.removedShadowed + res.removedUnexposed, 2);
}

TEST(ClobberPass, EveryModuleRefinesOrHolds)
{
    for (const auto& mod : benchmarkModules()) {
        for (const auto& fn : mod.functions) {
            ClobberResult res = analyzeClobbers(fn);
            EXPECT_LE(res.refinedSites.size(),
                      res.conservativeSites.size())
                << mod.name << "/" << fn.name();
            EXPECT_LE(res.refinedPairs.size(),
                      res.conservativePairs.size());
            // Refinement never removes all real clobbers when any
            // read-modify-write exists.
            if (!res.conservativePairs.empty())
                EXPECT_FALSE(res.refinedPairs.empty() &&
                             res.removedUnexposed == 0 &&
                             res.removedShadowed == 0);
        }
    }
}

TEST(ClobberPass, BaselineTraversalIsStable)
{
    Function f = buildMemcachedSet();
    EXPECT_EQ(baselineTraversal(f), baselineTraversal(f));
    EXPECT_NE(baselineTraversal(f),
              baselineTraversal(buildListInsert()));
}

TEST(AliasAnalysis, UnknownOffsetStaysInsideItsObject)
{
    Function f("unknown_off");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId p8 = emitGep(f, b, p, 8);
    ValueId pU = emitGep(f, b, p, -1);
    ValueId pU8 = emitGep(f, b, pU, 8);  // known step off unknown
    ValueId m = emitMalloc(f, b, "m");

    AliasAnalysis aa(f);
    // Unknown offsets may hit any field of the same object...
    EXPECT_EQ(aa.alias(pU, p), Alias::may);
    EXPECT_EQ(aa.alias(pU, p8), Alias::may);
    // ...and stay unknown through further known-offset geps.
    EXPECT_EQ(aa.alias(pU8, p8), Alias::may);
    EXPECT_EQ(aa.alias(pU8, pU), Alias::may);
    // But they cannot escape the base object: a fresh allocation is
    // still provably disjoint.
    EXPECT_EQ(aa.alias(pU, m), Alias::no);
}

TEST(AliasAnalysis, LoadedPointerBases)
{
    Function f("loaded_bases");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId ld1 = emitLoad(f, b, p, "head 1");
    ValueId ld2 = emitLoad(f, b, p, "head 2");
    ValueId g8 = emitGep(f, b, ld1, 8);
    ValueId g8b = emitGep(f, b, ld1, 8);
    ValueId g16 = emitGep(f, b, ld1, 16);
    ValueId m = emitMalloc(f, b, "m");

    AliasAnalysis aa(f);
    // One loaded pointer is one base: field reasoning works off it.
    EXPECT_EQ(aa.alias(g8, g8b), Alias::must);
    EXPECT_EQ(aa.alias(g8, g16), Alias::no);
    // Two loads of the same slot are distinct bases (the slot could
    // have been overwritten between them): only may.
    EXPECT_EQ(aa.alias(ld1, ld2), Alias::may);
    EXPECT_EQ(aa.alias(g8, p), Alias::may);
    // A loaded pointer could target a just-published fresh object.
    EXPECT_EQ(aa.alias(ld1, m), Alias::may);
}

TEST(AliasAnalysis, BasedOnAllocaThroughPointerCopies)
{
    Function f("alloca_copies");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId a = emitAlloca(f, b, "a");
    ValueId copy = emitGep(f, b, a, 0, "copy of a");
    ValueId field = emitGep(f, b, copy, 8, "a.f");
    ValueId unk = emitGep(f, b, copy, -1, "a.?");
    ValueId m = emitMalloc(f, b, "m");

    AliasAnalysis aa(f);
    EXPECT_TRUE(aa.basedOnAlloca(a));
    EXPECT_TRUE(aa.basedOnAlloca(copy));
    EXPECT_TRUE(aa.basedOnAlloca(field));
    EXPECT_TRUE(aa.basedOnAlloca(unk));
    EXPECT_FALSE(aa.basedOnAlloca(p));
    EXPECT_FALSE(aa.basedOnAlloca(m));
    // The copy preserves field reasoning off the alloca base.
    EXPECT_EQ(aa.alias(copy, a), Alias::must);
    EXPECT_EQ(aa.alias(field, a), Alias::no);
}

TEST(Summaries, BaseResolverClassifiesValues)
{
    Function f("bases");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId q = emitArg(f, b, "q");
    ValueId a = emitAlloca(f, b, "a");
    ValueId copy = emitGep(f, b, a, 0);
    ValueId m = emitMalloc(f, b, "m");
    ValueId pf = emitGep(f, b, p, 8);
    ValueId ld = emitLoad(f, b, p);

    BaseResolver bases(f);
    EXPECT_EQ(bases.numParams(), 2);
    EXPECT_EQ(bases.kind(p), BaseResolver::Kind::param);
    EXPECT_EQ(bases.paramIndex(p), 0);
    EXPECT_EQ(bases.kind(q), BaseResolver::Kind::param);
    EXPECT_EQ(bases.paramIndex(q), 1);
    EXPECT_EQ(bases.kind(pf), BaseResolver::Kind::param);
    EXPECT_EQ(bases.paramIndex(pf), 0);
    EXPECT_EQ(bases.kind(a), BaseResolver::Kind::alloca_);
    EXPECT_EQ(bases.kind(copy), BaseResolver::Kind::alloca_);
    EXPECT_EQ(bases.allocaRoot(copy), a);
    EXPECT_EQ(bases.kind(m), BaseResolver::Kind::fresh);
    EXPECT_EQ(bases.kind(ld), BaseResolver::Kind::unknown);
}

TEST(Summaries, SelfLoggingHelperSummary)
{
    // nvm_bump: load, clobber_log, store, flush, fence on its one
    // parameter — the summary must carry all of it.
    IrModule rt = runtimeTxModule();
    ModuleSummaries sums(rt.functions);
    const FunctionSummary* s = sums.lookup("nvm_bump");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->params.size(), 1u);
    EXPECT_TRUE(s->params[0].read);
    EXPECT_TRUE(s->params[0].written);
    EXPECT_TRUE(s->params[0].clobbered);
    EXPECT_TRUE(s->params[0].logged);
    EXPECT_TRUE(s->params[0].flushed);
    EXPECT_FALSE(s->params[0].escapes);
    EXPECT_TRUE(s->deterministic);
    EXPECT_FALSE(s->doesIO);
    EXPECT_TRUE(s->fencesOnExit);
    EXPECT_FALSE(s->callsUnknown);

    // mix64 is pure: no memory effects at all.
    const FunctionSummary* mix = sums.lookup("mix64");
    ASSERT_NE(mix, nullptr);
    EXPECT_FALSE(mix->params[0].read);
    EXPECT_FALSE(mix->params[0].written);
    EXPECT_TRUE(mix->deterministic);
}

TEST(Summaries, EffectsPropagateThroughCallChain)
{
    // caller(p) -> mid(p) -> leaf(p), where only leaf touches
    // memory: the leaf's clobber must surface in caller's summary.
    Function leaf("leaf");
    int lb = leaf.addBlock("entry");
    ValueId lq = emitArg(leaf, lb, "q");
    ValueId lx = emitLoad(leaf, lb, lq);
    emitStore(leaf, lb, lq, lx, "rmw");

    Function mid("mid");
    int mb = mid.addBlock("entry");
    ValueId mq = emitArg(mid, mb, "q");
    emitCall(mid, mb, "leaf", Effect::pure, {mq});

    Function top("top");
    int tb = top.addBlock("entry");
    ValueId tq = emitArg(top, tb, "q");
    emitCall(top, tb, "mid", Effect::pure, {tq});

    ModuleSummaries sums({leaf, mid, top});
    const FunctionSummary* s = sums.lookup("top");
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->params[0].read);
    EXPECT_TRUE(s->params[0].written);
    EXPECT_TRUE(s->params[0].clobbered);
    EXPECT_FALSE(s->params[0].logged);

    // The call-graph edges resolve by symbol name.
    EXPECT_EQ(sums.callees(top),
              std::vector<std::string>{"mid"});
}

TEST(Summaries, NondeterminismIsTransitive)
{
    // top calls helper (declared pure); helper calls external rdtsc
    // declared nondet. Only the fixpoint sees through the lie.
    Function helper("helper");
    int hb = helper.addBlock("entry");
    emitCall(helper, hb, "rdtsc", Effect::nondet, {});

    Function top("top");
    int tb = top.addBlock("entry");
    emitArg(top, tb, "p");
    emitCall(top, tb, "helper", Effect::pure, {});

    ModuleSummaries sums({helper, top});
    EXPECT_FALSE(sums.lookup("helper")->deterministic);
    EXPECT_FALSE(sums.lookup("top")->deterministic);
    EXPECT_TRUE(sums.lookup("helper")->callsUnknown);
}

TEST(Summaries, RecursionConvergesToLeastFixpoint)
{
    // Mutually recursive pair where one side also stores through the
    // shared parameter: both summaries converge, both report the
    // write, and determinism survives (no nondet anywhere).
    Function even("even");
    int eb = even.addBlock("entry");
    ValueId ep = emitArg(even, eb, "p");
    emitCall(even, eb, "odd", Effect::writesNVM, {ep});

    Function odd("odd");
    int ob = odd.addBlock("entry");
    ValueId op = emitArg(odd, ob, "p");
    ValueId ov = emitLoad(odd, ob, op);
    emitStore(odd, ob, op, ov, "rmw");
    emitCall(odd, ob, "even", Effect::writesNVM, {op});

    ModuleSummaries sums({even, odd});
    EXPECT_LT(sums.iterations(), 10);
    for (const char* name : {"even", "odd"}) {
        const FunctionSummary* s = sums.lookup(name);
        ASSERT_NE(s, nullptr) << name;
        EXPECT_TRUE(s->params[0].read) << name;
        EXPECT_TRUE(s->params[0].written) << name;
        EXPECT_TRUE(s->params[0].clobbered) << name;
        EXPECT_TRUE(s->deterministic) << name;
    }
}

TEST(Summaries, DeclaredSummaryIsConservative)
{
    FunctionSummary w =
        ModuleSummaries::declaredSummary(Effect::writesNVM, 2);
    ASSERT_EQ(w.params.size(), 2u);
    EXPECT_TRUE(w.params[0].written);
    EXPECT_TRUE(w.params[0].clobbered);
    EXPECT_FALSE(w.params[0].logged);
    EXPECT_TRUE(w.deterministic);
    EXPECT_TRUE(w.callsUnknown);

    FunctionSummary p =
        ModuleSummaries::declaredSummary(Effect::pure, 1);
    EXPECT_FALSE(p.params[0].written);
    EXPECT_FALSE(p.callsUnknown);

    EXPECT_FALSE(ModuleSummaries::declaredSummary(Effect::nondet, 0)
                     .deterministic);
    EXPECT_TRUE(
        ModuleSummaries::declaredSummary(Effect::io, 0).doesIO);
    EXPECT_TRUE(
        ModuleSummaries::declaredSummary(Effect::volatileWrite, 0)
            .volatileEscape);
}

TEST(ClobberPass, InterproceduralFindsCalleeHiddenClobber)
{
    // The acceptance pin: a tx whose only memory effect hides inside
    // a callee. Intraprocedurally there are no loads or stores, so
    // the pass provably finds nothing; with summaries the call site
    // itself becomes the clobber site.
    Function helper("bump");
    int hb = helper.addBlock("entry");
    ValueId q = emitArg(helper, hb, "q");
    ValueId x = emitLoad(helper, hb, q);
    emitStore(helper, hb, q, x, "rmw in callee");

    Function tx("tx");
    int tb = tx.addBlock("entry");
    ValueId p = emitArg(tx, tb, "p");
    emitCall(tx, tb, "bump", Effect::writesNVM, {p},
             "bump(p)");

    ClobberResult intra = analyzeClobbers(tx);
    EXPECT_TRUE(intra.conservativeSites.empty());
    EXPECT_TRUE(intra.refinedSites.empty());

    ModuleSummaries sums({helper, tx});
    ClobberResult inter = analyzeClobbers(tx, sums);
    ASSERT_EQ(inter.refinedSites.size(), 1u);
    EXPECT_EQ(tx.at(inter.refinedSites[0]).op, Op::call);
    EXPECT_EQ(tx.at(inter.refinedSites[0]).callee, "bump");
}

TEST(ClobberPass, CalleeWriteNeverLicensesRefinement)
{
    // A callee write targets unknown offsets inside the argument's
    // object, so it must never count as a must-alias store: the
    // caller's own read-modify-write below stays a clobber site.
    Function helper("scribble");
    int hb = helper.addBlock("entry");
    ValueId q = emitArg(helper, hb, "q");
    emitStore(helper, hb, q, q, "blind store in callee");

    Function tx("tx");
    int tb = tx.addBlock("entry");
    ValueId p = emitArg(tx, tb, "p");
    emitCall(tx, tb, "scribble", Effect::writesNVM, {p});
    ValueId x = emitLoad(tx, tb, p, "still an input read");
    emitStore(tx, tb, p, x, "caller clobber");

    ModuleSummaries sums({helper, tx});
    ClobberResult res = analyzeClobbers(tx, sums);
    // The call's inexact write cannot discharge the load, so the
    // caller store keeps its clobber pairing.
    bool callerSite = false;
    for (const auto& site : res.refinedSites)
        callerSite |= tx.at(site).name == "caller clobber";
    EXPECT_TRUE(callerSite);
}

TEST(ClobberPass, SummaryAwareMatchesIntraOnCallFreeCode)
{
    // On call-free functions the two overloads must agree exactly.
    for (const auto& mod : benchmarkModules()) {
        ModuleSummaries sums(mod.functions);
        for (const auto& fn : mod.functions) {
            bool hasCall = !fn.collect([](const Instr& i) {
                                 return i.op == Op::call;
                             }).empty();
            if (hasCall)
                continue;
            ClobberResult intra = analyzeClobbers(fn);
            ClobberResult inter = analyzeClobbers(fn, sums);
            EXPECT_EQ(intra.refinedSites.size(),
                      inter.refinedSites.size())
                << mod.name << "/" << fn.name();
            EXPECT_EQ(intra.conservativeSites.size(),
                      inter.conservativeSites.size());
        }
    }
}

}  // namespace
}  // namespace cnvm::cir
