/**
 * @file
 * Tests of the clobber-identification compiler pass: alias analysis,
 * dominators, the conservative two-step identification (Figure 4),
 * and the unexposed/shadowed refinement (Figure 5).
 */
#include <gtest/gtest.h>

#include "cir/analysis.h"
#include "cir/builders.h"
#include "cir/clobber_pass.h"

namespace cnvm::cir {
namespace {

TEST(AliasAnalysis, BasicVerdicts)
{
    Function f("alias");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId q = emitArg(f, b, "q");
    ValueId m = emitMalloc(f, b, "m");
    ValueId a = emitAlloca(f, b, "a");
    ValueId p8 = emitGep(f, b, p, 8);
    ValueId p8b = emitGep(f, b, p, 8);
    ValueId p16 = emitGep(f, b, p, 16);
    ValueId pU = emitGep(f, b, p, -1);
    ValueId ld = emitLoad(f, b, p8);

    AliasAnalysis aa(f);
    EXPECT_EQ(aa.alias(p, p), Alias::must);
    EXPECT_EQ(aa.alias(p8, p8b), Alias::must);   // same base+offset
    EXPECT_EQ(aa.alias(p8, p16), Alias::no);     // distinct fields
    EXPECT_EQ(aa.alias(p8, pU), Alias::may);     // unknown offset
    EXPECT_EQ(aa.alias(p, q), Alias::may);       // two args
    EXPECT_EQ(aa.alias(m, p), Alias::no);        // fresh vs arg
    EXPECT_EQ(aa.alias(m, a), Alias::no);        // fresh vs fresh
    EXPECT_EQ(aa.alias(ld, p), Alias::may);      // loaded pointer
    EXPECT_EQ(aa.alias(ld, m), Alias::may);      // loaded vs fresh
}

TEST(Dominators, StraightLineAndBranch)
{
    Function f("dom");
    int e = f.addBlock("entry");
    int l = f.addBlock("left");
    int r = f.addBlock("right");
    int j = f.addBlock("join");
    f.addEdge(e, l);
    f.addEdge(e, r);
    f.addEdge(l, j);
    f.addEdge(r, j);

    emitArg(f, e, "x");

    Dominators dom(f);
    EXPECT_TRUE(dom.blockDominates(e, l));
    EXPECT_TRUE(dom.blockDominates(e, j));
    EXPECT_FALSE(dom.blockDominates(l, j));
    EXPECT_FALSE(dom.blockDominates(l, r));
    EXPECT_TRUE(dom.mayFollow({0, 0}, {3, 0}));
    EXPECT_FALSE(dom.mayFollow({3, 0}, {0, 0}));
}

TEST(Dominators, LoopsReachThemselves)
{
    Function f("loop");
    int e = f.addBlock("entry");
    int body = f.addBlock("body");
    int exit = f.addBlock("exit");
    f.addEdge(e, body);
    f.addEdge(body, body);
    f.addEdge(body, exit);
    emitArg(f, e, "x");

    Dominators dom(f);
    // An instruction later in a loop body may execute before an
    // earlier one (next iteration).
    EXPECT_TRUE(dom.mayFollow({1, 5}, {1, 0}));
    EXPECT_TRUE(dom.blockDominates(body, exit));
}

TEST(ClobberPass, Figure2aListInsert)
{
    Function f = buildListInsert();
    ClobberResult res = analyzeClobbers(f);
    // Exactly one clobber site: the store to lst->hd. The stores to
    // the fresh node never alias transaction inputs.
    EXPECT_EQ(res.refinedSites.size(), 1u);
    EXPECT_EQ(f.at(res.refinedSites[0]).name,
              "lst.hd = n (clobber)");
}

TEST(ClobberPass, DominatedReadIsNotAnInput)
{
    // store p; x = load p; store p, y  -- the read is not an input.
    Function f("dominated_read");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId v = emitArg(f, b, "v");
    emitStore(f, b, p, v, "init");
    ValueId x = emitLoad(f, b, p, "read own write");
    emitStore(f, b, p, x, "write back");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_TRUE(res.candidateReads.empty());
    EXPECT_TRUE(res.refinedSites.empty());
}

TEST(ClobberPass, ReadThenWriteIsAClobber)
{
    Function f("rmw");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId x = emitLoad(f, b, p, "input read");
    ValueId y = emitBinop(f, b, x, "x+1");
    emitStore(f, b, p, y, "clobber");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_EQ(res.candidateReads.size(), 1u);
    ASSERT_EQ(res.refinedSites.size(), 1u);
    EXPECT_EQ(f.at(res.refinedSites[0]).name, "clobber");
}

TEST(ClobberPass, UnexposedCandidateIsRemoved)
{
    // Figure 5 (left): w1 dominates the read (may-alias), w2 after
    // the read must-aliases w1 -> if w2 hits the read's location,
    // the read was never an input.
    Function f("unexposed");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId v = emitArg(f, b, "v");
    ValueId exact = emitGep(f, b, p, 8, "p.f");
    ValueId fuzzy = emitGep(f, b, p, -1, "p.?");
    emitStore(f, b, exact, v, "w1");
    emitLoad(f, b, fuzzy, "candidate read");
    emitStore(f, b, exact, v, "w2 (unexposed)");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_EQ(res.removedUnexposed, 1);
    EXPECT_TRUE(res.refinedSites.empty());
    EXPECT_EQ(res.conservativeSites.size(), 1u);
}

TEST(ClobberPass, ShadowedCandidateIsRemoved)
{
    // Figure 5 (right): both w1 and w2 must-alias the read; w1
    // dominates w2, so w2's clobber is already logged.
    Function f("shadowed");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId x = emitLoad(f, b, p, "input read");
    ValueId y = emitBinop(f, b, x, "f(x)");
    emitStore(f, b, p, y, "w1 (real clobber)");
    emitStore(f, b, p, x, "w2 (shadowed)");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_EQ(res.conservativeSites.size(), 2u);
    ASSERT_EQ(res.refinedSites.size(), 1u);
    EXPECT_EQ(f.at(res.refinedSites[0]).name, "w1 (real clobber)");
    EXPECT_EQ(res.removedShadowed, 1);
}

TEST(ClobberPass, BranchesKeepBothSides)
{
    // A store on only one branch cannot shadow the other branch's.
    Function f("branches");
    int e = f.addBlock("entry");
    int l = f.addBlock("left");
    int r = f.addBlock("right");
    int j = f.addBlock("join");
    f.addEdge(e, l);
    f.addEdge(e, r);
    f.addEdge(l, j);
    f.addEdge(r, j);

    ValueId p = emitArg(f, e, "p");
    ValueId x = emitLoad(f, e, p, "input");
    emitStore(f, l, p, x, "left clobber");
    emitStore(f, r, p, x, "right clobber");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_EQ(res.refinedSites.size(), 2u);
}

TEST(ClobberPass, BothRefinementsFireInOneFunction)
{
    // The unexposed pattern (on p) and the shadowed pattern (on q)
    // concatenated in one body: each removal must fire independently
    // and only the real clobber survives.
    Function f("both_refinements");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId q = emitArg(f, b, "q");
    ValueId v = emitArg(f, b, "v");
    // Unexposed: w1 dominates the fuzzy read and must-aliases w2.
    ValueId exact = emitGep(f, b, p, 8, "p.f");
    ValueId fuzzy = emitGep(f, b, p, -1, "p.?");
    emitStore(f, b, exact, v, "w1");
    emitLoad(f, b, fuzzy, "unexposed read");
    emitStore(f, b, exact, v, "w2 (unexposed)");
    // Shadowed: w3 must-aliases and dominates w4.
    ValueId x = emitLoad(f, b, q, "input read");
    ValueId y = emitBinop(f, b, x, "f(x)");
    emitStore(f, b, q, y, "w3 (real clobber)");
    emitStore(f, b, q, x, "w4 (shadowed)");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_GE(res.removedUnexposed, 1);
    EXPECT_GE(res.removedShadowed, 1);
    ASSERT_EQ(res.refinedSites.size(), 1u);
    EXPECT_EQ(f.at(res.refinedSites[0]).name, "w3 (real clobber)");
}

TEST(ClobberPass, SiteSurvivesOnlyViaSecondPair)
{
    // S pairs with two reads. The (r1, S) pair dies as unexposed
    // (w0 dominates r1 and must-aliases S), but w0 sits on a branch,
    // so it neither unexposes nor shadows the entry read r2 — S must
    // stay instrumented via (r2, S) alone.
    Function f("second_pair");
    int e = f.addBlock("entry");
    int l = f.addBlock("left");
    int r = f.addBlock("right");
    int j = f.addBlock("join");
    f.addEdge(e, l);
    f.addEdge(e, r);
    f.addEdge(l, j);
    f.addEdge(r, j);

    ValueId p = emitArg(f, e, "p");
    ValueId v = emitArg(f, e, "v");
    ValueId pU = emitGep(f, e, p, -1, "p.u");
    ValueId pU2 = emitGep(f, e, p, -1, "p.u2");
    ValueId p16 = emitGep(f, e, p, 16, "p.g");
    emitLoad(f, e, p16, "r2 (wide read)");
    emitStore(f, l, pU, v, "w0");
    emitLoad(f, l, pU2, "r1 (unexposed)");
    emitStore(f, j, pU, v, "S (second-pair survivor)");

    ClobberResult res = analyzeClobbers(f);
    EXPECT_EQ(res.removedUnexposed, 1);
    // Both w0 (clobbers r2 on the left path) and S survive.
    ASSERT_EQ(res.refinedSites.size(), 2u);
    bool sSurvives = false;
    for (const auto& site : res.refinedSites)
        sSurvives |= f.at(site).name == "S (second-pair survivor)";
    EXPECT_TRUE(sSurvives);
    // S's only surviving pair is with the entry read r2.
    int sPairs = 0;
    for (const auto& [rd, st] : res.refinedPairs) {
        if (f.at(st).name != "S (second-pair survivor)")
            continue;
        sPairs++;
        EXPECT_EQ(f.at(rd).name, "r2 (wide read)");
    }
    EXPECT_EQ(sPairs, 1);
}

TEST(ClobberPass, SkiplistMatchesPaperCounts)
{
    // Paper Section 5.9: the pass removes two of five skiplist
    // clobber candidates, leaving three logged per transaction.
    Function f = buildSkiplistInsert(3);
    ClobberResult res = analyzeClobbers(f);
    EXPECT_GT(res.conservativeSites.size(), res.refinedSites.size());
    EXPECT_GE(res.removedShadowed + res.removedUnexposed, 2);
}

TEST(ClobberPass, EveryModuleRefinesOrHolds)
{
    for (const auto& mod : benchmarkModules()) {
        for (const auto& fn : mod.functions) {
            ClobberResult res = analyzeClobbers(fn);
            EXPECT_LE(res.refinedSites.size(),
                      res.conservativeSites.size())
                << mod.name << "/" << fn.name();
            EXPECT_LE(res.refinedPairs.size(),
                      res.conservativePairs.size());
            // Refinement never removes all real clobbers when any
            // read-modify-write exists.
            if (!res.conservativePairs.empty())
                EXPECT_FALSE(res.refinedPairs.empty() &&
                             res.removedUnexposed == 0 &&
                             res.removedShadowed == 0);
        }
    }
}

TEST(ClobberPass, BaselineTraversalIsStable)
{
    Function f = buildMemcachedSet();
    EXPECT_EQ(baselineTraversal(f), baselineTraversal(f));
    EXPECT_NE(baselineTraversal(f),
              baselineTraversal(buildListInsert()));
}

}  // namespace
}  // namespace cnvm::cir
