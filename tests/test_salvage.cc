/**
 * @file
 * Media-fault salvage tests: recovery over a pool whose NVM is not
 * just torn but *corrupt* — flipped bits mid-log, poisoned lines,
 * damaged intent tables. Each protocol must skip the damage with its
 * protocol-correct semantics (DESIGN.md §13), declare every salvage
 * action in the RecoveryReport, and leave the pool usable.
 *
 * The torture media sweep covers the same ground statistically; these
 * tests pin the individual salvage paths deterministically so a
 * regression names the exact path that broke.
 */
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>

#include "alloc/pm_allocator.h"
#include "nvm/fault_model.h"
#include "nvm/pool.h"
#include "runtimes/descriptor.h"
#include "runtimes/salvage.h"
#include "stats/counters.h"
#include "testing/crash_scheduler.h"
#include "testutil.h"

namespace cnvm::test {
namespace {

using torture::CrashScheduler;
using txn::RuntimeKind;

/** Append one self-validating entry; returns the next append pos. */
size_t
appendEntry(uint8_t* area, size_t pos, uint64_t targetOff,
            uint32_t seqLo, const uint8_t* payload, uint32_t len)
{
    rt::LogEntryHeader h{};
    h.targetOff = targetOff;
    h.len = len;
    h.seqLo = seqLo;
    h.checksum = rt::salvage::entryChecksum(h, payload);
    std::memcpy(area + pos, &h, sizeof(h));
    std::memcpy(area + pos + sizeof(h), payload, len);
    return pos + sizeof(h) + rt::salvage::alignUp8(len);
}

rt::TxDescriptor&
desc0(Harness& h)
{
    return *static_cast<rt::TxDescriptor*>(h.pool->slot(0));
}

uint8_t*
logArea0(Harness& h)
{
    return static_cast<uint8_t*>(h.pool->slot(0)) +
           rt::logAreaOffset();
}

size_t
logCap(Harness& h)
{
    return h.pool->slotBytes() - rt::logAreaOffset();
}

void
attachFaults(Harness& h)
{
    nvm::FaultConfig fc;
    fc.bitFlips = 1;
    fc.poisons = 1;
    fc.injectOnCrash = false;  // this suite injects by hand
    h.pool->setFaultModel(std::make_unique<nvm::FaultModel>(fc));
}

/**
 * Crash a push at successive persistency events until slot 0 is left
 * status=ongoing with at least `minEntries` valid log entries. The
 * pool is left in the crashed (all-lost) state; attempts that crash
 * too early or too late are recovered and retried. Returns false if
 * the sweep runs out of crash points.
 */
bool
crashWithOngoingLog(Harness& h, CrashScheduler& sched,
                    txn::Engine& eng, size_t minEntries,
                    std::vector<rt::ScannedEntry>& entries)
{
    int quietInARow = 0;
    for (uint64_t k = 1; quietInARow < 2 && k < 1500; k++) {
        sched.arm(k);
        bool crashed = false;
        try {
            txn::run(eng, kPushNode, h.rootPtr().raw(), 100 + k);
        } catch (const nvm::CrashInjected&) {
            crashed = true;
        }
        sched.disarm();
        if (!crashed) {
            quietInARow++;
            continue;
        }
        quietInARow = 0;
        h.pool->cache().crashAllLost();
        rt::TxDescriptor& d = desc0(h);
        if (d.status == static_cast<uint64_t>(rt::TxStatus::ongoing)) {
            rt::salvage::ScanStats st;
            rt::salvage::scanLogArea(nullptr, logArea0(h), logCap(h),
                                     static_cast<uint32_t>(d.txSeq),
                                     entries, &st);
            if (!st.damaged() && entries.size() >= minEntries)
                return true;
        }
        h.runtime->recover();
    }
    return false;
}

// ---------------------------------------------------------------
// scanLogArea unit tests: the resync / torn-tail / poison triage.
// ---------------------------------------------------------------

TEST(ScanSalvage, ResyncsAcrossMidLogCorruption)
{
    alignas(64) uint8_t area[1024] = {};
    uint8_t pay[64];
    std::memset(pay, 0xab, sizeof(pay));
    size_t p1 = appendEntry(area, 0, 4096, 7, pay, 32);
    size_t p2 = appendEntry(area, p1, 8192, 7, pay, 32);
    appendEntry(area, p2, 12288, 7, pay, 32);
    // Corrupt the middle entry's payload: the scan must drop exactly
    // that entry, prove the damage via the valid same-seq successor,
    // and keep going.
    area[p1 + sizeof(rt::LogEntryHeader)] ^= 0x40;

    std::vector<rt::ScannedEntry> out;
    rt::salvage::ScanStats st;
    rt::salvage::scanLogArea(nullptr, area, sizeof(area), 7, out, &st);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].targetOff, 4096u);
    EXPECT_EQ(out[1].targetOff, 12288u);
    EXPECT_EQ(st.droppedEntries, 1u);
    EXPECT_TRUE(st.sawCorruption);
    EXPECT_FALSE(st.tornTail);
    EXPECT_TRUE(st.damaged());
}

TEST(ScanSalvage, TornTailWithoutSuccessorIsNotCorruption)
{
    alignas(64) uint8_t area[1024] = {};
    uint8_t pay[64];
    std::memset(pay, 0xcd, sizeof(pay));
    size_t p1 = appendEntry(area, 0, 4096, 9, pay, 32);
    size_t p2 = appendEntry(area, p1, 8192, 9, pay, 32);
    appendEntry(area, p2, 12288, 9, pay, 32);
    // Corrupt the LAST entry: with no valid same-seq successor this
    // is indistinguishable from an ordinary torn append and must NOT
    // be classified as media damage.
    area[p2 + sizeof(rt::LogEntryHeader)] ^= 0x40;

    std::vector<rt::ScannedEntry> out;
    rt::salvage::ScanStats st;
    rt::salvage::scanLogArea(nullptr, area, sizeof(area), 9, out, &st);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_TRUE(st.tornTail);
    EXPECT_FALSE(st.sawCorruption);
    EXPECT_FALSE(st.damaged());
}

TEST(ScanSalvage, PoisonedPayloadDropsSingleEntry)
{
    Harness h(RuntimeKind::undo);
    attachFaults(h);
    // Build a three-entry log in (unused) slot 1 sized so that entry
    // 1's payload occupies exactly one cache line of its own.
    uint8_t* area = static_cast<uint8_t*>(h.pool->slot(1)) +
                    rt::logAreaOffset();
    uint8_t pay[64];
    std::memset(pay, 0x5a, sizeof(pay));
    size_t p1 = appendEntry(area, 0, 4096, 3, pay, 16);   // ends at 40
    ASSERT_EQ(p1, 40u);
    size_t p2 = appendEntry(area, p1, 8192, 3, pay, 64);  // pay @ 64
    ASSERT_EQ(p2, 128u);
    appendEntry(area, p2, 12288, 3, pay, 16);
    h.pool->faults()->poisonAt(h.pool->offsetOf(area + 64));

    std::vector<rt::ScannedEntry> out;
    rt::salvage::ScanStats st;
    rt::salvage::scanLogArea(h.pool.get(), area, 512, 3, out, &st);
    // Valid header, poisoned payload: drop just that entry.
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(st.droppedEntries, 1u);
    EXPECT_TRUE(st.sawPoison);
    EXPECT_FALSE(st.sawCorruption);
    EXPECT_TRUE(st.damaged());
}

// ---------------------------------------------------------------
// Protocol salvage paths.
// ---------------------------------------------------------------

TEST(UndoSalvage, MidLogFlipAbortsVisiblyAndHeals)
{
    Harness h(RuntimeKind::undo);
    CrashScheduler sched(*h.pool);
    auto eng = h.engine();
    for (uint64_t v = 1; v <= 4; v++)
        txn::run(eng, kPushNode, h.rootPtr().raw(), v);

    std::vector<rt::ScannedEntry> entries;
    ASSERT_TRUE(crashWithOngoingLog(h, sched, eng, 2, entries));
    attachFaults(h);
    // Flip one bit in the FIRST entry's pre-image: mid-log damage
    // with valid successors — the rollback cannot fully revert.
    h.pool->faults()->flipBit(
        *h.pool, h.pool->offsetOf(entries[0].data), 3);

    txn::RecoveryReport rep = h.runtime->recover();
    EXPECT_EQ(rep.salvageAborted, 1u);
    EXPECT_GE(rep.logEntriesDropped, 1u);
    EXPECT_FALSE(rep.clean());
    ASSERT_FALSE(rep.slots.empty());
    bool declared = false;
    for (const auto& s : rep.slots) {
        if (s.action == txn::SlotAction::salvageAborted) {
            declared = true;
            EXPECT_EQ(s.note, "undo log corrupted mid-log");
        }
    }
    EXPECT_TRUE(declared);

    // The slot was rebuilt (healed), so the engine keeps working and
    // the next recovery pass has nothing left to salvage.
    size_t len = h.listLen();
    txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{999});
    EXPECT_EQ(h.listLen(), len + 1);
    EXPECT_TRUE(h.runtime->recover().clean());
}

TEST(ClobberSalvage, PoisonedLogRestoresWithoutReexecution)
{
    Harness h(RuntimeKind::clobber);
    CrashScheduler sched(*h.pool);
    auto eng = h.engine();
    for (uint64_t v = 1; v <= 4; v++)
        txn::run(eng, kPushNode, h.rootPtr().raw(), v);

    std::vector<rt::ScannedEntry> entries;
    ASSERT_TRUE(crashWithOngoingLog(h, sched, eng, 1, entries));
    attachFaults(h);
    // Poison the first log line: some clobbered inputs are gone, so
    // re-executing the txfunc would read garbage. Recovery must
    // restore what validated and refuse to resume.
    h.pool->faults()->poisonAt(h.pool->offsetOf(logArea0(h)));

    auto pre = stats::aggregate();
    txn::RecoveryReport rep = h.runtime->recover();
    auto delta = stats::aggregate() - pre;
    EXPECT_EQ(delta[stats::Counter::reexecutions], 0u);
    EXPECT_GE(rep.salvageAborted, 1u);
    EXPECT_GE(rep.poisonedReads, 1u);
    bool declared = false;
    for (const auto& s : rep.slots) {
        if (s.action == txn::SlotAction::salvageAborted) {
            declared = true;
            EXPECT_EQ(s.note, "clobber log poisoned");
        }
    }
    EXPECT_TRUE(declared);

    // Log appends overwrite the poisoned line, healing it.
    size_t len = h.listLen();
    txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{999});
    EXPECT_EQ(h.listLen(), len + 1);
    EXPECT_TRUE(h.runtime->recover().clean());
}

TEST(RedoSalvage, CommittingLogCorruptionLosesTransactionVisibly)
{
    // Redo's committing state promises roll-forward; a damaged log
    // breaks that promise and must be declared as a LOST committed
    // transaction, never replayed partially.
    bool exercised = false;
    for (uint64_t k = 1; k < 1500 && !exercised; k++) {
        Harness h(RuntimeKind::redo);
        CrashScheduler sched(*h.pool);
        auto eng = h.engine();
        txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{1});
        txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{2});
        sched.arm(k);
        bool crashed = false;
        try {
            txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{777});
        } catch (const nvm::CrashInjected&) {
            crashed = true;
        }
        sched.disarm();
        if (!crashed)
            break;  // k is past every event of a push
        h.pool->cache().crashAllLost();
        rt::TxDescriptor& d = desc0(h);
        if (d.status != static_cast<uint64_t>(rt::TxStatus::committing))
            continue;
        std::vector<rt::ScannedEntry> entries;
        rt::salvage::ScanStats st;
        rt::salvage::scanLogArea(nullptr, logArea0(h), logCap(h),
                                 static_cast<uint32_t>(d.txSeq),
                                 entries, &st);
        if (st.damaged() || entries.empty())
            continue;
        attachFaults(h);
        h.pool->faults()->flipBit(
            *h.pool, h.pool->offsetOf(entries[0].data), 1);

        txn::RecoveryReport rep = h.runtime->recover();
        EXPECT_GE(rep.salvageAborted, 1u);
        bool declared = false;
        for (const auto& s : rep.slots) {
            if (s.action == txn::SlotAction::salvageAborted) {
                declared = true;
                EXPECT_NE(s.note.find("committed transaction lost"),
                          std::string::npos);
            }
        }
        EXPECT_TRUE(declared);
        // The baseline survives and the engine stays usable.
        EXPECT_GE(h.listLen(), 2u);
        txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{999});
        EXPECT_TRUE(h.runtime->recover().clean());
        exercised = true;
    }
    EXPECT_TRUE(exercised);
}

TEST(IntentSalvage, PoisonedIntentTableIsDeclaredLost)
{
    Harness h(RuntimeKind::undo);
    auto eng = h.engine();
    txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{1});

    // Stage a live-looking intent table on the idle slot, then poison
    // it: the guarded intent path must declare the table lost instead
    // of replaying garbage into the allocator bitmap — and must not
    // be shadowed by the begin-record vetting in slotRecoverable.
    rt::TxDescriptor& d = desc0(h);
    d.intentSeq = d.txSeq;
    d.intentCount = 1;
    d.intents[0].payloadOff = h.root().head.raw();
    d.intents[0].payloadBytes = sizeof(TestNode);
    d.intents[0].isFree = 0;
    d.intentSum = rt::salvage::intentChecksum(d.intentSeq,
                                              d.intentCount, d.intents);
    attachFaults(h);
    // Poison a line wholly inside the table: the line holding
    // intentSeq itself also carries the tail of the v_log args, so
    // poisoning it trips the (stricter) begin-record guard instead.
    h.pool->faults()->poisonAt(h.pool->offsetOf(&d.intents[16]));

    txn::RecoveryReport rep = h.runtime->recover();
    EXPECT_EQ(rep.intentTablesLost, 1u);
    EXPECT_GE(rep.salvageAborted, 1u);
    bool declared = false;
    for (const auto& s : rep.slots) {
        if (s.action == txn::SlotAction::salvageAborted) {
            declared = true;
            EXPECT_EQ(s.note, "alloc intent table unreadable or corrupt");
        }
    }
    EXPECT_TRUE(declared);
    // The reset rewrote the descriptor, clearing the poison.
    EXPECT_TRUE(h.runtime->recover().clean());
}

// ---------------------------------------------------------------
// Instant restart: the triage / heal split behind lazy recovery.
// Every protocol's full recover() is now triage + healSlot per slot
// + healHeap; these tests pin the pieces individually.
// ---------------------------------------------------------------

/**
 * Crash a push on slot 0 at successive event indices until the torn
 * image actually leaves the slot pending (a crash before the status
 * line durably flipped reverts to a clean slot, which triage rightly
 * ignores). Attempts that land clean are recovered and retried.
 * @return false if the sweep runs out of crash points.
 */
bool
crashUntilTriagePending(Harness& h, CrashScheduler& sched,
                        txn::Engine& eng)
{
    for (uint64_t v = 1; v <= 4; v++)
        txn::run(eng, kPushNode, h.rootPtr().raw(), v);
    for (uint64_t k = 5; k < 1500; k++) {
        sched.arm(k);
        bool crashed = false;
        try {
            txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{50});
        } catch (const nvm::CrashInjected&) {
            crashed = true;
        }
        sched.disarm();
        if (!crashed)
            return false;  // swept past every event of the push
        h.pool->cache().crashAllLost();
        if (!h.runtime->recoveryTriage().entries.empty())
            return true;
        h.runtime->recover();  // clean image: discard, next index
    }
    return false;
}

/**
 * Triage must be repeatable: running it twice over the same torn
 * image yields the same classification, and it never touches the
 * dirty slot's durable state (healing is a separate, later step).
 */
TEST(LazyTriage, TriageIsStableAndLeavesDirtySlotsUntouched)
{
    for (RuntimeKind kind :
         {RuntimeKind::undo, RuntimeKind::redo, RuntimeKind::clobber,
          RuntimeKind::atlas, RuntimeKind::ido}) {
        SCOPED_TRACE(static_cast<int>(kind));
        Harness h(kind);
        CrashScheduler sched(*h.pool);
        auto eng = h.engine();
        ASSERT_TRUE(crashUntilTriagePending(h, sched, eng));

        rt::TxDescriptor before = desc0(h);
        txn::RecoveryIndex a = h.runtime->recoveryTriage();
        txn::RecoveryIndex b = h.runtime->recoveryTriage();
        EXPECT_TRUE(a.supportsLazy);
        ASSERT_EQ(a.entries.size(), b.entries.size());
        for (size_t i = 0; i < a.entries.size(); i++) {
            EXPECT_EQ(a.entries[i].tid, b.entries[i].tid);
            EXPECT_EQ(static_cast<int>(a.entries[i].cls),
                      static_cast<int>(b.entries[i].cls));
        }
        ASSERT_FALSE(a.entries.empty());
        EXPECT_EQ(a.entries[0].tid, 0u);
        rt::TxDescriptor& after = desc0(h);
        EXPECT_EQ(after.status, before.status);
        EXPECT_EQ(after.txSeq, before.txSeq);

        // The untouched image still heals fully.
        h.runtime->recover();
        EXPECT_TRUE(h.listLen() == 4 || h.listLen() == 5);
        EXPECT_EQ(h.root().sum, h.listSum());
    }
}

/**
 * healSlot is the per-entry heal step: applying it to every triaged
 * entry plus one healHeap must equal a full recover(), and applying
 * it twice must change nothing (the heal re-derives the slot's class
 * from the media, and a healed slot is simply clean).
 */
TEST(LazyHeal, PerEntryHealsAreCompleteAndIdempotent)
{
    for (RuntimeKind kind :
         {RuntimeKind::undo, RuntimeKind::redo, RuntimeKind::clobber,
          RuntimeKind::atlas, RuntimeKind::ido}) {
        SCOPED_TRACE(static_cast<int>(kind));
        Harness h(kind);
        CrashScheduler sched(*h.pool);
        auto eng = h.engine();
        ASSERT_TRUE(crashUntilTriagePending(h, sched, eng));

        txn::RecoveryIndex idx = h.runtime->recoveryTriage();
        ASSERT_FALSE(idx.entries.empty());
        for (const txn::IndexEntry& e : idx.entries)
            h.runtime->healSlot(e);
        size_t len = h.listLen();
        uint64_t sum = h.root().sum;
        EXPECT_TRUE(len == 4 || len == 5);
        EXPECT_EQ(sum, h.listSum());
        // Healing an already-healed entry is a no-op.
        for (const txn::IndexEntry& e : idx.entries)
            h.runtime->healSlot(e);
        EXPECT_EQ(h.listLen(), len);
        EXPECT_EQ(h.root().sum, sum);
        h.runtime->healHeap();

        EXPECT_TRUE(h.runtime->recover().clean());
        txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{999});
        EXPECT_EQ(h.listLen(), len + 1);
    }
}

/**
 * Exhaustive re-tear of the lazy path itself: arm the crash trap at
 * every event index inside triage + first-touch heals + settle,
 * re-tearing after each trap, until a full lazy recovery runs quiet.
 * Every retry re-triages from scratch; the final state must satisfy
 * the protocol's atomicity contract.
 */
TEST(LazyReTear, LazyRecoverySurvivesCrashesAtEveryIndex)
{
    for (RuntimeKind kind :
         {RuntimeKind::undo, RuntimeKind::redo, RuntimeKind::clobber,
          RuntimeKind::atlas, RuntimeKind::ido}) {
        SCOPED_TRACE(static_cast<int>(kind));
        Harness h(kind);
        CrashScheduler sched(*h.pool);
        auto eng = h.engine();
        ASSERT_TRUE(crashUntilTriagePending(h, sched, eng));

        int recoveryCrashes = 0;
        for (uint64_t k = 1; k < 800; k++) {
            sched.arm(k);
            bool recCrashed = false;
            try {
                eng.recover(txn::RecoveryMode::lazy,
                            /* backgroundHealer */ false);
                for (unsigned t = 0; t < h.pool->maxThreads(); t++)
                    eng.admitSlot(t);
                eng.finishRecovery();
            } catch (const nvm::CrashInjected&) {
                recCrashed = true;
                recoveryCrashes++;
            }
            sched.disarm();
            if (!recCrashed)
                break;
            h.pool->cache().crashAllLost();
        }
        EXPECT_GT(recoveryCrashes, 0);
        EXPECT_EQ(eng.recoveryPending(), 0u);
        EXPECT_TRUE(h.listLen() == 4 || h.listLen() == 5);
        EXPECT_EQ(h.root().sum, h.listSum());
        EXPECT_TRUE(h.runtime->recover().clean());
    }
}

/**
 * Triaged hold ranges pin suspect heap blocks out of the free map
 * until the owning slot's entry heals; settling the session releases
 * everything and reconciles the heap.
 */
TEST(LazyHolds, IntentHoldsPinnedUntilEntryHeals)
{
    Harness h(RuntimeKind::undo);
    auto eng = h.engine();
    txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{1});

    // Stage a live intent table on the idle slot: triage must report
    // the slot pending and pin the intent's block as a hold range.
    rt::TxDescriptor& d = desc0(h);
    d.intentSeq = d.txSeq;
    d.intentCount = 1;
    d.intents[0].payloadOff = h.root().head.raw();
    d.intents[0].payloadBytes = sizeof(TestNode);
    d.intents[0].isFree = 0;
    d.intentSum = rt::salvage::intentChecksum(d.intentSeq,
                                              d.intentCount, d.intents);

    txn::RecoveryIndex idx = h.runtime->recoveryTriage();
    ASSERT_EQ(idx.entries.size(), 1u);
    EXPECT_EQ(idx.entries[0].tid, 0u);
    EXPECT_EQ(static_cast<int>(idx.entries[0].cls),
              static_cast<int>(txn::SlotClass::idleIntents));
    ASSERT_EQ(idx.holds.size(), 1u);
    EXPECT_EQ(idx.holds[0].tid, 0u);

    eng.recover(txn::RecoveryMode::lazy, /* backgroundHealer */ false);
    EXPECT_EQ(h.heap->holdCount(), 1u);
    EXPECT_GE(eng.recoveryPending(), 1u);

    // First touch heals the entry and releases its holds.
    eng.admitSlot(0);
    EXPECT_EQ(h.heap->holdCount(), 0u);

    eng.finishRecovery();
    EXPECT_EQ(eng.recoveryPending(), 0u);
    EXPECT_TRUE(h.runtime->recover().clean());
    txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{2});
    EXPECT_EQ(h.listLen(), 2u);
}

// ---------------------------------------------------------------
// Regression guards: the ordinary crash path stays clean, and the
// report is surfaced through the engine.
// ---------------------------------------------------------------

TEST(CleanCrash, OrdinaryTornRecoveryReportsClean)
{
    for (RuntimeKind kind :
         {RuntimeKind::undo, RuntimeKind::redo, RuntimeKind::clobber,
          RuntimeKind::atlas, RuntimeKind::ido}) {
        Harness h(kind);
        CrashScheduler sched(*h.pool);
        auto eng = h.engine();
        for (uint64_t v = 1; v <= 4; v++)
            txn::run(eng, kPushNode, h.rootPtr().raw(), v);
        bool crashed = false;
        for (uint64_t k = 5; k < 1500 && !crashed; k++) {
            sched.arm(k);
            try {
                txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{50});
            } catch (const nvm::CrashInjected&) {
                crashed = true;
            }
            sched.disarm();
        }
        ASSERT_TRUE(crashed) << "kind " << static_cast<int>(kind);
        h.pool->cache().crashAllLost();
        txn::RecoveryReport rep = h.runtime->recover();
        EXPECT_TRUE(rep.clean()) << rep.toString();
        EXPECT_TRUE(h.listLen() == 4 || h.listLen() == 5);
    }
}

TEST(EngineReport, LastRecoveryIsKept)
{
    Harness h(RuntimeKind::undo);
    auto eng = h.engine();
    txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{1});
    txn::RecoveryReport rep = eng.recover();
    EXPECT_EQ(rep.slotsScanned, h.pool->maxThreads());
    EXPECT_EQ(eng.lastRecovery.slotsScanned, h.pool->maxThreads());
    EXPECT_TRUE(eng.lastRecovery.clean());
}

TEST(VerifyPool, CleanPoolThenCorruptBlockHeader)
{
    Harness h(RuntimeKind::undo);
    auto eng = h.engine();
    for (uint64_t v = 1; v <= 3; v++)
        txn::run(eng, kPushNode, h.rootPtr().raw(), v);

    rt::salvage::VerifyResult clean = rt::salvage::verifyPool(*h.pool);
    EXPECT_TRUE(clean.ok()) << (clean.problems.empty()
                                    ? ""
                                    : clean.problems.front());

    // Smash the leading block header of the allocated run (the walk
    // validates one header per run; the root object, as the first
    // allocation, leads it).
    uint64_t a = h.pool->root();
    alloc::BlockHeader bad{};
    bad.payloadBytes = 64;
    bad.check = 0xbadbad;
    std::memcpy(h.pool->base() + a - sizeof(alloc::BlockHeader), &bad,
                sizeof(bad));
    rt::salvage::VerifyResult dirty = rt::salvage::verifyPool(*h.pool);
    EXPECT_FALSE(dirty.ok());
}

}  // namespace
}  // namespace cnvm::test
