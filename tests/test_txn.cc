/**
 * @file
 * Tests of the transaction plumbing: argument serialization, the
 * txfunc registry, engine thread-slot routing, and cross-process
 * recovery on a file-backed pool (fork-based).
 */
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/context.h"
#include "testutil.h"

namespace cnvm::test {
namespace {

TEST(Args, RoundTripScalarsAndSpans)
{
    txn::ArgWriter w;
    w.put<uint64_t>(42);
    w.put<int32_t>(-7);
    w.putBytes("hello", 5);
    w.put<double>(2.5);
    w.putBytes("", 0);

    txn::ArgReader r(w.bytes());
    EXPECT_EQ(r.get<uint64_t>(), 42u);
    EXPECT_EQ(r.get<int32_t>(), -7);
    EXPECT_EQ(r.getString(), "hello");
    EXPECT_EQ(r.get<double>(), 2.5);
    EXPECT_EQ(r.getString(), "");
}

TEST(Args, UnderflowIsCaught)
{
    txn::ArgWriter w;
    w.put<uint32_t>(1);
    txn::ArgReader r(w.bytes());
    EXPECT_EQ(r.get<uint32_t>(), 1u);
    EXPECT_THROW(r.get<uint64_t>(), PanicError);
}

TEST(Args, TruncatedSpanIsCaught)
{
    // A length prefix larger than the remaining payload must not
    // read out of bounds.
    txn::ArgWriter w;
    w.put<uint32_t>(1000);  // looks like a huge span length
    txn::ArgReader r(w.bytes());
    EXPECT_THROW(r.getBytes(), PanicError);
}

TEST(Registry, StableIdsAcrossLookups)
{
    auto fn = [](txn::Tx&, txn::ArgReader&) {};
    txn::FuncId a = txn::registerTxFunc("registry_test_fn", fn);
    txn::FuncId b = txn::registerTxFunc("registry_test_fn", fn);
    EXPECT_EQ(a, b);
    EXPECT_NE(txn::lookupTxFunc(a), nullptr);
    EXPECT_STREQ(txn::txFuncName(a), "registry_test_fn");
}

TEST(Registry, UnknownIdIsFatal)
{
    EXPECT_THROW(txn::lookupTxFunc(0xdeadbeef), FatalError);
}

TEST(Engine, ThreadTidRouting)
{
    txn::setThreadTid(5);
    EXPECT_EQ(txn::currentTid(), 5u);
    {
        // A logical context overrides the thread-local id.
        sim::ThreadCtx ctx(2);
        sim::Scope scope(&ctx);
        EXPECT_EQ(txn::currentTid(), 2u);
    }
    EXPECT_EQ(txn::currentTid(), 5u);
    txn::setThreadTid(0);
}

TEST(Engine, ThreadTidValidatedAgainstPoolSlots)
{
    Harness h(txn::RuntimeKind::clobber);  // maxThreads = 8
    auto eng = h.engine();

    txn::setThreadTid(7);  // last valid slot
    EXPECT_EQ(txn::currentTid(), 7u);

    // Out-of-range slots would scribble over a neighbor's log area:
    // both binding paths must refuse with a typed, catchable error.
    try {
        txn::setThreadTid(8);
        FAIL() << "setThreadTid(8) accepted on an 8-slot pool";
    } catch (const txn::SlotRangeError& e) {
        EXPECT_EQ(e.tid(), 8u);
        EXPECT_EQ(e.slots(), 8u);
    }
    EXPECT_EQ(txn::currentTid(), 7u);  // rejected bind left tid alone

    EXPECT_THROW(eng.bindThisThread(64), txn::SlotRangeError);
    eng.bindThisThread(3);
    EXPECT_EQ(txn::currentTid(), 3u);
    txn::setThreadTid(0);
}

/**
 * True cross-process recovery: the child opens the shared pool file,
 * pushes nodes, crashes mid-transaction (tearing the cache image),
 * and dies. The parent then opens the same file, recovers, and
 * verifies the interrupted push completed exactly once.
 */
TEST(CrossProcess, ForkCrashRecover)
{
    std::string path = "/tmp/cnvm_fork_test.pool";
    ::unlink(path.c_str());

    // Parent creates the pool layout first.
    uint64_t rootOff;
    {
        nvm::PoolConfig cfg;
        cfg.path = path;
        cfg.size = 16 << 20;
        cfg.maxThreads = 4;
        cfg.slotBytes = 128 << 10;
        auto pool = nvm::Pool::create(cfg);
        nvm::Pool* prev = nvm::Pool::current();
        nvm::Pool::setCurrent(pool.get());
        alloc::PmAllocator heap(*pool);
        rt::ClobberRuntime runtime(*pool, heap);
        txn::Engine eng(runtime);
        static const txn::FuncId kMk = txn::registerTxFunc(
            "fork_mk_root", [](txn::Tx& tx, txn::ArgReader&) {
                auto r = tx.pnew<TestRoot>();
                tx.pool().setRoot(r.raw());
            });
        txn::run(eng, kMk);
        rootOff = pool->root();
        nvm::Pool::setCurrent(prev);
    }

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: commit 3 pushes, crash inside the 4th, die.
        auto pool = nvm::Pool::open(path);
        nvm::Pool::setCurrent(pool.get());
        alloc::PmAllocator heap(*pool);
        rt::ClobberRuntime runtime(*pool, heap);
        runtime.recover();
        txn::Engine eng(runtime);
        for (uint64_t v = 1; v <= 3; v++)
            txn::run(eng, kPushNode, rootOff, v);
        pool->armWriteTrap(9);
        try {
            txn::run(eng, kPushNode, rootOff, uint64_t(100));
        } catch (const nvm::CrashInjected&) {
            pool->simulateCrash(4242);  // tear the unflushed lines
            ::_exit(0);                 // power gone
        }
        ::_exit(1);  // trap never fired: test setup broken
    }

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);

    // Parent: reopen, recover, verify the push completed.
    auto pool = nvm::Pool::open(path);
    nvm::Pool* prev = nvm::Pool::current();
    nvm::Pool::setCurrent(pool.get());
    alloc::PmAllocator heap(*pool);
    rt::ClobberRuntime runtime(*pool, heap);
    runtime.recover();

    auto root = nvm::PPtr<TestRoot>(rootOff);
    uint64_t sum = 0;
    size_t len = 0;
    for (auto n = root->head; !n.isNull(); n = n->next) {
        sum += n->value;
        len++;
    }
    EXPECT_EQ(len, 4u);
    EXPECT_EQ(sum, 106u);
    EXPECT_EQ(root->sum, 106u);
    nvm::Pool::setCurrent(prev);
    ::unlink(path.c_str());
}

TEST(Runtime, NestedTransactionsAreRejected)
{
    Harness h(txn::RuntimeKind::clobber);
    auto eng = h.engine();
    static const txn::FuncId kNest = txn::registerTxFunc(
        "test_nested", [](txn::Tx& tx, txn::ArgReader& a) {
            auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
            txn::Engine inner(tx.runtime());
            txn::run(inner, kIncrCounter, root.raw());
        });
    EXPECT_THROW(txn::run(eng, kNest, h.rootPtr().raw()), PanicError);
}

TEST(Runtime, OversizedArgBlobIsFatal)
{
    Harness h(txn::RuntimeKind::clobber);
    auto eng = h.engine();
    std::string huge(5000, 'x');
    EXPECT_THROW(
        txn::run(eng, kPushNode, h.rootPtr().raw(),
                 std::string_view(huge)),
        PanicError);
}

}  // namespace
}  // namespace cnvm::test
