/**
 * @file
 * Tests of the persistent data structures across every runtime:
 * functional behaviour, structural invariants, crash recovery, and
 * real-OS-thread safety.
 */
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "structures/avltree.h"
#include "structures/bptree.h"
#include "structures/kv.h"
#include "structures/rbtree.h"
#include "testutil.h"

namespace cnvm::test {
namespace {

using txn::RuntimeKind;

std::string
keyOf(uint64_t i)
{
    // 8-byte binary keys, scrambled, as the YCSB benchmark uses.
    uint64_t k = mixHash(i);
    std::string s(8, '\0');
    for (int b = 7; b >= 0; b--) {
        s[b] = static_cast<char>(k & 0xff);
        k >>= 8;
    }
    return s;
}

std::string
valOf(uint64_t i, size_t len = 32)
{
    std::string s(len, '\0');
    Xorshift rng(i * 77 + 1);
    for (auto& c : s)
        c = static_cast<char>('a' + rng.nextUint(26));
    return s;
}

ds::KvConfig
smallCfg()
{
    ds::KvConfig cfg;
    cfg.hashShards = 16;
    cfg.hashBucketsPerShard = 64;
    cfg.lockShards = 64;
    return cfg;
}

struct KvCase {
    std::string structure;
    RuntimeKind kind;
};

class KvStructures : public ::testing::TestWithParam<KvCase> {};

TEST_P(KvStructures, InsertLookupRemoveAgainstModel)
{
    auto [structure, kind] = GetParam();
    Harness h(kind);
    auto eng = h.engine();
    auto kv = ds::makeKv(structure, eng, 0, smallCfg());

    std::map<std::string, std::string> model;
    Xorshift rng(99);
    for (uint64_t i = 0; i < 400; i++) {
        uint64_t op = rng.nextUint(10);
        uint64_t idx = rng.nextUint(120);
        std::string k = keyOf(idx);
        if (op < 6) {
            std::string v = valOf(i, 16 + idx % 48);
            kv->insert(k, v);
            model[k] = v;
        } else if (op < 8) {
            bool removed = kv->remove(k);
            EXPECT_EQ(removed, model.erase(k) > 0) << "op " << i;
        } else {
            ds::LookupResult r;
            bool found = kv->lookup(k, &r);
            auto it = model.find(k);
            ASSERT_EQ(found, it != model.end()) << "op " << i;
            if (found)
                ASSERT_EQ(r.str(), it->second) << "op " << i;
        }
    }
    // Final full verification.
    for (const auto& [k, v] : model) {
        ds::LookupResult r;
        ASSERT_TRUE(kv->lookup(k, &r));
        ASSERT_EQ(r.str(), v);
    }
}

TEST_P(KvStructures, ReattachAfterCleanRestart)
{
    auto [structure, kind] = GetParam();
    if (kind == RuntimeKind::noLog)
        GTEST_SKIP() << "no durability contract";
    Harness h(kind);
    auto eng = h.engine();
    uint64_t rootOff;
    {
        auto kv = ds::makeKv(structure, eng, 0, smallCfg());
        for (uint64_t i = 0; i < 100; i++)
            kv->insert(keyOf(i), valOf(i));
        rootOff = kv->rootOff();
    }
    // Simulated power-off after the last commit + fresh handles.
    h.pool->cache().crashAllLost();
    h.runtime->recover();
    auto kv = ds::makeKv(structure, eng, rootOff, smallCfg());
    for (uint64_t i = 0; i < 100; i++) {
        ds::LookupResult r;
        ASSERT_TRUE(kv->lookup(keyOf(i), &r)) << i;
        ASSERT_EQ(r.str(), valOf(i));
    }
}

TEST_P(KvStructures, CrashSweepKeepsStructureConsistent)
{
    auto [structure, kind] = GetParam();
    if (kind == RuntimeKind::noLog || kind == RuntimeKind::ido)
        GTEST_SKIP() << "not a crash-recoverable configuration";
    Harness h(kind);
    auto eng = h.engine();
    auto kv = ds::makeKv(structure, eng, 0, smallCfg());

    // Committed base load.
    std::map<std::string, std::string> model;
    for (uint64_t i = 0; i < 150; i++) {
        kv->insert(keyOf(i), valOf(i));
        model[keyOf(i)] = valOf(i);
    }

    Xorshift rng(4242);
    size_t crashes = 0;
    for (uint64_t i = 150; i < 270; i++) {
        std::string k = keyOf(i);
        std::string v = valOf(i);
        // Crash at a pseudo-random write inside the transaction.
        uint64_t trap = 1 + rng.nextUint(40);
        h.pool->armWriteTrap(trap);
        bool crashed = false;
        try {
            kv->insert(k, v);
        } catch (const nvm::CrashInjected&) {
            crashed = true;
            crashes++;
        }
        h.pool->armWriteTrap(0);
        if (crashed) {
            if (rng.nextBool(0.5))
                h.pool->cache().crashAllLost();
            else
                h.pool->simulateCrash(i);
            h.runtime->recover();
            // Fresh volatile handle, as after a restart.
            kv = ds::makeKv(structure, eng, kv->rootOff(), smallCfg());
        }
        // The interrupted key is fully present or fully absent.
        ds::LookupResult r;
        if (kv->lookup(k, &r)) {
            ASSERT_EQ(r.str(), v) << "iteration " << i;
            model[k] = v;
        } else {
            ASSERT_TRUE(crashed) << "iteration " << i;
        }
    }
    EXPECT_GT(crashes, 20u);

    // Every committed entry survived every crash.
    for (const auto& [k, v] : model) {
        ds::LookupResult r;
        ASSERT_TRUE(kv->lookup(k, &r));
        ASSERT_EQ(r.str(), v);
    }
}

TEST_P(KvStructures, RemoveCrashSweepNeverLosesOtherKeys)
{
    auto [structure, kind] = GetParam();
    if (kind == RuntimeKind::noLog || kind == RuntimeKind::ido)
        GTEST_SKIP() << "not a crash-recoverable configuration";
    Harness h(kind);
    auto eng = h.engine();
    auto kv = ds::makeKv(structure, eng, 0, smallCfg());

    std::map<std::string, std::string> model;
    for (uint64_t i = 0; i < 120; i++) {
        kv->insert(keyOf(i), valOf(i));
        model[keyOf(i)] = valOf(i);
    }

    Xorshift rng(2121);
    size_t crashes = 0;
    for (uint64_t i = 0; i < 80; i++) {
        std::string k = keyOf(i);
        h.pool->armWriteTrap(1 + rng.nextUint(30));
        bool crashed = false;
        try {
            kv->remove(k);
        } catch (const nvm::CrashInjected&) {
            crashed = true;
            crashes++;
            if (rng.nextBool(0.5))
                h.pool->cache().crashAllLost();
            else
                h.pool->simulateCrash(i);
            h.runtime->recover();
            kv = ds::makeKv(structure, eng, kv->rootOff(), smallCfg());
        }
        h.pool->armWriteTrap(0);
        // The removed key is gone or fully intact; track the outcome.
        ds::LookupResult r;
        if (kv->lookup(k, &r)) {
            ASSERT_TRUE(crashed) << "iteration " << i;
            ASSERT_EQ(r.str(), model[k]);
        } else {
            model.erase(k);
        }
    }
    EXPECT_GT(crashes, 10u);
    for (const auto& [k, v] : model) {
        ds::LookupResult r;
        ASSERT_TRUE(kv->lookup(k, &r)) << k.size();
        ASSERT_EQ(r.str(), v);
    }
}

TEST_P(KvStructures, UpdateCrashSweepIsAtomicPerKey)
{
    auto [structure, kind] = GetParam();
    if (kind == RuntimeKind::noLog || kind == RuntimeKind::ido)
        GTEST_SKIP() << "not a crash-recoverable configuration";
    Harness h(kind);
    auto eng = h.engine();
    auto kv = ds::makeKv(structure, eng, 0, smallCfg());

    std::map<std::string, std::string> model;
    for (uint64_t i = 0; i < 60; i++) {
        kv->insert(keyOf(i), valOf(i));
        model[keyOf(i)] = valOf(i);
    }

    Xorshift rng(777);
    size_t crashes = 0;
    for (uint64_t round = 0; round < 120; round++) {
        uint64_t idx = rng.nextUint(60);
        std::string k = keyOf(idx);
        // Alternate same-size (in-place) and different-size updates.
        size_t len = round % 2 == 0 ? 32 : 16 + round % 40;
        std::string v = valOf(1000 + round, len);
        h.pool->armWriteTrap(1 + rng.nextUint(25));
        bool crashed = false;
        try {
            kv->insert(k, v);
        } catch (const nvm::CrashInjected&) {
            crashed = true;
            crashes++;
            if (rng.nextBool(0.5))
                h.pool->cache().crashAllLost();
            else
                h.pool->simulateCrash(round);
            h.runtime->recover();
            kv = ds::makeKv(structure, eng, kv->rootOff(), smallCfg());
        }
        h.pool->armWriteTrap(0);
        // The key must hold either the old or the new value, whole.
        ds::LookupResult r;
        ASSERT_TRUE(kv->lookup(k, &r)) << "round " << round;
        if (r.str() == v) {
            model[k] = v;
        } else {
            ASSERT_EQ(r.str(), model[k]) << "round " << round;
            ASSERT_TRUE(crashed) << "round " << round;
        }
    }
    EXPECT_GT(crashes, 15u);
}

std::string
caseName(const ::testing::TestParamInfo<KvCase>& info)
{
    std::string rt;
    switch (info.param.kind) {
      case RuntimeKind::noLog: rt = "nolog"; break;
      case RuntimeKind::undo: rt = "pmdk"; break;
      case RuntimeKind::redo: rt = "mnemosyne"; break;
      case RuntimeKind::clobber: rt = "clobber"; break;
      case RuntimeKind::atlas: rt = "atlas"; break;
      case RuntimeKind::ido: rt = "ido"; break;
    }
    return info.param.structure + "_" + rt;
}

std::vector<KvCase>
allCases()
{
    std::vector<KvCase> cases;
    for (const auto& s :
         {"list", "hashmap", "skiplist", "rbtree", "bptree"}) {
        for (auto k : {RuntimeKind::noLog, RuntimeKind::undo,
                       RuntimeKind::redo, RuntimeKind::clobber,
                       RuntimeKind::atlas}) {
            cases.push_back({s, k});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStructures, KvStructures,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(RbTreeInvariants, HoldUnderInsertAndDelete)
{
    Harness h(RuntimeKind::clobber);
    auto eng = h.engine();
    ds::RbTree tree(eng);
    Xorshift rng(5);
    std::map<std::string, std::string> model;
    for (int i = 0; i < 600; i++) {
        uint64_t idx = rng.nextUint(200);
        std::string k = keyOf(idx);
        if (rng.nextBool(0.65)) {
            tree.insert(k, valOf(idx));
            model[k] = valOf(idx);
        } else {
            EXPECT_EQ(tree.remove(k), model.erase(k) > 0);
        }
        ASSERT_GE(tree.validate(), 0) << "after op " << i;
        ASSERT_EQ(tree.size(), model.size());
    }
}

TEST(BpTreeInvariants, HoldAcrossSplits)
{
    Harness h(RuntimeKind::clobber);
    auto eng = h.engine();
    ds::BpTree tree(eng, 0, smallCfg());
    for (uint64_t i = 0; i < 800; i++) {
        // 32-byte keys as in the paper's B+Tree benchmark.
        std::string k = keyOf(i) + std::string(24, 'k');
        tree.insert(k, valOf(i));
        if (i % 64 == 0)
            ASSERT_EQ(tree.validate(), static_cast<long>(i + 1));
    }
    EXPECT_EQ(tree.validate(), 800);
    EXPECT_EQ(tree.size(), 800u);
}

TEST(AvlInvariants, BalancedUnderChurn)
{
    Harness h(RuntimeKind::clobber);
    auto eng = h.engine();
    static const txn::FuncId kAvlChurn = txn::registerTxFunc(
        "test_avl_churn", [](txn::Tx& tx, txn::ArgReader& a) {
            auto root = nvm::PPtr<ds::PAvlTree>(a.get<uint64_t>());
            auto op = a.get<uint64_t>();
            auto key = a.get<uint64_t>();
            ds::AvlMap map(root);
            if (op == 0)
                map.put(tx, key, key * 3);
            else
                map.erase(tx, key);
        });
    static const txn::FuncId kAvlMake = txn::registerTxFunc(
        "test_avl_make", [](txn::Tx& tx, txn::ArgReader& a) {
            auto* out = reinterpret_cast<uint64_t*>(a.get<uint64_t>());
            *out = ds::AvlMap::create(tx).raw();
        });

    uint64_t rootOff = 0;
    txn::run(eng, kAvlMake, reinterpret_cast<uint64_t>(&rootOff));
    ds::AvlMap map{nvm::PPtr<ds::PAvlTree>(rootOff)};

    Xorshift rng(17);
    std::map<uint64_t, uint64_t> model;
    for (int i = 0; i < 800; i++) {
        uint64_t key = rng.nextUint(300) + 1;
        if (rng.nextBool(0.6)) {
            txn::run(eng, kAvlChurn, rootOff, uint64_t(0), key);
            model[key] = key * 3;
        } else {
            txn::run(eng, kAvlChurn, rootOff, uint64_t(1), key);
            model.erase(key);
        }
        ASSERT_GE(map.validate(), 0) << "after op " << i;
    }
    // Verify contents.
    static const txn::FuncId kAvlCheck = txn::registerTxFunc(
        "test_avl_check", [](txn::Tx& tx, txn::ArgReader& a) {
            auto root = nvm::PPtr<ds::PAvlTree>(a.get<uint64_t>());
            auto key = a.get<uint64_t>();
            auto* out = reinterpret_cast<uint64_t*>(a.get<uint64_t>());
            ds::AvlMap map(root);
            uint64_t v = 0;
            *out = map.get(tx, key, &v) ? v : ~0ULL;
        });
    for (const auto& [k, v] : model) {
        uint64_t got = 0;
        txn::run(eng, kAvlCheck, rootOff, k,
                 reinterpret_cast<uint64_t>(&got));
        ASSERT_EQ(got, v);
    }
}

TEST(RealThreads, HashMapParallelInserts)
{
    Harness h(RuntimeKind::clobber);
    auto eng = h.engine();
    auto kv = ds::makeKv("hashmap", eng, 0, smallCfg());

    constexpr unsigned kThreads = 4;
    constexpr uint64_t kPerThread = 300;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            txn::setThreadTid(t);
            for (uint64_t i = 0; i < kPerThread; i++) {
                uint64_t id = t * kPerThread + i;
                kv->insert(keyOf(id), valOf(id));
            }
        });
    }
    for (auto& th : threads)
        th.join();

    for (uint64_t id = 0; id < kThreads * kPerThread; id++) {
        ds::LookupResult r;
        ASSERT_TRUE(kv->lookup(keyOf(id), &r)) << id;
        ASSERT_EQ(r.str(), valOf(id));
    }
}

TEST(RealThreads, BpTreeParallelInserts)
{
    Harness h(RuntimeKind::undo);
    auto eng = h.engine();
    ds::BpTree tree(eng, 0, smallCfg());

    constexpr unsigned kThreads = 4;
    constexpr uint64_t kPerThread = 200;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            txn::setThreadTid(t);
            for (uint64_t i = 0; i < kPerThread; i++) {
                uint64_t id = t * kPerThread + i;
                tree.insert(keyOf(id), valOf(id));
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(tree.validate(),
              static_cast<long>(kThreads * kPerThread));
}

}  // namespace
}  // namespace cnvm::test
