/**
 * @file
 * Property-based sweeps: invariants that must hold across parameter
 * ranges — value sizes, allocation patterns, repeated crash/recover
 * cycles, and log-volume monotonicity.
 */
#include <gtest/gtest.h>

#include <map>

#include "stats/counters.h"
#include "structures/kv.h"
#include "testutil.h"
#include "workloads/ycsb.h"

namespace cnvm::test {
namespace {

using stats::Counter;
using txn::RuntimeKind;

class ValueSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ValueSizeSweep, ClobberLogVolumeIsValueSizeIndependent)
{
    // The clobber_log records overwritten *inputs*; fresh value
    // buffers are never inputs, so clobber bytes per insert must not
    // grow with the value size (the v_log does instead).
    size_t valLen = GetParam();
    Harness h(RuntimeKind::clobber, rt::ClobberPolicy::refined,
              96ULL << 20);
    auto eng = h.engine();
    ds::KvConfig cfg;
    cfg.hashShards = 8;
    cfg.hashBucketsPerShard = 64;
    auto kv = ds::makeKv("hashmap", eng, 0, cfg);
    wl::Ycsb gen(wl::YcsbKind::load, 300, 8, valLen);

    stats::resetAll();
    for (uint64_t i = 0; i < 300; i++)
        kv->insert(gen.keyOf(i), gen.valueOf(i));
    auto d = stats::aggregate();

    // One 8-byte clobber entry per insert (the bucket head pointer).
    EXPECT_EQ(d[Counter::clobberEntries], 300u);
    EXPECT_EQ(d[Counter::clobberBytes], 300u * 8);
    // The v_log carries the value.
    EXPECT_GE(d[Counter::vlogBytes], 300u * valLen);
    stats::resetAll();
}

TEST_P(ValueSizeSweep, AllRuntimesRoundTripValues)
{
    size_t valLen = GetParam();
    for (auto kind : {RuntimeKind::undo, RuntimeKind::redo,
                      RuntimeKind::clobber}) {
        Harness h(kind, rt::ClobberPolicy::refined, 96ULL << 20);
        auto eng = h.engine();
        ds::KvConfig cfg;
        cfg.hashShards = 4;
        cfg.hashBucketsPerShard = 32;
        auto kv = ds::makeKv("hashmap", eng, 0, cfg);
        wl::Ycsb gen(wl::YcsbKind::load, 64, 8, valLen);
        for (uint64_t i = 0; i < 64; i++)
            kv->insert(gen.keyOf(i), gen.valueOf(i));
        for (uint64_t i = 0; i < 64; i++) {
            ds::LookupResult r;
            ASSERT_TRUE(kv->lookup(gen.keyOf(i), &r));
            ASSERT_EQ(r.str(), gen.valueOf(i));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ValueSizeSweep,
                         ::testing::Values(8, 64, 256, 1000),
                         [](const auto& info) {
                             return "val" +
                                    std::to_string(info.param);
                         });

TEST(AllocatorFuzz, RandomChurnMatchesModel)
{
    Harness h(RuntimeKind::clobber, rt::ClobberPolicy::refined,
              64ULL << 20);
    auto eng = h.engine();
    size_t baseline = h.heap->freeBytes();

    static const txn::FuncId kAlloc = txn::registerTxFunc(
        "fuzz_alloc", [](txn::Tx& tx, txn::ArgReader& a) {
            auto size = a.get<uint64_t>();
            auto* out = reinterpret_cast<uint64_t*>(a.get<uint64_t>());
            uint64_t off = tx.pmallocOff(size);
            // Stamp the block so overlap corruption is detectable.
            std::vector<uint8_t> fill(size,
                                      static_cast<uint8_t>(size));
            tx.stBytes(tx.pool().at(off), fill.data(), size);
            *out = off;
        });
    static const txn::FuncId kFree = txn::registerTxFunc(
        "fuzz_free", [](txn::Tx& tx, txn::ArgReader& a) {
            tx.pfree(a.get<uint64_t>());
        });

    std::map<uint64_t, uint64_t> live;  // off -> size
    Xorshift rng(1234);
    for (int i = 0; i < 2000; i++) {
        if (live.size() < 40 || rng.nextBool(0.55)) {
            uint64_t size = 1 + rng.nextUint(700);
            uint64_t off = 0;
            txn::run(eng, kAlloc, size,
                     reinterpret_cast<uint64_t>(&off));
            // No overlap with any live block.
            for (const auto& [o, s] : live) {
                bool disjoint = off + size <= o || o + s <= off;
                ASSERT_TRUE(disjoint)
                    << "overlap: " << off << "+" << size << " vs "
                    << o << "+" << s;
            }
            live[off] = size;
        } else {
            auto it = live.begin();
            std::advance(it, rng.nextUint(live.size()));
            txn::run(eng, kFree, it->first);
            live.erase(it);
        }
        if (i % 500 == 0) {
            // Stamps intact (no block was scribbled by another).
            for (const auto& [o, s] : live) {
                const auto* p = static_cast<const uint8_t*>(
                    h.pool->at(o));
                ASSERT_EQ(p[0], static_cast<uint8_t>(s));
                ASSERT_EQ(p[s - 1], static_cast<uint8_t>(s));
            }
        }
    }
    // Free everything: the heap must return to its baseline.
    for (const auto& [o, s] : live)
        txn::run(eng, kFree, o);
    EXPECT_EQ(h.heap->freeBytes(), baseline);
}

TEST(Endurance, HundredsOfCrashRecoverCycles)
{
    // Repeated crash + recovery must not degrade the pool: no leaks
    // beyond live data, no corruption, monotonically growing list.
    Harness h(RuntimeKind::clobber);
    auto eng = h.engine();
    Xorshift rng(99);
    uint64_t expectedSum = 0;
    size_t crashes = 0;
    for (uint64_t i = 1; i <= 400; i++) {
        h.pool->armWriteTrap(1 + rng.nextUint(18));
        bool crashed = false;
        try {
            txn::run(eng, kPushNode, h.rootPtr().raw(), i);
        } catch (const nvm::CrashInjected&) {
            crashed = true;
            crashes++;
            h.pool->simulateCrash(i * 31);
            h.runtime->recover();
        }
        h.pool->armWriteTrap(0);
        if (!crashed || h.listSum() != expectedSum)
            expectedSum += i;
        ASSERT_EQ(h.root().sum, expectedSum) << "cycle " << i;
        ASSERT_EQ(h.listSum(), expectedSum) << "cycle " << i;
    }
    EXPECT_GT(crashes, 100u);
    // Heap accounting: free + live nodes == whole heap.
    size_t nodeBytes = h.listLen() * 32;  // block = header + payload
    EXPECT_LE(h.heap->freeBytes() + nodeBytes + 4096,
              h.pool->heapSize());
}

TEST(LogVolume, UndoNeverLogsLessThanClobber)
{
    // Across every structure, PMDK-model undo logging must write at
    // least as many entries as the clobber_log (Section 5.3's claim).
    for (const auto& structure : ds::benchmarkStructures()) {
        uint64_t clobberEntries = 0;
        uint64_t undoEntries = 0;
        for (auto kind : {RuntimeKind::clobber, RuntimeKind::undo}) {
            Harness h(kind, rt::ClobberPolicy::refined, 96ULL << 20);
            auto eng = h.engine();
            ds::KvConfig cfg;
            cfg.hashShards = 8;
            cfg.hashBucketsPerShard = 64;
            cfg.lockShards = 64;
            auto kv = ds::makeKv(structure, eng, 0, cfg);
            size_t keyLen = structure == "bptree" ? 32 : 8;
            wl::Ycsb gen(wl::YcsbKind::load, 400, keyLen, 128);
            stats::resetAll();
            for (uint64_t i = 0; i < 400; i++)
                kv->insert(gen.keyOf(i), gen.valueOf(i));
            auto d = stats::aggregate();
            if (kind == RuntimeKind::clobber)
                clobberEntries = d[Counter::clobberEntries];
            else
                undoEntries = d[Counter::undoEntries];
        }
        EXPECT_GE(undoEntries, clobberEntries) << structure;
        stats::resetAll();
    }
}

TEST(LogVolume, IdoAlwaysAtLeastClobberBytes)
{
    // Section 5.4: "iDO will always have at least as many bytes
    // persisted per transaction as Clobber-NVM."
    for (const auto& structure : {"hashmap", "skiplist"}) {
        uint64_t clobberBytes = 0;
        uint64_t idoBytes = 0;
        for (auto kind : {RuntimeKind::clobber, RuntimeKind::ido}) {
            Harness h(kind, rt::ClobberPolicy::refined, 96ULL << 20);
            auto eng = h.engine();
            ds::KvConfig cfg;
            cfg.hashShards = 8;
            cfg.hashBucketsPerShard = 64;
            auto kv = ds::makeKv(structure, eng, 0, cfg);
            wl::Ycsb gen(wl::YcsbKind::load, 300, 8, 128);
            stats::resetAll();
            for (uint64_t i = 0; i < 300; i++)
                kv->insert(gen.keyOf(i), gen.valueOf(i));
            auto d = stats::aggregate();
            if (kind == RuntimeKind::clobber) {
                clobberBytes = d[Counter::clobberBytes] +
                               d[Counter::vlogBytes];
            } else {
                idoBytes = d[Counter::idoBytes];
            }
        }
        EXPECT_GE(idoBytes, clobberBytes) << structure;
        stats::resetAll();
    }
}

}  // namespace
}  // namespace cnvm::test
