/** @file Functional tests of every runtime's transaction semantics. */
#include <gtest/gtest.h>

#include "stats/counters.h"
#include "testutil.h"

namespace cnvm::test {
namespace {

using txn::RuntimeKind;

class RuntimeSemantics
    : public ::testing::TestWithParam<RuntimeKind> {};

TEST_P(RuntimeSemantics, CounterIncrements)
{
    Harness h(GetParam());
    auto eng = h.engine();
    for (int i = 0; i < 10; i++)
        txn::run(eng, kIncrCounter, h.rootPtr().raw());
    EXPECT_EQ(h.root().counter, 10u);
}

TEST_P(RuntimeSemantics, ListPushPopKeepsSumInvariant)
{
    Harness h(GetParam());
    auto eng = h.engine();
    for (uint64_t v = 1; v <= 20; v++)
        txn::run(eng, kPushNode, h.rootPtr().raw(), v);
    EXPECT_EQ(h.listLen(), 20u);
    EXPECT_EQ(h.root().sum, 210u);
    EXPECT_EQ(h.listSum(), 210u);
    for (int i = 0; i < 5; i++)
        txn::run(eng, kPopNode, h.rootPtr().raw());
    EXPECT_EQ(h.listLen(), 15u);
    EXPECT_EQ(h.root().sum, h.listSum());
}

TEST_P(RuntimeSemantics, FreedMemoryIsReusable)
{
    Harness h(GetParam());
    auto eng = h.engine();
    size_t before = h.heap->freeBytes();
    for (int round = 0; round < 50; round++) {
        txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t(7));
        txn::run(eng, kPopNode, h.rootPtr().raw());
    }
    EXPECT_EQ(h.listLen(), 0u);
    EXPECT_EQ(h.heap->freeBytes(), before);
}

TEST_P(RuntimeSemantics, CommittedStateSurvivesTotalCacheLoss)
{
    if (GetParam() == RuntimeKind::noLog)
        GTEST_SKIP() << "no-log gives no durability guarantee";
    Harness h(GetParam());
    auto eng = h.engine();
    for (uint64_t v = 1; v <= 8; v++)
        txn::run(eng, kPushNode, h.rootPtr().raw(), v);
    // Power loss right after the last commit: all 8 pushes must hold.
    h.pool->cache().crashAllLost();
    h.runtime->recover();
    EXPECT_EQ(h.listLen(), 8u);
    EXPECT_EQ(h.root().sum, 36u);
    EXPECT_EQ(h.listSum(), 36u);
}

TEST_P(RuntimeSemantics, ReadOnlyTransactionsCostNoFences)
{
    Harness h(GetParam());
    if (GetParam() == RuntimeKind::atlas)
        GTEST_SKIP() << "Atlas logs every critical section";
    auto eng = h.engine();
    txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t(1));
    auto before = stats::aggregate();
    for (int i = 0; i < 10; i++)
        txn::run(eng, kReadOnly, h.rootPtr().raw());
    auto delta = stats::aggregate() - before;
    EXPECT_EQ(delta[stats::Counter::fences], 0u);
    EXPECT_EQ(delta[stats::Counter::txCommits], 10u);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, RuntimeSemantics,
    ::testing::Values(RuntimeKind::noLog, RuntimeKind::undo,
                      RuntimeKind::redo, RuntimeKind::clobber,
                      RuntimeKind::atlas, RuntimeKind::ido),
    [](const auto& info) {
        switch (info.param) {
          case RuntimeKind::noLog: return "nolog";
          case RuntimeKind::undo: return "pmdk";
          case RuntimeKind::redo: return "mnemosyne";
          case RuntimeKind::clobber: return "clobber";
          case RuntimeKind::atlas: return "atlas";
          case RuntimeKind::ido: return "ido";
        }
        return "?";
    });

TEST(ClobberLogging, BlindWritesAreNotLogged)
{
    Harness h(txn::RuntimeKind::clobber);
    auto eng = h.engine();
    auto before = stats::aggregate();
    txn::run(eng, kBlindWrite, h.rootPtr().raw(), uint64_t(99));
    auto delta = stats::aggregate() - before;
    // sum was never read: an output-only store needs no clobber log.
    EXPECT_EQ(delta[stats::Counter::clobberEntries], 0u);
    EXPECT_EQ(h.root().sum, 99u);
}

TEST(ClobberLogging, ReadModifyWriteIsLoggedOnce)
{
    Harness h(txn::RuntimeKind::clobber);
    auto eng = h.engine();
    auto before = stats::aggregate();
    txn::run(eng, kIncrCounter, h.rootPtr().raw());
    auto delta = stats::aggregate() - before;
    EXPECT_EQ(delta[stats::Counter::clobberEntries], 1u);
    EXPECT_EQ(delta[stats::Counter::clobberBytes], 8u);
    EXPECT_EQ(delta[stats::Counter::vlogEntries], 1u);
}

TEST(ClobberLogging, FreshAllocationsAreNeverLogged)
{
    Harness h(txn::RuntimeKind::clobber);
    auto eng = h.engine();
    auto before = stats::aggregate();
    txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t(5));
    auto delta = stats::aggregate() - before;
    // push reads head + sum and overwrites both: exactly 2 clobber
    // entries; the node/value writes are to fresh memory.
    EXPECT_EQ(delta[stats::Counter::clobberEntries], 2u);
}

TEST(ClobberLogging, UndoLogsStrictlyMore)
{
    Harness hC(txn::RuntimeKind::clobber);
    {
        auto eng = hC.engine();
        stats::resetAll();
        for (uint64_t v = 0; v < 50; v++)
            txn::run(eng, kPushNode, hC.rootPtr().raw(), v);
    }
    auto clobber = stats::aggregate();

    Harness hU(txn::RuntimeKind::undo);
    {
        auto eng = hU.engine();
        stats::resetAll();
        for (uint64_t v = 0; v < 50; v++)
            txn::run(eng, kPushNode, hU.rootPtr().raw(), v);
    }
    auto undo = stats::aggregate();

    EXPECT_GT(undo[stats::Counter::undoEntries],
              clobber[stats::Counter::clobberEntries]);
    stats::resetAll();
}

TEST(ClobberPolicy, ConservativeLogsAtLeastAsMuch)
{
    Harness hR(txn::RuntimeKind::clobber, rt::ClobberPolicy::refined);
    stats::resetAll();
    {
        auto eng = hR.engine();
        for (uint64_t v = 0; v < 30; v++)
            txn::run(eng, kPushNode, hR.rootPtr().raw(), v);
    }
    auto refined = stats::aggregate();

    Harness hCo(txn::RuntimeKind::clobber,
                rt::ClobberPolicy::conservative);
    stats::resetAll();
    {
        auto eng = hCo.engine();
        for (uint64_t v = 0; v < 30; v++)
            txn::run(eng, kPushNode, hCo.rootPtr().raw(), v);
    }
    auto cons = stats::aggregate();
    EXPECT_GE(cons[stats::Counter::clobberEntries],
              refined[stats::Counter::clobberEntries]);
    stats::resetAll();
}

TEST(IdoLogging, LogsAtLeastAsManyBytesAsClobber)
{
    Harness hC(txn::RuntimeKind::clobber);
    stats::resetAll();
    {
        auto eng = hC.engine();
        for (uint64_t v = 0; v < 30; v++)
            txn::run(eng, kPushNode, hC.rootPtr().raw(), v);
    }
    auto clobber = stats::aggregate();

    Harness hI(txn::RuntimeKind::ido);
    stats::resetAll();
    {
        auto eng = hI.engine();
        for (uint64_t v = 0; v < 30; v++)
            txn::run(eng, kPushNode, hI.rootPtr().raw(), v);
    }
    auto ido = stats::aggregate();
    EXPECT_GE(ido[stats::Counter::idoBytes],
              clobber[stats::Counter::clobberBytes] +
                  clobber[stats::Counter::vlogBytes]);
    stats::resetAll();
}

TEST(AtlasLogging, LockAndDependencyRecords)
{
    Harness h(txn::RuntimeKind::atlas);
    auto eng = h.engine();
    auto before = stats::aggregate();
    txn::run(eng, kIncrCounter, h.rootPtr().raw());
    auto delta = stats::aggregate() - before;
    EXPECT_GE(delta[stats::Counter::lockLogEntries], 2u);
    EXPECT_EQ(delta[stats::Counter::depRecords], 1u);
}

TEST(RedoRuntime, ReadsSeeOwnWritesInsideTx)
{
    Harness h(txn::RuntimeKind::redo);
    auto eng = h.engine();
    // incr twice inside independent txs; each read must see the
    // previous committed value even though stores are buffered.
    txn::run(eng, kIncrCounter, h.rootPtr().raw());
    txn::run(eng, kIncrCounter, h.rootPtr().raw());
    EXPECT_EQ(h.root().counter, 2u);

    static const txn::FuncId kDoubleIncr = txn::registerTxFunc(
        "test_double_incr", [](txn::Tx& tx, txn::ArgReader& a) {
            auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
            // Two RMWs in one tx: the second must see the first.
            tx.st(root->counter, tx.ld(root->counter) + 1);
            tx.st(root->counter, tx.ld(root->counter) + 1);
        });
    txn::run(eng, kDoubleIncr, h.rootPtr().raw());
    EXPECT_EQ(h.root().counter, 4u);
}

TEST(RedoRuntime, FewerFencesThanUndoForBigTx)
{
    static const txn::FuncId kManyStores = txn::registerTxFunc(
        "test_many_stores", [](txn::Tx& tx, txn::ArgReader& a) {
            auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
            for (uint64_t i = 0; i < 16; i++) {
                uint64_t v = tx.ld(root->pad[i % 5]);
                tx.st(root->pad[i % 5], v + i);
            }
        });

    Harness hU(txn::RuntimeKind::undo);
    stats::resetAll();
    {
        auto eng = hU.engine();
        txn::run(eng, kManyStores, hU.rootPtr().raw());
    }
    auto undo = stats::aggregate();

    Harness hR(txn::RuntimeKind::redo);
    stats::resetAll();
    {
        auto eng = hR.engine();
        txn::run(eng, kManyStores, hR.rootPtr().raw());
    }
    auto redo = stats::aggregate();
    EXPECT_LT(redo[stats::Counter::fences],
              undo[stats::Counter::fences]);
    stats::resetAll();
}

// Shared by the fence-accounting tests below: a scratch region big
// enough that each stored word lands in its own 8-byte block.
const txn::FuncId kMakeRegion = txn::registerTxFunc(
    "test_make_region", [](txn::Tx& tx, txn::ArgReader& a) {
        auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
        uint64_t off = tx.pmallocOff(1024);
        tx.st(root->counter, off);
    });

const txn::FuncId kStoreWords = txn::registerTxFunc(
    "test_store_words", [](txn::Tx& tx, txn::ArgReader& a) {
        uint64_t regionOff = a.get<uint64_t>();
        uint64_t count = a.get<uint64_t>();
        auto* w = static_cast<uint64_t*>(tx.pool().at(regionOff));
        for (uint64_t i = 0; i < count; i++)
            tx.st(w[i], i + 1);
    });

TEST(ZeroLengthAccess, CostsNoFencesOrLogEntries)
{
    static const txn::FuncId kZeroLenOnly = txn::registerTxFunc(
        "test_zero_len_only", [](txn::Tx& tx, txn::ArgReader& a) {
            auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
            uint8_t buf = 0;
            tx.ldBytes(&buf, &root->sum, 0);
            tx.stBytes(&root->sum, &buf, 0);
        });
    for (auto kind : {RuntimeKind::noLog, RuntimeKind::undo,
                      RuntimeKind::redo, RuntimeKind::clobber,
                      RuntimeKind::ido}) {
        Harness h(kind);
        auto eng = h.engine();
        auto before = stats::aggregate();
        txn::run(eng, kZeroLenOnly, h.rootPtr().raw());
        auto delta = stats::aggregate() - before;
        // An empty access touches no block, so the transaction stays
        // on the read-only fast path (regression: forEachBlock used to
        // visit one block for n == 0).
        EXPECT_EQ(delta[stats::Counter::fences], 0u)
            << h.runtime->name();
        EXPECT_EQ(delta[stats::Counter::txCommits], 1u);
    }
}

TEST(ZeroLengthAccess, DoesNotPolluteClobberReadSet)
{
    static const txn::FuncId kZeroLdThenStore = txn::registerTxFunc(
        "test_zero_ld_then_store", [](txn::Tx& tx, txn::ArgReader& a) {
            auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
            uint8_t buf;
            tx.ldBytes(&buf, &root->sum, 0);  // empty read of sum
            tx.st(root->sum, uint64_t{77});   // still a blind write
        });
    Harness h(RuntimeKind::clobber);
    auto eng = h.engine();
    auto before = stats::aggregate();
    txn::run(eng, kZeroLdThenStore, h.rootPtr().raw());
    auto delta = stats::aggregate() - before;
    EXPECT_EQ(delta[stats::Counter::clobberEntries], 0u);
    EXPECT_EQ(h.root().sum, 77u);
}

TEST(RedoRuntime, CommitFencesAreConstantPerTx)
{
    Harness h(RuntimeKind::redo);
    auto eng = h.engine();
    txn::run(eng, kMakeRegion, h.rootPtr().raw());
    uint64_t regionOff = h.root().counter;
    auto fencesFor = [&](uint64_t count) {
        auto before = stats::aggregate();
        txn::run(eng, kStoreWords, regionOff, count);
        return (stats::aggregate() - before)[stats::Counter::fences];
    };
    // Redo entries are flushed without a fence; only the commit
    // sequence (log drain, commit record, write-back, release) pays
    // them, so the count is O(1) in the number of stores.
    uint64_t small = fencesFor(2);
    uint64_t large = fencesFor(64);
    EXPECT_EQ(small, large);
    EXPECT_LE(large, 4u);
}

TEST(AtlasLogging, MarkerRecordsAreFlushedWithoutFences)
{
    Harness h(RuntimeKind::atlas);
    auto eng = h.engine();
    txn::run(eng, kMakeRegion, h.rootPtr().raw());
    uint64_t regionOff = h.root().counter;
    auto fencesFor = [&](uint64_t count) {
        auto before = stats::aggregate();
        txn::run(eng, kStoreWords, regionOff, count);
        return (stats::aggregate() - before)[stats::Counter::fences];
    };
    // Undo images keep their per-entry fence (they must beat the
    // in-place write), but lock markers and dependency records are
    // flush-only, leaving one fence per store plus a constant per-tx
    // overhead (begin persist, commit write-back, release).
    uint64_t f8 = fencesFor(8);
    uint64_t f32 = fencesFor(32);
    EXPECT_EQ(f32 - f8, 24u);  // exactly one fence per extra store
    EXPECT_EQ(f8, 8u + 3u);
}

}  // namespace
}  // namespace cnvm::test
