/**
 * @file
 * Tests for the network KV service stack: the memcached text-protocol
 * parser (incremental feeds, errors), the group-commit service layer
 * (model equivalence, overflow fallback, slot validation), and the
 * TCP front-end end to end over a real loopback socket.
 */
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <thread>

#include "apps/kv/kv_server.h"
#include "common/rand.h"
#include "server/kv_service.h"
#include "server/loadgen.h"
#include "server/protocol.h"
#include "server/tcp_server.h"
#include "testutil.h"

namespace cnvm::test {
namespace {

using server::proto::Cmd;
using server::proto::Command;
using server::proto::Parser;
using txn::RuntimeKind;

// ---------------------------------------------------------------
// Protocol parser

Parser::Status
feedAll(Parser& p, const std::string& bytes, Command* out,
        std::string* err)
{
    p.feed(bytes.data(), bytes.size());
    return p.next(out, err);
}

TEST(ProtoParser, ParsesGetAndMultiGet)
{
    Parser p;
    Command c;
    std::string err;
    ASSERT_EQ(feedAll(p, "get foo\r\n", &c, &err),
              Parser::Status::ok);
    EXPECT_EQ(c.cmd, Cmd::get);
    ASSERT_EQ(c.keys.size(), 1u);
    EXPECT_EQ(c.keys[0], "foo");

    ASSERT_EQ(feedAll(p, "gets a b c\r\n", &c, &err),
              Parser::Status::ok);
    EXPECT_EQ(c.cmd, Cmd::gets);
    ASSERT_EQ(c.keys.size(), 3u);
    EXPECT_EQ(c.keys[2], "c");
}

TEST(ProtoParser, ParsesSetWithDataBlock)
{
    Parser p;
    Command c;
    std::string err;
    ASSERT_EQ(feedAll(p, "set k 7 0 5\r\nhello\r\n", &c, &err),
              Parser::Status::ok);
    EXPECT_EQ(c.cmd, Cmd::set);
    EXPECT_EQ(c.keys[0], "k");
    EXPECT_EQ(c.flags, 7u);
    EXPECT_EQ(c.data, "hello");
    EXPECT_FALSE(c.noreply);
}

TEST(ProtoParser, HandlesBytewiseFeeds)
{
    // The whole pipeline must survive arbitrary TCP segmentation.
    std::string wire = "set key1 3 0 4 noreply\r\nabcd\r\n"
                       "cas key2 0 0 2 99\r\nxy\r\n"
                       "delete key1\r\n";
    Parser p;
    Command c;
    std::string err;
    std::vector<Command> got;
    for (char ch : wire) {
        p.feed(&ch, 1);
        for (;;) {
            auto st = p.next(&c, &err);
            if (st != Parser::Status::ok)
                break;
            got.push_back(c);
        }
    }
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].cmd, Cmd::set);
    EXPECT_TRUE(got[0].noreply);
    EXPECT_EQ(got[0].data, "abcd");
    EXPECT_EQ(got[1].cmd, Cmd::cas);
    EXPECT_EQ(got[1].casUnique, 99u);
    EXPECT_EQ(got[1].data, "xy");
    EXPECT_EQ(got[2].cmd, Cmd::del);
    EXPECT_EQ(got[2].keys[0], "key1");
}

TEST(ProtoParser, ReportsErrorsAndKeepsGoing)
{
    Parser p;
    Command c;
    std::string err;
    EXPECT_EQ(feedAll(p, "frobnicate\r\n", &c, &err),
              Parser::Status::error);
    EXPECT_EQ(err, "ERROR\r\n");

    EXPECT_EQ(feedAll(p, "set k x 0 5\r\n", &c, &err),
              Parser::Status::error);
    EXPECT_EQ(err, "CLIENT_ERROR bad command line format\r\n");

    std::string longKey(server::proto::kMaxProtoKeyLen + 1, 'k');
    EXPECT_EQ(feedAll(p, "get " + longKey + "\r\n", &c, &err),
              Parser::Status::error);
    EXPECT_EQ(err, "CLIENT_ERROR bad key\r\n");

    // A data block not terminated by CRLF is a chunk error.
    EXPECT_EQ(feedAll(p, "set k 0 0 2\r\nabXY", &c, &err),
              Parser::Status::error);
    EXPECT_EQ(err, "CLIENT_ERROR bad data chunk\r\n");

    // The connection still parses afterwards.
    EXPECT_EQ(feedAll(p, "get ok\r\n", &c, &err),
              Parser::Status::ok);
    EXPECT_EQ(c.keys[0], "ok");
}

TEST(ProtoParser, RejectsOversizedDeclaredBlock)
{
    Parser p;
    Command c;
    std::string err;
    EXPECT_EQ(feedAll(p, "set k 0 0 999999999\r\n", &c, &err),
              Parser::Status::error);
    EXPECT_EQ(err, "SERVER_ERROR object too large for cache\r\n");
}

// ---------------------------------------------------------------
// Store: cas + batch transaction paths

class KvMutationTest : public ::testing::TestWithParam<RuntimeKind> {};

TEST_P(KvMutationTest, CasFollowsVersioning)
{
    Harness h(GetParam(), rt::ClobberPolicy::refined, 64ULL << 20);
    auto eng = h.engine();
    apps::KvServer::Config cfg;
    cfg.shards = 4;
    cfg.bucketsPerShard = 32;
    apps::KvServer kv(eng, 0, cfg);

    EXPECT_EQ(kv.cas("k", "v", 0, 1), apps::MutResult::notFound);
    kv.set("k", "v0", 3);

    apps::KvReadResult r;
    ASSERT_TRUE(kv.get("k", &r));
    EXPECT_EQ(r.str(), "v0");
    EXPECT_EQ(r.flags, 3u);
    EXPECT_EQ(r.version, 1u);

    EXPECT_EQ(kv.cas("k", "v1", 4, r.version),
              apps::MutResult::stored);
    EXPECT_EQ(kv.cas("k", "v2", 5, r.version),
              apps::MutResult::exists);  // stale version
    ASSERT_TRUE(kv.get("k", &r));
    EXPECT_EQ(r.str(), "v1");
    EXPECT_EQ(r.flags, 4u);
    EXPECT_EQ(r.version, 2u);
}

TEST_P(KvMutationTest, ApplyBatchMatchesSingles)
{
    Harness h(GetParam(), rt::ClobberPolicy::refined, 64ULL << 20);
    auto eng = h.engine();
    apps::KvServer::Config cfg;
    cfg.shards = 8;
    cfg.bucketsPerShard = 32;
    apps::KvServer kv(eng, 0, cfg);

    std::map<std::string, std::string> model;
    Xorshift rng(17);
    std::vector<std::string> keys, vals;
    for (int round = 0; round < 40; round++) {
        keys.clear();
        vals.clear();
        std::vector<apps::MutOp> ops;
        for (int i = 0; i < 6; i++) {
            keys.push_back("bk" + std::to_string(rng.nextUint(30)));
            vals.push_back("val-" + std::to_string(round) + "-" +
                           std::to_string(i));
        }
        for (int i = 0; i < 6; i++) {
            apps::MutOp op;
            op.key = keys[i];
            if (rng.nextUint(10) < 8) {
                op.kind = apps::MutKind::set;
                op.val = vals[i];
                model[keys[i]] = vals[i];
            } else {
                op.kind = apps::MutKind::del;
                model.erase(keys[i]);
            }
            ops.push_back(op);
        }
        std::vector<apps::MutResult> results(ops.size());
        kv.applyBatch(ops, results.data());
        for (size_t i = 0; i < ops.size(); i++) {
            if (ops[i].kind == apps::MutKind::set)
                EXPECT_EQ(results[i], apps::MutResult::stored);
        }
    }
    EXPECT_EQ(kv.itemCount(), model.size());
    for (const auto& [k, v] : model) {
        ds::LookupResult r;
        ASSERT_TRUE(kv.get(k, &r)) << k;
        EXPECT_EQ(r.str(), v);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Runtimes, KvMutationTest,
    ::testing::Values(RuntimeKind::clobber, RuntimeKind::undo,
                      RuntimeKind::redo),
    [](const auto& info) {
        switch (info.param) {
          case RuntimeKind::undo: return "pmdk";
          case RuntimeKind::redo: return "mnemosyne";
          default: return "clobber";
        }
    });

// ---------------------------------------------------------------
// Service layer

TEST(KvService, GroupCommitMatchesModel)
{
    Harness h(RuntimeKind::clobber, rt::ClobberPolicy::refined,
              64ULL << 20);
    auto eng = h.engine();
    apps::KvServer::Config cfg;
    cfg.shards = 16;
    apps::KvServer kv(eng, 0, cfg);

    server::ServiceConfig svcCfg;
    svcCfg.workers = 2;
    svcCfg.batchMax = 8;
    server::KvService svc(kv, svcCfg);
    svc.start();

    // Submit windows of mixed traffic; per-key order is preserved by
    // shard routing, so the final state must match in-order apply.
    std::map<std::string, std::string> model;
    Xorshift rng(23);
    std::deque<server::Request> reqs;
    for (int round = 0; round < 50; round++) {
        server::Completion done;
        reqs.clear();
        for (int i = 0; i < 16; i++) {
            reqs.emplace_back();
            auto& r = reqs.back();
            r.key = "sk" + std::to_string(rng.nextUint(40));
            if (rng.nextUint(10) < 7) {
                r.op = server::Request::Op::set;
                r.value = "sv-" + std::to_string(round) + "-" +
                          std::to_string(i);
                model[r.key] = r.value;
            } else {
                r.op = server::Request::Op::del;
                model.erase(r.key);
            }
            r.done = &done;
        }
        done.expect(16);
        for (auto& r : reqs)
            svc.submit(&r);
        done.wait();
    }
    auto st = svc.totalStats();
    svc.stop();
    EXPECT_EQ(st.ops, 50u * 16u);
    EXPECT_GT(st.batches, 0u);  // group commit actually engaged

    EXPECT_EQ(kv.itemCount(), model.size());
    for (const auto& [k, v] : model) {
        ds::LookupResult r;
        ASSERT_TRUE(kv.get(k, &r)) << k;
        EXPECT_EQ(r.str(), v);
    }
}

TEST(KvService, BatchOverflowFallsBackPerOp)
{
    // A slot log too small for an 8-op batch of 1 KiB values: the
    // batch transaction must abort cleanly and replay op-by-op.
    nvm::PoolConfig pcfg;
    pcfg.size = 64ULL << 20;
    pcfg.maxThreads = 4;
    pcfg.slotBytes = 16384;  // ~7 KiB log area after the descriptor
    auto pool = nvm::Pool::create(pcfg);
    nvm::Pool::setCurrent(pool.get());
    alloc::PmAllocator heap(*pool);
    auto runtime =
        rt::makeRuntime(RuntimeKind::clobber, *pool, heap);
    txn::Engine eng(*runtime);

    apps::KvServer::Config cfg;
    cfg.shards = 4;
    cfg.bucketsPerShard = 32;
    apps::KvServer kv(eng, 0, cfg);

    server::ServiceConfig svcCfg;
    svcCfg.workers = 1;
    svcCfg.batchMax = 8;
    server::KvService svc(kv, svcCfg);
    svc.start();

    server::Completion done;
    std::deque<server::Request> reqs;
    std::string big(1024, 'z');
    for (int i = 0; i < 8; i++) {
        reqs.emplace_back();
        auto& r = reqs.back();
        r.op = server::Request::Op::set;
        r.key = "of" + std::to_string(i);
        r.value = big;
        r.done = &done;
    }
    done.expect(8);
    for (auto& r : reqs)
        svc.submit(&r);
    done.wait();
    auto st = svc.totalStats();
    svc.stop();

    EXPECT_GE(st.overflows, 1u);
    for (int i = 0; i < 8; i++) {
        EXPECT_EQ(reqs[i].result, apps::MutResult::stored);
        ds::LookupResult r;
        ASSERT_TRUE(kv.get("of" + std::to_string(i), &r));
        EXPECT_EQ(r.str(), big);
    }
    nvm::Pool::setCurrent(nullptr);
}

TEST(KvService, RejectsWorkerCountBeyondPoolSlots)
{
    Harness h(RuntimeKind::clobber);  // maxThreads = 8
    auto eng = h.engine();
    apps::KvServer kv(eng);
    server::ServiceConfig svcCfg;
    svcCfg.workers = 9;
    server::KvService svc(kv, svcCfg);
    try {
        svc.start();
        FAIL() << "start() accepted 9 workers on an 8-slot pool";
    } catch (const txn::SlotRangeError& e) {
        EXPECT_EQ(e.tid(), 8u);
        EXPECT_EQ(e.slots(), 8u);
    }
}

// ---------------------------------------------------------------
// TCP front-end, end to end over loopback

class SockClient {
 public:
    explicit SockClient(uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)),
                  0);
    }

    ~SockClient() { ::close(fd_); }

    /** Send `req`, read exactly `expect.size()` bytes back. */
    std::string
    roundTrip(const std::string& req, size_t expectBytes)
    {
        EXPECT_EQ(::send(fd_, req.data(), req.size(), 0),
                  static_cast<ssize_t>(req.size()));
        std::string out;
        char buf[4096];
        while (out.size() < expectBytes) {
            ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n <= 0)
                break;
            out.append(buf, static_cast<size_t>(n));
        }
        return out;
    }

 private:
    int fd_ = -1;
};

struct Stack {
    explicit Stack(Harness& h)
        : eng(h.engine()), kv(eng, 0, kvCfg()),
          svc(kv, svcCfg()), tcp(svc, kv, server::TcpConfig{})
    {
        svc.start();
        tcp.start();
    }

    ~Stack()
    {
        tcp.stop();
        svc.stop();
    }

    static apps::KvServer::Config
    kvCfg()
    {
        apps::KvServer::Config cfg;
        cfg.shards = 16;
        return cfg;
    }

    static server::ServiceConfig
    svcCfg()
    {
        server::ServiceConfig cfg;
        cfg.workers = 2;
        cfg.batchMax = 8;
        return cfg;
    }

    txn::Engine eng;
    apps::KvServer kv;
    server::KvService svc;
    server::TcpServer tcp;
};

TEST(TcpServer, MemcachedConversation)
{
    Harness h(RuntimeKind::clobber, rt::ClobberPolicy::refined,
              64ULL << 20);
    Stack s(h);
    SockClient c(s.tcp.port());

    std::string exp = "STORED\r\n";
    EXPECT_EQ(c.roundTrip("set foo 7 0 3\r\nbar\r\n", exp.size()),
              exp);

    exp = "VALUE foo 7 3 1\r\nbar\r\nEND\r\n";
    EXPECT_EQ(c.roundTrip("gets foo\r\n", exp.size()), exp);

    exp = "STORED\r\n";
    EXPECT_EQ(c.roundTrip("cas foo 7 0 3 1\r\nbaz\r\n", exp.size()),
              exp);
    exp = "EXISTS\r\n";  // stale cas unique
    EXPECT_EQ(c.roundTrip("cas foo 7 0 3 1\r\nnew\r\n", exp.size()),
              exp);
    exp = "NOT_FOUND\r\n";
    EXPECT_EQ(c.roundTrip("cas nil 0 0 1 1\r\nx\r\n", exp.size()),
              exp);

    exp = "VALUE foo 7 3 2\r\nbaz\r\nEND\r\n";
    EXPECT_EQ(c.roundTrip("gets foo\r\n", exp.size()), exp);

    exp = "DELETED\r\n";
    EXPECT_EQ(c.roundTrip("delete foo\r\n", exp.size()), exp);
    exp = "NOT_FOUND\r\n";
    EXPECT_EQ(c.roundTrip("delete foo\r\n", exp.size()), exp);

    exp = "END\r\n";  // miss
    EXPECT_EQ(c.roundTrip("get foo\r\n", exp.size()), exp);

    exp = "ERROR\r\n";
    EXPECT_EQ(c.roundTrip("bogus\r\n", exp.size()), exp);
}

TEST(TcpServer, PipelinedWindowKeepsCommandOrder)
{
    Harness h(RuntimeKind::clobber, rt::ClobberPolicy::refined,
              64ULL << 20);
    Stack s(h);
    SockClient c(s.tcp.port());

    // One burst: 4 sets + 1 get + 1 delete, answered in order.
    std::string req = "set a 0 0 2\r\naa\r\n"
                      "set b 0 0 2\r\nbb\r\n"
                      "set a 0 0 2\r\nAA\r\n"
                      "set c 0 0 2\r\ncc\r\n"
                      "get a\r\n"
                      "delete b\r\n";
    std::string exp = "STORED\r\nSTORED\r\nSTORED\r\nSTORED\r\n"
                      "VALUE a 0 2\r\nAA\r\nEND\r\n"
                      "DELETED\r\n";
    EXPECT_EQ(c.roundTrip(req, exp.size()), exp);
}

TEST(TcpServer, LoadGeneratorRoundTrip)
{
    Harness h(RuntimeKind::clobber, rt::ClobberPolicy::refined,
              64ULL << 20);
    Stack s(h);

    server::LoadConfig cfg;
    cfg.port = s.tcp.port();
    cfg.connections = 2;
    cfg.totalOps = 4000;
    cfg.window = 16;
    cfg.keySpace = 500;
    cfg.valueLen = 64;
    cfg.writeRatio = 0.5;
    auto res = server::runLoad(cfg);
    EXPECT_EQ(res.opsAcked, 4000u);
    EXPECT_EQ(res.errors, 0u);
    EXPECT_FALSE(res.serverDied);
    EXPECT_GT(res.opsPerSec, 0.0);
    EXPECT_GT(res.p99us, 0.0);
    EXPECT_GE(res.p99us, res.p50us);

    // Group commit engaged under pipelined load.
    auto st = s.svc.totalStats();
    EXPECT_GT(st.batches, 0u);
    EXPECT_GT(st.batchedOps, st.batches);
}

}  // namespace
}  // namespace cnvm::test
