/**
 * @file
 * Tests for the application layer: KV server (memcached model),
 * vacation (STAMP), and yada (Ruppert refinement) — functional
 * behaviour, cross-runtime agreement, and crash recovery.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "apps/kv/kv_server.h"
#include "apps/vacation/vacation.h"
#include "apps/yada/yada.h"
#include "testutil.h"

namespace cnvm::test {
namespace {

using txn::RuntimeKind;

class KvServerTest : public ::testing::TestWithParam<RuntimeKind> {};

TEST_P(KvServerTest, MemslapStyleChurnMatchesModel)
{
    Harness h(GetParam(), rt::ClobberPolicy::refined, 64ULL << 20);
    auto eng = h.engine();
    apps::KvServer::Config cfg;
    cfg.shards = 8;
    cfg.bucketsPerShard = 64;
    apps::KvServer server(eng, 0, cfg);

    std::map<std::string, std::string> model;
    Xorshift rng(5);
    for (int i = 0; i < 600; i++) {
        char key[17];
        std::snprintf(key, sizeof(key), "key-%012d",
                      static_cast<int>(rng.nextUint(150)));
        int op = static_cast<int>(rng.nextUint(10));
        if (op < 6) {
            std::string val(64, 'a' + static_cast<char>(i % 26));
            server.set(key, val);
            model[key] = val;
        } else if (op < 8) {
            EXPECT_EQ(server.del(key), model.erase(key) > 0);
        } else {
            ds::LookupResult r;
            bool found = server.get(key, &r);
            auto it = model.find(key);
            ASSERT_EQ(found, it != model.end());
            if (found)
                ASSERT_EQ(r.str(), it->second);
        }
    }
    EXPECT_EQ(server.itemCount(), model.size());
}

TEST_P(KvServerTest, SpinAndRwLockModesBehaveIdentically)
{
    Harness h(GetParam(), rt::ClobberPolicy::refined, 64ULL << 20);
    auto eng = h.engine();
    for (auto mode : {apps::KvServer::LockMode::spin,
                      apps::KvServer::LockMode::rw}) {
        apps::KvServer::Config cfg;
        cfg.shards = 4;
        cfg.bucketsPerShard = 32;
        cfg.lockMode = mode;
        apps::KvServer server(eng, 0, cfg);
        for (int i = 0; i < 100; i++)
            server.set("k" + std::to_string(i), "v" + std::to_string(i));
        for (int i = 0; i < 100; i++) {
            ds::LookupResult r;
            ASSERT_TRUE(server.get("k" + std::to_string(i), &r));
            ASSERT_EQ(r.str(), "v" + std::to_string(i));
        }
    }
}

TEST_P(KvServerTest, ConcurrentRealThreadsMatchPerThreadModels)
{
    // Real std::threads (not the logical executor), one engine slot
    // each, hammering mixed set/get/del over a partitioned keyspace.
    // Shard locks serialize conflicting transactions; each thread's
    // slice must match its private model exactly.
    for (auto mode : {apps::KvServer::LockMode::spin,
                      apps::KvServer::LockMode::rw}) {
        Harness h(GetParam(), rt::ClobberPolicy::refined,
                  96ULL << 20);
        auto eng = h.engine();
        apps::KvServer::Config cfg;
        cfg.shards = 16;
        cfg.bucketsPerShard = 64;
        cfg.lockMode = mode;
        apps::KvServer server(eng, 0, cfg);

        constexpr int kThreads = 4;
        constexpr int kOpsPerThread = 400;
        std::vector<std::map<std::string, std::string>> models(
            kThreads);
        std::vector<std::thread> threads;
        std::atomic<int> mismatches{0};
        for (int t = 0; t < kThreads; t++) {
            threads.emplace_back([&, t] {
                eng.bindThisThread(static_cast<unsigned>(t));
                auto& model = models[t];
                Xorshift rng(100 + t);
                for (int i = 0; i < kOpsPerThread; i++) {
                    std::string key =
                        "t" + std::to_string(t) + "-k" +
                        std::to_string(rng.nextUint(50));
                    auto op = rng.nextUint(10);
                    if (op < 6) {
                        std::string val =
                            "v" + std::to_string(t) + "-" +
                            std::to_string(i);
                        server.set(key, val);
                        model[key] = val;
                    } else if (op < 8) {
                        bool had = server.del(key);
                        if (had != (model.erase(key) > 0))
                            mismatches++;
                    } else {
                        ds::LookupResult r;
                        bool found = server.get(key, &r);
                        auto it = model.find(key);
                        if (found != (it != model.end()) ||
                            (found && r.str() != it->second))
                            mismatches++;
                    }
                }
            });
        }
        for (auto& th : threads)
            th.join();
        EXPECT_EQ(mismatches.load(), 0);

        size_t expect = 0;
        for (const auto& model : models) {
            expect += model.size();
            for (const auto& [k, v] : model) {
                ds::LookupResult r;
                ASSERT_TRUE(server.get(k, &r)) << k;
                EXPECT_EQ(r.str(), v);
            }
        }
        EXPECT_EQ(server.itemCount(), expect);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Runtimes, KvServerTest,
    ::testing::Values(RuntimeKind::clobber, RuntimeKind::undo,
                      RuntimeKind::redo),
    [](const auto& info) {
        switch (info.param) {
          case RuntimeKind::undo: return "pmdk";
          case RuntimeKind::redo: return "mnemosyne";
          default: return "clobber";
        }
    });

TEST(KvServerCrash, InterruptedSetsRecover)
{
    Harness h(RuntimeKind::clobber, rt::ClobberPolicy::refined,
              64ULL << 20);
    auto eng = h.engine();
    apps::KvServer::Config cfg;
    cfg.shards = 4;
    cfg.bucketsPerShard = 32;
    apps::KvServer server(eng, 0, cfg);

    for (int i = 0; i < 50; i++)
        server.set("stable" + std::to_string(i), "value");

    Xorshift rng(8);
    int crashes = 0;
    for (int i = 0; i < 60; i++) {
        std::string key = "crash" + std::to_string(i);
        h.pool->armWriteTrap(1 + rng.nextUint(25));
        try {
            server.set(key, "payload-" + std::to_string(i));
        } catch (const nvm::CrashInjected&) {
            crashes++;
            h.pool->simulateCrash(i);
            h.runtime->recover();
        }
        h.pool->armWriteTrap(0);
    }
    EXPECT_GT(crashes, 10);
    // All stable keys must have survived; crash keys either absent or
    // complete (clobber completes everything past the v_log persist).
    for (int i = 0; i < 50; i++) {
        ds::LookupResult r;
        ASSERT_TRUE(server.get("stable" + std::to_string(i), &r));
    }
    for (int i = 0; i < 60; i++) {
        ds::LookupResult r;
        if (server.get("crash" + std::to_string(i), &r))
            ASSERT_EQ(r.str(), "payload-" + std::to_string(i));
    }
}

class VacationTest
    : public ::testing::TestWithParam<apps::TableKind> {};

TEST_P(VacationTest, TasksKeepTablesConsistent)
{
    Harness h(RuntimeKind::clobber, rt::ClobberPolicy::refined,
              128ULL << 20);
    auto eng = h.engine();
    apps::Vacation::Config cfg;
    cfg.tableKind = GetParam();
    cfg.recordsPerTable = 128;
    cfg.queriesPerTask = 4;
    apps::Vacation vac(eng, 0, cfg);

    ASSERT_TRUE(vac.validate());
    for (uint64_t seed = 1; seed <= 400; seed++)
        vac.runTask(seed);
    EXPECT_TRUE(vac.validate());
    EXPECT_GT(vac.totalReservations(), 0u);
}

TEST_P(VacationTest, CrashSweepPreservesAccounting)
{
    Harness h(RuntimeKind::clobber, rt::ClobberPolicy::refined,
              128ULL << 20);
    auto eng = h.engine();
    apps::Vacation::Config cfg;
    cfg.tableKind = GetParam();
    cfg.recordsPerTable = 96;
    cfg.queriesPerTask = 3;
    apps::Vacation vac(eng, 0, cfg);

    Xorshift rng(31);
    int crashes = 0;
    for (uint64_t seed = 1; seed <= 250; seed++) {
        if (rng.nextBool(0.4))
            h.pool->armWriteTrap(1 + rng.nextUint(60));
        try {
            vac.runTask(seed);
        } catch (const nvm::CrashInjected&) {
            crashes++;
            h.pool->simulateCrash(seed);
            h.runtime->recover();
        }
        h.pool->armWriteTrap(0);
        if (seed % 50 == 0)
            ASSERT_TRUE(vac.validate()) << "after task " << seed;
    }
    EXPECT_GT(crashes, 10);
    EXPECT_TRUE(vac.validate());
}

INSTANTIATE_TEST_SUITE_P(
    Tables, VacationTest,
    ::testing::Values(apps::TableKind::rbtree,
                      apps::TableKind::avltree),
    [](const auto& info) {
        return info.param == apps::TableKind::rbtree ? "rbtree"
                                                     : "avltree";
    });

TEST(VacationRuntimes, CrashSweepUnderRollbackRuntimes)
{
    // The paper's re-execution recovery is Clobber-NVM's; the
    // roll-back baselines must keep vacation's accounting consistent
    // under the same crash storm.
    for (auto kind : {RuntimeKind::undo, RuntimeKind::redo}) {
        Harness h(kind, rt::ClobberPolicy::refined, 128ULL << 20);
        auto eng = h.engine();
        apps::Vacation::Config cfg;
        cfg.recordsPerTable = 96;
        cfg.queriesPerTask = 3;
        apps::Vacation vac(eng, 0, cfg);

        Xorshift rng(61);
        int crashes = 0;
        for (uint64_t seed = 1; seed <= 200; seed++) {
            if (rng.nextBool(0.4))
                h.pool->armWriteTrap(1 + rng.nextUint(60));
            try {
                vac.runTask(seed);
            } catch (const nvm::CrashInjected&) {
                crashes++;
                h.pool->simulateCrash(seed);
                h.runtime->recover();
            }
            h.pool->armWriteTrap(0);
        }
        EXPECT_GT(crashes, 10);
        EXPECT_TRUE(vac.validate())
            << "runtime " << h.runtime->name();
    }
}

TEST(YadaRuntimes, CrashSweepUnderRollbackRuntimes)
{
    for (auto kind : {RuntimeKind::undo, RuntimeKind::redo}) {
        Harness h(kind, rt::ClobberPolicy::refined, 128ULL << 20);
        auto eng = h.engine();
        apps::Yada::Config cfg;
        cfg.gridSide = 8;
        cfg.angleConstraintDeg = 16.0;
        apps::Yada yada(eng, 0, cfg);

        Xorshift rng(53);
        int crashes = 0;
        uint64_t steps = 0;
        while (yada.hasWork() && steps < 4000) {
            if (rng.nextBool(0.25))
                h.pool->armWriteTrap(1 + rng.nextUint(80));
            try {
                yada.refineStep();
            } catch (const nvm::CrashInjected&) {
                crashes++;
                h.pool->simulateCrash(steps);
                h.runtime->recover();
            }
            h.pool->armWriteTrap(0);
            steps++;
        }
        EXPECT_GT(crashes, 5) << h.runtime->name();
        EXPECT_FALSE(yada.hasWork()) << h.runtime->name();
        EXPECT_TRUE(yada.validate(/* requireQuality */ true))
            << h.runtime->name();
    }
}

TEST(VacationRuntimes, AllRuntimesAgree)
{
    for (auto kind : {RuntimeKind::undo, RuntimeKind::redo,
                      RuntimeKind::clobber}) {
        Harness h(kind, rt::ClobberPolicy::refined, 128ULL << 20);
        auto eng = h.engine();
        apps::Vacation::Config cfg;
        cfg.recordsPerTable = 64;
        apps::Vacation vac(eng, 0, cfg);
        for (uint64_t seed = 1; seed <= 150; seed++)
            vac.runTask(seed);
        ASSERT_TRUE(vac.validate());
    }
}

TEST(YadaTest, InitialTriangulationIsValid)
{
    Harness h(RuntimeKind::clobber, rt::ClobberPolicy::refined,
              128ULL << 20);
    auto eng = h.engine();
    apps::Yada::Config cfg;
    cfg.gridSide = 10;
    cfg.angleConstraintDeg = 18.0;
    apps::Yada yada(eng, 0, cfg);

    // Euler: for a triangulated convex polygon with I interior and
    // H hull points, triangles = 2I + H - 2.
    EXPECT_TRUE(yada.validate(/* requireQuality */ false));
    EXPECT_EQ(yada.pointCount(), 104u);  // 100 grid + 4 corners
    EXPECT_EQ(yada.meshSize(), 2 * 100 + 4 - 2);
}

TEST(YadaTest, RefinementReachesAngleConstraint)
{
    Harness h(RuntimeKind::clobber, rt::ClobberPolicy::refined,
              128ULL << 20);
    auto eng = h.engine();
    apps::Yada::Config cfg;
    cfg.gridSide = 10;
    cfg.angleConstraintDeg = 18.0;
    apps::Yada yada(eng, 0, cfg);

    uint64_t before = yada.meshSize();
    uint64_t steps = yada.refineAll();
    EXPECT_FALSE(yada.hasWork());
    EXPECT_GT(steps, 0u);
    EXPECT_GT(yada.meshSize(), before);
    EXPECT_TRUE(yada.validate(/* requireQuality */ true));
}

TEST(YadaTest, RefinementSurvivesCrashes)
{
    Harness h(RuntimeKind::clobber, rt::ClobberPolicy::refined,
              128ULL << 20);
    auto eng = h.engine();
    apps::Yada::Config cfg;
    cfg.gridSide = 8;
    cfg.angleConstraintDeg = 16.0;
    apps::Yada yada(eng, 0, cfg);

    Xorshift rng(77);
    int crashes = 0;
    uint64_t steps = 0;
    while (yada.hasWork() && steps < 4000) {
        if (rng.nextBool(0.25))
            h.pool->armWriteTrap(1 + rng.nextUint(80));
        try {
            yada.refineStep();
        } catch (const nvm::CrashInjected&) {
            crashes++;
            h.pool->simulateCrash(steps);
            h.runtime->recover();
        }
        h.pool->armWriteTrap(0);
        steps++;
    }
    EXPECT_GT(crashes, 5);
    EXPECT_FALSE(yada.hasWork());
    EXPECT_TRUE(yada.validate(/* requireQuality */ true));
}

}  // namespace
}  // namespace cnvm::test
