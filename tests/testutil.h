/**
 * @file
 * Shared fixtures and registered txfuncs for the test suites.
 */
#ifndef CNVM_TESTS_TESTUTIL_H
#define CNVM_TESTS_TESTUTIL_H

#include <memory>

#include "alloc/pm_allocator.h"
#include "nvm/pool.h"
#include "nvm/pptr.h"
#include "runtimes/factory.h"
#include "txn/txrun.h"

namespace cnvm::test {

/** A tiny persistent root used by the runtime/crash tests. */
struct TestRoot {
    uint64_t counter;
    uint64_t sum;
    nvm::PPtr<struct TestNode> head;
    uint64_t pad[5];
};

struct TestNode {
    uint64_t value;
    nvm::PPtr<TestNode> next;
};

/** txfunc ids registered by testutil.cc. */
extern const txn::FuncId kIncrCounter;   ///< counter++ (read-modify-write)
extern const txn::FuncId kPushNode;      ///< prepend node; sum += value
extern const txn::FuncId kPopNode;       ///< remove head; sum -= value
extern const txn::FuncId kBlindWrite;    ///< overwrite sum without reading
extern const txn::FuncId kReadOnly;      ///< loads only

/** Pool + heap + runtime bundle over an anonymous mapping. */
class Harness {
 public:
    explicit Harness(txn::RuntimeKind kind,
                     rt::ClobberPolicy policy = rt::ClobberPolicy::refined,
                     size_t poolSize = 32ULL << 20)
    {
        nvm::PoolConfig cfg;
        cfg.size = poolSize;
        cfg.maxThreads = 8;
        cfg.slotBytes = 128ULL << 10;
        pool = nvm::Pool::create(cfg);
        nvm::Pool::setCurrent(pool.get());
        heap = std::make_unique<alloc::PmAllocator>(*pool);
        runtime = rt::makeRuntime(kind, *pool, *heap, policy);
        makeRoot();
    }

    ~Harness()
    {
        if (nvm::Pool::current() == pool.get())
            nvm::Pool::setCurrent(nullptr);
    }

    TestRoot&
    root()
    {
        return *static_cast<TestRoot*>(pool->at(pool->root()));
    }

    nvm::PPtr<TestRoot>
    rootPtr()
    {
        return nvm::PPtr<TestRoot>(pool->root());
    }

    txn::Engine
    engine()
    {
        return txn::Engine(*runtime);
    }

    /** Sum the list by direct traversal (outside any transaction). */
    uint64_t
    listSum()
    {
        uint64_t sum = 0;
        size_t guard = 0;
        for (auto n = root().head; !n.isNull(); n = n->next) {
            sum += n->value;
            CNVM_CHECK(++guard < 1000000, "list is cyclic");
        }
        return sum;
    }

    size_t
    listLen()
    {
        size_t len = 0;
        for (auto n = root().head; !n.isNull(); n = n->next)
            CNVM_CHECK(++len < 1000000, "list is cyclic");
        return len;
    }

    std::unique_ptr<nvm::Pool> pool;
    std::unique_ptr<alloc::PmAllocator> heap;
    std::unique_ptr<txn::Runtime> runtime;

 private:
    void makeRoot();
};

}  // namespace cnvm::test

#endif  // CNVM_TESTS_TESTUTIL_H
