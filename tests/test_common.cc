/** @file Unit tests for common utilities (RNG, zipfian, EpochSet). */
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/epoch_set.h"
#include "common/error.h"
#include "common/rand.h"

namespace cnvm {
namespace {

TEST(Xorshift, Deterministic)
{
    Xorshift a(42), b(42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xorshift, SeedsDiffer)
{
    Xorshift a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Xorshift, UniformBounds)
{
    Xorshift r(7);
    for (int i = 0; i < 10000; i++) {
        EXPECT_LT(r.nextUint(17), 17u);
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Zipfian, RanksAreSkewed)
{
    Zipfian z(1000, 0.99, 3);
    std::unordered_map<uint64_t, int> counts;
    for (int i = 0; i < 100000; i++)
        counts[z.nextRank()]++;
    // Rank 0 must be by far the most popular.
    int top = counts[0];
    EXPECT_GT(top, 100000 / 20);
    int tail = 0;
    for (uint64_t k = 900; k < 1000; k++)
        tail += counts[k];
    EXPECT_LT(tail, top);
}

TEST(Zipfian, ScrambledStaysInRange)
{
    Zipfian z(257, 0.99, 5);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(z.next(), 257u);
}

TEST(Fnv1a, KnownProperties)
{
    EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ULL);
    EXPECT_NE(fnv1a("a", 1), fnv1a("b", 1));
    uint64_t h1 = fnv1a("hello", 5);
    EXPECT_EQ(h1, fnv1a("hello", 5));
}

TEST(EpochSet, InsertContains)
{
    EpochSet s(16);
    EXPECT_TRUE(s.insert(10));
    EXPECT_FALSE(s.insert(10));
    EXPECT_TRUE(s.contains(10));
    EXPECT_FALSE(s.contains(11));
    EXPECT_EQ(s.size(), 1u);
}

TEST(EpochSet, ClearIsCheapAndComplete)
{
    EpochSet s(16);
    for (uint64_t i = 1; i <= 100; i++)
        s.insert(i);
    EXPECT_EQ(s.size(), 100u);
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    for (uint64_t i = 1; i <= 100; i++)
        EXPECT_FALSE(s.contains(i));
    // Reusable after clear.
    EXPECT_TRUE(s.insert(5));
    EXPECT_TRUE(s.contains(5));
}

TEST(EpochSet, GrowsBeyondInitialCapacity)
{
    EpochSet s(16);
    for (uint64_t i = 1; i <= 10000; i++)
        EXPECT_TRUE(s.insert(i * 977));
    for (uint64_t i = 1; i <= 10000; i++)
        EXPECT_TRUE(s.contains(i * 977));
    EXPECT_EQ(s.size(), 10000u);
}

TEST(EpochSet, ForEachVisitsExactlyCurrentKeys)
{
    EpochSet s(16);
    s.insert(1);
    s.insert(2);
    s.clear();
    s.insert(3);
    s.insert(4);
    std::set<uint64_t> seen;
    s.forEach([&](uint64_t k) { seen.insert(k); });
    EXPECT_EQ(seen, (std::set<uint64_t>{3, 4}));
}

TEST(EpochSet, RejectsZeroKey)
{
    EpochSet s(16);
    EXPECT_THROW(s.insert(0), PanicError);
}

TEST(Error, FatalAndPanicThrow)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
}

}  // namespace
}  // namespace cnvm
