/** @file Unit tests for common utilities (RNG, zipfian, EpochSet, BlockMap). */
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_map>

#include "common/block_map.h"
#include "common/epoch_set.h"
#include "common/error.h"
#include "common/rand.h"

namespace cnvm {
namespace {

TEST(Xorshift, Deterministic)
{
    Xorshift a(42), b(42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xorshift, SeedsDiffer)
{
    Xorshift a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Xorshift, UniformBounds)
{
    Xorshift r(7);
    for (int i = 0; i < 10000; i++) {
        EXPECT_LT(r.nextUint(17), 17u);
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Zipfian, RanksAreSkewed)
{
    Zipfian z(1000, 0.99, 3);
    std::unordered_map<uint64_t, int> counts;
    for (int i = 0; i < 100000; i++)
        counts[z.nextRank()]++;
    // Rank 0 must be by far the most popular.
    int top = counts[0];
    EXPECT_GT(top, 100000 / 20);
    int tail = 0;
    for (uint64_t k = 900; k < 1000; k++)
        tail += counts[k];
    EXPECT_LT(tail, top);
}

TEST(Zipfian, ScrambledStaysInRange)
{
    Zipfian z(257, 0.99, 5);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(z.next(), 257u);
}

TEST(Fnv1a, KnownProperties)
{
    EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ULL);
    EXPECT_NE(fnv1a("a", 1), fnv1a("b", 1));
    uint64_t h1 = fnv1a("hello", 5);
    EXPECT_EQ(h1, fnv1a("hello", 5));
}

TEST(EpochSet, InsertContains)
{
    EpochSet s(16);
    EXPECT_TRUE(s.insert(10));
    EXPECT_FALSE(s.insert(10));
    EXPECT_TRUE(s.contains(10));
    EXPECT_FALSE(s.contains(11));
    EXPECT_EQ(s.size(), 1u);
}

TEST(EpochSet, ClearIsCheapAndComplete)
{
    EpochSet s(16);
    for (uint64_t i = 1; i <= 100; i++)
        s.insert(i);
    EXPECT_EQ(s.size(), 100u);
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    for (uint64_t i = 1; i <= 100; i++)
        EXPECT_FALSE(s.contains(i));
    // Reusable after clear.
    EXPECT_TRUE(s.insert(5));
    EXPECT_TRUE(s.contains(5));
}

TEST(EpochSet, GrowsBeyondInitialCapacity)
{
    EpochSet s(16);
    for (uint64_t i = 1; i <= 10000; i++)
        EXPECT_TRUE(s.insert(i * 977));
    for (uint64_t i = 1; i <= 10000; i++)
        EXPECT_TRUE(s.contains(i * 977));
    EXPECT_EQ(s.size(), 10000u);
}

TEST(EpochSet, ForEachVisitsExactlyCurrentKeys)
{
    EpochSet s(16);
    s.insert(1);
    s.insert(2);
    s.clear();
    s.insert(3);
    s.insert(4);
    std::set<uint64_t> seen;
    s.forEach([&](uint64_t k) { seen.insert(k); });
    EXPECT_EQ(seen, (std::set<uint64_t>{3, 4}));
}

TEST(EpochSet, RejectsZeroKey)
{
    EpochSet s(16);
    EXPECT_THROW(s.insert(0), PanicError);
}

TEST(EpochSet, EpochWrapHardResets)
{
    EpochSet s(16);
    s.insert(7);
    s.insert(8);
    // forceWrap preserves contents while priming the next clear() to
    // take the epoch_ == 0 hard-reset branch.
    s.forceWrap();
    EXPECT_TRUE(s.contains(7));
    EXPECT_TRUE(s.contains(8));
    EXPECT_EQ(s.size(), 2u);
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    EXPECT_FALSE(s.contains(7));
    EXPECT_FALSE(s.contains(8));
    // The set must be fully usable after the wrap: stale buckets from
    // before the reset must not alias new epochs.
    EXPECT_TRUE(s.insert(7));
    EXPECT_TRUE(s.contains(7));
    EXPECT_FALSE(s.contains(8));
    s.clear();
    EXPECT_FALSE(s.contains(7));
}

TEST(BlockMap, RefInsertsAndAccumulatesBits)
{
    BlockMap m(16);
    EXPECT_EQ(m.get(5), 0);
    m.ref(5) |= BlockMap::kRead;
    m.ref(5) |= BlockMap::kWritten;
    EXPECT_EQ(m.get(5), BlockMap::kRead | BlockMap::kWritten);
    EXPECT_EQ(m.size(), 1u);
    // Key 0 is a valid block number (unlike EpochSet).
    m.ref(0) |= BlockMap::kLogged;
    EXPECT_EQ(m.get(0), BlockMap::kLogged);
    EXPECT_EQ(m.size(), 2u);
}

TEST(BlockMap, ClearIsCheapAndComplete)
{
    BlockMap m(16);
    for (uint64_t b = 0; b < 100; b++)
        m.ref(b) |= BlockMap::kWritten;
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    for (uint64_t b = 0; b < 100; b++)
        EXPECT_EQ(m.get(b), 0);
    m.ref(3) |= BlockMap::kRead;
    EXPECT_EQ(m.get(3), BlockMap::kRead);
}

TEST(BlockMap, GrowthPreservesStateBits)
{
    BlockMap m(16);
    // Assign a distinct bit pattern per key, forcing several growths
    // mid-"transaction", and check no state byte is lost or mixed up.
    std::map<uint64_t, uint8_t> expect;
    for (uint64_t i = 0; i < 5000; i++) {
        uint64_t key = i * 977;
        uint8_t bits = static_cast<uint8_t>(1u << (i % 5));
        m.ref(key) |= bits;
        expect[key] |= bits;
    }
    EXPECT_GT(m.capacity(), 16u);
    EXPECT_EQ(m.size(), expect.size());
    for (const auto& [key, bits] : expect)
        EXPECT_EQ(m.get(key), bits) << "key " << key;
    std::map<uint64_t, uint8_t> seen;
    m.forEach([&](uint64_t k, uint8_t st) { seen[k] = st; });
    EXPECT_EQ(seen, expect);
}

TEST(BlockMap, EpochWrapHardResets)
{
    BlockMap m(16);
    m.ref(1) |= BlockMap::kRead;
    m.ref(2) |= BlockMap::kWritten;
    m.forceWrap();
    EXPECT_EQ(m.get(1), BlockMap::kRead);
    EXPECT_EQ(m.get(2), BlockMap::kWritten);
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.get(1), 0);
    EXPECT_EQ(m.get(2), 0);
    m.ref(1) |= BlockMap::kLogged;
    EXPECT_EQ(m.get(1), BlockMap::kLogged);
    EXPECT_EQ(m.get(2), 0);
    m.clear();
    EXPECT_EQ(m.get(1), 0);
}

TEST(BlockMap, ClearRegionBitsIsScopedAndCheap)
{
    BlockMap m(16);
    m.ref(1) |= BlockMap::kRead | BlockMap::kRegionRead;
    m.ref(2) |= BlockMap::kWritten | BlockMap::kRegionWritten;
    m.clearRegionBits();
    // Region bits vanish; transaction-scoped bits survive.
    EXPECT_EQ(m.get(1), BlockMap::kRead);
    EXPECT_EQ(m.get(2), BlockMap::kWritten);
    // Both through the mutating and non-mutating paths.
    EXPECT_EQ(m.ref(1), BlockMap::kRead);
    m.ref(1) |= BlockMap::kRegionRead;
    EXPECT_EQ(m.get(1), BlockMap::kRead | BlockMap::kRegionRead);
    uint8_t seen1 = 0;
    m.forEach([&](uint64_t k, uint8_t st) {
        if (k == 1)
            seen1 = st;
    });
    EXPECT_EQ(seen1, BlockMap::kRead | BlockMap::kRegionRead);
}

TEST(BlockMap, RegionEpochSurvivesGrowth)
{
    BlockMap m(16);
    for (uint64_t b = 0; b < 50; b++)
        m.ref(b) |= BlockMap::kWritten | BlockMap::kRegionWritten;
    m.clearRegionBits();
    // Growth re-inserts entries whose region bits are stale; the new
    // table must still treat them as cleared.
    for (uint64_t b = 50; b < 5000; b++)
        m.ref(b) |= BlockMap::kRead;
    for (uint64_t b = 0; b < 50; b++)
        EXPECT_EQ(m.get(b), BlockMap::kWritten) << "block " << b;
}

TEST(Error, FatalAndPanicThrow)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
}

}  // namespace
}  // namespace cnvm
