/** @file Tests for the YCSB and memslap workload generators. */
#include <gtest/gtest.h>

#include <set>

#include "workloads/memslap.h"
#include "workloads/ycsb.h"

namespace cnvm::wl {
namespace {

TEST(Ycsb, LoadProducesUniqueOrderedlessKeys)
{
    Ycsb gen(YcsbKind::load, 10000, 8, 256, 1);
    std::set<std::string> keys;
    for (int i = 0; i < 5000; i++) {
        auto req = gen.next();
        EXPECT_EQ(req.op, YcsbOp::insert);
        EXPECT_EQ(req.key.size(), 8u);
        EXPECT_EQ(req.value.size(), 256u);
        EXPECT_TRUE(keys.insert(req.key).second) << "dup at " << i;
    }
}

TEST(Ycsb, DeterministicStreams)
{
    Ycsb a(YcsbKind::a, 1000, 8, 64, 9);
    Ycsb b(YcsbKind::a, 1000, 8, 64, 9);
    for (int i = 0; i < 1000; i++) {
        auto ra = a.next();
        auto rb = b.next();
        EXPECT_EQ(ra.key, rb.key);
        EXPECT_EQ(static_cast<int>(ra.op), static_cast<int>(rb.op));
    }
}

TEST(Ycsb, MixRatiosRoughlyHold)
{
    Ycsb gen(YcsbKind::b, 1000, 8, 64, 3);
    int reads = 0;
    for (int i = 0; i < 10000; i++)
        reads += gen.next().op == YcsbOp::read;
    EXPECT_GT(reads, 9200);
    EXPECT_LT(reads, 9800);
}

TEST(Ycsb, BptreeKeysPadTo32)
{
    Ycsb gen(YcsbKind::load, 100, 32, 16, 1);
    EXPECT_EQ(gen.keyOf(5).size(), 32u);
}

TEST(Memslap, KeyAndValueSizesMatchPaper)
{
    Memslap gen(0.95, 10000, 1);
    for (int i = 0; i < 200; i++) {
        auto req = gen.next();
        EXPECT_EQ(req.key.size(), 16u);
        if (req.op == KvOp::set)
            EXPECT_EQ(req.value.size(), 64u);
    }
}

TEST(Memslap, InsertFractionHolds)
{
    for (const auto& mix : memslapMixes()) {
        Memslap gen(mix.insertFraction, 1000, 11);
        int sets = 0;
        constexpr int kN = 20000;
        for (int i = 0; i < kN; i++)
            sets += gen.next().op == KvOp::set;
        double frac = static_cast<double>(sets) / kN;
        EXPECT_NEAR(frac, mix.insertFraction, 0.02) << mix.name;
    }
}

}  // namespace
}  // namespace cnvm::wl
