#include "testutil.h"

namespace cnvm::test {

namespace {

void
incrCounterFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
    uint64_t c = tx.ld(root->counter);
    tx.st(root->counter, c + 1);
}

void
pushNodeFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
    auto value = a.get<uint64_t>();
    auto node = tx.pnew<TestNode>();
    tx.st(node->value, value);
    tx.st(node->next, tx.ld(root->head));  // reads head
    tx.st(root->head, node);               // clobbers head
    tx.st(root->sum, tx.ld(root->sum) + value);
}

void
popNodeFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
    auto head = tx.ld(root->head);
    if (head.isNull())
        return;
    uint64_t value = tx.ld(head->value);
    tx.st(root->head, tx.ld(head->next));
    tx.st(root->sum, tx.ld(root->sum) - value);
    tx.pfree(head);
}

void
blindWriteFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
    auto value = a.get<uint64_t>();
    tx.st(root->sum, value);  // no prior read: output-only store
}

void
readOnlyFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
    volatile uint64_t sink = tx.ld(root->counter) + tx.ld(root->sum);
    (void)sink;
}

}  // namespace

const txn::FuncId kIncrCounter =
    txn::registerTxFunc("test_incr", incrCounterFn);
const txn::FuncId kPushNode =
    txn::registerTxFunc("test_push", pushNodeFn);
const txn::FuncId kPopNode =
    txn::registerTxFunc("test_pop", popNodeFn);
const txn::FuncId kBlindWrite =
    txn::registerTxFunc("test_blind", blindWriteFn);
const txn::FuncId kReadOnly =
    txn::registerTxFunc("test_readonly", readOnlyFn);

void
Harness::makeRoot()
{
    // Bootstrap the root object with a one-off transaction.
    txn::Engine eng(*runtime);
    static const txn::FuncId kMakeRoot = txn::registerTxFunc(
        "test_make_root", [](txn::Tx& tx, txn::ArgReader&) {
            auto r = tx.pnew<TestRoot>();
            tx.pool().setRoot(r.raw());
        });
    txn::run(eng, kMakeRoot);
}

}  // namespace cnvm::test
