/**
 * @file
 * Tests for the persistency checker: the static CIR lint
 * (analysis/persist_check) and the dynamic durability validator
 * (analysis/durability).
 */
#include <gtest/gtest.h>

#include "analysis/durability.h"
#include "analysis/fixtures.h"
#include "analysis/persist_check.h"
#include "analysis/reexec_check.h"
#include "cir/builders.h"
#include "cir/clobber_pass.h"
#include "cir/summaries.h"
#include "stats/counters.h"
#include "testutil.h"

namespace cnvm::test {
namespace {

using analysis::CheckKind;
using analysis::Severity;
using txn::RuntimeKind;

// ---------------------------------------------------------------------
// Static lint: seeded-violation fixtures.

TEST(PersistCheck, FlagsEverySeededViolation)
{
    auto fixtures = analysis::seededViolationFixtures();
    ASSERT_EQ(fixtures.size(), 4u);
    for (const auto& [fn, expected] : fixtures) {
        auto rep = analysis::checkPersistency(fn);
        EXPECT_TRUE(rep.has(expected))
            << fn.name() << ": seeded "
            << analysis::checkKindName(expected) << " not flagged\n"
            << rep.toString(fn);
    }
}

TEST(PersistCheck, MissingFlushIsAnError)
{
    auto fn = analysis::buildMissingFlushFixture();
    auto rep = analysis::checkPersistency(fn);
    EXPECT_TRUE(rep.has(CheckKind::missingFlush));
    EXPECT_FALSE(rep.clean());
    EXPECT_GE(rep.count(Severity::error), 1);
    // The bug is the flush, not the logging.
    EXPECT_FALSE(rep.has(CheckKind::unloggedClobber)) << rep.toString(fn);
}

TEST(PersistCheck, MissingFenceIsAnError)
{
    auto fn = analysis::buildMissingFenceFixture();
    auto rep = analysis::checkPersistency(fn);
    EXPECT_TRUE(rep.has(CheckKind::missingFence));
    EXPECT_FALSE(rep.clean());
    EXPECT_FALSE(rep.has(CheckKind::missingFlush)) << rep.toString(fn);
}

TEST(PersistCheck, UnloggedClobberIsAnError)
{
    auto fn = analysis::buildUnloggedClobberFixture();
    auto rep = analysis::checkPersistency(fn);
    EXPECT_TRUE(rep.has(CheckKind::unloggedClobber));
    EXPECT_FALSE(rep.clean());
    EXPECT_FALSE(rep.has(CheckKind::missingFlush)) << rep.toString(fn);
    EXPECT_FALSE(rep.has(CheckKind::missingFence)) << rep.toString(fn);
}

TEST(PersistCheck, DoubleFlushIsAWarningOnly)
{
    auto fn = analysis::buildDoubleFlushFixture();
    auto rep = analysis::checkPersistency(fn);
    EXPECT_TRUE(rep.has(CheckKind::doubleFlush));
    // A redundant flush is a perf diagnostic, not a correctness bug.
    EXPECT_TRUE(rep.clean()) << rep.toString(fn);
    EXPECT_GE(rep.count(Severity::warning), 1);
}

TEST(PersistCheck, CleanFixtureReportsNothing)
{
    auto fn = analysis::buildCleanFixture();
    auto rep = analysis::checkPersistency(fn);
    EXPECT_TRUE(rep.violations.empty()) << rep.toString(fn);
    EXPECT_GE(rep.storesChecked, 1);
    EXPECT_GE(rep.flushesChecked, 1);
}

// ---------------------------------------------------------------------
// Static lint over the benchmark corpus.

TEST(PersistCheck, UninstrumentedBenchmarksFailTheLint)
{
    // Every benchmark function stores to NVM but emits no persistence
    // intrinsics, so the raw functions must be flagged.
    for (const auto& mod : cir::benchmarkModules()) {
        for (const auto& fn : mod.functions) {
            auto rep = analysis::checkPersistency(fn);
            if (rep.storesChecked == 0)
                continue;
            EXPECT_TRUE(rep.has(CheckKind::missingFlush))
                << mod.name << "/" << fn.name();
        }
    }
}

TEST(PersistCheck, InstrumentedBenchmarksAreViolationFree)
{
    // instrumentPersistency is the compiler-emission step; its output
    // must satisfy the checker with zero errors AND zero warnings
    // (no false positives on any of the eight benchmark bodies).
    for (const auto& mod : cir::benchmarkModules()) {
        for (const auto& fn : mod.functions) {
            auto res = cir::analyzeClobbers(fn);
            auto inst = analysis::instrumentPersistency(fn, res);
            auto rep = analysis::checkPersistency(inst);
            EXPECT_TRUE(rep.clean())
                << mod.name << "/" << rep.toString(inst);
            EXPECT_EQ(rep.count(Severity::warning), 0)
                << mod.name << "/" << rep.toString(inst);
        }
    }
}

TEST(PersistCheck, InstrumentationPreservesClobberAnalysis)
{
    // The intrinsics define no SSA values, so value numbering — and
    // with it the clobber analysis — is unchanged by instrumentation.
    for (const auto& mod : cir::benchmarkModules()) {
        for (const auto& fn : mod.functions) {
            auto before = cir::analyzeClobbers(fn);
            auto inst =
                analysis::instrumentPersistency(fn, before);
            auto after = cir::analyzeClobbers(inst);
            EXPECT_EQ(after.refinedSites.size(),
                      before.refinedSites.size())
                << mod.name << "/" << fn.name();
        }
    }
}

// ---------------------------------------------------------------------
// Re-execution-safety verifier: seeded interprocedural fixtures.

const cir::Function&
findFn(const cir::IrModule& mod, const std::string& name)
{
    for (const auto& fn : mod.functions)
        if (fn.name() == name)
            return fn;
    ADD_FAILURE() << mod.name << ": no function " << name;
    return mod.functions.front();
}

TEST(ReexecCheck, FlagsEverySeededViolation)
{
    auto fixtures = analysis::seededReexecFixtures();
    ASSERT_EQ(fixtures.size(), 4u);
    for (const auto& fix : fixtures) {
        cir::ModuleSummaries sums(fix.mod.functions);
        const auto& tx = findFn(fix.mod, fix.txFunction);
        auto rep = analysis::checkReexecSafety(tx, sums);
        EXPECT_TRUE(rep.has(fix.expected))
            << tx.name() << ": seeded "
            << analysis::checkKindName(fix.expected)
            << " not flagged\n"
            << rep.toString(tx);
        EXPECT_FALSE(rep.clean()) << tx.name();
        // Every finding ships a fix-it hint.
        for (const auto& v : rep.violations)
            EXPECT_FALSE(v.hint.empty())
                << tx.name() << ": "
                << analysis::checkKindName(v.kind);
    }
}

TEST(ReexecCheck, NondeterminismSeenThroughPureDeclaredCall)
{
    // The tx declares its helper call pure; the helper reaches
    // rdtsc. Only the transitive summary can catch the lie.
    auto mod = analysis::buildNondetTxModule();
    cir::ModuleSummaries sums(mod.functions);
    const auto& tx = findFn(mod, "seed_nondet_call");
    auto rep = analysis::checkReexecSafety(tx, sums);
    ASSERT_EQ(rep.count(CheckKind::nondetInTx), 1);
    for (const auto& v : rep.violations)
        if (v.kind == CheckKind::nondetInTx)
            EXPECT_EQ(v.callee, "get_stamp");
    // The helper itself is also unsafe to replay.
    auto hrep =
        analysis::checkReexecSafety(findFn(mod, "get_stamp"), sums);
    EXPECT_TRUE(hrep.has(CheckKind::nondetInTx));
}

TEST(ReexecCheck, CleanModuleIsSilent)
{
    auto mod = analysis::buildReexecCleanModule();
    cir::ModuleSummaries sums(mod.functions);
    for (const auto& fn : mod.functions) {
        auto rep = analysis::checkReexecSafety(fn, sums);
        EXPECT_TRUE(rep.violations.empty())
            << fn.name() << "\n" << rep.toString(fn);
        EXPECT_GE(rep.callsChecked, 0);
        auto prep = analysis::checkPersistency(fn, &sums);
        EXPECT_TRUE(prep.clean())
            << fn.name() << "\n" << prep.toString(fn);
        EXPECT_EQ(prep.count(Severity::warning), 0)
            << fn.name() << "\n" << prep.toString(fn);
    }
}

TEST(ReexecCheck, HiddenClobberNeedsSummaries)
{
    // The acceptance pin at fixture level: the tx body is a single
    // call, so the intraprocedural clobber pass provably finds no
    // sites, while the interprocedural pass pins the call site and
    // both interprocedural audits flag the missing log.
    auto mod = analysis::buildHiddenClobberModule();
    const auto& tx = findFn(mod, "seed_hidden_clobber");

    auto intra = cir::analyzeClobbers(tx);
    EXPECT_TRUE(intra.conservativeSites.empty());
    EXPECT_TRUE(intra.refinedSites.empty());

    cir::ModuleSummaries sums(mod.functions);
    auto inter = cir::analyzeClobbers(tx, sums);
    ASSERT_EQ(inter.refinedSites.size(), 1u);
    EXPECT_EQ(tx.at(inter.refinedSites[0]).callee,
              "sum_bump_unlogged");

    auto rrep = analysis::checkReexecSafety(tx, sums);
    EXPECT_TRUE(rrep.has(CheckKind::hiddenClobber));
    auto prep = analysis::checkPersistency(tx, &sums);
    EXPECT_TRUE(prep.has(CheckKind::unloggedClobber))
        << prep.toString(tx);
}

TEST(ReexecCheck, CallerSideLogDischargesHiddenClobber)
{
    // Same unlogged helper, but the caller clobber_logs the argument
    // before the call: the obligation is met at the call site.
    auto mod = analysis::buildHiddenClobberModule();
    cir::Function tx("tx_logged_at_caller");
    int b = tx.addBlock("entry");
    cir::ValueId p = cir::emitArg(tx, b, "p");
    cir::emitClobberLog(tx, b, p, "clobber_log p (caller side)");
    cir::emitCall(tx, b, "sum_bump_unlogged",
                  cir::Effect::writesNVM, {p});
    mod.functions.push_back(tx);

    cir::ModuleSummaries sums(mod.functions);
    auto rep = analysis::checkReexecSafety(
        findFn(mod, "tx_logged_at_caller"), sums);
    EXPECT_FALSE(rep.has(CheckKind::hiddenClobber))
        << rep.toString(tx);
}

TEST(ReexecCheck, RuntimeTxCorpusVerifiesClean)
{
    // The acceptance gate in unit-test form: every runtime tx
    // function passes both interprocedural audits with zero errors.
    auto mod = cir::runtimeTxModule();
    cir::ModuleSummaries sums(mod.functions);
    for (const auto& fn : mod.functions) {
        auto prep = analysis::checkPersistency(fn, &sums);
        EXPECT_TRUE(prep.clean())
            << fn.name() << "\n" << prep.toString(fn);
        EXPECT_EQ(prep.count(Severity::warning), 0)
            << fn.name() << "\n" << prep.toString(fn);
        auto rrep = analysis::checkReexecSafety(fn, sums);
        EXPECT_TRUE(rrep.violations.empty())
            << fn.name() << "\n" << rrep.toString(fn);
    }
    // The tx entry points really do lean on their callees.
    EXPECT_FALSE(sums.callees(findFn(mod, "tx_push")).empty());
}

TEST(PersistCheck, SummaryAwareCrossesCallBoundaries)
{
    // The caller's store is flushed and fenced only inside a helper:
    // the intraprocedural audit flags it, the summary-aware audit
    // sees the callee's coverage.
    cir::Function helper("persist_field");
    int hb = helper.addBlock("entry");
    cir::ValueId q = cir::emitArg(helper, hb, "q");
    cir::emitFlush(helper, hb, q, "flush q");
    cir::emitFence(helper, hb, "fence");

    cir::Function tx("tx_delegated_persist");
    int b = tx.addBlock("entry");
    cir::ValueId p = cir::emitArg(tx, b, "p");
    cir::ValueId x = cir::emitLoad(tx, b, p, "input read");
    cir::emitClobberLog(tx, b, p, "clobber_log p");
    cir::emitStore(tx, b, p, x, "clobber");
    cir::emitCall(tx, b, "persist_field", cir::Effect::writesNVM,
                  {p});

    auto intra = analysis::checkPersistency(tx);
    EXPECT_TRUE(intra.has(CheckKind::missingFlush));

    cir::ModuleSummaries sums(
        std::vector<cir::Function>{helper, tx});
    auto inter = analysis::checkPersistency(tx, &sums);
    EXPECT_TRUE(inter.clean()) << inter.toString(tx);
    EXPECT_FALSE(inter.has(CheckKind::missingFlush))
        << inter.toString(tx);
    EXPECT_FALSE(inter.has(CheckKind::missingFence))
        << inter.toString(tx);
    EXPECT_GE(inter.callsChecked, 1);
}

TEST(PersistCheck, ReportNamesCalleeForCallFindings)
{
    // Call-derived findings print the callee symbol, not a bare
    // instruction index, and carry their fix-it hint.
    auto mod = analysis::buildHiddenClobberModule();
    const auto& tx = findFn(mod, "seed_hidden_clobber");
    cir::ModuleSummaries sums(mod.functions);
    auto rep = analysis::checkReexecSafety(tx, sums);
    ASSERT_FALSE(rep.violations.empty());
    std::string text = rep.toString(tx);
    EXPECT_NE(text.find("at call 'sum_bump_unlogged'"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("fix:"), std::string::npos) << text;
}

// ---------------------------------------------------------------------
// Dynamic validator: all six runtimes audit clean, including across
// a total-cache-loss crash and recovery.

class ValidatorClean : public ::testing::TestWithParam<RuntimeKind> {};

TEST_P(ValidatorClean, NoCommitLeavesDirtyLines)
{
    Harness h(GetParam());
    analysis::DurabilityValidator::Options opt;
    opt.requireDurability = GetParam() != RuntimeKind::noLog;
    analysis::DurabilityValidator validator(h.pool->cache(), opt);
    txn::Engine eng(*h.runtime, &validator);

    for (uint64_t v = 1; v <= 20; v++)
        txn::run(eng, kPushNode, h.rootPtr().raw(), v);
    for (int i = 0; i < 10; i++)
        txn::run(eng, kIncrCounter, h.rootPtr().raw());
    for (int i = 0; i < 5; i++)
        txn::run(eng, kPopNode, h.rootPtr().raw());
    txn::run(eng, kBlindWrite, h.rootPtr().raw(), uint64_t(99));
    txn::run(eng, kReadOnly, h.rootPtr().raw());

    ASSERT_TRUE(validator.violations().empty()) << validator.summary();

    // Power loss, recovery, and a second round: the audit must stay
    // clean on the recovered image too.
    h.pool->cache().crashAllLost();
    h.runtime->recover();
    for (uint64_t v = 1; v <= 10; v++)
        txn::run(eng, kPushNode, h.rootPtr().raw(), 100 + v);
    for (int i = 0; i < 10; i++)
        txn::run(eng, kPopNode, h.rootPtr().raw());

    EXPECT_TRUE(validator.violations().empty()) << validator.summary();
    EXPECT_GE(validator.commitsChecked(), 57u);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimes, ValidatorClean,
    ::testing::Values(RuntimeKind::noLog, RuntimeKind::undo,
                      RuntimeKind::redo, RuntimeKind::clobber,
                      RuntimeKind::atlas, RuntimeKind::ido),
    [](const auto& info) {
        switch (info.param) {
        case RuntimeKind::noLog: return "nolog";
        case RuntimeKind::undo: return "pmdk";
        case RuntimeKind::redo: return "mnemosyne";
        case RuntimeKind::clobber: return "clobber";
        case RuntimeKind::atlas: return "atlas";
        case RuntimeKind::ido: return "ido";
        }
        return "unknown";
    });

// ---------------------------------------------------------------------
// Dynamic validator: seeded violations are caught.

TEST(DurabilityValidator, CatchesDirtyLineAtCommit)
{
    Harness h(RuntimeKind::clobber);
    analysis::DurabilityValidator validator(h.pool->cache());
    // A store that bypasses the runtime: written, never flushed.
    uint64_t junk = 0xDEAD;
    h.pool->writeAt(h.pool->heapOff() + 4096, &junk, sizeof(junk));
    validator.afterCommit(0);
    ASSERT_EQ(validator.violations().size(), 1u);
    EXPECT_EQ(validator.violations()[0].dirtyLines, 1u);
    EXPECT_EQ(validator.violations()[0].pendingLines, 0u);
    EXPECT_FALSE(validator.violations()[0].sample.empty());
}

TEST(DurabilityValidator, FlushWithoutFenceIsPendingNotDirty)
{
    Harness h(RuntimeKind::clobber);
    analysis::DurabilityValidator validator(h.pool->cache());
    uint64_t junk = 0xBEEF;
    uint64_t off = h.pool->heapOff() + 4096;
    h.pool->writeAt(off, &junk, sizeof(junk));
    h.pool->flush(h.pool->at(off), sizeof(junk));
    // Default options: flushed-but-unfenced is an advisory only.
    validator.afterCommit(0);
    EXPECT_TRUE(validator.violations().empty());
    EXPECT_EQ(validator.pendingAdvisories(), 1u);
    // failOnPending upgrades the same state to a violation.
    analysis::DurabilityValidator::Options strict;
    strict.failOnPending = true;
    analysis::DurabilityValidator v2(h.pool->cache(), strict);
    h.pool->writeAt(off, &junk, sizeof(junk));
    h.pool->flush(h.pool->at(off), sizeof(junk));
    v2.afterCommit(0);
    ASSERT_EQ(v2.violations().size(), 1u);
    EXPECT_EQ(v2.violations()[0].pendingLines, 1u);
    // A fence retires the pending line; the next audit is clean.
    h.pool->fence();
    v2.afterCommit(0);
    EXPECT_EQ(v2.violations().size(), 1u);
}

TEST(DurabilityValidator, CrashResetsTracking)
{
    Harness h(RuntimeKind::clobber);
    analysis::DurabilityValidator validator(h.pool->cache());
    uint64_t junk = 1;
    h.pool->writeAt(h.pool->heapOff() + 4096, &junk, sizeof(junk));
    EXPECT_EQ(validator.dirtyNow(), 1u);
    // Torn lines are gone, not dirty: the mirror must follow.
    h.pool->cache().crashAllLost();
    EXPECT_EQ(validator.dirtyNow(), 0u);
    validator.afterCommit(0);
    EXPECT_TRUE(validator.violations().empty());
}

TEST(DurabilityValidator, CountsCommitsViaStats)
{
    Harness h(RuntimeKind::clobber);
    analysis::DurabilityValidator validator(h.pool->cache());
    txn::Engine eng(*h.runtime, &validator);
    auto before = stats::aggregate();
    for (int i = 0; i < 7; i++)
        txn::run(eng, kIncrCounter, h.rootPtr().raw());
    auto delta = stats::aggregate() - before;
    EXPECT_EQ(delta[stats::Counter::persistChecks], 7u);
    EXPECT_EQ(delta[stats::Counter::persistDirtyAtCommit], 0u);
    EXPECT_EQ(validator.commitsChecked(), 7u);
}

TEST(DurabilityValidator, DetachesOnDestruction)
{
    Harness h(RuntimeKind::clobber);
    {
        analysis::DurabilityValidator validator(h.pool->cache());
        uint64_t junk = 1;
        h.pool->writeAt(h.pool->heapOff() + 4096, &junk,
                        sizeof(junk));
        EXPECT_EQ(validator.dirtyNow(), 1u);
    }
    // After detach, cache events must not touch the dead observer.
    uint64_t junk = 2;
    h.pool->writeAt(h.pool->heapOff() + 8192, &junk, sizeof(junk));
    h.pool->persist(h.pool->at(h.pool->heapOff() + 8192),
                    sizeof(junk));
}

}  // namespace
}  // namespace cnvm::test
