/**
 * @file
 * Gtest wrappers over the torture drivers (src/testing/torture.h):
 * small exhaustive sweeps and fuzz cases that run inside the regular
 * test suite, plus the properties the drivers themselves must have
 * (nolog fails, shrinking preserves failure, recovery is idempotent).
 * The heavyweight sweeps live in the cnvm_torture CLI and the
 * `torture`-labeled ctest entries.
 */
#include <gtest/gtest.h>

#include <thread>

#include "stats/counters.h"
#include "testing/crash_scheduler.h"
#include "testing/torture.h"
#include "testutil.h"

namespace cnvm::test {
namespace {

using torture::CrashScheduler;
using torture::exhaustiveSweep;
using torture::fuzz;
using torture::FuzzCase;
using torture::FuzzConfig;
using torture::runFuzzCase;
using torture::shrinkCase;
using torture::SweepConfig;
using torture::Tear;
using txn::RuntimeKind;

struct MatrixCase {
    RuntimeKind kind;
    const char* structure;
};

class TortureMatrix : public ::testing::TestWithParam<MatrixCase> {};

/** A budgeted exhaustive sweep must pass for every real protocol. */
TEST_P(TortureMatrix, BudgetedSweepPasses)
{
    auto [kind, structure] = GetParam();
    SweepConfig cfg;
    cfg.tear = Tear::randomTear;
    cfg.seed = 17;
    cfg.budget = 400;
    auto res = exhaustiveSweep(kind, structure, cfg);
    EXPECT_TRUE(res.passed) << res.failure;
    EXPECT_GT(res.crashes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, TortureMatrix,
    ::testing::Values(
        MatrixCase{RuntimeKind::clobber, "list"},
        MatrixCase{RuntimeKind::clobber, "hashmap"},
        MatrixCase{RuntimeKind::clobber, "rbtree"},
        MatrixCase{RuntimeKind::clobber, "bptree"},
        MatrixCase{RuntimeKind::undo, "hashmap"},
        MatrixCase{RuntimeKind::redo, "bptree"},
        MatrixCase{RuntimeKind::atlas, "list"},
        MatrixCase{RuntimeKind::ido, "rbtree"}),
    [](const auto& info) {
        std::string name;
        switch (info.param.kind) {
          case RuntimeKind::clobber: name = "clobber"; break;
          case RuntimeKind::undo: name = "pmdk"; break;
          case RuntimeKind::redo: name = "mnemosyne"; break;
          case RuntimeKind::atlas: name = "atlas"; break;
          case RuntimeKind::ido: name = "ido"; break;
          default: name = "other"; break;
        }
        return name + "_" + info.param.structure;
    });

/** nolog has no recovery story: the sweep must catch it failing. */
TEST(TortureSweep, NologFails)
{
    SweepConfig cfg;
    cfg.tear = Tear::allLost;
    cfg.seed = 3;
    cfg.budget = 600;
    auto res = exhaustiveSweep(RuntimeKind::noLog, "hashmap", cfg);
    EXPECT_FALSE(res.passed);
    EXPECT_FALSE(res.failure.empty());
}

/** A small randomized fuzz run over the trickiest structure. */
TEST(TortureFuzz, ClobberBptreeSmoke)
{
    FuzzConfig cfg;
    cfg.budget = 400;
    cfg.baseSeed = 7;
    auto out = fuzz(RuntimeKind::clobber, "bptree", cfg);
    EXPECT_TRUE(out.passed) << out.report(RuntimeKind::clobber,
                                          "bptree");
}

/**
 * Regression: torn crash inside a b+tree shift-insert. valLens[i] and
 * valLens[i+1] share one 8-byte clobber block; the shift's logged
 * pre-image must cover the whole block or the neighbour's surviving
 * torn write is never restored and re-execution shifts the corrupted
 * length into the committed key's slot (found by this exact case).
 */
TEST(TortureFuzz, ClobberBptreeTornShiftReplay)
{
    FuzzCase c;
    c.seed = 7;
    c.nOps = 48;
    c.crashAt = 2578;
    auto res = runFuzzCase(RuntimeKind::clobber, "bptree", c,
                           FuzzConfig{});
    EXPECT_TRUE(res.failure.empty()) << res.failure;
    EXPECT_TRUE(res.crashed);
}

/** Shrinking a failing nolog case must keep it failing, smaller. */
TEST(TortureFuzz, ShrinkPreservesFailure)
{
    FuzzConfig cfg;
    cfg.tear = Tear::allLost;
    cfg.budget = 800;
    cfg.baseSeed = 3;
    cfg.shrink = false;  // find the raw failing case first
    auto out = fuzz(RuntimeKind::noLog, "hashmap", cfg);
    ASSERT_FALSE(out.passed);

    FuzzCase small = shrinkCase(RuntimeKind::noLog, "hashmap",
                                out.failing, cfg, /* maxReplays */ 25);
    EXPECT_LE(small.nOps, out.failing.nOps);
    EXPECT_LE(small.crashAt, out.failing.crashAt);
    auto res = runFuzzCase(RuntimeKind::noLog, "hashmap", small, cfg);
    EXPECT_FALSE(res.failure.empty());
}

class MediaSweep : public ::testing::TestWithParam<RuntimeKind> {};

/**
 * Budgeted crash × media-fault sweep: bit flips, poisoned lines and
 * transient faults land on every tear, and the shadow-oracle audit is
 * relaxed only for cases whose RecoveryReport declared salvage.
 */
TEST_P(MediaSweep, BudgetedMediaSweepPasses)
{
    torture::MediaSweepConfig cfg;
    cfg.seed = 7;
    cfg.budget = 120;
    cfg.faults.bitFlips = 1;
    cfg.faults.poisons = 1;
    cfg.faults.transients = 1;
    auto res = torture::mediaFaultSweep(GetParam(), "list", cfg);
    EXPECT_TRUE(res.passed) << res.failure;
    EXPECT_GT(res.crashes, 0u);
    EXPECT_GT(res.strictAudits + res.relaxedAudits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, MediaSweep,
                         ::testing::Values(RuntimeKind::clobber,
                                           RuntimeKind::undo,
                                           RuntimeKind::redo,
                                           RuntimeKind::atlas,
                                           RuntimeKind::ido),
                         [](const auto& info) {
                             switch (info.param) {
                               case RuntimeKind::clobber:
                                 return "clobber";
                               case RuntimeKind::undo:
                                 return "pmdk";
                               case RuntimeKind::redo:
                                 return "mnemosyne";
                               case RuntimeKind::atlas:
                                 return "atlas";
                               default:
                                 return "ido";
                             }
                         });

/**
 * The honesty check on the audit relaxation: nolog never declares
 * salvage (it has no recovery story at all), so every media case
 * audits strictly and the sweep must catch it failing.
 */
TEST(MediaSweep, NologFailsMediaSweep)
{
    torture::MediaSweepConfig cfg;
    cfg.seed = 3;
    cfg.budget = 200;
    auto res = torture::mediaFaultSweep(RuntimeKind::noLog, "list",
                                        cfg);
    EXPECT_FALSE(res.passed);
    EXPECT_FALSE(res.failure.empty());
}

/**
 * Faults during recovery: each tear's recovery is itself re-torn
 * (with another injection round) before the final pass. Recovery must
 * stay idempotent under damage, not just under torn writes.
 */
TEST(MediaSweep, RecoveryReTearsWithFaultsStaySound)
{
    for (RuntimeKind kind :
         {RuntimeKind::clobber, RuntimeKind::undo, RuntimeKind::redo}) {
        torture::MediaSweepConfig cfg;
        cfg.seed = 11;
        cfg.budget = 60;
        cfg.faults.duringRecoveryRounds = 2;
        auto res = torture::mediaFaultSweep(kind, "list", cfg);
        EXPECT_TRUE(res.passed)
            << static_cast<int>(kind) << ": " << res.failure;
    }
}

class RecoveryIdempotence
    : public ::testing::TestWithParam<RuntimeKind> {};

/**
 * Recovery must tolerate being interrupted and restarted any number
 * of times: crash a push, then crash recovery itself at every event
 * index until it runs quiet, recovering again after each re-crash.
 * The final state must satisfy the protocol's atomicity contract.
 */
TEST_P(RecoveryIdempotence, RecoverSurvivesRepeatedReArming)
{
    RuntimeKind kind = GetParam();
    Harness h(kind);
    CrashScheduler sched(*h.pool);
    auto eng = h.engine();
    for (uint64_t v = 1; v <= 5; v++)
        txn::run(eng, kPushNode, h.rootPtr().raw(), v);

    // Crash mid-push, past the begin record (an early crash leaves
    // clobber nothing to re-execute and the push legitimately absent).
    uint64_t eventsPerPush;
    {
        uint64_t before = sched.eventCount();
        txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t(6));
        eventsPerPush = sched.eventCount() - before;
    }
    sched.arm(eventsPerPush / 2);
    bool crashed = false;
    try {
        txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t(99));
    } catch (const nvm::CrashInjected&) {
        crashed = true;
    }
    sched.disarm();
    ASSERT_TRUE(crashed);
    h.pool->simulateCrash(41);

    // Re-arm DURING recover(): every recovery crash is followed by a
    // torn image and another recovery attempt.
    int recoveryCrashes = 0;
    auto preRec = stats::aggregate();
    for (uint64_t k = 1; k < 500; k++) {
        sched.arm(k);
        bool recCrashed = false;
        try {
            h.runtime->recover();
        } catch (const nvm::CrashInjected&) {
            recCrashed = true;
            recoveryCrashes++;
        }
        sched.disarm();
        if (!recCrashed)
            break;
        h.pool->simulateCrash(4242 + k);
    }
    auto rec = stats::aggregate() - preRec;

    // A final uninterrupted recover() must be a no-op on top of the
    // completed one: identical durable state before and after.
    size_t lenBefore = h.listLen();
    uint64_t sumBefore = h.root().sum;
    h.runtime->recover();
    EXPECT_EQ(h.listLen(), lenBefore);
    EXPECT_EQ(h.root().sum, sumBefore);

    if (kind == RuntimeKind::clobber &&
        rec[stats::Counter::reexecutions] > 0) {
        // Roll-forward happened: the push must be present exactly once.
        EXPECT_EQ(h.listLen(), 7u);
    } else {
        // Roll-back protocols, or a clobber crash in the begin window
        // (the begin record persists lazily at the first store).
        EXPECT_TRUE(h.listLen() == 6u || h.listLen() == 7u);
    }
    EXPECT_EQ(h.root().sum, h.listSum());
    EXPECT_GT(recoveryCrashes, 0);
}

INSTANTIATE_TEST_SUITE_P(Protocols, RecoveryIdempotence,
                         ::testing::Values(RuntimeKind::clobber,
                                           RuntimeKind::undo,
                                           RuntimeKind::redo),
                         [](const auto& info) {
                             switch (info.param) {
                               case RuntimeKind::clobber:
                                 return "clobber";
                               case RuntimeKind::undo:
                                 return "pmdk";
                               default:
                                 return "mnemosyne";
                             }
                         });

// ---------------------------------------------------------------
// Instant restart (lazy recovery) under torture.
// ---------------------------------------------------------------

/** The budgeted crash sweep must also pass when every recovery goes
 *  through the lazy path (triage + first-touch heals + settle). */
TEST(LazyTorture, BudgetedLazySweepAllProtocols)
{
    for (RuntimeKind kind :
         {RuntimeKind::clobber, RuntimeKind::undo, RuntimeKind::redo,
          RuntimeKind::atlas, RuntimeKind::ido}) {
        SweepConfig cfg;
        cfg.tear = Tear::randomTear;
        cfg.seed = 23;
        cfg.budget = 250;
        cfg.recovery = txn::RecoveryMode::lazy;
        auto res = exhaustiveSweep(kind, "hashmap", cfg);
        EXPECT_TRUE(res.passed)
            << static_cast<int>(kind) << ": " << res.failure;
        EXPECT_GT(res.crashes, 0u);
    }
}

/** Media faults + crashes during recovery, all through the lazy
 *  path: re-tears land inside triage and the heal drain. */
TEST(LazyTorture, LazyMediaSweepWithRecoveryReTears)
{
    for (RuntimeKind kind : {RuntimeKind::clobber, RuntimeKind::undo}) {
        torture::MediaSweepConfig cfg;
        cfg.seed = 19;
        cfg.budget = 50;
        cfg.faults.duringRecoveryRounds = 2;
        cfg.recovery = txn::RecoveryMode::lazy;
        auto res = torture::mediaFaultSweep(kind, "list", cfg);
        EXPECT_TRUE(res.passed)
            << static_cast<int>(kind) << ": " << res.failure;
    }
}

/**
 * Real-thread race on the once-latch: after a crash, the background
 * healer and a first-touch admission race to heal the SAME pending
 * slot. Exactly one of them may run the heal — a double heal of a
 * clobber slot would re-execute the transaction twice and the list
 * invariants below would catch it.
 */
TEST(LazyTorture, FirstTouchRacesBackgroundHealerOnSameSlot)
{
    for (int iter = 0; iter < 6; iter++) {
        Harness h(RuntimeKind::clobber);
        CrashScheduler sched(*h.pool);
        auto eng = h.engine();
        for (uint64_t v = 1; v <= 4; v++)
            txn::run(eng, kPushNode, h.rootPtr().raw(), v);
        bool crashed = false;
        // Vary the crash point per iteration so the heal the two
        // threads race over differs (restore-only vs re-execute).
        for (uint64_t k = 5 + 4 * static_cast<uint64_t>(iter);
             k < 1500 && !crashed; k++) {
            sched.arm(k);
            try {
                txn::run(eng, kPushNode, h.rootPtr().raw(),
                         uint64_t{50});
            } catch (const nvm::CrashInjected&) {
                crashed = true;
            }
            sched.disarm();
        }
        ASSERT_TRUE(crashed);
        h.pool->cache().crashAllLost();

        eng.recover(txn::RecoveryMode::lazy,
                    /* backgroundHealer */ true);
        std::thread toucher([&eng] { eng.admitSlot(0); });
        toucher.join();
        eng.finishRecovery();

        EXPECT_EQ(eng.recoveryPending(), 0u);
        EXPECT_TRUE(h.listLen() == 4 || h.listLen() == 5)
            << "iter " << iter << ": len " << h.listLen();
        EXPECT_EQ(h.root().sum, h.listSum()) << "iter " << iter;
        EXPECT_TRUE(h.runtime->recover().clean());
    }
}

/**
 * Stopping the healer mid-session must leave a resumable image: a
 * lazy session that is abandoned (no settle) followed by a fresh
 * lazy recovery — as after a second kill during recovery — heals to
 * the same state.
 */
TEST(LazyTorture, AbandonedSessionReTriagesIdempotently)
{
    Harness h(RuntimeKind::undo);
    CrashScheduler sched(*h.pool);
    auto eng = h.engine();
    for (uint64_t v = 1; v <= 4; v++)
        txn::run(eng, kPushNode, h.rootPtr().raw(), v);
    bool crashed = false;
    for (uint64_t k = 5; k < 1500 && !crashed; k++) {
        sched.arm(k);
        try {
            txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t{50});
        } catch (const nvm::CrashInjected&) {
            crashed = true;
        }
        sched.disarm();
    }
    ASSERT_TRUE(crashed);
    h.pool->cache().crashAllLost();

    // Triage-only session, abandoned without healing anything (no
    // healer, no admits): the next recover() must start over cleanly.
    eng.recover(txn::RecoveryMode::lazy, /* backgroundHealer */ false);
    uint64_t pendingFirst = eng.recoveryPending();

    eng.recover(txn::RecoveryMode::lazy, /* backgroundHealer */ false);
    EXPECT_EQ(eng.recoveryPending(), pendingFirst);
    for (unsigned t = 0; t < h.pool->maxThreads(); t++)
        eng.admitSlot(t);
    eng.finishRecovery();

    EXPECT_EQ(eng.recoveryPending(), 0u);
    EXPECT_TRUE(h.listLen() == 4 || h.listLen() == 5);
    EXPECT_EQ(h.root().sum, h.listSum());
    EXPECT_TRUE(h.runtime->recover().clean());
}

}  // namespace
}  // namespace cnvm::test
