/** @file Unit tests for the persistent allocator. */
#include <gtest/gtest.h>

#include <set>

#include "alloc/pm_allocator.h"
#include "common/error.h"
#include "nvm/pool.h"

namespace cnvm::alloc {
namespace {

struct AllocTest : ::testing::Test {
    void
    SetUp() override
    {
        nvm::PoolConfig cfg;
        cfg.size = 16 << 20;
        cfg.maxThreads = 2;
        cfg.slotBytes = 64 << 10;
        pool = nvm::Pool::create(cfg);
        heap = std::make_unique<PmAllocator>(*pool);
    }

    std::unique_ptr<nvm::Pool> pool;
    std::unique_ptr<PmAllocator> heap;
};

TEST_F(AllocTest, ReserveAlignedAndSized)
{
    uint64_t a = heap->reserve(100);
    EXPECT_EQ(a % 16, 0u);
    EXPECT_EQ(heap->payloadSize(a), 100u);
    uint64_t b = heap->reserve(100);
    EXPECT_NE(a, b);
}

TEST_F(AllocTest, ReservationsDoNotOverlap)
{
    std::set<std::pair<uint64_t, uint64_t>> ranges;
    for (int i = 1; i <= 500; i++) {
        auto sz = static_cast<size_t>(i % 97 + 1);
        uint64_t off = heap->reserve(sz);
        for (const auto& [o, l] : ranges) {
            bool disjoint = off + sz <= o || o + l <= off;
            ASSERT_TRUE(disjoint) << "overlap at " << off;
        }
        ranges.emplace(off, sz);
    }
}

TEST_F(AllocTest, ReleaseReservationReturnsSpace)
{
    size_t before = heap->freeBytes();
    uint64_t a = heap->reserve(1000);
    EXPECT_LT(heap->freeBytes(), before);
    heap->releaseReservation(a);
    EXPECT_EQ(heap->freeBytes(), before);
}

TEST_F(AllocTest, UncommittedReservationVanishesOnRebuild)
{
    size_t before = heap->freeBytes();
    heap->reserve(1000);  // never persisted
    heap->rebuild();
    EXPECT_EQ(heap->freeBytes(), before);
}

TEST_F(AllocTest, CommittedAllocationSurvivesRebuild)
{
    size_t before = heap->freeBytes();
    uint64_t a = heap->reserve(1000);
    heap->persistAllocate(a);
    pool->fence();
    heap->rebuild();
    EXPECT_LT(heap->freeBytes(), before);
    EXPECT_EQ(heap->payloadSize(a), 1000u);
    // And a fresh reservation must not land inside it.
    uint64_t b = heap->reserve(1000);
    EXPECT_TRUE(b + 1000 <= a - 16 || a + 1000 <= b - 16);
}

TEST_F(AllocTest, PersistFreeReturnsSpaceAcrossRebuild)
{
    size_t start = heap->freeBytes();
    uint64_t a = heap->reserve(1000);
    heap->persistAllocate(a);
    pool->fence();
    heap->persistFree(a);
    pool->fence();
    heap->rebuild();
    EXPECT_EQ(heap->freeBytes(), start);
}

TEST_F(AllocTest, CoalescingKeepsExtentCountBounded)
{
    std::vector<uint64_t> offs;
    offs.reserve(64);
    for (int i = 0; i < 64; i++) {
        uint64_t off = heap->reserve(64);
        heap->persistAllocate(off);
        offs.push_back(off);
    }
    pool->fence();
    for (uint64_t off : offs) {
        heap->persistFree(off);
    }
    pool->fence();
    // All space freed and adjacent blocks coalesced back together.
    heap->rebuild();
    EXPECT_LE(heap->freeExtents(), 2u);
}

TEST_F(AllocTest, RevertBitsIsIdempotent)
{
    uint64_t a = heap->reserve(256);
    heap->persistAllocate(a);
    pool->fence();
    heap->revertBits(a, 256, false);
    heap->revertBits(a, 256, false);
    heap->rebuild();
    size_t freed = heap->freeBytes();
    heap->revertBits(a, 256, true);
    heap->revertBits(a, 256, true);
    heap->rebuild();
    EXPECT_LT(heap->freeBytes(), freed);
}

TEST_F(AllocTest, ExhaustionIsFatalNotUb)
{
    EXPECT_THROW(heap->reserve(1ULL << 40), FatalError);
}

TEST_F(AllocTest, ReattachFindsExistingHeap)
{
    uint64_t a = heap->reserve(512);
    heap->persistAllocate(a);
    pool->fence();
    // A second allocator over the same pool must respect the bitmap.
    PmAllocator again(*pool);
    EXPECT_EQ(again.payloadSize(a), 512u);
    uint64_t b = again.reserve(512);
    EXPECT_NE(a, b);
}

}  // namespace
}  // namespace cnvm::alloc
