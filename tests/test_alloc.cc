/** @file Unit tests for the persistent allocator. */
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <set>

#include "alloc/pm_allocator.h"
#include "common/error.h"
#include "nvm/fault_model.h"
#include "nvm/pool.h"

namespace cnvm::alloc {
namespace {

struct AllocTest : ::testing::Test {
    void
    SetUp() override
    {
        nvm::PoolConfig cfg;
        cfg.size = 16 << 20;
        cfg.maxThreads = 2;
        cfg.slotBytes = 64 << 10;
        pool = nvm::Pool::create(cfg);
        heap = std::make_unique<PmAllocator>(*pool);
    }

    std::unique_ptr<nvm::Pool> pool;
    std::unique_ptr<PmAllocator> heap;
};

TEST_F(AllocTest, ReserveAlignedAndSized)
{
    uint64_t a = heap->reserve(100);
    EXPECT_EQ(a % 16, 0u);
    EXPECT_EQ(heap->payloadSize(a), 100u);
    uint64_t b = heap->reserve(100);
    EXPECT_NE(a, b);
}

TEST_F(AllocTest, ReservationsDoNotOverlap)
{
    std::set<std::pair<uint64_t, uint64_t>> ranges;
    for (int i = 1; i <= 500; i++) {
        auto sz = static_cast<size_t>(i % 97 + 1);
        uint64_t off = heap->reserve(sz);
        for (const auto& [o, l] : ranges) {
            bool disjoint = off + sz <= o || o + l <= off;
            ASSERT_TRUE(disjoint) << "overlap at " << off;
        }
        ranges.emplace(off, sz);
    }
}

TEST_F(AllocTest, ReleaseReservationReturnsSpace)
{
    size_t before = heap->freeBytes();
    uint64_t a = heap->reserve(1000);
    EXPECT_LT(heap->freeBytes(), before);
    heap->releaseReservation(a);
    EXPECT_EQ(heap->freeBytes(), before);
}

TEST_F(AllocTest, UncommittedReservationVanishesOnRebuild)
{
    size_t before = heap->freeBytes();
    heap->reserve(1000);  // never persisted
    heap->rebuild();
    EXPECT_EQ(heap->freeBytes(), before);
}

TEST_F(AllocTest, CommittedAllocationSurvivesRebuild)
{
    size_t before = heap->freeBytes();
    uint64_t a = heap->reserve(1000);
    heap->persistAllocate(a);
    pool->fence();
    heap->rebuild();
    EXPECT_LT(heap->freeBytes(), before);
    EXPECT_EQ(heap->payloadSize(a), 1000u);
    // And a fresh reservation must not land inside it.
    uint64_t b = heap->reserve(1000);
    EXPECT_TRUE(b + 1000 <= a - 16 || a + 1000 <= b - 16);
}

TEST_F(AllocTest, PersistFreeReturnsSpaceAcrossRebuild)
{
    size_t start = heap->freeBytes();
    uint64_t a = heap->reserve(1000);
    heap->persistAllocate(a);
    pool->fence();
    heap->persistFree(a);
    pool->fence();
    heap->rebuild();
    EXPECT_EQ(heap->freeBytes(), start);
}

TEST_F(AllocTest, CoalescingKeepsExtentCountBounded)
{
    std::vector<uint64_t> offs;
    offs.reserve(64);
    for (int i = 0; i < 64; i++) {
        uint64_t off = heap->reserve(64);
        heap->persistAllocate(off);
        offs.push_back(off);
    }
    pool->fence();
    for (uint64_t off : offs) {
        heap->persistFree(off);
    }
    pool->fence();
    // All space freed and adjacent blocks coalesced back together.
    heap->rebuild();
    EXPECT_LE(heap->freeExtents(), 2u);
}

TEST_F(AllocTest, RevertBitsIsIdempotent)
{
    uint64_t a = heap->reserve(256);
    heap->persistAllocate(a);
    pool->fence();
    heap->revertBits(a, 256, false);
    heap->revertBits(a, 256, false);
    heap->rebuild();
    size_t freed = heap->freeBytes();
    heap->revertBits(a, 256, true);
    heap->revertBits(a, 256, true);
    heap->rebuild();
    EXPECT_LT(heap->freeBytes(), freed);
}

TEST_F(AllocTest, ExhaustionIsFatalNotUb)
{
    EXPECT_THROW(heap->reserve(1ULL << 40), FatalError);
}

TEST_F(AllocTest, ReattachFindsExistingHeap)
{
    uint64_t a = heap->reserve(512);
    heap->persistAllocate(a);
    pool->fence();
    // A second allocator over the same pool must respect the bitmap.
    PmAllocator again(*pool);
    EXPECT_EQ(again.payloadSize(a), 512u);
    uint64_t b = again.reserve(512);
    EXPECT_NE(a, b);
}

TEST_F(AllocTest, CorruptBlockHeaderThrowsInsteadOfAborting)
{
    // Satellite regression: a hand-corrupted block header used to hit
    // CNVM_CHECK and terminate the process; it must now surface as a
    // typed, catchable error.
    uint64_t a = heap->reserve(256);
    heap->persistAllocate(a);
    pool->fence();
    BlockHeader bad{};
    bad.payloadBytes = 256;
    bad.check = 0xdeadbeef;  // wrong: != payloadBytes ^ kBlockMagic
    std::memcpy(pool->base() + a - sizeof(BlockHeader), &bad,
                sizeof(bad));
    EXPECT_THROW(heap->payloadSize(a), CorruptBlockError);
    EXPECT_THROW(heap->persistFree(a), CorruptBlockError);
    try {
        heap->payloadSize(a);
    } catch (const CorruptBlockError& e) {
        EXPECT_EQ(e.payloadOff(), a);
    }
    // The sized overload trusts the caller's intent table and still
    // frees the block without consulting the bad header.
    heap->persistFree(a, 256);
    pool->fence();
}

TEST_F(AllocTest, QuarantinePersistsAcrossReattach)
{
    uint64_t a = heap->reserve(4096);
    heap->persistAllocate(a);
    pool->fence();
    size_t freeBefore = heap->freeBytes();
    heap->quarantine(a - sizeof(BlockHeader),
                     4096 + sizeof(BlockHeader), kQuarPoisonedData);
    EXPECT_TRUE(heap->isQuarantined(a, 1));
    EXPECT_FALSE(heap->quarantineViolation());

    // A fresh allocator over the same pool must reload the table and
    // keep the range out of the free map.
    PmAllocator again(*pool);
    EXPECT_TRUE(again.isQuarantined(a, 1));
    EXPECT_EQ(again.quarantineCount(), 1u);
    EXPECT_FALSE(again.quarantineViolation());
    // The quarantined bytes never resurface: everything allocatable
    // can be drawn down without ever overlapping the range.
    EXPECT_LE(again.freeBytes(), freeBefore);
    for (int i = 0; i < 64; i++) {
        uint64_t b = again.reserve(512);
        EXPECT_TRUE(b + 512 <= a - sizeof(BlockHeader) ||
                    b >= a + 4096);
        again.persistAllocate(b);
    }
    pool->fence();
}

TEST_F(AllocTest, QuarantineIsIdempotentForCoveredRanges)
{
    uint64_t a = heap->reserve(1024);
    heap->persistAllocate(a);
    pool->fence();
    heap->quarantine(a - sizeof(BlockHeader), 1024, kQuarCorruptHeader);
    uint32_t n = heap->quarantineCount();
    heap->quarantine(a - sizeof(BlockHeader), 1024, kQuarCorruptHeader);
    EXPECT_EQ(heap->quarantineCount(), n);
}

TEST_F(AllocTest, PoisonedBitmapChunkIsQuarantinedOnRebuild)
{
    uint64_t a = heap->reserve(256);
    heap->persistAllocate(a);
    pool->fence();
    nvm::FaultConfig fc;
    fc.poisons = 1;
    pool->setFaultModel(std::make_unique<nvm::FaultModel>(fc));
    // Poison the first line of the bitmap: rebuild must not trust the
    // chunk — it rewrites it all-allocated and quarantines the
    // granules that chunk administers.
    pool->faults()->poisonAt(heap->bitmapOff());
    RebuildStats st = heap->rebuild();
    EXPECT_GT(st.poisonedChunks, 0u);
    EXPECT_GT(st.quarantinedBlocks, 0u);
    EXPECT_GT(st.quarantinedBytes, 0u);
    EXPECT_FALSE(heap->quarantineViolation());
    // The healing rewrite cleared the poison, so the next rebuild is
    // clean and the quarantined range stays out of the free map.
    RebuildStats st2 = heap->rebuild();
    EXPECT_EQ(st2.poisonedChunks, 0u);
    EXPECT_FALSE(heap->quarantineViolation());
}

TEST_F(AllocTest, FlippedAllocHeaderIsHealedOnRebuild)
{
    uint64_t a = heap->reserve(256);
    heap->persistAllocate(a);
    pool->fence();
    uint64_t dataOff = heap->dataOff();
    nvm::FaultConfig fc;
    fc.bitFlips = 1;
    pool->setFaultModel(std::make_unique<nvm::FaultModel>(fc));
    // Flip a bit inside the AllocHeader's dataOff field: the layout is
    // a pure function of pool geometry, so rebuild recomputes it.
    pool->faults()->flipBit(*pool,
                            pool->heapOff() +
                                offsetof(AllocHeader, dataOff),
                            5);
    RebuildStats st = heap->rebuild();
    EXPECT_TRUE(st.headerHealed);
    EXPECT_EQ(heap->dataOff(), dataOff);
    EXPECT_EQ(heap->payloadSize(a), 256u);
    // Healed in place: the next rebuild sees a pristine header.
    EXPECT_FALSE(heap->rebuild().headerHealed);
}

}  // namespace
}  // namespace cnvm::alloc
