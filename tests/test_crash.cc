/**
 * @file
 * Crash-injection property tests: for every runtime and every possible
 * crash point inside a transaction, the recovered state must satisfy
 * the structure invariants and the protocol's atomicity contract
 * (roll-back for undo/redo/atlas, roll-*forward* for Clobber-NVM).
 *
 * Crash points are persistency-event indices counted by the
 * CrashScheduler (store/clwb/sfence, DESIGN.md §11), not pool-write
 * ordinals: a protocol change that adds flushes or fences without
 * adding writes still creates crash windows the sweep can reach.
 */
#include <gtest/gtest.h>

#include "stats/counters.h"
#include "testing/crash_scheduler.h"
#include "testutil.h"

namespace cnvm::test {
namespace {

using torture::CrashScheduler;
using txn::RuntimeKind;

/** Crash mode applied once the trap fires. */
enum class CrashMode { allLost, randomTear };

struct CrashCase {
    RuntimeKind kind;
    CrashMode mode;
};

class CrashSweep : public ::testing::TestWithParam<CrashCase> {};

/**
 * Push nodes, crashing each push at successive persistency events.
 * After recovery the list/sum invariants must hold, and the
 * interrupted push must be either fully absent (roll-back) or fully
 * present exactly once (Clobber re-execution).
 */
TEST_P(CrashSweep, PushInterruptedAtEveryEvent)
{
    auto [kind, mode] = GetParam();
    Harness h(kind);
    CrashScheduler sched(*h.pool);
    auto eng = h.engine();

    // Committed baseline.
    for (uint64_t v = 1; v <= 4; v++)
        txn::run(eng, kPushNode, h.rootPtr().raw(), v);
    uint64_t expectedSum = 10;
    size_t expectedLen = 4;

    bool sawCrash = false;
    int quietInARow = 0;
    for (uint64_t k = 1; quietInARow < 2 && k < 1500; k++) {
        uint64_t value = 100 + k;
        sched.arm(k);
        bool crashed = false;
        try {
            txn::run(eng, kPushNode, h.rootPtr().raw(), value);
        } catch (const nvm::CrashInjected&) {
            crashed = true;
            sawCrash = true;
        }
        sched.disarm();
        if (crashed) {
            quietInARow = 0;
            if (mode == CrashMode::allLost)
                h.pool->cache().crashAllLost();
            else
                h.pool->simulateCrash(1234 + k);
            auto preRec = stats::aggregate();
            h.runtime->recover();
            auto rec = stats::aggregate() - preRec;
            size_t len = h.listLen();
            if (kind == RuntimeKind::clobber &&
                rec[stats::Counter::reexecutions] > 0) {
                // Recovery-via-resumption: the push completed.
                ASSERT_EQ(len, expectedLen + 1) << "crash point " << k;
            } else {
                // Roll-back protocols, or a clobber crash that either
                // preceded the v_log persist (never begun) or followed
                // the commit point (already durable).
                ASSERT_TRUE(len == expectedLen || len == expectedLen + 1)
                    << "crash point " << k;
            }
            if (len == expectedLen + 1) {
                expectedLen = len;
                expectedSum += value;
            }
        } else {
            quietInARow++;
            expectedLen++;
            expectedSum += value;
        }
        // Core invariants after every iteration.
        ASSERT_EQ(h.listLen(), expectedLen) << "crash point " << k;
        ASSERT_EQ(h.root().sum, expectedSum) << "crash point " << k;
        ASSERT_EQ(h.listSum(), expectedSum) << "crash point " << k;
    }
    EXPECT_TRUE(sawCrash);
}

/** Same sweep for pops (exercises the deferred-free protocol). */
TEST_P(CrashSweep, PopInterruptedAtEveryEvent)
{
    auto [kind, mode] = GetParam();
    Harness h(kind);
    CrashScheduler sched(*h.pool);
    auto eng = h.engine();

    for (uint64_t v = 1; v <= 60; v++)
        txn::run(eng, kPushNode, h.rootPtr().raw(), v);
    size_t expectedLen = 60;

    bool sawCrash = false;
    int quietInARow = 0;
    for (uint64_t k = 1; quietInARow < 2 && k < 1000 && expectedLen > 2;
         k++) {
        sched.arm(k);
        bool crashed = false;
        try {
            txn::run(eng, kPopNode, h.rootPtr().raw());
        } catch (const nvm::CrashInjected&) {
            crashed = true;
            sawCrash = true;
        }
        sched.disarm();
        if (crashed) {
            quietInARow = 0;
            if (mode == CrashMode::allLost)
                h.pool->cache().crashAllLost();
            else
                h.pool->simulateCrash(777 + k);
            auto preRec = stats::aggregate();
            h.runtime->recover();
            auto rec = stats::aggregate() - preRec;
            size_t len = h.listLen();
            if (kind == RuntimeKind::clobber &&
                rec[stats::Counter::reexecutions] > 0) {
                ASSERT_EQ(len, expectedLen - 1) << "crash point " << k;
            } else {
                ASSERT_TRUE(len == expectedLen || len == expectedLen - 1)
                    << "crash point " << k;
            }
            expectedLen = len;
        } else {
            quietInARow++;
            expectedLen--;
        }
        ASSERT_EQ(h.listLen(), expectedLen);
        ASSERT_EQ(h.root().sum, h.listSum()) << "crash point " << k;
    }
    EXPECT_TRUE(sawCrash);
}

/** Crash during recovery itself: recovery must be restartable. */
TEST_P(CrashSweep, CrashDuringRecoveryIsRepairable)
{
    auto [kind, mode] = GetParam();
    Harness h(kind);
    CrashScheduler sched(*h.pool);
    auto eng = h.engine();
    for (uint64_t v = 1; v <= 4; v++)
        txn::run(eng, kPushNode, h.rootPtr().raw(), v);

    // Interrupt a push mid-flight, past the begin record (a committed
    // push's event count tells us where the middle is; crashing in the
    // begin window would leave nothing for clobber to re-execute).
    uint64_t eventsPerPush;
    {
        uint64_t before = sched.eventCount();
        txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t(5));
        eventsPerPush = sched.eventCount() - before;
    }
    sched.arm(eventsPerPush / 2);
    bool crashed = false;
    try {
        txn::run(eng, kPushNode, h.rootPtr().raw(), uint64_t(50));
    } catch (const nvm::CrashInjected&) {
        crashed = true;
    }
    sched.disarm();
    ASSERT_TRUE(crashed);
    h.pool->cache().crashAllLost();

    // Now crash the recovery at successive points, then finish it.
    for (uint64_t k = 1; k < 400; k++) {
        sched.arm(k);
        bool recCrashed = false;
        try {
            h.runtime->recover();
        } catch (const nvm::CrashInjected&) {
            recCrashed = true;
        }
        sched.disarm();
        if (!recCrashed)
            break;
        if (mode == CrashMode::allLost)
            h.pool->cache().crashAllLost();
        else
            h.pool->simulateCrash(31 + k);
    }
    h.runtime->recover();
    size_t len = h.listLen();
    if (kind == RuntimeKind::clobber)
        EXPECT_EQ(len, 6u);
    else
        EXPECT_TRUE(len == 5u || len == 6u);
    EXPECT_EQ(h.root().sum, h.listSum());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CrashSweep,
    ::testing::Values(
        CrashCase{RuntimeKind::undo, CrashMode::allLost},
        CrashCase{RuntimeKind::undo, CrashMode::randomTear},
        CrashCase{RuntimeKind::redo, CrashMode::allLost},
        CrashCase{RuntimeKind::redo, CrashMode::randomTear},
        CrashCase{RuntimeKind::clobber, CrashMode::allLost},
        CrashCase{RuntimeKind::clobber, CrashMode::randomTear},
        CrashCase{RuntimeKind::atlas, CrashMode::allLost},
        CrashCase{RuntimeKind::atlas, CrashMode::randomTear}),
    [](const auto& info) {
        std::string name;
        switch (info.param.kind) {
          case RuntimeKind::undo: name = "pmdk"; break;
          case RuntimeKind::redo: name = "mnemosyne"; break;
          case RuntimeKind::clobber: name = "clobber"; break;
          case RuntimeKind::atlas: name = "atlas"; break;
          default: name = "other"; break;
        }
        name += info.param.mode == CrashMode::allLost ? "_alllost"
                                                      : "_tear";
        return name;
    });

/** Clobber re-execution must observe the *restored* inputs. */
TEST(ClobberRecovery, ReexecutionSeesRestoredInputs)
{
    Harness h(RuntimeKind::clobber);
    CrashScheduler sched(*h.pool);
    auto eng = h.engine();
    for (int i = 0; i < 3; i++)
        txn::run(eng, kIncrCounter, h.rootPtr().raw());
    ASSERT_EQ(h.root().counter, 3u);

    // Crash an increment after its clobber log + in-place store: the
    // re-execution must produce 4, not 5.
    uint64_t eventsPerIncr;
    {
        uint64_t before = sched.eventCount();
        txn::run(eng, kIncrCounter, h.rootPtr().raw());
        eventsPerIncr = sched.eventCount() - before;
    }
    ASSERT_EQ(h.root().counter, 4u);
    for (uint64_t k = 1; k <= eventsPerIncr; k++) {
        uint64_t before = h.root().counter;
        sched.arm(k);
        bool crashed = false;
        try {
            txn::run(eng, kIncrCounter, h.rootPtr().raw());
            sched.disarm();
        } catch (const nvm::CrashInjected&) {
            crashed = true;
            sched.disarm();
            h.pool->cache().crashAllLost();
        }
        if (crashed) {
            auto preRec = stats::aggregate();
            h.runtime->recover();
            auto rec = stats::aggregate() - preRec;
            if (rec[stats::Counter::reexecutions] > 0) {
                // Re-execution must produce exactly one increment.
                ASSERT_EQ(h.root().counter, before + 1)
                    << "crash point " << k;
            } else {
                // Never begun (pre-v_log) or already committed.
                ASSERT_TRUE(h.root().counter == before ||
                            h.root().counter == before + 1)
                    << "crash point " << k;
            }
        } else {
            ASSERT_EQ(h.root().counter, before + 1);
        }
    }
}

/** The v_log must reproduce argument bytes exactly at re-execution. */
TEST(ClobberRecovery, VlogPreservesVolatileArguments)
{
    static const txn::FuncId kWriteBlob = txn::registerTxFunc(
        "test_write_blob", [](txn::Tx& tx, txn::ArgReader& a) {
            auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
            auto bytes = a.getBytes();
            // Read-modify-write so a clobber entry + v_log both exist.
            uint64_t c = tx.ld(root->counter);
            tx.st(root->counter, c + 1);
            auto node = tx.pnew<TestNode>(bytes.size());
            tx.st(node->value, uint64_t(bytes.size()));
            tx.stBytes(node.get() + 1, bytes.data(), bytes.size());
            tx.st(root->head, node);
        });

    std::string payload = "volatile-input-that-must-survive";

    // Sweep crash points on fresh harnesses until one lands after the
    // v_log persist, so recovery re-executes the txfunc from its
    // logged argument bytes.
    bool sawReexecution = false;
    for (uint64_t k = 1; k < 120 && !sawReexecution; k++) {
        Harness h(RuntimeKind::clobber);
        CrashScheduler sched(*h.pool);
        auto eng = h.engine();
        sched.arm(k);
        bool crashed = false;
        try {
            txn::run(eng, kWriteBlob, h.rootPtr().raw(),
                     std::string_view(payload));
            sched.disarm();
        } catch (const nvm::CrashInjected&) {
            crashed = true;
            sched.disarm();
        }
        if (!crashed)
            break;  // the whole txfunc ran without reaching event k
        h.pool->cache().crashAllLost();
        auto preRec = stats::aggregate();
        h.runtime->recover();
        auto rec = stats::aggregate() - preRec;
        if (rec[stats::Counter::reexecutions] == 0)
            continue;  // crashed before the v_log persist
        sawReexecution = true;
        ASSERT_EQ(h.root().counter, 1u) << "crash point " << k;
        auto node = h.root().head;
        ASSERT_FALSE(node.isNull()) << "crash point " << k;
        ASSERT_EQ(node->value, payload.size()) << "crash point " << k;
        EXPECT_EQ(
            std::string(reinterpret_cast<const char*>(node.get() + 1),
                        payload.size()),
            payload)
            << "crash point " << k;
    }
    EXPECT_TRUE(sawReexecution);
}

}  // namespace
}  // namespace cnvm::test
