/**
 * @file
 * Pluggable log-writer tests (DESIGN.md §15).
 *
 * Three contracts under test, each across the whole writer matrix
 * (baseline / zero / zerocached):
 *
 *  - Overflow is a transaction-level failure, not a process panic:
 *    a transaction that outgrows its per-thread log area throws
 *    txn::LogOverflowError, txn::run aborts just that transaction,
 *    and the slot is immediately reusable.
 *
 *  - All-or-nothing recovery is writer-independent under allLost
 *    tears: commit paths seal the staged log before their data fence,
 *    so crashing any protocol at any persistency event and reverting
 *    every volatile line recovers to exactly the pre- or post-image —
 *    with the eliding writers allowed (and, mid-transaction, expected)
 *    to *declare* their best-effort roll-back while the baseline
 *    writer never declares on a plain tear.
 *
 *  - Triage: a half-flushed staging window at the log tail is a torn
 *    tail (declared with the zero-fence note, no corruption claim),
 *    while a flipped bit inside an already-durable entry is mid-log
 *    corruption (declared with the "corrupted" note). The media axis
 *    is also exercised end-to-end via small torture sweeps with
 *    CNVM_LOG_WRITER=zerocached.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "runtimes/descriptor.h"
#include "runtimes/log_writer.h"
#include "testing/crash_scheduler.h"
#include "testing/torture.h"
#include "testutil.h"

namespace cnvm::test {
namespace {

using rt::LogWriterKind;
using torture::CrashScheduler;
using txn::RuntimeKind;

const RuntimeKind kAllKinds[] = {RuntimeKind::undo, RuntimeKind::clobber,
                                 RuntimeKind::redo, RuntimeKind::atlas,
                                 RuntimeKind::ido};
const LogWriterKind kAllWriters[] = {LogWriterKind::baseline,
                                     LogWriterKind::zero,
                                     LogWriterKind::zerocached};

constexpr uint64_t kRegionWords = 8;
constexpr uint64_t kChunkBytes = 1024;

/** Allocate a region of `bytes` and publish its offset in root->sum
 *  (a committed setup transaction). Only the head of the region — the
 *  kLwMulti mirror words — is zeroed; interpose-zeroing a multi-100KB
 *  region would itself overflow the log this file tests. */
const txn::FuncId kLwPrep = txn::registerTxFunc(
    "lwtest_prep", [](txn::Tx& tx, txn::ArgReader& a) {
        auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
        auto bytes = a.get<uint64_t>();
        uint64_t off = tx.pmallocOff(bytes);
        auto* base = static_cast<uint8_t*>(tx.pool().at(off));
        const uint8_t zeros[64] = {};
        uint64_t zeroed = bytes < sizeof(zeros) ? bytes : sizeof(zeros);
        tx.stBytes(base, zeros, zeroed);
        tx.st(root->sum, off);
    });

/** RMW every chunk of the region (full-chunk read *then* write, so
 *  every protocol — including clobber's anti-dependence rule — logs a
 *  chunk-sized pre-image) until the log area overflows. */
const txn::FuncId kLwSpam = txn::registerTxFunc(
    "lwtest_spam", [](txn::Tx& tx, txn::ArgReader& a) {
        auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
        auto chunks = a.get<uint64_t>();
        uint64_t off = tx.ld(root->sum);
        uint64_t c = tx.ld(root->counter);
        tx.st(root->counter, c + 1);
        auto* base = static_cast<uint8_t*>(tx.pool().at(off));
        uint8_t buf[kChunkBytes];
        for (uint64_t i = 0; i < chunks; i++) {
            tx.ldBytes(buf, base + i * kChunkBytes, kChunkBytes);
            for (auto& b : buf)
                b ^= 0x5a;
            tx.stBytes(base + i * kChunkBytes, buf, kChunkBytes);
        }
    });

/** counter++ mirrored into the first kRegionWords words of the region:
 *  after any committed prefix, word[i] == counter for all i. */
const txn::FuncId kLwMulti = txn::registerTxFunc(
    "lwtest_multi", [](txn::Tx& tx, txn::ArgReader& a) {
        auto root = nvm::PPtr<TestRoot>(a.get<uint64_t>());
        uint64_t off = tx.ld(root->sum);
        uint64_t c = tx.ld(root->counter);
        tx.st(root->counter, c + 1);
        auto* words = static_cast<uint64_t*>(tx.pool().at(off));
        for (uint64_t i = 0; i < kRegionWords; i++) {
            uint64_t v;
            tx.ldBytes(&v, &words[i], sizeof(v));
            v = c + 1;
            tx.stBytes(&words[i], &v, sizeof(v));
        }
    });

void
prepRegion(Harness& h, uint64_t bytes)
{
    auto eng = h.engine();
    txn::run(eng, kLwPrep, h.rootPtr().raw(), bytes);
}

TEST(LogWriterTest, NameParsing)
{
    LogWriterKind k = LogWriterKind::baseline;
    EXPECT_TRUE(rt::logWriterKindFromName("baseline", &k));
    EXPECT_EQ(k, LogWriterKind::baseline);
    EXPECT_TRUE(rt::logWriterKindFromName("zero", &k));
    EXPECT_EQ(k, LogWriterKind::zero);
    EXPECT_TRUE(rt::logWriterKindFromName("zerocached", &k));
    EXPECT_EQ(k, LogWriterKind::zerocached);
    EXPECT_TRUE(rt::logWriterKindFromName("zero-cached", &k));
    EXPECT_EQ(k, LogWriterKind::zerocached);
    k = LogWriterKind::zero;
    EXPECT_FALSE(rt::logWriterKindFromName("bogus", &k));
    EXPECT_EQ(k, LogWriterKind::zero);  // untouched on failure

    for (auto w : kAllWriters) {
        LogWriterKind back = LogWriterKind::baseline;
        ASSERT_TRUE(
            rt::logWriterKindFromName(rt::logWriterName(w), &back));
        EXPECT_EQ(back, w);
    }

    setenv("CNVM_LOG_WRITER", "zerocached", 1);
    EXPECT_EQ(rt::logWriterKindFromEnv(), LogWriterKind::zerocached);
    setenv("CNVM_LOG_WRITER", "no-such-engine", 1);
    EXPECT_EQ(rt::logWriterKindFromEnv(), LogWriterKind::baseline);
    unsetenv("CNVM_LOG_WRITER");
    EXPECT_EQ(rt::logWriterKindFromEnv(), LogWriterKind::baseline);
}

/**
 * A transaction that outgrows the 128 KiB test slot throws
 * LogOverflowError; only that transaction is aborted (its RMWs are
 * rolled back) and the slot commits the next transaction normally.
 */
TEST(LogWriterTest, OverflowAbortsOnlyTheTransaction)
{
    // 256 chunk-sized pre-images ≈ 268 KB of entries > the slot's
    // ~120 KB log capacity for every protocol.
    constexpr uint64_t kChunks = 256;
    for (auto kind : kAllKinds) {
        for (auto writer : kAllWriters) {
            SCOPED_TRACE(std::string(rt::logWriterName(writer)) + "/" +
                         std::to_string(static_cast<int>(kind)));
            Harness h(kind);
            ASSERT_TRUE(rt::selectLogWriter(*h.runtime, writer));
            prepRegion(h, kChunks * kChunkBytes);
            auto eng = h.engine();
            txn::run(eng, kLwMulti, h.rootPtr().raw());
            ASSERT_EQ(h.root().counter, 1u);

            bool threw = false;
            try {
                txn::run(eng, kLwSpam, h.rootPtr().raw(), kChunks);
            } catch (const txn::LogOverflowError& e) {
                threw = true;
                EXPECT_GT(e.need(), e.capacity());
                EXPECT_GT(e.capacity(), 0u);
            }
            ASSERT_TRUE(threw) << "spam transaction fit the log";
            // The aborted transaction's counter RMW was rolled back.
            EXPECT_EQ(h.root().counter, 1u);

            // The slot is reusable: the next transaction commits.
            txn::run(eng, kLwMulti, h.rootPtr().raw());
            EXPECT_EQ(h.root().counter, 2u);
        }
    }
}

/**
 * Crash kLwMulti at every persistency event under an allLost tear:
 * recovery must land on exactly the pre- or post-image for every
 * writer. The baseline writer never declares salvage on a plain tear;
 * the eliding writers may (their mid-transaction roll-back is
 * best-effort by contract), but the recovered *state* is the same.
 */
TEST(LogWriterTest, AllOrNothingAtEveryEventAcrossWriters)
{
    for (auto kind : kAllKinds) {
        for (auto writer : kAllWriters) {
            SCOPED_TRACE(std::string(rt::logWriterName(writer)) + "/" +
                         std::to_string(static_cast<int>(kind)));
            Harness h(kind);
            ASSERT_TRUE(rt::selectLogWriter(*h.runtime, writer));
            prepRegion(h, kRegionWords * 8);
            uint64_t regionOff = h.root().sum;
            CrashScheduler sched(*h.pool);
            auto eng = h.engine();

            uint64_t committed = 0;
            uint64_t declared = 0;
            int quiet = 0;
            auto checkImage = [&](uint64_t expectLo) {
                uint64_t c = h.root().counter;
                ASSERT_TRUE(c == expectLo || c == expectLo + 1)
                    << "counter " << c << " after committed "
                    << expectLo;
                const auto* words = static_cast<const uint64_t*>(
                    h.pool->at(regionOff));
                for (uint64_t i = 0; i < kRegionWords; i++)
                    ASSERT_EQ(words[i], c)
                        << "word " << i << " torn at counter " << c;
                committed = c;
            };
            for (uint64_t k = 1; quiet < 2 && k < 1000; k++) {
                sched.arm(k);
                bool crashed = false;
                try {
                    txn::run(eng, kLwMulti, h.rootPtr().raw());
                } catch (const nvm::CrashInjected&) {
                    crashed = true;
                }
                sched.disarm();
                if (!crashed) {
                    quiet++;
                    uint64_t prev = committed;
                    checkImage(prev);
                    ASSERT_EQ(committed, prev + 1);  // it committed
                    continue;
                }
                quiet = 0;
                h.pool->simulateCrashAllLost();
                auto rep = h.runtime->recover();
                if (writer == LogWriterKind::baseline) {
                    EXPECT_EQ(rep.salvageAborted, 0u)
                        << "baseline declared salvage on a plain "
                           "allLost tear at event "
                        << k;
                }
                declared += rep.salvageAborted;
                checkImage(committed);
            }
            EXPECT_GT(committed, 2u);
            // The eliding writers must have hit at least one
            // mid-transaction crash that they declared — except redo,
            // which buffers in-place writes and so never needs to:
            // losing unfenced redo entries before the commit record
            // is indistinguishable from never appending them.
            if (writer != LogWriterKind::baseline &&
                kind != RuntimeKind::redo) {
                EXPECT_GT(declared, 0u);
            }
        }
    }
}

/**
 * A crash that loses the staged/unfenced log tail is a *torn tail*:
 * the declared slot carries the zero-fence note, not a corruption or
 * poison claim.
 */
TEST(LogWriterTest, TornStagingTailDeclaresZeroFenceNotCorruption)
{
    for (auto writer :
         {LogWriterKind::zero, LogWriterKind::zerocached}) {
        SCOPED_TRACE(rt::logWriterName(writer));
        Harness h(RuntimeKind::undo);
        ASSERT_TRUE(rt::selectLogWriter(*h.runtime, writer));
        prepRegion(h, kRegionWords * 8);
        auto eng = h.engine();
        txn::run(eng, kLwMulti, h.rootPtr().raw());

        // Event 20 lands mid-transaction, past several appends (the
        // transaction stages 9 entries and generates far more events).
        CrashScheduler sched(*h.pool);
        sched.arm(20);
        bool crashed = false;
        try {
            txn::run(eng, kLwMulti, h.rootPtr().raw());
        } catch (const nvm::CrashInjected&) {
            crashed = true;
        }
        sched.disarm();
        ASSERT_TRUE(crashed);
        h.pool->simulateCrashAllLost();
        auto rep = h.runtime->recover();
        ASSERT_GE(rep.salvageAborted, 1u) << rep.toString();
        EXPECT_EQ(rep.poisonedReads, 0u);
        bool sawNote = false;
        for (const auto& sr : rep.slots) {
            if (sr.action != txn::SlotAction::salvageAborted)
                continue;
            sawNote = true;
            EXPECT_NE(sr.note.find("zero-fence"), std::string::npos)
                << sr.note;
            EXPECT_EQ(sr.note.find("corrupt"), std::string::npos)
                << sr.note;
            EXPECT_EQ(sr.note.find("poison"), std::string::npos)
                << sr.note;
        }
        EXPECT_TRUE(sawNote);
        EXPECT_EQ(h.root().counter, 1u);
    }
}

/**
 * A bit flip inside an entry that *was* durably written (sealed
 * staging lines, then fenced) is mid-log corruption, and triage must
 * say so — torn-tail leniency must not mask real media damage.
 */
TEST(LogWriterTest, BitFlipInDurableEntryTriagesAsCorruption)
{
    Harness h(RuntimeKind::undo);
    ASSERT_TRUE(
        rt::selectLogWriter(*h.runtime, LogWriterKind::zerocached));
    prepRegion(h, 16 * 64);
    uint64_t regionOff = h.root().sum;

    // Drive the runtime directly: 16 cache-line stores append 16
    // 88-byte undo entries (1408 bytes = 5 full staging windows copied
    // out + a staged residue). The manual fence makes the copied-out
    // prefix durable; the crash then drops the residue.
    auto& rtm = *h.runtime;
    rtm.txBegin(0, kIncrCounter, {});
    auto* base = static_cast<uint8_t*>(h.pool->at(regionOff));
    uint8_t buf[64];
    std::memset(buf, 0xab, sizeof(buf));
    for (int i = 0; i < 16; i++)
        rtm.store(0, base + i * 64, buf, sizeof(buf));
    h.pool->fence();
    h.pool->simulateCrashAllLost();

    // Flip one payload bit of the second entry, post-crash (media
    // damage, invisible to the cache model). Entry stride = 24-byte
    // header + 64-byte payload = 88.
    auto* area =
        static_cast<uint8_t*>(h.pool->slot(0)) + rt::logAreaOffset();
    area[88 + sizeof(rt::LogEntryHeader) + 11] ^= 0x04;

    auto rep = rtm.recover();
    ASSERT_GE(rep.salvageAborted, 1u) << rep.toString();
    bool sawCorrupt = false;
    for (const auto& sr : rep.slots)
        if (sr.action == txn::SlotAction::salvageAborted &&
            sr.note.find("corrupted") != std::string::npos)
            sawCorrupt = true;
    EXPECT_TRUE(sawCorrupt) << rep.toString();
    EXPECT_GE(rep.logEntriesDropped, 1u);

    // The pool stays usable after the declared abort.
    auto eng = h.engine();
    txn::run(eng, kIncrCounter, h.rootPtr().raw());
    EXPECT_EQ(h.root().counter, 1u);
}

/** CNVM_LOG_STAGE_LINES=1 shrinks the window to one line; semantics
 *  (commit, crash, recover) are unchanged. */
TEST(LogWriterTest, SingleLineStagingWindow)
{
    setenv("CNVM_LOG_STAGE_LINES", "1", 1);
    Harness h(RuntimeKind::undo);
    // selectLogWriter constructs a fresh writer, which re-reads the
    // staging knob.
    ASSERT_TRUE(
        rt::selectLogWriter(*h.runtime, LogWriterKind::zerocached));
    unsetenv("CNVM_LOG_STAGE_LINES");
    prepRegion(h, kRegionWords * 8);
    auto eng = h.engine();
    for (int i = 0; i < 3; i++)
        txn::run(eng, kLwMulti, h.rootPtr().raw());
    ASSERT_EQ(h.root().counter, 3u);

    CrashScheduler sched(*h.pool);
    sched.arm(15);
    try {
        txn::run(eng, kLwMulti, h.rootPtr().raw());
    } catch (const nvm::CrashInjected&) {
    }
    sched.disarm();
    h.pool->simulateCrashAllLost();
    h.runtime->recover();
    uint64_t c = h.root().counter;
    EXPECT_TRUE(c == 3u || c == 4u);
    txn::run(eng, kLwMulti, h.rootPtr().raw());
    EXPECT_EQ(h.root().counter, c + 1);
}

/**
 * End-to-end torture smoke under the zerocached writer: the
 * crash-point sweep (declared aborts honored, rig rebuilt) and the
 * media-fault sweep (bit flips / poison / transients on the log area)
 * both pass. TortureRig reads CNVM_LOG_WRITER at construction.
 */
TEST(LogWriterTest, TortureSweepsUnderZeroCached)
{
    setenv("CNVM_LOG_WRITER", "zerocached", 1);

    torture::SweepConfig scfg;
    scfg.tear = torture::Tear::allLost;
    scfg.budget = 60;
    auto sres =
        torture::exhaustiveSweep(RuntimeKind::undo, "list", scfg);
    EXPECT_TRUE(sres.passed) << sres.failure;

    torture::MediaSweepConfig mcfg;
    mcfg.budget = 10;
    mcfg.faults.bitFlips = 1;
    mcfg.faults.poisons = 1;
    mcfg.faults.transients = 1;
    auto mres =
        torture::mediaFaultSweep(RuntimeKind::clobber, "list", mcfg);
    EXPECT_TRUE(mres.passed) << mres.failure;

    unsetenv("CNVM_LOG_WRITER");
}

}  // namespace
}  // namespace cnvm::test
