#include "analysis/durability.h"

#include <sstream>

#include "stats/counters.h"

namespace cnvm::analysis {

DurabilityValidator::DurabilityValidator(nvm::CacheSim& cache,
                                         Options opt)
    : cache_(cache), opt_(opt)
{
    cache_.setLineObserver(this);
}

DurabilityValidator::~DurabilityValidator()
{
    cache_.setLineObserver(nullptr);
}

void
DurabilityValidator::lineDirtied(uint64_t line)
{
    std::lock_guard<std::mutex> g(mu_);
    pending_.erase(line);
    dirty_.insert(line);
}

void
DurabilityValidator::lineFlushed(uint64_t line)
{
    std::lock_guard<std::mutex> g(mu_);
    // Only lines we saw dirtied move to pending; a clwb of a line the
    // cache model tracks but we never observed stays invisible.
    if (dirty_.erase(line) > 0)
        pending_.insert(line);
}

void
DurabilityValidator::fenceRetired()
{
    std::lock_guard<std::mutex> g(mu_);
    pending_.clear();
}

void
DurabilityValidator::trackingReset()
{
    std::lock_guard<std::mutex> g(mu_);
    dirty_.clear();
    pending_.clear();
}

void
DurabilityValidator::afterCommit(unsigned tid)
{
    std::lock_guard<std::mutex> g(mu_);
    commits_++;
    stats::bump(stats::Counter::persistChecks);
    size_t nd = dirty_.size();
    size_t np = pending_.size();
    if (nd > 0)
        stats::bump(stats::Counter::persistDirtyAtCommit, nd);
    if (np > 0) {
        stats::bump(stats::Counter::persistPendingAtCommit, np);
        pendingAdvisories_ += np;
    }
    bool bad = (opt_.requireDurability && nd > 0) ||
               (opt_.failOnPending && np > 0);
    if (!bad)
        return;
    Violation v{tid, commits_, nd, np, {}};
    for (uint64_t ln : dirty_) {
        if (v.sample.size() >= 4)
            break;
        v.sample.push_back(ln);
    }
    if (opt_.failOnPending) {
        for (uint64_t ln : pending_) {
            if (v.sample.size() >= 4)
                break;
            v.sample.push_back(ln);
        }
    }
    violations_.push_back(std::move(v));
}

const std::vector<DurabilityValidator::Violation>&
DurabilityValidator::violations() const
{
    return violations_;
}

uint64_t
DurabilityValidator::commitsChecked() const
{
    std::lock_guard<std::mutex> g(mu_);
    return commits_;
}

uint64_t
DurabilityValidator::pendingAdvisories() const
{
    std::lock_guard<std::mutex> g(mu_);
    return pendingAdvisories_;
}

size_t
DurabilityValidator::dirtyNow() const
{
    std::lock_guard<std::mutex> g(mu_);
    return dirty_.size();
}

size_t
DurabilityValidator::pendingNow() const
{
    std::lock_guard<std::mutex> g(mu_);
    return pending_.size();
}

std::string
DurabilityValidator::summary() const
{
    std::lock_guard<std::mutex> g(mu_);
    std::ostringstream os;
    os << commits_ << " commits audited, " << violations_.size()
       << " violations, " << pendingAdvisories_
       << " pending-line advisories";
    return os.str();
}

}  // namespace cnvm::analysis
