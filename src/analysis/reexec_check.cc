#include "analysis/reexec_check.h"

#include <set>

#include "cir/analysis.h"

namespace cnvm::analysis {

using cir::AliasAnalysis;
using cir::Alias;
using cir::BaseResolver;
using cir::Dominators;
using cir::Function;
using cir::FunctionSummary;
using cir::Instr;
using cir::InstrRef;
using cir::Op;
using cir::ValueId;

namespace {

Violation
finding(CheckKind kind, Severity sev, InstrRef at, std::string callee,
        std::string detail, std::string hint)
{
    Violation v;
    v.kind = kind;
    v.severity = sev;
    v.at = at;
    v.callee = std::move(callee);
    v.detail = std::move(detail);
    v.hint = std::move(hint);
    return v;
}

}  // namespace

PersistReport
checkReexecSafety(const Function& f, const cir::ModuleSummaries& sums)
{
    PersistReport out;
    BaseResolver bases(f);
    AliasAnalysis aa(f);
    Dominators dom(f);

    // Escaped stack slots: their stores are volatile state other
    // code can observe between the crash and the replay.
    std::set<ValueId> escapedAllocas;
    for (const auto& block : f.blocks()) {
        for (const auto& instr : block.instrs) {
            if (instr.op == Op::store &&
                instr.value != cir::kNoValue &&
                bases.kind(instr.value) ==
                    BaseResolver::Kind::alloca_)
                escapedAllocas.insert(bases.allocaRoot(instr.value));
            if (instr.op != Op::call)
                continue;
            FunctionSummary cs = sums.callSummary(instr);
            for (size_t j = 0; j < instr.args.size(); j++) {
                ValueId a = instr.args[j];
                if (a == cir::kNoValue || j >= cs.params.size())
                    continue;
                if (cs.params[j].escapes &&
                    bases.kind(a) == BaseResolver::Kind::alloca_)
                    escapedAllocas.insert(bases.allocaRoot(a));
            }
        }
    }

    // Caller-side clobber_log points, for discharging (d) at the
    // call site.
    auto clogs = f.collect(
        [](const Instr& i) { return i.op == Op::clobberlog; });

    for (int b = 0; b < static_cast<int>(f.blocks().size()); b++) {
        const auto& instrs = f.blocks()[b].instrs;
        for (int i = 0; i < static_cast<int>(instrs.size()); i++) {
            const Instr& in = instrs[i];
            InstrRef at{b, i};

            // (c) intra-function: a store to an escaped stack slot.
            if (in.op == Op::store &&
                bases.kind(in.ptr) == BaseResolver::Kind::alloca_ &&
                escapedAllocas.count(bases.allocaRoot(in.ptr))) {
                out.violations.push_back(finding(
                    CheckKind::volatileEscape, Severity::error, at,
                    "",
                    "store to a stack slot whose address escapes "
                    "the FASE; replay double-applies it",
                    "keep the slot private to the transaction, or "
                    "move the state to NVM and log it"));
            }

            if (in.op != Op::call)
                continue;
            out.callsChecked++;
            const FunctionSummary* resolved = sums.lookup(in.callee);
            FunctionSummary cs =
                resolved ? *resolved
                         : cir::ModuleSummaries::declaredSummary(
                               in.effect,
                               static_cast<int>(in.args.size()));

            // (a) determinism crosses every call path: the summary
            // already folds transitive callees.
            if (!cs.deterministic) {
                out.violations.push_back(finding(
                    CheckKind::nondetInTx, Severity::error, at,
                    in.callee,
                    resolved
                        ? "callee reaches a nondeterministic "
                          "operation; replay would diverge"
                        : "declared nondeterministic; replay would "
                          "diverge",
                    "hoist the nondeterministic value out of the "
                    "FASE and pass it in as a transaction "
                    "argument"));
            }

            // (b) I/O reachable in the body.
            if (cs.doesIO) {
                out.violations.push_back(finding(
                    CheckKind::ioInTx, Severity::error, at,
                    in.callee,
                    "callee performs (or reaches) I/O; replay "
                    "would issue it twice",
                    "move the I/O after commit, or stage it in "
                    "logged NVM state and drain it post-commit"));
            }

            // (c) volatile state written somewhere down the chain.
            if (cs.volatileEscape) {
                out.violations.push_back(finding(
                    CheckKind::volatileEscape, Severity::error, at,
                    in.callee,
                    "callee writes volatile state observable "
                    "outside the FASE; replay double-applies it",
                    "make the update transaction-local, or move "
                    "the location to NVM so it is logged and "
                    "replayed consistently"));
            }

            // (d) hidden clobbers: the callee may overwrite caller
            // memory it also read, without logging the old value.
            for (size_t j = 0; j < in.args.size(); j++) {
                ValueId a = in.args[j];
                if (a == cir::kNoValue || j >= cs.params.size())
                    continue;
                const cir::ArgEffect& eff = cs.params[j];
                if (!eff.clobbered || eff.logged)
                    continue;
                // Fresh and stack objects are transaction-local:
                // replay reconstructs them, no logging needed.
                BaseResolver::Kind k = bases.kind(a);
                if (k == BaseResolver::Kind::fresh ||
                    k == BaseResolver::Kind::alloca_)
                    continue;
                // A caller-side clobber_log of the same pointer
                // dominating the call discharges the finding.
                bool callerLogged = false;
                for (const auto& c : clogs) {
                    if (aa.alias(f.at(c).ptr, a) == Alias::must &&
                        dom.dominates(c, at)) {
                        callerLogged = true;
                        break;
                    }
                }
                if (callerLogged)
                    continue;
                out.violations.push_back(finding(
                    CheckKind::hiddenClobber, Severity::error, at,
                    in.callee,
                    resolved
                        ? "callee may overwrite an input it read "
                          "through this argument without logging "
                          "the old value"
                        : "external callee declared writes-nvm; "
                          "cannot prove it logs what it "
                          "overwrites",
                    resolved
                        ? "clobber_log the location in the callee "
                          "before its store, or clobber_log the "
                          "argument before the call"
                        : "define the callee in the module so its "
                          "body can be verified, or clobber_log "
                          "the argument before the call"));
            }
        }
    }
    return out;
}

}  // namespace cnvm::analysis
