#include "analysis/fixtures.h"

namespace cnvm::analysis {

using cir::Function;
using cir::ValueId;

Function
buildMissingFlushFixture()
{
    Function f("seed_missing_flush");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId x = cir::emitLoad(f, b, p, "input read");
    ValueId y = cir::emitBinop(f, b, x, "x+1");
    cir::emitClobberLog(f, b, p, "clobber_log p");
    cir::emitStore(f, b, p, y, "clobber (never flushed)");
    cir::emitFence(f, b, "commit fence");
    return f;
}

Function
buildMissingFenceFixture()
{
    Function f("seed_missing_fence");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId x = cir::emitLoad(f, b, p, "input read");
    ValueId y = cir::emitBinop(f, b, x, "x+1");
    cir::emitClobberLog(f, b, p, "clobber_log p");
    cir::emitStore(f, b, p, y, "clobber");
    cir::emitFlush(f, b, p, "flush (never fenced)");
    return f;
}

Function
buildUnloggedClobberFixture()
{
    Function f("seed_unlogged_clobber");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId x = cir::emitLoad(f, b, p, "input read");
    ValueId y = cir::emitBinop(f, b, x, "x+1");
    cir::emitStore(f, b, p, y, "clobber (never logged)");
    cir::emitFlush(f, b, p, "flush p");
    cir::emitFence(f, b, "commit fence");
    return f;
}

Function
buildDoubleFlushFixture()
{
    Function f("seed_double_flush");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId v = cir::emitArg(f, b, "v");
    cir::emitStore(f, b, p, v, "blind store");
    cir::emitFlush(f, b, p, "flush p");
    cir::emitFlush(f, b, p, "flush p again (redundant)");
    cir::emitFence(f, b, "commit fence");
    return f;
}

Function
buildCleanFixture()
{
    Function f("seed_clean");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId x = cir::emitLoad(f, b, p, "input read");
    ValueId y = cir::emitBinop(f, b, x, "x+1");
    cir::emitClobberLog(f, b, p, "clobber_log p");
    cir::emitStore(f, b, p, y, "clobber");
    cir::emitFlush(f, b, p, "flush p");
    cir::emitFence(f, b, "commit fence");
    return f;
}

std::vector<SeededFixture>
seededViolationFixtures()
{
    std::vector<SeededFixture> out;
    out.push_back({buildMissingFlushFixture(),
                   CheckKind::missingFlush});
    out.push_back({buildMissingFenceFixture(),
                   CheckKind::missingFence});
    out.push_back({buildUnloggedClobberFixture(),
                   CheckKind::unloggedClobber});
    out.push_back({buildDoubleFlushFixture(),
                   CheckKind::doubleFlush});
    return out;
}

}  // namespace cnvm::analysis
