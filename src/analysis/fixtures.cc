#include "analysis/fixtures.h"

namespace cnvm::analysis {

using cir::Function;
using cir::ValueId;

Function
buildMissingFlushFixture()
{
    Function f("seed_missing_flush");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId x = cir::emitLoad(f, b, p, "input read");
    ValueId y = cir::emitBinop(f, b, x, "x+1");
    cir::emitClobberLog(f, b, p, "clobber_log p");
    cir::emitStore(f, b, p, y, "clobber (never flushed)");
    cir::emitFence(f, b, "commit fence");
    return f;
}

Function
buildMissingFenceFixture()
{
    Function f("seed_missing_fence");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId x = cir::emitLoad(f, b, p, "input read");
    ValueId y = cir::emitBinop(f, b, x, "x+1");
    cir::emitClobberLog(f, b, p, "clobber_log p");
    cir::emitStore(f, b, p, y, "clobber");
    cir::emitFlush(f, b, p, "flush (never fenced)");
    return f;
}

Function
buildUnloggedClobberFixture()
{
    Function f("seed_unlogged_clobber");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId x = cir::emitLoad(f, b, p, "input read");
    ValueId y = cir::emitBinop(f, b, x, "x+1");
    cir::emitStore(f, b, p, y, "clobber (never logged)");
    cir::emitFlush(f, b, p, "flush p");
    cir::emitFence(f, b, "commit fence");
    return f;
}

Function
buildDoubleFlushFixture()
{
    Function f("seed_double_flush");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId v = cir::emitArg(f, b, "v");
    cir::emitStore(f, b, p, v, "blind store");
    cir::emitFlush(f, b, p, "flush p");
    cir::emitFlush(f, b, p, "flush p again (redundant)");
    cir::emitFence(f, b, "commit fence");
    return f;
}

Function
buildCleanFixture()
{
    Function f("seed_clean");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId x = cir::emitLoad(f, b, p, "input read");
    ValueId y = cir::emitBinop(f, b, x, "x+1");
    cir::emitClobberLog(f, b, p, "clobber_log p");
    cir::emitStore(f, b, p, y, "clobber");
    cir::emitFlush(f, b, p, "flush p");
    cir::emitFence(f, b, "commit fence");
    return f;
}

std::vector<SeededFixture>
seededViolationFixtures()
{
    std::vector<SeededFixture> out;
    out.push_back({buildMissingFlushFixture(),
                   CheckKind::missingFlush});
    out.push_back({buildMissingFenceFixture(),
                   CheckKind::missingFence});
    out.push_back({buildUnloggedClobberFixture(),
                   CheckKind::unloggedClobber});
    out.push_back({buildDoubleFlushFixture(),
                   CheckKind::doubleFlush});
    return out;
}

// ---------------------------------------------------------------
// Interprocedural re-execution-safety fixtures.

using cir::Effect;
using cir::IrModule;

IrModule
buildNondetTxModule()
{
    IrModule m{"seed_nondet", {}};
    // Helper: reads the cycle counter. Its own call is to an
    // external symbol declared nondeterministic.
    Function h("get_stamp");
    int hb = h.addBlock("entry");
    ValueId t =
        cir::emitCall(h, hb, "rdtsc", Effect::nondet, {}, "rdtsc()");
    cir::emitBinop(h, hb, t, "scale");
    m.functions.push_back(h);

    // Tx: stamps an NVM field. The call to get_stamp is declared
    // pure — only the transitive summary exposes the nondeterminism.
    Function f("seed_nondet_call");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId s = cir::emitCall(f, b, "get_stamp", Effect::pure, {},
                              "get_stamp()");
    cir::emitLoad(f, b, p, "input read");
    cir::emitClobberLog(f, b, p, "clobber_log p");
    cir::emitStore(f, b, p, s, "p = stamp (clobber)");
    cir::emitFlush(f, b, p, "flush p");
    cir::emitFence(f, b, "commit fence");
    m.functions.push_back(f);
    return m;
}

IrModule
buildIoTxModule()
{
    IrModule m{"seed_io", {}};
    Function f("seed_io_call");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId x = cir::emitLoad(f, b, p, "input read");
    ValueId y = cir::emitBinop(f, b, x, "x+1");
    cir::emitClobberLog(f, b, p, "clobber_log p");
    cir::emitStore(f, b, p, y, "clobber");
    cir::emitFlush(f, b, p, "flush p");
    cir::emitCall(f, b, "log_write", Effect::io, {y},
                  "log_write(y) — I/O in the FASE");
    cir::emitFence(f, b, "commit fence");
    m.functions.push_back(f);
    return m;
}

IrModule
buildVolatileEscapeModule()
{
    IrModule m{"seed_volatile", {}};
    Function f("seed_volatile_escape");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId buf = cir::emitAlloca(f, b, "buf");
    ValueId x = cir::emitLoad(f, b, p, "input read");
    cir::emitClobberLog(f, b, p, "clobber_log p");
    cir::emitStore(f, b, p, buf, "p = &buf (publishes the slot)");
    cir::emitFlush(f, b, p, "flush p");
    cir::emitStore(f, b, buf, x, "buf = x (escaping volatile)");
    cir::emitFence(f, b, "commit fence");
    m.functions.push_back(f);
    return m;
}

IrModule
buildHiddenClobberModule()
{
    IrModule m{"seed_hidden", {}};
    // Helper: flushes and fences like a good citizen, but never
    // logs the old value it overwrites.
    Function h("sum_bump_unlogged");
    int hb = h.addBlock("entry");
    ValueId q = cir::emitArg(h, hb, "q");
    ValueId x = cir::emitLoad(h, hb, q, "old");
    ValueId y = cir::emitBinop(h, hb, x, "old+1");
    cir::emitStore(h, hb, q, y, "bump (clobber, never logged)");
    cir::emitFlush(h, hb, q, "flush q");
    cir::emitFence(h, hb, "helper fence");
    m.functions.push_back(h);

    // Tx: nothing but the call — the intraprocedural clobber pass
    // sees no loads or stores here at all.
    Function f("seed_hidden_clobber");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    cir::emitCall(f, b, "sum_bump_unlogged", Effect::writesNVM, {p},
                  "sum_bump_unlogged(p)");
    m.functions.push_back(f);
    return m;
}

IrModule
buildReexecCleanModule()
{
    IrModule m{"seed_reexec_clean", {}};
    // Self-logging helper (same discipline as the runtime corpus).
    Function h("bump_logged");
    int hb = h.addBlock("entry");
    ValueId q = cir::emitArg(h, hb, "q");
    ValueId x = cir::emitLoad(h, hb, q, "old");
    ValueId y = cir::emitBinop(h, hb, x, "old+1");
    cir::emitClobberLog(h, hb, q, "clobber_log q");
    cir::emitStore(h, hb, q, y, "bump (clobber)");
    cir::emitFlush(h, hb, q, "flush q");
    cir::emitFence(h, hb, "helper fence");
    m.functions.push_back(h);

    Function f("seed_reexec_clean_tx");
    int b = f.addBlock("entry");
    ValueId p = cir::emitArg(f, b, "p");
    ValueId tmp = cir::emitAlloca(f, b, "tmp");
    ValueId v = cir::emitLoad(f, b, p, "input read");
    cir::emitStore(f, b, tmp, v, "spill (private stack)");
    ValueId w = cir::emitCall(f, b, "mix_pure", Effect::pure, {v},
                              "mix_pure(v)");
    cir::emitClobberLog(f, b, p, "clobber_log p");
    cir::emitStore(f, b, p, w, "p = mixed (clobber)");
    cir::emitFlush(f, b, p, "flush p");
    ValueId cnt = cir::emitGep(f, b, p, 8, "p.count");
    cir::emitCall(f, b, "bump_logged", Effect::writesNVM, {cnt},
                  "bump_logged(p.count)");
    cir::emitFence(f, b, "commit fence");
    m.functions.push_back(f);
    return m;
}

std::vector<SeededReexecFixture>
seededReexecFixtures()
{
    std::vector<SeededReexecFixture> out;
    out.push_back({buildNondetTxModule(), "seed_nondet_call",
                   CheckKind::nondetInTx});
    out.push_back(
        {buildIoTxModule(), "seed_io_call", CheckKind::ioInTx});
    out.push_back({buildVolatileEscapeModule(),
                   "seed_volatile_escape",
                   CheckKind::volatileEscape});
    out.push_back({buildHiddenClobberModule(), "seed_hidden_clobber",
                   CheckKind::hiddenClobber});
    return out;
}

}  // namespace cnvm::analysis
