/**
 * @file
 * Dynamic durability-order validator.
 *
 * Mirrors the cache model's line state machine (dirty -> pending ->
 * durable) from the CacheSim event stream and audits every
 * transaction commit: a runtime that claims durability must leave no
 * line dirty (written but never flushed) when txCommit returns.
 *
 * Flushed-but-unfenced lines at commit are reported separately as
 * advisories, not violations: the shipped runtimes deliberately clear
 * the allocation-intent count with a lazy (unfenced) flush after the
 * commit point, which is crash-safe because re-running the empty
 * free-completion path is idempotent (see RuntimeBase::
 * finishIntentsAfterCommit). Options::failOnPending upgrades the
 * advisory to a violation for stricter protocols.
 *
 * The validator only models lines dirtied after it attaches, so
 * pre-existing setup writes never produce false positives. Attaching
 * is the only cost knob: with no observer installed, CacheSim and
 * txn::run each pay a single null check (zero-cost-when-off).
 *
 * Attaching also disables CacheSim's per-thread dirty-line fast path
 * (the install bumps the sim's epoch, and no cache refills happen
 * while an observer is present), so the validator still receives every
 * per-line transition — including re-dirties of already-dirty lines —
 * exactly as the pre-sharding single-table implementation reported
 * them. Callbacks now arrive under the owning *shard's* lock rather
 * than one global mutex; the validator's own mutex serializes them.
 * Attach/detach during quiescence.
 */
#ifndef CNVM_ANALYSIS_DURABILITY_H
#define CNVM_ANALYSIS_DURABILITY_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "nvm/cache_sim.h"
#include "txn/engine.h"

namespace cnvm::analysis {

class DurabilityValidator final : public nvm::LineObserver,
                                  public txn::CommitObserver {
 public:
    struct Options {
        /** The runtime claims committed transactions are durable
         *  (false for the no-log baseline). */
        bool requireDurability = true;
        /** Treat flushed-but-unfenced lines at commit as violations
         *  instead of advisories. */
        bool failOnPending = false;
    };

    /** One failed commit audit. */
    struct Violation {
        unsigned tid;
        uint64_t commitIndex;   ///< ordinal of the audited commit
        size_t dirtyLines;
        size_t pendingLines;
        std::vector<uint64_t> sample;  ///< up to 4 offending lines
    };

    /** Attaches to `cache` as its line observer. */
    explicit DurabilityValidator(nvm::CacheSim& cache)
        : DurabilityValidator(cache, Options{}) {}
    DurabilityValidator(nvm::CacheSim& cache, Options opt);
    ~DurabilityValidator() override;

    DurabilityValidator(const DurabilityValidator&) = delete;
    DurabilityValidator& operator=(const DurabilityValidator&) = delete;

    /** @name LineObserver (called by CacheSim under its mutex) */
    /// @{
    void lineDirtied(uint64_t line) override;
    void lineFlushed(uint64_t line) override;
    void fenceRetired() override;
    void trackingReset() override;
    /// @}

    /** CommitObserver: audit the commit that just returned. */
    void afterCommit(unsigned tid) override;

    const std::vector<Violation>& violations() const;
    uint64_t commitsChecked() const;
    uint64_t pendingAdvisories() const;
    size_t dirtyNow() const;
    size_t pendingNow() const;

    /** One-line audit summary. */
    std::string summary() const;

 private:
    nvm::CacheSim& cache_;
    Options opt_;
    mutable std::mutex mu_;
    std::unordered_set<uint64_t> dirty_;
    std::unordered_set<uint64_t> pending_;
    uint64_t commits_ = 0;
    uint64_t pendingAdvisories_ = 0;
    std::vector<Violation> violations_;
};

}  // namespace cnvm::analysis

#endif  // CNVM_ANALYSIS_DURABILITY_H
