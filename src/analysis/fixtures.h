/**
 * @file
 * Seeded-violation fixture functions for the persistency checker.
 *
 * Each builder returns a small transaction body that is correctly
 * instrumented except for exactly one persistency bug, so a checker
 * run must flag that bug (and nothing at error severity beyond it).
 * Shared between tests/test_analysis.cc and the cnvm_lint self-check
 * so the CLI proves its own detection power on every run.
 */
#ifndef CNVM_ANALYSIS_FIXTURES_H
#define CNVM_ANALYSIS_FIXTURES_H

#include <vector>

#include "analysis/persist_check.h"
#include "cir/ir.h"

namespace cnvm::analysis {

/** RMW with clobber_log and fence, but the store is never flushed. */
cir::Function buildMissingFlushFixture();

/** RMW logged and flushed, but no fence before transaction end. */
cir::Function buildMissingFenceFixture();

/** RMW flushed and fenced, but the clobber site is never logged. */
cir::Function buildUnloggedClobberFixture();

/** Blind store flushed twice with no re-dirtying write between. */
cir::Function buildDoubleFlushFixture();

/** Fully instrumented RMW: the checker must report nothing. */
cir::Function buildCleanFixture();

struct SeededFixture {
    cir::Function fn;
    CheckKind expected;
};

/** The four violation fixtures with their expected findings. */
std::vector<SeededFixture> seededViolationFixtures();

}  // namespace cnvm::analysis

#endif  // CNVM_ANALYSIS_FIXTURES_H
