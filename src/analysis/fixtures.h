/**
 * @file
 * Seeded-violation fixture functions for the persistency checker.
 *
 * Each builder returns a small transaction body that is correctly
 * instrumented except for exactly one persistency bug, so a checker
 * run must flag that bug (and nothing at error severity beyond it).
 * Shared between tests/test_analysis.cc and the cnvm_lint self-check
 * so the CLI proves its own detection power on every run.
 */
#ifndef CNVM_ANALYSIS_FIXTURES_H
#define CNVM_ANALYSIS_FIXTURES_H

#include <string>
#include <vector>

#include "analysis/persist_check.h"
#include "cir/builders.h"
#include "cir/ir.h"

namespace cnvm::analysis {

/** RMW with clobber_log and fence, but the store is never flushed. */
cir::Function buildMissingFlushFixture();

/** RMW logged and flushed, but no fence before transaction end. */
cir::Function buildMissingFenceFixture();

/** RMW flushed and fenced, but the clobber site is never logged. */
cir::Function buildUnloggedClobberFixture();

/** Blind store flushed twice with no re-dirtying write between. */
cir::Function buildDoubleFlushFixture();

/** Fully instrumented RMW: the checker must report nothing. */
cir::Function buildCleanFixture();

struct SeededFixture {
    cir::Function fn;
    CheckKind expected;
};

/** The four violation fixtures with their expected findings. */
std::vector<SeededFixture> seededViolationFixtures();

// ---------------------------------------------------------------
// Interprocedural re-execution-safety fixtures. Each module holds a
// transaction function (plus helpers) that is correctly
// instrumented except for exactly one replay-soundness bug, so the
// reexec verifier must flag that bug and nothing else at error
// severity.

/** Tx reaches a nondeterministic op through a helper whose call is
    (wrongly) declared pure — only the summary fixpoint sees it. */
cir::IrModule buildNondetTxModule();

/** Tx performs I/O inside the FASE via an external callee. */
cir::IrModule buildIoTxModule();

/** Tx publishes a stack slot's address to NVM and then stores to
    it: an escaping volatile store a replay would double-apply. */
cir::IrModule buildVolatileEscapeModule();

/** Tx calls a helper that clobbers its argument without logging —
    the hidden clobber the intraprocedural pass provably misses. */
cir::IrModule buildHiddenClobberModule();

/** Call-structured but fully safe: logged helper RMW, pure call,
    private stack scratch. The verifier must stay silent. */
cir::IrModule buildReexecCleanModule();

struct SeededReexecFixture {
    cir::IrModule mod;       ///< tx function + helpers
    std::string txFunction;  ///< entry function to verify
    CheckKind expected;
};

/** The four reexec violation modules with expected findings. */
std::vector<SeededReexecFixture> seededReexecFixtures();

}  // namespace cnvm::analysis

#endif  // CNVM_ANALYSIS_FIXTURES_H
