/**
 * @file
 * Re-execution-safety verifier (interprocedural).
 *
 * Clobber-NVM's bargain is "log less, re-execute more": recovery
 * replays the transaction body from its logged inputs instead of
 * rolling data back. That is only sound when the body is a FASE the
 * paper's restrictions actually hold for — deterministic, free of
 * unlogged side effects, and with every clobbered input logged. This
 * pass proves those properties across call boundaries using the
 * cir::ModuleSummaries fixpoint:
 *
 *  (a) nondetInTx — a nondeterministic operation (time, rand, tsc)
 *      is reachable through any call path: replay would compute
 *      different values than the crashed run;
 *  (b) ioInTx — an I/O side effect is reachable: replay would issue
 *      it a second time;
 *  (c) volatileEscape — a store to volatile state observable outside
 *      the FASE (an escaped stack slot, or a callee declared
 *      Effect::volatileWrite): replay double-applies it and other
 *      threads can observe the intermediate state;
 *  (d) hiddenClobber — a callee may overwrite memory the transaction
 *      read (a clobbered input) without logging the old value, which
 *      the intraprocedural clobber pass cannot see.
 *
 * Findings reuse the PersistReport machinery; every violation
 * carries a fix-it hint and, for call-derived findings, the callee
 * symbol.
 */
#ifndef CNVM_ANALYSIS_REEXEC_CHECK_H
#define CNVM_ANALYSIS_REEXEC_CHECK_H

#include "analysis/persist_check.h"
#include "cir/ir.h"
#include "cir/summaries.h"

namespace cnvm::analysis {

/**
 * Verify that `f` (a transaction body) is safe to re-execute during
 * recovery, resolving helper calls through `sums`. Violations (a),
 * (b), (d) are errors; (c) is an error for resolved callees and
 * stack escapes. Unresolved callees declared Effect::writesNVM get a
 * hiddenClobber at error severity too — the verifier cannot prove
 * they log what they overwrite.
 */
PersistReport checkReexecSafety(const cir::Function& f,
                                const cir::ModuleSummaries& sums);

}  // namespace cnvm::analysis

#endif  // CNVM_ANALYSIS_REEXEC_CHECK_H
