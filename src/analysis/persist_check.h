/**
 * @file
 * Static persistency lint over cir functions.
 *
 * The clobber pass (src/cir/clobber_pass.h) proves which stores need
 * logging; this pass audits the *other* invariants every runtime
 * silently relies on, using the same alias + dominator machinery:
 *
 *  (a) missingFlush — an NVM store with no must-aliasing flush on the
 *      path to transaction end (error if no path flushes it, warning
 *      if only some paths do);
 *  (b) missingFence — a flush never ordered by a fence before the
 *      transaction ends (error / warning as above);
 *  (c) doubleFlush — a flush of a line already flushed with no
 *      re-dirtying store in between (perf diagnostic, warning);
 *  (d) unloggedClobber — a store the clobber pass marks as a refined
 *      clobber site that carries no dominating clobber_log
 *      instrumentation (error), plus the reverse, a clobber_log that
 *      covers no site (info).
 *
 * instrumentPersistency() is the emission step the compiler would
 * perform: given a function and its clobber analysis it inserts
 * clobber_log before each refined site, a flush after every NVM
 * store, and a fence at every exit — checkPersistency() of the result
 * is clean by construction, which is exactly what cnvm_lint verifies
 * for every registered benchmark function.
 */
#ifndef CNVM_ANALYSIS_PERSIST_CHECK_H
#define CNVM_ANALYSIS_PERSIST_CHECK_H

#include <string>
#include <vector>

#include "cir/analysis.h"
#include "cir/clobber_pass.h"
#include "cir/ir.h"

namespace cnvm::analysis {

enum class Severity { info, warning, error };

enum class CheckKind {
    missingFlush,
    missingFence,
    doubleFlush,
    unloggedClobber,
    unneededClobberLog,
    // Re-execution safety (reexec_check.h), interprocedural:
    nondetInTx,      ///< nondeterministic op reachable in the body
    ioInTx,          ///< I/O side effect reachable in the body
    volatileEscape,  ///< volatile store observable outside the FASE
    hiddenClobber,   ///< callee clobbers caller memory unlogged
};

const char* severityName(Severity s);
const char* checkKindName(CheckKind k);

struct Violation {
    CheckKind kind;
    Severity severity;
    cir::InstrRef at;
    std::string detail;
    std::string hint;    ///< fix-it suggestion (may be empty)
    std::string callee;  ///< call target, for call-derived findings
};

struct PersistReport {
    std::vector<Violation> violations;
    int storesChecked = 0;
    int flushesChecked = 0;
    int clobberSitesChecked = 0;
    int callsChecked = 0;

    /** No error-severity findings (warnings/info may remain). */
    bool clean() const;
    int count(Severity s) const;
    int count(CheckKind k) const;
    bool has(CheckKind k) const;

    /** One-line headline (like ClobberResult::summary). */
    std::string summary(const cir::Function& f) const;
    /** Multi-line listing of every violation. */
    std::string toString(const cir::Function& f) const;
};

/** Run all four checks over (an instrumented) function. */
PersistReport checkPersistency(const cir::Function& f);

/**
 * Summary-aware variant: helper calls participate in every audit.
 * A callee that writes through an argument without flushing it makes
 * the call site a store needing a caller-side flush; a callee that
 * flushes its argument acts as a flush point (fenced already when
 * the callee fences on exit); a callee that fences on exit acts as a
 * fence; clobber sites come from the interprocedural clobber pass,
 * so a call whose callee clobbers its argument needs the callee (or
 * a dominating caller-side clobber_log) to log it. Passing nullptr
 * reproduces the intraprocedural behavior exactly.
 */
PersistReport checkPersistency(const cir::Function& f,
                               const cir::ModuleSummaries* sums);

/**
 * Compiler-side emission: insert clobber_log before every refined
 * site of `res`, a flush after every NVM store, and a fence at each
 * exit block. Value numbering is preserved (the inserted intrinsics
 * define no SSA values), so `res` computed on `f` remains valid for
 * the returned function's stores.
 */
cir::Function instrumentPersistency(const cir::Function& f,
                                    const cir::ClobberResult& res);

}  // namespace cnvm::analysis

#endif  // CNVM_ANALYSIS_PERSIST_CHECK_H
