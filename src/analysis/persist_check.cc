#include "analysis/persist_check.h"

#include <set>
#include <sstream>

namespace cnvm::analysis {

using cir::Alias;
using cir::AliasAnalysis;
using cir::Dominators;
using cir::Function;
using cir::Instr;
using cir::InstrRef;
using cir::Op;

const char*
severityName(Severity s)
{
    switch (s) {
      case Severity::info: return "info";
      case Severity::warning: return "warning";
      case Severity::error: return "error";
    }
    return "?";
}

const char*
checkKindName(CheckKind k)
{
    switch (k) {
      case CheckKind::missingFlush: return "missing-flush";
      case CheckKind::missingFence: return "missing-fence";
      case CheckKind::doubleFlush: return "double-flush";
      case CheckKind::unloggedClobber: return "unlogged-clobber";
      case CheckKind::unneededClobberLog:
        return "unneeded-clobber-log";
      case CheckKind::nondetInTx: return "nondet-in-tx";
      case CheckKind::ioInTx: return "io-in-tx";
      case CheckKind::volatileEscape: return "volatile-escape";
      case CheckKind::hiddenClobber: return "hidden-clobber";
    }
    return "?";
}

bool
PersistReport::clean() const
{
    return count(Severity::error) == 0;
}

int
PersistReport::count(Severity s) const
{
    int n = 0;
    for (const auto& v : violations)
        n += v.severity == s ? 1 : 0;
    return n;
}

int
PersistReport::count(CheckKind k) const
{
    int n = 0;
    for (const auto& v : violations)
        n += v.kind == k ? 1 : 0;
    return n;
}

bool
PersistReport::has(CheckKind k) const
{
    return count(k) > 0;
}

std::string
PersistReport::summary(const Function& f) const
{
    std::ostringstream os;
    os << f.name() << ": " << storesChecked << " stores, "
       << flushesChecked << " flushes, " << clobberSitesChecked
       << " clobber sites";
    if (callsChecked > 0)
        os << ", " << callsChecked << " calls";
    os << " checked — " << count(Severity::error) << " errors, "
       << count(Severity::warning) << " warnings, "
       << count(Severity::info) << " info";
    return os.str();
}

std::string
PersistReport::toString(const Function& f) const
{
    std::ostringstream os;
    os << summary(f) << "\n";
    for (const auto& v : violations) {
        os << "  [" << severityName(v.severity) << "] "
           << checkKindName(v.kind);
        // Call-derived findings name the callee: a bare instruction
        // index is unreadable once findings cross functions.
        const Instr& in = f.at(v.at);
        std::string callee =
            !v.callee.empty()
                ? v.callee
                : (in.op == Op::call ? in.callee : std::string());
        if (!callee.empty()) {
            os << " at call '" << callee << "' (b" << v.at.block
               << ":i" << v.at.index << ")";
        } else {
            os << " at b" << v.at.block << ":i" << v.at.index;
        }
        if (!in.name.empty() && callee.empty())
            os << " '" << in.name << "'";
        if (!v.detail.empty())
            os << " — " << v.detail;
        if (!v.hint.empty())
            os << "; fix: " << v.hint;
        os << "\n";
    }
    return os.str();
}

namespace {

/** One audited event: a real instruction, or a call standing in for
    what its callee does through one pointer argument. */
struct AuditPoint {
    InstrRef at;
    cir::ValueId ptr = cir::kNoValue;
    bool fromCall = false;
    /** Stores: the callee flushes what it writes through this arg.
        Flushes: the callee also fences on exit. */
    bool coveredByCallee = false;
    std::string callee;
};

Violation
makeViolation(CheckKind kind, Severity sev, const AuditPoint& p,
              std::string detail, std::string hint = "")
{
    Violation v;
    v.kind = kind;
    v.severity = sev;
    v.at = p.at;
    v.detail = std::move(detail);
    v.hint = std::move(hint);
    v.callee = p.callee;
    return v;
}

}  // namespace

PersistReport
checkPersistency(const Function& f)
{
    return checkPersistency(f, nullptr);
}

PersistReport
checkPersistency(const Function& f, const cir::ModuleSummaries* sums)
{
    AliasAnalysis aa(f);
    Dominators dom(f);
    PersistReport out;

    std::vector<AuditPoint> stores;
    std::vector<AuditPoint> flushes;
    std::vector<AuditPoint> fences;
    std::vector<AuditPoint> clogs;
    for (int b = 0; b < static_cast<int>(f.blocks().size()); b++) {
        const auto& instrs = f.blocks()[b].instrs;
        for (int i = 0; i < static_cast<int>(instrs.size()); i++) {
            const Instr& in = instrs[i];
            InstrRef at{b, i};
            switch (in.op) {
              case Op::store: stores.push_back({at, in.ptr}); break;
              case Op::flush: flushes.push_back({at, in.ptr}); break;
              case Op::fence: fences.push_back({at}); break;
              case Op::clobberlog:
                clogs.push_back({at, in.ptr});
                break;
              case Op::call: {
                if (!sums)
                    break;
                cir::FunctionSummary cs = sums->callSummary(in);
                out.callsChecked++;
                for (size_t j = 0; j < in.args.size(); j++) {
                    cir::ValueId a = in.args[j];
                    if (a == cir::kNoValue || j >= cs.params.size())
                        continue;
                    const cir::ArgEffect& eff = cs.params[j];
                    if (eff.written)
                        stores.push_back(
                            {at, a, true, eff.flushed, in.callee});
                    if (eff.flushed)
                        flushes.push_back({at, a, true,
                                           cs.fencesOnExit,
                                           in.callee});
                    if (eff.logged)
                        clogs.push_back(
                            {at, a, true, false, in.callee});
                }
                if (cs.fencesOnExit)
                    fences.push_back(
                        {at, cir::kNoValue, true, false, in.callee});
                break;
              }
              default: break;
            }
        }
    }

    // (a) Every NVM store needs a must-aliasing flush before the
    // transaction ends. A flush *before* the store persists nothing.
    // A callee that flushes what it writes covers its own stores.
    for (const auto& s : stores) {
        if (aa.basedOnAlloca(s.ptr))
            continue;  // stack storage is volatile by contract
        out.storesChecked++;
        if (s.fromCall && s.coveredByCallee)
            continue;
        bool onAllPaths = false;
        bool onSomePath = false;
        for (const auto& fl : flushes) {
            if (aa.alias(fl.ptr, s.ptr) != Alias::must)
                continue;
            if (fl.at == s.at)
                continue;  // the call's own synthetic flush
            if (dom.alwaysFollows(s.at, fl.at))
                onAllPaths = true;
            else if (dom.mayFollow(s.at, fl.at))
                onSomePath = true;
        }
        const char* hint =
            s.fromCall
                ? "flush the written location in the callee, or "
                  "flush the argument after the call"
                : "";
        if (!onAllPaths && !onSomePath) {
            out.violations.push_back(makeViolation(
                CheckKind::missingFlush, Severity::error, s,
                s.fromCall
                    ? "callee writes through this argument and no "
                      "flush of it reaches transaction end"
                    : "no flush of this location reaches "
                      "transaction end",
                hint));
        } else if (!onAllPaths) {
            out.violations.push_back(makeViolation(
                CheckKind::missingFlush, Severity::warning, s,
                "flushed on some paths only", hint));
        }
    }

    // (b) Every flush must be ordered by a later fence, or the line
    // can still be lost at the commit point. A callee that fences on
    // exit orders its own flushes and acts as a fence point for
    // flushes preceding the call.
    for (const auto& fl : flushes) {
        out.flushesChecked++;
        if (fl.fromCall && fl.coveredByCallee)
            continue;
        bool onAllPaths = false;
        bool onSomePath = false;
        for (const auto& fn : fences) {
            if (fn.at == fl.at)
                continue;
            if (dom.alwaysFollows(fl.at, fn.at))
                onAllPaths = true;
            else if (dom.mayFollow(fl.at, fn.at))
                onSomePath = true;
        }
        if (!onAllPaths && !onSomePath) {
            out.violations.push_back(makeViolation(
                CheckKind::missingFence, Severity::error, fl,
                fl.fromCall ? "callee flushes this argument but "
                              "nothing fences the flush"
                            : "no fence follows this flush"));
        } else if (!onAllPaths) {
            out.violations.push_back(makeViolation(
                CheckKind::missingFence, Severity::warning, fl,
                "fenced on some paths only"));
        }
    }

    // (c) Two must-aliasing flushes with no re-dirtying store in
    // between: the second clwb is pure overhead. Call-derived
    // flushes target unknown offsets, so only real flushes count.
    for (const auto& f1 : flushes) {
        for (const auto& f2 : flushes) {
            if (f1.fromCall || f2.fromCall)
                continue;
            if (f1.at == f2.at || !dom.dominates(f1.at, f2.at))
                continue;
            if (aa.alias(f1.ptr, f2.ptr) != Alias::must)
                continue;
            bool redirtied = false;
            for (const auto& s : stores) {
                if (aa.alias(s.ptr, f2.ptr) == Alias::no)
                    continue;
                if (dom.mayFollow(f1.at, s.at) &&
                    dom.mayFollow(s.at, f2.at)) {
                    redirtied = true;
                    break;
                }
            }
            if (!redirtied) {
                out.violations.push_back(makeViolation(
                    CheckKind::doubleFlush, Severity::warning, f2,
                    "line already flushed and not re-dirtied"));
            }
        }
    }

    // (d) Every refined clobber site needs a dominating clobber_log
    // of its location; a clobber_log covering no site is dead weight.
    // With summaries the clobber pass is interprocedural, so a site
    // can be a call: its callee must log the argument itself, or a
    // caller-side clobber_log must dominate the call.
    cir::ClobberResult clob =
        sums ? cir::analyzeClobbers(f, *sums)
             : cir::analyzeClobbers(f);
    auto loggedAt = [&](cir::ValueId ptr,
                        const InstrRef& site) -> bool {
        for (const auto& c : clogs) {
            if (c.at == site)
                continue;
            if (aa.alias(c.ptr, ptr) == Alias::must &&
                dom.dominates(c.at, site))
                return true;
        }
        return false;
    };
    for (const auto& site : clob.refinedSites) {
        const Instr& in = f.at(site);
        if (in.op == Op::call) {
            cir::FunctionSummary cs = sums->callSummary(in);
            for (size_t j = 0; j < in.args.size(); j++) {
                cir::ValueId a = in.args[j];
                if (a == cir::kNoValue || j >= cs.params.size())
                    continue;
                const cir::ArgEffect& eff = cs.params[j];
                if (!eff.written || aa.basedOnAlloca(a))
                    continue;
                out.clobberSitesChecked++;
                if (eff.logged || loggedAt(a, site))
                    continue;
                AuditPoint p{site, a, true, false, in.callee};
                out.violations.push_back(makeViolation(
                    CheckKind::unloggedClobber, Severity::error, p,
                    "callee may clobber this argument and neither "
                    "it nor the caller logs the old value",
                    "clobber_log the location in the callee before "
                    "its store, or clobber_log the argument before "
                    "the call"));
            }
            continue;
        }
        if (aa.basedOnAlloca(in.ptr))
            continue;  // volatile scratch: never logged
        out.clobberSitesChecked++;
        if (!loggedAt(in.ptr, site)) {
            out.violations.push_back(makeViolation(
                CheckKind::unloggedClobber, Severity::error,
                AuditPoint{site, in.ptr},
                "refined clobber site has no dominating "
                "clobber_log"));
        }
    }
    for (const auto& c : clogs) {
        if (c.fromCall)
            continue;  // the callee's own logging is audited there
        bool useful = false;
        for (const auto& site : clob.refinedSites) {
            const Instr& in = f.at(site);
            cir::ValueId siteLoc = in.ptr;
            if (in.op == Op::call) {
                // Useful if it covers any argument the callee may
                // write through.
                cir::FunctionSummary cs = sums->callSummary(in);
                for (size_t j = 0; j < in.args.size(); j++) {
                    if (in.args[j] == cir::kNoValue ||
                        j >= cs.params.size() ||
                        !cs.params[j].written)
                        continue;
                    if (aa.alias(c.ptr, in.args[j]) ==
                            Alias::must &&
                        dom.dominates(c.at, site))
                        useful = true;
                }
                continue;
            }
            if (aa.alias(c.ptr, siteLoc) == Alias::must &&
                dom.dominates(c.at, site)) {
                useful = true;
                break;
            }
        }
        if (!useful) {
            out.violations.push_back(makeViolation(
                CheckKind::unneededClobberLog, Severity::info, c,
                "logs a location no refined site clobbers"));
        }
    }

    return out;
}

cir::Function
instrumentPersistency(const Function& f, const cir::ClobberResult& res)
{
    AliasAnalysis aa(f);
    std::set<std::pair<int, int>> sites;
    for (const auto& s : res.refinedSites)
        sites.emplace(s.block, s.index);

    Function out(f.name());
    for (const auto& block : f.blocks())
        out.addBlock(block.label);
    for (int b = 0; b < static_cast<int>(f.blocks().size()); b++) {
        for (int s : f.blocks()[b].succs)
            out.addEdge(b, s);
    }

    for (int b = 0; b < static_cast<int>(f.blocks().size()); b++) {
        const auto& instrs = f.blocks()[b].instrs;
        for (int i = 0; i < static_cast<int>(instrs.size()); i++) {
            Instr copy = instrs[i];
            bool nvmStore = copy.op == Op::store &&
                            !aa.basedOnAlloca(copy.ptr);
            if (nvmStore && sites.count({b, i}))
                cir::emitClobberLog(out, b, copy.ptr,
                                    "clobber_log " + copy.name);
            // append() re-derives result ids; the intrinsics define
            // none, so the original numbering is preserved.
            copy.result = cir::kNoValue;
            out.append(b, copy);
            if (nvmStore)
                cir::emitFlush(out, b, copy.ptr,
                               "flush " + copy.name);
        }
    }
    for (int b = 0; b < static_cast<int>(f.blocks().size()); b++) {
        bool leaves = false;
        for (int s : f.blocks()[b].succs)
            leaves = leaves || s != b;
        if (!leaves)
            cir::emitFence(out, b, "commit fence");
    }
    return out;
}

}  // namespace cnvm::analysis
