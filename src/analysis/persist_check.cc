#include "analysis/persist_check.h"

#include <set>
#include <sstream>

namespace cnvm::analysis {

using cir::Alias;
using cir::AliasAnalysis;
using cir::Dominators;
using cir::Function;
using cir::Instr;
using cir::InstrRef;
using cir::Op;

const char*
severityName(Severity s)
{
    switch (s) {
      case Severity::info: return "info";
      case Severity::warning: return "warning";
      case Severity::error: return "error";
    }
    return "?";
}

const char*
checkKindName(CheckKind k)
{
    switch (k) {
      case CheckKind::missingFlush: return "missing-flush";
      case CheckKind::missingFence: return "missing-fence";
      case CheckKind::doubleFlush: return "double-flush";
      case CheckKind::unloggedClobber: return "unlogged-clobber";
      case CheckKind::unneededClobberLog:
        return "unneeded-clobber-log";
    }
    return "?";
}

bool
PersistReport::clean() const
{
    return count(Severity::error) == 0;
}

int
PersistReport::count(Severity s) const
{
    int n = 0;
    for (const auto& v : violations)
        n += v.severity == s ? 1 : 0;
    return n;
}

int
PersistReport::count(CheckKind k) const
{
    int n = 0;
    for (const auto& v : violations)
        n += v.kind == k ? 1 : 0;
    return n;
}

bool
PersistReport::has(CheckKind k) const
{
    return count(k) > 0;
}

std::string
PersistReport::summary(const Function& f) const
{
    std::ostringstream os;
    os << f.name() << ": " << storesChecked << " stores, "
       << flushesChecked << " flushes, " << clobberSitesChecked
       << " clobber sites checked — " << count(Severity::error)
       << " errors, " << count(Severity::warning) << " warnings, "
       << count(Severity::info) << " info";
    return os.str();
}

std::string
PersistReport::toString(const Function& f) const
{
    std::ostringstream os;
    os << summary(f) << "\n";
    for (const auto& v : violations) {
        os << "  [" << severityName(v.severity) << "] "
           << checkKindName(v.kind) << " at b" << v.at.block << ":i"
           << v.at.index;
        const std::string& nm = f.at(v.at).name;
        if (!nm.empty())
            os << " '" << nm << "'";
        if (!v.detail.empty())
            os << " — " << v.detail;
        os << "\n";
    }
    return os.str();
}

PersistReport
checkPersistency(const Function& f)
{
    AliasAnalysis aa(f);
    Dominators dom(f);
    PersistReport out;

    auto stores =
        f.collect([](const Instr& i) { return i.op == Op::store; });
    auto flushes =
        f.collect([](const Instr& i) { return i.op == Op::flush; });
    auto fences =
        f.collect([](const Instr& i) { return i.op == Op::fence; });
    auto clogs = f.collect(
        [](const Instr& i) { return i.op == Op::clobberlog; });

    // (a) Every NVM store needs a must-aliasing flush before the
    // transaction ends. A flush *before* the store persists nothing.
    for (const auto& s : stores) {
        if (aa.basedOnAlloca(f.at(s).ptr))
            continue;  // stack storage is volatile by contract
        out.storesChecked++;
        bool onAllPaths = false;
        bool onSomePath = false;
        for (const auto& fl : flushes) {
            if (aa.alias(f.at(fl).ptr, f.at(s).ptr) != Alias::must)
                continue;
            if (dom.alwaysFollows(s, fl))
                onAllPaths = true;
            else if (dom.mayFollow(s, fl))
                onSomePath = true;
        }
        if (!onAllPaths && !onSomePath) {
            out.violations.push_back(
                {CheckKind::missingFlush, Severity::error, s,
                 "no flush of this location reaches transaction end"});
        } else if (!onAllPaths) {
            out.violations.push_back(
                {CheckKind::missingFlush, Severity::warning, s,
                 "flushed on some paths only"});
        }
    }

    // (b) Every flush must be ordered by a later fence, or the line
    // can still be lost at the commit point.
    for (const auto& fl : flushes) {
        out.flushesChecked++;
        bool onAllPaths = false;
        bool onSomePath = false;
        for (const auto& fn : fences) {
            if (dom.alwaysFollows(fl, fn))
                onAllPaths = true;
            else if (dom.mayFollow(fl, fn))
                onSomePath = true;
        }
        if (!onAllPaths && !onSomePath) {
            out.violations.push_back(
                {CheckKind::missingFence, Severity::error, fl,
                 "no fence follows this flush"});
        } else if (!onAllPaths) {
            out.violations.push_back(
                {CheckKind::missingFence, Severity::warning, fl,
                 "fenced on some paths only"});
        }
    }

    // (c) Two must-aliasing flushes with no re-dirtying store in
    // between: the second clwb is pure overhead.
    for (const auto& f1 : flushes) {
        for (const auto& f2 : flushes) {
            if (f1 == f2 || !dom.dominates(f1, f2))
                continue;
            if (aa.alias(f.at(f1).ptr, f.at(f2).ptr) != Alias::must)
                continue;
            bool redirtied = false;
            for (const auto& s : stores) {
                if (aa.alias(f.at(s).ptr, f.at(f2).ptr) == Alias::no)
                    continue;
                if (dom.mayFollow(f1, s) && dom.mayFollow(s, f2)) {
                    redirtied = true;
                    break;
                }
            }
            if (!redirtied) {
                out.violations.push_back(
                    {CheckKind::doubleFlush, Severity::warning, f2,
                     "line already flushed and not re-dirtied"});
            }
        }
    }

    // (d) Every refined clobber site needs a dominating clobber_log
    // of its location; a clobber_log covering no site is dead weight.
    cir::ClobberResult clob = cir::analyzeClobbers(f);
    for (const auto& site : clob.refinedSites) {
        if (aa.basedOnAlloca(f.at(site).ptr))
            continue;  // volatile scratch: never logged
        out.clobberSitesChecked++;
        bool logged = false;
        for (const auto& c : clogs) {
            if (aa.alias(f.at(c).ptr, f.at(site).ptr) == Alias::must &&
                dom.dominates(c, site)) {
                logged = true;
                break;
            }
        }
        if (!logged) {
            out.violations.push_back(
                {CheckKind::unloggedClobber, Severity::error, site,
                 "refined clobber site has no dominating clobber_log"});
        }
    }
    for (const auto& c : clogs) {
        bool useful = false;
        for (const auto& site : clob.refinedSites) {
            if (aa.alias(f.at(c).ptr, f.at(site).ptr) == Alias::must &&
                dom.dominates(c, site)) {
                useful = true;
                break;
            }
        }
        if (!useful) {
            out.violations.push_back(
                {CheckKind::unneededClobberLog, Severity::info, c,
                 "logs a location no refined site clobbers"});
        }
    }

    return out;
}

cir::Function
instrumentPersistency(const Function& f, const cir::ClobberResult& res)
{
    AliasAnalysis aa(f);
    std::set<std::pair<int, int>> sites;
    for (const auto& s : res.refinedSites)
        sites.emplace(s.block, s.index);

    Function out(f.name());
    for (const auto& block : f.blocks())
        out.addBlock(block.label);
    for (int b = 0; b < static_cast<int>(f.blocks().size()); b++) {
        for (int s : f.blocks()[b].succs)
            out.addEdge(b, s);
    }

    for (int b = 0; b < static_cast<int>(f.blocks().size()); b++) {
        const auto& instrs = f.blocks()[b].instrs;
        for (int i = 0; i < static_cast<int>(instrs.size()); i++) {
            Instr copy = instrs[i];
            bool nvmStore = copy.op == Op::store &&
                            !aa.basedOnAlloca(copy.ptr);
            if (nvmStore && sites.count({b, i}))
                cir::emitClobberLog(out, b, copy.ptr,
                                    "clobber_log " + copy.name);
            // append() re-derives result ids; the intrinsics define
            // none, so the original numbering is preserved.
            copy.result = cir::kNoValue;
            out.append(b, copy);
            if (nvmStore)
                cir::emitFlush(out, b, copy.ptr,
                               "flush " + copy.name);
        }
    }
    for (int b = 0; b < static_cast<int>(f.blocks().size()); b++) {
        bool leaves = false;
        for (int s : f.blocks()[b].succs)
            leaves = leaves || s != b;
        if (!leaves)
            cir::emitFence(out, b, "commit fence");
    }
    return out;
}

}  // namespace cnvm::analysis
