/**
 * @file
 * Persistent AVL tree mapping uint64 keys to uint64 values.
 *
 * STAMP's vacation benchmark can run its reservation tables on either
 * red-black trees or this AVL tree (paper Section 5.7 / Figure 11).
 * Values are typically PPtr offsets of table records.
 */
#ifndef CNVM_STRUCTURES_AVLTREE_H
#define CNVM_STRUCTURES_AVLTREE_H

#include "nvm/pptr.h"
#include "structures/kv.h"
#include "txn/tx.h"

namespace cnvm::ds {

struct AvlNode {
    uint64_t key;
    uint64_t value;
    nvm::PPtr<AvlNode> left;
    nvm::PPtr<AvlNode> right;
    int64_t height;
};

struct PAvlTree {
    nvm::PPtr<AvlNode> root;
    uint64_t count;
};

/**
 * Unlike the KvStructure wrappers, AvlMap runs *inside* an enclosing
 * transaction (vacation transactions span several tables), so every
 * method takes the caller's Tx.
 */
class AvlMap {
 public:
    /** Create a fresh tree inside the caller's transaction. */
    static nvm::PPtr<PAvlTree> create(txn::Tx& tx);

    explicit AvlMap(nvm::PPtr<PAvlTree> root) : root_(root) {}

    nvm::PPtr<PAvlTree> root() const { return root_; }

    /** Insert or update. @return true if the key was new. */
    bool put(txn::Tx& tx, uint64_t key, uint64_t value);

    /** @return true and set *value if found. */
    bool get(txn::Tx& tx, uint64_t key, uint64_t* value) const;

    /** @return true if the key existed. */
    bool erase(txn::Tx& tx, uint64_t key);

    /** Greatest key <= `key` (predecessor query, used by vacation). */
    bool floor(txn::Tx& tx, uint64_t key, uint64_t* foundKey,
               uint64_t* value) const;

    uint64_t size(txn::Tx& tx) const;

    /** Direct-traversal invariant check. @return height or -1. */
    long validate() const;

 private:
    nvm::PPtr<PAvlTree> root_;
};

}  // namespace cnvm::ds

#endif  // CNVM_STRUCTURES_AVLTREE_H
