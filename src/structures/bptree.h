/**
 * @file
 * Persistent B+Tree: keys in internal nodes, key+value in the leaves,
 * 32-byte keys (the paper's B+Tree benchmark uses 32-byte keys where
 * the other structures use 8).
 *
 * Concurrency (paper: "reader-writer locks at the granularity of
 * individual nodes" — the structure that scales best in Figure 6):
 * under the logical-thread executor, contention is modeled with
 * key-sharded reader-writer locks, which for uniform keys behaves
 * like per-leaf locking; under real OS threads a tree-wide lock
 * additionally guarantees exclusion (splits touch shared internal
 * nodes). Transactions themselves stay lock-free for recovery.
 *
 * Inserts split full nodes proactively on the way down, so a
 * transaction never needs to propagate splits upward.
 */
#ifndef CNVM_STRUCTURES_BPTREE_H
#define CNVM_STRUCTURES_BPTREE_H

#include <shared_mutex>

#include "nvm/pptr.h"
#include "sim/lock.h"
#include "structures/kv.h"

namespace cnvm::ds {

constexpr size_t kBpKeyLen = 32;
constexpr unsigned kBpMaxKeys = 8;

struct BpNode {
    uint32_t isLeaf;
    uint32_t nKeys;
    uint8_t keys[kBpMaxKeys][kBpKeyLen];
    nvm::PPtr<BpNode> kids[kBpMaxKeys + 1];  ///< internal only
    nvm::PPtr<uint8_t> vals[kBpMaxKeys];     ///< leaf only
    uint32_t valLens[kBpMaxKeys];
    nvm::PPtr<BpNode> nextLeaf;
};

struct PBpTree {
    nvm::PPtr<BpNode> root;
    uint64_t count;
};

class BpTree : public KvStructure {
 public:
    BpTree(txn::Engine& eng, uint64_t rootOff = 0,
           const KvConfig& cfg = KvConfig{});

    const char* name() const override { return "bptree"; }
    uint64_t rootOff() const override { return root_.raw(); }

    void insert(std::string_view key, std::string_view val) override;
    bool lookup(std::string_view key, LookupResult* out) override;
    bool remove(std::string_view key) override;

    uint64_t size() const { return root_->count; }

    /**
     * Validate the tree by direct traversal (tests): sorted keys,
     * uniform leaf depth, correct separator routing.
     * @return entry count, or -1 on violation.
     */
    long validate() const;

    bool selfCheck() const override { return validate() >= 0; }

 private:
    txn::Engine& eng_;
    nvm::PPtr<PBpTree> root_;
    sim::LockShard keyLocks_;
    std::shared_mutex realLock_;  ///< whole-tree lock, OS-thread mode
};

}  // namespace cnvm::ds

#endif  // CNVM_STRUCTURES_BPTREE_H
