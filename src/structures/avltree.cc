#include "structures/avltree.h"

#include <algorithm>

#include "common/error.h"

namespace cnvm::ds {

namespace {

using NP = nvm::PPtr<AvlNode>;

int64_t
heightOf(txn::Tx& tx, NP n)
{
    return n.isNull() ? 0 : tx.ld(n->height);
}

void
updateHeight(txn::Tx& tx, NP n)
{
    int64_t h = 1 + std::max(heightOf(tx, tx.ld(n->left)),
                             heightOf(tx, tx.ld(n->right)));
    tx.st(n->height, h);
}

int64_t
balanceOf(txn::Tx& tx, NP n)
{
    return heightOf(tx, tx.ld(n->left)) -
           heightOf(tx, tx.ld(n->right));
}

NP
rotateRight(txn::Tx& tx, NP y)
{
    NP x = tx.ld(y->left);
    NP t2 = tx.ld(x->right);
    tx.st(x->right, y);
    tx.st(y->left, t2);
    updateHeight(tx, y);
    updateHeight(tx, x);
    return x;
}

NP
rotateLeft(txn::Tx& tx, NP x)
{
    NP y = tx.ld(x->right);
    NP t2 = tx.ld(y->left);
    tx.st(y->left, x);
    tx.st(x->right, t2);
    updateHeight(tx, x);
    updateHeight(tx, y);
    return y;
}

NP
rebalance(txn::Tx& tx, NP n)
{
    updateHeight(tx, n);
    int64_t b = balanceOf(tx, n);
    if (b > 1) {
        if (balanceOf(tx, tx.ld(n->left)) < 0)
            tx.st(n->left, rotateLeft(tx, tx.ld(n->left)));
        return rotateRight(tx, n);
    }
    if (b < -1) {
        if (balanceOf(tx, tx.ld(n->right)) > 0)
            tx.st(n->right, rotateRight(tx, tx.ld(n->right)));
        return rotateLeft(tx, n);
    }
    return n;
}

NP
insertRec(txn::Tx& tx, NP n, uint64_t key, uint64_t value, bool* added)
{
    if (n.isNull()) {
        auto fresh = tx.pnew<AvlNode>();
        tx.st(fresh->key, key);
        tx.st(fresh->value, value);
        tx.st(fresh->height, int64_t(1));
        *added = true;
        return fresh;
    }
    uint64_t k = tx.ld(n->key);
    if (key == k) {
        tx.st(n->value, value);
        *added = false;
        return n;
    }
    if (key < k)
        tx.st(n->left, insertRec(tx, tx.ld(n->left), key, value, added));
    else
        tx.st(n->right,
              insertRec(tx, tx.ld(n->right), key, value, added));
    return rebalance(tx, n);
}

NP
eraseRec(txn::Tx& tx, NP n, uint64_t key, bool* removed)
{
    if (n.isNull()) {
        *removed = false;
        return n;
    }
    uint64_t k = tx.ld(n->key);
    if (key < k) {
        tx.st(n->left, eraseRec(tx, tx.ld(n->left), key, removed));
    } else if (key > k) {
        tx.st(n->right, eraseRec(tx, tx.ld(n->right), key, removed));
    } else {
        *removed = true;
        NP l = tx.ld(n->left);
        NP r = tx.ld(n->right);
        if (l.isNull() || r.isNull()) {
            NP child = l.isNull() ? r : l;
            tx.pfree(n);
            return child;
        }
        // Two children: replace with the in-order successor's payload
        // and delete the successor from the right subtree.
        NP succ = r;
        for (NP sl = tx.ld(succ->left); !sl.isNull();
             sl = tx.ld(succ->left)) {
            succ = sl;
        }
        tx.st(n->key, tx.ld(succ->key));
        tx.st(n->value, tx.ld(succ->value));
        bool dummy = false;
        tx.st(n->right,
              eraseRec(tx, r, tx.ld(succ->key), &dummy));
    }
    return rebalance(tx, n);
}

long
validateRec(const AvlNode* n, uint64_t lo, uint64_t hi, bool* ok)
{
    if (n == nullptr)
        return 0;
    if (n->key < lo || n->key > hi)
        *ok = false;
    long lh = validateRec(n->left.get(), lo,
                          n->key == 0 ? 0 : n->key - 1, ok);
    long rh = validateRec(n->right.get(), n->key + 1, hi, ok);
    if (lh - rh > 1 || rh - lh > 1)
        *ok = false;
    long h = 1 + std::max(lh, rh);
    if (n->height != h)
        *ok = false;
    return h;
}

}  // namespace

nvm::PPtr<PAvlTree>
AvlMap::create(txn::Tx& tx)
{
    return tx.pnew<PAvlTree>();
}

bool
AvlMap::put(txn::Tx& tx, uint64_t key, uint64_t value)
{
    bool added = false;
    tx.st(root_->root,
          insertRec(tx, tx.ld(root_->root), key, value, &added));
    if (added)
        tx.st(root_->count, tx.ld(root_->count) + 1);
    return added;
}

bool
AvlMap::get(txn::Tx& tx, uint64_t key, uint64_t* value) const
{
    NP cur = tx.ld(root_->root);
    while (!cur.isNull()) {
        uint64_t k = tx.ld(cur->key);
        if (key == k) {
            if (value != nullptr)
                *value = tx.ld(cur->value);
            return true;
        }
        cur = key < k ? tx.ld(cur->left) : tx.ld(cur->right);
    }
    return false;
}

bool
AvlMap::erase(txn::Tx& tx, uint64_t key)
{
    bool removed = false;
    tx.st(root_->root,
          eraseRec(tx, tx.ld(root_->root), key, &removed));
    if (removed)
        tx.st(root_->count, tx.ld(root_->count) - 1);
    return removed;
}

bool
AvlMap::floor(txn::Tx& tx, uint64_t key, uint64_t* foundKey,
              uint64_t* value) const
{
    NP cur = tx.ld(root_->root);
    bool found = false;
    while (!cur.isNull()) {
        uint64_t k = tx.ld(cur->key);
        if (k == key) {
            found = true;
            if (foundKey != nullptr)
                *foundKey = k;
            if (value != nullptr)
                *value = tx.ld(cur->value);
            return true;
        }
        if (k < key) {
            found = true;
            if (foundKey != nullptr)
                *foundKey = k;
            if (value != nullptr)
                *value = tx.ld(cur->value);
            cur = tx.ld(cur->right);
        } else {
            cur = tx.ld(cur->left);
        }
    }
    return found;
}

uint64_t
AvlMap::size(txn::Tx& tx) const
{
    return tx.ld(root_->count);
}

long
AvlMap::validate() const
{
    bool ok = true;
    long h = validateRec(root_->root.get(), 0, ~0ULL, &ok);
    return ok ? h : -1;
}

}  // namespace cnvm::ds
