#include "structures/bptree.h"

#include <cstring>
#include <mutex>

#include "common/error.h"
#include "common/rand.h"
#include "txn/txrun.h"

namespace cnvm::ds {

namespace {

using NP = nvm::PPtr<BpNode>;

/** Fixed-size key image: input padded with zeros to 32 bytes. */
struct KeyImage {
    uint8_t b[kBpKeyLen];
};

KeyImage
keyImage(std::string_view key)
{
    KeyImage k{};
    CNVM_CHECK(key.size() <= kBpKeyLen, "B+Tree key too long");
    std::memcpy(k.b, key.data(), key.size());
    return k;
}

/** Interposed load of slot `i`'s key. */
KeyImage
loadKey(txn::Tx& tx, NP n, unsigned i)
{
    KeyImage k;
    tx.ldBytes(k.b, n->keys[i], kBpKeyLen);
    return k;
}

int
cmpKeys(const KeyImage& a, const KeyImage& b)
{
    return std::memcmp(a.b, b.b, kBpKeyLen);
}

/** First slot whose key is >= `key` (== nKeys if none). */
unsigned
lowerBound(txn::Tx& tx, NP n, const KeyImage& key)
{
    unsigned nk = tx.ld(n->nKeys);
    unsigned i = 0;
    while (i < nk && cmpKeys(loadKey(tx, n, i), key) < 0)
        i++;
    return i;
}

nvm::PPtr<uint8_t>
makeValue(txn::Tx& tx, std::string_view val)
{
    auto buf = nvm::PPtr<uint8_t>(tx.pmallocOff(val.size()));
    tx.stBytes(buf.get(), val.data(), val.size());
    return buf;
}

/** Move key/val/kid slots within or between nodes (interposed). */
void
copySlots(txn::Tx& tx, NP dst, unsigned dstIdx, NP src,
          unsigned srcIdx, unsigned n, bool leaf)
{
    if (n == 0)
        return;
    // Stage through a stack buffer so overlapping moves are safe.
    uint8_t keys[kBpMaxKeys][kBpKeyLen];
    nvm::PPtr<uint8_t> vals[kBpMaxKeys];
    uint32_t lens[kBpMaxKeys];
    nvm::PPtr<BpNode> kids[kBpMaxKeys + 1];
    tx.ldBytes(keys, src->keys[srcIdx], n * kBpKeyLen);
    if (leaf) {
        tx.ldBytes(vals, &src->vals[srcIdx], n * sizeof(vals[0]));
        tx.ldBytes(lens, &src->valLens[srcIdx], n * sizeof(lens[0]));
    } else {
        tx.ldBytes(kids, &src->kids[srcIdx], (n + 1) * sizeof(kids[0]));
    }
    tx.stBytes(dst->keys[dstIdx], keys, n * kBpKeyLen);
    if (leaf) {
        tx.stBytes(&dst->vals[dstIdx], vals, n * sizeof(vals[0]));
        tx.stBytes(&dst->valLens[dstIdx], lens, n * sizeof(lens[0]));
    } else {
        tx.stBytes(&dst->kids[dstIdx], kids, (n + 1) * sizeof(kids[0]));
    }
}

/**
 * Split the full child `kids[idx]` of `parent` (parent not full).
 * Internal split moves the median up; leaf split copies the upper
 * half and promotes its first key as separator.
 */
void
splitChild(txn::Tx& tx, NP parent, unsigned idx)
{
    NP child = tx.ld(parent->kids[idx]);
    bool leaf = tx.ld(child->isLeaf) != 0;
    auto right = tx.pnew<BpNode>();
    tx.st(right->isLeaf, tx.ld(child->isLeaf));

    constexpr unsigned kMid = kBpMaxKeys / 2;
    KeyImage sep;
    unsigned rightCount;
    if (leaf) {
        rightCount = kBpMaxKeys - kMid;
        copySlots(tx, right, 0, child, kMid, rightCount, true);
        sep = loadKey(tx, right, 0);
        tx.st(right->nextLeaf, tx.ld(child->nextLeaf));
        tx.st(child->nextLeaf, NP(right));
        tx.st(child->nKeys, kMid);
    } else {
        sep = loadKey(tx, child, kMid);
        rightCount = kBpMaxKeys - kMid - 1;
        copySlots(tx, right, 0, child, kMid + 1, rightCount, false);
        tx.st(child->nKeys, kMid);
    }
    tx.st(right->nKeys, rightCount);

    // Shift parent slots right to make room at idx.
    unsigned pk = tx.ld(parent->nKeys);
    for (unsigned i = pk; i > idx; i--) {
        KeyImage k = loadKey(tx, parent, i - 1);
        tx.stBytes(parent->keys[i], k.b, kBpKeyLen);
        tx.st(parent->kids[i + 1], tx.ld(parent->kids[i]));
    }
    tx.stBytes(parent->keys[idx], sep.b, kBpKeyLen);
    tx.st(parent->kids[idx + 1], NP(right));
    tx.st(parent->nKeys, pk + 1);
}

void
bpPutFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto t = nvm::PPtr<PBpTree>(a.get<uint64_t>());
    KeyImage key = keyImage(a.getString());
    auto val = a.getString();

    NP root = tx.ld(t->root);
    if (root.isNull()) {
        root = tx.pnew<BpNode>();
        tx.st(root->isLeaf, 1u);
        tx.st(t->root, root);
    }
    if (tx.ld(root->nKeys) == kBpMaxKeys) {
        // Grow: new root with the old root as its only child.
        auto newRoot = tx.pnew<BpNode>();
        tx.st(newRoot->isLeaf, 0u);
        tx.st(newRoot->kids[0], root);
        tx.st(t->root, newRoot);
        splitChild(tx, newRoot, 0);
        root = newRoot;
    }

    // Descend, splitting full children proactively.
    NP cur = root;
    while (tx.ld(cur->isLeaf) == 0) {
        unsigned i = lowerBound(tx, cur, key);
        // Route equal keys to the right subtree (leaf sep = first
        // right key).
        if (i < tx.ld(cur->nKeys) &&
            cmpKeys(loadKey(tx, cur, i), key) == 0) {
            i++;
        }
        NP child = tx.ld(cur->kids[i]);
        if (tx.ld(child->nKeys) == kBpMaxKeys) {
            splitChild(tx, cur, i);
            if (cmpKeys(loadKey(tx, cur, i), key) <= 0)
                i++;
            child = tx.ld(cur->kids[i]);
        }
        cur = child;
    }

    unsigned i = lowerBound(tx, cur, key);
    unsigned nk = tx.ld(cur->nKeys);
    if (i < nk && cmpKeys(loadKey(tx, cur, i), key) == 0) {
        // Replace.
        auto old = tx.ld(cur->vals[i]);
        tx.st(cur->vals[i], makeValue(tx, val));
        tx.st(cur->valLens[i], static_cast<uint32_t>(val.size()));
        if (!old.isNull())
            tx.pfree(old.raw());
        return;
    }
    // Shift and insert.
    if (i < nk)
        copySlots(tx, cur, i + 1, cur, i, nk - i, true);
    tx.stBytes(cur->keys[i], key.b, kBpKeyLen);
    tx.st(cur->vals[i], makeValue(tx, val));
    tx.st(cur->valLens[i], static_cast<uint32_t>(val.size()));
    tx.st(cur->nKeys, nk + 1);
    tx.st(t->count, tx.ld(t->count) + 1);
}

void
bpGetFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto t = nvm::PPtr<PBpTree>(a.get<uint64_t>());
    KeyImage key = keyImage(a.getString());
    auto* out = reinterpret_cast<LookupResult*>(a.get<uint64_t>());
    if (tx.recovering())
        return;  // out points into the crashed process's stack
    out->found = false;

    NP cur = tx.ld(t->root);
    if (cur.isNull())
        return;
    while (tx.ld(cur->isLeaf) == 0) {
        unsigned i = lowerBound(tx, cur, key);
        if (i < tx.ld(cur->nKeys) &&
            cmpKeys(loadKey(tx, cur, i), key) == 0) {
            i++;
        }
        cur = tx.ld(cur->kids[i]);
    }
    unsigned i = lowerBound(tx, cur, key);
    if (i >= tx.ld(cur->nKeys) ||
        cmpKeys(loadKey(tx, cur, i), key) != 0) {
        return;
    }
    out->found = true;
    out->len = tx.ld(cur->valLens[i]);
    CNVM_CHECK(out->len <= kMaxValLen, "value too long");
    tx.ldBytes(out->value, tx.ld(cur->vals[i]).get(), out->len);
}

/**
 * Removal simply deletes the leaf slot (no rebalancing/merging —
 * B+Trees under insert-dominated workloads tolerate sparse leaves;
 * the paper's YCSB benchmarks never shrink the tree).
 */
void
bpDelFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto t = nvm::PPtr<PBpTree>(a.get<uint64_t>());
    KeyImage key = keyImage(a.getString());
    auto* out = reinterpret_cast<bool*>(a.get<uint64_t>());
    if (tx.recovering())
        out = nullptr;  // dangling: the crashed caller's stack is gone

    NP cur = tx.ld(t->root);
    if (cur.isNull()) {
        if (out != nullptr)
            *out = false;
        return;
    }
    while (tx.ld(cur->isLeaf) == 0) {
        unsigned i = lowerBound(tx, cur, key);
        if (i < tx.ld(cur->nKeys) &&
            cmpKeys(loadKey(tx, cur, i), key) == 0) {
            i++;
        }
        cur = tx.ld(cur->kids[i]);
    }
    unsigned i = lowerBound(tx, cur, key);
    unsigned nk = tx.ld(cur->nKeys);
    if (i >= nk || cmpKeys(loadKey(tx, cur, i), key) != 0) {
        if (out != nullptr)
            *out = false;
        return;
    }
    auto old = tx.ld(cur->vals[i]);
    if (i + 1 < nk)
        copySlots(tx, cur, i, cur, i + 1, nk - i - 1, true);
    tx.st(cur->nKeys, nk - 1);
    if (!old.isNull())
        tx.pfree(old.raw());
    tx.st(t->count, tx.ld(t->count) - 1);
    if (out != nullptr)
        *out = true;
}

const txn::FuncId kBpPut = txn::registerTxFunc("bp_put", bpPutFn);
const txn::FuncId kBpGet = txn::registerTxFunc("bp_get", bpGetFn);
const txn::FuncId kBpDel = txn::registerTxFunc("bp_del", bpDelFn);

/** Direct traversal for invariant checking. */
long
validateRec(const BpNode* n, const uint8_t* lo, const uint8_t* hi,
            int depth, int* leafDepth, bool* ok)
{
    if (n == nullptr) {
        *ok = false;
        return 0;
    }
    long count = 0;
    unsigned nk = n->nKeys;
    if (nk > kBpMaxKeys) {
        *ok = false;
        return 0;
    }
    for (unsigned i = 0; i + 1 < nk; i++) {
        if (std::memcmp(n->keys[i], n->keys[i + 1], kBpKeyLen) >= 0)
            *ok = false;
    }
    for (unsigned i = 0; i < nk; i++) {
        if (lo != nullptr && std::memcmp(n->keys[i], lo, kBpKeyLen) < 0)
            *ok = false;
        if (hi != nullptr &&
            std::memcmp(n->keys[i], hi, kBpKeyLen) >= 0) {
            *ok = false;
        }
    }
    if (n->isLeaf != 0) {
        if (*leafDepth < 0)
            *leafDepth = depth;
        else if (*leafDepth != depth)
            *ok = false;
        return nk;
    }
    for (unsigned i = 0; i <= nk; i++) {
        const uint8_t* clo = i == 0 ? lo : n->keys[i - 1];
        const uint8_t* chi = i == nk ? hi : n->keys[i];
        count += validateRec(n->kids[i].get(), clo, chi, depth + 1,
                             leafDepth, ok);
    }
    return count;
}

}  // namespace

BpTree::BpTree(txn::Engine& eng, uint64_t rootOff, const KvConfig& cfg)
    : eng_(eng), keyLocks_(cfg.lockShards)
{
    if (rootOff == 0)
        rootOff = rawCreate(eng_, sizeof(PBpTree));
    root_ = nvm::PPtr<PBpTree>(rootOff);
}

void
BpTree::insert(std::string_view key, std::string_view val)
{
    auto& kl = keyLocks_.forOffset(fnv1a(key.data(), key.size()) << 4);
    std::lock_guard<sim::SimSharedMutex> g(kl);
    if (sim::cur() == nullptr) {
        std::lock_guard<std::shared_mutex> rg(realLock_);
        txn::run(eng_, kBpPut, root_.raw(), key, val);
    } else {
        txn::run(eng_, kBpPut, root_.raw(), key, val);
    }
}

bool
BpTree::lookup(std::string_view key, LookupResult* out)
{
    auto& kl = keyLocks_.forOffset(fnv1a(key.data(), key.size()) << 4);
    std::shared_lock<sim::SimSharedMutex> g(kl);
    if (sim::cur() == nullptr) {
        std::shared_lock<std::shared_mutex> rg(realLock_);
        txn::run(eng_, kBpGet, root_.raw(), key,
                 reinterpret_cast<uint64_t>(out));
    } else {
        txn::run(eng_, kBpGet, root_.raw(), key,
                 reinterpret_cast<uint64_t>(out));
    }
    return out->found;
}

bool
BpTree::remove(std::string_view key)
{
    auto& kl = keyLocks_.forOffset(fnv1a(key.data(), key.size()) << 4);
    std::lock_guard<sim::SimSharedMutex> g(kl);
    bool removed = false;
    if (sim::cur() == nullptr) {
        std::lock_guard<std::shared_mutex> rg(realLock_);
        txn::run(eng_, kBpDel, root_.raw(), key,
                 reinterpret_cast<uint64_t>(&removed));
    } else {
        txn::run(eng_, kBpDel, root_.raw(), key,
                 reinterpret_cast<uint64_t>(&removed));
    }
    return removed;
}

long
BpTree::validate() const
{
    const BpNode* r = root_->root.get();
    if (r == nullptr)
        return 0;
    bool ok = true;
    int leafDepth = -1;
    long count =
        validateRec(r, nullptr, nullptr, 0, &leafDepth, &ok);
    return ok ? count : -1;
}

}  // namespace cnvm::ds
