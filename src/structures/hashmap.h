/**
 * @file
 * Persistent hash map, modeled on the PMDK-repository transactional
 * hashmap the paper adapts (Section 5.2): 256 instances ("shards"),
 * each protected by its own reader-writer lock, each with its own
 * bucket array and chains. An insert of a new key prepends to a
 * bucket chain, so the only clobbered input is the bucket head
 * pointer — this is why the paper measures clobber_log count 1 /
 * 8 bytes for hashmap inserts.
 */
#ifndef CNVM_STRUCTURES_HASHMAP_H
#define CNVM_STRUCTURES_HASHMAP_H

#include <vector>

#include "nvm/pptr.h"
#include "sim/lock.h"
#include "structures/kv.h"

namespace cnvm::ds {

struct HmNode {
    nvm::PPtr<HmNode> next;
    uint32_t keyLen;
    uint32_t valLen;
    // key bytes then value bytes inline

    char*
    keyBytes()
    {
        return reinterpret_cast<char*>(this + 1);
    }
    /**
     * @param klen the key length *as loaded through the transaction*
     * — reading this->keyLen directly would bypass the runtime's read
     * interposition (and see stale home memory under redo logging).
     */
    char*
    valBytes(uint32_t klen)
    {
        return keyBytes() + klen;
    }
};

/** Persistent root: shard/bucket geometry + flat bucket-head array. */
struct PHashMap {
    uint64_t nShards;
    uint64_t bucketsPerShard;
    uint64_t count;
    // nvm::PPtr<HmNode> buckets[nShards * bucketsPerShard] follows

    nvm::PPtr<HmNode>*
    buckets()
    {
        return reinterpret_cast<nvm::PPtr<HmNode>*>(this + 1);
    }
};

class HashMap : public KvStructure {
 public:
    HashMap(txn::Engine& eng, uint64_t rootOff = 0,
            const KvConfig& cfg = KvConfig{});

    const char* name() const override { return "hashmap"; }
    uint64_t rootOff() const override { return root_.raw(); }

    void insert(std::string_view key, std::string_view val) override;
    bool lookup(std::string_view key, LookupResult* out) override;
    bool remove(std::string_view key) override;

    /** Entry count by direct traversal (no persistent counter on the
     *  insert path — it would add a clobber entry per insert). */
    uint64_t size() const;

 private:
    size_t shardOf(std::string_view key) const;

    txn::Engine& eng_;
    nvm::PPtr<PHashMap> root_;
    std::vector<sim::SimSharedMutex> shardLocks_;
};

}  // namespace cnvm::ds

#endif  // CNVM_STRUCTURES_HASHMAP_H
