/**
 * @file
 * Persistent singly-linked list — the paper's running example
 * (Figure 2a) as a library structure. New keys are prepended, which
 * makes the head pointer the single clobbered input of an insert.
 * A single global lock serializes operations.
 */
#ifndef CNVM_STRUCTURES_LIST_H
#define CNVM_STRUCTURES_LIST_H

#include "nvm/pptr.h"
#include "sim/lock.h"
#include "structures/kv.h"
#include "txn/txrun.h"

namespace cnvm::ds {

/** Persistent node: header followed by inline key and value bytes. */
struct ListNode {
    nvm::PPtr<ListNode> next;
    uint32_t keyLen;
    uint32_t valLen;
    // key bytes, then value bytes, follow inline

    char*
    keyBytes()
    {
        return reinterpret_cast<char*>(this + 1);
    }
    /**
     * @param klen the key length *as loaded through the transaction*
     * — reading this->keyLen directly would bypass the runtime's read
     * interposition (and see stale home memory under redo logging).
     */
    char*
    valBytes(uint32_t klen)
    {
        return keyBytes() + klen;
    }
};

struct PList {
    nvm::PPtr<ListNode> head;
    uint64_t count;
};

class List : public KvStructure {
 public:
    /** Create a fresh persistent list (its own transaction). */
    List(txn::Engine& eng, uint64_t rootOff = 0);

    const char* name() const override { return "list"; }
    uint64_t rootOff() const override { return root_.raw(); }

    void insert(std::string_view key, std::string_view val) override;
    bool lookup(std::string_view key, LookupResult* out) override;
    bool remove(std::string_view key) override;

    /** Entries currently in the list (direct read). */
    uint64_t size() const { return root_->count; }

 private:
    txn::Engine& eng_;
    nvm::PPtr<PList> root_;
    sim::SimSharedMutex lock_;
};

}  // namespace cnvm::ds

#endif  // CNVM_STRUCTURES_LIST_H
