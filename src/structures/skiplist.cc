#include "structures/skiplist.h"

#include <cstring>
#include <mutex>

#include "common/error.h"
#include "common/rand.h"
#include "txn/txrun.h"

namespace cnvm::ds {

namespace {

/** Deterministic tower height: geometric(1/2) from the key hash. */
uint32_t
levelForKey(uint64_t key)
{
    uint64_t h = mixHash(key ^ 0x5be1f00dULL);
    uint32_t lvl = 1;
    while ((h & 1) != 0 && lvl < kSkipMaxLevel) {
        lvl++;
        h >>= 1;
    }
    return lvl;
}

/**
 * Collect the predecessor of `key` at every level.
 * @return the node at the bottom level with node.key >= key (or null).
 */
nvm::PPtr<SkNode>
findPredecessors(txn::Tx& tx, nvm::PPtr<PSkiplist> root, uint64_t key,
                 nvm::PPtr<SkNode> preds[kSkipMaxLevel])
{
    auto cur = nvm::PPtr<SkNode>::of(&root->head);
    for (int lvl = kSkipMaxLevel - 1; lvl >= 0; lvl--) {
        for (auto nxt = tx.ld(cur->next[lvl]); !nxt.isNull();
             nxt = tx.ld(cur->next[lvl])) {
            if (tx.ld(nxt->key) < key)
                cur = nxt;
            else
                break;
        }
        preds[lvl] = cur;
    }
    return tx.ld(cur->next[0]);
}

void
skPutFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PSkiplist>(a.get<uint64_t>());
    auto key = a.get<uint64_t>();
    auto val = a.getString();

    nvm::PPtr<SkNode> preds[kSkipMaxLevel];
    auto hit = findPredecessors(tx, root, key, preds);
    if (!hit.isNull() && tx.ld(hit->key) == key) {
        if (tx.ld(hit->valLen) == val.size()) {
            tx.stBytes(hit->valBytes(), val.data(), val.size());
            return;
        }
        // Different value size: splice in a replacement node.
        uint32_t lvl = tx.ld(hit->level);
        auto fresh = tx.pnew<SkNode>(val.size());
        tx.st(fresh->key, key);
        tx.st(fresh->level, lvl);
        tx.st(fresh->valLen, static_cast<uint32_t>(val.size()));
        tx.stBytes(fresh->valBytes(), val.data(), val.size());
        for (uint32_t i = 0; i < lvl; i++) {
            tx.st(fresh->next[i], tx.ld(hit->next[i]));
            tx.st(preds[i]->next[i], fresh);
        }
        tx.pfree(hit);
        return;
    }

    uint32_t lvl = levelForKey(key);
    auto n = tx.pnew<SkNode>(val.size());
    tx.st(n->key, key);
    tx.st(n->level, lvl);
    tx.st(n->valLen, static_cast<uint32_t>(val.size()));
    tx.stBytes(n->valBytes(), val.data(), val.size());
    // Splice: each touched predecessor next-pointer is a clobbered
    // input (it was read during the search).
    for (uint32_t i = 0; i < lvl; i++) {
        tx.st(n->next[i], tx.ld(preds[i]->next[i]));
        tx.st(preds[i]->next[i], n);
    }
    tx.st(root->count, tx.ld(root->count) + 1);
}

void
skDelFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PSkiplist>(a.get<uint64_t>());
    auto key = a.get<uint64_t>();
    auto* out = reinterpret_cast<bool*>(a.get<uint64_t>());
    if (tx.recovering())
        out = nullptr;  // dangling: the crashed caller's stack is gone

    nvm::PPtr<SkNode> preds[kSkipMaxLevel];
    auto hit = findPredecessors(tx, root, key, preds);
    if (hit.isNull() || tx.ld(hit->key) != key) {
        if (out != nullptr)
            *out = false;
        return;
    }
    uint32_t lvl = tx.ld(hit->level);
    for (uint32_t i = 0; i < lvl; i++) {
        if (tx.ld(preds[i]->next[i]) == hit)
            tx.st(preds[i]->next[i], tx.ld(hit->next[i]));
    }
    tx.st(root->count, tx.ld(root->count) - 1);
    tx.pfree(hit);
    if (out != nullptr)
        *out = true;
}

void
skGetFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PSkiplist>(a.get<uint64_t>());
    auto key = a.get<uint64_t>();
    auto* out = reinterpret_cast<LookupResult*>(a.get<uint64_t>());
    if (tx.recovering())
        return;  // out points into the crashed process's stack
    out->found = false;

    nvm::PPtr<SkNode> preds[kSkipMaxLevel];
    auto hit = findPredecessors(tx, root, key, preds);
    if (hit.isNull() || tx.ld(hit->key) != key)
        return;
    out->found = true;
    out->len = tx.ld(hit->valLen);
    CNVM_CHECK(out->len <= kMaxValLen, "value too long");
    tx.ldBytes(out->value, hit->valBytes(), out->len);
}

const txn::FuncId kSkPut = txn::registerTxFunc("sk_put", skPutFn);
const txn::FuncId kSkDel = txn::registerTxFunc("sk_del", skDelFn);
const txn::FuncId kSkGet = txn::registerTxFunc("sk_get", skGetFn);

}  // namespace

Skiplist::Skiplist(txn::Engine& eng, uint64_t rootOff) : eng_(eng)
{
    if (rootOff == 0)
        rootOff = rawCreate(eng_, sizeof(PSkiplist));
    root_ = nvm::PPtr<PSkiplist>(rootOff);
}

void
Skiplist::insert(std::string_view key, std::string_view val)
{
    std::lock_guard<sim::SimMutex> g(lock_);
    txn::run(eng_, kSkPut, root_.raw(), keyToU64(key), val);
}

bool
Skiplist::lookup(std::string_view key, LookupResult* out)
{
    std::lock_guard<sim::SimMutex> g(lock_);
    txn::run(eng_, kSkGet, root_.raw(), keyToU64(key),
             reinterpret_cast<uint64_t>(out));
    return out->found;
}

bool
Skiplist::remove(std::string_view key)
{
    std::lock_guard<sim::SimMutex> g(lock_);
    bool removed = false;
    txn::run(eng_, kSkDel, root_.raw(), keyToU64(key),
             reinterpret_cast<uint64_t>(&removed));
    return removed;
}

}  // namespace cnvm::ds
