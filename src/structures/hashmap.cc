#include "structures/hashmap.h"

#include <cstring>
#include <mutex>
#include <shared_mutex>

#include "common/error.h"
#include "common/rand.h"
#include "txn/txrun.h"

namespace cnvm::ds {

namespace {

/** Deterministic bucket index from the key bytes (fits re-execution). */
uint64_t
bucketIndex(nvm::PPtr<PHashMap> root, std::string_view key,
            txn::Tx& tx)
{
    uint64_t shards = tx.ld(root->nShards);
    uint64_t perShard = tx.ld(root->bucketsPerShard);
    uint64_t h = fnv1a(key.data(), key.size());
    uint64_t shard = h % shards;
    uint64_t bucket = (h / shards) % perShard;
    return shard * perShard + bucket;
}

bool
keyEquals(txn::Tx& tx, nvm::PPtr<HmNode> n, std::string_view key)
{
    uint32_t klen = tx.ld(n->keyLen);
    if (klen != key.size())
        return false;
    char buf[kMaxKeyLen];
    CNVM_CHECK(klen <= kMaxKeyLen, "key too long");
    tx.ldBytes(buf, n->keyBytes(), klen);
    return std::memcmp(buf, key.data(), klen) == 0;
}

nvm::PPtr<HmNode>
makeNode(txn::Tx& tx, std::string_view key, std::string_view val,
         nvm::PPtr<HmNode> next)
{
    auto n = tx.pnew<HmNode>(key.size() + val.size());
    tx.st(n->next, next);
    tx.st(n->keyLen, static_cast<uint32_t>(key.size()));
    tx.st(n->valLen, static_cast<uint32_t>(val.size()));
    tx.stBytes(n->keyBytes(), key.data(), key.size());
    tx.stBytes(n->valBytes(static_cast<uint32_t>(key.size())),
               val.data(), val.size());
    return n;
}

void
hmPutFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PHashMap>(a.get<uint64_t>());
    auto key = a.getString();
    auto val = a.getString();

    auto& headSlot = root->buckets()[bucketIndex(root, key, tx)];
    auto prev = nvm::PPtr<HmNode>();
    for (auto n = tx.ld(headSlot); !n.isNull();
         prev = n, n = tx.ld(n->next)) {
        if (!keyEquals(tx, n, key))
            continue;
        if (tx.ld(n->valLen) == val.size()) {
            tx.stBytes(n->valBytes(static_cast<uint32_t>(key.size())),
               val.data(), val.size());
        } else {
            auto fresh = makeNode(tx, key, val, tx.ld(n->next));
            if (prev.isNull())
                tx.st(headSlot, fresh);
            else
                tx.st(prev->next, fresh);
            tx.pfree(n);
        }
        return;
    }
    // New key: prepend. The bucket head pointer is the single
    // clobbered input — the paper measures exactly one 8-byte
    // clobber_log entry per hashmap insert (Section 5.3).
    auto head = tx.ld(headSlot);
    auto n = makeNode(tx, key, val, head);
    tx.st(headSlot, n);
}

void
hmDelFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PHashMap>(a.get<uint64_t>());
    auto key = a.getString();
    auto* out = reinterpret_cast<bool*>(a.get<uint64_t>());
    if (tx.recovering())
        out = nullptr;  // dangling: the crashed caller's stack is gone
    auto& headSlot = root->buckets()[bucketIndex(root, key, tx)];
    auto prev = nvm::PPtr<HmNode>();
    for (auto n = tx.ld(headSlot); !n.isNull();
         prev = n, n = tx.ld(n->next)) {
        if (!keyEquals(tx, n, key))
            continue;
        auto next = tx.ld(n->next);
        if (prev.isNull())
            tx.st(headSlot, next);
        else
            tx.st(prev->next, next);
        tx.pfree(n);
        if (out != nullptr)
            *out = true;
        return;
    }
    if (out != nullptr)
        *out = false;
}

void
hmGetFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PHashMap>(a.get<uint64_t>());
    auto key = a.getString();
    auto* out = reinterpret_cast<LookupResult*>(a.get<uint64_t>());
    if (tx.recovering())
        return;  // out points into the crashed process's stack
    out->found = false;
    auto& headSlot = root->buckets()[bucketIndex(root, key, tx)];
    for (auto n = tx.ld(headSlot); !n.isNull(); n = tx.ld(n->next)) {
        if (!keyEquals(tx, n, key))
            continue;
        out->found = true;
        out->len = tx.ld(n->valLen);
        CNVM_CHECK(out->len <= kMaxValLen, "value too long");
        tx.ldBytes(out->value,
                   n->valBytes(static_cast<uint32_t>(key.size())),
                   out->len);
        return;
    }
}

const txn::FuncId kHmPut = txn::registerTxFunc("hm_put", hmPutFn);
const txn::FuncId kHmDel = txn::registerTxFunc("hm_del", hmDelFn);
const txn::FuncId kHmGet = txn::registerTxFunc("hm_get", hmGetFn);

}  // namespace

HashMap::HashMap(txn::Engine& eng, uint64_t rootOff,
                 const KvConfig& cfg)
    : eng_(eng)
{
    if (rootOff == 0) {
        size_t nBuckets = cfg.hashShards * cfg.hashBucketsPerShard;
        rootOff = rawCreate(eng_, sizeof(PHashMap) +
                                      nBuckets *
                                          sizeof(nvm::PPtr<HmNode>));
        root_ = nvm::PPtr<PHashMap>(rootOff);
        auto& pool = eng_.rt.pool();
        PHashMap init{};
        init.nShards = cfg.hashShards;
        init.bucketsPerShard = cfg.hashBucketsPerShard;
        pool.write(root_.get(), &init, sizeof(init));
        pool.persist(root_.get(), sizeof(init));
    } else {
        root_ = nvm::PPtr<PHashMap>(rootOff);
    }
    shardLocks_ = std::vector<sim::SimSharedMutex>(root_->nShards);
}

uint64_t
HashMap::size() const
{
    uint64_t n = 0;
    uint64_t buckets = root_->nShards * root_->bucketsPerShard;
    for (uint64_t b = 0; b < buckets; b++) {
        for (auto node = root_->buckets()[b]; !node.isNull();
             node = node->next) {
            n++;
        }
    }
    return n;
}

size_t
HashMap::shardOf(std::string_view key) const
{
    return fnv1a(key.data(), key.size()) % root_->nShards;
}

void
HashMap::insert(std::string_view key, std::string_view val)
{
    std::lock_guard<sim::SimSharedMutex> g(shardLocks_[shardOf(key)]);
    txn::run(eng_, kHmPut, root_.raw(), key, val);
}

bool
HashMap::lookup(std::string_view key, LookupResult* out)
{
    std::shared_lock<sim::SimSharedMutex> g(shardLocks_[shardOf(key)]);
    txn::run(eng_, kHmGet, root_.raw(), key,
             reinterpret_cast<uint64_t>(out));
    return out->found;
}

bool
HashMap::remove(std::string_view key)
{
    std::lock_guard<sim::SimSharedMutex> g(shardLocks_[shardOf(key)]);
    bool removed = false;
    txn::run(eng_, kHmDel, root_.raw(), key,
             reinterpret_cast<uint64_t>(&removed));
    return removed;
}

}  // namespace cnvm::ds
