/**
 * @file
 * Persistent red-black tree, implemented in accordance with the Linux
 * kernel / CLRS algorithm as in the paper's benchmark (Section 5.2):
 * parent pointers, iterative insert/erase with rebalancing rotations,
 * and one global reader-writer lock.
 *
 * Rebalancing makes RB-tree transactions touch (read then write) many
 * node links — which is why undo logging pays far more here than on
 * the hashmap, while clobber logging only records the links actually
 * clobbered.
 */
#ifndef CNVM_STRUCTURES_RBTREE_H
#define CNVM_STRUCTURES_RBTREE_H

#include "nvm/pptr.h"
#include "sim/lock.h"
#include "structures/kv.h"
#include "txn/tx.h"

namespace cnvm::ds {

struct RbNode {
    uint64_t key;
    nvm::PPtr<RbNode> left;
    nvm::PPtr<RbNode> right;
    nvm::PPtr<RbNode> parent;
    uint32_t color;    ///< 0 red, 1 black
    uint32_t valLen;
    nvm::PPtr<uint8_t> val;  ///< separate buffer (size may change)
};

struct PRbTree {
    nvm::PPtr<RbNode> root;
    uint64_t count;
};

class RbTree : public KvStructure {
 public:
    explicit RbTree(txn::Engine& eng, uint64_t rootOff = 0);

    const char* name() const override { return "rbtree"; }
    uint64_t rootOff() const override { return root_.raw(); }

    void insert(std::string_view key, std::string_view val) override;
    bool lookup(std::string_view key, LookupResult* out) override;
    bool remove(std::string_view key) override;

    uint64_t size() const { return root_->count; }

    /**
     * Validate the red-black invariants by direct traversal (tests):
     * root black, no red-red edge, equal black heights, BST order.
     * @return black height, or -1 on violation.
     */
    int validate() const;

    bool selfCheck() const override { return validate() >= 0; }

 private:
    txn::Engine& eng_;
    nvm::PPtr<PRbTree> root_;
    sim::SimSharedMutex lock_;  ///< paper: global reader-writer lock
};

/**
 * Intra-transaction red-black map from uint64 keys to uint64 values
 * (values are typically PPtr offsets). Unlike RbTree, every method
 * takes the caller's Tx so vacation-style transactions can span
 * several tables — this is the RB-tree backing of STAMP vacation's
 * reservation tables (Figure 11).
 */
class RbMap {
 public:
    /** Create a fresh tree inside the caller's transaction. */
    static nvm::PPtr<PRbTree> create(txn::Tx& tx);

    explicit RbMap(nvm::PPtr<PRbTree> root) : root_(root) {}

    nvm::PPtr<PRbTree> root() const { return root_; }

    /** Insert or update. @return true if the key was new. */
    bool put(txn::Tx& tx, uint64_t key, uint64_t value);

    /** @return true and set *value if found. */
    bool get(txn::Tx& tx, uint64_t key, uint64_t* value) const;

    /** @return true if the key existed. */
    bool erase(txn::Tx& tx, uint64_t key);

    /** Greatest key <= `key`. */
    bool floor(txn::Tx& tx, uint64_t key, uint64_t* foundKey,
               uint64_t* value) const;

    uint64_t size(txn::Tx& tx) const;

    /** Direct-traversal invariant check. @return height or -1. */
    int validate() const;

 private:
    nvm::PPtr<PRbTree> root_;
};

}  // namespace cnvm::ds

#endif  // CNVM_STRUCTURES_RBTREE_H
