#include "structures/list.h"

#include <cstring>
#include <mutex>
#include <shared_mutex>

#include "common/error.h"

namespace cnvm::ds {

namespace {

/** Interposed key comparison against a node's inline key bytes. */
bool
keyEquals(txn::Tx& tx, nvm::PPtr<ListNode> n, std::string_view key)
{
    uint32_t klen = tx.ld(n->keyLen);
    if (klen != key.size())
        return false;
    char buf[kMaxKeyLen];
    CNVM_CHECK(klen <= kMaxKeyLen, "key too long");
    tx.ldBytes(buf, n->keyBytes(), klen);
    return std::memcmp(buf, key.data(), klen) == 0;
}

void removeAndReinsert(txn::Tx& tx, nvm::PPtr<PList> root,
                       std::string_view key, std::string_view val);

nvm::PPtr<ListNode>
makeNode(txn::Tx& tx, std::string_view key, std::string_view val,
         nvm::PPtr<ListNode> next)
{
    auto n = tx.pnew<ListNode>(key.size() + val.size());
    tx.st(n->next, next);
    tx.st(n->keyLen, static_cast<uint32_t>(key.size()));
    tx.st(n->valLen, static_cast<uint32_t>(val.size()));
    tx.stBytes(n->keyBytes(), key.data(), key.size());
    tx.stBytes(n->valBytes(static_cast<uint32_t>(key.size())),
               val.data(), val.size());
    return n;
}

void
listPutFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PList>(a.get<uint64_t>());
    auto key = a.getString();
    auto val = a.getString();

    // Replace in place if the key exists.
    for (auto n = tx.ld(root->head); !n.isNull(); n = tx.ld(n->next)) {
        if (!keyEquals(tx, n, key))
            continue;
        if (tx.ld(n->valLen) == val.size()) {
            tx.stBytes(n->valBytes(static_cast<uint32_t>(key.size())),
               val.data(), val.size());
        } else {
            // Different size: swap the node out.
            // (Simplest correct policy; rare in our workloads.)
            removeAndReinsert(tx, root, key, val);
        }
        return;
    }
    // Prepend: the head pointer is the only clobbered input
    // (Figure 2a: "lst->hd is a clobbered input").
    auto head = tx.ld(root->head);
    auto n = makeNode(tx, key, val, head);
    tx.st(root->head, n);
    tx.st(root->count, tx.ld(root->count) + 1);
}

void
listDelFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PList>(a.get<uint64_t>());
    auto key = a.getString();
    auto prev = nvm::PPtr<ListNode>();
    for (auto n = tx.ld(root->head); !n.isNull();
         prev = n, n = tx.ld(n->next)) {
        if (!keyEquals(tx, n, key))
            continue;
        auto next = tx.ld(n->next);
        if (prev.isNull())
            tx.st(root->head, next);
        else
            tx.st(prev->next, next);
        tx.st(root->count, tx.ld(root->count) - 1);
        tx.pfree(n);
        return;
    }
}

void
listGetFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PList>(a.get<uint64_t>());
    auto key = a.getString();
    auto* out = reinterpret_cast<LookupResult*>(a.get<uint64_t>());
    if (tx.recovering())
        return;  // out points into the crashed process's stack
    out->found = false;
    for (auto n = tx.ld(root->head); !n.isNull(); n = tx.ld(n->next)) {
        if (!keyEquals(tx, n, key))
            continue;
        out->found = true;
        out->len = tx.ld(n->valLen);
        CNVM_CHECK(out->len <= kMaxValLen, "value too long");
        tx.ldBytes(out->value,
                   n->valBytes(static_cast<uint32_t>(key.size())),
                   out->len);
        return;
    }
}

const txn::FuncId kListPut = txn::registerTxFunc("list_put", listPutFn);
const txn::FuncId kListDel = txn::registerTxFunc("list_del", listDelFn);
const txn::FuncId kListGet = txn::registerTxFunc("list_get", listGetFn);
/**
 * Replace with a different-sized value: delete + fresh insert within
 * the same transaction.
 */
void
removeAndReinsert(txn::Tx& tx, nvm::PPtr<PList> root,
                  std::string_view key, std::string_view val)
{
    auto prev = nvm::PPtr<ListNode>();
    for (auto n = tx.ld(root->head); !n.isNull();
         prev = n, n = tx.ld(n->next)) {
        if (!keyEquals(tx, n, key))
            continue;
        auto next = tx.ld(n->next);
        auto fresh = makeNode(tx, key, val, next);
        if (prev.isNull())
            tx.st(root->head, fresh);
        else
            tx.st(prev->next, fresh);
        tx.pfree(n);
        return;
    }
}

}  // namespace

List::List(txn::Engine& eng, uint64_t rootOff) : eng_(eng)
{
    if (rootOff == 0)
        rootOff = rawCreate(eng_, sizeof(PList));
    root_ = nvm::PPtr<PList>(rootOff);
}

void
List::insert(std::string_view key, std::string_view val)
{
    std::lock_guard<sim::SimSharedMutex> g(lock_);
    txn::run(eng_, kListPut, root_.raw(), key, val);
}

bool
List::lookup(std::string_view key, LookupResult* out)
{
    std::shared_lock<sim::SimSharedMutex> g(lock_);
    txn::run(eng_, kListGet, root_.raw(), key,
             reinterpret_cast<uint64_t>(out));
    return out->found;
}

bool
List::remove(std::string_view key)
{
    std::lock_guard<sim::SimSharedMutex> g(lock_);
    uint64_t before = root_->count;
    txn::run(eng_, kListDel, root_.raw(), key);
    return root_->count != before;
}

}  // namespace cnvm::ds
