/**
 * @file
 * Persistent skiplist with 32 levels and a single global lock, as in
 * the paper's benchmark (Section 5.2).
 *
 * A node's tower height is derived deterministically from its key
 * hash: Clobber-NVM transactions must be deterministic (Section 2.3),
 * and a conventional RNG would give re-execution a different height.
 *
 * Insert clobbers the predecessor next-pointers it splices — the
 * handful of pointer updates behind the paper's "three clobber_log
 * entries per transaction after optimization" observation.
 */
#ifndef CNVM_STRUCTURES_SKIPLIST_H
#define CNVM_STRUCTURES_SKIPLIST_H

#include "nvm/pptr.h"
#include "sim/lock.h"
#include "structures/kv.h"

namespace cnvm::ds {

constexpr unsigned kSkipMaxLevel = 32;

struct SkNode {
    uint64_t key;           ///< big-endian u64 of the 8-byte key
    uint32_t level;
    uint32_t valLen;
    nvm::PPtr<SkNode> next[kSkipMaxLevel];
    // value bytes inline

    char*
    valBytes()
    {
        return reinterpret_cast<char*>(this + 1);
    }
};

struct PSkiplist {
    uint64_t count;
    SkNode head;            ///< sentinel with a full-height tower
};

class Skiplist : public KvStructure {
 public:
    explicit Skiplist(txn::Engine& eng, uint64_t rootOff = 0);

    const char* name() const override { return "skiplist"; }
    uint64_t rootOff() const override { return root_.raw(); }

    void insert(std::string_view key, std::string_view val) override;
    bool lookup(std::string_view key, LookupResult* out) override;
    bool remove(std::string_view key) override;

    uint64_t size() const { return root_->count; }

 private:
    txn::Engine& eng_;
    nvm::PPtr<PSkiplist> root_;
    sim::SimMutex lock_;  ///< paper: one global lock
};

}  // namespace cnvm::ds

#endif  // CNVM_STRUCTURES_SKIPLIST_H
