#include "structures/rbtree.h"

#include <cstring>
#include <mutex>
#include <shared_mutex>

#include "common/error.h"
#include "txn/txrun.h"

namespace cnvm::ds {

namespace {

using NP = nvm::PPtr<RbNode>;

constexpr uint32_t kRed = 0;
constexpr uint32_t kBlack = 1;

uint32_t
colorOf(txn::Tx& tx, NP n)
{
    return n.isNull() ? kBlack : tx.ld(n->color);
}

NP
parentOf(txn::Tx& tx, NP n)
{
    return n.isNull() ? NP() : tx.ld(n->parent);
}

void
setColor(txn::Tx& tx, NP n, uint32_t c)
{
    if (!n.isNull())
        tx.st(n->color, c);
}

void
rotateLeft(txn::Tx& tx, nvm::PPtr<PRbTree> t, NP x)
{
    NP y = tx.ld(x->right);
    NP yl = tx.ld(y->left);
    tx.st(x->right, yl);
    if (!yl.isNull())
        tx.st(yl->parent, x);
    NP xp = tx.ld(x->parent);
    tx.st(y->parent, xp);
    if (xp.isNull())
        tx.st(t->root, y);
    else if (tx.ld(xp->left) == x)
        tx.st(xp->left, y);
    else
        tx.st(xp->right, y);
    tx.st(y->left, x);
    tx.st(x->parent, y);
}

void
rotateRight(txn::Tx& tx, nvm::PPtr<PRbTree> t, NP x)
{
    NP y = tx.ld(x->left);
    NP yr = tx.ld(y->right);
    tx.st(x->left, yr);
    if (!yr.isNull())
        tx.st(yr->parent, x);
    NP xp = tx.ld(x->parent);
    tx.st(y->parent, xp);
    if (xp.isNull())
        tx.st(t->root, y);
    else if (tx.ld(xp->right) == x)
        tx.st(xp->right, y);
    else
        tx.st(xp->left, y);
    tx.st(y->right, x);
    tx.st(x->parent, y);
}

void
insertFixup(txn::Tx& tx, nvm::PPtr<PRbTree> t, NP z)
{
    while (colorOf(tx, parentOf(tx, z)) == kRed) {
        NP zp = parentOf(tx, z);
        NP zpp = parentOf(tx, zp);
        if (zp == tx.ld(zpp->left)) {
            NP y = tx.ld(zpp->right);  // uncle
            if (colorOf(tx, y) == kRed) {
                setColor(tx, zp, kBlack);
                setColor(tx, y, kBlack);
                setColor(tx, zpp, kRed);
                z = zpp;
            } else {
                if (z == tx.ld(zp->right)) {
                    z = zp;
                    rotateLeft(tx, t, z);
                    zp = parentOf(tx, z);
                    zpp = parentOf(tx, zp);
                }
                setColor(tx, zp, kBlack);
                setColor(tx, zpp, kRed);
                rotateRight(tx, t, zpp);
            }
        } else {
            NP y = tx.ld(zpp->left);
            if (colorOf(tx, y) == kRed) {
                setColor(tx, zp, kBlack);
                setColor(tx, y, kBlack);
                setColor(tx, zpp, kRed);
                z = zpp;
            } else {
                if (z == tx.ld(zp->left)) {
                    z = zp;
                    rotateRight(tx, t, z);
                    zp = parentOf(tx, z);
                    zpp = parentOf(tx, zp);
                }
                setColor(tx, zp, kBlack);
                setColor(tx, zpp, kRed);
                rotateLeft(tx, t, zpp);
            }
        }
    }
    setColor(tx, tx.ld(t->root), kBlack);
}

/** Replace subtree rooted at u with the one rooted at v. */
void
transplant(txn::Tx& tx, nvm::PPtr<PRbTree> t, NP u, NP v)
{
    NP up = tx.ld(u->parent);
    if (up.isNull())
        tx.st(t->root, v);
    else if (tx.ld(up->left) == u)
        tx.st(up->left, v);
    else
        tx.st(up->right, v);
    if (!v.isNull())
        tx.st(v->parent, up);
}

/**
 * CLRS delete-fixup adapted to null leaves: `x` may be null, so the
 * current parent is tracked explicitly.
 */
void
deleteFixup(txn::Tx& tx, nvm::PPtr<PRbTree> t, NP x, NP xParent)
{
    while (x != tx.ld(t->root) && colorOf(tx, x) == kBlack) {
        if (x == tx.ld(xParent->left)) {
            NP w = tx.ld(xParent->right);
            if (colorOf(tx, w) == kRed) {
                setColor(tx, w, kBlack);
                setColor(tx, xParent, kRed);
                rotateLeft(tx, t, xParent);
                w = tx.ld(xParent->right);
            }
            if (colorOf(tx, tx.ld(w->left)) == kBlack &&
                colorOf(tx, tx.ld(w->right)) == kBlack) {
                setColor(tx, w, kRed);
                x = xParent;
                xParent = parentOf(tx, x);
            } else {
                if (colorOf(tx, tx.ld(w->right)) == kBlack) {
                    setColor(tx, tx.ld(w->left), kBlack);
                    setColor(tx, w, kRed);
                    rotateRight(tx, t, w);
                    w = tx.ld(xParent->right);
                }
                setColor(tx, w, colorOf(tx, xParent));
                setColor(tx, xParent, kBlack);
                setColor(tx, tx.ld(w->right), kBlack);
                rotateLeft(tx, t, xParent);
                x = tx.ld(t->root);
                xParent = NP();
            }
        } else {
            NP w = tx.ld(xParent->left);
            if (colorOf(tx, w) == kRed) {
                setColor(tx, w, kBlack);
                setColor(tx, xParent, kRed);
                rotateRight(tx, t, xParent);
                w = tx.ld(xParent->left);
            }
            if (colorOf(tx, tx.ld(w->right)) == kBlack &&
                colorOf(tx, tx.ld(w->left)) == kBlack) {
                setColor(tx, w, kRed);
                x = xParent;
                xParent = parentOf(tx, x);
            } else {
                if (colorOf(tx, tx.ld(w->left)) == kBlack) {
                    setColor(tx, tx.ld(w->right), kBlack);
                    setColor(tx, w, kRed);
                    rotateLeft(tx, t, w);
                    w = tx.ld(xParent->left);
                }
                setColor(tx, w, colorOf(tx, xParent));
                setColor(tx, xParent, kBlack);
                setColor(tx, tx.ld(w->left), kBlack);
                rotateRight(tx, t, xParent);
                x = tx.ld(t->root);
                xParent = NP();
            }
        }
    }
    setColor(tx, x, kBlack);
}

NP
findNode(txn::Tx& tx, nvm::PPtr<PRbTree> t, uint64_t key)
{
    NP cur = tx.ld(t->root);
    while (!cur.isNull()) {
        uint64_t k = tx.ld(cur->key);
        if (key == k)
            return cur;
        cur = key < k ? tx.ld(cur->left) : tx.ld(cur->right);
    }
    return NP();
}

nvm::PPtr<uint8_t>
makeValue(txn::Tx& tx, std::string_view val)
{
    uint64_t off = tx.pmallocOff(val.size());
    auto buf = nvm::PPtr<uint8_t>(off);
    tx.stBytes(buf.get(), val.data(), val.size());
    return buf;
}

void
rbPutFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto t = nvm::PPtr<PRbTree>(a.get<uint64_t>());
    auto key = a.get<uint64_t>();
    auto val = a.getString();

    // Standard BST descent to find the attach point.
    NP parent;
    NP cur = tx.ld(t->root);
    while (!cur.isNull()) {
        uint64_t k = tx.ld(cur->key);
        if (key == k) {
            // Replace the value buffer.
            auto old = tx.ld(cur->val);
            tx.st(cur->val, makeValue(tx, val));
            tx.st(cur->valLen, static_cast<uint32_t>(val.size()));
            if (!old.isNull())
                tx.pfree(old.raw());
            return;
        }
        parent = cur;
        cur = key < k ? tx.ld(cur->left) : tx.ld(cur->right);
    }

    auto z = tx.pnew<RbNode>();
    tx.st(z->key, key);
    tx.st(z->color, kRed);
    tx.st(z->valLen, static_cast<uint32_t>(val.size()));
    tx.st(z->val, makeValue(tx, val));
    tx.st(z->parent, parent);
    if (parent.isNull())
        tx.st(t->root, z);
    else if (key < tx.ld(parent->key))
        tx.st(parent->left, z);
    else
        tx.st(parent->right, z);
    insertFixup(tx, t, z);
    tx.st(t->count, tx.ld(t->count) + 1);
}

void
rbDelFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto t = nvm::PPtr<PRbTree>(a.get<uint64_t>());
    auto key = a.get<uint64_t>();
    auto* out = reinterpret_cast<bool*>(a.get<uint64_t>());
    if (tx.recovering())
        out = nullptr;  // dangling: the crashed caller's stack is gone

    NP z = findNode(tx, t, key);
    if (z.isNull()) {
        if (out != nullptr)
            *out = false;
        return;
    }

    NP y = z;
    uint32_t yOrigColor = tx.ld(y->color);
    NP x;
    NP xParent;
    if (tx.ld(z->left).isNull()) {
        x = tx.ld(z->right);
        xParent = tx.ld(z->parent);
        transplant(tx, t, z, x);
    } else if (tx.ld(z->right).isNull()) {
        x = tx.ld(z->left);
        xParent = tx.ld(z->parent);
        transplant(tx, t, z, x);
    } else {
        // y := minimum of z's right subtree.
        y = tx.ld(z->right);
        for (NP l = tx.ld(y->left); !l.isNull(); l = tx.ld(y->left))
            y = l;
        yOrigColor = tx.ld(y->color);
        x = tx.ld(y->right);
        if (tx.ld(y->parent) == z) {
            xParent = y;
        } else {
            xParent = tx.ld(y->parent);
            transplant(tx, t, y, x);
            NP zr = tx.ld(z->right);
            tx.st(y->right, zr);
            tx.st(zr->parent, y);
        }
        transplant(tx, t, z, y);
        NP zl = tx.ld(z->left);
        tx.st(y->left, zl);
        tx.st(zl->parent, y);
        tx.st(y->color, tx.ld(z->color));
    }
    if (yOrigColor == kBlack)
        deleteFixup(tx, t, x, xParent);

    auto buf = tx.ld(z->val);
    if (!buf.isNull())
        tx.pfree(buf.raw());
    tx.pfree(z);
    tx.st(t->count, tx.ld(t->count) - 1);
    if (out != nullptr)
        *out = true;
}

void
rbGetFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto t = nvm::PPtr<PRbTree>(a.get<uint64_t>());
    auto key = a.get<uint64_t>();
    auto* out = reinterpret_cast<LookupResult*>(a.get<uint64_t>());
    if (tx.recovering())
        return;  // out points into the crashed process's stack
    out->found = false;
    NP n = findNode(tx, t, key);
    if (n.isNull())
        return;
    out->found = true;
    out->len = tx.ld(n->valLen);
    CNVM_CHECK(out->len <= kMaxValLen, "value too long");
    tx.ldBytes(out->value, tx.ld(n->val).get(), out->len);
}

const txn::FuncId kRbPut = txn::registerTxFunc("rb_put", rbPutFn);
const txn::FuncId kRbDel = txn::registerTxFunc("rb_del", rbDelFn);
const txn::FuncId kRbGet = txn::registerTxFunc("rb_get", rbGetFn);

/** Direct (non-transactional) invariant check helper. */
int
validateRec(const RbNode* n, uint64_t lo, uint64_t hi, bool* ok)
{
    if (n == nullptr)
        return 1;
    if (n->key < lo || n->key > hi) {
        *ok = false;
        return 1;
    }
    const RbNode* l = n->left.get();
    const RbNode* r = n->right.get();
    if (n->color == kRed) {
        if ((l != nullptr && l->color == kRed) ||
            (r != nullptr && r->color == kRed)) {
            *ok = false;
        }
    }
    int lh = validateRec(l, lo, n->key == 0 ? 0 : n->key - 1, ok);
    int rh = validateRec(r, n->key + 1, hi, ok);
    if (lh != rh)
        *ok = false;
    return lh + (n->color == kBlack ? 1 : 0);
}

}  // namespace

RbTree::RbTree(txn::Engine& eng, uint64_t rootOff) : eng_(eng)
{
    if (rootOff == 0)
        rootOff = rawCreate(eng_, sizeof(PRbTree));
    root_ = nvm::PPtr<PRbTree>(rootOff);
}

void
RbTree::insert(std::string_view key, std::string_view val)
{
    std::lock_guard<sim::SimSharedMutex> g(lock_);
    txn::run(eng_, kRbPut, root_.raw(), keyToU64(key), val);
}

bool
RbTree::lookup(std::string_view key, LookupResult* out)
{
    std::shared_lock<sim::SimSharedMutex> g(lock_);
    txn::run(eng_, kRbGet, root_.raw(), keyToU64(key),
             reinterpret_cast<uint64_t>(out));
    return out->found;
}

bool
RbTree::remove(std::string_view key)
{
    std::lock_guard<sim::SimSharedMutex> g(lock_);
    bool removed = false;
    txn::run(eng_, kRbDel, root_.raw(), keyToU64(key),
             reinterpret_cast<uint64_t>(&removed));
    return removed;
}

nvm::PPtr<PRbTree>
RbMap::create(txn::Tx& tx)
{
    return tx.pnew<PRbTree>();
}

bool
RbMap::put(txn::Tx& tx, uint64_t key, uint64_t value)
{
    NP parent;
    NP cur = tx.ld(root_->root);
    while (!cur.isNull()) {
        uint64_t k = tx.ld(cur->key);
        if (key == k) {
            // Value stored inline in the val slot's raw bits.
            tx.st(cur->val, nvm::PPtr<uint8_t>(value));
            return false;
        }
        parent = cur;
        cur = key < k ? tx.ld(cur->left) : tx.ld(cur->right);
    }
    auto z = tx.pnew<RbNode>();
    tx.st(z->key, key);
    tx.st(z->color, kRed);
    tx.st(z->val, nvm::PPtr<uint8_t>(value));
    tx.st(z->parent, parent);
    if (parent.isNull())
        tx.st(root_->root, z);
    else if (key < tx.ld(parent->key))
        tx.st(parent->left, z);
    else
        tx.st(parent->right, z);
    insertFixup(tx, root_, z);
    tx.st(root_->count, tx.ld(root_->count) + 1);
    return true;
}

bool
RbMap::get(txn::Tx& tx, uint64_t key, uint64_t* value) const
{
    NP n = findNode(tx, root_, key);
    if (n.isNull())
        return false;
    if (value != nullptr)
        *value = tx.ld(n->val).raw();
    return true;
}

bool
RbMap::erase(txn::Tx& tx, uint64_t key)
{
    NP z = findNode(tx, root_, key);
    if (z.isNull())
        return false;

    NP y = z;
    uint32_t yOrigColor = tx.ld(y->color);
    NP x;
    NP xParent;
    if (tx.ld(z->left).isNull()) {
        x = tx.ld(z->right);
        xParent = tx.ld(z->parent);
        transplant(tx, root_, z, x);
    } else if (tx.ld(z->right).isNull()) {
        x = tx.ld(z->left);
        xParent = tx.ld(z->parent);
        transplant(tx, root_, z, x);
    } else {
        y = tx.ld(z->right);
        for (NP l = tx.ld(y->left); !l.isNull(); l = tx.ld(y->left))
            y = l;
        yOrigColor = tx.ld(y->color);
        x = tx.ld(y->right);
        if (tx.ld(y->parent) == z) {
            xParent = y;
        } else {
            xParent = tx.ld(y->parent);
            transplant(tx, root_, y, x);
            NP zr = tx.ld(z->right);
            tx.st(y->right, zr);
            tx.st(zr->parent, y);
        }
        transplant(tx, root_, z, y);
        NP zl = tx.ld(z->left);
        tx.st(y->left, zl);
        tx.st(zl->parent, y);
        tx.st(y->color, tx.ld(z->color));
    }
    if (yOrigColor == kBlack)
        deleteFixup(tx, root_, x, xParent);
    tx.pfree(z);
    tx.st(root_->count, tx.ld(root_->count) - 1);
    return true;
}

bool
RbMap::floor(txn::Tx& tx, uint64_t key, uint64_t* foundKey,
             uint64_t* value) const
{
    NP cur = tx.ld(root_->root);
    bool found = false;
    while (!cur.isNull()) {
        uint64_t k = tx.ld(cur->key);
        if (k == key) {
            if (foundKey != nullptr)
                *foundKey = k;
            if (value != nullptr)
                *value = tx.ld(cur->val).raw();
            return true;
        }
        if (k < key) {
            found = true;
            if (foundKey != nullptr)
                *foundKey = k;
            if (value != nullptr)
                *value = tx.ld(cur->val).raw();
            cur = tx.ld(cur->right);
        } else {
            cur = tx.ld(cur->left);
        }
    }
    return found;
}

uint64_t
RbMap::size(txn::Tx& tx) const
{
    return tx.ld(root_->count);
}

int
RbMap::validate() const
{
    const RbNode* r = root_->root.get();
    if (r != nullptr && r->color != kBlack)
        return -1;
    bool ok = true;
    int h = validateRec(r, 0, ~0ULL, &ok);
    return ok ? h : -1;
}

int
RbTree::validate() const
{
    const RbNode* r = root_->root.get();
    if (r != nullptr && r->color != kBlack)
        return -1;
    bool ok = true;
    int h = validateRec(r, 0, ~0ULL, &ok);
    return ok ? h : -1;
}

}  // namespace cnvm::ds
