/**
 * @file
 * Common interface for the persistent key-value data structures used by
 * the paper's benchmarks (Section 5.2): B+Tree, HashMap, Skiplist and
 * Red-Black Tree, plus the linked list from the usage example.
 *
 * All structures are written once against the txn::Runtime
 * interposition API, so every logging protocol runs the identical data
 * structure code — only the runtime changes between bars of Figure 6.
 *
 * Locking (paper Section 5.2): HashMap uses one reader-writer lock per
 * shard (256 instances), Skiplist a single global lock, RB-Tree a
 * global reader-writer lock, and B+Tree fine-grained (key-sharded)
 * reader-writer locks. Locks are volatile (sim::SimSharedMutex — real
 * under OS threads, discrete-event under the logical executor) and are
 * acquired by the wrapper *around* the transaction, per conservative
 * strong strict two-phase locking. Transaction bodies never touch
 * locks, which keeps recovery re-execution lock-free.
 */
#ifndef CNVM_STRUCTURES_KV_H
#define CNVM_STRUCTURES_KV_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "txn/engine.h"

namespace cnvm::ds {

constexpr size_t kMaxKeyLen = 64;
constexpr size_t kMaxValLen = 1024;

/** Volatile out-parameter for lookups (read-only transactions are
 *  never re-executed, so passing its address is safe). */
struct LookupResult {
    bool found = false;
    uint32_t len = 0;
    char value[kMaxValLen];

    std::string
    str() const
    {
        return {value, len};
    }
};

class KvStructure {
 public:
    virtual ~KvStructure() = default;

    virtual const char* name() const = 0;

    /** Pool offset of the persistent root (reattach after restart). */
    virtual uint64_t rootOff() const = 0;

    /** Insert or replace. */
    virtual void insert(std::string_view key, std::string_view val) = 0;

    /** @return true and fill `out` if present. */
    virtual bool lookup(std::string_view key, LookupResult* out) = 0;

    /** @return true if the key was present and is now gone. */
    virtual bool remove(std::string_view key) = 0;

    /**
     * Structure-specific invariant audit by direct traversal (tree
     * ordering/balance), used by the crash-torture oracle.
     * @return false on violation; default: nothing extra to check.
     */
    virtual bool selfCheck() const { return true; }
};

struct KvConfig {
    size_t hashShards = 256;          ///< paper: 256 hashmap instances
    size_t hashBucketsPerShard = 1024;
    size_t lockShards = 1024;         ///< B+Tree fine-grained locks
};

/**
 * Construct a structure by benchmark name: "hashmap", "skiplist",
 * "rbtree", "bptree", or "list".
 * @param rootOff 0 to create a fresh structure, otherwise reattach.
 */
std::unique_ptr<KvStructure>
makeKv(const std::string& name, txn::Engine& eng, uint64_t rootOff = 0,
       const KvConfig& cfg = KvConfig{});

/** The four structures of Figure 6, in plot order. */
const std::vector<std::string>& benchmarkStructures();

/** Big-endian read of the first 8 key bytes (preserves lex order). */
uint64_t keyToU64(std::string_view key);

/** Allocate + zero + commit `bytes` outside any transaction (setup). */
uint64_t rawCreate(txn::Engine& eng, size_t bytes);

}  // namespace cnvm::ds

#endif  // CNVM_STRUCTURES_KV_H
