#include "structures/kv.h"

#include "alloc/pm_allocator.h"
#include "common/error.h"
#include "structures/bptree.h"
#include "structures/hashmap.h"
#include "structures/list.h"
#include "structures/rbtree.h"
#include "structures/skiplist.h"

namespace cnvm::ds {

uint64_t
keyToU64(std::string_view key)
{
    uint64_t v = 0;
    for (size_t i = 0; i < 8; i++) {
        v <<= 8;
        if (i < key.size())
            v |= static_cast<unsigned char>(key[i]);
    }
    return v;
}

uint64_t
rawCreate(txn::Engine& eng, size_t bytes)
{
    // Structure roots are created non-transactionally at setup time
    // (like PMDK pool layout creation): reserve, zero, commit the
    // allocation, fence.
    auto& heap = eng.rt.heap();
    auto& pool = eng.rt.pool();
    uint64_t off = heap.reserve(bytes);
    std::vector<uint8_t> zeros(4096, 0);
    for (size_t i = 0; i < bytes; i += zeros.size()) {
        size_t n = std::min(zeros.size(), bytes - i);
        pool.writeAt(off + i, zeros.data(), n);
        pool.flush(pool.at(off + i), n);
    }
    heap.persistAllocate(off);
    pool.fence();
    return off;
}

const std::vector<std::string>&
benchmarkStructures()
{
    static const std::vector<std::string> names{
        "bptree", "hashmap", "rbtree", "skiplist"};
    return names;
}

std::unique_ptr<KvStructure>
makeKv(const std::string& name, txn::Engine& eng, uint64_t rootOff,
       const KvConfig& cfg)
{
    if (name == "list")
        return std::make_unique<List>(eng, rootOff);
    if (name == "hashmap")
        return std::make_unique<HashMap>(eng, rootOff, cfg);
    if (name == "skiplist")
        return std::make_unique<Skiplist>(eng, rootOff);
    if (name == "rbtree")
        return std::make_unique<RbTree>(eng, rootOff);
    if (name == "bptree")
        return std::make_unique<BpTree>(eng, rootOff, cfg);
    fatal("unknown structure: " + name);
}

}  // namespace cnvm::ds
