/**
 * @file
 * memslap-style request generator for the memcached experiment
 * (paper Section 5.6): uniformly distributed 16-byte keys and 64-byte
 * values, with a configurable insertion/search mix.
 */
#ifndef CNVM_WORKLOADS_MEMSLAP_H
#define CNVM_WORKLOADS_MEMSLAP_H

#include <string>
#include <vector>

#include "common/rand.h"

namespace cnvm::wl {

enum class KvOp { set, get };

struct KvRequest {
    KvOp op;
    std::string key;
    std::string value;
};

/** The paper's four workload mixes (insert fraction). */
struct MemslapMix {
    const char* name;
    double insertFraction;
};

/** 95/75/25/5 % insertion, as in Figure 10. */
const std::vector<MemslapMix>& memslapMixes();

class Memslap {
 public:
    /**
     * @param insertFraction probability a request is a set
     * @param keySpace number of distinct keys
     */
    Memslap(double insertFraction, uint64_t keySpace,
            uint64_t seed = 1, size_t keyLen = 16, size_t valueLen = 64);

    KvRequest next();

    std::string keyOf(uint64_t id) const;

 private:
    double insertFraction_;
    uint64_t keySpace_;
    size_t keyLen_;
    size_t valueLen_;
    uint64_t opIndex_ = 0;
    Xorshift rng_;
};

}  // namespace cnvm::wl

#endif  // CNVM_WORKLOADS_MEMSLAP_H
