#include "workloads/memslap.h"

#include <vector>

namespace cnvm::wl {

const std::vector<MemslapMix>&
memslapMixes()
{
    static const std::vector<MemslapMix> mixes{
        {"insert-intensive", 0.95},
        {"insert-most", 0.75},
        {"search-most", 0.25},
        {"search-intensive", 0.05},
    };
    return mixes;
}

Memslap::Memslap(double insertFraction, uint64_t keySpace,
                 uint64_t seed, size_t keyLen, size_t valueLen)
    : insertFraction_(insertFraction),
      keySpace_(keySpace),
      keyLen_(keyLen),
      valueLen_(valueLen),
      rng_(seed)
{
}

std::string
Memslap::keyOf(uint64_t id) const
{
    // 16 printable bytes, uniformly distributed ids.
    uint64_t h1 = mixHash(id + 0xfeed);
    uint64_t h2 = mixHash(id + 0xbeef);
    std::string s(keyLen_, '\0');
    for (size_t i = 0; i < keyLen_; i++) {
        uint64_t h = i < 8 ? h1 : h2;
        s[i] = static_cast<char>('!' + ((h >> ((i % 8) * 8)) % 90));
    }
    return s;
}

KvRequest
Memslap::next()
{
    uint64_t id = rng_.nextUint(keySpace_);
    uint64_t i = opIndex_++;
    if (rng_.nextBool(insertFraction_)) {
        std::string v(valueLen_, '\0');
        Xorshift vr(i * 11400714819323198485ULL + 3);
        for (auto& c : v)
            c = static_cast<char>('a' + vr.nextUint(26));
        return {KvOp::set, keyOf(id), std::move(v)};
    }
    return {KvOp::get, keyOf(id), {}};
}

}  // namespace cnvm::wl
