#include "workloads/ycsb.h"

#include "common/error.h"

namespace cnvm::wl {

YcsbKind
ycsbKindFromName(const std::string& name)
{
    if (name == "load")
        return YcsbKind::load;
    if (name == "a")
        return YcsbKind::a;
    if (name == "b")
        return YcsbKind::b;
    if (name == "c")
        return YcsbKind::c;
    fatal("unknown YCSB workload: " + name);
}

const char*
ycsbKindName(YcsbKind kind)
{
    switch (kind) {
      case YcsbKind::load: return "load";
      case YcsbKind::a: return "a";
      case YcsbKind::b: return "b";
      case YcsbKind::c: return "c";
    }
    return "?";
}

Ycsb::Ycsb(YcsbKind kind, uint64_t recordCount, size_t keyLen,
           size_t valueLen, uint64_t seed)
    : kind_(kind),
      recordCount_(recordCount),
      keyLen_(keyLen),
      valueLen_(valueLen),
      rng_(seed),
      zipf_(recordCount, 0.99, seed + 7)
{
    CNVM_CHECK(keyLen >= 8, "YCSB keys need at least 8 bytes");
}

std::string
Ycsb::keyOf(uint64_t id) const
{
    // Scramble so inserts are not ordered (as YCSB's hashed insert
    // order), then render big-endian into the first 8 bytes; pad the
    // rest (B+Tree's 32-byte keys) with fixed filler.
    uint64_t k = mixHash(id + 0x59c5b1);
    std::string s(keyLen_, 'p');
    for (int b = 7; b >= 0; b--) {
        s[b] = static_cast<char>(k & 0xff);
        k >>= 8;
    }
    return s;
}

std::string
Ycsb::valueOf(uint64_t i) const
{
    std::string v(valueLen_, '\0');
    Xorshift rng(i * 2654435761ULL + 13);
    for (auto& c : v)
        c = static_cast<char>('A' + rng.nextUint(58));
    return v;
}

YcsbRequest
Ycsb::next()
{
    uint64_t i = opIndex_++;
    switch (kind_) {
      case YcsbKind::load:
        return {YcsbOp::insert, keyOf(nextInsert_++), valueOf(i)};
      case YcsbKind::a:
        if (rng_.nextBool(0.5))
            return {YcsbOp::update, keyOf(zipf_.next()), valueOf(i)};
        return {YcsbOp::read, keyOf(zipf_.next()), {}};
      case YcsbKind::b:
        if (rng_.nextBool(0.05))
            return {YcsbOp::update, keyOf(zipf_.next()), valueOf(i)};
        return {YcsbOp::read, keyOf(zipf_.next()), {}};
      case YcsbKind::c:
        return {YcsbOp::read, keyOf(zipf_.next()), {}};
    }
    panic("unreachable ycsb kind");
}

}  // namespace cnvm::wl
