/**
 * @file
 * YCSB workload generator (Cooper et al., SoCC '10), reimplemented for
 * the data-structure benchmarks (paper Section 5.2 runs YCSB-Load).
 *
 * Keys are 8-byte binary strings derived from a scrambled record id
 * (the paper's structures use 8-byte keys; the B+Tree benchmark pads
 * to 32). Values are `valueSize` pseudo-random bytes (256 in the
 * paper's Figure 6/7 runs).
 */
#ifndef CNVM_WORKLOADS_YCSB_H
#define CNVM_WORKLOADS_YCSB_H

#include <string>

#include "common/rand.h"

namespace cnvm::wl {

enum class YcsbOp { insert, update, read };

struct YcsbRequest {
    YcsbOp op;
    std::string key;
    std::string value;  ///< empty for reads
};

/** Standard workload mixes. */
enum class YcsbKind {
    load,  ///< 100% inserts of new records (paper Figures 6-8)
    a,     ///< 50% update / 50% read, zipfian
    b,     ///< 5% update / 95% read, zipfian
    c,     ///< 100% read, zipfian
};

YcsbKind ycsbKindFromName(const std::string& name);
const char* ycsbKindName(YcsbKind kind);

class Ycsb {
 public:
    /**
     * @param kind workload mix
     * @param recordCount size of the loaded key space
     * @param keyLen key bytes (8, or 32 for the B+Tree benchmark)
     * @param valueLen value bytes per write
     * @param seed generator seed (deterministic streams)
     */
    Ycsb(YcsbKind kind, uint64_t recordCount, size_t keyLen,
         size_t valueLen, uint64_t seed = 1);

    /** The next request in the stream. */
    YcsbRequest next();

    /** Key string of record id `id` (for preloading / verification). */
    std::string keyOf(uint64_t id) const;

    /** Deterministic value for the i-th write. */
    std::string valueOf(uint64_t i) const;

 private:
    YcsbKind kind_;
    uint64_t recordCount_;
    size_t keyLen_;
    size_t valueLen_;
    uint64_t nextInsert_ = 0;
    uint64_t opIndex_ = 0;
    Xorshift rng_;
    Zipfian zipf_;
};

}  // namespace cnvm::wl

#endif  // CNVM_WORKLOADS_YCSB_H
