/**
 * @file
 * ShadowOracle: a volatile std::map mirror of one persistent KV
 * structure, used to audit the structure after every injected crash.
 *
 * The torture drivers apply each operation to both the structure and
 * the shadow — the shadow only once the operation is known committed
 * (an interrupted operation is resolved after recovery by probing the
 * structure: all-or-nothing is the contract, a torn value is a bug).
 * verify() then checks:
 *
 *  - every shadow key is present with exactly the shadow's value;
 *  - probe keys outside the shadow are absent;
 *  - the structure's own invariant checker passes (tree ordering /
 *    balance via KvStructure::selfCheck);
 *  - no probe panics: a CNVM_CHECK failure or fatal() inside the
 *    structure (cyclic list, torn header) is reported as a finding,
 *    not a test crash.
 */
#ifndef CNVM_TESTING_ORACLE_H
#define CNVM_TESTING_ORACLE_H

#include <map>
#include <string>

#include "structures/kv.h"

namespace cnvm::torture {

class ShadowOracle {
 public:
    void
    noteInsert(const std::string& key, const std::string& val)
    {
        shadow_[key] = val;
    }

    void noteRemove(const std::string& key) { shadow_.erase(key); }

    bool
    contains(const std::string& key) const
    {
        return shadow_.count(key) != 0;
    }

    /** Shadow value; empty string if absent. */
    std::string
    valueOf(const std::string& key) const
    {
        auto it = shadow_.find(key);
        return it == shadow_.end() ? std::string() : it->second;
    }

    size_t size() const { return shadow_.size(); }

    const std::map<std::string, std::string>&
    entries() const
    {
        return shadow_;
    }

    /**
     * Full audit of `kv` against the shadow.
     * @return empty string on success, else a description of the
     *         first violation found.
     */
    std::string verify(ds::KvStructure& kv) const;

 private:
    std::map<std::string, std::string> shadow_;
};

}  // namespace cnvm::torture

#endif  // CNVM_TESTING_ORACLE_H
