#include "testing/crash_scheduler.h"

#include "common/error.h"

namespace cnvm::torture {

const char*
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::store: return "store";
      case EventKind::clwb: return "clwb";
      case EventKind::sfence: return "sfence";
    }
    return "?";
}

CrashScheduler::CrashScheduler(nvm::Pool& pool) : pool_(pool)
{
    pool_.cache().setLineObserver(this);
}

CrashScheduler::~CrashScheduler()
{
    pool_.cache().setLineObserver(nullptr);
}

void
CrashScheduler::resetCounts()
{
    total_ = 0;
    perKind_.fill(0);
}

void
CrashScheduler::onEvent(EventKind k, uint64_t line)
{
    total_++;
    perKind_[static_cast<size_t>(k)]++;
    if (traceEnabled_)
        trace_.push_back({k, line});
    if (countdown_ != 0 && --countdown_ == 0) {
        // The store observer runs before the store mutates memory and
        // before the line is tracked, so throwing here models a power
        // loss *instead of* the event. clwb/sfence observers run after
        // the state transition: the crash lands just after the event
        // takes effect, which is the other edge of the same window.
        fired_ = true;
        firedEvent_ = {k, line};
        throw nvm::CrashInjected{};
    }
}

std::string
CrashScheduler::describeTrace() const
{
    std::string out;
    uint64_t idx = 1;
    for (const TraceEvent& e : trace_) {
        out += strprintf("%6llu: %-6s",
                         static_cast<unsigned long long>(idx++),
                         eventKindName(e.kind));
        if (e.kind != EventKind::sfence) {
            out += strprintf(" line %llu",
                             static_cast<unsigned long long>(e.line));
        }
        out += "\n";
    }
    return out;
}

}  // namespace cnvm::torture
