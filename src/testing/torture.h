/**
 * @file
 * Crash-point torture drivers.
 *
 * Two tiers over the same rig (pool + heap + runtime + structure +
 * CrashScheduler + ShadowOracle):
 *
 *  - exhaustiveSweep(): for one (protocol, structure) pair, crash an
 *    insert / update / remove at event index 1, 2, 3, ... until the
 *    operation commits without reaching the trap (`quietRuns` times in
 *    a row — event counts drift as the structure grows, so a single
 *    quiet attempt is not proof of quiescence). After every crash:
 *    tear the image, run recovery, resolve the interrupted operation
 *    (all-or-nothing by probing), audit the full shadow, and finally
 *    audit the allocator by replaying the committed-operation history
 *    on a fresh rig — equal freeBytes() means crashes leaked nothing.
 *
 *  - fuzz(): randomized YCSB-like histories on N logical threads
 *    (sim::Executor round-robin, so each case is a deterministic
 *    function of its seed). Each case first runs crash-free to count
 *    its events, then re-runs armed at a random index with randomized
 *    torn-write CrashParams. A failing case is shrunk greedily to the
 *    smallest (seed, nOps, event-index) triple that still fails, and
 *    the report carries the exact cnvm_torture --replay invocation.
 */
#ifndef CNVM_TESTING_TORTURE_H
#define CNVM_TESTING_TORTURE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "alloc/pm_allocator.h"
#include "nvm/pool.h"
#include "runtimes/factory.h"
#include "structures/kv.h"
#include "testing/crash_scheduler.h"
#include "testing/oracle.h"
#include "txn/engine.h"

namespace cnvm::torture {

/** How the image tears once a trap fires. */
enum class Tear {
    allLost,     ///< every volatile word reverts (deterministic)
    randomTear,  ///< per-word survival, seeded (torn-write variation)
};

const char* tearName(Tear t);

/**
 * Media-fault campaign axis layered on the crash sweeps: every tear
 * additionally lands `bitFlips` flipped bits, `poisons` poisoned
 * lines and `transients` transiently-failing lines in the selected
 * regions (deterministic from `seed`). With `duringRecoveryRounds`
 * > 0, recovery itself is crash-armed and re-torn that many times —
 * each re-tear injecting another fault round — before the final
 * uninterrupted recovery.
 */
struct FaultSpec {
    bool enabled = false;
    uint32_t bitFlips = 1;
    uint32_t poisons = 1;
    uint32_t transients = 1;
    uint32_t regionMask =
        nvm::kFaultDesc | nvm::kFaultLog | nvm::kFaultAllocMeta;
    int duringRecoveryRounds = 0;
    uint64_t seed = 1;
};

/**
 * One self-contained torture target: an anonymous pool with its heap,
 * runtime, engine, structure, scheduler and oracle. Everything the
 * drivers need to crash, recover and audit.
 */
class TortureRig {
 public:
    TortureRig(txn::RuntimeKind kind, const std::string& structure,
               size_t poolBytes = 32ULL << 20);
    ~TortureRig();

    txn::RuntimeKind kind() const { return kind_; }
    const std::string& structureName() const { return structName_; }

    /**
     * Attach a seeded fault model to the pool and refine its region
     * map with the runtime/allocator layouts. Injection rounds then
     * fire inside every simulated tear.
     */
    void enableFaults(const FaultSpec& spec);

    /**
     * Tear the image (injecting a fault round when faults are
     * enabled) and run recovery, capturing lastReport(). With
     * recoveryRetears > 0, recovery is crash-armed and re-torn up to
     * that many times first (each re-tear another injection round).
     *
     * Under RecoveryMode::lazy the crash recovers through the engine:
     * triage, then first-touch admission of every slot, then
     * finishRecovery() — so the sweeps audit the exact same images
     * through the instant-restart path, re-tears landing inside
     * triage and the heal drain alike.
     */
    void crashAndRecover(Tear tear, uint64_t seed,
                         const nvm::CrashParams& params,
                         int recoveryRetears = 0);

    /** Recovery mode used by crashAndRecover (default: full). */
    void setRecoveryMode(txn::RecoveryMode m) { recMode_ = m; }
    txn::RecoveryMode recoveryMode() const { return recMode_; }

    /** The report of the most recent crashAndRecover(). */
    const txn::RecoveryReport& lastReport() const { return lastReport_; }

    nvm::Pool& pool() { return *pool_; }
    alloc::PmAllocator& heap() { return *heap_; }
    txn::Runtime& runtime() { return *runtime_; }
    txn::Engine& engine() { return *engine_; }
    ds::KvStructure& kv() { return *kv_; }
    CrashScheduler& sched() { return *sched_; }
    ShadowOracle& shadow() { return shadow_; }

    /** freeBytes() right after structure creation (leak baseline). */
    size_t baselineFreeBytes() const { return baselineFree_; }

 private:
    txn::RuntimeKind kind_;
    std::string structName_;
    std::unique_ptr<nvm::Pool> pool_;
    std::unique_ptr<alloc::PmAllocator> heap_;
    std::unique_ptr<txn::Runtime> runtime_;
    std::unique_ptr<txn::Engine> engine_;
    std::unique_ptr<ds::KvStructure> kv_;
    std::unique_ptr<CrashScheduler> sched_;
    ShadowOracle shadow_;
    size_t baselineFree_ = 0;
    txn::RecoveryMode recMode_ = txn::RecoveryMode::full;
    txn::RecoveryReport lastReport_;

    void recoverOnce();
};

struct SweepConfig {
    Tear tear = Tear::allLost;
    uint64_t seed = 1;
    /** Crash-free attempts in a row that end a sweep. */
    int quietRuns = 2;
    /** Safety cap on the swept event index. */
    uint64_t maxIndex = 20000;
    /** Committed keys present before the sweeps start. */
    int baselineKeys = 4;
    bool sweepInsert = true;
    bool sweepUpdate = true;
    bool sweepRemove = true;
    /** Replay committed history on a fresh rig, compare freeBytes. */
    bool leakAudit = true;
    /** Optional op budget; 0 = unlimited. The sweep stops early
     *  (result.truncated) when the budget runs out. */
    uint64_t budget = 0;
    /** Recovery path every crash goes through (lazy: triage +
     *  first-touch + settle — same audits, instant-restart path). */
    txn::RecoveryMode recovery = txn::RecoveryMode::full;
};

struct SweepResult {
    bool passed = true;
    bool truncated = false;
    uint64_t attempts = 0;   ///< armed operations executed
    uint64_t crashes = 0;    ///< traps that fired
    uint64_t commits = 0;    ///< operations that ended committed
    /** Crashes whose recovery *declared* salvage aborts. The shadow
     *  oracle stops binding for that image (same contract the media
     *  sweep honors); the sweep audits quarantine integrity, then
     *  rebuilds the rig from the committed history so later attempts
     *  are audited strictly again. Plain tears never declare under
     *  the fencing baseline log writer — this counts only media
     *  damage and the eliding (zero-fence) writers' best-effort
     *  roll-backs. */
    uint64_t declaredAborts = 0;
    uint64_t maxEventIndex = 0;
    std::string failure;     ///< first violation (empty if none)
    std::string summary(txn::RuntimeKind kind,
                        const std::string& structure) const;
};

/** Crash one (protocol, structure) pair at every event index. */
SweepResult exhaustiveSweep(txn::RuntimeKind kind,
                            const std::string& structure,
                            const SweepConfig& cfg = SweepConfig{});

struct MediaSweepConfig {
    Tear tear = Tear::allLost;
    uint64_t seed = 1;
    /** Fault round landed by every tear (enabled forced on). */
    FaultSpec faults{};
    /** Crash-free armed cases in a row that end the sweep. */
    int quietRuns = 2;
    /** First swept event index (cases are independent — a fresh rig
     *  per index — so a single failing case replays exactly with
     *  startIndex = failingIndex, budget = 1). */
    uint64_t startIndex = 1;
    /** Safety cap on the swept event index. */
    uint64_t maxIndex = 4000;
    /** Committed keys present before the armed op. */
    int baselineKeys = 4;
    /** Armed-case cap; 0 = unlimited (run to quiescence). */
    uint64_t budget = 0;
    /** Pool size per case (each case is a fresh rig). */
    size_t poolBytes = 8ULL << 20;
    /** Recovery path every crash goes through. */
    txn::RecoveryMode recovery = txn::RecoveryMode::full;
};

struct MediaSweepResult {
    bool passed = true;
    bool truncated = false;
    uint64_t cases = 0;          ///< armed cases executed
    uint64_t crashes = 0;        ///< traps that fired
    uint64_t salvageAborts = 0;  ///< slots declared aborted, summed
    uint64_t strictAudits = 0;   ///< clean recoveries, full oracle
    uint64_t relaxedAudits = 0;  ///< declared-salvage recoveries
    uint64_t collateralKeys = 0; ///< keys lost under declared salvage
    uint64_t failingIndex = 0;   ///< event index of first failure
    std::string failure;         ///< first violation (empty if none)
    std::string summary(txn::RuntimeKind kind,
                        const std::string& structure) const;
};

/**
 * Crash × media-fault sweep: for event index k = 1, 2, ... run a
 * fresh rig with a seeded fault model, arm the k-th event of one
 * mutating op, tear + inject + recover, then audit. The shadow-oracle
 * audit is strict unless the RecoveryReport *declared* salvage aborts
 * for this case — detected damage relaxes the audit to structure
 * usability + quarantine integrity; undetected damage still fails.
 * A protocol that cannot detect media damage (nolog) therefore fails
 * this sweep, which is the honesty check on the relaxation.
 */
MediaSweepResult mediaFaultSweep(txn::RuntimeKind kind,
                                 const std::string& structure,
                                 const MediaSweepConfig& cfg =
                                     MediaSweepConfig{});

/** A replayable fuzz case: fully determined by these three numbers
 *  (plus the FuzzConfig shape parameters). crashAt = 0: no crash. */
struct FuzzCase {
    uint64_t seed = 1;
    uint32_t nOps = 64;      ///< operations per logical thread
    uint64_t crashAt = 0;    ///< armed event index
};

struct FuzzConfig {
    unsigned threads = 2;    ///< logical threads (sim::Executor)
    uint32_t opsPerCase = 48;
    uint64_t keySpace = 48;  ///< Zipfian key universe
    Tear tear = Tear::randomTear;
    uint64_t budget = 4000;  ///< total ops across all cases
    uint64_t baseSeed = 1;
    bool shrink = true;
    /** Optional media-fault round per tear. A case whose recovery
     *  declares salvage aborts ends early (usability-probed, not
     *  oracle-verified) — the declaration is the contract. */
    FaultSpec faults{};
    /** Recovery path every crash goes through. */
    txn::RecoveryMode recovery = txn::RecoveryMode::full;
};

/** Outcome of one fuzz case replay. */
struct CaseResult {
    std::string failure;     ///< empty = pass
    uint64_t events = 0;     ///< events the case generated
    bool crashed = false;    ///< did the armed trap fire?
    uint64_t opsExecuted = 0;
};

/**
 * Replay one case bit-for-bit (the CLI's --replay path). The case is
 * deterministic: same seed, nOps, crashAt and config shape reproduce
 * the same history, crash point and tear.
 */
CaseResult runFuzzCase(txn::RuntimeKind kind,
                       const std::string& structure,
                       const FuzzCase& c, const FuzzConfig& cfg);

struct FuzzOutcome {
    bool passed = true;
    uint64_t casesRun = 0;
    uint64_t opsRun = 0;
    uint64_t crashes = 0;
    FuzzCase failing{};      ///< first failing case (if !passed)
    FuzzCase shrunk{};       ///< minimized case (if !passed)
    std::string failure;
    /** Human-readable report incl. the --replay reproduction line. */
    std::string report(txn::RuntimeKind kind,
                       const std::string& structure) const;
};

/** Run randomized cases until the op budget is exhausted or one
 *  fails; failing cases are shrunk before returning. */
FuzzOutcome fuzz(txn::RuntimeKind kind, const std::string& structure,
                 const FuzzConfig& cfg = FuzzConfig{});

/**
 * Greedy minimization: repeatedly try smaller nOps, then smaller
 * crashAt, keeping every candidate that still fails. Bounded by
 * `maxReplays` case replays.
 */
FuzzCase shrinkCase(txn::RuntimeKind kind, const std::string& structure,
                    const FuzzCase& failing, const FuzzConfig& cfg,
                    int maxReplays = 40);

}  // namespace cnvm::torture

#endif  // CNVM_TESTING_TORTURE_H
