#include "testing/oracle.h"

#include "common/error.h"

namespace cnvm::torture {

std::string
ShadowOracle::verify(ds::KvStructure& kv) const
{
    try {
        if (!kv.selfCheck())
            return strprintf("%s: structure invariants violated",
                             kv.name());
        ds::LookupResult r;
        for (const auto& [key, val] : shadow_) {
            if (!kv.lookup(key, &r))
                return strprintf("%s: key \"%s\" missing (expected "
                                 "%zu-byte value)",
                                 kv.name(), key.c_str(), val.size());
            if (r.str() != val)
                return strprintf("%s: key \"%s\" torn: got %zu bytes, "
                                 "expected %zu bytes",
                                 kv.name(), key.c_str(),
                                 static_cast<size_t>(r.len),
                                 val.size());
        }
        // Keys the drivers never generate: must stay absent.
        for (int i = 0; i < 4; i++) {
            std::string probe = strprintf("zz-absent-%d", i);
            if (shadow_.count(probe) == 0 && kv.lookup(probe, &r))
                return strprintf("%s: phantom key \"%s\" present",
                                 kv.name(), probe.c_str());
        }
    } catch (const PanicError& e) {
        return strprintf("%s: panic during verification: %s",
                         kv.name(), e.what());
    } catch (const FatalError& e) {
        return strprintf("%s: fatal error during verification: %s",
                         kv.name(), e.what());
    }
    return {};
}

}  // namespace cnvm::torture
