/**
 * @file
 * CrashScheduler: deterministic crash-point injection driven by the
 * cache model's persistency-event stream.
 *
 * The old crash tests armed Pool's write trap ("crash at the k-th
 * pool write"), which silently under-covers: a protocol change that
 * adds flushes or fences without adding writes creates crash windows
 * no write count can reach. The scheduler instead subscribes to the
 * CacheSim's LineObserver feed and counts *persistency events* — the
 * taxonomy recovery actually cares about (DESIGN.md §11):
 *
 *   store   a cache line is dirtied (observer runs before the store's
 *           memcpy, so a crash here loses the store entirely);
 *   clwb    a dirty line moves to the pending state;
 *   sfence  the fence retires every pending line to durable.
 *
 * arm(k) throws nvm::CrashInjected in place of the k-th subsequent
 * event (k = 1 is the very next one). The trap disarms itself when it
 * fires, so the recovery that follows runs to completion unless the
 * caller re-arms it (the recovery-idempotence tests do exactly that).
 *
 * Installing the observer disables CacheSim's dirty-line fast path, so
 * every transition is visible — including re-dirties of already-dirty
 * lines, which are crash sites too. Event counting is exact and
 * deterministic for a deterministic workload, which is what makes the
 * fuzzer's (seed, event-index) pairs replayable.
 */
#ifndef CNVM_TESTING_CRASH_SCHEDULER_H
#define CNVM_TESTING_CRASH_SCHEDULER_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "nvm/pool.h"

namespace cnvm::torture {

/** Persistency-event taxonomy (one crash site per event). */
enum class EventKind : uint8_t {
    store = 0,  ///< a line was dirtied by a store
    clwb = 1,   ///< a dirty line was flushed
    sfence = 2, ///< a fence retired the pending lines
};

constexpr size_t kNumEventKinds = 3;

const char* eventKindName(EventKind k);

/** One observed event (trace mode, --list-sites). */
struct TraceEvent {
    EventKind kind;
    uint64_t line;  ///< cache-line number (0 for sfence)
};

class CrashScheduler : public nvm::LineObserver {
 public:
    /** Installs itself as `pool`'s line observer. */
    explicit CrashScheduler(nvm::Pool& pool);
    ~CrashScheduler() override;

    CrashScheduler(const CrashScheduler&) = delete;
    CrashScheduler& operator=(const CrashScheduler&) = delete;

    /**
     * Crash at the `countdown`-th event from now (1 = the next one);
     * 0 disarms. The trap disarms itself when it fires.
     */
    void
    arm(uint64_t countdown)
    {
        countdown_ = countdown;
        fired_ = false;
    }

    void disarm() { countdown_ = 0; }
    bool armed() const { return countdown_ != 0; }

    /** Did the last armed trap fire? */
    bool fired() const { return fired_; }

    /** The event the last trap fired on. */
    TraceEvent firedEvent() const { return firedEvent_; }

    /** Events observed since construction / resetCounts(). */
    uint64_t eventCount() const { return total_; }
    uint64_t count(EventKind k) const
    {
        return perKind_[static_cast<size_t>(k)];
    }
    void resetCounts();

    /** Capture every event into trace() (for --list-sites). */
    void setTraceEnabled(bool on) { traceEnabled_ = on; }
    const std::vector<TraceEvent>& trace() const { return trace_; }
    void clearTrace() { trace_.clear(); }

    /** "k: store line 123" site listing of the captured trace. */
    std::string describeTrace() const;

    // nvm::LineObserver
    void lineDirtied(uint64_t line) override
    {
        onEvent(EventKind::store, line);
    }
    void lineFlushed(uint64_t line) override
    {
        onEvent(EventKind::clwb, line);
    }
    void fenceRetired() override { onEvent(EventKind::sfence, 0); }
    /** Crash/discard processing: never counted, never throws. */
    void trackingReset() override {}

 private:
    void onEvent(EventKind k, uint64_t line);

    nvm::Pool& pool_;
    uint64_t countdown_ = 0;
    bool fired_ = false;
    bool traceEnabled_ = false;
    TraceEvent firedEvent_{EventKind::store, 0};
    uint64_t total_ = 0;
    std::array<uint64_t, kNumEventKinds> perKind_{};
    std::vector<TraceEvent> trace_;
};

}  // namespace cnvm::torture

#endif  // CNVM_TESTING_CRASH_SCHEDULER_H
