#include "testing/torture.h"

#include <algorithm>

#include "common/error.h"
#include "common/rand.h"
#include "nvm/fault_model.h"
#include "runtimes/salvage.h"
#include "sim/executor.h"

namespace cnvm::torture {

namespace {

/** Canonical protocol name for reports / --replay lines. */
const char*
kindName(txn::RuntimeKind kind)
{
    switch (kind) {
      case txn::RuntimeKind::noLog: return "nolog";
      case txn::RuntimeKind::undo: return "undo";
      case txn::RuntimeKind::redo: return "redo";
      case txn::RuntimeKind::clobber: return "clobber";
      case txn::RuntimeKind::atlas: return "atlas";
      case txn::RuntimeKind::ido: return "ido";
    }
    return "?";
}

/** Deterministic value bytes for (key, salt). */
std::string
valueFor(const std::string& key, uint64_t salt, size_t len)
{
    std::string v(len, '\0');
    Xorshift r(fnv1a(key.data(), key.size()) ^ (salt * 0x9e3779b9ULL));
    for (char& c : v)
        c = static_cast<char>('a' + r.nextUint(26));
    return v;
}

/** Seeded torn-write knobs: survival drawn from a coarse grid so the
 *  extremes (everything lost / everything evicted) occur often. */
nvm::CrashParams
paramsFor(uint64_t seed)
{
    static const double levels[] = {0.0, 0.25, 0.5, 0.75, 1.0};
    Xorshift r(seed * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
    nvm::CrashParams p;
    p.dirtySurvival = levels[r.nextUint(5)];
    p.pendingSurvival = levels[r.nextUint(5)];
    return p;
}

/** An operation whose commit status the drivers have resolved. */
struct CommittedOp {
    bool isInsert;
    std::string key;
    std::string val;  ///< empty for removes
};

/**
 * Resolve an interrupted single-key operation after recovery: the
 * atomicity contract says the structure holds either the old state or
 * the new state, never a blend.
 * @return empty string on success (with *committed set), else the
 *         violation description.
 */
std::string
resolveInterrupted(ds::KvStructure& kv, const ShadowOracle& shadow,
                   bool isInsert, const std::string& key,
                   const std::string& newVal, bool* committed)
{
    ds::LookupResult r;
    bool found;
    try {
        found = kv.lookup(key, &r);
    } catch (const PanicError& e) {
        return strprintf("panic resolving interrupted op on \"%s\": %s",
                         key.c_str(), e.what());
    } catch (const FatalError& e) {
        return strprintf("fatal resolving interrupted op on \"%s\": %s",
                         key.c_str(), e.what());
    }
    bool hadOld = shadow.contains(key);
    std::string oldVal = shadow.valueOf(key);
    if (isInsert) {
        if (found && r.str() == newVal) {
            *committed = true;
            return {};
        }
        if (found && hadOld && r.str() == oldVal) {
            *committed = false;
            return {};
        }
        if (!found && !hadOld) {
            *committed = false;
            return {};
        }
        return strprintf(
            "interrupted insert of \"%s\" torn: %s (old %zu bytes, "
            "new %zu bytes)",
            key.c_str(),
            found ? strprintf("found %zu unexpected bytes",
                              static_cast<size_t>(r.len))
                        .c_str()
                  : "key vanished",
            oldVal.size(), newVal.size());
    }
    // Interrupted remove.
    if (!found) {
        *committed = true;
        return {};
    }
    if (hadOld && r.str() == oldVal) {
        *committed = false;
        return {};
    }
    return strprintf("interrupted remove of \"%s\" torn: key still "
                     "present with %zu unexpected bytes",
                     key.c_str(), static_cast<size_t>(r.len));
}

}  // namespace

const char*
tearName(Tear t)
{
    return t == Tear::allLost ? "alllost" : "random";
}

TortureRig::TortureRig(txn::RuntimeKind kind,
                       const std::string& structure, size_t poolBytes)
    : kind_(kind), structName_(structure)
{
    nvm::PoolConfig cfg;
    cfg.size = poolBytes;
    cfg.maxThreads = 8;
    cfg.slotBytes = 128ULL << 10;
    pool_ = nvm::Pool::create(cfg);
    // Pool::create only claims the ambient slot when it is empty, but
    // the leak-audit replay rig coexists with the rig under test, so
    // claim it explicitly and restore on destruction (LIFO nesting).
    nvm::Pool::setCurrent(pool_.get());
    heap_ = std::make_unique<alloc::PmAllocator>(*pool_);
    runtime_ = rt::makeRuntime(kind, *pool_, *heap_);
    engine_ = std::make_unique<txn::Engine>(*runtime_);
    kv_ = ds::makeKv(structure, *engine_, 0);
    baselineFree_ = heap_->freeBytes();
    sched_ = std::make_unique<CrashScheduler>(*pool_);
}

TortureRig::~TortureRig()
{
    sched_.reset();  // uninstall the observer before the pool dies
    if (nvm::Pool::current() == pool_.get())
        nvm::Pool::setCurrent(nullptr);
}

void
TortureRig::enableFaults(const FaultSpec& spec)
{
    nvm::FaultConfig fc;
    fc.seed = spec.seed;
    fc.bitFlips = spec.bitFlips;
    fc.poisons = spec.poisons;
    fc.transients = spec.transients;
    fc.regionMask = spec.regionMask;
    fc.injectOnCrash = true;
    pool_->setFaultModel(std::make_unique<nvm::FaultModel>(fc));
    rt::defineFaultRegions(*pool_, *heap_);
}

void
TortureRig::recoverOnce()
{
    if (recMode_ != txn::RecoveryMode::lazy) {
        lastReport_ = runtime_->recover();
        return;
    }
    // Instant-restart path, driven deterministically on this thread:
    // triage, then first-touch admission of every slot (each heals its
    // pending entry inline), then settle — which heals anything left
    // plus the incremental heap rebuild and folds the cumulative
    // report into the engine. A trap firing anywhere inside leaves
    // the session resumable: the next recover() re-triages.
    engine_->recover(txn::RecoveryMode::lazy,
                     /* backgroundHealer */ false);
    for (unsigned t = 0; t < pool_->maxThreads(); t++)
        engine_->admitSlot(t);
    lastReport_ = engine_->finishRecovery();
}

void
TortureRig::crashAndRecover(Tear tear, uint64_t seed,
                            const nvm::CrashParams& params,
                            int recoveryRetears)
{
    // simulateCrash*() runs the fault model's injection round (a
    // no-op when no model is attached).
    if (tear == Tear::allLost)
        pool_->simulateCrashAllLost();
    else
        pool_->simulateCrash(seed, params);
    for (int r = 0; r < recoveryRetears; r++) {
        // Crash recovery itself partway through, re-tear (another
        // injection round), and try again: recovery must be
        // idempotent even while faults keep landing. The arm point
        // walks forward per round to sample different windows.
        sched_->arm(7 + 13 * static_cast<uint64_t>(r));
        try {
            recoverOnce();
            sched_->disarm();
            return;  // recovery outran the trap
        } catch (const nvm::CrashInjected&) {
            sched_->disarm();
            pool_->simulateCrashAllLost();
        }
    }
    recoverOnce();
}

std::string
SweepResult::summary(txn::RuntimeKind kind,
                     const std::string& structure) const
{
    return strprintf(
        "%-8s %-8s %s: %llu attempts, %llu crashes, %llu commits, "
        "%llu declared aborts, max event index %llu%s%s%s",
        kindName(kind), structure.c_str(),
        passed ? "PASS" : "FAIL",
        static_cast<unsigned long long>(attempts),
        static_cast<unsigned long long>(crashes),
        static_cast<unsigned long long>(commits),
        static_cast<unsigned long long>(declaredAborts),
        static_cast<unsigned long long>(maxEventIndex),
        truncated ? " (budget-truncated)" : "",
        failure.empty() ? "" : "\n    first failure: ",
        failure.c_str());
}

SweepResult
exhaustiveSweep(txn::RuntimeKind kind, const std::string& structure,
                const SweepConfig& cfg)
{
    SweepResult res;
    auto rig = std::make_unique<TortureRig>(kind, structure);
    rig->setRecoveryMode(cfg.recovery);
    std::vector<CommittedOp> history;
    uint64_t usedOps = 0;

    auto fail = [&](const std::string& why) {
        if (res.passed) {
            res.passed = false;
            res.failure = why;
        }
    };
    // After a *declared* salvage abort the image may hold arbitrarily
    // torn state (an eliding log writer's roll-back is best-effort) —
    // even walking it can loop on a torn pointer. Discard it and
    // rebuild an equivalent clean rig by replaying the committed
    // history, so the sweep keeps auditing strictly from here on.
    auto rebuildRig = [&] {
        rig.reset();  // LIFO pool-slot nesting: destroy before create
        rig = std::make_unique<TortureRig>(kind, structure);
        rig->setRecoveryMode(cfg.recovery);
        try {
            for (const CommittedOp& op : history) {
                if (op.isInsert) {
                    rig->kv().insert(op.key, op.val);
                    rig->shadow().noteInsert(op.key, op.val);
                } else {
                    rig->kv().remove(op.key);
                    rig->shadow().noteRemove(op.key);
                }
            }
        } catch (const PanicError& e) {
            fail(strprintf("history replay after declared salvage "
                           "panicked: %s",
                           e.what()));
        }
    };
    auto budgetLeft = [&] {
        if (cfg.budget != 0 && usedOps >= cfg.budget) {
            res.truncated = true;
            return false;
        }
        return true;
    };
    auto commitInsert = [&](const std::string& k, const std::string& v) {
        rig->shadow().noteInsert(k, v);
        history.push_back({true, k, v});
        res.commits++;
    };
    auto commitRemove = [&](const std::string& k) {
        rig->shadow().noteRemove(k);
        history.push_back({false, k, {}});
        res.commits++;
    };
    auto verifyAll = [&](uint64_t k, const char* phase) {
        std::string err = rig->shadow().verify(rig->kv());
        if (!err.empty())
            fail(strprintf("%s sweep, event index %llu: %s", phase,
                           static_cast<unsigned long long>(k),
                           err.c_str()));
    };

    /**
     * One armed operation at event index k. Returns false once the
     * sweep phase should end (phase quiesced, budget out, or failed).
     */
    auto attempt = [&](uint64_t k, const char* phase, bool isInsert,
                       const std::string& key, const std::string& val,
                       int* quiet) {
        usedOps++;
        res.attempts++;
        rig->sched().arm(k);
        bool crashed = false;
        try {
            if (isInsert)
                rig->kv().insert(key, val);
            else
                rig->kv().remove(key);
        } catch (const nvm::CrashInjected&) {
            crashed = true;
        } catch (const PanicError& e) {
            rig->sched().disarm();
            fail(strprintf("%s sweep, event index %llu: op panicked: "
                           "%s",
                           phase, static_cast<unsigned long long>(k),
                           e.what()));
            return;
        } catch (const FatalError& e) {
            rig->sched().disarm();
            fail(strprintf("%s sweep, event index %llu: op failed: %s",
                           phase, static_cast<unsigned long long>(k),
                           e.what()));
            return;
        }
        rig->sched().disarm();
        if (!crashed) {
            (*quiet)++;
            if (isInsert)
                commitInsert(key, val);
            else
                commitRemove(key);
            verifyAll(k, phase);
            return;
        }
        *quiet = 0;
        res.crashes++;
        res.maxEventIndex = std::max(res.maxEventIndex, k);
        try {
            rig->crashAndRecover(cfg.tear, cfg.seed * 1000003 + k,
                                 paramsFor(cfg.seed ^ (k << 20)));
        } catch (const PanicError& e) {
            fail(strprintf("%s sweep, event index %llu: recovery "
                           "panicked: %s",
                           phase, static_cast<unsigned long long>(k),
                           e.what()));
            return;
        } catch (const FatalError& e) {
            fail(strprintf("%s sweep, event index %llu: recovery "
                           "failed: %s",
                           phase, static_cast<unsigned long long>(k),
                           e.what()));
            return;
        }
        if (rig->lastReport().salvageAborted > 0) {
            // Recovery abandoned the interrupted transaction and said
            // so — media damage, or an eliding (zero-fence) log
            // writer whose roll-back is best-effort. The declaration
            // is the contract, exactly as in the media sweep: the
            // abandoned op did not commit, per-image state may
            // disagree with the shadow, and only quarantine
            // integrity still binds. Rebuild a clean rig from the
            // committed history so the *next* attempt is audited
            // strictly again.
            res.declaredAborts++;
            if (rig->heap().quarantineViolation()) {
                fail(strprintf("%s sweep, event index %llu: "
                               "quarantined block resurfaced in the "
                               "free map",
                               phase,
                               static_cast<unsigned long long>(k)));
                return;
            }
            rebuildRig();
            return;
        }
        bool committed = false;
        std::string err = resolveInterrupted(rig->kv(), rig->shadow(),
                                             isInsert, key, val,
                                             &committed);
        if (!err.empty()) {
            fail(strprintf("%s sweep, event index %llu: %s", phase,
                           static_cast<unsigned long long>(k),
                           err.c_str()));
            return;
        }
        if (committed) {
            if (isInsert)
                commitInsert(key, val);
            else
                commitRemove(key);
        }
        verifyAll(k, phase);
    };

    // Committed baseline so sweeps mutate a non-trivial structure.
    // All generated keys are unique within their first 8 bytes:
    // rbtree/skiplist key on keyToU64 (the big-endian first 8 bytes),
    // so longer shared prefixes would alias distinct shadow keys.
    for (int i = 0; i < cfg.baselineKeys && res.passed; i++) {
        std::string key = strprintf("b%07d", i);
        std::string val = valueFor(key, cfg.seed, 20);
        try {
            rig->kv().insert(key, val);
            commitInsert(key, val);
            usedOps++;
        } catch (const PanicError& e) {
            fail(strprintf("baseline insert panicked: %s", e.what()));
        }
    }

    if (cfg.sweepInsert && res.passed) {
        int quiet = 0;
        for (uint64_t k = 1; quiet < cfg.quietRuns && res.passed; k++) {
            if (!budgetLeft())
                break;
            if (k > cfg.maxIndex) {
                fail("insert sweep did not quiesce (maxIndex hit)");
                break;
            }
            std::string key = strprintf(
                "i%07llu", static_cast<unsigned long long>(k));
            attempt(k, "insert", true, key,
                    valueFor(key, cfg.seed, 20), &quiet);
        }
    }

    if (cfg.sweepUpdate && res.passed) {
        std::string key = "u-target";
        std::string val = valueFor(key, cfg.seed, 20);
        try {
            rig->kv().insert(key, val);
            commitInsert(key, val);
            usedOps++;
        } catch (const PanicError& e) {
            fail(strprintf("update-target insert panicked: %s",
                           e.what()));
        }
        int quiet = 0;
        for (uint64_t k = 1; quiet < cfg.quietRuns && res.passed; k++) {
            if (!budgetLeft())
                break;
            if (k > cfg.maxIndex) {
                fail("update sweep did not quiesce (maxIndex hit)");
                break;
            }
            // Alternate value sizes: same-size updates stay in place,
            // different-size updates exercise the realloc/reinsert
            // paths of the structures.
            size_t len = (k % 2 == 0) ? 20 : 28;
            attempt(k, "update", true, key,
                    valueFor(key, cfg.seed + k, len), &quiet);
        }
    }

    if (cfg.sweepRemove && res.passed) {
        int quiet = 0;
        for (uint64_t k = 1; quiet < cfg.quietRuns && res.passed; k++) {
            if (!budgetLeft())
                break;
            if (k > cfg.maxIndex) {
                fail("remove sweep did not quiesce (maxIndex hit)");
                break;
            }
            // A fresh committed victim per attempt keeps the swept
            // operation's shape stable while the sweep advances.
            std::string key = strprintf(
                "r%07llu", static_cast<unsigned long long>(k));
            std::string val = valueFor(key, cfg.seed, 20);
            try {
                rig->kv().insert(key, val);
                commitInsert(key, val);
                usedOps++;
            } catch (const PanicError& e) {
                fail(strprintf("victim insert panicked: %s",
                               e.what()));
                break;
            }
            attempt(k, "remove", false, key, val, &quiet);
        }
    }

    // Allocator leak audit: empty the structure, then replay only the
    // committed operations on a fresh rig. Rolled-back operations must
    // have left no persistent allocation behind, so the two allocators
    // must agree byte-for-byte on total free space.
    if (cfg.leakAudit && res.passed) {
        std::vector<std::string> keys;
        for (const auto& [k, v] : rig->shadow().entries())
            keys.push_back(k);
        for (const std::string& k : keys) {
            try {
                rig->kv().remove(k);
                commitRemove(k);
                usedOps++;
            } catch (const PanicError& e) {
                fail(strprintf("cleanup remove panicked: %s",
                               e.what()));
                break;
            }
        }
        if (res.passed) {
            verifyAll(0, "cleanup");
            TortureRig ref(kind, structure);
            try {
                for (const CommittedOp& op : history) {
                    if (op.isInsert)
                        ref.kv().insert(op.key, op.val);
                    else
                        ref.kv().remove(op.key);
                }
            } catch (const PanicError& e) {
                fail(strprintf("leak-audit replay panicked: %s",
                               e.what()));
            }
            if (res.passed &&
                ref.heap().freeBytes() != rig->heap().freeBytes()) {
                fail(strprintf(
                    "allocator leak: %zu free bytes after crashes vs "
                    "%zu after crash-free replay of the %zu committed "
                    "ops",
                    rig->heap().freeBytes(), ref.heap().freeBytes(),
                    history.size()));
            }
        }
    }

    return res;
}

std::string
MediaSweepResult::summary(txn::RuntimeKind kind,
                          const std::string& structure) const
{
    return strprintf(
        "%-8s %-8s media %s: %llu cases, %llu crashes, %llu salvage "
        "aborts, %llu strict + %llu relaxed audits, %llu collateral "
        "keys%s%s%s",
        kindName(kind), structure.c_str(), passed ? "PASS" : "FAIL",
        static_cast<unsigned long long>(cases),
        static_cast<unsigned long long>(crashes),
        static_cast<unsigned long long>(salvageAborts),
        static_cast<unsigned long long>(strictAudits),
        static_cast<unsigned long long>(relaxedAudits),
        static_cast<unsigned long long>(collateralKeys),
        truncated ? " (budget-truncated)" : "",
        failure.empty()
            ? ""
            : strprintf("\n    first failure (event index %llu): ",
                        static_cast<unsigned long long>(failingIndex))
                  .c_str(),
        failure.c_str());
}

MediaSweepResult
mediaFaultSweep(txn::RuntimeKind kind, const std::string& structure,
                const MediaSweepConfig& cfg)
{
    MediaSweepResult res;
    int quiet = 0;

    auto fail = [&](uint64_t k, const std::string& why) {
        if (!res.passed)
            return;
        res.passed = false;
        res.failingIndex = k;
        res.failure = why + strprintf(
            "\n    reproduce: cnvm_torture --protocol %s --structure "
            "%s --mode media --fault %u:%u:%u --fault-regions %s "
            "--fault-recovery %d --fault-seed %llu --index %llu",
            kindName(kind), structure.c_str(), cfg.faults.bitFlips,
            cfg.faults.poisons, cfg.faults.transients,
            nvm::faultRegionNames(cfg.faults.regionMask).c_str(),
            cfg.faults.duringRecoveryRounds,
            static_cast<unsigned long long>(cfg.seed),
            static_cast<unsigned long long>(k));
    };

    for (uint64_t k = cfg.startIndex; quiet < cfg.quietRuns && res.passed;
         k++) {
        if (cfg.budget != 0 && res.cases >= cfg.budget) {
            res.truncated = true;
            break;
        }
        if (k > cfg.maxIndex) {
            fail(k, "media sweep did not quiesce (maxIndex hit)");
            break;
        }
        // Every case is a fresh rig: faults from one case must never
        // bleed into the next, and a failing index replays exactly.
        TortureRig rig(kind, structure, cfg.poolBytes);
        rig.setRecoveryMode(cfg.recovery);
        FaultSpec fs = cfg.faults;
        fs.enabled = true;
        fs.seed = cfg.seed * 0x9e3779b97f4a7c15ULL + k;
        rig.enableFaults(fs);

        // Committed baseline. Injection only fires on tears, so these
        // crash-free inserts populate deterministically.
        bool ok = true;
        for (int i = 0; ok && i < cfg.baselineKeys; i++) {
            std::string key = strprintf("b%07d", i);
            std::string val = valueFor(key, cfg.seed, 20);
            try {
                rig.kv().insert(key, val);
                rig.shadow().noteInsert(key, val);
            } catch (const PanicError& e) {
                fail(k, strprintf("baseline insert panicked: %s",
                                  e.what()));
                ok = false;
            }
        }
        if (!ok)
            break;

        // One armed mutating op, shape cycling with the index so the
        // sweep crosses insert, in-place/resize update and remove.
        unsigned shape = cfg.baselineKeys >= 2 ? k % 3 : 1;
        bool isInsert = true;
        std::string key, val;
        switch (shape) {
          case 0:  // update an existing key (size change)
            key = "b0000000";
            val = valueFor(key, cfg.seed + k, 28);
            break;
          case 1:  // fresh insert
            key = strprintf("m%07llu",
                            static_cast<unsigned long long>(k));
            val = valueFor(key, cfg.seed, 20);
            break;
          default:  // remove a committed victim
            isInsert = false;
            key = "b0000001";
            break;
        }
        res.cases++;
        rig.sched().arm(k);
        bool crashed = false;
        try {
            if (isInsert)
                rig.kv().insert(key, val);
            else
                rig.kv().remove(key);
        } catch (const nvm::CrashInjected&) {
            crashed = true;
        } catch (const PanicError& e) {
            rig.sched().disarm();
            fail(k, strprintf("armed op panicked: %s", e.what()));
            break;
        } catch (const FatalError& e) {
            rig.sched().disarm();
            fail(k, strprintf("armed op failed: %s", e.what()));
            break;
        }
        rig.sched().disarm();
        if (!crashed) {
            quiet++;
            if (isInsert)
                rig.shadow().noteInsert(key, val);
            else
                rig.shadow().noteRemove(key);
            std::string err = rig.shadow().verify(rig.kv());
            if (!err.empty())
                fail(k, strprintf("crash-free case: %s", err.c_str()));
            continue;
        }
        quiet = 0;
        res.crashes++;
        try {
            rig.crashAndRecover(cfg.tear, cfg.seed * 1000003 + k,
                                paramsFor(cfg.seed ^ (k << 20)),
                                cfg.faults.duringRecoveryRounds);
        } catch (const PanicError& e) {
            fail(k, strprintf("recovery panicked: %s", e.what()));
            break;
        } catch (const FatalError& e) {
            fail(k, strprintf("recovery failed: %s", e.what()));
            break;
        }
        // Declared or not, quarantined blocks must never resurface in
        // the allocator's free map.
        if (rig.heap().quarantineViolation()) {
            fail(k, "quarantined block resurfaced in the free map");
            break;
        }
        const txn::RecoveryReport& rep = rig.lastReport();
        if (rep.salvageAborted == 0) {
            // Recovery claims full repair — the full oracle binds,
            // exactly as in the plain crash sweeps. A protocol that
            // cannot detect media damage (nolog) always lands here,
            // and honestly fails.
            res.strictAudits++;
            bool committed = false;
            std::string err = resolveInterrupted(
                rig.kv(), rig.shadow(), isInsert, key, val, &committed);
            if (err.empty()) {
                if (committed) {
                    if (isInsert)
                        rig.shadow().noteInsert(key, val);
                    else
                        rig.shadow().noteRemove(key);
                }
                err = rig.shadow().verify(rig.kv());
            }
            if (!err.empty()) {
                fail(k, strprintf("strict audit (no salvage "
                                  "declared): %s",
                                  err.c_str()));
                break;
            }
        } else {
            // Damage was detected and declared: the abandoned
            // transaction's effects are undefined (clobber cannot
            // un-write blind stores it could not restore), so per-key
            // state may legitimately disagree with the shadow. What
            // must still hold was checked above (quarantine
            // integrity) and below: probing must never crash the
            // recovered process. Everything else is counted as
            // declared collateral, not failure.
            res.relaxedAudits++;
            res.salvageAborts += rep.salvageAborted;
            for (const auto& [sk, sv] : rig.shadow().entries()) {
                try {
                    ds::LookupResult r;
                    bool found = rig.kv().lookup(sk, &r);
                    if (!found || r.str() != sv)
                        res.collateralKeys++;
                } catch (const PanicError&) {
                    res.collateralKeys++;
                } catch (const FatalError&) {
                    res.collateralKeys++;
                }
            }
            try {
                std::string sk = strprintf(
                    "s%07llu", static_cast<unsigned long long>(k));
                std::string sv = valueFor(sk, cfg.seed, 20);
                rig.kv().insert(sk, sv);
                ds::LookupResult r;
                if (!rig.kv().lookup(sk, &r) || r.str() != sv)
                    res.collateralKeys++;
            } catch (const PanicError&) {
                res.collateralKeys++;
            } catch (const FatalError&) {
                res.collateralKeys++;
            }
        }
    }
    return res;
}

namespace {

/** Oracle mismatch detected while a fuzz history is executing. */
struct OracleMismatch {
    std::string msg;
};

/** One scheduled fuzz operation. */
struct FuzzOp {
    enum Type : uint8_t { insert, remove, lookup };
    Type type;
    std::string key;
    std::string val;
};

std::vector<std::vector<FuzzOp>>
buildSchedule(const FuzzCase& c, const FuzzConfig& cfg,
              unsigned threads)
{
    std::vector<std::vector<FuzzOp>> sched(threads);
    Xorshift rng(c.seed);
    for (unsigned t = 0; t < threads; t++) {
        Zipfian zipf(std::max<uint64_t>(cfg.keySpace, 1), 0.99,
                     c.seed * 131 + t);
        sched[t].reserve(c.nOps);
        for (uint32_t i = 0; i < c.nOps; i++) {
            FuzzOp op;
            std::string key = strprintf(
                "k%05llu",
                static_cast<unsigned long long>(zipf.next()));
            uint64_t dice = rng.nextUint(100);
            if (dice < 55) {
                op.type = FuzzOp::insert;
                op.val = valueFor(key, rng.next(),
                                  8 + rng.nextUint(33));
            } else if (dice < 80) {
                op.type = FuzzOp::remove;
            } else {
                op.type = FuzzOp::lookup;
            }
            op.key = std::move(key);
            sched[t].push_back(std::move(op));
        }
    }
    return sched;
}

}  // namespace

CaseResult
runFuzzCase(txn::RuntimeKind kind, const std::string& structure,
            const FuzzCase& c, const FuzzConfig& cfg)
{
    CaseResult res;
    TortureRig rig(kind, structure);
    rig.setRecoveryMode(cfg.recovery);
    if (cfg.faults.enabled) {
        FaultSpec fs = cfg.faults;
        fs.seed = cfg.faults.seed * 0x9e3779b97f4a7c15ULL +
                  c.seed * 131 + c.crashAt;
        rig.enableFaults(fs);
    }
    unsigned threads = std::min(std::max(cfg.threads, 1u),
                                rig.pool().maxThreads());
    auto sched = buildSchedule(c, cfg, threads);

    // Execution bookkeeping so an interrupted history can continue
    // after recovery: ops completed per thread, plus the in-flight op.
    std::vector<uint32_t> done(threads, 0);
    const FuzzOp* inFlight = nullptr;

    auto applyOne = [&](unsigned tid, const FuzzOp& op) {
        inFlight = &op;
        switch (op.type) {
          case FuzzOp::insert:
            rig.kv().insert(op.key, op.val);
            rig.shadow().noteInsert(op.key, op.val);
            break;
          case FuzzOp::remove:
            rig.kv().remove(op.key);
            rig.shadow().noteRemove(op.key);
            break;
          case FuzzOp::lookup: {
            // The executor multiplexes logical threads on one OS
            // thread, so the shadow is exact at every op boundary.
            ds::LookupResult r;
            bool found = rig.kv().lookup(op.key, &r);
            bool expect = rig.shadow().contains(op.key);
            if (found != expect ||
                (found && r.str() != rig.shadow().valueOf(op.key))) {
                throw OracleMismatch{strprintf(
                    "lookup of \"%s\" on thread %u disagrees with "
                    "the shadow (found=%d expected=%d)",
                    op.key.c_str(), tid, found ? 1 : 0,
                    expect ? 1 : 0)};
            }
            break;
          }
        }
        inFlight = nullptr;
        res.opsExecuted++;
    };

    if (c.crashAt != 0)
        rig.sched().arm(c.crashAt);
    bool crashed = false;
    try {
        sim::Executor ex(threads);
        ex.run(c.nOps, [&](sim::ThreadCtx& ctx, size_t i) {
            applyOne(ctx.tid(), sched[ctx.tid()][i]);
            done[ctx.tid()] = static_cast<uint32_t>(i) + 1;
        });
    } catch (const nvm::CrashInjected&) {
        crashed = true;
    } catch (const OracleMismatch& m) {
        res.failure = m.msg;
    } catch (const PanicError& e) {
        res.failure = strprintf("history panicked: %s", e.what());
    } catch (const FatalError& e) {
        res.failure = strprintf("history failed: %s", e.what());
    }
    rig.sched().disarm();
    res.events = rig.sched().eventCount();
    res.crashed = crashed;
    if (!res.failure.empty())
        return res;

    if (crashed) {
        const FuzzOp* op = inFlight;
        try {
            rig.crashAndRecover(cfg.tear,
                                c.seed ^ (c.crashAt * 2654435761ULL),
                                paramsFor(c.seed + c.crashAt),
                                cfg.faults.enabled
                                    ? cfg.faults.duringRecoveryRounds
                                    : 0);
        } catch (const PanicError& e) {
            res.failure = strprintf("recovery panicked: %s", e.what());
            return res;
        } catch (const FatalError& e) {
            res.failure = strprintf("recovery failed: %s", e.what());
            return res;
        }
        if (rig.lastReport().salvageAborted > 0) {
            // Damage was detected and declared: the shadow oracle no
            // longer binds for this history. Audit what must still
            // hold — quarantine integrity — and end the case here;
            // the declaration is the contract. (No structural probe:
            // under an eliding log writer the abandoned image may
            // hold arbitrarily torn pointers, and even a read-only
            // walk can loop. A real deployment re-creates the
            // structure from its committed state, which is exactly
            // what the next case's fresh rig does.)
            if (rig.heap().quarantineViolation()) {
                res.failure =
                    "quarantined block resurfaced in the free map";
                return res;
            }
            return res;
        }
        if (op != nullptr && op->type != FuzzOp::lookup) {
            bool committed = false;
            res.failure = resolveInterrupted(
                rig.kv(), rig.shadow(), op->type == FuzzOp::insert,
                op->key, op->val, &committed);
            if (!res.failure.empty())
                return res;
            if (committed) {
                if (op->type == FuzzOp::insert)
                    rig.shadow().noteInsert(op->key, op->val);
                else
                    rig.shadow().noteRemove(op->key);
            }
        }
        res.failure = rig.shadow().verify(rig.kv());
        if (!res.failure.empty()) {
            res.failure = "post-recovery audit: " + res.failure;
            return res;
        }
        // Continue the remaining history single-threaded, as a
        // restarted process draining the rest of the workload would
        // (the interrupted op itself was resolved above).
        try {
            for (uint32_t i = 0; i < c.nOps; i++) {
                for (unsigned t = 0; t < threads; t++) {
                    if (i < done[t])
                        continue;
                    if (&sched[t][i] == op)
                        continue;
                    applyOne(t, sched[t][i]);
                }
            }
        } catch (const OracleMismatch& m) {
            res.failure = "post-recovery " + m.msg;
            return res;
        } catch (const PanicError& e) {
            res.failure = strprintf("post-recovery history panicked: "
                                    "%s",
                                    e.what());
            return res;
        } catch (const FatalError& e) {
            res.failure = strprintf("post-recovery history failed: %s",
                                    e.what());
            return res;
        }
    }

    res.failure = rig.shadow().verify(rig.kv());
    if (!res.failure.empty())
        res.failure = "final audit: " + res.failure;
    return res;
}

FuzzCase
shrinkCase(txn::RuntimeKind kind, const std::string& structure,
           const FuzzCase& failing, const FuzzConfig& cfg,
           int maxReplays)
{
    FuzzCase best = failing;
    int replays = 0;
    auto stillFails = [&](const FuzzCase& cand) {
        if (replays >= maxReplays)
            return false;
        replays++;
        return !runFuzzCase(kind, structure, cand, cfg)
                    .failure.empty();
    };

    // Phase 1: fewer operations. A shortened history that never
    // reaches the crash index simply passes, which correctly rejects
    // the candidate.
    bool progress = true;
    while (progress && replays < maxReplays) {
        progress = false;
        for (uint32_t cand :
             {best.nOps / 2, (best.nOps * 3) / 4, best.nOps - 1}) {
            if (cand < 1 || cand >= best.nOps)
                continue;
            FuzzCase c{best.seed, cand, best.crashAt};
            if (stillFails(c)) {
                best = c;
                progress = true;
                break;
            }
        }
    }
    // Phase 2: earlier crash index.
    progress = true;
    while (progress && replays < maxReplays) {
        progress = false;
        for (uint64_t cand : {best.crashAt / 2, (best.crashAt * 3) / 4,
                              best.crashAt - 1}) {
            if (cand < 1 || cand >= best.crashAt)
                continue;
            FuzzCase c{best.seed, best.nOps, cand};
            if (stillFails(c)) {
                best = c;
                progress = true;
                break;
            }
        }
    }
    return best;
}

std::string
FuzzOutcome::report(txn::RuntimeKind kind,
                    const std::string& structure) const
{
    std::string out = strprintf(
        "%-8s %-8s fuzz %s: %llu cases, %llu ops, %llu crashes\n",
        kindName(kind), structure.c_str(), passed ? "PASS" : "FAIL",
        static_cast<unsigned long long>(casesRun),
        static_cast<unsigned long long>(opsRun),
        static_cast<unsigned long long>(crashes));
    if (!passed) {
        out += strprintf(
            "    failure: %s\n"
            "    failing case: seed=%llu nOps=%u crashAt=%llu\n"
            "    shrunk case:  seed=%llu nOps=%u crashAt=%llu\n"
            "    reproduce: cnvm_torture --protocol %s --structure %s"
            " --replay %llu:%u:%llu\n",
            failure.c_str(),
            static_cast<unsigned long long>(failing.seed),
            failing.nOps,
            static_cast<unsigned long long>(failing.crashAt),
            static_cast<unsigned long long>(shrunk.seed), shrunk.nOps,
            static_cast<unsigned long long>(shrunk.crashAt),
            kindName(kind), structure.c_str(),
            static_cast<unsigned long long>(shrunk.seed), shrunk.nOps,
            static_cast<unsigned long long>(shrunk.crashAt));
    }
    return out;
}

FuzzOutcome
fuzz(txn::RuntimeKind kind, const std::string& structure,
     const FuzzConfig& cfg)
{
    FuzzOutcome out;
    Xorshift pick(cfg.baseSeed * 7919 + 17);
    uint64_t caseIdx = 0;
    auto fail = [&](const FuzzCase& c, const std::string& why) {
        out.passed = false;
        out.failing = c;
        out.failure = why;
        out.shrunk = cfg.shrink
                         ? shrinkCase(kind, structure, c, cfg)
                         : c;
    };
    while (out.passed && out.opsRun < cfg.budget) {
        // Dry run: count the case's events (and catch crash-free
        // bugs); then re-run armed at a random index within range.
        FuzzCase dryCase{cfg.baseSeed + caseIdx, cfg.opsPerCase, 0};
        CaseResult dry = runFuzzCase(kind, structure, dryCase, cfg);
        out.casesRun++;
        out.opsRun += std::max<uint64_t>(dry.opsExecuted, 1);
        if (!dry.failure.empty()) {
            fail(dryCase, dry.failure);
            break;
        }
        if (dry.events != 0) {
            FuzzCase armed{dryCase.seed, dryCase.nOps,
                           1 + pick.nextUint(dry.events)};
            CaseResult r = runFuzzCase(kind, structure, armed, cfg);
            out.casesRun++;
            out.opsRun += std::max<uint64_t>(r.opsExecuted, 1);
            if (r.crashed)
                out.crashes++;
            if (!r.failure.empty()) {
                fail(armed, r.failure);
                break;
            }
        }
        caseIdx++;
    }
    return out;
}

}  // namespace cnvm::torture
