/**
 * @file
 * Round-robin logical-thread executor.
 *
 * run() executes `opsPerThread` operations on each of N logical threads,
 * interleaving one operation per thread per round so logical clocks stay
 * loosely synchronized (which keeps the discrete-event lock model
 * faithful). The wall time of each operation's compute is measured and
 * added to the executing thread's clock; persistence stalls and lock
 * waits are added by the hooks in context.h / lock.h.
 *
 * The simulated elapsed time of the run is the maximum logical clock.
 *
 * Measured compute is scaled by computeScale() before entering the
 * clock: the interposition layer (virtual calls, read/write-set
 * tracking, software cache model) costs roughly 5x what the paper's
 * compiler-instrumented native code pays per access, so the default
 * scale of 0.2 restores a realistic compute-to-persistence-stall
 * ratio. Override with CNVM_COMPUTE_SCALE=<float>.
 */
#ifndef CNVM_SIM_EXECUTOR_H
#define CNVM_SIM_EXECUTOR_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/context.h"

namespace cnvm::sim {

class Executor {
 public:
    using OpFn = std::function<void(ThreadCtx&, size_t opIndex)>;

    explicit Executor(unsigned nThreads);

    unsigned nThreads() const { return nThreads_; }
    ThreadCtx& ctx(unsigned tid) { return ctxs_[tid]; }

    /**
     * Run `opsPerThread` ops on every logical thread.
     * @return simulated elapsed seconds (max logical clock).
     */
    double run(size_t opsPerThread, const OpFn& op);

    /** Max logical clock, in nanoseconds. */
    uint64_t elapsedNs() const;

    /** Zero every logical clock (between measurement phases). */
    void resetClocks();

 private:
    unsigned nThreads_;
    std::vector<ThreadCtx> ctxs_;
};

/**
 * Convenience: run a single-threaded simulated region and return its
 * simulated seconds. Used by the breakdown and application benchmarks.
 */
double timeSimulated(const std::function<void(ThreadCtx&)>& body);

/** Calibration factor applied to measured compute time. */
double computeScale();

}  // namespace cnvm::sim

#endif  // CNVM_SIM_EXECUTOR_H
