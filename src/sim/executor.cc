#include "sim/executor.h"

#include <algorithm>
#include <cstdlib>

#include "common/error.h"
#include "sim/lock.h"

namespace cnvm::sim {

LockCosts&
lockCosts()
{
    static LockCosts c;
    return c;
}

double
computeScale()
{
    static const double scale = [] {
        const char* v = std::getenv("CNVM_COMPUTE_SCALE");
        return v != nullptr ? std::atof(v) : 0.2;
    }();
    return scale;
}

Executor::Executor(unsigned nThreads) : nThreads_(nThreads)
{
    CNVM_CHECK(nThreads > 0, "executor needs at least one thread");
    ctxs_.reserve(nThreads);
    for (unsigned t = 0; t < nThreads; t++)
        ctxs_.emplace_back(t);
}

double
Executor::run(size_t opsPerThread, const OpFn& op)
{
    using clock = std::chrono::steady_clock;
    for (size_t i = 0; i < opsPerThread; i++) {
        for (unsigned t = 0; t < nThreads_; t++) {
            ThreadCtx& c = ctxs_[t];
            Scope scope(&c);
            auto t0 = clock::now();
            op(c, i);
            auto t1 = clock::now();
            auto ns = static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t1 - t0).count());
            c.advance(static_cast<uint64_t>(ns * computeScale()));
        }
    }
    return static_cast<double>(elapsedNs()) * 1e-9;
}

uint64_t
Executor::elapsedNs() const
{
    uint64_t mx = 0;
    for (const auto& c : ctxs_)
        mx = std::max(mx, c.clockNs());
    return mx;
}

void
Executor::resetClocks()
{
    for (auto& c : ctxs_)
        c.reset();
}

double
timeSimulated(const std::function<void(ThreadCtx&)>& body)
{
    using clock = std::chrono::steady_clock;
    ThreadCtx ctx(0);
    Scope scope(&ctx);
    auto t0 = clock::now();
    body(ctx);
    auto t1 = clock::now();
    auto ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            t1 - t0).count());
    ctx.advance(static_cast<uint64_t>(ns * computeScale()));
    return static_cast<double>(ctx.clockNs()) * 1e-9;
}

}  // namespace cnvm::sim
