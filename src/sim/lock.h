/**
 * @file
 * Dual-mode locks: real synchronization under OS threads, discrete-event
 * contention modeling under the logical-thread executor.
 *
 * In logical mode (sim::cur() != nullptr) the executor runs operations
 * one at a time, so no real mutual exclusion is needed; instead each lock
 * keeps "when will it be free" in simulated time and acquiring threads
 * wait (advance their clocks) accordingly. A global SimMutex therefore
 * serializes logical time across all threads — reproducing the flat
 * scaling of the paper's global-lock structures — while sharded or
 * per-node locks rarely collide and scale.
 *
 * In real-thread mode the same objects degrade to std::mutex /
 * std::shared_mutex so the library is actually thread-safe.
 */
#ifndef CNVM_SIM_LOCK_H
#define CNVM_SIM_LOCK_H

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "sim/context.h"

namespace cnvm::sim {

/** Cost knobs for lock primitives (added to logical clocks). */
struct LockCosts {
    uint64_t mutexAcquireNs = 40;   ///< uncontended pthread-style mutex
    uint64_t spinAcquireNs = 12;    ///< test-and-set spinlock
    uint64_t rwAcquireNs = 60;      ///< reader-writer lock
};

LockCosts& lockCosts();

/** Exclusive lock. `spin` selects the cheaper-acquire spinlock model. */
class SimMutex {
 public:
    explicit SimMutex(bool spin = false) : spin_(spin) {}

    void
    lock()
    {
        if (auto* c = cur()) {
            c->waitUntil(freeAt_);
            c->advance(spin_ ? lockCosts().spinAcquireNs
                             : lockCosts().mutexAcquireNs);
        } else {
            real_.lock();
        }
    }

    void
    unlock()
    {
        if (auto* c = cur())
            freeAt_ = c->clockNs();
        else
            real_.unlock();
    }

    void resetSim() { freeAt_ = 0; }

 private:
    bool spin_;
    uint64_t freeAt_ = 0;
    std::mutex real_;
};

/** Reader-writer lock with overlapping readers in logical time. */
class SimSharedMutex {
 public:
    void
    lock()
    {
        if (auto* c = cur()) {
            c->waitUntil(std::max(writerFreeAt_, readersFreeAt_));
            c->advance(lockCosts().rwAcquireNs);
        } else {
            real_.lock();
        }
    }

    void
    unlock()
    {
        if (auto* c = cur())
            writerFreeAt_ = c->clockNs();
        else
            real_.unlock();
    }

    void
    lock_shared()
    {
        if (auto* c = cur()) {
            c->waitUntil(writerFreeAt_);
            c->advance(lockCosts().rwAcquireNs);
        } else {
            real_.lock_shared();
        }
    }

    void
    unlock_shared()
    {
        if (auto* c = cur()) {
            if (c->clockNs() > readersFreeAt_)
                readersFreeAt_ = c->clockNs();
        } else {
            real_.unlock_shared();
        }
    }

    void
    resetSim()
    {
        writerFreeAt_ = 0;
        readersFreeAt_ = 0;
    }

 private:
    uint64_t writerFreeAt_ = 0;
    uint64_t readersFreeAt_ = 0;
    std::shared_mutex real_;
};

/**
 * A fixed array of SimSharedMutex, addressed by hash — used for per-node
 * locking of persistent structures (volatile locks cannot live inside
 * NVM nodes, so they are kept in this side table keyed by node offset).
 */
class LockShard {
 public:
    explicit LockShard(size_t n = 1024) : locks_(n) {}

    SimSharedMutex&
    forOffset(uint64_t off)
    {
        // Offsets are at least 16-byte aligned; drop low bits before
        // mixing so neighbors do not collide systematically.
        uint64_t h = (off >> 4) * 0x9e3779b97f4a7c15ULL;
        return locks_[(h >> 32) % locks_.size()];
    }

    void
    resetSim()
    {
        for (auto& l : locks_)
            l.resetSim();
    }

 private:
    std::vector<SimSharedMutex> locks_;
};

}  // namespace cnvm::sim

#endif  // CNVM_SIM_LOCK_H
