#include "sim/context.h"

namespace cnvm::sim {

namespace {
thread_local ThreadCtx* tlsCur = nullptr;
}  // namespace

ThreadCtx*
cur()
{
    return tlsCur;
}

void
setCur(ThreadCtx* ctx)
{
    tlsCur = ctx;
}

}  // namespace cnvm::sim
