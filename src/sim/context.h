/**
 * @file
 * Logical-thread context for the concurrency/timing simulator.
 *
 * The host container has a single CPU, so OS threads cannot demonstrate
 * the paper's scaling results (Figures 6 and 10). Instead, benchmarks run
 * N *logical* threads multiplexed on one OS thread:
 *
 *  - each logical thread owns a clock (nanoseconds of simulated time);
 *  - executing an operation advances the clock by the measured wall time
 *    of its compute;
 *  - flush/fence events (reported by the NVM layer through the
 *    PersistObserver hook) add modeled stall time;
 *  - SimMutex / SimSharedMutex (lock.h) merge clocks so contended locks
 *    serialize logical time exactly as real locks serialize wall time.
 *
 * Simulated throughput is ops / max(logical clocks). The library itself
 * remains safe under real std::thread use (see tests); only the
 * *throughput figures* come from this executor.
 */
#ifndef CNVM_SIM_CONTEXT_H
#define CNVM_SIM_CONTEXT_H

#include <cstdint>

#include "nvm/hooks.h"
#include "stats/simtime.h"

namespace cnvm::sim {

/** One logical thread: a clock plus its persistence pipeline. */
class ThreadCtx : public nvm::PersistObserver {
 public:
    explicit ThreadCtx(unsigned tid = 0) : tid_(tid) {}

    unsigned tid() const { return tid_; }
    uint64_t clockNs() const { return clockNs_; }

    /** Advance the clock by compute (measured or modeled) time. */
    void advance(uint64_t ns) { clockNs_ += ns; }

    /** Merge-wait: jump forward to `t` if it is in the future. */
    void
    waitUntil(uint64_t t)
    {
        if (t > clockNs_)
            clockNs_ = t;
    }

    void
    reset()
    {
        clockNs_ = 0;
        persist_.reset();
    }

    // nvm::PersistObserver
    void
    flushed(uint64_t bytes) override
    {
        persist_.onFlush(clockNs_, bytes);
    }

    void
    fenced() override
    {
        clockNs_ += persist_.onFence(clockNs_);
    }

 private:
    unsigned tid_;
    uint64_t clockNs_ = 0;
    stats::PersistClock persist_;
};

/** The logical thread currently executing, or nullptr (real-thread mode). */
ThreadCtx* cur();

/** Install/clear the calling OS thread's logical context. */
void setCur(ThreadCtx* ctx);

/** RAII scope installing a logical context (and its persist observer). */
class Scope {
 public:
    explicit Scope(ThreadCtx* ctx)
    {
        setCur(ctx);
        nvm::setPersistObserver(ctx);
    }

    ~Scope()
    {
        setCur(nullptr);
        nvm::setPersistObserver(nullptr);
    }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
};

}  // namespace cnvm::sim

#endif  // CNVM_SIM_CONTEXT_H
