/**
 * @file
 * Injectable media-fault model for the NVM pool.
 *
 * The cache model (cache_sim.h) covers the paper's crash model — lost
 * or torn *unflushed* lines. Real persistent memory additionally
 * suffers media faults in lines that were long since flushed:
 *
 *  - silent bit flips: a durable line's content changes under the
 *    software (undetected by the device);
 *  - poisoned lines: the device's ECC gives up and a load raises a
 *    machine-check — modeled as MediaFaultError from a guarded read;
 *  - transient read faults: a load fails but a retry succeeds.
 *
 * All injection is deterministic from a seed and targetable by pool
 * region (descriptor slots, log areas, allocator metadata, user heap),
 * so torture campaigns replay bit-for-bit.
 *
 * Model boundary: reads are only *guarded* on the recovery/salvage
 * paths (Pool::checkRead), where corrupt metadata must be survived;
 * normal-operation loads are raw memcpys and are not interposed — a
 * poisoned line's content is left intact in the simulation, only its
 * guarded reads fault. Bit flips DO mutate the mapped bytes, and the
 * model records the flipped lines as "tainted" — standing in for the
 * localization a real platform gets from ECC/patrol-scrub telemetry —
 * which salvage uses to tell genuine media corruption apart from an
 * ordinary torn log tail. Rewriting a line (Pool::write) clears its
 * poison and taint: fresh stores make the cell trustworthy again.
 */
#ifndef CNVM_NVM_FAULT_MODEL_H
#define CNVM_NVM_FAULT_MODEL_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rand.h"

namespace cnvm::nvm {

class Pool;

/** Machine-check-style uncorrectable (or retry-exhausted) read. */
class MediaFaultError : public std::runtime_error {
 public:
    MediaFaultError(uint64_t off, bool transient,
                    const std::string& what)
        : std::runtime_error(what), off_(off), transient_(transient) {}

    /** Pool offset of the faulting line. */
    uint64_t off() const { return off_; }
    /** True if this was a transient fault that exhausted its retries. */
    bool transient() const { return transient_; }

 private:
    uint64_t off_;
    bool transient_;
};

/** Targetable pool regions (bitmask). */
enum FaultRegion : uint32_t {
    kFaultHeader = 1u << 0,   ///< pool header
    kFaultDesc = 1u << 1,     ///< per-slot descriptor prefix
    kFaultLog = 1u << 2,      ///< per-slot log area
    kFaultAllocMeta = 1u << 3,///< alloc header + quarantine + bitmap
    kFaultHeap = 1u << 4,     ///< user data area
    kFaultAllRegions = 0x1f,
};

struct FaultConfig {
    uint64_t seed = 1;
    /** Faults injected per injection round (simulateCrash). */
    uint32_t bitFlips = 0;
    uint32_t poisons = 0;
    uint32_t transients = 0;
    /** Which regions injection may target. */
    uint32_t regionMask = kFaultDesc | kFaultLog | kFaultAllocMeta;
    /** Guarded-read retries before a transient fault escalates. */
    unsigned maxRetries = 4;
    /** Base exponential backoff between retries, microseconds
     *  (0 = account the retries but do not sleep). */
    unsigned backoffUs = 0;
    /** Inject a round automatically inside Pool::simulateCrash*. */
    bool injectOnCrash = true;

    bool enabled() const
    {
        return bitFlips + poisons + transients > 0;
    }

    /** Is any CNVM_FAULT_* knob set to a non-zero fault count? */
    static bool envEnabled();
    /** Parse CNVM_FAULT_{SEED,BITFLIP,POISON,TRANSIENT,REGIONS,
     *  RETRIES,BACKOFF_US}. */
    static FaultConfig fromEnv();
};

/** Parse a "log,desc,alloc,heap,header" list into a region mask.
 *  @return 0 on an unrecognized token. */
uint32_t parseFaultRegions(const std::string& list);
/** Inverse of parseFaultRegions (canonical comma list). */
std::string faultRegionNames(uint32_t mask);

class FaultModel {
 public:
    explicit FaultModel(const FaultConfig& cfg);

    const FaultConfig& config() const { return cfg_; }

    /** @name Region map (half-open [lo, hi) pool-offset intervals)
     *
     * Pool::setFaultModel installs a coarse map (header / slots /
     * heap); rt::defineFaultRegions refines it with the descriptor
     * vs. log split and the allocator-metadata range once the layers
     * that know those layouts exist. */
    /// @{
    void clearRegions();
    void addRegion(FaultRegion region, uint64_t lo, uint64_t hi);
    /// @}

    /**
     * One seeded injection round against `pool`: cfg.bitFlips flipped
     * bits, cfg.poisons poisoned lines, cfg.transients transient
     * lines, all drawn uniformly from the enabled regions. Flips only
     * target currently-durable (non-volatile) lines — media faults
     * hit persisted cells, torn volatile lines are the crash model's
     * job. Deterministic: each call advances the model's own rng.
     */
    void inject(Pool& pool);

    /** inject() with explicit counts (campaign axes). */
    void injectCounts(Pool& pool, uint32_t flips, uint32_t poisons,
                      uint32_t transients);

    /** @name Deterministic single-fault primitives (tests) */
    /// @{
    /** Flip bit `bit` (0..7) of pool byte `off`; taints the line. */
    void flipBit(Pool& pool, uint64_t off, unsigned bit);
    /** Poison the line containing `off`. transientCount < 0 =>
     *  permanent; > 0 => that many failing reads, then clean. */
    void poisonAt(uint64_t off, int transientCount = -1);
    /// @}

    /**
     * Guarded read of [off, off+n): transient faults are retried
     * internally (bounded exponential backoff per cfg), permanent
     * poison and retry exhaustion raise MediaFaultError.
     */
    void onRead(uint64_t off, size_t n);

    /** A write landed on [off, off+n): clears poison and taint. */
    void noteWrite(uint64_t off, size_t n);

    /** Any covered line recorded as bit-flipped and not rewritten? */
    bool tainted(uint64_t off, size_t n) const;
    /** Any covered line currently poisoned (incl. transient)? */
    bool poisoned(uint64_t off, size_t n) const;

    /** @name Cumulative counters since construction */
    /// @{
    uint64_t flipsInjected() const { return flips_; }
    uint64_t poisonsInjected() const { return poisons_; }
    uint64_t transientsInjected() const { return transients_; }
    uint64_t poisonReads() const { return poisonReads_; }
    uint64_t retries() const { return retries_; }
    /// @}

    /** Tainted line numbers, sorted (tests / diagnostics). */
    std::vector<uint64_t> taintedLines() const;

 private:
    struct Range {
        uint32_t region;
        uint64_t lo, hi;
    };

    /** Pick a target line uniformly over the enabled regions;
     *  ~0ULL if no enabled region exists. */
    uint64_t pickLine(const Pool* pool, bool skipVolatile);

    FaultConfig cfg_;
    Xorshift rng_;
    std::vector<Range> ranges_;
    /** line -> remaining failing reads (< 0 = permanent poison) */
    std::unordered_map<uint64_t, int> poison_;
    /** bit-flipped lines not yet rewritten */
    std::unordered_set<uint64_t> taint_;
    uint64_t flips_ = 0;
    uint64_t poisons_ = 0;
    uint64_t transients_ = 0;
    uint64_t poisonReads_ = 0;
    uint64_t retries_ = 0;
};

}  // namespace cnvm::nvm

#endif  // CNVM_NVM_FAULT_MODEL_H
