/**
 * @file
 * Persistent memory pool: a file-backed (or anonymous) mapped region
 * with a fixed layout, interposed writes, and simulated flush/fence.
 *
 * Layout:
 *
 *   [ header | per-thread runtime slots | heap ]
 *
 * The header records the root object offset; the per-thread slots hold
 * the runtimes' persistent logs (v_log, undo/clobber/redo logs, alloc
 * intents); the heap is managed by alloc::PmAllocator.
 *
 * Every mutation of pool memory must go through write()/writeAt() so the
 * cache model can track dirty lines (this is what the paper's second
 * compiler pass — the access-interposition callbacks — does for real
 * programs). flush()/fence() model clwb/sfence; persist() is the common
 * pair.
 *
 * The pool equivalent of the paper's pointer-swizzling callbacks is
 * PPtr<T> (see pptr.h): persistent pointers are stored as offsets and
 * resolved against the currently mapped base, so a pool can be remapped
 * at any address after a restart.
 */
#ifndef CNVM_NVM_POOL_H
#define CNVM_NVM_POOL_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/error.h"
#include "common/rand.h"
#include "nvm/cache_sim.h"
#include "nvm/fault_model.h"

namespace cnvm::nvm {

/**
 * Thrown by Pool::write when an armed write trap fires: the simulated
 * power failure happens *instead of* the trapped write. Crash tests
 * catch this at the top of the interrupted operation, tear the image
 * with simulateCrash(), and then run recovery.
 */
struct CrashInjected {};

/** Typed failure opening an existing pool file (Pool::open). */
class PoolOpenError : public FatalError {
 public:
    enum class Reason {
        io,            ///< open/stat/mmap failed
        truncated,     ///< file too small to hold a header
        badMagic,      ///< not a pool file
        badVersion,    ///< layout version mismatch
        sizeMismatch,  ///< header size != file size (wrong-size reopen)
        corruptHeader, ///< header offsets out of bounds / inconsistent
    };

    PoolOpenError(Reason reason, const std::string& what)
        : FatalError(what), reason_(reason) {}

    Reason reason() const { return reason_; }

 private:
    Reason reason_;
};

struct PoolConfig {
    std::string path;               ///< empty => anonymous mapping
    size_t size = 64ULL << 20;
    unsigned maxThreads = 32;       ///< number of runtime log slots
    size_t slotBytes = 256ULL << 10;  ///< bytes per runtime log slot
};

/** On-media pool header (lives at offset 0). */
struct PoolHeader {
    uint64_t magic;
    uint64_t version;
    uint64_t size;
    uint64_t rootOff;       ///< offset of the application root object
    uint64_t auxOff;        ///< runtime-private global area (e.g. Atlas)
    uint64_t metaOff;       ///< first runtime slot
    uint64_t slotBytes;
    uint64_t heapOff;
    uint64_t heapSize;
    uint32_t maxThreads;
    uint32_t runtimeId;     ///< which runtime formatted the slots
};

class Pool {
 public:
    static constexpr uint64_t kMagic = 0xC10BBE12A112F00DULL;
    /** v2: heap region gained the persistent quarantine table. */
    static constexpr uint64_t kVersion = 2;

    /** Create and format a new pool (truncates an existing file). */
    static std::unique_ptr<Pool> create(const PoolConfig& cfg);

    /** Map an existing pool file. */
    static std::unique_ptr<Pool> open(const std::string& path);

    ~Pool();

    Pool(const Pool&) = delete;
    Pool& operator=(const Pool&) = delete;

    uint8_t* base() const { return base_; }
    size_t size() const { return header().size; }
    const PoolHeader& header() const;

    bool
    contains(const void* p) const
    {
        auto* b = reinterpret_cast<const uint8_t*>(p);
        return b >= base_ && b < base_ + mappedSize_;
    }

    uint64_t
    offsetOf(const void* p) const
    {
        return static_cast<uint64_t>(
            reinterpret_cast<const uint8_t*>(p) - base_);
    }

    void* at(uint64_t off) const { return base_ + off; }

    /** @name Interposed persistence operations */
    /// @{
    void write(void* dst, const void* src, size_t n);
    void writeAt(uint64_t off, const void* src, size_t n);
    /** Write an 8-byte value (the common pointer/field case). */
    void write64(void* dst, uint64_t v);
    /**
     * write() with a SIMD-wide copy loop for bulk (≥ 64-byte) stores —
     * the zero-cached log writer's staging-window copy-out. Identical
     * interposition (trap, cache model, fault notes, counters); only
     * the memcpy strategy differs, so it is always safe to use.
     */
    void writeStream(void* dst, const void* src, size_t n);
    void flush(const void* addr, size_t n);
    /**
     * Batched clwb of `n` arbitrary cache-line numbers (commit-time
     * write-back of a dirty-line set). Sorts `lines` in place and
     * coalesces adjacent lines into single bursts; see
     * CacheSim::flushLines.
     */
    void flushLines(uint64_t* lines, size_t n);
    void fence();
    /** flush + fence. */
    void persist(const void* addr, size_t n);
    /// @}

    /** Root object management (persisted immediately). */
    uint64_t root() const { return header().rootOff; }
    void setRoot(uint64_t off);

    /** Runtime-private global area (persisted immediately). */
    uint64_t aux() const { return header().auxOff; }
    void setAux(uint64_t off);

    /** Runtime id recorded in the header (persisted immediately). */
    uint32_t runtimeId() const { return header().runtimeId; }
    void setRuntimeId(uint32_t id);

    /** Per-thread runtime slot `tid` (tid < maxThreads). */
    void* slot(unsigned tid) const;
    size_t slotBytes() const { return header().slotBytes; }
    unsigned maxThreads() const { return header().maxThreads; }

    uint64_t heapOff() const { return header().heapOff; }
    size_t heapSize() const { return header().heapSize; }

    CacheSim& cache() { return *cache_; }

    /**
     * @name Media-fault layer
     *
     * Attaching a FaultModel arms guarded reads (checkRead) and makes
     * simulateCrash* run one seeded injection round after the tear.
     * When no model is attached every hook is a null-pointer check.
     * Pool::create/open attach one automatically when the
     * CNVM_FAULT_* environment knobs request faults.
     */
    /// @{
    /** Install `fm` (nullptr detaches) and set the coarse region map
     *  (header / slot area / heap). rt::defineFaultRegions refines. */
    void setFaultModel(std::unique_ptr<FaultModel> fm);
    FaultModel* faults() const { return faults_.get(); }

    /** Guarded read of [p, p+n): raises MediaFaultError on poisoned
     *  lines (after internal transient retries). Recovery/salvage
     *  paths call this before trusting pool memory. */
    void
    checkRead(const void* p, size_t n) const
    {
        if (faults_ != nullptr)
            faults_->onRead(offsetOf(p), n);
    }

    /** Was any line of [p, p+n) bit-flipped and not rewritten? */
    bool
    isTainted(const void* p, size_t n) const
    {
        return faults_ != nullptr && faults_->tainted(offsetOf(p), n);
    }
    /// @}

    /**
     * Inject a power failure: tear all volatile lines (see CacheSim).
     * The pool stays mapped; callers must re-run recovery afterwards.
     * When a FaultModel is attached, one injection round follows the
     * tear (media faults strike persisted lines at crash time).
     * @return reverted word count.
     */
    size_t simulateCrash(uint64_t seed);

    /** simulateCrash with explicit torn-write survival knobs. */
    size_t simulateCrash(uint64_t seed, const CrashParams& params);

    /** Worst-case power failure: every volatile word reverts
     *  (CacheSim::crashAllLost), then fault injection as above. */
    size_t simulateCrashAllLost();

    /**
     * Arm a trap that throws CrashInjected instead of performing the
     * `countdown`-th subsequent write (1 = the very next write).
     * 0 disarms. Sweeping the countdown lets tests crash a transaction
     * at every possible point.
     */
    void armWriteTrap(uint64_t countdown)
    {
        trapCountdown_.store(countdown, std::memory_order_relaxed);
    }

    /** Writes performed since construction (to size trap sweeps). */
    uint64_t writeCount() const
    {
        return writeCount_.load(std::memory_order_relaxed);
    }

    /** Ambient pool used by PPtr<T>. */
    static Pool* current();
    static void setCurrent(Pool* p);

 private:
    Pool() = default;

    PoolHeader* mutableHeader() const;

    // Atomic: Pool::write runs concurrently in the CacheSim stress
    // tests; these counters carry no ordering, relaxed is enough.
    std::atomic<uint64_t> trapCountdown_{0};
    std::atomic<uint64_t> writeCount_{0};
    uint8_t* base_ = nullptr;
    size_t mappedSize_ = 0;
    int fd_ = -1;
    std::unique_ptr<CacheSim> cache_;
    std::unique_ptr<FaultModel> faults_;
    bool wasCurrent_ = false;
};

}  // namespace cnvm::nvm

#endif  // CNVM_NVM_POOL_H
