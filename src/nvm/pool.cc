#include "nvm/pool.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#if defined(__SSE2__) || defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/error.h"
#include "stats/counters.h"

namespace cnvm::nvm {

namespace {

Pool* gCurrent = nullptr;

uint64_t
alignUp(uint64_t v, uint64_t a)
{
    return (v + a - 1) / a * a;
}

}  // namespace

Pool*
Pool::current()
{
    return gCurrent;
}

void
Pool::setCurrent(Pool* p)
{
    gCurrent = p;
}

PoolHeader*
Pool::mutableHeader() const
{
    return reinterpret_cast<PoolHeader*>(base_);
}

const PoolHeader&
Pool::header() const
{
    return *mutableHeader();
}

std::unique_ptr<Pool>
Pool::create(const PoolConfig& cfg)
{
    auto pool = std::unique_ptr<Pool>(new Pool());
    void* mem = nullptr;
    if (cfg.path.empty()) {
        mem = ::mmap(nullptr, cfg.size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (mem == MAP_FAILED)
            fatal("anonymous mmap failed");
    } else {
        int fd = ::open(cfg.path.c_str(), O_RDWR | O_CREAT | O_TRUNC,
                        0644);
        if (fd < 0)
            fatal("cannot create pool file " + cfg.path);
        if (::ftruncate(fd, static_cast<off_t>(cfg.size)) != 0) {
            ::close(fd);
            fatal("cannot size pool file " + cfg.path);
        }
        mem = ::mmap(nullptr, cfg.size, PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd, 0);
        if (mem == MAP_FAILED) {
            ::close(fd);
            fatal("cannot map pool file " + cfg.path);
        }
        pool->fd_ = fd;
    }
    pool->base_ = static_cast<uint8_t*>(mem);
    pool->mappedSize_ = cfg.size;
    pool->cache_ = std::make_unique<CacheSim>(pool->base_);

    uint64_t metaOff = alignUp(sizeof(PoolHeader), kCacheLine);
    uint64_t heapOff = alignUp(
        metaOff + static_cast<uint64_t>(cfg.maxThreads) * cfg.slotBytes,
        4096);
    CNVM_CHECK(heapOff + 4096 < cfg.size,
               "pool too small for its metadata area");

    PoolHeader hdr{};
    hdr.magic = kMagic;
    hdr.version = kVersion;
    hdr.size = cfg.size;
    hdr.rootOff = 0;
    hdr.metaOff = metaOff;
    hdr.slotBytes = cfg.slotBytes;
    hdr.heapOff = heapOff;
    hdr.heapSize = cfg.size - heapOff;
    hdr.maxThreads = cfg.maxThreads;
    hdr.runtimeId = 0;

    // The fresh mapping is already zero; persist the header explicitly.
    pool->write(pool->base_, &hdr, sizeof(hdr));
    pool->persist(pool->base_, sizeof(hdr));
    if (FaultConfig::envEnabled())
        pool->setFaultModel(
            std::make_unique<FaultModel>(FaultConfig::fromEnv()));
    if (gCurrent == nullptr) {
        gCurrent = pool.get();
        pool->wasCurrent_ = true;
    }
    return pool;
}

namespace {

[[noreturn]] void
openFail(PoolOpenError::Reason reason, const std::string& msg)
{
    throw PoolOpenError(reason, msg);
}

}  // namespace

std::unique_ptr<Pool>
Pool::open(const std::string& path)
{
    int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0)
        openFail(PoolOpenError::Reason::io,
                 "cannot open pool file " + path);
    struct ::stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        openFail(PoolOpenError::Reason::io,
                 "cannot stat pool file " + path);
    }
    auto size = static_cast<size_t>(st.st_size);
    if (size < sizeof(PoolHeader)) {
        ::close(fd);
        openFail(PoolOpenError::Reason::truncated,
                 strprintf("pool file %s truncated: %zu bytes, need "
                           "at least the %zu-byte header",
                           path.c_str(), size, sizeof(PoolHeader)));
    }
    void* mem = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    if (mem == MAP_FAILED) {
        ::close(fd);
        openFail(PoolOpenError::Reason::io,
                 "cannot map pool file " + path);
    }
    auto pool = std::unique_ptr<Pool>(new Pool());
    pool->fd_ = fd;
    pool->base_ = static_cast<uint8_t*>(mem);
    pool->mappedSize_ = size;
    pool->cache_ = std::make_unique<CacheSim>(pool->base_);
    const PoolHeader& h = pool->header();
    if (h.magic != kMagic)
        openFail(PoolOpenError::Reason::badMagic,
                 "not a Clobber-NVM pool: " + path);
    if (h.version != kVersion)
        openFail(PoolOpenError::Reason::badVersion,
                 strprintf("pool %s has layout version %llu, this "
                           "build reads version %llu",
                           path.c_str(),
                           static_cast<unsigned long long>(h.version),
                           static_cast<unsigned long long>(kVersion)));
    if (h.size != size)
        openFail(PoolOpenError::Reason::sizeMismatch,
                 strprintf("pool %s header records %llu bytes but the "
                           "file holds %zu (truncated or grown since "
                           "creation)",
                           path.c_str(),
                           static_cast<unsigned long long>(h.size),
                           size));
    // Offset sanity: a corrupt header must not send later slot/heap
    // arithmetic outside the mapping. All sums are phrased as
    // subtractions from h.size so a flipped high bit cannot wrap the
    // comparison around.
    uint64_t slotsEnd =
        h.metaOff +
        static_cast<uint64_t>(h.maxThreads) * h.slotBytes;
    if (h.metaOff < sizeof(PoolHeader) || h.metaOff > h.size ||
        h.slotBytes > h.size ||
        static_cast<uint64_t>(h.maxThreads) * h.slotBytes > h.size ||
        slotsEnd > h.heapOff || h.heapOff >= h.size ||
        h.heapSize > h.size - h.heapOff || h.rootOff >= h.size ||
        h.auxOff >= h.size) {
        openFail(PoolOpenError::Reason::corruptHeader,
                 "pool " + path +
                     " header offsets are inconsistent (corrupt "
                     "header)");
    }
    if (FaultConfig::envEnabled())
        pool->setFaultModel(
            std::make_unique<FaultModel>(FaultConfig::fromEnv()));
    if (gCurrent == nullptr) {
        gCurrent = pool.get();
        pool->wasCurrent_ = true;
    }
    return pool;
}

Pool::~Pool()
{
    if (gCurrent == this)
        gCurrent = nullptr;
    if (base_ != nullptr)
        ::munmap(base_, mappedSize_);
    if (fd_ >= 0)
        ::close(fd_);
}

void
Pool::write(void* dst, const void* src, size_t n)
{
    CNVM_CHECK(contains(dst), "write outside pool");
    writeCount_.fetch_add(1, std::memory_order_relaxed);
    if (trapCountdown_.load(std::memory_order_relaxed) > 0 &&
        trapCountdown_.fetch_sub(1, std::memory_order_relaxed) == 1)
        throw CrashInjected{};
    cache_->willWrite(offsetOf(dst), n);
    if (n == 8)
        std::memcpy(dst, src, 8);  // common pointer/field case
    else
        std::memcpy(dst, src, n);
    if (faults_ != nullptr) [[unlikely]]
        faults_->noteWrite(offsetOf(dst), n);
    auto& tc = stats::local();
    tc.add(stats::Counter::nvmWrites);
    tc.add(stats::Counter::nvmWriteBytes, n);
}

namespace {

/**
 * Unaligned-safe wide copy: 32-byte (AVX2) or 16-byte (SSE2) vector
 * moves for the bulk, memcpy for the tail. Non-temporal stores are
 * deliberately not used — the cache model tracks visibility through
 * willWrite/flush, and ntstores would model a different (bypassing)
 * durability path than the clwb the runtimes account for.
 */
inline void
wideCopy(uint8_t* dst, const uint8_t* src, size_t n)
{
#if defined(__AVX2__)
    while (n >= 32) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(dst),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src)));
        dst += 32;
        src += 32;
        n -= 32;
    }
#elif defined(__SSE2__)
    while (n >= 16) {
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(dst),
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(src)));
        dst += 16;
        src += 16;
        n -= 16;
    }
#endif
    if (n > 0)
        std::memcpy(dst, src, n);
}

}  // namespace

void
Pool::writeStream(void* dst, const void* src, size_t n)
{
    CNVM_CHECK(contains(dst), "write outside pool");
    writeCount_.fetch_add(1, std::memory_order_relaxed);
    if (trapCountdown_.load(std::memory_order_relaxed) > 0 &&
        trapCountdown_.fetch_sub(1, std::memory_order_relaxed) == 1)
        throw CrashInjected{};
    cache_->willWrite(offsetOf(dst), n);
    wideCopy(static_cast<uint8_t*>(dst),
             static_cast<const uint8_t*>(src), n);
    if (faults_ != nullptr) [[unlikely]]
        faults_->noteWrite(offsetOf(dst), n);
    auto& tc = stats::local();
    tc.add(stats::Counter::nvmWrites);
    tc.add(stats::Counter::nvmWriteBytes, n);
}

void
Pool::writeAt(uint64_t off, const void* src, size_t n)
{
    write(base_ + off, src, n);
}

void
Pool::write64(void* dst, uint64_t v)
{
    write(dst, &v, sizeof(v));
}

void
Pool::flush(const void* addr, size_t n)
{
    cache_->flush(offsetOf(addr), n);
}

void
Pool::flushLines(uint64_t* lines, size_t n)
{
    cache_->flushLines(lines, n);
}

void
Pool::fence()
{
    cache_->fence();
}

void
Pool::persist(const void* addr, size_t n)
{
    flush(addr, n);
    fence();
}

void
Pool::setRoot(uint64_t off)
{
    auto* h = mutableHeader();
    write(&h->rootOff, &off, sizeof(off));
    persist(&h->rootOff, sizeof(off));
}

void
Pool::setAux(uint64_t off)
{
    auto* h = mutableHeader();
    write(&h->auxOff, &off, sizeof(off));
    persist(&h->auxOff, sizeof(off));
}

void
Pool::setRuntimeId(uint32_t id)
{
    auto* h = mutableHeader();
    write(&h->runtimeId, &id, sizeof(id));
    persist(&h->runtimeId, sizeof(id));
}

void*
Pool::slot(unsigned tid) const
{
    CNVM_CHECK(tid < maxThreads(), "thread slot out of range");
    return base_ + header().metaOff + tid * header().slotBytes;
}

void
Pool::setFaultModel(std::unique_ptr<FaultModel> fm)
{
    faults_ = std::move(fm);
    if (faults_ == nullptr)
        return;
    // Coarse region map from the pool layout. The slot area is both
    // "desc" and "log" at this granularity; rt::defineFaultRegions
    // refines the split once a runtime knows the descriptor size.
    const PoolHeader& h = header();
    faults_->clearRegions();
    faults_->addRegion(kFaultHeader, 0, h.metaOff);
    faults_->addRegion(kFaultDesc, h.metaOff, h.heapOff);
    faults_->addRegion(kFaultLog, h.metaOff, h.heapOff);
    faults_->addRegion(kFaultHeap, h.heapOff, h.size);
}

size_t
Pool::simulateCrash(uint64_t seed)
{
    Xorshift rng(seed);
    size_t reverted = cache_->crash(rng);
    if (faults_ != nullptr && faults_->config().injectOnCrash)
        faults_->inject(*this);
    return reverted;
}

size_t
Pool::simulateCrash(uint64_t seed, const CrashParams& params)
{
    Xorshift rng(seed);
    size_t reverted = cache_->crash(rng, params);
    if (faults_ != nullptr && faults_->config().injectOnCrash)
        faults_->inject(*this);
    return reverted;
}

size_t
Pool::simulateCrashAllLost()
{
    size_t reverted = cache_->crashAllLost();
    if (faults_ != nullptr && faults_->config().injectOnCrash)
        faults_->inject(*this);
    return reverted;
}

}  // namespace cnvm::nvm
