/**
 * @file
 * Per-thread hooks connecting the NVM layer to the rest of the system:
 *
 *  - PersistObserver: reports flush/fence events to the timing
 *    simulator. The logical-thread executor in src/sim installs a
 *    per-thread observer that converts them into simulated stall time;
 *    when none is installed (unit tests, real-thread mode) events are
 *    only counted.
 *  - notifyFlush()/notifyFence(): the single place where a persistence
 *    event bumps the stats counter *and* feeds the observer, so every
 *    flush path (range flush, batched line flush, fence) accounts
 *    identically.
 *  - DirtyLineCache: the per-thread epoch-tagged cache of lines this
 *    thread already dirtied. Pool::write consults it to skip the shard
 *    lock of CacheSim entirely for repeated stores to a dirty line; any
 *    event that can move a line out of the dirty state (flush, fence,
 *    crash, observer install) invalidates all caches by bumping the
 *    owning CacheSim's epoch.
 */
#ifndef CNVM_NVM_HOOKS_H
#define CNVM_NVM_HOOKS_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace cnvm::nvm {

/** Receives persistence events for the calling thread. */
class PersistObserver {
 public:
    virtual ~PersistObserver() = default;
    /** A cache-line flush (clwb) of `bytes` was issued. */
    virtual void flushed(uint64_t bytes) = 0;
    /** A store fence (sfence) was issued. */
    virtual void fenced() = 0;
};

/** Install (or clear, with nullptr) the calling thread's observer. */
void setPersistObserver(PersistObserver* obs);

/** The calling thread's observer, or nullptr. */
PersistObserver* persistObserver();

/**
 * Account one clwb burst of `nlines` adjacent lines (`bytes` total):
 * bumps the flush counter and reports the calling thread's
 * PersistObserver in one place.
 */
void notifyFlush(uint64_t nlines, uint64_t bytes);

/** Account one sfence: counter bump + observer notification. */
void notifyFence();

/**
 * Direct-mapped, epoch-tagged cache of cache-line numbers the calling
 * thread knows to be dirty in some CacheSim. A way is valid iff its
 * epoch equals the probing CacheSim's current epoch; epochs are drawn
 * from a process-global counter, so a value never recurs across sims
 * (or across flush/fence/crash boundaries within one sim) and stale
 * ways simply miss. Collisions evict silently — the cache is purely an
 * optimization; the shard table stays authoritative.
 */
struct DirtyLineCache {
    static constexpr size_t kWays = 1024;   // 16 KiB per thread

    struct Way {
        uint64_t line1 = 0;   ///< line number + 1; 0 = empty
        uint64_t epoch = 0;   ///< epoch the entry was inserted under
    };

    std::array<Way, kWays> ways;
};

/** The calling thread's dirty-line cache. Inline: probed per store. */
inline DirtyLineCache&
dirtyLineCache()
{
    static thread_local DirtyLineCache tc;
    return tc;
}

}  // namespace cnvm::nvm

#endif  // CNVM_NVM_HOOKS_H
