/**
 * @file
 * Observer interface connecting the NVM layer to the timing simulator.
 *
 * The NVM layer (cache model) reports flush/fence events; the logical-
 * thread executor in src/sim installs a per-thread observer that converts
 * them into simulated stall time. When no observer is installed (unit
 * tests, real-thread mode) events are only counted.
 */
#ifndef CNVM_NVM_HOOKS_H
#define CNVM_NVM_HOOKS_H

#include <cstdint>

namespace cnvm::nvm {

/** Receives persistence events for the calling thread. */
class PersistObserver {
 public:
    virtual ~PersistObserver() = default;
    /** A cache-line flush (clwb) of `bytes` was issued. */
    virtual void flushed(uint64_t bytes) = 0;
    /** A store fence (sfence) was issued. */
    virtual void fenced() = 0;
};

/** Install (or clear, with nullptr) the calling thread's observer. */
void setPersistObserver(PersistObserver* obs);

/** The calling thread's observer, or nullptr. */
PersistObserver* persistObserver();

}  // namespace cnvm::nvm

#endif  // CNVM_NVM_HOOKS_H
