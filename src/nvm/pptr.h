/**
 * @file
 * Relocatable persistent pointers.
 *
 * A PPtr<T> stores a pool offset rather than a virtual address, so
 * persistent data structures survive the pool being remapped at a
 * different base after a restart. Dereferencing resolves against
 * Pool::current() — this is the library equivalent of the pointer-
 * swizzling callbacks Clobber-NVM's second compiler pass inserts at
 * every memory access.
 *
 * PPtr is trivially copyable (it is stored inside NVM objects and in
 * transaction argument blobs).
 */
#ifndef CNVM_NVM_PPTR_H
#define CNVM_NVM_PPTR_H

#include <cstdint>

#include "common/error.h"
#include "nvm/pool.h"

namespace cnvm::nvm {

template <typename T>
class PPtr {
 public:
    PPtr() : off_(0) {}
    explicit PPtr(uint64_t off) : off_(off) {}

    /** Make a PPtr from a live pointer into the current pool. */
    static PPtr
    of(const T* p)
    {
        if (p == nullptr)
            return PPtr();
        Pool* pool = Pool::current();
        CNVM_CHECK(pool != nullptr && pool->contains(p),
                   "PPtr::of target outside current pool");
        return PPtr(pool->offsetOf(p));
    }

    uint64_t raw() const { return off_; }
    bool isNull() const { return off_ == 0; }
    explicit operator bool() const { return off_ != 0; }

    T*
    get() const
    {
        if (off_ == 0)
            return nullptr;
        Pool* pool = Pool::current();
        CNVM_CHECK(pool != nullptr, "PPtr deref with no current pool");
        return reinterpret_cast<T*>(pool->at(off_));
    }

    T* operator->() const { return get(); }
    T& operator*() const { return *get(); }

    friend bool
    operator==(const PPtr& a, const PPtr& b)
    {
        return a.off_ == b.off_;
    }
    friend bool
    operator!=(const PPtr& a, const PPtr& b)
    {
        return a.off_ != b.off_;
    }

 private:
    uint64_t off_;
};

static_assert(sizeof(PPtr<int>) == 8, "PPtr must stay pointer-sized");

}  // namespace cnvm::nvm

#endif  // CNVM_NVM_PPTR_H
