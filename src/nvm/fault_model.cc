#include "nvm/fault_model.h"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>

#include "common/error.h"
#include "nvm/pool.h"
#include "stats/counters.h"

namespace cnvm::nvm {

namespace {

uint64_t
envU64(const char* name, uint64_t dflt)
{
    const char* v = std::getenv(name);
    return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 0)
                                      : dflt;
}

}  // namespace

uint32_t
parseFaultRegions(const std::string& list)
{
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string tok = list.substr(pos, comma - pos);
        if (tok == "header")
            mask |= kFaultHeader;
        else if (tok == "desc")
            mask |= kFaultDesc;
        else if (tok == "log")
            mask |= kFaultLog;
        else if (tok == "alloc")
            mask |= kFaultAllocMeta;
        else if (tok == "heap")
            mask |= kFaultHeap;
        else if (tok == "all")
            mask |= kFaultAllRegions;
        else if (!tok.empty())
            return 0;
        pos = comma + 1;
    }
    return mask;
}

std::string
faultRegionNames(uint32_t mask)
{
    std::string out;
    auto add = [&](uint32_t bit, const char* name) {
        if ((mask & bit) == 0)
            return;
        if (!out.empty())
            out += ',';
        out += name;
    };
    add(kFaultHeader, "header");
    add(kFaultDesc, "desc");
    add(kFaultLog, "log");
    add(kFaultAllocMeta, "alloc");
    add(kFaultHeap, "heap");
    return out;
}

bool
FaultConfig::envEnabled()
{
    return envU64("CNVM_FAULT_BITFLIP", 0) +
               envU64("CNVM_FAULT_POISON", 0) +
               envU64("CNVM_FAULT_TRANSIENT", 0) >
           0;
}

FaultConfig
FaultConfig::fromEnv()
{
    FaultConfig cfg;
    cfg.seed = envU64("CNVM_FAULT_SEED", 1);
    cfg.bitFlips =
        static_cast<uint32_t>(envU64("CNVM_FAULT_BITFLIP", 0));
    cfg.poisons =
        static_cast<uint32_t>(envU64("CNVM_FAULT_POISON", 0));
    cfg.transients =
        static_cast<uint32_t>(envU64("CNVM_FAULT_TRANSIENT", 0));
    if (const char* r = std::getenv("CNVM_FAULT_REGIONS")) {
        uint32_t mask = parseFaultRegions(r);
        if (mask == 0)
            fatal(strprintf("CNVM_FAULT_REGIONS: cannot parse \"%s\" "
                            "(want a comma list of header, desc, log, "
                            "alloc, heap)",
                            r));
        cfg.regionMask = mask;
    }
    cfg.maxRetries =
        static_cast<unsigned>(envU64("CNVM_FAULT_RETRIES", 4));
    cfg.backoffUs =
        static_cast<unsigned>(envU64("CNVM_FAULT_BACKOFF_US", 0));
    return cfg;
}

FaultModel::FaultModel(const FaultConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed * 0x9e3779b97f4a7c15ULL + 0xbf58476dULL)
{
}

void
FaultModel::clearRegions()
{
    ranges_.clear();
}

void
FaultModel::addRegion(FaultRegion region, uint64_t lo, uint64_t hi)
{
    if (lo >= hi)
        return;
    ranges_.push_back(Range{region, lo, hi});
}

uint64_t
FaultModel::pickLine(const Pool* pool, bool skipVolatile)
{
    uint64_t totalLines = 0;
    for (const Range& r : ranges_) {
        if ((r.region & cfg_.regionMask) == 0)
            continue;
        totalLines += (r.hi - 1) / kCacheLine - r.lo / kCacheLine + 1;
    }
    if (totalLines == 0)
        return ~0ULL;
    // Bounded re-draws: a busy workload can have every line of a tiny
    // region volatile; give up rather than spin.
    for (int attempt = 0; attempt < 64; attempt++) {
        uint64_t idx = rng_.nextUint(totalLines);
        uint64_t line = ~0ULL;
        for (const Range& r : ranges_) {
            if ((r.region & cfg_.regionMask) == 0)
                continue;
            uint64_t first = r.lo / kCacheLine;
            uint64_t n = (r.hi - 1) / kCacheLine - first + 1;
            if (idx < n) {
                line = first + idx;
                break;
            }
            idx -= n;
        }
        if (line == ~0ULL)
            return ~0ULL;
        if (skipVolatile && pool != nullptr &&
            const_cast<Pool*>(pool)->cache().isVolatile(line)) {
            continue;
        }
        return line;
    }
    return ~0ULL;
}

void
FaultModel::flipBit(Pool& pool, uint64_t off, unsigned bit)
{
    // Silent corruption happens *underneath* the software stack: mutate
    // the mapped byte directly, bypassing write interposition (no
    // dirty-line tracking, no noteWrite un-taint).
    pool.base()[off] ^= static_cast<uint8_t>(1u << (bit & 7));
    taint_.insert(off / kCacheLine);
    flips_++;
    stats::bump(stats::Counter::mediaBitFlips);
}

void
FaultModel::poisonAt(uint64_t off, int transientCount)
{
    poison_[off / kCacheLine] = transientCount;
    if (transientCount < 0) {
        poisons_++;
        stats::bump(stats::Counter::mediaPoisons);
    } else {
        transients_++;
        stats::bump(stats::Counter::mediaTransients);
    }
}

void
FaultModel::injectCounts(Pool& pool, uint32_t flips, uint32_t poisons,
                         uint32_t transients)
{
    for (uint32_t i = 0; i < flips; i++) {
        uint64_t line = pickLine(&pool, /* skipVolatile */ true);
        if (line == ~0ULL)
            break;
        uint64_t off =
            line * kCacheLine + rng_.nextUint(kCacheLine);
        if (off >= pool.size())
            continue;
        flipBit(pool, off, static_cast<unsigned>(rng_.nextUint(8)));
    }
    for (uint32_t i = 0; i < poisons; i++) {
        uint64_t line = pickLine(&pool, /* skipVolatile */ false);
        if (line == ~0ULL)
            break;
        poisonAt(line * kCacheLine, -1);
    }
    for (uint32_t i = 0; i < transients; i++) {
        uint64_t line = pickLine(&pool, /* skipVolatile */ false);
        if (line == ~0ULL)
            break;
        // 1..3 failing reads: recoverable within the default retry
        // budget, so an un-tuned transient always succeeds on retry.
        poisonAt(line * kCacheLine,
                 1 + static_cast<int>(rng_.nextUint(3)));
    }
}

void
FaultModel::inject(Pool& pool)
{
    injectCounts(pool, cfg_.bitFlips, cfg_.poisons, cfg_.transients);
}

void
FaultModel::onRead(uint64_t off, size_t n)
{
    if (n == 0 || poison_.empty())
        return;
    uint64_t first = off / kCacheLine;
    uint64_t last = (off + n - 1) / kCacheLine;
    for (uint64_t ln = first; ln <= last; ln++) {
        auto it = poison_.find(ln);
        if (it == poison_.end())
            continue;
        poisonReads_++;
        stats::bump(stats::Counter::mediaPoisonReads);
        if (it->second < 0) {
            throw MediaFaultError(
                ln * kCacheLine, false,
                strprintf("uncorrectable media error reading pool "
                          "offset %llu",
                          static_cast<unsigned long long>(
                              ln * kCacheLine)));
        }
        // Transient: retry with bounded exponential backoff. Each
        // retry "heals" one failing read; success once they run out.
        bool recovered = false;
        for (unsigned r = 0; r < cfg_.maxRetries; r++) {
            retries_++;
            stats::bump(stats::Counter::mediaRetries);
            if (cfg_.backoffUs > 0)
                ::usleep(cfg_.backoffUs << r);
            if (--it->second <= 0) {
                poison_.erase(it);
                recovered = true;
                break;
            }
        }
        if (!recovered) {
            throw MediaFaultError(
                ln * kCacheLine, true,
                strprintf("transient media fault at pool offset %llu "
                          "persisted past %u retries",
                          static_cast<unsigned long long>(
                              ln * kCacheLine),
                          cfg_.maxRetries));
        }
    }
}

void
FaultModel::noteWrite(uint64_t off, size_t n)
{
    if (n == 0 || (poison_.empty() && taint_.empty()))
        return;
    uint64_t first = off / kCacheLine;
    uint64_t last = (off + n - 1) / kCacheLine;
    for (uint64_t ln = first; ln <= last; ln++) {
        poison_.erase(ln);
        taint_.erase(ln);
    }
}

bool
FaultModel::tainted(uint64_t off, size_t n) const
{
    if (n == 0 || taint_.empty())
        return false;
    uint64_t first = off / kCacheLine;
    uint64_t last = (off + n - 1) / kCacheLine;
    for (uint64_t ln = first; ln <= last; ln++) {
        if (taint_.count(ln) != 0)
            return true;
    }
    return false;
}

bool
FaultModel::poisoned(uint64_t off, size_t n) const
{
    if (n == 0 || poison_.empty())
        return false;
    uint64_t first = off / kCacheLine;
    uint64_t last = (off + n - 1) / kCacheLine;
    for (uint64_t ln = first; ln <= last; ln++) {
        if (poison_.count(ln) != 0)
            return true;
    }
    return false;
}

std::vector<uint64_t>
FaultModel::taintedLines() const
{
    std::vector<uint64_t> out(taint_.begin(), taint_.end());
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace cnvm::nvm
