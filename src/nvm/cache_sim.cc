#include "nvm/cache_sim.h"

#include <cstring>

#include "nvm/hooks.h"
#include "stats/counters.h"

namespace cnvm::nvm {

void
CacheSim::willWrite(uint64_t off, size_t len)
{
    if (len == 0)
        return;
    uint64_t first = off / kCacheLine;
    uint64_t last = (off + len - 1) / kCacheLine;
    std::lock_guard<std::mutex> g(mu_);
    for (uint64_t ln = first; ln <= last; ln++) {
        if (lineObs_)
            lineObs_->lineDirtied(ln);
        auto [it, inserted] = lines_.try_emplace(ln);
        if (inserted) {
            std::memcpy(it->second.snapshot.data(),
                        base_ + ln * kCacheLine, kCacheLine);
        } else if (it->second.pending) {
            // A new store re-dirties a clwb'd line; the flushed content
            // is the new durable floor, so refresh the snapshot only if
            // the line had already been made durable (it had not: clwb
            // without a fence gives no guarantee). Keep the original
            // snapshot and fall back to the dirty state.
            it->second.pending = false;
        }
    }
}

void
CacheSim::flush(uint64_t off, size_t len)
{
    if (len == 0)
        return;
    uint64_t first = off / kCacheLine;
    uint64_t last = (off + len - 1) / kCacheLine;
    uint64_t nlines = last - first + 1;
    {
        std::lock_guard<std::mutex> g(mu_);
        for (uint64_t ln = first; ln <= last; ln++) {
            auto it = lines_.find(ln);
            if (it != lines_.end() && !it->second.pending) {
                it->second.pending = true;
                pending_.push_back(ln);
                if (lineObs_)
                    lineObs_->lineFlushed(ln);
            }
        }
    }
    stats::bump(stats::Counter::flushes, nlines);
    if (auto* obs = persistObserver())
        obs->flushed(nlines * kCacheLine);
}

void
CacheSim::fence()
{
    {
        std::lock_guard<std::mutex> g(mu_);
        for (uint64_t ln : pending_) {
            auto it = lines_.find(ln);
            if (it != lines_.end() && it->second.pending)
                lines_.erase(it);
        }
        pending_.clear();
        if (lineObs_)
            lineObs_->fenceRetired();
    }
    stats::bump(stats::Counter::fences);
    if (auto* obs = persistObserver())
        obs->fenced();
}

size_t
CacheSim::crashImpl(Xorshift* rng, const CrashParams& p)
{
    std::lock_guard<std::mutex> g(mu_);
    size_t reverted = 0;
    for (auto& [ln, line] : lines_) {
        uint8_t* mem = base_ + ln * kCacheLine;
        double survival = line.pending ? p.pendingSurvival
                                       : p.dirtySurvival;
        for (size_t w = 0; w < kCacheLine; w += 8) {
            bool survives = rng != nullptr && rng->nextBool(survival);
            if (!survives) {
                if (std::memcmp(mem + w, line.snapshot.data() + w, 8)
                        != 0) {
                    std::memcpy(mem + w, line.snapshot.data() + w, 8);
                    reverted++;
                }
            }
        }
    }
    lines_.clear();
    pending_.clear();
    if (lineObs_)
        lineObs_->trackingReset();
    return reverted;
}

size_t
CacheSim::crash(Xorshift& rng, const CrashParams& p)
{
    return crashImpl(&rng, p);
}

size_t
CacheSim::crashAllLost()
{
    CrashParams p;
    return crashImpl(nullptr, p);
}

size_t
CacheSim::volatileLines() const
{
    std::lock_guard<std::mutex> g(mu_);
    return lines_.size();
}

void
CacheSim::discardAll()
{
    std::lock_guard<std::mutex> g(mu_);
    lines_.clear();
    pending_.clear();
    if (lineObs_)
        lineObs_->trackingReset();
}

void
CacheSim::setLineObserver(LineObserver* obs)
{
    std::lock_guard<std::mutex> g(mu_);
    lineObs_ = obs;
}

}  // namespace cnvm::nvm
