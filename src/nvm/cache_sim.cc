#include "nvm/cache_sim.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace cnvm::nvm {

namespace {

/**
 * Source of epoch values for every CacheSim in the process. Uniqueness
 * across sims is what lets DirtyLineCache ways omit an owner field: a
 * way tagged with some epoch can only validate against the one sim
 * whose current epoch it is.
 */
std::atomic<uint64_t> gEpochSource{0};

uint64_t
nextEpoch()
{
    return gEpochSource.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t
mixLine(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
    return x;
}

}  // namespace

CacheSim::CacheSim(uint8_t* base) : base_(base), epoch_(nextEpoch()) {}

void
CacheSim::bumpEpoch()
{
    epoch_.store(nextEpoch(), std::memory_order_release);
}

CacheSim::Slot*
CacheSim::findSlot(Shard& sh, uint64_t ln)
{
    if (sh.slots.empty())
        return nullptr;
    size_t mask = sh.slots.size() - 1;
    size_t i = mixLine(ln) & mask;
    while (true) {
        Slot& s = sh.slots[i];
        if (s.key == 0)
            return nullptr;
        if (s.key == ln + 1)
            return &s;
        i = (i + 1) & mask;
    }
}

void
CacheSim::growShard(Shard& sh)
{
    size_t cap = sh.slots.empty() ? 64 : sh.slots.size() * 2;
    std::vector<Slot> old = std::move(sh.slots);
    sh.slots.assign(cap, Slot{});
    sh.used = 0;
    size_t mask = cap - 1;
    for (const Slot& s : old) {
        // Clean (durable) slots behave like absent entries; dropping
        // them at rehash keeps long-lived sims from growing forever.
        if (s.key == 0 || s.state == kClean)
            continue;
        size_t i = mixLine(s.key - 1) & mask;
        while (sh.slots[i].key != 0)
            i = (i + 1) & mask;
        sh.slots[i] = s;
        sh.used++;
    }
}

void
CacheSim::dirtyLocked(Shard& sh, uint64_t ln)
{
    if ((sh.used + 1) * 10 > sh.slots.size() * 7)
        growShard(sh);
    size_t mask = sh.slots.size() - 1;
    size_t i = mixLine(ln) & mask;
    while (true) {
        Slot& s = sh.slots[i];
        if (s.key == 0) {
            s.key = ln + 1;
            s.state = kDirty;
            std::memcpy(s.snapshot.data(), base_ + ln * kCacheLine,
                        kCacheLine);
            sh.used++;
            volatile_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (s.key == ln + 1) {
            if (s.state == kPending) {
                // A new store re-dirties a clwb'd line; clwb without a
                // fence gives no durability, so the original snapshot
                // stays the revert target.
                s.state = kDirty;
            } else if (s.state == kClean) {
                // Durable line re-dirtied: current content is the new
                // durable floor.
                s.state = kDirty;
                std::memcpy(s.snapshot.data(), base_ + ln * kCacheLine,
                            kCacheLine);
                volatile_.fetch_add(1, std::memory_order_relaxed);
            }
            return;
        }
        i = (i + 1) & mask;
    }
}

void
CacheSim::willWriteSlow(uint64_t first, uint64_t last, uint64_t e,
                        DirtyLineCache& c)
{
    LineObserver* obs = lineObs_.load(std::memory_order_relaxed);
    uint64_t ln = first;
    while (ln <= last) {
        Shard& sh = shardOf(ln);
        std::lock_guard<std::mutex> g(sh.mu);
        do {
            if (obs != nullptr)
                obs->lineDirtied(ln);
            dirtyLocked(sh, ln);
            if (obs == nullptr) {
                // Tagging with the pre-lock epoch keeps the way safe:
                // if a flush/fence raced us, the current epoch already
                // moved past `e` and the way never validates.
                DirtyLineCache::Way& w =
                    c.ways[ln & (DirtyLineCache::kWays - 1)];
                w.line1 = ln + 1;
                w.epoch = e;
            }
            ln++;
        } while (ln <= last && &shardOf(ln) == &sh);
    }
}

void
CacheSim::flush(uint64_t off, size_t len)
{
    if (len == 0)
        return;
    uint64_t first = off / kCacheLine;
    uint64_t last = (off + len - 1) / kCacheLine;
    uint64_t nlines = last - first + 1;
    LineObserver* obs = lineObs_.load(std::memory_order_relaxed);
    uint64_t ln = first;
    while (ln <= last) {
        Shard& sh = shardOf(ln);
        std::lock_guard<std::mutex> g(sh.mu);
        do {
            Slot* s = findSlot(sh, ln);
            if (s != nullptr && s->state == kDirty) {
                s->state = kPending;
                if (sh.pending.empty())
                    markPending(sh);
                sh.pending.push_back(ln);
                if (obs != nullptr)
                    obs->lineFlushed(ln);
            }
            ln++;
        } while (ln <= last && &shardOf(ln) == &sh);
    }
    bumpEpoch();
    notifyFlush(nlines, nlines * kCacheLine);
}

void
CacheSim::flushLines(uint64_t* lines, size_t n)
{
    if (n == 0)
        return;
    std::sort(lines, lines + n);
    n = static_cast<size_t>(std::unique(lines, lines + n) - lines);
    LineObserver* obs = lineObs_.load(std::memory_order_relaxed);
    size_t i = 0;
    while (i < n) {
        Shard& sh = shardOf(lines[i]);
        std::lock_guard<std::mutex> g(sh.mu);
        do {
            uint64_t ln = lines[i];
            Slot* s = findSlot(sh, ln);
            if (s != nullptr && s->state == kDirty) {
                s->state = kPending;
                if (sh.pending.empty())
                    markPending(sh);
                sh.pending.push_back(ln);
                if (obs != nullptr)
                    obs->lineFlushed(ln);
            }
            i++;
        } while (i < n && &shardOf(lines[i]) == &sh);
    }
    bumpEpoch();
    // Adjacent lines coalesce into one clwb burst each; scattered
    // lines remain independent (overlapping) flushes for the timing
    // model, like back-to-back clwbs on hardware.
    size_t runStart = 0;
    for (size_t j = 1; j <= n; j++) {
        if (j == n || lines[j] != lines[j - 1] + 1) {
            uint64_t runLen = j - runStart;
            notifyFlush(runLen, runLen * kCacheLine);
            runStart = j;
        }
    }
}

void
CacheSim::fence()
{
    LineObserver* obs = lineObs_.load(std::memory_order_relaxed);
    // Only visit shards that took a clwb since the last fence; a
    // fence with nothing outstanding touches no locks at all.
    uint64_t mask =
        pendingShards_.exchange(0, std::memory_order_acq_rel);
    while (mask != 0) {
        auto idx = static_cast<size_t>(std::countr_zero(mask));
        mask &= mask - 1;
        Shard& sh = shards_[idx];
        std::lock_guard<std::mutex> g(sh.mu);
        for (uint64_t ln : sh.pending) {
            Slot* s = findSlot(sh, ln);
            // A re-dirtied (kDirty) or doubly-listed (kClean) entry is
            // skipped; only a real pending line retires.
            if (s != nullptr && s->state == kPending) {
                s->state = kClean;
                volatile_.fetch_sub(1, std::memory_order_relaxed);
            }
        }
        sh.pending.clear();
    }
    bumpEpoch();
    if (obs != nullptr)
        obs->fenceRetired();
    notifyFence();
}

size_t
CacheSim::crashImpl(Xorshift* rng, const CrashParams& p)
{
    size_t reverted = 0;
    for (Shard& sh : shards_) {
        std::lock_guard<std::mutex> g(sh.mu);
        for (Slot& s : sh.slots) {
            if (s.key == 0 ||
                (s.state != kDirty && s.state != kPending)) {
                continue;
            }
            uint64_t ln = s.key - 1;
            uint8_t* mem = base_ + ln * kCacheLine;
            double survival = s.state == kPending ? p.pendingSurvival
                                                  : p.dirtySurvival;
            for (size_t w = 0; w < kCacheLine; w += 8) {
                bool survives =
                    rng != nullptr && rng->nextBool(survival);
                if (!survives) {
                    if (std::memcmp(mem + w, s.snapshot.data() + w,
                                    8) != 0) {
                        std::memcpy(mem + w, s.snapshot.data() + w, 8);
                        reverted++;
                    }
                }
            }
        }
        std::fill(sh.slots.begin(), sh.slots.end(), Slot{});
        sh.used = 0;
        sh.pending.clear();
    }
    volatile_.store(0, std::memory_order_relaxed);
    pendingShards_.store(0, std::memory_order_relaxed);
    bumpEpoch();
    if (auto* obs = lineObs_.load(std::memory_order_relaxed))
        obs->trackingReset();
    return reverted;
}

size_t
CacheSim::crash(Xorshift& rng, const CrashParams& p)
{
    return crashImpl(&rng, p);
}

size_t
CacheSim::crashAllLost()
{
    CrashParams p;
    return crashImpl(nullptr, p);
}

bool
CacheSim::isVolatile(uint64_t line)
{
    Shard& sh = shardOf(line);
    std::lock_guard<std::mutex> g(sh.mu);
    Slot* s = findSlot(sh, line);
    return s != nullptr && (s->state == kDirty || s->state == kPending);
}

void
CacheSim::discardAll()
{
    for (Shard& sh : shards_) {
        std::lock_guard<std::mutex> g(sh.mu);
        std::fill(sh.slots.begin(), sh.slots.end(), Slot{});
        sh.used = 0;
        sh.pending.clear();
    }
    volatile_.store(0, std::memory_order_relaxed);
    pendingShards_.store(0, std::memory_order_relaxed);
    bumpEpoch();
    if (auto* obs = lineObs_.load(std::memory_order_relaxed))
        obs->trackingReset();
}

void
CacheSim::setLineObserver(LineObserver* obs)
{
    lineObs_.store(obs, std::memory_order_relaxed);
    // Block the fast path: no way survives the bump, and no new ways
    // are inserted while an observer is present, so it sees every
    // subsequent transition.
    bumpEpoch();
}

}  // namespace cnvm::nvm
