/**
 * @file
 * Software model of the volatile write-back cache in front of NVM.
 *
 * The paper's machine model (Section 2.1): stores land in volatile
 * caches; a line only becomes durable once flushed (clwb) and ordered
 * (sfence), or when the hardware happens to evict it. On power loss,
 * unflushed lines are lost and writes may persist out of program order.
 *
 * This class reproduces exactly that hazard in software so crash tests
 * are meaningful on a DRAM host:
 *
 *  - willWrite() snapshots a line's last-durable content the first time
 *    it is dirtied;
 *  - flush() moves a line to the "pending" state (clwb issued);
 *  - fence() makes pending lines durable (snapshots dropped);
 *  - crash() tears the image: every still-volatile 8-byte word either
 *    keeps its new value (it was evicted in time) or reverts to the
 *    snapshot (it was lost), chosen pseudo-randomly.
 *
 * Persistence is atomic at 8-byte granularity, matching x86 NVM
 * guarantees, so crash() tears *within* cache lines too.
 */
#ifndef CNVM_NVM_CACHE_SIM_H
#define CNVM_NVM_CACHE_SIM_H

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/rand.h"

namespace cnvm::nvm {

constexpr size_t kCacheLine = 64;

/** Crash-model knobs. */
struct CrashParams {
    /** Probability a dirty (never flushed) word survives the crash. */
    double dirtySurvival = 0.5;
    /** Probability a flushed-but-unfenced word survives the crash. */
    double pendingSurvival = 0.75;
};

/**
 * Receives the raw cache-line state-transition stream of one CacheSim
 * (the dynamic persistency validator's feed). Unlike PersistObserver
 * (per-thread, timing-oriented, see hooks.h) this is per-pool and
 * reports individual line numbers. Callbacks run under the cache
 * mutex; implementations must not call back into the CacheSim.
 */
class LineObserver {
 public:
    virtual ~LineObserver() = default;
    /** Line `line` became (or stayed) dirty via a store. */
    virtual void lineDirtied(uint64_t line) = 0;
    /** Line `line` moved dirty -> pending via a clwb. */
    virtual void lineFlushed(uint64_t line) = 0;
    /** All pending lines became durable via an sfence. */
    virtual void fenceRetired() = 0;
    /** All tracking dropped (crash or clean shutdown). */
    virtual void trackingReset() = 0;
};

class CacheSim {
 public:
    explicit CacheSim(uint8_t* base) : base_(base) {}

    CacheSim(const CacheSim&) = delete;
    CacheSim& operator=(const CacheSim&) = delete;

    /** Must be called immediately before mutating [off, off+len). */
    void willWrite(uint64_t off, size_t len);

    /** clwb of the lines covering [off, off+len). Counts + observes. */
    void flush(uint64_t off, size_t len);

    /** sfence: all pending lines become durable. Counts + observes. */
    void fence();

    /**
     * Simulate a power loss: revert lost words to their last durable
     * content. Leaves the cache model empty (all lines clean).
     * @return number of 8-byte words that were reverted.
     */
    size_t crash(Xorshift& rng, const CrashParams& p = CrashParams{});

    /**
     * Worst-case power loss: every non-durable word reverts. Useful for
     * deterministic adversarial tests.
     */
    size_t crashAllLost();

    /** Number of lines currently dirty or pending. */
    size_t volatileLines() const;

    /** Drop all tracking without mutating memory (clean shutdown). */
    void discardAll();

    /**
     * Install (or clear, with nullptr) the line-event observer. The
     * hot paths pay a single null check when none is installed.
     */
    void setLineObserver(LineObserver* obs);

 private:
    struct Line {
        std::array<uint8_t, kCacheLine> snapshot;
        bool pending = false;
    };

    size_t crashImpl(Xorshift* rng, const CrashParams& p);

    uint8_t* base_;
    LineObserver* lineObs_ = nullptr;
    mutable std::mutex mu_;
    std::unordered_map<uint64_t, Line> lines_;
    /** lines with a clwb issued since the last fence (fast fence) */
    std::vector<uint64_t> pending_;
};

}  // namespace cnvm::nvm

#endif  // CNVM_NVM_CACHE_SIM_H
