/**
 * @file
 * Software model of the volatile write-back cache in front of NVM.
 *
 * The paper's machine model (Section 2.1): stores land in volatile
 * caches; a line only becomes durable once flushed (clwb) and ordered
 * (sfence), or when the hardware happens to evict it. On power loss,
 * unflushed lines are lost and writes may persist out of program order.
 *
 * This class reproduces exactly that hazard in software so crash tests
 * are meaningful on a DRAM host:
 *
 *  - willWrite() snapshots a line's last-durable content the first time
 *    it is dirtied;
 *  - flush()/flushLines() move lines to the "pending" state (clwb
 *    issued);
 *  - fence() makes pending lines durable (snapshots retired);
 *  - crash() tears the image: every still-volatile 8-byte word either
 *    keeps its new value (it was evicted in time) or reverts to the
 *    snapshot (it was lost), chosen pseudo-randomly.
 *
 * Persistence is atomic at 8-byte granularity, matching x86 NVM
 * guarantees, so crash() tears *within* cache lines too.
 *
 * Hot-path design (the model must be cheaper than the logging
 * protocols it measures):
 *
 *  - The line table is sharded: power-of-two shards keyed by line bits
 *    (16-line blocks round-robined over the shards), each an
 *    open-addressing flat table of line -> {state, snapshot} slots
 *    under its own mutex. Slots are never deleted, only retired to the
 *    "clean" state at fence time, so probe chains need no tombstones.
 *  - Repeated stores to an already-dirty line skip the shard lock
 *    entirely: willWrite() first probes the calling thread's
 *    DirtyLineCache (see hooks.h). Entries are tagged with the sim's
 *    epoch; flush/fence/crash/observer-install bump the epoch (from a
 *    process-global counter, so values never recur) and thereby
 *    invalidate every thread's cache at once.
 *  - volatileLines() reads a maintained atomic count, O(1).
 *
 * With a LineObserver installed the fast path is disabled (the install
 * bumps the epoch and blocks cache refills), so the observer sees the
 * full per-line event feed, including re-dirties of already-dirty
 * lines — exactly the stream the single-table implementation produced.
 */
#ifndef CNVM_NVM_CACHE_SIM_H
#define CNVM_NVM_CACHE_SIM_H

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rand.h"
#include "nvm/hooks.h"

namespace cnvm::nvm {

constexpr size_t kCacheLine = 64;

/** Crash-model knobs. */
struct CrashParams {
    /** Probability a dirty (never flushed) word survives the crash. */
    double dirtySurvival = 0.5;
    /** Probability a flushed-but-unfenced word survives the crash. */
    double pendingSurvival = 0.75;
};

/**
 * Receives the raw cache-line state-transition stream of one CacheSim
 * (the dynamic persistency validator's feed). Unlike PersistObserver
 * (per-thread, timing-oriented, see hooks.h) this is per-pool and
 * reports individual line numbers. lineDirtied/lineFlushed run under
 * the owning shard's lock; fenceRetired/trackingReset run after the
 * shards have been processed. Implementations must not call back into
 * the CacheSim, and observers should be installed while the sim is
 * quiescent (no concurrent stores).
 */
class LineObserver {
 public:
    virtual ~LineObserver() = default;
    /** Line `line` became (or stayed) dirty via a store. */
    virtual void lineDirtied(uint64_t line) = 0;
    /** Line `line` moved dirty -> pending via a clwb. */
    virtual void lineFlushed(uint64_t line) = 0;
    /** All pending lines became durable via an sfence. */
    virtual void fenceRetired() = 0;
    /** All tracking dropped (crash or clean shutdown). */
    virtual void trackingReset() = 0;
};

class CacheSim {
 public:
    explicit CacheSim(uint8_t* base);

    CacheSim(const CacheSim&) = delete;
    CacheSim& operator=(const CacheSim&) = delete;

    /** Must be called immediately before mutating [off, off+len). */
    void
    willWrite(uint64_t off, size_t len)
    {
        if (len == 0)
            return;
        uint64_t first = off / kCacheLine;
        uint64_t last = (off + len - 1) / kCacheLine;
        uint64_t e = epoch_.load(std::memory_order_acquire);
        DirtyLineCache& c = dirtyLineCache();
        for (uint64_t ln = first; ln <= last; ln++) {
            const DirtyLineCache::Way& w =
                c.ways[ln & (DirtyLineCache::kWays - 1)];
            if (w.line1 != ln + 1 || w.epoch != e)
                return willWriteSlow(first, last, e, c);
        }
        // Every covered line is known dirty under the current epoch:
        // no state can change and no snapshot is needed.
    }

    /** clwb of the lines covering [off, off+len). Counts + observes. */
    void flush(uint64_t off, size_t len);

    /**
     * Batched clwb of `n` arbitrary line numbers (commit-time
     * write-back). Sorts and dedupes `lines` in place, takes each
     * shard lock once per sorted run, coalesces adjacent lines into
     * single clwb bursts for the PersistObserver, and bumps the flush
     * counter once per burst (n lines total).
     */
    void flushLines(uint64_t* lines, size_t n);

    /** sfence: all pending lines become durable. Counts + observes. */
    void fence();

    /**
     * Simulate a power loss: revert lost words to their last durable
     * content. Leaves the cache model empty (all lines clean).
     * @return number of 8-byte words that were reverted.
     */
    size_t crash(Xorshift& rng, const CrashParams& p = CrashParams{});

    /**
     * Worst-case power loss: every non-durable word reverts. Useful for
     * deterministic adversarial tests.
     */
    size_t crashAllLost();

    /** Number of lines currently dirty or pending. O(1). */
    size_t
    volatileLines() const
    {
        return volatile_.load(std::memory_order_relaxed);
    }

    /** Is `line` currently dirty or pending? Probes one shard under
     *  its lock (fault injection skips volatile lines). */
    bool isVolatile(uint64_t line);

    /** Drop all tracking without mutating memory (clean shutdown). */
    void discardAll();

    /**
     * Install (or clear, with nullptr) the line-event observer. While
     * an observer is installed the dirty-line fast path is disabled so
     * the observer sees every transition. Install during quiescence.
     */
    void setLineObserver(LineObserver* obs);

 private:
    enum LineState : uint8_t {
        kEmpty = 0,    ///< slot never used
        kDirty,        ///< stored to since last durable point
        kPending,      ///< clwb issued, fence outstanding
        kClean,        ///< durable; behaves like absent (slot reusable)
    };

    struct Slot {
        /** Line number + 1; 0 = empty. First member so probe chains
         *  touch only the slot header, not the snapshot bytes. */
        uint64_t key = 0;
        LineState state = kEmpty;
        std::array<uint8_t, kCacheLine> snapshot;
    };

    struct Shard {
        std::mutex mu;
        /** Power-of-two open-addressing table; grows, never shrinks. */
        std::vector<Slot> slots;
        /** Lines with a clwb issued since the last fence. */
        std::vector<uint64_t> pending;
        /** Slots with key != 0 (load-factor accounting). */
        size_t used = 0;
    };

    static constexpr size_t kShardCount = 64;       // power of two
    static constexpr uint64_t kShardBlockBits = 4;  // 16 lines/shard hop

    Shard&
    shardOf(uint64_t line)
    {
        return shards_[(line >> kShardBlockBits) & (kShardCount - 1)];
    }

    /** Flag `sh` as holding pending lines (fast-fence bitmask). */
    void
    markPending(Shard& sh)
    {
        auto idx = static_cast<size_t>(&sh - shards_.data());
        pendingShards_.fetch_or(uint64_t{1} << idx,
                                std::memory_order_release);
    }

    void willWriteSlow(uint64_t first, uint64_t last, uint64_t e,
                       DirtyLineCache& c);
    /** Mark `ln` dirty in `sh` (lock held), snapshotting as needed. */
    void dirtyLocked(Shard& sh, uint64_t ln);
    /** Probe for `ln`; nullptr if absent (kClean slots ARE returned). */
    Slot* findSlot(Shard& sh, uint64_t ln);
    void growShard(Shard& sh);
    /** Invalidate every thread's DirtyLineCache for this sim. */
    void bumpEpoch();

    size_t crashImpl(Xorshift* rng, const CrashParams& p);

    uint8_t* base_;
    std::atomic<LineObserver*> lineObs_{nullptr};
    /** Current epoch; drawn from a process-global counter. */
    std::atomic<uint64_t> epoch_;
    /** Lines dirty or pending (volatileLines()). */
    std::atomic<size_t> volatile_{0};
    /** Bit i set => shard i may hold pending lines (fast fence). */
    std::atomic<uint64_t> pendingShards_{0};
    std::array<Shard, kShardCount> shards_;
    static_assert(kShardCount <= 64, "pendingShards_ is one word");
};

}  // namespace cnvm::nvm

#endif  // CNVM_NVM_CACHE_SIM_H
