#include "nvm/hooks.h"

namespace cnvm::nvm {

namespace {
thread_local PersistObserver* tlsObserver = nullptr;
}  // namespace

void
setPersistObserver(PersistObserver* obs)
{
    tlsObserver = obs;
}

PersistObserver*
persistObserver()
{
    return tlsObserver;
}

}  // namespace cnvm::nvm
