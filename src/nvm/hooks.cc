#include "nvm/hooks.h"

#include "stats/counters.h"

namespace cnvm::nvm {

namespace {
thread_local PersistObserver* tlsObserver = nullptr;
}  // namespace

void
setPersistObserver(PersistObserver* obs)
{
    tlsObserver = obs;
}

PersistObserver*
persistObserver()
{
    return tlsObserver;
}

void
notifyFlush(uint64_t nlines, uint64_t bytes)
{
    stats::bump(stats::Counter::flushes, nlines);
    if (tlsObserver != nullptr)
        tlsObserver->flushed(bytes);
}

void
notifyFence()
{
    stats::bump(stats::Counter::fences);
    if (tlsObserver != nullptr)
        tlsObserver->fenced();
}

}  // namespace cnvm::nvm
