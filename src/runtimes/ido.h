/**
 * @file
 * iDO-model runtime (logging-volume measurement, Figure 8).
 *
 * iDO (Liu et al., MICRO '18) splits a FASE into idempotent regions: a
 * region ends when a store would overwrite a location the region has
 * already read (an anti-dependence). At each boundary iDO persists a
 * register snapshot plus any modified memory, and recovery resumes from
 * the last boundary. Its source is not public; like the paper (§5.4),
 * we reimplement the *instrumentation* to collect the transaction's
 * logging profile:
 *
 *  - boundary detection is dynamic: per-region read/write sets, a store
 *    hitting the region read set closes the region;
 *  - each boundary persists a synthetic 136-byte register-file record
 *    (~16 GPRs + flags + PC, matching "a snapshot of most registers")
 *    and flushes+fences the region's modified lines;
 *  - FASE entry persists the equivalent of iDO's NVM-resident stack
 *    state (here: the argument blob).
 *
 * Real iDO resumes from the last region boundary using the persisted
 * register snapshot — state a library reimplementation cannot
 * reconstruct. To keep the model crash-correct anyway (so the torture
 * harness can sweep it like every other protocol), load/store also run
 * the inherited clobber-logging paths and recovery is Clobber-NVM's
 * restore-and-re-execute. The Figure 8 measurement is unaffected: it
 * reads only the idoEntries/idoBytes counters, which count exactly the
 * boundary records and NVM-stack bytes of the iDO model.
 */
#ifndef CNVM_RUNTIMES_IDO_H
#define CNVM_RUNTIMES_IDO_H

#include "runtimes/clobber.h"

namespace cnvm::rt {

class IdoRuntime : public ClobberRuntime {
 public:
    /** Bytes persisted per idempotent-region boundary record. */
    static constexpr uint32_t kRegisterSnapshotBytes = 136;

    IdoRuntime(nvm::Pool& pool, alloc::PmAllocator& heap)
        : ClobberRuntime(pool, heap) {}

    const char* name() const override { return "ido"; }
    txn::RuntimeKind kind() const override
    {
        return txn::RuntimeKind::ido;
    }

    void txBegin(unsigned tid, txn::FuncId fid,
                 std::span<const uint8_t> args) override;
    void store(unsigned tid, void* dst, const void* src,
               size_t n) override;
    void load(unsigned tid, void* dst, const void* src,
              size_t n) override;

 protected:
    void beganPersistently(unsigned tid) override;

 private:
    size_t pendingArgBytes_ = 0;
};

}  // namespace cnvm::rt

#endif  // CNVM_RUNTIMES_IDO_H
