#include "runtimes/atlas.h"

#include <cstring>

#include "stats/counters.h"

namespace cnvm::rt {

AtlasRuntime::AtlasRuntime(nvm::Pool& pool, alloc::PmAllocator& heap)
    : UndoRuntime(pool, heap)
{
    // The dependency ring lives in a pool-global area referenced from
    // the header so reopening the same pool reuses it.
    if (pool_.aux() == 0) {
        uint64_t off = heap_.reserve(kDepRingBytes);
        heap_.persistAllocate(off);
        pool_.fence();
        pool_.setAux(off);
    }
    depRingOff_ = pool_.aux();
}

void
AtlasRuntime::appendLockRecord(unsigned tid, uint64_t code)
{
    // Markers are bookkeeping, not memory images: recovery only needs
    // one durably *before* any later undo image is acted on, and every
    // undo entry's own required fence drains this flush first. A torn
    // marker with a durable successor entry is impossible for the same
    // reason — the successor's fence would have retired this line (see
    // DESIGN.md §12). Under the eliding log writers no such fence
    // exists, but the undo-family declared-salvage rule covers Atlas
    // too (rollbackSlot never claims a clean roll-back then), and the
    // zerocached staging window is strictly FIFO, so markers keep
    // their position relative to undo entries on media.
    appendLogEntry(tid, kMarkerOff, &code, sizeof(code),
                   LogFence::deferred);
    stats::bump(stats::Counter::lockLogEntries);
}

void
AtlasRuntime::appendDepRecord(unsigned tid)
{
    // Contention point: every FASE commit funnels through the global
    // dependency log, in both real and logical time. (RAII: a crash
    // injected mid-append must not leave the lock held.)
    std::lock_guard<sim::SimMutex> simG(depSimLock_);
    std::lock_guard<std::mutex> g(depRealLock_);
    uint8_t record[kDepRecordBytes] = {};
    uint64_t seq = desc(tid).txSeq;
    std::memcpy(record, &seq, sizeof(seq));
    std::memcpy(record + 8, &tid, sizeof(tid));
    uint64_t off = depRingOff_ +
        (depIndex_++ % (kDepRingBytes / kDepRecordBytes)) *
            kDepRecordBytes;
    pool_.writeAt(off, record, sizeof(record));
    // Flush without fence: the ring feeds the (offline) pruner's
    // consistent-cut scan, not single-failure recovery, so the commit
    // path's own fences are early enough to retire this line.
    pool_.flush(pool_.at(off), sizeof(record));
    stats::bump(stats::Counter::depRecords);
}

void
AtlasRuntime::pruneLogs()
{
    // Model of the Atlas log pruner: scan the dependency ring looking
    // for the newest consistent cut. The scan cost is real compute.
    std::lock_guard<std::mutex> g(depRealLock_);
    const auto* ring =
        static_cast<const uint8_t*>(pool_.at(depRingOff_));
    uint64_t newest = 0;
    for (size_t i = 0; i < kDepRingBytes / kDepRecordBytes; i++) {
        uint64_t seq;
        std::memcpy(&seq, ring + i * kDepRecordBytes, sizeof(seq));
        if (seq > newest)
            newest = seq;
    }
    // The cut itself is not needed for single-failure recovery in this
    // model (strict 2PL keeps ongoing FASEs disjoint), so the result
    // is discarded; the cost is what matters.
    (void)newest;
}

void
AtlasRuntime::txBegin(unsigned tid, txn::FuncId fid,
                      std::span<const uint8_t> args)
{
    UndoRuntime::txBegin(tid, fid, args);
    // Atlas infers FASEs from lock operations and cannot tell a
    // read-only critical section apart, so it persists eagerly.
    ensureBegun(tid);
    appendLockRecord(tid, /* acquire */ 1);
}

void
AtlasRuntime::store(unsigned tid, void* dst, const void* src, size_t n)
{
    // Atlas instruments *every* store with an undo log entry — it has
    // no TX_ADD-style per-location dedup (a large part of why the
    // paper measures it ~4x behind Clobber-NVM).
    if (n == 0)
        return;
    ensureBegun(tid);
    appendLogEntry(tid, pool_.offsetOf(dst), dst,
                   static_cast<uint32_t>(n), LogFence::required);
    stats::bump(stats::Counter::undoEntries);
    stats::bump(stats::Counter::undoBytes, n);
    writeDirty(tid, dst, src, n);
}

void
AtlasRuntime::onLock(unsigned tid)
{
    appendLockRecord(tid, /* inner */ 2);
}

void
AtlasRuntime::txCommit(unsigned tid)
{
    appendLockRecord(tid, /* release */ 3);
    appendDepRecord(tid);
    UndoRuntime::txCommit(tid);
    if (++commitsSincePrune_ >= kPruneInterval) {
        commitsSincePrune_ = 0;
        pruneLogs();
    }
}

}  // namespace cnvm::rt
