/**
 * @file
 * Mnemosyne-model redo runtime.
 *
 * Stores are appended to a persistent redo log (flushed lazily, no
 * per-store fence) and buffered in a volatile write set; loads are
 * interposed to read through the write set (the "longer read path" the
 * paper attributes Mnemosyne's slow searches to). Commit needs a small,
 * constant number of fences regardless of transaction size: drain log
 * flushes, persist the commit record, write back, mark idle.
 */
#ifndef CNVM_RUNTIMES_REDO_H
#define CNVM_RUNTIMES_REDO_H

#include <unordered_map>

#include "runtimes/base.h"

namespace cnvm::rt {

class RedoRuntime : public RuntimeBase {
 public:
    RedoRuntime(nvm::Pool& pool, alloc::PmAllocator& heap);

    const char* name() const override { return "mnemosyne"; }
    txn::RuntimeKind kind() const override
    {
        return txn::RuntimeKind::redo;
    }

    void txBegin(unsigned tid, txn::FuncId fid,
                 std::span<const uint8_t> args) override;
    void txCommit(unsigned tid) override;
    void store(unsigned tid, void* dst, const void* src,
               size_t n) override;
    void initZero(unsigned tid, void* dst, size_t n) override;
    void load(unsigned tid, void* dst, const void* src,
              size_t n) override;
    /** Abort = drop the volatile write set (nothing was in place). */
    void txAbort(unsigned tid) override;
    txn::RecoveryReport recover() override;

 protected:
    /** Also drops the slot's volatile write set. */
    void resetVolatileSlot(unsigned tid) override;

    /**
     * Redo begins do not fence the sequence-number write, so a torn
     * crash can revert txSeq to its previous durable value and the
     * next transaction would *reuse* the crashed transaction's
     * sequence number — making that transaction's stale log-tail
     * entries validate during a later replay. Every recovery
     * therefore skips each slot's sequence well past anything that
     * can be in flight: clean slots during triage (fenced together
     * by triageFinish), pending slots as part of their heal (fenced
     * per slot — each must be protected before it is re-admitted).
     */
    void triageSlot(unsigned tid, txn::SlotClass cls) override;
    void triageFinish() override;
    void healOneSlot(unsigned tid, txn::SlotClass cls) override;

    /** Committing slot: replay the redo log forward. */
    void healCommitting(unsigned tid) override;

    /** No commit record: the transaction is discarded; revert any
     *  persisted allocation intents. */
    void healIdle(unsigned tid) override
    {
        recoverIdleIntents(tid, /* committed */ false);
    }

 private:
    /** Effective 8-byte word at `wordOff` (write set wins over home). */
    uint64_t effectiveWord(unsigned tid, uint64_t wordOff) const;

    /** Bump the slot's txSeq by 16 (write + flush; caller fences). */
    void skipSeq(unsigned tid);

    /** Per-slot volatile write set: word offset -> buffered value. */
    std::vector<std::unordered_map<uint64_t, uint64_t>> writeMaps_;
};

}  // namespace cnvm::rt

#endif  // CNVM_RUNTIMES_REDO_H
