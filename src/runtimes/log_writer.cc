#include "runtimes/log_writer.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"
#include "nvm/cache_sim.h"
#include "nvm/pool.h"
#include "runtimes/base.h"
#include "stats/counters.h"

namespace cnvm::rt {

void
LogWriter::sealForFence(unsigned /* tid */, uint8_t* /* area */,
                        size_t /* tail */)
{
}

namespace {

/** Classic per-entry append: write, flush, fence when required. */
class BaselineWriter : public LogWriter {
 public:
    explicit BaselineWriter(nvm::Pool& pool) : pool_(pool) {}

    LogWriterKind kind() const override
    {
        return LogWriterKind::baseline;
    }
    bool elidesRequiredFence() const override { return false; }

    void
    append(unsigned /* tid */, uint8_t* area, size_t tail, size_t need,
           const LogEntryHeader& h, const void* payload,
           LogFence fence) override
    {
        uint8_t* dst = area + tail;
        pool_.write(dst, &h, sizeof(h));
        pool_.write(dst + sizeof(h), payload, h.len);
        pool_.flush(dst, need);
        stats::bump(stats::Counter::logFlushes);
        if (fence == LogFence::required)
            pool_.fence();
    }

 private:
    nvm::Pool& pool_;
};

/** Write-through without the fence: validity by entry checksum. */
class ZeroWriter : public LogWriter {
 public:
    explicit ZeroWriter(nvm::Pool& pool) : pool_(pool) {}

    LogWriterKind kind() const override { return LogWriterKind::zero; }
    bool elidesRequiredFence() const override { return true; }

    void
    append(unsigned /* tid */, uint8_t* area, size_t tail, size_t need,
           const LogEntryHeader& h, const void* payload,
           LogFence /* fence */) override
    {
        uint8_t* dst = area + tail;
        pool_.write(dst, &h, sizeof(h));
        pool_.write(dst + sizeof(h), payload, h.len);
        pool_.flush(dst, need);
        stats::bump(stats::Counter::logFlushes);
    }

 private:
    nvm::Pool& pool_;
};

/**
 * pmembench-style zero-cached writer: entries are packed into a
 * per-slot DRAM window of 1-4 cache lines aligned to the log area's
 * line grid, and reach NVM as one coalesced wide copy + flush when
 * the window fills (or at sealForFence). The window tracks the
 * caller's logical tail; any discontinuity — a new transaction
 * resetting its tail to 0, recovery, a writer swap — re-anchors the
 * window implicitly, so the writer needs no reset hooks.
 */
class ZeroCachedWriter : public LogWriter {
 public:
    static constexpr size_t kMaxLines = 4;

    explicit ZeroCachedWriter(nvm::Pool& pool)
        : pool_(pool), slots_(pool.maxThreads())
    {
        size_t lines = 4;
        if (const char* v = std::getenv("CNVM_LOG_STAGE_LINES")) {
            lines = std::strtoull(v, nullptr, 10);
            lines = lines < 1 ? 1 : (lines > kMaxLines ? kMaxLines
                                                       : lines);
        }
        winBytes_ = lines * nvm::kCacheLine;
    }

    LogWriterKind kind() const override
    {
        return LogWriterKind::zerocached;
    }
    bool elidesRequiredFence() const override { return true; }

    void
    append(unsigned tid, uint8_t* area, size_t tail, size_t need,
           const LogEntryHeader& h, const void* payload,
           LogFence /* fence */) override
    {
        Slot& sl = slots_[tid];
        if (tail != sl.expectedTail)
            rebase(sl, area, tail);
        stage(sl, area, &h, sizeof(h));
        stage(sl, area, payload, h.len);
        size_t pad = need - sizeof(h) - h.len;
        if (pad > 0) {
            // Keep the window byte-exact with the logical tail (the
            // scanner skips the padding via its own 8-byte rounding).
            const uint8_t zeros[8] = {};
            stage(sl, area, zeros, pad);
        }
        sl.expectedTail = tail + need;
    }

    void
    sealForFence(unsigned tid, uint8_t* area, size_t tail) override
    {
        Slot& sl = slots_[tid];
        // A mismatched tail means nothing was staged for this
        // transaction (fresh slot, read-only tx, or a window already
        // retired by recovery) — there is nothing to seal, and
        // writing the stale window out could clobber live log bytes.
        if (tail != sl.expectedTail || tail == 0)
            return;
        writeOut(sl, area);
    }

 private:
    struct Slot {
        /** Logical tail the window is in sync with; anything else
         *  re-anchors. ~0 forces the first append to rebase. */
        size_t expectedTail = ~size_t{0};
        size_t winStart = 0;  ///< line-aligned area offset of buf[0]
        size_t fill = 0;      ///< staged bytes past winStart
        size_t written = 0;   ///< prefix of fill already copied out
        alignas(nvm::kCacheLine) uint8_t buf[kMaxLines *
                                             nvm::kCacheLine];
    };

    void
    rebase(Slot& sl, uint8_t* area, size_t tail)
    {
        sl.winStart = tail & ~(nvm::kCacheLine - 1);
        sl.fill = tail - sl.winStart;
        sl.written = sl.fill;
        // Bytes of the window's head line that precede the tail are
        // already on media (an earlier entry's end); the window must
        // carry them so a full-line copy-out cannot clobber them.
        if (sl.fill > 0)
            std::memcpy(sl.buf, area + sl.winStart, sl.fill);
    }

    void
    stage(Slot& sl, uint8_t* area, const void* src, size_t n)
    {
        const auto* p = static_cast<const uint8_t*>(src);
        while (n > 0) {
            size_t take = winBytes_ - sl.fill;
            take = n < take ? n : take;
            std::memcpy(sl.buf + sl.fill, p, take);
            sl.fill += take;
            p += take;
            n -= take;
            if (sl.fill == winBytes_) {
                writeOut(sl, area);
                sl.winStart += winBytes_;
                sl.fill = 0;
                sl.written = 0;
            }
        }
    }

    /** Copy the window's unwritten suffix to NVM and flush it (no
     *  fence). Restarts from a line boundary so repeated seals of a
     *  growing window rewrite at most 63 stale-but-identical bytes. */
    void
    writeOut(Slot& sl, uint8_t* area)
    {
        if (sl.fill == sl.written)
            return;
        size_t from = sl.written & ~(nvm::kCacheLine - 1);
        pool_.writeStream(area + sl.winStart + from, sl.buf + from,
                          sl.fill - from);
        pool_.flush(area + sl.winStart + from, sl.fill - from);
        stats::bump(stats::Counter::logFlushes);
        sl.written = sl.fill;
    }

    nvm::Pool& pool_;
    size_t winBytes_;
    std::vector<Slot> slots_;
};

}  // namespace

const char*
logWriterName(LogWriterKind k)
{
    switch (k) {
      case LogWriterKind::baseline: return "baseline";
      case LogWriterKind::zero: return "zero";
      case LogWriterKind::zerocached: return "zerocached";
    }
    return "unknown";
}

bool
logWriterKindFromName(const char* name, LogWriterKind* out)
{
    std::string s(name != nullptr ? name : "");
    if (s == "baseline") {
        *out = LogWriterKind::baseline;
    } else if (s == "zero") {
        *out = LogWriterKind::zero;
    } else if (s == "zerocached" || s == "zero-cached") {
        *out = LogWriterKind::zerocached;
    } else {
        return false;
    }
    return true;
}

LogWriterKind
logWriterKindFromEnv()
{
    LogWriterKind k = LogWriterKind::baseline;
    if (const char* v = std::getenv("CNVM_LOG_WRITER"))
        (void)logWriterKindFromName(v, &k);
    return k;
}

std::unique_ptr<LogWriter>
makeLogWriter(LogWriterKind kind, nvm::Pool& pool)
{
    switch (kind) {
      case LogWriterKind::baseline:
        return std::make_unique<BaselineWriter>(pool);
      case LogWriterKind::zero:
        return std::make_unique<ZeroWriter>(pool);
      case LogWriterKind::zerocached:
        return std::make_unique<ZeroCachedWriter>(pool);
    }
    fatal("unknown log writer kind");
}

bool
selectLogWriter(txn::Runtime& rt, LogWriterKind kind)
{
    auto* base = dynamic_cast<RuntimeBase*>(&rt);
    if (base == nullptr)
        return false;
    base->setLogWriter(kind);
    return true;
}

}  // namespace cnvm::rt
