#include "runtimes/ido.h"

#include <cstring>

#include "common/error.h"
#include "stats/counters.h"

namespace cnvm::rt {

void
IdoRuntime::txBegin(unsigned tid, txn::FuncId fid,
                    std::span<const uint8_t> args)
{
    ClobberRuntime::txBegin(tid, fid, args);
    pendingArgBytes_ = args.size();
}

void
IdoRuntime::beganPersistently(unsigned)
{
    // iDO keeps the stack in NVM instead of copying volatile inputs at
    // FASE begin; account the equivalent bytes plus the initial
    // boundary record.
    stats::bump(stats::Counter::idoEntries);
    stats::bump(stats::Counter::idoBytes,
                kRegisterSnapshotBytes + pendingArgBytes_);
}

void
IdoRuntime::load(unsigned tid, void* dst, const void* src, size_t n)
{
    SlotState& s = slot(tid);
    forEachBlock(src, n, [&](uint64_t b) {
        if (!s.regionWriteSet.contains(b))
            s.regionReadSet.insert(b);
    });
    ClobberRuntime::load(tid, dst, src, n);
}

void
IdoRuntime::store(unsigned tid, void* dst, const void* src, size_t n)
{
    ensureBegun(tid);
    SlotState& s = slot(tid);
    bool antiDependence = false;
    forEachBlock(dst, n, [&](uint64_t b) {
        if (s.regionReadSet.contains(b))
            antiDependence = true;
    });
    if (antiDependence) {
        // Idempotent-region boundary: persist the modified memory of
        // the closing region, then the register snapshot.
        flushDirty(tid);
        uint8_t registers[kRegisterSnapshotBytes] = {};
        appendLogEntry(tid, kMarkerOff, registers, sizeof(registers),
                       /* fenceAfter */ true);
        stats::bump(stats::Counter::idoEntries);
        stats::bump(stats::Counter::idoBytes, kRegisterSnapshotBytes);
        s.regionReadSet.clear();
        s.regionWriteSet.clear();
    }
    forEachBlock(dst, n, [&](uint64_t b) {
        s.regionWriteSet.insert(b);
    });
    // The clobber-logging store keeps the model failure-atomic; the
    // iDO measurement above never reads the clobber counters.
    ClobberRuntime::store(tid, dst, src, n);
}

}  // namespace cnvm::rt
