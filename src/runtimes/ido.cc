#include "runtimes/ido.h"

#include <cstring>

#include "common/error.h"
#include "stats/counters.h"

namespace cnvm::rt {

void
IdoRuntime::txBegin(unsigned tid, txn::FuncId fid,
                    std::span<const uint8_t> args)
{
    ClobberRuntime::txBegin(tid, fid, args);
    pendingArgBytes_ = args.size();
}

void
IdoRuntime::beganPersistently(unsigned)
{
    // iDO keeps the stack in NVM instead of copying volatile inputs at
    // FASE begin; account the equivalent bytes plus the initial
    // boundary record.
    stats::bump(stats::Counter::idoEntries);
    stats::bump(stats::Counter::idoBytes,
                kRegisterSnapshotBytes + pendingArgBytes_);
}

void
IdoRuntime::load(unsigned tid, void* dst, const void* src, size_t n)
{
    if (n == 0)
        return;
    // Same media guard as ClobberRuntime::load — recovery here is the
    // inherited restore-and-re-execute.
    if (recovering_ && pool_.faults() != nullptr)
        pool_.checkRead(src, n);
    SlotState& s = slot(tid);
    auto [first, last] = blockRangeOf(src, n);
    // loadRun invariant (iDO): run blocks carry READ|WRITTEN *and*
    // REGION_READ|REGION_WRITTEN, so both the region bookkeeping and
    // the inherited clobber bookkeeping are no-ops.
    if (!s.inLoadRun(first, last)) {
        for (uint64_t b = first; b <= last; b++) {
            uint8_t& st = s.blocks.ref(b);
            if (!(st & BlockMap::kRegionWritten))
                st |= BlockMap::kRegionRead;
            if (!(st & (BlockMap::kRead | BlockMap::kWritten)))
                st |= BlockMap::kRead;
        }
        s.noteLoadRun(first, last);
    }
    std::memcpy(dst, src, n);
}

void
IdoRuntime::store(unsigned tid, void* dst, const void* src, size_t n)
{
    if (n == 0)
        return;
    ensureBegun(tid);
    SlotState& s = slot(tid);
    auto [first, last] = blockRangeOf(dst, n);
    // storeRun invariant (iDO): run blocks are WRITTEN and
    // REGION_WRITTEN with REGION_READ clear — no anti-dependence, no
    // clobber, nothing left to record.
    if (s.inStoreRun(first, last)) {
        writeDirty(tid, dst, src, n);
        return;
    }
    // Optimistic single pass: assume no region boundary and fold the
    // anti-dependence check, the clobber check, and all bit updates
    // into one probe per block. On an anti-dependence the pass aborts
    // and re-runs after the boundary reset (rare: boundaries also pay
    // a flush + log append, so the extra pass is noise).
    bool clobbers = false;
    auto pass = [&]() {
        for (uint64_t b = first; b <= last; b++) {
            uint8_t& st = s.blocks.ref(b);
            if (st & BlockMap::kRegionRead)
                return false;
            if ((st & BlockMap::kRead) &&
                (policy_ == ClobberPolicy::conservative ||
                 !(st & BlockMap::kWritten))) {
                clobbers = true;
            }
            st |= BlockMap::kWritten | BlockMap::kRegionWritten;
        }
        return true;
    };
    if (!pass()) {
        // Idempotent-region boundary: persist the modified memory of
        // the closing region, then the register snapshot. (Under an
        // eliding log writer the snapshot's fence is gone and the
        // boundary guarantee weakens with it — harmless here, because
        // the inherited clobber recovery never resumes from a
        // boundary and declares interrupted slots instead.)
        flushDirty(tid);
        uint8_t registers[kRegisterSnapshotBytes] = {};
        appendLogEntry(tid, kMarkerOff, registers, sizeof(registers),
                       LogFence::required);
        stats::bump(stats::Counter::idoEntries);
        stats::bump(stats::Counter::idoBytes, kRegisterSnapshotBytes);
        s.blocks.clearRegionBits();
        // The region bits every cached run relied on are gone.
        s.resetRuns();
        pass();  // cannot abort again: no REGION_READ bits remain
    }
    // The clobber logging keeps the model failure-atomic; the iDO
    // measurement above never reads the clobber counters.
    if (clobbers)
        appendClobberEntry(tid, dst, n);
    if (policy_ == ClobberPolicy::refined)
        s.noteStoreRun(first, last);
    writeDirty(tid, dst, src, n);
}

}  // namespace cnvm::rt
