/**
 * @file
 * Pluggable log-append engines ("log writers").
 *
 * Every protocol log entry in the repository is self-validating: the
 * header carries the owning transaction's sequence number and an
 * fnv1a checksum over (targetOff, len, seqLo, payload), and there is
 * no persistent tail pointer (descriptor.h). Recovery therefore never
 * needs an *ordering* fence between an entry's header and payload —
 * a torn entry simply fails validation and scanning stops. What the
 * per-entry fence in the classic append path actually buys is
 * ordering between the entry and the *in-place stores that follow
 * it* (an undo image must beat its clobbering write to the media).
 *
 * The writers make that cost explicit and optional (pmembench's
 * log-writer shootout, van Renen et al.):
 *
 *  - baseline    entry write + flush (+ fence when the protocol asks
 *                for LogFence::required). The classic path; the
 *                ablation reference.
 *  - zero        entry write + flush, never a fence. Entry validity
 *                rests entirely on the checksum.
 *  - zerocached  entries are packed into a small per-slot DRAM
 *                staging window (1-4 cache lines) and reach NVM as
 *                one coalesced wide copy + flush per window, when a
 *                window fills or at sealForFence(). Never a fence.
 *
 * The zero/zerocached writers *elide* the required fence
 * (elidesRequiredFence() == true). That is a real durability-ordering
 * relaxation, not a free lunch: an in-place store can now become
 * durable while the log entry covering it is lost, and after a torn
 * crash the missing entry is indistinguishable from "never appended".
 * The runtimes compensate (see DESIGN.md §15): commit paths seal the
 * staged log before their data fence — so a *committed* transaction
 * is exactly as safe as under baseline — and recovery of a slot that
 * was mid-transaction under an eliding writer rolls back best-effort
 * and always declares a salvage abort instead of claiming a clean
 * roll-back (clobber-family runtimes also skip re-execution, which
 * would otherwise read potentially-unlogged inputs).
 */
#ifndef CNVM_RUNTIMES_LOG_WRITER_H
#define CNVM_RUNTIMES_LOG_WRITER_H

#include <cstddef>
#include <cstdint>
#include <memory>

#include "runtimes/descriptor.h"

namespace cnvm::nvm {
class Pool;
}
namespace cnvm::txn {
class Runtime;
}

namespace cnvm::rt {

/**
 * Durability-ordering requirement of a log entry append.
 *
 * `required` asks for the entry to be durable before the caller
 * executes anything that could tear independently of it (an undo
 * image must beat its in-place write to the media). `deferred` only
 * asks for a flush, retired by the *next* fence the slot issues —
 * sound for entries whose loss is harmless until a later durable
 * point (redo entries before the commit record, Atlas marker records:
 * see DESIGN.md §12 for the torn-line argument).
 *
 * Only the baseline writer turns `required` into an actual sfence;
 * the zero/zerocached writers elide it (see the file comment).
 */
enum class LogFence {
    required,
    deferred,
};

enum class LogWriterKind : uint32_t {
    baseline,
    zero,
    zerocached,
};

/** Stable engine name ("baseline", "zero", "zerocached"). */
const char* logWriterName(LogWriterKind k);

/** Parse an engine name (also accepts "zero-cached"). */
bool logWriterKindFromName(const char* name, LogWriterKind* out);

/** Engine selected by CNVM_LOG_WRITER (default: baseline; unknown
 *  names fall back to baseline so a typo cannot change semantics). */
LogWriterKind logWriterKindFromEnv();

class LogWriter {
 public:
    virtual ~LogWriter() = default;

    virtual LogWriterKind kind() const = 0;
    const char* name() const { return logWriterName(kind()); }

    /**
     * True when LogFence::required appends are not actually fenced:
     * recovery must treat any interrupted transaction's log as
     * potentially incomplete (declare, don't re-execute).
     */
    virtual bool elidesRequiredFence() const = 0;

    /**
     * Append one already-checksummed entry at `area + tail`. `need`
     * is the 8-byte-aligned stride the caller advances the tail by
     * (header + padded payload). The writer owns getting the bytes
     * to NVM and issuing flushes/fences per its engine contract.
     */
    virtual void append(unsigned tid, uint8_t* area, size_t tail,
                        size_t need, const LogEntryHeader& h,
                        const void* payload, LogFence fence) = 0;

    /**
     * Make every byte appended at or before logical position `tail`
     * visible to NVM and flushed (not fenced): the caller's next
     * fence retires them. No-op for write-through engines; the
     * zerocached writer copies out its partial staging window.
     * Commit/abort/rollback paths call this before their first fence
     * and before any salvage::scanLogArea over the slot's area.
     */
    virtual void sealForFence(unsigned tid, uint8_t* area, size_t tail);
};

/** Construct an engine bound to `pool` (per-slot state is sized from
 *  the pool's maxThreads). */
std::unique_ptr<LogWriter> makeLogWriter(LogWriterKind kind,
                                         nvm::Pool& pool);

/**
 * Swap the log writer of a RuntimeBase-derived runtime (benches sweep
 * engines within one process; CNVM_LOG_WRITER is read once at
 * construction). @return false if `rt` is not RuntimeBase-derived.
 * Must not be called with a transaction in flight.
 */
bool selectLogWriter(txn::Runtime& rt, LogWriterKind kind);

}  // namespace cnvm::rt

#endif  // CNVM_RUNTIMES_LOG_WRITER_H
