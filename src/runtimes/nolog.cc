#include "runtimes/nolog.h"

#include <cstring>

#include "common/error.h"
#include "stats/counters.h"

namespace cnvm::rt {

void
NoLogRuntime::txBegin(unsigned tid, txn::FuncId fid,
                      std::span<const uint8_t> args)
{
    stageBegin(tid, fid, args, /* persistArgs */ false);
    // No-log never persists the begin record at all.
    slot(tid).begunPersist = true;
}

void
NoLogRuntime::txCommit(unsigned tid)
{
    SlotState& s = slot(tid);
    CNVM_CHECK(s.inTx, "commit outside transaction");
    s.inTx = false;
    stats::bump(stats::Counter::txCommits);
}

uint64_t
NoLogRuntime::alloc(unsigned tid, size_t n)
{
    // Direct (non-failure-atomic) allocation: mark the bitmap
    // immediately, no intent log, no ordering.
    (void)tid;
    uint64_t off = heap_.reserve(n);
    heap_.persistAllocate(off);
    return off;
}

void
NoLogRuntime::dealloc(unsigned tid, uint64_t payloadOff)
{
    (void)tid;
    heap_.persistFree(payloadOff);
}

void
NoLogRuntime::store(unsigned tid, void* dst, const void* src, size_t n)
{
    writeDirty(tid, dst, src, n);
}

void
NoLogRuntime::load(unsigned, void* dst, const void* src, size_t n)
{
    std::memcpy(dst, src, n);
}

txn::RecoveryReport
NoLogRuntime::recover()
{
    // Nothing persistent to repair (and no way to), but interrupted
    // transactions' volatile slot state must still be dropped or the
    // restarted process cannot begin a new transaction on that slot.
    // The *data* those transactions tore stays torn — that is the
    // point of the baseline, and what the torture sweep detects. The
    // report is likewise honest: no-log has no way to detect damage,
    // so it never declares a salvage abort and the media sweep's
    // shadow audit stays strict.
    RecoverySession session(*this);
    for (SlotState& s : slots_) {
        s.inTx = false;
        s.resetTx();
    }
    rebuildHeap();
    return session.take();
}

txn::RecoveryIndex
NoLogRuntime::recoveryTriage()
{
    txn::RecoveryIndex idx;
    idx.supportsLazy = true;
    idx.heapPending = true;
    for (SlotState& s : slots_) {
        s.inTx = false;
        s.resetTx();
    }
    return idx;
}

}  // namespace cnvm::rt
