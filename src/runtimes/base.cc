#include "runtimes/base.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/rand.h"
#include "nvm/cache_sim.h"
#include "stats/counters.h"

namespace cnvm::rt {

using salvage::alignUp8;

RuntimeBase::RuntimeBase(nvm::Pool& pool, alloc::PmAllocator& heap)
    : pool_(pool), heap_(heap), slots_(pool.maxThreads()),
      logWriter_(makeLogWriter(logWriterKindFromEnv(), pool))
{
    CNVM_CHECK(pool.slotBytes() > logAreaOffset() + 4096,
               "pool slots too small for descriptor + log area");
}

void
RuntimeBase::setLogWriter(LogWriterKind kind)
{
    for (const SlotState& s : slots_)
        CNVM_CHECK(!s.inTx, "cannot swap log writers mid-transaction");
    logWriter_ = makeLogWriter(kind, pool_);
}

TxDescriptor&
RuntimeBase::desc(unsigned tid)
{
    return *static_cast<TxDescriptor*>(pool_.slot(tid));
}

const TxDescriptor&
RuntimeBase::desc(unsigned tid) const
{
    return *static_cast<const TxDescriptor*>(pool_.slot(tid));
}

uint8_t*
RuntimeBase::logArea(unsigned tid)
{
    return static_cast<uint8_t*>(pool_.slot(tid)) + logAreaOffset();
}

size_t
RuntimeBase::logCapacity() const
{
    return pool_.slotBytes() - logAreaOffset();
}

RuntimeBase::SlotState&
RuntimeBase::slot(unsigned tid)
{
    CNVM_CHECK(tid < slots_.size(), "tid out of range");
    return slots_[tid];
}

std::span<const uint8_t>
RuntimeBase::argBlob(unsigned tid) const
{
    const auto& s = slots_[tid];
    return {s.volatileArgs.data(), s.volatileArgs.size()};
}

void
RuntimeBase::writeDirty(unsigned tid, void* dst, const void* src,
                        size_t n)
{
    pool_.write(dst, src, n);
    if (n == 0)
        return;
    SlotState& s = slot(tid);
    uint64_t off = pool_.offsetOf(dst);
    uint64_t first = off / nvm::kCacheLine;
    uint64_t last = (off + n - 1) / nvm::kCacheLine;
    // Same-line memo: repeated stores to the current cache line (field
    // updates, sequential small writes) skip the hash insert.
    if (first == s.lastDirtyLine && last == s.lastDirtyLine)
        return;
    for (uint64_t ln = first; ln <= last; ln++)
        s.dirtyLines.insert(ln + 1);  // +1: EpochSet forbids key 0
    s.lastDirtyLine = last;
}

void
RuntimeBase::flushDirty(unsigned tid)
{
    SlotState& s = slot(tid);
    s.lastDirtyLine = ~0ULL;
    if (s.dirtyLines.size() == 0)
        return;  // read-only / already-flushed: skip the copy-out
    s.flushScratch.clear();
    s.dirtyLines.forEach([&](uint64_t lnPlus1) {
        s.flushScratch.push_back(lnPlus1 - 1);
    });
    pool_.flushLines(s.flushScratch.data(), s.flushScratch.size());
    s.dirtyLines.clear();
}

void
RuntimeBase::appendLogEntry(unsigned tid, uint64_t targetOff,
                            const void* payload, uint32_t len,
                            LogFence fence)
{
    CNVM_CHECK(len > 0, "empty log entry");
    SlotState& s = slot(tid);
    size_t need = sizeof(LogEntryHeader) + alignUp8(len);
    if (s.logTail + need > logCapacity())
        throw txn::LogOverflowError(s.logTail + need, logCapacity());
    LogEntryHeader h{};
    h.targetOff = targetOff;
    h.len = len;
    h.seqLo = static_cast<uint32_t>(desc(tid).txSeq);
    h.checksum =
        salvage::entryChecksum(h, static_cast<const uint8_t*>(payload));
    logWriter_->append(tid, logArea(tid), s.logTail, need, h, payload,
                       fence);
    s.logTail += need;
    stats::bump(stats::Counter::logEntries);
    stats::bump(stats::Counter::logBytes, need);
}

void
RuntimeBase::sealLog(unsigned tid)
{
    logWriter_->sealForFence(tid, logArea(tid), slot(tid).logTail);
}

const std::vector<ScannedEntry>&
RuntimeBase::scanLog(unsigned tid, salvage::ScanStats* stats)
{
    std::vector<ScannedEntry>& out = slot(tid).scanScratch;
    salvage::scanLogArea(&pool_, logArea(tid), logCapacity(),
                         static_cast<uint32_t>(desc(tid).txSeq), out,
                         stats);
    return out;
}

uint64_t
RuntimeBase::beginChecksum(unsigned tid) const
{
    return salvage::beginChecksum(desc(tid));
}

bool
RuntimeBase::isOngoing(unsigned tid) const
{
    const TxDescriptor& d = desc(tid);
    if (d.status != static_cast<uint64_t>(TxStatus::ongoing))
        return false;
    if (d.argLen > kMaxArgBytes)
        return false;
    return beginChecksum(tid) == d.beginSum;
}

void
RuntimeBase::persistBegin(unsigned tid, txn::FuncId fid,
                          std::span<const uint8_t> args,
                          bool persistArgs)
{
    TxDescriptor& d = desc(tid);
    uint64_t seq = d.txSeq + 1;
    auto status = static_cast<uint64_t>(TxStatus::ongoing);
    auto argLen =
        static_cast<uint32_t>(persistArgs ? args.size() : 0);
    CNVM_CHECK(argLen <= kMaxArgBytes,
               "transaction argument blob too large");
    pool_.write(&d.status, &status, sizeof(status));
    pool_.write(&d.txSeq, &seq, sizeof(seq));
    pool_.write(&d.fid, &fid, sizeof(fid));
    pool_.write(&d.argLen, &argLen, sizeof(argLen));
    if (argLen > 0)
        pool_.write(d.args, args.data(), args.size());
    uint64_t sum = beginChecksum(tid);
    pool_.write(&d.beginSum, &sum, sizeof(sum));
    size_t persistBytes = offsetof(TxDescriptor, args) + argLen;
    if (persistArgs) {
        stats::bump(stats::Counter::vlogEntries);
        stats::bump(stats::Counter::vlogBytes,
                    sizeof(uint64_t) * 2 + sizeof(uint32_t) * 2 +
                        args.size());
    }
    pool_.flush(&d, persistBytes);
    pool_.fence();
}

void
RuntimeBase::persistIntentsAndAllocs(unsigned tid)
{
    SlotState& s = slot(tid);
    if (s.actions.empty())
        return;
    CNVM_CHECK(s.actions.size() <= kMaxIntents,
               "too many allocation actions in one transaction");
    TxDescriptor& d = desc(tid);
    std::vector<AllocIntent> table;
    table.reserve(s.actions.size());
    for (const auto& [off, isFree] : s.actions) {
        AllocIntent in{};
        in.payloadOff = off;
        in.payloadBytes = heap_.payloadSize(off);
        in.isFree = isFree ? 1 : 0;
        table.push_back(in);
    }
    auto count = static_cast<uint32_t>(table.size());
    uint64_t sum = salvage::intentChecksum(d.txSeq, count, table.data());
    pool_.write(&d.intentSeq, &d.txSeq, sizeof(d.txSeq));
    pool_.write(&d.intentCount, &count, sizeof(count));
    pool_.write(&d.intentSum, &sum, sizeof(sum));
    pool_.write(d.intents, table.data(),
                table.size() * sizeof(AllocIntent));
    pool_.flush(&d.intentSeq,
                offsetof(TxDescriptor, intents) -
                    offsetof(TxDescriptor, intentSeq) +
                    table.size() * sizeof(AllocIntent));
    pool_.fence();
    for (const auto& [off, isFree] : s.actions) {
        if (!isFree)
            heap_.persistAllocate(off);
    }
}

void
RuntimeBase::finishIntentsAfterCommit(unsigned tid)
{
    SlotState& s = slot(tid);
    if (s.actions.empty())
        return;
    // Free with the sizes recorded in the (just-persisted) intent
    // table rather than re-reading block headers: the table is the
    // authority, and a header whose media went bad must not be able
    // to fail a commit that already passed its commit point.
    TxDescriptor& d = desc(tid);
    bool anyFree = false;
    for (uint32_t i = 0; i < d.intentCount; i++) {
        const AllocIntent& in = d.intents[i];
        if (in.isFree != 0) {
            heap_.persistFree(in.payloadOff, in.payloadBytes);
            anyFree = true;
        }
    }
    // The fence must retire the bitmap clears BEFORE the table is
    // invalidated: if intentCount = 0 could become durable while a
    // free's bitmap word tore, recovery would see no live table and
    // the freed block would leak forever.
    if (anyFree)
        pool_.fence();
    uint32_t zero = 0;
    pool_.write(&d.intentCount, &zero, sizeof(zero));
    pool_.flush(&d.intentCount, sizeof(zero));
    // The invalidation must be durable BEFORE persistIdle's status
    // write can be: a live table on a durably-idle slot is
    // indistinguishable from a crash before the commit record, and
    // recovery would roll back this committed transaction's
    // allocations (freeing reachable blocks). A torn crash can
    // persist the 8-byte status word while the intent-count line is
    // lost, so sharing persistIdle's fence is not enough.
    pool_.fence();
}

bool
RuntimeBase::hasLiveIntents(unsigned tid) const
{
    const TxDescriptor& d = desc(tid);
    if (d.intentSeq != d.txSeq || d.intentCount == 0 ||
        d.intentCount > kMaxIntents) {
        return false;
    }
    return salvage::intentChecksum(d.intentSeq, d.intentCount,
                                   d.intents) == d.intentSum;
}

void
RuntimeBase::recoverIntents(unsigned tid, bool committed)
{
    if (!hasLiveIntents(tid))
        return;
    TxDescriptor& d = desc(tid);
    for (uint32_t i = 0; i < d.intentCount; i++) {
        const AllocIntent& in = d.intents[i];
        if (committed) {
            // Complete the commit: make sure allocs are marked and
            // frees are applied.
            heap_.revertBits(in.payloadOff, in.payloadBytes,
                             in.isFree == 0);
        } else if (in.isFree == 0) {
            // Roll back: allocations revert to free; frees were never
            // applied before the commit point, so leave them alone.
            heap_.revertBits(in.payloadOff, in.payloadBytes, false);
        }
    }
    pool_.fence();
    uint32_t zero = 0;
    pool_.write(&d.intentCount, &zero, sizeof(zero));
    pool_.persist(&d.intentCount, sizeof(zero));
}

void
RuntimeBase::reapplyAllocIntents(unsigned tid)
{
    if (!hasLiveIntents(tid))
        return;
    TxDescriptor& d = desc(tid);
    for (uint32_t i = 0; i < d.intentCount; i++) {
        const AllocIntent& in = d.intents[i];
        if (in.isFree == 0)
            heap_.revertBits(in.payloadOff, in.payloadBytes, true);
    }
    pool_.fence();
}

RuntimeBase::RecoverySession::RecoverySession(RuntimeBase& rt)
    : rt_(rt)
{
    report_.slotsScanned = rt_.pool_.maxThreads();
    if (const nvm::FaultModel* fm = rt_.pool_.faults()) {
        poisonReads0_ = fm->poisonReads();
        retries0_ = fm->retries();
    }
    rt_.report_ = &report_;
}

RuntimeBase::RecoverySession::~RecoverySession()
{
    rt_.report_ = nullptr;
}

txn::RecoveryReport
RuntimeBase::RecoverySession::take()
{
    if (const nvm::FaultModel* fm = rt_.pool_.faults()) {
        report_.poisonedReads = fm->poisonReads() - poisonReads0_;
        report_.transientRetries = fm->retries() - retries0_;
    }
    rt_.report_ = nullptr;
    return std::move(report_);
}

void
RuntimeBase::recordSlot(txn::SlotRecovery s)
{
    if (report_ == nullptr)
        return;
    if (s.entriesDropped > 0) {
        stats::bump(stats::Counter::salvageDroppedEntries,
                    s.entriesDropped);
    }
    report_->add(std::move(s));
}

bool
RuntimeBase::descReadable(unsigned tid)
{
    // Guard only the begin record (status through the v_log args).
    // The intent table that follows carries its own checksum and its
    // own guarded handler (liveIntentsGuarded) with better salvage
    // semantics; vetting it here would shadow that path and turn
    // every table fault into a blanket "descriptor poisoned" abort.
    try {
        pool_.checkRead(&desc(tid), offsetof(TxDescriptor, intentSeq));
    } catch (const nvm::MediaFaultError&) {
        return false;
    }
    return true;
}

int
RuntimeBase::liveIntentsGuarded(unsigned tid)
{
    const TxDescriptor& d = desc(tid);
    constexpr size_t tableBytes =
        sizeof(TxDescriptor) - offsetof(TxDescriptor, intentSeq);
    try {
        pool_.checkRead(&d.intentSeq, tableBytes);
    } catch (const nvm::MediaFaultError&) {
        return -1;
    }
    if (hasLiveIntents(tid))
        return 1;
    // A table that *looks* live (right seq, sane count) but fails its
    // checksum on a tainted line was corrupted, not torn: the alloc
    // actions it described are unrecoverable.
    if (d.intentSeq == d.txSeq && d.intentCount > 0 &&
        d.intentCount <= kMaxIntents &&
        pool_.isTainted(&d.intentSeq, tableBytes)) {
        return -1;
    }
    return 0;
}

void
RuntimeBase::abandonSlot(unsigned tid)
{
    // Rebuild the whole descriptor rather than patching fields: the
    // full rewrite clears every stale field *and* heals the media
    // (fresh stores make the lines trustworthy again), so the next
    // recovery pass sees a clean idle slot instead of re-declaring
    // the same damage forever. txSeq survives — bumped, so surviving
    // log entries of the abandoned transaction can never validate
    // again.
    TxDescriptor& d = desc(tid);
    TxDescriptor clean{};
    std::memcpy(&clean.txSeq, &d.txSeq, sizeof(clean.txSeq));
    clean.txSeq += 1;
    clean.status = static_cast<uint64_t>(TxStatus::idle);
    pool_.write(&d, &clean, sizeof(clean));
    pool_.persist(&d, sizeof(clean));
}

void
RuntimeBase::salvageResetSlot(unsigned tid)
{
    // The slot is being abandoned because some of its lines are
    // poisoned, flipped or unparseable.
    abandonSlot(tid);
    stats::bump(stats::Counter::salvageAborts);
}

void
RuntimeBase::txAbort(unsigned tid)
{
    SlotState& s = slot(tid);
    if (!s.inTx)
        return;
    if (s.begunPersist) {
        // Roll the in-place writes back from the log, in reverse
        // (for clobber-family runtimes this restores the clobbered
        // inputs only; blind stores to pre-existing blocks stay, the
        // same caveat their recovery documents). Staged entries must
        // reach the log area first or the scan cannot see them.
        sealLog(tid);
        const auto& entries = scanLog(tid);
        for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
            if (it->targetOff == kMarkerOff)
                continue;
            pool_.writeAt(it->targetOff, it->data, it->len);
            pool_.flush(pool_.at(it->targetOff), it->len);
        }
        pool_.fence();
        // An intent table only persists inside txCommit, after every
        // append — it cannot be live here unless a protocol grows an
        // early-persist path; revert it if it is.
        recoverIntents(tid, /* committed */ false);
    }
    // Un-reserve this transaction's allocations (volatile only: their
    // bitmap bits are not set until commit).
    for (const auto& [off, isFree] : s.actions) {
        if (!isFree)
            heap_.releaseReservation(off);
    }
    if (s.begunPersist)
        abandonSlot(tid);
    s.inTx = false;
    s.resetTx();
}

bool
RuntimeBase::slotRecoverable(unsigned tid)
{
    // A begin record that reads back but sits on a flipped line is as
    // untrustworthy as a poisoned one: a flipped status, txSeq or
    // begin checksum silently misroutes the whole slot's recovery.
    // Resetting without reverting intents can leak blocks, but
    // replaying a possibly-flipped intent table could corrupt the
    // bitmap — the leak is the safe direction, and it is declared.
    // Only the begin record is vetted here; intent-table faults are
    // the province of liveIntentsGuarded.
    const char* why = nullptr;
    if (!descReadable(tid))
        why = "descriptor poisoned";
    else if (pool_.isTainted(&desc(tid),
                             offsetof(TxDescriptor, intentSeq)))
        why = "descriptor tainted (bit flip)";
    if (why == nullptr)
        return true;
    txn::SlotRecovery sr;
    sr.tid = tid;
    sr.action = txn::SlotAction::salvageAborted;
    sr.note = why;
    recordSlot(std::move(sr));
    salvageResetSlot(tid);
    return false;
}

void
RuntimeBase::recoverIdleIntents(unsigned tid, bool committed)
{
    int live = liveIntentsGuarded(tid);
    if (live > 0) {
        recoverIntents(tid, committed);
        txn::SlotRecovery sr;
        sr.tid = tid;
        sr.action = committed ? txn::SlotAction::intentsCompleted
                              : txn::SlotAction::intentsReverted;
        recordSlot(std::move(sr));
    } else if (live < 0) {
        if (report_ != nullptr)
            report_->intentTablesLost++;
        salvageResetSlot(tid);
        txn::SlotRecovery sr;
        sr.tid = tid;
        sr.action = txn::SlotAction::salvageAborted;
        sr.note = "alloc intent table unreadable or corrupt";
        recordSlot(std::move(sr));
    }
}

void
RuntimeBase::rebuildHeap(bool keepSession)
{
    alloc::RebuildStats rs = heap_.rebuild(keepSession);
    if (report_ != nullptr) {
        report_->quarantinedBlocks += rs.quarantinedBlocks;
        report_->quarantinedBytes += rs.quarantinedBytes;
    }
}

void
RuntimeBase::resetVolatileSlot(unsigned tid)
{
    slot(tid) = SlotState{};
}

txn::SlotClass
RuntimeBase::classifySlot(unsigned tid)
{
    if (isOngoing(tid))
        return txn::SlotClass::ongoing;
    if (desc(tid).status ==
        static_cast<uint64_t>(TxStatus::committing)) {
        return txn::SlotClass::committing;
    }
    // Both a live table and a poisoned/corrupt one need a heal (the
    // heal records the latter as lost); only 0 means nothing to do.
    if (liveIntentsGuarded(tid) != 0)
        return txn::SlotClass::idleIntents;
    return txn::SlotClass::clean;
}

txn::RecoveryIndex
RuntimeBase::recoveryTriage()
{
    txn::RecoveryIndex idx;
    idx.supportsLazy = true;
    idx.heapPending = true;
    for (unsigned tid = 0; tid < pool_.maxThreads(); tid++) {
        resetVolatileSlot(tid);
        txn::IndexEntry e;
        e.tid = tid;
        // Read-only damage check — unlike slotRecoverable, triage
        // must not salvage-reset anything (healSlot does, once).
        bool damaged =
            !descReadable(tid) ||
            pool_.isTainted(&desc(tid),
                            offsetof(TxDescriptor, intentSeq));
        e.cls = damaged ? txn::SlotClass::damaged : classifySlot(tid);
        if (!damaged && liveIntentsGuarded(tid) == 1) {
            // A live intent table may own blocks whose bitmap bits
            // tore in the crash: pin them out of the free map until
            // this slot's heal settles their true state.
            const TxDescriptor& d = desc(tid);
            for (uint32_t i = 0; i < d.intentCount; i++) {
                const AllocIntent& in = d.intents[i];
                txn::HoldRange h;
                h.tid = tid;
                h.off = in.payloadOff - sizeof(alloc::BlockHeader);
                h.bytes = (sizeof(alloc::BlockHeader) +
                               in.payloadBytes +
                           alloc::kGranule - 1) /
                          alloc::kGranule * alloc::kGranule;
                idx.holds.push_back(h);
            }
        }
        triageSlot(tid, e.cls);
        if (e.cls != txn::SlotClass::clean)
            idx.entries.push_back(e);
    }
    triageFinish();
    return idx;
}

void
RuntimeBase::healOneSlot(unsigned tid, txn::SlotClass)
{
    // Re-derive the slot's condition from media: the triage class is
    // advisory, and a crash mid-heal may have left the slot in a later
    // stage (e.g. already salvage-reset) than the index recorded.
    if (!slotRecoverable(tid))
        return;
    if (isOngoing(tid))
        healOngoing(tid);
    else if (desc(tid).status ==
             static_cast<uint64_t>(TxStatus::committing))
        healCommitting(tid);
    else
        healIdle(tid);
}

txn::RecoveryReport
RuntimeBase::healSlot(const txn::IndexEntry& e)
{
    RecoverySession session(*this);
    // Per-entry heals examine one slot of the universe triage already
    // counted; merge() takes the max, so report 0 here.
    session.report().slotsScanned = 0;
    healOneSlot(e.tid, e.cls);
    resetVolatileSlot(e.tid);
    return session.take();
}

txn::RecoveryReport
RuntimeBase::healHeap()
{
    RecoverySession session(*this);
    session.report().slotsScanned = 0;
    rebuildHeap(/* keepSession */ true);
    return session.take();
}

void
RuntimeBase::persistIdle(unsigned tid)
{
    TxDescriptor& d = desc(tid);
    auto status = static_cast<uint64_t>(TxStatus::idle);
    uint64_t zeroSum = 0;
    pool_.write(&d.status, &status, sizeof(status));
    // Invalidate the begin record in the same flush: a later
    // transaction's lone status write must not be able to resurrect
    // this (committed) record (status and beginSum share a line).
    pool_.write(&d.beginSum, &zeroSum, sizeof(zeroSum));
    pool_.flush(&d.status,
                offsetof(TxDescriptor, beginSum) + sizeof(zeroSum));
    pool_.fence();
    stats::bump(stats::Counter::txCommits);
}

void
RuntimeBase::stageBegin(unsigned tid, txn::FuncId fid,
                        std::span<const uint8_t> args, bool persistArgs)
{
    SlotState& s = slot(tid);
    CNVM_CHECK(!s.inTx, "nested transactions are not supported");
    s.inTx = true;
    s.resetTx();
    s.volatileArgs.assign(args.begin(), args.end());
    s.pendingFid = fid;
    s.wantArgsPersist = persistArgs;
    stats::bump(stats::Counter::txBegins);
    if (eagerBegin_)
        ensureBegun(tid);
}

void
RuntimeBase::ensureBegun(unsigned tid)
{
    SlotState& s = slot(tid);
    if (!s.inTx || s.begunPersist)
        return;
    s.begunPersist = true;
    persistBegin(tid, s.pendingFid,
                 {s.volatileArgs.data(), s.volatileArgs.size()},
                 s.wantArgsPersist);
    beganPersistently(tid);
}

void
RuntimeBase::initZero(unsigned tid, void* dst, size_t n)
{
    ensureBegun(tid);
    static constexpr size_t kChunk = 512;
    uint8_t zeros[kChunk] = {};
    auto* p = static_cast<uint8_t*>(dst);
    for (size_t i = 0; i < n; i += kChunk)
        writeDirty(tid, p + i, zeros, std::min(kChunk, n - i));
}

uint64_t
RuntimeBase::alloc(unsigned tid, size_t n)
{
    ensureBegun(tid);
    SlotState& s = slot(tid);
    uint64_t off = heap_.reserve(n);
    s.actions.emplace_back(off, false);
    // Fresh memory is not a transaction input: pre-mark its blocks as
    // written so no runtime ever logs stores into it (PMDK does not
    // undo-log TX_NEW'd objects either).
    size_t payload = heap_.payloadSize(off);
    uint64_t first = off / kBlock;
    uint64_t last = (off + payload - 1) / kBlock;
    for (uint64_t b = first; b <= last; b++) {
        s.blocks.ref(b) |=
            BlockMap::kWritten | BlockMap::kRegionWritten;
    }
    // Note: fresh blocks deliberately do NOT get the kLogged bit. The
    // paper's PMDK baseline (Figure 2b) TX_ADDs freshly allocated
    // fields before writing them, so the undo model logs them too —
    // that asymmetry is a real part of clobber logging's advantage.
    return off;
}

void
RuntimeBase::dealloc(unsigned tid, uint64_t payloadOff)
{
    // A free is a durable effect: a free-only transaction must not
    // take the read-only fast path at commit (its intent table would
    // silently be dropped).
    ensureBegun(tid);
    slot(tid).actions.emplace_back(payloadOff, true);
}

}  // namespace cnvm::rt
