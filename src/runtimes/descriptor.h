/**
 * @file
 * Persistent per-thread transaction descriptor.
 *
 * Each pool thread-slot starts with a TxDescriptor followed by a log
 * area. The descriptor holds the transaction status word, the v_log
 * payload (txfunc id + argument blob) for recovery-via-resumption
 * runtimes, and the allocation intent table that makes pmalloc/pfree
 * failure-atomic. The log area holds protocol log entries (undo,
 * clobber, redo, or iDO boundary records).
 *
 * Log entries are self-validating: they carry the low bits of the
 * owning transaction's sequence number and a checksum, so no separate
 * persistent tail pointer (and no extra fence to maintain one) is
 * needed. Recovery scans from the start of the log area and stops at
 * the first entry that fails validation.
 */
#ifndef CNVM_RUNTIMES_DESCRIPTOR_H
#define CNVM_RUNTIMES_DESCRIPTOR_H

#include <cstdint>

namespace cnvm::rt {

constexpr size_t kMaxArgBytes = 3072;
constexpr size_t kMaxIntents = 256;

enum class TxStatus : uint64_t {
    idle = 0,
    ongoing = 1,     ///< uncommitted (roll back or re-execute)
    committing = 2,  ///< redo only: log complete, replay forward
};

/** One allocation action taken by the transaction. */
struct AllocIntent {
    uint64_t payloadOff;
    uint64_t payloadBytes;
    uint32_t isFree;
    uint32_t pad;
};

struct TxDescriptor {
    uint64_t status;      ///< TxStatus
    uint64_t txSeq;       ///< bumped at every begin (and re-execution)
    uint32_t fid;         ///< txfunc id (v_log)
    uint32_t argLen;      ///< v_log argument bytes
    /**
     * Checksum over (txSeq, fid, argLen, args). The status word is a
     * single atomic 8-byte write, but the rest of the begin record is
     * not: a crash can persist status=ongoing while tearing the
     * sequence number or the v_log payload, and recovery would then
     * validate *stale* log entries against an old sequence number or
     * re-execute a previous transaction's arguments. An ongoing slot
     * whose begin record fails this checksum is treated as never
     * begun — safe, because in-place stores only start after the
     * begin record's ordering fence.
     */
    uint64_t beginSum;
    uint8_t args[kMaxArgBytes];
    uint64_t intentSeq;   ///< txSeq the intent table belongs to
    uint32_t intentCount;
    uint32_t pad;
    /**
     * Checksum over (intentSeq, intentCount, table bytes). The header
     * words and the table can tear independently in a crash; recovery
     * must not trust a table whose checksum does not validate
     * (a stale or partially-persisted table would revert the wrong
     * blocks).
     */
    uint64_t intentSum;
    AllocIntent intents[kMaxIntents];
};

/**
 * Sentinel targetOff for log entries that carry bookkeeping payloads
 * (Atlas lock records, iDO register snapshots) rather than memory
 * images. Recovery must never write these back.
 */
constexpr uint64_t kMarkerOff = ~0ULL;

/** Header preceding each log entry's payload. */
struct LogEntryHeader {
    uint64_t targetOff;   ///< pool offset the payload belongs to
    uint32_t len;         ///< payload bytes (0 is invalid)
    uint32_t seqLo;       ///< low 32 bits of the owning txSeq
    uint64_t checksum;    ///< fnv1a over (targetOff, len, seqLo, data)
};

static_assert(sizeof(LogEntryHeader) == 24);

constexpr size_t
logAreaOffset()
{
    return (sizeof(TxDescriptor) + 63) / 64 * 64;
}

}  // namespace cnvm::rt

#endif  // CNVM_RUNTIMES_DESCRIPTOR_H
