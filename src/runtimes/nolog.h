/**
 * @file
 * No-log baseline: writes go straight to NVM with no logging and no
 * commit-time ordering. Not failure-atomic — it is the "No-log"
 * baseline of Figures 7, 11 and 12.
 */
#ifndef CNVM_RUNTIMES_NOLOG_H
#define CNVM_RUNTIMES_NOLOG_H

#include "runtimes/base.h"

namespace cnvm::rt {

class NoLogRuntime : public RuntimeBase {
 public:
    using RuntimeBase::RuntimeBase;

    const char* name() const override { return "nolog"; }
    txn::RuntimeKind kind() const override
    {
        return txn::RuntimeKind::noLog;
    }

    void txBegin(unsigned tid, txn::FuncId fid,
                 std::span<const uint8_t> args) override;
    void txCommit(unsigned tid) override;
    void store(unsigned tid, void* dst, const void* src,
               size_t n) override;
    void load(unsigned tid, void* dst, const void* src,
              size_t n) override;
    uint64_t alloc(unsigned tid, size_t n) override;
    void dealloc(unsigned tid, uint64_t payloadOff) override;
    txn::RecoveryReport recover() override;

    /**
     * Lazy recovery mirrors recover(): there is nothing per-slot to
     * heal (or any way to), so triage emits no entries — only the
     * heap's (incremental) rebuild remains pending. The generic
     * triage would classify descriptor media damage as healable,
     * which no-log deliberately never claims.
     */
    txn::RecoveryIndex recoveryTriage() override;
};

}  // namespace cnvm::rt

#endif  // CNVM_RUNTIMES_NOLOG_H
