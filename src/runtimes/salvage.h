/**
 * @file
 * Shared salvage machinery: checksum primitives, the media-aware log
 * scanner, the offline pool verifier, and the fault-region refiner.
 *
 * Crash tolerance and media tolerance need different scanners. The
 * ordinary recovery scan (pre-PR-5) stopped at the first invalid log
 * entry — correct for torn tails, which are always at the *end* of a
 * log, but fatal under media faults: one flipped bit mid-log silently
 * discarded every entry after it, and a poisoned line aborted the
 * process. scanLogArea() instead:
 *
 *  - guards every header and payload read (Pool::checkRead), so a
 *    poisoned line is an observation, not a machine check;
 *  - on any non-clean stop, *resyncs*: scans forward at 8-byte
 *    alignment for a valid entry of the same transaction (seqLo).
 *    Slot logs are append-only per transaction and seqLo changes
 *    every transaction, so a valid same-seq successor is proof the
 *    damage is mid-log corruption, not a torn tail;
 *  - treats a clean-looking stop (zero length / stale seq) on a
 *    *tainted* line as corruption too — the taint set stands in for
 *    the localization real platforms get from ECC telemetry.
 *
 * The protocols decide what a damaged scan means (see DESIGN.md §13):
 * undo truncates replay, redo aborts the roll-forward, clobber
 * restores what validated but refuses to re-execute.
 */
#ifndef CNVM_RUNTIMES_SALVAGE_H
#define CNVM_RUNTIMES_SALVAGE_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtimes/descriptor.h"

namespace cnvm::alloc {
class PmAllocator;
}
namespace cnvm::nvm {
class Pool;
}

namespace cnvm::rt {

/** A validated log entry surfaced during recovery. */
struct ScannedEntry {
    uint64_t targetOff;
    uint32_t len;
    const uint8_t* data;
};

namespace salvage {

/** @name Self-validation checksums (shared by append, scan, verify) */
/// @{
uint64_t entryChecksum(const LogEntryHeader& h, const uint8_t* data);
uint64_t beginChecksum(const TxDescriptor& d);
uint64_t intentChecksum(uint64_t seq, uint32_t count,
                        const AllocIntent* table);
/// @}

inline size_t
alignUp8(size_t n)
{
    return (n + 7) / 8 * 8;
}

/** What one scanLogArea() pass observed. */
struct ScanStats {
    uint64_t entries = 0;        ///< valid entries returned
    uint64_t payloadBytes = 0;
    uint64_t droppedEntries = 0; ///< corrupt stretches skipped
    uint64_t droppedBytes = 0;
    bool sawPoison = false;      ///< a guarded read raised a fault
    bool sawCorruption = false;  ///< proven mid-log damage
    bool tornTail = false;       ///< invalid tail, no valid successor
    size_t endPos = 0;           ///< scan position at termination

    /** The log cannot be trusted as a complete record. */
    bool
    damaged() const
    {
        return sawPoison || sawCorruption;
    }
};

/**
 * Scan one slot's log area for valid entries of transaction `seqLo`,
 * salvaging across damaged stretches (see file comment). `pool` may
 * be null (or have no fault model): reads are then unguarded and only
 * checksum validation applies.
 */
void scanLogArea(const nvm::Pool* pool, const uint8_t* area,
                 size_t cap, uint32_t seqLo,
                 std::vector<ScannedEntry>& out, ScanStats* stats);

/** Result of an offline pool walk (cnvm_inspect verify). */
struct VerifyResult {
    /** Integrity violations (checksum failures, bad offsets). */
    std::vector<std::string> problems;
    /** Benign observations (torn tails, live intent tables). */
    std::vector<std::string> notes;

    bool ok() const { return problems.empty(); }
};

/**
 * Walk an open pool read-only: header bounds, per-slot descriptor and
 * log checksums (via scanLogArea), allocator header, quarantine
 * table, and the block headers of allocated extents. Never mutates
 * the pool and never constructs a PmAllocator (which would format a
 * heap whose header is damaged — exactly what we want to report).
 */
VerifyResult verifyPool(nvm::Pool& pool);

}  // namespace salvage

/**
 * Refine the pool's coarse fault-region map with layouts only the
 * runtime layer knows: the descriptor/log split of every slot and the
 * allocator-metadata vs. user-data split of the heap. No-op when the
 * pool has no fault model.
 */
void defineFaultRegions(nvm::Pool& pool, const alloc::PmAllocator& heap);

}  // namespace cnvm::rt

#endif  // CNVM_RUNTIMES_SALVAGE_H
