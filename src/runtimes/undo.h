/**
 * @file
 * PMDK-model hybrid undo runtime.
 *
 * Reproduces libpmemobj v1.6's protocol shape: every first store to an
 * address range undo-logs the old value — entry write, flush, fence —
 * before the in-place update (reads need no interposition); allocation
 * uses redo-style intents; recovery rolls uncommitted transactions
 * back by replaying the undo log in reverse.
 */
#ifndef CNVM_RUNTIMES_UNDO_H
#define CNVM_RUNTIMES_UNDO_H

#include "runtimes/base.h"

namespace cnvm::rt {

class UndoRuntime : public RuntimeBase {
 public:
    using RuntimeBase::RuntimeBase;

    const char* name() const override { return "pmdk"; }
    txn::RuntimeKind kind() const override
    {
        return txn::RuntimeKind::undo;
    }

    void txBegin(unsigned tid, txn::FuncId fid,
                 std::span<const uint8_t> args) override;
    void txCommit(unsigned tid) override;
    void store(unsigned tid, void* dst, const void* src,
               size_t n) override;
    void load(unsigned tid, void* dst, const void* src,
              size_t n) override;
    txn::RecoveryReport recover() override;

 protected:
    /** Undo-log [dst, dst+n) if any of it is not yet logged. */
    void maybeUndoLog(unsigned tid, void* dst, size_t n);

    /** Roll back one slot (shared with AtlasRuntime::recover). */
    void rollbackSlot(unsigned tid);

    /** Interrupted transaction: replay the undo log in reverse. */
    void healOngoing(unsigned tid) override { rollbackSlot(tid); }
};

}  // namespace cnvm::rt

#endif  // CNVM_RUNTIMES_UNDO_H
