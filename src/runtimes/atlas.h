/**
 * @file
 * Atlas-model runtime.
 *
 * HP's Atlas infers failure-atomic sections (FASEs) from lock
 * operations, undo-logs every store, and — because its weak concurrency
 * requirements let FASEs overlap — tracks dependencies *between* FASEs
 * so a log pruner can later find a consistent cut. The paper attributes
 * Atlas's large slowdown to exactly this extra persistence traffic and
 * bookkeeping (Sections 5.1/5.2).
 *
 * This model reproduces those costs mechanically:
 *  - undo logging identical to the PMDK model;
 *  - a persisted lock-acquire record at FASE begin, a persisted
 *    lock-release record at FASE end, and one per inner lock event
 *    (each entry write + flush + fence);
 *  - a cross-FASE dependency record appended to a *global* persistent
 *    ring under a global lock (a real scalability bottleneck in the
 *    logical-time model);
 *  - a periodic log-pruner pass that scans the dependency ring.
 */
#ifndef CNVM_RUNTIMES_ATLAS_H
#define CNVM_RUNTIMES_ATLAS_H

#include "runtimes/undo.h"
#include "sim/lock.h"

namespace cnvm::rt {

class AtlasRuntime : public UndoRuntime {
 public:
    AtlasRuntime(nvm::Pool& pool, alloc::PmAllocator& heap);

    const char* name() const override { return "atlas"; }
    txn::RuntimeKind kind() const override
    {
        return txn::RuntimeKind::atlas;
    }

    void txBegin(unsigned tid, txn::FuncId fid,
                 std::span<const uint8_t> args) override;
    void txCommit(unsigned tid) override;
    void store(unsigned tid, void* dst, const void* src,
               size_t n) override;
    void onLock(unsigned tid) override;

 private:
    static constexpr size_t kDepRingBytes = 4096;
    static constexpr size_t kDepRecordBytes = 32;
    static constexpr uint64_t kPruneInterval = 64;

    /** Persist a lock acquire/release record in the thread's log. */
    void appendLockRecord(unsigned tid, uint64_t code);

    /** Append a record to the global dependency ring. */
    void appendDepRecord(unsigned tid);

    /** The periodic pruner: scan the ring for a consistent cut. */
    void pruneLogs();

    uint64_t depRingOff_ = 0;
    size_t depIndex_ = 0;
    sim::SimMutex depSimLock_;
    std::mutex depRealLock_;
    uint64_t commitsSincePrune_ = 0;
};

}  // namespace cnvm::rt

#endif  // CNVM_RUNTIMES_ATLAS_H
