/**
 * @file
 * Runtime factory: construct any of the comparison systems by kind.
 */
#ifndef CNVM_RUNTIMES_FACTORY_H
#define CNVM_RUNTIMES_FACTORY_H

#include <memory>
#include <string>
#include <vector>

#include "runtimes/clobber.h"
#include "txn/runtime.h"

namespace cnvm::rt {

/** Construct a runtime of the given kind over pool + heap. */
std::unique_ptr<txn::Runtime>
makeRuntime(txn::RuntimeKind kind, nvm::Pool& pool,
            alloc::PmAllocator& heap,
            ClobberPolicy policy = ClobberPolicy::refined);

/** Parse "clobber" / "pmdk" / "mnemosyne" / "atlas" / "nolog" / "ido". */
txn::RuntimeKind kindFromName(const std::string& name);

/** The systems compared in Figure 6 (in plot order). */
std::vector<txn::RuntimeKind> comparisonKinds();

}  // namespace cnvm::rt

#endif  // CNVM_RUNTIMES_FACTORY_H
