#include "runtimes/undo.h"

#include <cstring>

#include "common/error.h"
#include "stats/counters.h"

namespace cnvm::rt {

void
UndoRuntime::txBegin(unsigned tid, txn::FuncId fid,
                     std::span<const uint8_t> args)
{
    stageBegin(tid, fid, args, /* persistArgs */ false);
}

void
UndoRuntime::maybeUndoLog(unsigned tid, void* dst, size_t n)
{
    SlotState& s = slot(tid);
    auto [first, last] = blockRangeOf(dst, n);
    // storeRun invariant (undo): every block in the run is LOGGED, so
    // sequential overwrites of an already-logged range skip the probes.
    if (s.inStoreRun(first, last))
        return;
    bool needLog = false;
    for (uint64_t b = first; b <= last; b++) {
        uint8_t& st = s.blocks.ref(b);
        if (!(st & BlockMap::kLogged))
            needLog = true;
        st |= BlockMap::kLogged;
    }
    if (needLog) {
        // The undo image must be durable before the in-place write can
        // tear: per-entry fence required. (The zero/zerocached log
        // writers elide this fence and recovery compensates with a
        // declared salvage abort — see rollbackSlot.)
        appendLogEntry(tid, pool_.offsetOf(dst), dst,
                       static_cast<uint32_t>(n), LogFence::required);
        stats::bump(stats::Counter::undoEntries);
        stats::bump(stats::Counter::undoBytes, n);
    }
    s.noteStoreRun(first, last);
}

void
UndoRuntime::store(unsigned tid, void* dst, const void* src, size_t n)
{
    if (n == 0)
        return;
    ensureBegun(tid);
    maybeUndoLog(tid, dst, n);
    writeDirty(tid, dst, src, n);
}

void
UndoRuntime::load(unsigned, void* dst, const void* src, size_t n)
{
    std::memcpy(dst, src, n);
}

void
UndoRuntime::txCommit(unsigned tid)
{
    SlotState& s = slot(tid);
    CNVM_CHECK(s.inTx, "commit outside transaction");
    if (!s.begunPersist) {
        // Read-only transaction: nothing durable happened.
        s.inTx = false;
        stats::bump(stats::Counter::txCommits);
        return;
    }
    // Staged log bytes (zerocached writer) must be on media and
    // flushed before the data fence below: once any in-place write is
    // durable while the slot is still ongoing, recovery depends on
    // the full undo log being there. The commit fence retires the
    // seal's flushes together with the write-back.
    sealLog(tid);
    persistIntentsAndAllocs(tid);
    flushDirty(tid);
    pool_.fence();
    persistIdle(tid);
    finishIntentsAfterCommit(tid);
    s.inTx = false;
}

void
UndoRuntime::rollbackSlot(unsigned tid)
{
    salvage::ScanStats st;
    const auto& entries = scanLog(tid, &st);
    uint64_t applied = 0;
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        if (it->targetOff == kMarkerOff)
            continue;  // bookkeeping record, not a memory image
        pool_.writeAt(it->targetOff, it->data, it->len);
        pool_.flush(pool_.at(it->targetOff), it->len);
        applied++;
    }
    pool_.fence();
    recoverIntents(tid, /* committed */ false);
    txn::SlotRecovery sr;
    sr.tid = tid;
    sr.entriesApplied = applied;
    sr.entriesDropped = st.droppedEntries;
    if (st.damaged() || logWriterElides()) {
        // Some pre-images were unrecoverable — or an eliding log
        // writer was active, in which case an in-place write can have
        // outlived its (unfenced) undo entry and the log's clean end
        // proves nothing: a fully-torn trailing entry is
        // indistinguishable from one never appended. Either way the
        // roll-back restored every value that still validated, but a
        // full revert cannot be promised. Abandon the transaction,
        // visibly.
        salvageResetSlot(tid);
        sr.action = txn::SlotAction::salvageAborted;
        if (st.damaged()) {
            sr.note = st.sawPoison ? "undo log poisoned"
                                   : "undo log corrupted mid-log";
        } else {
            sr.note = "zero-fence log writer: roll-back is "
                      "best-effort";
        }
    } else {
        persistIdle(tid);
        sr.action = txn::SlotAction::rolledBack;
        stats::bump(stats::Counter::recoveries);
    }
    recordSlot(std::move(sr));
}

txn::RecoveryReport
UndoRuntime::recover()
{
    // Stop-the-world recovery is the lazy path's heal loop run to
    // completion inline: the same healOneSlot dispatch (vet the
    // descriptor, roll ongoing slots back, finish idle slots' intent
    // tables) over every slot, then the full heap rebuild.
    RecoverySession session(*this);
    for (unsigned tid = 0; tid < pool_.maxThreads(); tid++) {
        healOneSlot(tid, txn::SlotClass::clean);
        resetVolatileSlot(tid);
    }
    rebuildHeap();
    return session.take();
}

}  // namespace cnvm::rt
