#include "runtimes/undo.h"

#include <cstring>

#include "common/error.h"
#include "stats/counters.h"

namespace cnvm::rt {

void
UndoRuntime::txBegin(unsigned tid, txn::FuncId fid,
                     std::span<const uint8_t> args)
{
    stageBegin(tid, fid, args, /* persistArgs */ false);
}

void
UndoRuntime::maybeUndoLog(unsigned tid, void* dst, size_t n)
{
    SlotState& s = slot(tid);
    auto [first, last] = blockRangeOf(dst, n);
    // storeRun invariant (undo): every block in the run is LOGGED, so
    // sequential overwrites of an already-logged range skip the probes.
    if (s.inStoreRun(first, last))
        return;
    bool needLog = false;
    for (uint64_t b = first; b <= last; b++) {
        uint8_t& st = s.blocks.ref(b);
        if (!(st & BlockMap::kLogged))
            needLog = true;
        st |= BlockMap::kLogged;
    }
    if (needLog) {
        // The undo image must be durable before the in-place write can
        // tear: per-entry fence required.
        appendLogEntry(tid, pool_.offsetOf(dst), dst,
                       static_cast<uint32_t>(n), LogFence::required);
        stats::bump(stats::Counter::undoEntries);
        stats::bump(stats::Counter::undoBytes, n);
    }
    s.noteStoreRun(first, last);
}

void
UndoRuntime::store(unsigned tid, void* dst, const void* src, size_t n)
{
    if (n == 0)
        return;
    ensureBegun(tid);
    maybeUndoLog(tid, dst, n);
    writeDirty(tid, dst, src, n);
}

void
UndoRuntime::load(unsigned, void* dst, const void* src, size_t n)
{
    std::memcpy(dst, src, n);
}

void
UndoRuntime::txCommit(unsigned tid)
{
    SlotState& s = slot(tid);
    CNVM_CHECK(s.inTx, "commit outside transaction");
    if (!s.begunPersist) {
        // Read-only transaction: nothing durable happened.
        s.inTx = false;
        stats::bump(stats::Counter::txCommits);
        return;
    }
    persistIntentsAndAllocs(tid);
    flushDirty(tid);
    pool_.fence();
    persistIdle(tid);
    finishIntentsAfterCommit(tid);
    s.inTx = false;
}

void
UndoRuntime::rollbackSlot(unsigned tid)
{
    salvage::ScanStats st;
    const auto& entries = scanLog(tid, &st);
    uint64_t applied = 0;
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        if (it->targetOff == kMarkerOff)
            continue;  // bookkeeping record, not a memory image
        pool_.writeAt(it->targetOff, it->data, it->len);
        pool_.flush(pool_.at(it->targetOff), it->len);
        applied++;
    }
    pool_.fence();
    recoverIntents(tid, /* committed */ false);
    txn::SlotRecovery sr;
    sr.tid = tid;
    sr.entriesApplied = applied;
    sr.entriesDropped = st.droppedEntries;
    if (st.damaged()) {
        // Some pre-images were unrecoverable: the roll-back restored
        // every value that still validated, but the transaction's
        // footprint cannot be fully reverted. Abandon it, visibly.
        salvageResetSlot(tid);
        sr.action = txn::SlotAction::salvageAborted;
        sr.note = st.sawPoison ? "undo log poisoned"
                               : "undo log corrupted mid-log";
    } else {
        persistIdle(tid);
        sr.action = txn::SlotAction::rolledBack;
        stats::bump(stats::Counter::recoveries);
    }
    recordSlot(std::move(sr));
}

txn::RecoveryReport
UndoRuntime::recover()
{
    RecoverySession session(*this);
    for (unsigned tid = 0; tid < pool_.maxThreads(); tid++) {
        if (!slotRecoverable(tid)) {
            slot(tid) = SlotState{};
            continue;
        }
        if (isOngoing(tid)) {
            rollbackSlot(tid);
        } else {
            // Crashed between the commit point and free completion
            // (live table), or the table itself went bad.
            recoverIdleIntents(tid, /* committed */ true);
        }
        slot(tid) = SlotState{};
    }
    rebuildHeap();
    return session.take();
}

}  // namespace cnvm::rt
