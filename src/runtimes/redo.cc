#include "runtimes/redo.h"

#include <cstring>

#include "common/error.h"
#include "sim/context.h"
#include "stats/simtime.h"
#include "stats/counters.h"

namespace cnvm::rt {

RedoRuntime::RedoRuntime(nvm::Pool& pool, alloc::PmAllocator& heap)
    : RuntimeBase(pool, heap), writeMaps_(pool.maxThreads())
{
}

void
RedoRuntime::txBegin(unsigned tid, txn::FuncId,
                     std::span<const uint8_t> args)
{
    SlotState& s = slot(tid);
    CNVM_CHECK(!s.inTx, "nested transactions are not supported");
    s.inTx = true;
    s.resetTx();
    // Redo needs no begin record: mark the slot begun so the shared
    // alloc path's ensureBegun() does not persist one (that would
    // bump txSeq mid-transaction and invalidate earlier log entries).
    s.begunPersist = true;
    s.volatileArgs.assign(args.begin(), args.end());
    writeMaps_[tid].clear();
    // Bump the sequence number. The flush is drained by the next fence
    // we issue (intent table or commit record), which is early enough:
    // the sequence only matters once something of this transaction is
    // durable.
    TxDescriptor& d = desc(tid);
    uint64_t seq = d.txSeq + 1;
    pool_.write(&d.txSeq, &seq, sizeof(seq));
    pool_.flush(&d.txSeq, sizeof(seq));
    stats::bump(stats::Counter::txBegins);
}

uint64_t
RedoRuntime::effectiveWord(unsigned tid, uint64_t wordOff) const
{
    auto it = writeMaps_[tid].find(wordOff);
    if (it != writeMaps_[tid].end())
        return it->second;
    uint64_t v;
    std::memcpy(&v, pool_.base() + wordOff * kBlock, sizeof(v));
    return v;
}

void
RedoRuntime::store(unsigned tid, void* dst, const void* src, size_t n)
{
    if (n == 0)
        return;
    // Append the redo entry (flushed, not fenced): nothing acts on it
    // until the commit record, and the commit path's drain fence
    // retires every pending entry at once.
    appendLogEntry(tid, pool_.offsetOf(dst), src,
                   static_cast<uint32_t>(n), LogFence::deferred);
    stats::bump(stats::Counter::redoEntries);
    stats::bump(stats::Counter::redoBytes, n);

    // Fold the store into the word-granular write set.
    auto& map = writeMaps_[tid];
    uint64_t off = pool_.offsetOf(dst);
    uint64_t firstWord = off / kBlock;
    uint64_t lastWord = (off + n - 1) / kBlock;
    const auto* sp = static_cast<const uint8_t*>(src);
    for (uint64_t w = firstWord; w <= lastWord; w++) {
        uint64_t v = effectiveWord(tid, w);
        auto* vb = reinterpret_cast<uint8_t*>(&v);
        uint64_t wordBase = w * kBlock;
        for (unsigned b = 0; b < kBlock; b++) {
            uint64_t addr = wordBase + b;
            if (addr >= off && addr < off + n)
                vb[b] = sp[addr - off];
        }
        map[w] = v;
    }
}

void
RedoRuntime::initZero(unsigned tid, void* dst, size_t n)
{
    // Zeroing must reach the write set: the home location holds
    // arbitrary old bytes until commit write-back / replay.
    static constexpr size_t kChunk = 512;
    uint8_t zeros[kChunk] = {};
    auto* p = static_cast<uint8_t*>(dst);
    for (size_t i = 0; i < n; i += kChunk)
        store(tid, p + i, zeros, std::min(kChunk, n - i));
}

void
RedoRuntime::load(unsigned tid, void* dst, const void* src, size_t n)
{
    if (n == 0)
        return;
    // Every transactional read pays the write-set redirection latency
    // (modeled: the interposition itself is too cheap under the
    // compute-scale calibration to represent Mnemosyne's STM read
    // barrier).
    if (auto* c = sim::cur()) {
        if (slot(tid).inTx)
            c->advance(stats::persistParams().redoReadNs);
    }
    auto& map = writeMaps_[tid];
    if (map.empty()) {
        std::memcpy(dst, src, n);
        return;
    }
    uint64_t off = pool_.offsetOf(src);
    uint64_t firstWord = off / kBlock;
    uint64_t lastWord = (off + n - 1) / kBlock;
    auto* dp = static_cast<uint8_t*>(dst);
    for (uint64_t w = firstWord; w <= lastWord; w++) {
        uint64_t v = effectiveWord(tid, w);
        const auto* vb = reinterpret_cast<const uint8_t*>(&v);
        uint64_t wordBase = w * kBlock;
        for (unsigned b = 0; b < kBlock; b++) {
            uint64_t addr = wordBase + b;
            if (addr >= off && addr < off + n)
                dp[addr - off] = vb[b];
        }
    }
}

void
RedoRuntime::txCommit(unsigned tid)
{
    SlotState& s = slot(tid);
    CNVM_CHECK(s.inTx, "commit outside transaction");
    auto& map = writeMaps_[tid];
    TxDescriptor& d = desc(tid);
    if (map.empty() && s.actions.empty()) {
        // Read-only transaction: nothing persistent to do.
        s.inTx = false;
        stats::bump(stats::Counter::txCommits);
        return;
    }
    // 1. Drain the lazy log flushes (writing out anything the
    //    zerocached writer still stages first — the commit record
    //    must never become durable ahead of a log entry).
    sealLog(tid);
    pool_.fence();
    // 2. Persist the intent table, apply alloc bits.
    persistIntentsAndAllocs(tid);
    // 3. Commit record.
    auto status = static_cast<uint64_t>(TxStatus::committing);
    pool_.write(&d.status, &status, sizeof(status));
    pool_.persist(&d.status, sizeof(status));
    // 4. Write back the buffered words to their home locations.
    for (const auto& [w, v] : map) {
        writeDirty(tid, pool_.base() + w * kBlock, &v, sizeof(v));
    }
    flushDirty(tid);
    pool_.fence();
    // 5. Complete frees, then mark idle.
    finishIntentsAfterCommit(tid);
    persistIdle(tid);
    map.clear();
    s.inTx = false;
}

void
RedoRuntime::txAbort(unsigned tid)
{
    SlotState& s = slot(tid);
    if (!s.inTx)
        return;
    // Nothing was written in place and no commit record exists:
    // dropping the volatile write set is the whole abort. The log
    // entries already appended go stale at the next begin's sequence
    // bump (and recovery ignores them — the slot's status is idle).
    writeMaps_[tid].clear();
    for (const auto& [off, isFree] : s.actions) {
        if (!isFree)
            heap_.releaseReservation(off);
    }
    s.inTx = false;
    s.resetTx();
}

void
RedoRuntime::resetVolatileSlot(unsigned tid)
{
    RuntimeBase::resetVolatileSlot(tid);
    writeMaps_[tid].clear();
}

void
RedoRuntime::skipSeq(unsigned tid)
{
    TxDescriptor& d = desc(tid);
    uint64_t seq = d.txSeq + 16;
    pool_.write(&d.txSeq, &seq, sizeof(seq));
    pool_.flush(&d.txSeq, sizeof(seq));
}

void
RedoRuntime::triageSlot(unsigned tid, txn::SlotClass cls)
{
    // Pending slots skip inside their heal instead: the skip must not
    // invalidate the very log entries the heal still has to replay.
    if (cls == txn::SlotClass::clean)
        skipSeq(tid);
}

void
RedoRuntime::triageFinish()
{
    pool_.fence();
}

void
RedoRuntime::healOneSlot(unsigned tid, txn::SlotClass cls)
{
    RuntimeBase::healOneSlot(tid, cls);
    // Protect the healed slot's sequence before it can be re-admitted
    // (idempotent: healing twice just skips twice).
    skipSeq(tid);
    pool_.fence();
}

void
RedoRuntime::healCommitting(unsigned tid)
{
    // Roll forward: replay the log in order, finish intents. Every
    // entry was flushed and drained by the commit-path fence *before*
    // the commit record, so in this state an incomplete scan — damage
    // or even a clean-looking torn tail — can only mean media
    // corruption, and a partial replay would expose a half-applied
    // transaction.
    salvage::ScanStats st;
    const auto& entries = scanLog(tid, &st);
    txn::SlotRecovery sr;
    sr.tid = tid;
    sr.entriesDropped = st.droppedEntries;
    if (st.damaged() || st.tornTail) {
        recoverIntents(tid, /* committed */ false);
        salvageResetSlot(tid);
        sr.action = txn::SlotAction::salvageAborted;
        sr.note = "committed transaction lost: redo log " +
                  std::string(st.sawPoison ? "poisoned" : "corrupted");
    } else {
        for (const auto& e : entries) {
            if (e.targetOff == kMarkerOff)
                continue;
            pool_.writeAt(e.targetOff, e.data, e.len);
            pool_.flush(pool_.at(e.targetOff), e.len);
            sr.entriesApplied++;
        }
        pool_.fence();
        reapplyAllocIntents(tid);
        recoverIntents(tid, /* committed */ true);
        persistIdle(tid);
        sr.action = txn::SlotAction::rolledForward;
        stats::bump(stats::Counter::recoveries);
    }
    recordSlot(std::move(sr));
}

txn::RecoveryReport
RedoRuntime::recover()
{
    // The lazy path's heal loop run to completion inline. healOneSlot
    // fences each slot's sequence skip individually where the old
    // monolithic pass batched them behind one fence — a few extra
    // recovery-time fences buy one shared code path.
    RecoverySession session(*this);
    for (unsigned tid = 0; tid < pool_.maxThreads(); tid++) {
        healOneSlot(tid, txn::SlotClass::clean);
        resetVolatileSlot(tid);
    }
    rebuildHeap();
    return session.take();
}

}  // namespace cnvm::rt
