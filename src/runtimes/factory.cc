#include "runtimes/factory.h"

#include "common/error.h"
#include "runtimes/atlas.h"
#include "runtimes/ido.h"
#include "runtimes/nolog.h"
#include "runtimes/redo.h"
#include "runtimes/undo.h"

namespace cnvm::rt {

std::unique_ptr<txn::Runtime>
makeRuntime(txn::RuntimeKind kind, nvm::Pool& pool,
            alloc::PmAllocator& heap, ClobberPolicy policy)
{
    switch (kind) {
      case txn::RuntimeKind::noLog:
        return std::make_unique<NoLogRuntime>(pool, heap);
      case txn::RuntimeKind::undo:
        return std::make_unique<UndoRuntime>(pool, heap);
      case txn::RuntimeKind::redo:
        return std::make_unique<RedoRuntime>(pool, heap);
      case txn::RuntimeKind::clobber:
        return std::make_unique<ClobberRuntime>(pool, heap, policy);
      case txn::RuntimeKind::atlas:
        return std::make_unique<AtlasRuntime>(pool, heap);
      case txn::RuntimeKind::ido:
        return std::make_unique<IdoRuntime>(pool, heap);
    }
    panic("unknown runtime kind");
}

txn::RuntimeKind
kindFromName(const std::string& name)
{
    if (name == "nolog")
        return txn::RuntimeKind::noLog;
    if (name == "pmdk" || name == "undo")
        return txn::RuntimeKind::undo;
    if (name == "mnemosyne" || name == "redo")
        return txn::RuntimeKind::redo;
    if (name == "clobber")
        return txn::RuntimeKind::clobber;
    if (name == "atlas")
        return txn::RuntimeKind::atlas;
    if (name == "ido")
        return txn::RuntimeKind::ido;
    fatal("unknown runtime name: " + name);
}

std::vector<txn::RuntimeKind>
comparisonKinds()
{
    return {txn::RuntimeKind::clobber, txn::RuntimeKind::undo,
            txn::RuntimeKind::redo, txn::RuntimeKind::atlas};
}

}  // namespace cnvm::rt
