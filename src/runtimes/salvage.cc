#include "runtimes/salvage.h"

#include <cstring>

#include "alloc/pm_allocator.h"
#include "common/error.h"
#include "common/rand.h"
#include "nvm/fault_model.h"
#include "nvm/pool.h"

namespace cnvm::rt::salvage {

uint64_t
entryChecksum(const LogEntryHeader& h, const uint8_t* data)
{
    uint64_t sum = fnv1a(&h.targetOff, sizeof(h.targetOff));
    sum ^= fnv1a(&h.len, sizeof(h.len));
    sum ^= fnv1a(&h.seqLo, sizeof(h.seqLo));
    sum ^= fnv1a(data, h.len);
    // A zero checksum would look like freshly-zeroed media.
    return sum == 0 ? 1 : sum;
}

uint64_t
beginChecksum(const TxDescriptor& d)
{
    uint64_t sum = fnv1a(&d.txSeq, sizeof(d.txSeq));
    sum ^= fnv1a(&d.fid, sizeof(d.fid));
    sum ^= fnv1a(&d.argLen, sizeof(d.argLen));
    if (d.argLen > 0 && d.argLen <= kMaxArgBytes)
        sum ^= fnv1a(d.args, d.argLen);
    return sum == 0 ? 1 : sum;
}

uint64_t
intentChecksum(uint64_t seq, uint32_t count, const AllocIntent* table)
{
    uint64_t sum = fnv1a(&seq, sizeof(seq));
    sum ^= fnv1a(&count, sizeof(count));
    sum ^= fnv1a(table, count * sizeof(AllocIntent));
    return sum == 0 ? 1 : sum;
}

namespace {

constexpr size_t kNoPos = ~size_t{0};

/** Guarded read probe: false if [p, p+n) is poisoned. */
bool
readable(const nvm::Pool* pool, const void* p, size_t n)
{
    if (pool == nullptr)
        return true;
    try {
        pool->checkRead(p, n);
    } catch (const nvm::MediaFaultError&) {
        return false;
    }
    return true;
}

/**
 * Find the next fully-valid entry of `seqLo` at 8-byte alignment in
 * (from, cap). Because seqLo changes every transaction and a slot's
 * log is append-only within one, a hit proves the stretch between
 * `from` and the hit is mid-log damage rather than a torn tail.
 */
size_t
resync(const nvm::Pool* pool, const uint8_t* area, size_t cap,
       uint32_t seqLo, size_t from)
{
    for (size_t pos = from + 8; pos + sizeof(LogEntryHeader) <= cap;
         pos += 8) {
        if (!readable(pool, area + pos, sizeof(LogEntryHeader)))
            continue;
        LogEntryHeader h;
        std::memcpy(&h, area + pos, sizeof(h));
        if (h.len == 0 || h.seqLo != seqLo)
            continue;
        size_t need = sizeof(LogEntryHeader) + alignUp8(h.len);
        if (pos + need > cap)
            continue;
        const uint8_t* data = area + pos + sizeof(LogEntryHeader);
        if (!readable(pool, data, h.len))
            continue;
        if (entryChecksum(h, data) == h.checksum)
            return pos;
    }
    return kNoPos;
}

}  // namespace

void
scanLogArea(const nvm::Pool* pool, const uint8_t* area, size_t cap,
            uint32_t seqLo, std::vector<ScannedEntry>& out,
            ScanStats* stats)
{
    out.clear();
    ScanStats st;
    if (pool != nullptr && pool->faults() == nullptr)
        pool = nullptr;  // no model: skip the guarded-read machinery
    size_t pos = 0;
    auto skipTo = [&](size_t from, bool poison) {
        if (poison)
            st.sawPoison = true;
        size_t nxt = resync(pool, area, cap, seqLo, from);
        if (nxt == kNoPos) {
            // No valid successor. Poison and taint are media damage
            // regardless; an ordinary checksum failure with a clean
            // line is the familiar torn tail.
            if (!poison) {
                if (pool != nullptr &&
                    pool->isTainted(area + from,
                                    sizeof(LogEntryHeader))) {
                    st.sawCorruption = true;
                } else {
                    st.tornTail = true;
                }
            }
            return false;
        }
        st.sawCorruption = true;
        st.droppedEntries++;
        st.droppedBytes += nxt - from;
        pos = nxt;
        return true;
    };
    while (pos + sizeof(LogEntryHeader) <= cap) {
        if (!readable(pool, area + pos, sizeof(LogEntryHeader))) {
            if (!skipTo(pos, /* poison */ true))
                break;
            continue;
        }
        LogEntryHeader h;
        std::memcpy(&h, area + pos, sizeof(h));
        if (h.len == 0 || h.seqLo != seqLo) {
            // Clean-looking stop. On a tainted line it may be a flip
            // that zeroed the length or mangled the sequence — treat
            // as damage and try to carry on past it.
            if (pool != nullptr &&
                pool->isTainted(area + pos, sizeof(LogEntryHeader))) {
                st.sawCorruption = true;
                if (skipTo(pos, false))
                    continue;
            }
            break;
        }
        size_t need = sizeof(LogEntryHeader) + alignUp8(h.len);
        if (pos + need > cap) {
            // Insane length: cannot be a real append (appendLogEntry
            // bounds-checks), so this is damage, not a tail.
            st.sawCorruption = true;
            if (!skipTo(pos, false))
                break;
            continue;
        }
        const uint8_t* data = area + pos + sizeof(LogEntryHeader);
        if (!readable(pool, data, h.len)) {
            // Valid header, poisoned payload: drop just this entry.
            st.sawPoison = true;
            st.droppedEntries++;
            st.droppedBytes += need;
            pos += need;
            continue;
        }
        if (entryChecksum(h, data) != h.checksum) {
            if (!skipTo(pos, false))
                break;
            continue;
        }
        out.push_back(ScannedEntry{h.targetOff, h.len, data});
        st.entries++;
        st.payloadBytes += h.len;
        pos += need;
    }
    st.endPos = pos;
    if (stats != nullptr)
        *stats = st;
}

VerifyResult
verifyPool(nvm::Pool& pool)
{
    VerifyResult r;
    auto problem = [&](std::string s) { r.problems.push_back(std::move(s)); };
    auto note = [&](std::string s) { r.notes.push_back(std::move(s)); };

    const nvm::PoolHeader& h = pool.header();
    uint64_t slotsEnd =
        h.metaOff + static_cast<uint64_t>(h.maxThreads) * h.slotBytes;
    if (h.metaOff < sizeof(nvm::PoolHeader) || slotsEnd > h.heapOff ||
        h.heapOff + h.heapSize > h.size) {
        problem("pool header: slot/heap offsets are inconsistent");
        return r;  // nothing below can be trusted
    }
    if (h.slotBytes < logAreaOffset())
        problem(strprintf("pool header: slotBytes %llu smaller than "
                          "the %zu-byte descriptor",
                          static_cast<unsigned long long>(h.slotBytes),
                          logAreaOffset()));

    // Per-slot descriptors and logs.
    for (unsigned tid = 0; tid < h.maxThreads; tid++) {
        const auto* d = static_cast<const TxDescriptor*>(pool.slot(tid));
        if (!readable(&pool, d, sizeof(TxDescriptor))) {
            problem(strprintf("slot %u: descriptor is poisoned", tid));
            continue;
        }
        if (d->status > static_cast<uint64_t>(TxStatus::committing)) {
            problem(strprintf("slot %u: unknown status %llu", tid,
                              static_cast<unsigned long long>(
                                  d->status)));
            continue;
        }
        bool ongoing =
            d->status != static_cast<uint64_t>(TxStatus::idle);
        if (ongoing) {
            if (d->argLen > kMaxArgBytes) {
                problem(strprintf("slot %u: argLen %u out of range",
                                  tid, d->argLen));
            } else if (beginChecksum(*d) != d->beginSum) {
                note(strprintf("slot %u: begin record fails its "
                               "checksum (torn begin)",
                               tid));
            }
        }
        if (d->intentCount != 0) {
            if (d->intentCount > kMaxIntents) {
                problem(strprintf("slot %u: intent count %u out of "
                                  "range",
                                  tid, d->intentCount));
            } else if (d->intentSeq == d->txSeq &&
                       intentChecksum(d->intentSeq, d->intentCount,
                                      d->intents) != d->intentSum) {
                problem(strprintf("slot %u: live-looking intent table "
                                  "fails its checksum",
                                  tid));
            } else {
                note(strprintf("slot %u: %u live alloc intents", tid,
                               d->intentCount));
            }
        }
        const uint8_t* area =
            static_cast<const uint8_t*>(pool.slot(tid)) +
            logAreaOffset();
        size_t cap = h.slotBytes - logAreaOffset();
        std::vector<ScannedEntry> entries;
        ScanStats st;
        scanLogArea(&pool, area, cap,
                    static_cast<uint32_t>(d->txSeq), entries, &st);
        if (st.damaged()) {
            problem(strprintf(
                "slot %u: log damaged (%llu entries salvaged, %llu "
                "dropped, poison=%d)",
                tid, static_cast<unsigned long long>(st.entries),
                static_cast<unsigned long long>(st.droppedEntries),
                st.sawPoison ? 1 : 0));
        } else if (ongoing && st.entries > 0) {
            note(strprintf("slot %u: %llu valid log entries "
                           "(interrupted transaction)",
                           tid,
                           static_cast<unsigned long long>(
                               st.entries)));
        }
    }

    // Allocator metadata: parse raw, never via PmAllocator (whose
    // constructor would *format* a heap with a damaged magic).
    const auto* ah = static_cast<const alloc::AllocHeader*>(
        pool.at(h.heapOff));
    if (!readable(&pool, ah, sizeof(*ah))) {
        problem("heap: allocator header is poisoned");
        return r;
    }
    if (ah->magic != alloc::PmAllocator::kMagic) {
        note("heap: not formatted (no allocator magic)");
        return r;
    }
    uint64_t heapEnd = h.heapOff + h.heapSize;
    if (ah->bitmapOff < h.heapOff || ah->bitmapOff >= heapEnd ||
        ah->bitmapOff + ah->bitmapBytes > heapEnd ||
        ah->dataOff < h.heapOff || ah->dataOff + ah->dataBytes > heapEnd ||
        ah->quarOff < h.heapOff || ah->quarOff >= heapEnd) {
        problem("heap: allocator header offsets out of bounds");
        return r;
    }
    const auto* qt = static_cast<const alloc::QuarantineTable*>(
        pool.at(ah->quarOff));
    if (!readable(&pool, qt, sizeof(*qt))) {
        problem("heap: quarantine table is poisoned");
    } else if (qt->count > alloc::QuarantineTable::kCapacity ||
               alloc::quarantineChecksum(qt->count, qt->entries) !=
                   qt->checksum) {
        problem("heap: quarantine table fails its checksum");
    } else if (qt->count > 0) {
        note(strprintf("heap: %u quarantined ranges", qt->count));
    }

    // Walk allocated bitmap runs and validate each run's leading
    // block header. A run that starts inside a quarantined range is
    // exempt: its header is exactly what went bad.
    auto quarantined = [&](uint64_t off) {
        if (qt->count > alloc::QuarantineTable::kCapacity)
            return false;
        for (uint32_t i = 0; i < qt->count; i++) {
            const alloc::QuarantineEntry& e = qt->entries[i];
            if (off >= e.off && off < e.off + e.bytes)
                return true;
        }
        return false;
    };
    const auto* bitmap =
        static_cast<const uint8_t*>(pool.at(ah->bitmapOff));
    uint64_t nGranules = ah->dataBytes / alloc::kGranule;
    bool inRun = false;
    uint64_t badHeaders = 0;
    for (uint64_t i = 0; i <= nGranules; i++) {
        bool allocated = false;
        if (i < nGranules &&
            readable(&pool, bitmap + i / 8, 1)) {
            allocated = (bitmap[i / 8] & (1u << (i % 8))) != 0;
        }
        if (allocated && !inRun) {
            inRun = true;
            uint64_t bOff = ah->dataOff + i * alloc::kGranule;
            if (!quarantined(bOff)) {
                const auto* bh =
                    static_cast<const alloc::BlockHeader*>(
                        pool.at(bOff));
                if (!readable(&pool, bh, sizeof(*bh)) ||
                    (bh->payloadBytes ^
                     alloc::PmAllocator::kBlockMagic) != bh->check) {
                    badHeaders++;
                }
            }
        } else if (!allocated) {
            inRun = false;
        }
    }
    if (badHeaders > 0)
        problem(strprintf("heap: %llu allocated runs with corrupt or "
                          "poisoned block headers",
                          static_cast<unsigned long long>(badHeaders)));
    return r;
}

}  // namespace cnvm::rt::salvage

namespace cnvm::rt {

void
defineFaultRegions(nvm::Pool& pool, const alloc::PmAllocator& heap)
{
    nvm::FaultModel* fm = pool.faults();
    if (fm == nullptr)
        return;
    const nvm::PoolHeader& h = pool.header();
    fm->clearRegions();
    fm->addRegion(nvm::kFaultHeader, 0, h.metaOff);
    for (unsigned tid = 0; tid < h.maxThreads; tid++) {
        uint64_t base = h.metaOff + tid * h.slotBytes;
        fm->addRegion(nvm::kFaultDesc, base, base + logAreaOffset());
        fm->addRegion(nvm::kFaultLog, base + logAreaOffset(),
                      base + h.slotBytes);
    }
    fm->addRegion(nvm::kFaultAllocMeta, h.heapOff, heap.dataOff());
    fm->addRegion(nvm::kFaultHeap, heap.dataOff(),
                  heap.dataOff() + heap.dataBytes());
}

}  // namespace cnvm::rt
