/**
 * @file
 * Clobber-NVM: the paper's runtime.
 *
 * Logging strategy (Section 3): undo-log *only* transaction inputs that
 * the transaction itself overwrites ("clobber writes"), persist the
 * transaction's volatile inputs (function id + argument blob) in a
 * v_log at begin, and recover interrupted transactions by restoring the
 * clobbered inputs and re-executing the txfunc from its start.
 *
 * Clobber detection here is the dynamic equivalent of the compiler
 * pass: per-transaction read/write sets at 8-byte granularity. A store
 * clobbers an input iff it targets a block that was read before being
 * written in this transaction. Two policies model the paper's
 * Section 5.9 comparison:
 *
 *  - refined:      log iff block ∈ readSet ∧ block ∉ writeSet — the
 *                  post-refinement pass (no redundant logging of
 *                  already-clobbered inputs, e.g. later loop
 *                  iterations);
 *  - conservative: log iff block ∈ readSet — every execution of a
 *                  candidate clobber-write site logs, as the
 *                  unrefined conservative pass would instrument.
 */
#ifndef CNVM_RUNTIMES_CLOBBER_H
#define CNVM_RUNTIMES_CLOBBER_H

#include "runtimes/base.h"

namespace cnvm::rt {

enum class ClobberPolicy {
    refined,
    conservative,
};

class ClobberRuntime : public RuntimeBase {
 public:
    ClobberRuntime(nvm::Pool& pool, alloc::PmAllocator& heap,
                   ClobberPolicy policy = ClobberPolicy::refined)
        : RuntimeBase(pool, heap), policy_(policy) {}

    const char* name() const override
    {
        return policy_ == ClobberPolicy::refined ? "clobber"
                                                 : "clobber-cons";
    }
    txn::RuntimeKind kind() const override
    {
        return txn::RuntimeKind::clobber;
    }

    void txBegin(unsigned tid, txn::FuncId fid,
                 std::span<const uint8_t> args) override;
    void txCommit(unsigned tid) override;
    void store(unsigned tid, void* dst, const void* src,
               size_t n) override;
    void load(unsigned tid, void* dst, const void* src,
              size_t n) override;
    txn::RecoveryReport recover() override;
    bool recovering() const override { return recovering_; }

    ClobberPolicy policy() const { return policy_; }

    /**
     * Knobs for the Figure 7 breakdown: selectively disable the v_log
     * or the clobber_log (the resulting runtime is not failure-atomic;
     * measurement only).
     */
    void setVlogEnabled(bool on) { vlogEnabled_ = on; }
    void setClobberLogEnabled(bool on) { clobberLogEnabled_ = on; }

 protected:
    /**
     * Append the widened block-aligned clobber entry for a store to
     * [dst, dst+n) and bump the logging counters (no-op when the
     * clobber_log is disabled). Shared with the iDO runtime's store
     * path.
     */
    void appendClobberEntry(unsigned tid, void* dst, size_t n);

    /**
     * Interrupted transaction: restore its clobbered inputs, then —
     * unless the log was damaged or an eliding writer was active —
     * re-execute the txfunc to completion on the calling thread.
     * Unlike the two-phase recover() there is no separate heap
     * rebuild between restore and re-execution: under lazy recovery
     * the allocator's incremental scan is already live.
     */
    void healOngoing(unsigned tid) override;

    ClobberPolicy policy_;
    bool clobberLogEnabled_ = true;
    /**
     * True while a txfunc re-executes during recovery. Guarded loads
     * (media faults) are only armed in this window; shared with the
     * iDO runtime's load path. Thread-local: a background healer's
     * re-execution must not flip foreground transactions on other
     * threads into recovery semantics (their guarded loads would arm
     * and their txfuncs would skip volatile out-pointers).
     */
    static thread_local bool recovering_;

 private:
    /** Restore clobbered inputs, revert intents (phase 1 of
     *  recovery). @return what the log scan observed. */
    salvage::ScanStats restoreSlot(unsigned tid);
    /** Re-execute the interrupted txfunc (phase 2 of recovery). */
    void reexecuteSlot(unsigned tid);
    /** Roll back a partially re-executed slot and abandon it. */
    void abortReexecution(unsigned tid, const char* why);
    /** Record the restore-only salvage abort (damaged log / eliding
     *  writer: inputs not provably restored, not re-executed). */
    void declareRestoreAbort(unsigned tid,
                             const salvage::ScanStats& st);
    /** reexecuteSlot inside the recovery catch set (media fault,
     *  overflow, corrupt block -> abort + declare). */
    void reexecuteGuarded(unsigned tid);

    bool vlogEnabled_ = true;
};

}  // namespace cnvm::rt

#endif  // CNVM_RUNTIMES_CLOBBER_H
