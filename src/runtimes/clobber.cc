#include "runtimes/clobber.h"

#include <cstring>

#include "alloc/pm_allocator.h"
#include "common/error.h"
#include "nvm/fault_model.h"
#include "stats/counters.h"
#include "txn/registry.h"
#include "txn/tx.h"

namespace cnvm::rt {

thread_local bool ClobberRuntime::recovering_ = false;

void
ClobberRuntime::txBegin(unsigned tid, txn::FuncId fid,
                        std::span<const uint8_t> args)
{
    stageBegin(tid, fid, args, /* persistArgs */ vlogEnabled_);
}

void
ClobberRuntime::load(unsigned tid, void* dst, const void* src, size_t n)
{
    if (n == 0)
        return;
    // During recovery re-execution the txfunc's input reads come from
    // the media; a poisoned line must raise rather than silently feed
    // the re-execution garbage. Outside recovery this is a null check.
    if (recovering_ && pool_.faults() != nullptr)
        pool_.checkRead(src, n);
    SlotState& s = slot(tid);
    auto [first, last] = blockRangeOf(src, n);
    if (!s.inLoadRun(first, last)) {
        for (uint64_t b = first; b <= last; b++) {
            uint8_t& st = s.blocks.ref(b);
            // Reading your own write is not an input read.
            if (!(st & (BlockMap::kRead | BlockMap::kWritten)))
                st |= BlockMap::kRead;
        }
        // loadRun invariant (clobber): READ or WRITTEN already set, so
        // a repeat load of these blocks has nothing to record.
        s.noteLoadRun(first, last);
    }
    std::memcpy(dst, src, n);
}

void
ClobberRuntime::appendClobberEntry(unsigned tid, void* dst, size_t n)
{
    if (!clobberLogEnabled_)
        return;
    // clobber_log: undo-log the overwritten input before the store
    // (entry write + flush + fence, via the shared undo machinery).
    // The entry must cover whole kBlock units, not just the stored
    // bytes: write-set suppression is block-granular, so a later
    // store to the *other* bytes of a block logged here is never
    // logged itself. A block is pristine when it first enters the
    // log (the READ bit requires a load before any store to the
    // block), so the widened image is the true pre-state. The fence
    // matters: the clobbered line can tear independently of the log
    // line, so the entry should be durable before the in-place write
    // executes. Under the zero/zerocached writers it is elided and
    // recover() compensates by declaring the interrupted transaction
    // salvage-aborted instead of re-executing it.
    uint64_t off = pool_.offsetOf(dst);
    uint64_t lo = off & ~(kBlock - 1);
    uint64_t hi = (off + n + kBlock - 1) & ~(kBlock - 1);
    appendLogEntry(tid, lo, pool_.at(lo), static_cast<uint32_t>(hi - lo),
                   LogFence::required);
    stats::bump(stats::Counter::clobberEntries);
    stats::bump(stats::Counter::clobberBytes, hi - lo);
    stats::bump(stats::Counter::undoEntries);
    stats::bump(stats::Counter::undoBytes, hi - lo);
}

void
ClobberRuntime::store(unsigned tid, void* dst, const void* src, size_t n)
{
    if (n == 0)
        return;
    ensureBegun(tid);
    SlotState& s = slot(tid);
    auto [first, last] = blockRangeOf(dst, n);
    // storeRun invariant (refined clobber): every block in the run is
    // WRITTEN, so nothing can clobber and the bits are already set —
    // sequential overwrites skip the hash entirely. The conservative
    // policy re-logs every store to a read block, so it must always
    // take the probing path.
    if (policy_ == ClobberPolicy::refined &&
        s.inStoreRun(first, last)) {
        writeDirty(tid, dst, src, n);
        return;
    }
    bool clobbers = false;
    for (uint64_t b = first; b <= last; b++) {
        uint8_t& st = s.blocks.ref(b);
        if ((st & BlockMap::kRead) &&
            (policy_ == ClobberPolicy::conservative ||
             !(st & BlockMap::kWritten))) {
            clobbers = true;
        }
        st |= BlockMap::kWritten;
    }
    if (clobbers)
        appendClobberEntry(tid, dst, n);
    if (policy_ == ClobberPolicy::refined)
        s.noteStoreRun(first, last);
    writeDirty(tid, dst, src, n);
}

void
ClobberRuntime::txCommit(unsigned tid)
{
    SlotState& s = slot(tid);
    CNVM_CHECK(s.inTx, "commit outside transaction");
    if (!s.begunPersist) {
        // Read-only transaction: nothing durable happened.
        s.inTx = false;
        stats::bump(stats::Counter::txCommits);
        return;
    }
    // Staged log bytes (zerocached writer) must hit the media before
    // the data fence: see UndoRuntime::txCommit.
    sealLog(tid);
    persistIntentsAndAllocs(tid);
    flushDirty(tid);
    pool_.fence();
    persistIdle(tid);
    finishIntentsAfterCommit(tid);
    s.inTx = false;
}

salvage::ScanStats
ClobberRuntime::restoreSlot(unsigned tid)
{
    salvage::ScanStats st;
    const auto& entries = scanLog(tid, &st);
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        if (it->targetOff == kMarkerOff)
            continue;  // bookkeeping record, not a memory image
        pool_.writeAt(it->targetOff, it->data, it->len);
        pool_.flush(pool_.at(it->targetOff), it->len);
    }
    pool_.fence();
    recoverIntents(tid, /* committed */ false);
    stats::bump(stats::Counter::recoveries);
    return st;
}

void
ClobberRuntime::reexecuteSlot(unsigned tid)
{
    TxDescriptor& d = desc(tid);
    // Bump the sequence number (keeping status=ongoing and the v_log
    // args) so the previous execution's clobber entries are invalid if
    // we crash again during re-execution.
    uint64_t seq = d.txSeq + 1;
    pool_.write(&d.txSeq, &seq, sizeof(seq));
    uint64_t sum = beginChecksum(tid);
    pool_.write(&d.beginSum, &sum, sizeof(sum));
    pool_.flush(&d.txSeq, sizeof(seq));
    pool_.persist(&d.beginSum, sizeof(sum));

    SlotState& s = slot(tid);
    s = SlotState{};
    s.inTx = true;
    s.begunPersist = true;  // the v_log entry is already durable
    // The only surviving copy of the transaction's inputs is the
    // v_log; rehydrate the volatile blob from it.
    s.volatileArgs.assign(d.args, d.args + d.argLen);

    txn::Tx tx(*this, tid);
    txn::ArgReader r(argBlob(tid));
    // While the txfunc re-executes, any volatile out-pointers in its
    // argument blob are dangling (the original caller's stack is
    // gone); Tx::recovering() lets txfuncs skip writing them.
    recovering_ = true;
    try {
        txn::lookupTxFunc(d.fid)(tx, r);
    } catch (...) {
        recovering_ = false;
        throw;
    }
    recovering_ = false;
    txCommit(tid);
    stats::bump(stats::Counter::reexecutions);
}

void
ClobberRuntime::abortReexecution(unsigned tid, const char* why)
{
    // The partial re-execution wrote in place under a fresh txSeq with
    // its own clobber entries: restore those, revert its intents, and
    // abandon the transaction. Blind writes of the aborted txfunc may
    // survive — inherent to the clobber protocol, which is why the
    // abort is declared in the report rather than papered over.
    restoreSlot(tid);
    salvageResetSlot(tid);
    slot(tid) = SlotState{};
    txn::SlotRecovery sr;
    sr.tid = tid;
    sr.action = txn::SlotAction::salvageAborted;
    sr.note = std::string("re-execution aborted: ") + why;
    recordSlot(std::move(sr));
}

void
ClobberRuntime::declareRestoreAbort(unsigned tid,
                                    const salvage::ScanStats& st)
{
    // Damaged log — or an eliding writer, under which a lost trailing
    // clobber entry looks exactly like a clean log end while its
    // in-place write survived. Re-executing would feed the txfunc
    // those unrestored inputs and commit garbage on top; restore what
    // validated and declare the abort instead.
    salvageResetSlot(tid);
    txn::SlotRecovery sr;
    sr.tid = tid;
    sr.action = txn::SlotAction::salvageAborted;
    sr.entriesApplied = st.entries;
    sr.entriesDropped = st.droppedEntries;
    if (st.damaged()) {
        sr.note = st.sawPoison ? "clobber log poisoned"
                               : "clobber log corrupted mid-log";
    } else {
        sr.note = "zero-fence log writer: inputs not "
                  "provably restored, not re-executed";
    }
    recordSlot(std::move(sr));
}

void
ClobberRuntime::reexecuteGuarded(unsigned tid)
{
    try {
        reexecuteSlot(tid);
        txn::SlotRecovery sr;
        sr.tid = tid;
        sr.action = txn::SlotAction::reexecuted;
        recordSlot(std::move(sr));
    } catch (const nvm::MediaFaultError& e) {
        // A guarded input load hit a poisoned line mid-txfunc
        // (CrashInjected propagates: that is the torture harness
        // tearing the pool, not a media fault).
        abortReexecution(tid, e.what());
    } catch (const txn::LogOverflowError& e) {
        // The interrupted transaction crashed before its own
        // overflow point; the full re-execution hit it. Same
        // resolution as a voluntary abort: restore and abandon.
        abortReexecution(tid, e.what());
    } catch (const alloc::CorruptBlockError& e) {
        // Commit-time intent persist tripped on a block whose
        // header no longer validates; wall it off so the damage
        // cannot spread through the free list.
        heap_.quarantine(e.payloadOff() - sizeof(alloc::BlockHeader),
                         alloc::kGranule, alloc::kQuarCorruptHeader);
        if (report_ != nullptr) {
            report_->quarantinedBlocks++;
            report_->quarantinedBytes += alloc::kGranule;
        }
        abortReexecution(tid, e.what());
    }
}

void
ClobberRuntime::healOngoing(unsigned tid)
{
    salvage::ScanStats st = restoreSlot(tid);
    if (st.damaged() || logWriterElides()) {
        declareRestoreAbort(tid, st);
        return;
    }
    // Restore and re-execute back to back: lazy recovery has no
    // stop-the-world heap rebuild to interleave — the allocator's
    // incremental scan serves the re-execution's reservations, and
    // this slot's own reverted blocks are simply not handed out until
    // the final reconcile (the safe direction).
    resetVolatileSlot(tid);
    reexecuteGuarded(tid);
}

txn::RecoveryReport
ClobberRuntime::recover()
{
    RecoverySession session(*this);
    // Phase 1: restore every interrupted transaction's clobbered
    // inputs and revert its allocation intents. A damaged clobber log
    // means some pre-state is unrecoverable: restore what validated,
    // but do NOT re-execute — the txfunc would read partly-garbage
    // inputs and commit on top of them.
    std::vector<unsigned> interrupted;
    for (unsigned tid = 0; tid < pool_.maxThreads(); tid++) {
        if (!slotRecoverable(tid)) {
            slot(tid) = SlotState{};
            continue;
        }
        if (isOngoing(tid)) {
            salvage::ScanStats st = restoreSlot(tid);
            if (st.damaged() || logWriterElides()) {
                declareRestoreAbort(tid, st);
            } else {
                interrupted.push_back(tid);
            }
        } else {
            recoverIdleIntents(tid, /* committed */ true);
        }
        slot(tid) = SlotState{};
    }
    // Phase 2: rebuild the allocator's volatile state from the (now
    // reverted) bitmap, then re-execute each transaction to completion.
    rebuildHeap();
    for (unsigned tid : interrupted)
        reexecuteGuarded(tid);
    return session.take();
}

}  // namespace cnvm::rt
