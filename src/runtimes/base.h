/**
 * @file
 * Shared machinery for all failure-atomicity runtimes: slot/descriptor
 * management, self-validating log append/scan, dirty-line tracking for
 * commit-time write-back, and the allocation intent protocol.
 */
#ifndef CNVM_RUNTIMES_BASE_H
#define CNVM_RUNTIMES_BASE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "alloc/pm_allocator.h"
#include "common/block_map.h"
#include "common/epoch_set.h"
#include "nvm/pool.h"
#include "runtimes/descriptor.h"
#include "runtimes/log_writer.h"
#include "runtimes/salvage.h"
#include "txn/runtime.h"

namespace cnvm::rt {

class RuntimeBase : public txn::Runtime {
 public:
    RuntimeBase(nvm::Pool& pool, alloc::PmAllocator& heap);

    nvm::Pool& pool() override { return pool_; }
    alloc::PmAllocator& heap() override { return heap_; }

    std::span<const uint8_t> argBlob(unsigned tid) const override;

    /**
     * Ablation knob: persist begin records eagerly at txBegin instead
     * of lazily before the first durable effect. Costs read-only
     * transactions two fences each (see bench/ablation_lazy_begin).
     */
    void setEagerBeginPersist(bool on) { eagerBegin_ = on; }

    /**
     * Swap the log-append engine (see log_writer.h). The default is
     * CNVM_LOG_WRITER (baseline when unset). Must not be called with
     * a transaction in flight on any slot: the new writer's staging
     * state re-anchors lazily per slot, but entries already staged by
     * the old writer would be lost.
     */
    void setLogWriter(LogWriterKind kind);
    LogWriterKind logWriterKind() const { return logWriter_->kind(); }

    void initZero(unsigned tid, void* dst, size_t n) override;
    uint64_t alloc(unsigned tid, size_t n) override;
    void dealloc(unsigned tid, uint64_t payloadOff) override;
    void txAbort(unsigned tid) override;

    /**
     * @name Lazy (instant-restart) recovery — triage/heal split
     *
     * recoveryTriage() is the bounded pass: classify every slot from
     * its descriptor (no log replay, no bitmap scan), collect the
     * heap ranges live intent tables pin, and reset volatile slot
     * state. It writes nothing a re-run could disagree with — the
     * index rebuilds identically from the same media, so a crash
     * anywhere inside triage (or between triage and the last heal)
     * just means triage runs again. healSlot() is the per-entry slice
     * of recover(): it re-derives the slot's condition from media
     * (the triage class is advisory) and applies exactly the repair
     * full recovery would, so healing twice — or healing after a
     * crash that landed mid-heal — is idempotent. healHeap() is the
     * full allocator reconciliation, run once after all entries heal.
     */
    /// @{
    txn::RecoveryIndex recoveryTriage() override;
    txn::RecoveryReport healSlot(const txn::IndexEntry& e) override;
    txn::RecoveryReport healHeap() override;
    /// @}

 protected:
    /** Volatile per-slot transaction state. */
    struct SlotState {
        bool inTx = false;
        /** begin record (and v_log) persisted yet? (lazy begin) */
        bool begunPersist = false;
        txn::FuncId pendingFid = 0;
        bool wantArgsPersist = false;
        std::vector<uint8_t> volatileArgs;
        /** dirty cache lines to write back at commit */
        EpochSet dirtyLines{4096};
        /**
         * Unified per-block transaction state (READ / WRITTEN / LOGGED
         * / REGION_READ / REGION_WRITTEN), one probe per block where
         * the old readSet/writeSet/loggedBlocks/region sets cost up to
         * four. Bits are only ever set during a transaction (clear()
         * at reset, clearBits() at iDO region boundaries), which is
         * what makes the access-run cache below sound.
         */
        BlockMap blocks{4096};
        /**
         * Access-run memoization: inclusive block ranges known to be
         * fully processed by the owning runtime's load (loadRun) or
         * store (storeRun) bookkeeping, so sequential memcpy-style
         * access skips the hash probes entirely. The exact invariant
         * is protocol-specific (clobber: storeRun blocks are WRITTEN;
         * undo: LOGGED; iDO adds the region bits) but always monotone
         * under bit-setting, so runs stay valid until resetTx() or a
         * region boundary resets them. Empty when lo > hi.
         */
        uint64_t loadRunLo = 1, loadRunHi = 0;
        uint64_t storeRunLo = 1, storeRunHi = 0;
        /** last cache line inserted into dirtyLines (same-line memo) */
        uint64_t lastDirtyLine = ~0ULL;
        /** allocation actions (payloadOff, isFree) */
        std::vector<std::pair<uint64_t, bool>> actions;
        /** reusable buffer for batched commit-time write-back */
        std::vector<uint64_t> flushScratch;
        /** reusable buffer for scanLog (recovery passes) */
        std::vector<ScannedEntry> scanScratch;
        /** bytes used in the slot's log area */
        size_t logTail = 0;

        bool
        inLoadRun(uint64_t lo, uint64_t hi) const
        {
            return loadRunLo <= lo && hi <= loadRunHi;
        }
        bool
        inStoreRun(uint64_t lo, uint64_t hi) const
        {
            return storeRunLo <= lo && hi <= storeRunHi;
        }

        /** Extend a run if [lo,hi] overlaps/adjoins it, else replace. */
        static void
        noteRun(uint64_t& runLo, uint64_t& runHi, uint64_t lo,
                uint64_t hi)
        {
            if (runLo <= runHi && lo <= runHi + 1 && runLo <= hi + 1) {
                runLo = runLo < lo ? runLo : lo;
                runHi = runHi > hi ? runHi : hi;
            } else {
                runLo = lo;
                runHi = hi;
            }
        }
        void
        noteLoadRun(uint64_t lo, uint64_t hi)
        {
            noteRun(loadRunLo, loadRunHi, lo, hi);
        }
        void
        noteStoreRun(uint64_t lo, uint64_t hi)
        {
            noteRun(storeRunLo, storeRunHi, lo, hi);
        }

        void
        resetRuns()
        {
            loadRunLo = storeRunLo = 1;
            loadRunHi = storeRunHi = 0;
        }

        void
        resetTx()
        {
            begunPersist = false;
            pendingFid = 0;
            wantArgsPersist = false;
            dirtyLines.clear();
            blocks.clear();
            resetRuns();
            lastDirtyLine = ~0ULL;
            actions.clear();
            logTail = 0;
        }
    };

    static constexpr uint64_t kBlock = 8;

    TxDescriptor& desc(unsigned tid);
    const TxDescriptor& desc(unsigned tid) const;
    uint8_t* logArea(unsigned tid);
    size_t logCapacity() const;
    SlotState& slot(unsigned tid);

    /** Interposed in-place write: pool write + dirty-line tracking. */
    void writeDirty(unsigned tid, void* dst, const void* src, size_t n);

    /** clwb every dirty line (no fence). */
    void flushDirty(unsigned tid);

    /**
     * Append a self-validating log entry carrying `len` bytes of
     * `payload` attributed to `targetOff`, through the active log
     * writer. The baseline writer flushes the entry and fences iff
     * `fence == LogFence::required`; the zero/zerocached writers
     * elide the fence (and zerocached defers even the NVM write
     * until a staging line fills or sealLog runs). Throws
     * txn::LogOverflowError when the entry does not fit the slot's
     * log area (nothing is written in that case).
     */
    void appendLogEntry(unsigned tid, uint64_t targetOff,
                        const void* payload, uint32_t len,
                        LogFence fence);

    /**
     * Write out + flush any log bytes the active writer still stages
     * in DRAM for slot `tid` (no fence — the caller's next fence
     * retires them). Commit paths call this before their first data
     * fence; any path about to scanLog() an in-flight transaction's
     * area must call it first or staged entries are invisible.
     */
    void sealLog(unsigned tid);

    /** True when the active writer never fences required appends:
     *  recovery of an interrupted transaction must declare a salvage
     *  abort instead of claiming a clean roll-back (DESIGN.md §15). */
    bool
    logWriterElides() const
    {
        return logWriter_->elidesRequiredFence();
    }

    /**
     * All valid entries of the slot's current transaction, in order,
     * salvaged across damaged stretches (see salvage::scanLogArea).
     * `stats` (optional) receives what the scan observed — protocols
     * use stats->damaged() to decide between ordinary replay and a
     * salvage abort. The returned vector is the slot's scratch
     * buffer: valid until the next scanLog() call on the same slot.
     */
    const std::vector<ScannedEntry>&
    scanLog(unsigned tid, salvage::ScanStats* stats = nullptr);

    /**
     * Persist the begin record. Writes status/txSeq (+fid/args when
     * `persistArgs`), flushes, fences. This is the v_log write for
     * recovery-via-resumption runtimes.
     */
    void persistBegin(unsigned tid, txn::FuncId fid,
                      std::span<const uint8_t> args, bool persistArgs);

    /**
     * Lazy begin: stage the begin record volatilely; ensureBegun()
     * persists it before the transaction's first durable effect. A
     * transaction that never stores, logs, or allocates therefore
     * costs no fences at all (read-only fast path — PMDK does not
     * transact reads, and Clobber-NVM's v_log only has to be durable
     * before the first store could tear anything).
     */
    void stageBegin(unsigned tid, txn::FuncId fid,
                    std::span<const uint8_t> args, bool persistArgs);
    void ensureBegun(unsigned tid);

    /** Hook invoked when a staged begin actually persists. */
    virtual void beganPersistently(unsigned /* tid */) {}

    /**
     * @name Allocation intent protocol
     *
     * pmalloc/pfree follow PMDK's redo-style scheme, with frees split
     * from allocations so every crash window is unambiguous:
     *
     *  1. persistIntentsAndAllocs() — before the transaction's data
     *     fence: persist the intent table (alloc + free actions,
     *     tagged with the txSeq), fence, then set+flush the bitmap
     *     bits of the allocations only;
     *  2. transaction commit point (status change);
     *  3. finishIntentsAfterCommit() — clear+flush the bitmap bits of
     *     the frees, then persist intentCount = 0.
     *
     * Rollback (crash before the commit point) reverts the alloc bits
     * and never applies the frees; completion (crash after) re-applies
     * frees idempotently. recoverIntents() implements both.
     */
    /// @{
    void persistIntentsAndAllocs(unsigned tid);
    void finishIntentsAfterCommit(unsigned tid);

    /**
     * Repair the persistent intent table of slot `tid`.
     * @param committed true if the owning transaction reached its
     *        commit point (finish the frees), false otherwise (revert
     *        the allocations).
     */
    void recoverIntents(unsigned tid, bool committed);

    /** Redo replay: force the table's alloc bits set (idempotent). */
    void reapplyAllocIntents(unsigned tid);

    /** True iff the slot holds a live intent table for its txSeq. */
    bool hasLiveIntents(unsigned tid) const;
    /// @}

    /** Write status=idle, flush, fence. */
    void persistIdle(unsigned tid);

    /**
     * @name Salvage support
     *
     * recover() implementations open a RecoverySession, which exposes
     * the in-progress txn::RecoveryReport through report_ (null
     * outside recovery, so the hot path never touches it) and
     * snapshots the fault model's counters to attribute poisoned
     * reads and retries to this pass. The session is exception-safe:
     * a CrashInjected thrown mid-recovery (crash-during-recovery
     * torture) unwinds it cleanly and the next recover() starts a
     * fresh report.
     */
    /// @{
    class RecoverySession {
     public:
        explicit RecoverySession(RuntimeBase& rt);
        ~RecoverySession();

        txn::RecoveryReport& report() { return report_; }
        /** Finalize (fill media-counter deltas) and move out. */
        txn::RecoveryReport take();

     private:
        RuntimeBase& rt_;
        txn::RecoveryReport report_;
        uint64_t poisonReads0_ = 0;
        uint64_t retries0_ = 0;
    };

    /** Record a per-slot salvage outcome (no-op outside recovery). */
    void recordSlot(txn::SlotRecovery s);

    /** Can the slot's descriptor be read at all? Poisoned descriptors
     *  are recorded as salvage-aborted by the caller. */
    bool descReadable(unsigned tid);

    /**
     * hasLiveIntents with media awareness: 1 = live table, 0 = none,
     * -1 = the table is poisoned or looks live but fails its checksum
     * on a tainted line (record as intentTablesLost).
     */
    int liveIntentsGuarded(unsigned tid);

    /**
     * Rewrite the slot's descriptor as clean idle with txSeq bumped
     * (so surviving log entries can never validate again). Shared by
     * the salvage path and the voluntary abort path; counts neither
     * a commit nor a salvage abort.
     */
    void abandonSlot(unsigned tid);

    /**
     * Abandon a slot's transaction after salvage: invalidate the
     * intent table and the begin record, persist idle. Unlike
     * persistIdle this does not count a commit.
     */
    void salvageResetSlot(unsigned tid);

    /**
     * Common recover() preamble for one slot. False means the
     * descriptor itself is unreadable: the slot has been recorded as
     * salvage-aborted and persistently reset (the reset writes heal
     * the poisoned lines), and the caller must skip it.
     */
    bool slotRecoverable(unsigned tid);

    /**
     * Media-aware recoverIntents for a slot with no interrupted
     * transaction: completes (or reverts, per `committed`) a live
     * table, or — if the table is poisoned/corrupt — records it lost
     * and resets the slot.
     */
    void recoverIdleIntents(unsigned tid, bool committed);

    /**
     * heap_.rebuild() folding quarantine stats into the report.
     * `keepSession` passes through to PmAllocator::rebuild: true is
     * the lazy-recovery final reconcile (live reservations and holds
     * stay masked), false is fresh-process recovery.
     */
    void rebuildHeap(bool keepSession = false);

    /**
     * @name Per-slot recovery hooks (shared by recover() and healSlot)
     *
     * The full recover() implementations and the lazy per-entry heals
     * run the same protocol logic through these virtuals; overriding
     * one repairs both paths.
     */
    /// @{
    /** Drop the slot's volatile transaction state (redo also clears
     *  its write map). */
    virtual void resetVolatileSlot(unsigned tid);

    /** Classify one slot from its descriptor. Read-mostly: must not
     *  repair anything (triage calls it; heal re-derives). The caller
     *  has already vetted the descriptor's begin record. */
    virtual txn::SlotClass classifySlot(unsigned tid);

    /** Per-slot triage hook (redo skips clean slots' txSeq here). */
    virtual void triageSlot(unsigned /* tid */, txn::SlotClass) {}

    /** End-of-triage hook (redo fences its sequence skips). */
    virtual void triageFinish() {}

    /**
     * Heal one slot: vet the descriptor (salvage-reset if unreadable)
     * and dispatch to healOngoing / healCommitting / healIdle from
     * the slot's *current* media state. The class is advisory.
     */
    virtual void healOneSlot(unsigned tid, txn::SlotClass cls);

    /** Repair an interrupted (status=ongoing) transaction. */
    virtual void healOngoing(unsigned /* tid */) {}

    /** Roll a committing slot forward (redo). The default treats it
     *  like an idle slot — no other protocol persists that status. */
    virtual void
    healCommitting(unsigned tid)
    {
        healIdle(tid);
    }

    /** Repair a slot with no interrupted transaction: finish (or, per
     *  protocol, revert) a live alloc-intent table. */
    virtual void
    healIdle(unsigned tid)
    {
        recoverIdleIntents(tid, /* committed */ true);
    }
    /// @}

    /** Active recovery report; null outside recover(). */
    txn::RecoveryReport* report_ = nullptr;
    /// @}

    /**
     * True iff slot `tid` holds an interrupted transaction whose begin
     * record validates (see TxDescriptor::beginSum).
     */
    bool isOngoing(unsigned tid) const;

    /** Checksum of the slot's current begin record. */
    uint64_t beginChecksum(unsigned tid) const;

    /** Helpers for 8-byte block bookkeeping. */
    uint64_t
    firstBlock(const void* p) const
    {
        return pool_.offsetOf(p) / kBlock;
    }

    /** Inclusive block range covering [p, p+n). @pre n > 0. */
    struct BlockRange {
        uint64_t first, last;
    };
    BlockRange
    blockRangeOf(const void* p, size_t n) const
    {
        uint64_t off = pool_.offsetOf(p);
        return {off / kBlock, (off + n - 1) / kBlock};
    }

    template <typename Fn>
    void
    forEachBlock(const void* p, size_t n, Fn&& fn) const
    {
        if (n == 0)
            return;  // an empty access touches no block
        uint64_t off = pool_.offsetOf(p);
        uint64_t first = off / kBlock;
        uint64_t last = (off + n - 1) / kBlock;
        for (uint64_t b = first; b <= last; b++)
            fn(b);
    }

    nvm::Pool& pool_;
    alloc::PmAllocator& heap_;
    std::vector<SlotState> slots_;
    bool eagerBegin_ = false;
    /** Active log-append engine (never null; CNVM_LOG_WRITER picks
     *  the initial one at construction). */
    std::unique_ptr<LogWriter> logWriter_;
};

}  // namespace cnvm::rt

#endif  // CNVM_RUNTIMES_BASE_H
