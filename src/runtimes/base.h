/**
 * @file
 * Shared machinery for all failure-atomicity runtimes: slot/descriptor
 * management, self-validating log append/scan, dirty-line tracking for
 * commit-time write-back, and the allocation intent protocol.
 */
#ifndef CNVM_RUNTIMES_BASE_H
#define CNVM_RUNTIMES_BASE_H

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "alloc/pm_allocator.h"
#include "common/epoch_set.h"
#include "nvm/pool.h"
#include "runtimes/descriptor.h"
#include "txn/runtime.h"

namespace cnvm::rt {

class RuntimeBase : public txn::Runtime {
 public:
    RuntimeBase(nvm::Pool& pool, alloc::PmAllocator& heap);

    nvm::Pool& pool() override { return pool_; }
    alloc::PmAllocator& heap() override { return heap_; }

    std::span<const uint8_t> argBlob(unsigned tid) const override;

    /**
     * Ablation knob: persist begin records eagerly at txBegin instead
     * of lazily before the first durable effect. Costs read-only
     * transactions two fences each (see bench/ablation_lazy_begin).
     */
    void setEagerBeginPersist(bool on) { eagerBegin_ = on; }

    void initZero(unsigned tid, void* dst, size_t n) override;
    uint64_t alloc(unsigned tid, size_t n) override;
    void dealloc(unsigned tid, uint64_t payloadOff) override;

 protected:
    /** Volatile per-slot transaction state. */
    struct SlotState {
        bool inTx = false;
        /** begin record (and v_log) persisted yet? (lazy begin) */
        bool begunPersist = false;
        txn::FuncId pendingFid = 0;
        bool wantArgsPersist = false;
        std::vector<uint8_t> volatileArgs;
        /** dirty cache lines to write back at commit */
        EpochSet dirtyLines{4096};
        /** 8-byte blocks read before written (clobber inputs) */
        EpochSet readSet{4096};
        /** 8-byte blocks already written (incl. fresh allocations) */
        EpochSet writeSet{4096};
        /** 8-byte blocks already undo-logged (PMDK range dedup) */
        EpochSet loggedBlocks{4096};
        /** iDO per-idempotent-region sets */
        EpochSet regionReadSet{4096};
        EpochSet regionWriteSet{4096};
        /** allocation actions (payloadOff, isFree) */
        std::vector<std::pair<uint64_t, bool>> actions;
        /** reusable buffer for batched commit-time write-back */
        std::vector<uint64_t> flushScratch;
        /** bytes used in the slot's log area */
        size_t logTail = 0;

        void
        resetTx()
        {
            begunPersist = false;
            pendingFid = 0;
            wantArgsPersist = false;
            dirtyLines.clear();
            readSet.clear();
            writeSet.clear();
            loggedBlocks.clear();
            regionReadSet.clear();
            regionWriteSet.clear();
            actions.clear();
            logTail = 0;
        }
    };

    static constexpr uint64_t kBlock = 8;

    TxDescriptor& desc(unsigned tid);
    const TxDescriptor& desc(unsigned tid) const;
    uint8_t* logArea(unsigned tid);
    size_t logCapacity() const;
    SlotState& slot(unsigned tid);

    /** Interposed in-place write: pool write + dirty-line tracking. */
    void writeDirty(unsigned tid, void* dst, const void* src, size_t n);

    /** clwb every dirty line (no fence). */
    void flushDirty(unsigned tid);

    /**
     * Append a self-validating log entry carrying `len` bytes of
     * `payload` attributed to `targetOff`. Flushes the entry; fences
     * iff `fenceAfter`.
     */
    void appendLogEntry(unsigned tid, uint64_t targetOff,
                        const void* payload, uint32_t len,
                        bool fenceAfter);

    /** A validated log entry surfaced during recovery. */
    struct ScannedEntry {
        uint64_t targetOff;
        uint32_t len;
        const uint8_t* data;
    };

    /** All valid entries of the slot's current transaction, in order. */
    std::vector<ScannedEntry> scanLog(unsigned tid);

    /**
     * Persist the begin record. Writes status/txSeq (+fid/args when
     * `persistArgs`), flushes, fences. This is the v_log write for
     * recovery-via-resumption runtimes.
     */
    void persistBegin(unsigned tid, txn::FuncId fid,
                      std::span<const uint8_t> args, bool persistArgs);

    /**
     * Lazy begin: stage the begin record volatilely; ensureBegun()
     * persists it before the transaction's first durable effect. A
     * transaction that never stores, logs, or allocates therefore
     * costs no fences at all (read-only fast path — PMDK does not
     * transact reads, and Clobber-NVM's v_log only has to be durable
     * before the first store could tear anything).
     */
    void stageBegin(unsigned tid, txn::FuncId fid,
                    std::span<const uint8_t> args, bool persistArgs);
    void ensureBegun(unsigned tid);

    /** Hook invoked when a staged begin actually persists. */
    virtual void beganPersistently(unsigned /* tid */) {}

    /**
     * @name Allocation intent protocol
     *
     * pmalloc/pfree follow PMDK's redo-style scheme, with frees split
     * from allocations so every crash window is unambiguous:
     *
     *  1. persistIntentsAndAllocs() — before the transaction's data
     *     fence: persist the intent table (alloc + free actions,
     *     tagged with the txSeq), fence, then set+flush the bitmap
     *     bits of the allocations only;
     *  2. transaction commit point (status change);
     *  3. finishIntentsAfterCommit() — clear+flush the bitmap bits of
     *     the frees, then persist intentCount = 0.
     *
     * Rollback (crash before the commit point) reverts the alloc bits
     * and never applies the frees; completion (crash after) re-applies
     * frees idempotently. recoverIntents() implements both.
     */
    /// @{
    void persistIntentsAndAllocs(unsigned tid);
    void finishIntentsAfterCommit(unsigned tid);

    /**
     * Repair the persistent intent table of slot `tid`.
     * @param committed true if the owning transaction reached its
     *        commit point (finish the frees), false otherwise (revert
     *        the allocations).
     */
    void recoverIntents(unsigned tid, bool committed);

    /** Redo replay: force the table's alloc bits set (idempotent). */
    void reapplyAllocIntents(unsigned tid);

    /** True iff the slot holds a live intent table for its txSeq. */
    bool hasLiveIntents(unsigned tid) const;
    /// @}

    /** Write status=idle, flush, fence. */
    void persistIdle(unsigned tid);

    /**
     * True iff slot `tid` holds an interrupted transaction whose begin
     * record validates (see TxDescriptor::beginSum).
     */
    bool isOngoing(unsigned tid) const;

    /** Checksum of the slot's current begin record. */
    uint64_t beginChecksum(unsigned tid) const;

    /** Helpers for 8-byte block bookkeeping. */
    uint64_t
    firstBlock(const void* p) const
    {
        return pool_.offsetOf(p) / kBlock;
    }

    template <typename Fn>
    void
    forEachBlock(const void* p, size_t n, Fn&& fn) const
    {
        uint64_t off = pool_.offsetOf(p);
        uint64_t first = off / kBlock;
        uint64_t last = (off + (n == 0 ? 0 : n - 1)) / kBlock;
        for (uint64_t b = first; b <= last; b++)
            fn(b);
    }

    nvm::Pool& pool_;
    alloc::PmAllocator& heap_;
    std::vector<SlotState> slots_;
    bool eagerBegin_ = false;
};

}  // namespace cnvm::rt

#endif  // CNVM_RUNTIMES_BASE_H
