/**
 * @file
 * Structured result of a recovery pass.
 *
 * PR 5 converts the recovery stack from trust-or-abort to salvage:
 * corrupt log entries are skipped with protocol-correct semantics,
 * poisoned allocator blocks are quarantined, transient reads are
 * retried — and every such action must be *visible*, not silent.
 * RecoveryReport is that visibility: Runtime::recover() returns one,
 * txn::Engine keeps the last one, and the torture harness relaxes its
 * shadow-oracle audit only for transactions the report explicitly
 * declares salvage-aborted.
 */
#ifndef CNVM_TXN_RECOVERY_REPORT_H
#define CNVM_TXN_RECOVERY_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace cnvm::txn {

/** What recovery did with one slot's interrupted transaction. */
enum class SlotAction : uint8_t {
    none = 0,          ///< slot was idle; nothing to do
    rolledBack,        ///< undo/atlas: log replayed in reverse
    rolledForward,     ///< redo: committed write set replayed forward
    reexecuted,        ///< clobber/ido: inputs restored, txfunc re-run
    intentsCompleted,  ///< only the alloc-intent table needed finishing
    intentsReverted,   ///< only the alloc-intent table needed reverting
    salvageAborted,    ///< damage detected; transaction abandoned
};

const char* slotActionName(SlotAction a);

/** Per-slot recovery outcome. */
struct SlotRecovery {
    unsigned tid = 0;
    SlotAction action = SlotAction::none;
    /** Log entries (or redo writes) actually applied. */
    uint64_t entriesApplied = 0;
    /** Log entries dropped as corrupt (checksum/poison/resync). */
    uint64_t entriesDropped = 0;
    /** Free-form diagnosis ("mid-log checksum failure", ...). */
    std::string note;
};

/** Aggregate result of one Runtime::recover() pass. */
struct RecoveryReport {
    /** Slots examined (maxThreads). */
    uint64_t slotsScanned = 0;
    /** Valid log entries replayed across all slots. */
    uint64_t logEntriesApplied = 0;
    /** Corrupt log entries skipped across all slots. */
    uint64_t logEntriesDropped = 0;
    /** Guarded reads that hit a poisoned line during this pass. */
    uint64_t poisonedReads = 0;
    /** Transient-fault retries performed during this pass. */
    uint64_t transientRetries = 0;
    /** Allocator blocks quarantined by this pass. */
    uint64_t quarantinedBlocks = 0;
    uint64_t quarantinedBytes = 0;
    /** Alloc-intent tables that failed their checksum or poisoned. */
    uint64_t intentTablesLost = 0;
    /** Transactions abandoned because their log was damaged. */
    uint64_t salvageAborted = 0;

    /** Slots where recovery took any action (none are omitted). */
    std::vector<SlotRecovery> slots;

    /** No salvage, no damage: recovery was the ordinary crash path. */
    bool
    clean() const
    {
        return logEntriesDropped == 0 && poisonedReads == 0 &&
               quarantinedBlocks == 0 && intentTablesLost == 0 &&
               salvageAborted == 0;
    }

    /** Record a per-slot outcome and fold it into the counters. */
    void add(SlotRecovery s);

    /**
     * Fold another pass's report into this one (lazy recovery merges
     * one per-entry heal report at a time into a cumulative report).
     * Counters sum except slotsScanned, which takes the max: every
     * heal examines a subset of the same slot universe the triage
     * pass already counted, and per-entry heals report 0 there.
     */
    void merge(const RecoveryReport& other);

    /** Multi-line human-readable summary (tools, test logs). */
    std::string toString() const;
};

}  // namespace cnvm::txn

#endif  // CNVM_TXN_RECOVERY_REPORT_H
