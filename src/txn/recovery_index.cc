#include "txn/recovery_index.h"

#include <cstdlib>
#include <cstring>

namespace cnvm::txn {

RecoveryMode
recoveryModeFromEnv()
{
    if (const char* v = std::getenv("CNVM_RECOVERY"))
        if (std::strcmp(v, "lazy") == 0)
            return RecoveryMode::lazy;
    return RecoveryMode::full;
}

const char*
recoveryModeName(RecoveryMode m)
{
    return m == RecoveryMode::lazy ? "lazy" : "full";
}

const char*
slotClassName(SlotClass c)
{
    switch (c) {
        case SlotClass::clean: return "clean";
        case SlotClass::ongoing: return "ongoing";
        case SlotClass::committing: return "committing";
        case SlotClass::idleIntents: return "idle-intents";
        case SlotClass::damaged: return "damaged";
    }
    return "?";
}

}  // namespace cnvm::txn
