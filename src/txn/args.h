/**
 * @file
 * Transaction-argument serialization.
 *
 * Clobber-NVM re-executes interrupted transactions, so a transaction's
 * inputs must survive the crash. The paper's v_log records the txfunc's
 * name, its arguments, and any volatile buffers announced with
 * vlog_preserve. Here, txn::run() serializes every argument — including
 * volatile byte buffers, passed as string_view/span — into a blob that
 * the Clobber runtime persists as the v_log entry; the txfunc reads its
 * arguments back out of that blob in both normal execution and recovery
 * re-execution, guaranteeing the two executions see identical inputs.
 */
#ifndef CNVM_TXN_ARGS_H
#define CNVM_TXN_ARGS_H

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/error.h"

namespace cnvm::txn {

class ArgWriter {
 public:
    template <typename T>
    void
    put(const T& v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "transaction args must be trivially copyable");
        append(&v, sizeof(T));
    }

    /** Length-prefixed byte buffer (volatile inputs — vlog_preserve). */
    void
    putBytes(const void* data, size_t len)
    {
        auto len32 = static_cast<uint32_t>(len);
        append(&len32, sizeof(len32));
        append(data, len);
    }

    std::span<const uint8_t>
    bytes() const
    {
        return {buf_.data(), buf_.size()};
    }

 private:
    void
    append(const void* data, size_t len)
    {
        const auto* p = static_cast<const uint8_t*>(data);
        buf_.insert(buf_.end(), p, p + len);
    }

    std::vector<uint8_t> buf_;
};

class ArgReader {
 public:
    explicit ArgReader(std::span<const uint8_t> blob)
        : p_(blob.data()), end_(blob.data() + blob.size()) {}

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        CNVM_CHECK(p_ + sizeof(T) <= end_, "arg blob underflow");
        T out;
        std::memcpy(&out, p_, sizeof(T));
        p_ += sizeof(T);
        return out;
    }

    /**
     * A byte buffer; the returned span points into the blob itself
     * (persistent for Clobber-NVM), so it stays valid for the whole
     * transaction including recovery re-execution.
     */
    std::span<const uint8_t>
    getBytes()
    {
        auto len = get<uint32_t>();
        CNVM_CHECK(p_ + len <= end_, "arg blob underflow");
        std::span<const uint8_t> out{p_, len};
        p_ += len;
        return out;
    }

    std::string_view
    getString()
    {
        auto s = getBytes();
        return {reinterpret_cast<const char*>(s.data()), s.size()};
    }

 private:
    const uint8_t* p_;
    const uint8_t* end_;
};

/** writeArg overload set used by txn::run's pack expansion. */
inline void
writeArg(ArgWriter& w, std::string_view s)
{
    w.putBytes(s.data(), s.size());
}

inline void
writeArg(ArgWriter& w, std::span<const uint8_t> s)
{
    w.putBytes(s.data(), s.size());
}

template <typename T>
void
writeArg(ArgWriter& w, const T& v)
{
    w.put(v);
}

}  // namespace cnvm::txn

#endif  // CNVM_TXN_ARGS_H
