/**
 * @file
 * The per-transaction handle passed to txfuncs.
 *
 * All persistent-memory accesses inside a transaction go through this
 * object; it forwards to the active Runtime's interposition callbacks
 * (which the Clobber-NVM compiler would have inserted automatically).
 */
#ifndef CNVM_TXN_TX_H
#define CNVM_TXN_TX_H

#include <cstring>
#include <type_traits>

#include "nvm/pptr.h"
#include "txn/runtime.h"

namespace cnvm::txn {

class Tx {
 public:
    Tx(Runtime& rt, unsigned tid) : rt_(rt), tid_(tid) {}

    Runtime& runtime() { return rt_; }
    unsigned tid() const { return tid_; }
    nvm::Pool& pool() { return rt_.pool(); }

    /** Interposed load of a field. */
    template <typename T>
    T
    ld(const T& src)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T out;
        rt_.load(tid_, &out, &src, sizeof(T));
        return out;
    }

    /** Interposed store of a field. */
    template <typename T>
    void
    st(T& dst, const T& v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        rt_.store(tid_, &dst, &v, sizeof(T));
    }

    void
    ldBytes(void* dst, const void* src, size_t n)
    {
        rt_.load(tid_, dst, src, n);
    }

    void
    stBytes(void* dst, const void* src, size_t n)
    {
        rt_.store(tid_, dst, src, n);
    }

    /** pmalloc: allocate `n` payload bytes. @return pool offset. */
    uint64_t
    pmallocOff(size_t n)
    {
        return rt_.alloc(tid_, n);
    }

    /** Allocate and zero a T (plus `extra` trailing bytes). */
    template <typename T>
    nvm::PPtr<T>
    pnew(size_t extra = 0)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        size_t n = sizeof(T) + extra;
        uint64_t off = rt_.alloc(tid_, n);
        // Fresh memory is not a transaction input: the runtimes treat
        // this zeroing as allocator initialization, not a logged store.
        rt_.initZero(tid_, pool().at(off), n);
        return nvm::PPtr<T>(off);
    }

    /** Transactional free (applied at commit). */
    void
    pfree(uint64_t payloadOff)
    {
        rt_.dealloc(tid_, payloadOff);
    }

    template <typename T>
    void
    pfree(nvm::PPtr<T> p)
    {
        rt_.dealloc(tid_, p.raw());
    }

    /** Inner-lock notification (Atlas logs these). */
    void lockEvent() { rt_.onLock(tid_); }

    /** True during recovery re-execution: volatile out-pointer args
     *  are dangling and must not be written (see Runtime::recovering). */
    bool recovering() const { return rt_.recovering(); }

 private:
    Runtime& rt_;
    unsigned tid_;
};

}  // namespace cnvm::txn

#endif  // CNVM_TXN_TX_H
