#include "txn/engine.h"

#include "nvm/pool.h"
#include "sim/context.h"

namespace cnvm::txn {

namespace {
thread_local unsigned tlsTid = 0;
}  // namespace

void
setThreadTid(unsigned tid)
{
    // Validate against the ambient pool when there is one: a tid at
    // or past maxThreads would index past the slot array and corrupt
    // a neighbor slot's log area on the next txBegin.
    if (auto* p = nvm::Pool::current();
        p != nullptr && tid >= p->maxThreads())
        throw SlotRangeError(tid, p->maxThreads());
    tlsTid = tid;
}

unsigned
currentTid()
{
    if (auto* c = sim::cur())
        return c->tid();
    return tlsTid;
}

void
Engine::bindThisThread(unsigned tid) const
{
    unsigned slots = rt.pool().maxThreads();
    if (tid >= slots)
        throw SlotRangeError(tid, slots);
    tlsTid = tid;
}

}  // namespace cnvm::txn
