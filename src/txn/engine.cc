#include "txn/engine.h"

#include "sim/context.h"

namespace cnvm::txn {

namespace {
thread_local unsigned tlsTid = 0;
}  // namespace

void
setThreadTid(unsigned tid)
{
    tlsTid = tid;
}

unsigned
currentTid()
{
    if (auto* c = sim::cur())
        return c->tid();
    return tlsTid;
}

}  // namespace cnvm::txn
