#include "txn/engine.h"

#include <algorithm>

#include "alloc/pm_allocator.h"
#include "nvm/pool.h"
#include "sim/context.h"
#include "txn/lazy_recovery.h"

namespace cnvm::txn {

namespace {
thread_local unsigned tlsTid = 0;
}  // namespace

void
setThreadTid(unsigned tid)
{
    // Validate against the ambient pool when there is one: a tid at
    // or past maxThreads would index past the slot array and corrupt
    // a neighbor slot's log area on the next txBegin.
    if (auto* p = nvm::Pool::current();
        p != nullptr && tid >= p->maxThreads())
        throw SlotRangeError(tid, p->maxThreads());
    tlsTid = tid;
}

unsigned
currentTid()
{
    if (auto* c = sim::cur())
        return c->tid();
    return tlsTid;
}

void
Engine::bindThisThread(unsigned tid) const
{
    unsigned slots = rt.pool().maxThreads();
    if (tid >= slots)
        throw SlotRangeError(tid, slots);
    tlsTid = tid;
}

RecoveryReport
Engine::recover(RecoveryMode mode, bool backgroundHealer)
{
    // A still-armed previous session ends here: crash-during-recovery
    // retries re-triage from scratch (healing is idempotent).
    lazy_.reset();
    if (mode == RecoveryMode::lazy) {
        RecoveryIndex idx = rt.recoveryTriage();
        if (idx.supportsLazy) {
            // Arm the incremental heap rebuild BEFORE registering the
            // holds: beginLazyRebuild discards all volatile allocator
            // state, holds included.
            if (idx.heapPending)
                rt.heap().beginLazyRebuild();
            for (const HoldRange& h : idx.holds)
                rt.heap().addHold(h.tid, h.off, h.bytes);
            auto lz =
                std::make_shared<LazyRecovery>(rt, std::move(idx));
            lastRecovery = RecoveryReport{};
            lastRecovery.slotsScanned = rt.pool().maxThreads();
            lazy_ = lz;
            if (backgroundHealer)
                lz->startHealer();
            return lastRecovery;
        }
    }
    lastRecovery = rt.recover();
    return lastRecovery;
}

void
Engine::admitSlotSlow(unsigned tid)
{
    // Copy the shared_ptr: finishRecovery clears lazy_ only after the
    // caller quiesced, but the session must stay alive across this
    // call regardless.
    if (auto lz = lazy_)
        lz->admit(tid);
}

RecoveryReport
Engine::finishRecovery()
{
    auto lz = lazy_;
    if (!lz)
        return lastRecovery;
    lz->stopHealer();
    lz->drain();
    RecoveryReport total;
    total.slotsScanned =
        std::max<uint64_t>(lastRecovery.slotsScanned,
                           rt.pool().maxThreads());
    total.merge(lz->report());
    lastRecovery = total;
    lazy_.reset();
    return lastRecovery;
}

void
Engine::drainRecovery()
{
    if (auto lz = lazy_) {
        lz->stopHealer();
        lz->drain();
    }
}

bool
Engine::recoveryActive() const
{
    auto lz = lazy_;
    return lz != nullptr && !lz->done();
}

uint64_t
Engine::recoveryPending() const
{
    auto lz = lazy_;
    return lz ? lz->pendingCount() : 0;
}

uint64_t
Engine::recoveryHealed() const
{
    auto lz = lazy_;
    return lz ? lz->healedCount() : 0;
}

bool
Engine::recoveryHealerDied() const
{
    auto lz = lazy_;
    return lz != nullptr && lz->healerDied();
}

RecoveryReport
Engine::recoveryReport() const
{
    auto lz = lazy_;
    if (!lz)
        return lastRecovery;
    RecoveryReport total = lastRecovery;
    total.merge(lz->report());
    return total;
}

}  // namespace cnvm::txn
