/**
 * @file
 * The failure-atomicity runtime interface.
 *
 * Every logging protocol in the repository — no-log, PMDK-style hybrid
 * undo, Mnemosyne-style redo, Clobber-NVM, Atlas, iDO — implements this
 * interface. Data structures and applications are written once against
 * it; swapping the runtime swaps the protocol (this is how all of the
 * paper's comparison figures are produced).
 *
 * store()/load() are the interposition points the Clobber-NVM compiler
 * would insert at every memory access inside a transaction; alloc()/
 * dealloc() are the pmalloc callbacks; txBegin()/txCommit() are the
 * txbegin/txend macros.
 */
#ifndef CNVM_TXN_RUNTIME_H
#define CNVM_TXN_RUNTIME_H

#include <cstdint>
#include <span>
#include <stdexcept>

#include "txn/recovery_index.h"
#include "txn/recovery_report.h"

namespace cnvm::alloc {
class PmAllocator;
}
namespace cnvm::nvm {
class Pool;
}

namespace cnvm::txn {

/** Stable identifier of a registered transaction function. */
using FuncId = uint32_t;

/**
 * Thrown by a runtime's log append when the transaction outgrows its
 * per-thread log area. Recoverable: txn::run catches it, aborts just
 * the offending transaction through Runtime::txAbort (rolling back
 * its in-place writes and releasing its reservations), and rethrows
 * so the caller learns the transaction did not happen. The slot is
 * reusable immediately afterwards.
 */
class LogOverflowError : public std::runtime_error {
 public:
    LogOverflowError(size_t needBytes, size_t capacityBytes)
        : std::runtime_error(
              "transaction log overflow: transaction too large for "
              "the per-thread log area"),
          need_(needBytes), capacity_(capacityBytes)
    {
    }

    /** Log bytes the transaction would have needed. */
    size_t need() const { return need_; }
    /** The slot's log-area capacity. */
    size_t capacity() const { return capacity_; }

 private:
    size_t need_;
    size_t capacity_;
};

/** Stable identifiers recorded in the pool header. */
enum class RuntimeKind : uint32_t {
    noLog = 1,
    undo = 2,       ///< PMDK model
    redo = 3,       ///< Mnemosyne model
    clobber = 4,
    atlas = 5,
    ido = 6,
};

class Runtime {
 public:
    virtual ~Runtime() = default;

    virtual const char* name() const = 0;
    virtual RuntimeKind kind() const = 0;
    virtual nvm::Pool& pool() = 0;
    virtual alloc::PmAllocator& heap() = 0;

    /**
     * Start a transaction on slot `tid`. `args` is the serialized
     * argument blob; recovery-via-resumption runtimes persist it
     * (the v_log), roll-back runtimes keep it volatile.
     */
    virtual void txBegin(unsigned tid, FuncId fid,
                         std::span<const uint8_t> args) = 0;

    /** Commit the transaction on slot `tid`. */
    virtual void txCommit(unsigned tid) = 0;

    /**
     * Abort the uncommitted transaction on slot `tid`: undo its
     * in-place writes (to the protocol's ability — clobber-family
     * runtimes cannot revert blind stores to pre-existing blocks,
     * the same caveat their recovery documents), release its
     * allocation reservations, and return the slot to idle. No-op
     * when no transaction is in flight. Called by txn::run on
     * LogOverflowError; not a general user-facing abort API.
     */
    virtual void txAbort(unsigned /* tid */) {}

    /** The argument blob the txfunc should read (see args.h). */
    virtual std::span<const uint8_t> argBlob(unsigned tid) const = 0;

    /** Interposed store of `n` bytes to NVM address `dst`. */
    virtual void store(unsigned tid, void* dst, const void* src,
                       size_t n) = 0;

    /** Interposed load of `n` bytes from NVM address `src`. */
    virtual void load(unsigned tid, void* dst, const void* src,
                      size_t n) = 0;

    /**
     * Zero-initialize freshly allocated memory. Semantically the
     * allocator's TX_ZNEW zeroing: it is not undo-logged (the memory
     * is not a transaction input) but still reaches the cache model
     * (and, for redo, the write set).
     */
    virtual void initZero(unsigned tid, void* dst, size_t n) = 0;

    /** Transactional pmalloc. @return payload pool offset. */
    virtual uint64_t alloc(unsigned tid, size_t n) = 0;

    /** Transactional free (applied at commit). */
    virtual void dealloc(unsigned tid, uint64_t payloadOff) = 0;

    /**
     * Notification that the transaction acquired or released an inner
     * lock. Only Atlas (which infers and orders FASEs from lock
     * operations) persists anything here.
     */
    virtual void onLock(unsigned /* tid */) {}

    /**
     * Repair the pool after a crash: roll back or re-execute every
     * interrupted transaction, then rebuild volatile allocator state.
     * Corrupt media is salvaged, not aborted on: damaged log entries
     * are dropped with protocol-correct semantics and poisoned
     * allocator blocks quarantined. The returned report records every
     * salvage action (all existing callers may ignore it; a clean
     * crash on healthy media yields a report with clean() == true).
     */
    virtual RecoveryReport recover() = 0;

    /**
     * Bounded triage pass for lazy (instant-restart) recovery: scan
     * the per-slot descriptors just enough to classify each slot and
     * collect the heap ranges that must stay pinned until their slot
     * heals. Idempotent — interrupt it anywhere and a re-run rebuilds
     * the identical index from the same on-media state. The default
     * (supportsLazy == false) makes Engine::recover fall back to the
     * stop-the-world recover() above.
     */
    virtual RecoveryIndex recoveryTriage() { return {}; }

    /**
     * Heal one triaged slot: the per-entry slice of recover() — roll
     * back, roll forward, or re-execute exactly that slot, salvaging
     * damage with the same declarations full recovery would make.
     * Re-derives the slot's state from media (the entry's class is
     * advisory), so healing a slot twice, or healing after a crash
     * that landed mid-heal, is idempotent.
     */
    virtual RecoveryReport healSlot(const IndexEntry& /* entry */)
    {
        return {};
    }

    /**
     * Final heap reconciliation for lazy recovery: the full allocator
     * rebuild (quarantine audit included), run once after every index
     * entry has healed. Safe to run while foreground transactions are
     * in flight — live reservations are preserved.
     */
    virtual RecoveryReport healHeap() { return {}; }

    /**
     * True while recover() is re-executing an interrupted txfunc
     * (recovery-via-resumption runtimes only). Volatile out-pointer
     * arguments baked into the v_log point into stack frames of the
     * crashed process; txfuncs must not dereference them when this is
     * set (the caller that supplied them no longer exists).
     */
    virtual bool recovering() const { return false; }
};

}  // namespace cnvm::txn

#endif  // CNVM_TXN_RUNTIME_H
