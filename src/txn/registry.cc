#include "txn/registry.h"

#include <mutex>
#include <unordered_map>

#include "common/error.h"
#include "common/rand.h"

namespace cnvm::txn {

namespace {

struct Entry {
    std::string name;
    TxFn fn;
};

struct Registry {
    std::mutex mu;
    std::unordered_map<FuncId, Entry> map;
};

Registry&
registry()
{
    static Registry r;
    return r;
}

}  // namespace

FuncId
registerTxFunc(const std::string& name, TxFn fn)
{
    auto fid = static_cast<FuncId>(fnv1a(name.data(), name.size()));
    if (fid == 0)
        fid = 1;
    auto& r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    auto it = r.map.find(fid);
    if (it != r.map.end()) {
        if (it->second.name != name)
            fatal("txfunc id collision: " + name + " vs " +
                  it->second.name);
        CNVM_CHECK(it->second.fn == fn,
                   "txfunc re-registered with a different body");
        return fid;
    }
    r.map.emplace(fid, Entry{name, fn});
    return fid;
}

TxFn
lookupTxFunc(FuncId fid)
{
    auto& r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    auto it = r.map.find(fid);
    if (it == r.map.end())
        fatal(strprintf("unknown txfunc id 0x%08x "
                        "(was it registered before recovery?)", fid));
    return it->second.fn;
}

const char*
txFuncName(FuncId fid)
{
    auto& r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    auto it = r.map.find(fid);
    return it == r.map.end() ? "?" : it->second.name.c_str();
}

}  // namespace cnvm::txn
