/**
 * @file
 * Engine: the runtime plus thread-slot assignment — what data-structure
 * wrappers hold onto.
 *
 * Slot assignment: under the logical-thread executor the slot is the
 * logical thread id; under real OS threads it is a thread-local id set
 * with setThreadTid() (defaults to 0 for single-threaded callers).
 * Slot ids index the pool's per-thread log areas, so an out-of-range
 * id would silently scribble over another slot's log: setThreadTid
 * validates against the ambient pool and throws SlotRangeError, and
 * Engine::bindThisThread validates against the engine's own pool
 * (authoritative in multi-pool processes).
 */
#ifndef CNVM_TXN_ENGINE_H
#define CNVM_TXN_ENGINE_H

#include <memory>

#include "common/error.h"
#include "txn/runtime.h"

namespace cnvm::txn {

class LazyRecovery;

/**
 * A thread tried to bind a runtime slot the pool does not have.
 * Typed (rather than a CNVM_CHECK abort) so servers can refuse a
 * misconfigured worker count without dying.
 */
class SlotRangeError : public FatalError {
 public:
    SlotRangeError(unsigned tid, unsigned slots)
        : FatalError(strprintf(
              "thread slot %u out of range: the pool has %u runtime "
              "slots (PoolConfig::maxThreads)",
              tid, slots)),
          tid_(tid), slots_(slots)
    {
    }

    unsigned tid() const { return tid_; }
    unsigned slots() const { return slots_; }

 private:
    unsigned tid_;
    unsigned slots_;
};

/**
 * Assign the calling OS thread's runtime slot (real-thread mode).
 * @throws SlotRangeError if a pool is current and `tid` is not a
 *         valid slot of it.
 */
void setThreadTid(unsigned tid);

/** The calling context's runtime slot. */
unsigned currentTid();

/**
 * Hook notified after every txCommit issued through txn::run. The
 * durability validator (src/analysis/durability.h) implements this to
 * audit the cache-model state at each commit point; when no observer
 * is installed the commit path pays one predictable null check.
 */
class CommitObserver {
 public:
    virtual ~CommitObserver() = default;
    virtual void afterCommit(unsigned tid) = 0;
};

struct Engine {
    explicit Engine(Runtime& runtime, CommitObserver* obs = nullptr)
        : rt(runtime), commitObserver(obs) {}

    Runtime& rt;
    CommitObserver* commitObserver = nullptr;

    /** Result of the most recent recover() issued through this engine
     *  (default-constructed until one runs). */
    RecoveryReport lastRecovery;

    /**
     * Run recovery and keep its report in lastRecovery. The mode comes
     * from CNVM_RECOVERY (full unless set to "lazy"); see the
     * two-argument overload for what lazy returns.
     */
    RecoveryReport
    recover()
    {
        return recover(recoveryModeFromEnv(), true);
    }

    /**
     * Run recovery in `mode`.
     *
     * Full mode (or a runtime whose triage declines lazy support) is
     * the classic stop-the-world Runtime::recover().
     *
     * Lazy mode runs the bounded triage pass, arms the allocator's
     * incremental rebuild, pins triaged hold ranges, and returns
     * immediately — transactions are admitted from that moment on.
     * Pending slots heal on first touch (admitSlot) or from the
     * background salvage thread (`backgroundHealer`; tests that want
     * deterministic heal ordering pass false and drive admitSlot /
     * finishRecovery themselves). The returned report covers only the
     * triage pass; the cumulative report accretes in the session and
     * lands in lastRecovery at finishRecovery().
     */
    RecoveryReport recover(RecoveryMode mode,
                           bool backgroundHealer = true);

    /**
     * First-touch admission gate, called by txn::run before every
     * txBegin (and by server workers before serving). A single
     * pointer test outside recovery; during lazy recovery it blocks
     * until the slot's pending entry (if any) has healed.
     */
    void
    admitSlot(unsigned tid)
    {
        if (lazy_) [[unlikely]]
            admitSlotSlow(tid);
    }

    /**
     * Complete an in-flight lazy recovery: stop the healer, heal
     * everything still pending on the calling thread, fold the
     * cumulative report into lastRecovery, and end the session.
     * Caller must quiesce foreground transactions first (the session
     * pointer is cleared without synchronization). No-op when no lazy
     * session is active.
     */
    RecoveryReport finishRecovery();

    /**
     * Heal everything still pending on the calling thread without
     * ending the session (no quiesce needed: the session pointer is
     * not touched, so concurrent admitSlot calls stay safe). Used
     * when the background healer died mid-recovery.
     */
    void drainRecovery();

    /** Is a lazy session active with work still pending? */
    bool recoveryActive() const;

    /** Heal work items (pending slots + heap pass) not yet / already
     *  healed in the active lazy session (0 / 0 when none). */
    uint64_t recoveryPending() const;
    uint64_t recoveryHealed() const;

    /** Did the active session's background healer die? */
    bool recoveryHealerDied() const;

    /** Cumulative report so far: lastRecovery merged with the active
     *  session's per-entry heals. */
    RecoveryReport recoveryReport() const;

    unsigned tid() const { return currentTid(); }

    /**
     * Bind the calling OS thread to slot `tid`, validated against
     * THIS engine's pool (server workers use this; the free-function
     * setThreadTid can only check the ambient Pool::current()).
     * @throws SlotRangeError on an out-of-range slot.
     */
    void bindThisThread(unsigned tid) const;

 private:
    void admitSlotSlow(unsigned tid);

    /** Active lazy-recovery session (null outside one). shared_ptr so
     *  engine copies — tests and benches pass Engine by value — share
     *  the one session. */
    std::shared_ptr<LazyRecovery> lazy_;
};

}  // namespace cnvm::txn

#endif  // CNVM_TXN_ENGINE_H
