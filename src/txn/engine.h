/**
 * @file
 * Engine: the runtime plus thread-slot assignment — what data-structure
 * wrappers hold onto.
 *
 * Slot assignment: under the logical-thread executor the slot is the
 * logical thread id; under real OS threads it is a thread-local id set
 * with setThreadTid() (defaults to 0 for single-threaded callers).
 */
#ifndef CNVM_TXN_ENGINE_H
#define CNVM_TXN_ENGINE_H

#include "txn/runtime.h"

namespace cnvm::txn {

/** Assign the calling OS thread's runtime slot (real-thread mode). */
void setThreadTid(unsigned tid);

/** The calling context's runtime slot. */
unsigned currentTid();

/**
 * Hook notified after every txCommit issued through txn::run. The
 * durability validator (src/analysis/durability.h) implements this to
 * audit the cache-model state at each commit point; when no observer
 * is installed the commit path pays one predictable null check.
 */
class CommitObserver {
 public:
    virtual ~CommitObserver() = default;
    virtual void afterCommit(unsigned tid) = 0;
};

struct Engine {
    explicit Engine(Runtime& runtime, CommitObserver* obs = nullptr)
        : rt(runtime), commitObserver(obs) {}

    Runtime& rt;
    CommitObserver* commitObserver = nullptr;

    /** Result of the most recent recover() issued through this engine
     *  (default-constructed until one runs). */
    RecoveryReport lastRecovery;

    /** Run recovery and keep its report in lastRecovery. */
    RecoveryReport
    recover()
    {
        lastRecovery = rt.recover();
        return lastRecovery;
    }

    unsigned tid() const { return currentTid(); }
};

}  // namespace cnvm::txn

#endif  // CNVM_TXN_ENGINE_H
