/**
 * @file
 * Engine: the runtime plus thread-slot assignment — what data-structure
 * wrappers hold onto.
 *
 * Slot assignment: under the logical-thread executor the slot is the
 * logical thread id; under real OS threads it is a thread-local id set
 * with setThreadTid() (defaults to 0 for single-threaded callers).
 * Slot ids index the pool's per-thread log areas, so an out-of-range
 * id would silently scribble over another slot's log: setThreadTid
 * validates against the ambient pool and throws SlotRangeError, and
 * Engine::bindThisThread validates against the engine's own pool
 * (authoritative in multi-pool processes).
 */
#ifndef CNVM_TXN_ENGINE_H
#define CNVM_TXN_ENGINE_H

#include "common/error.h"
#include "txn/runtime.h"

namespace cnvm::txn {

/**
 * A thread tried to bind a runtime slot the pool does not have.
 * Typed (rather than a CNVM_CHECK abort) so servers can refuse a
 * misconfigured worker count without dying.
 */
class SlotRangeError : public FatalError {
 public:
    SlotRangeError(unsigned tid, unsigned slots)
        : FatalError(strprintf(
              "thread slot %u out of range: the pool has %u runtime "
              "slots (PoolConfig::maxThreads)",
              tid, slots)),
          tid_(tid), slots_(slots)
    {
    }

    unsigned tid() const { return tid_; }
    unsigned slots() const { return slots_; }

 private:
    unsigned tid_;
    unsigned slots_;
};

/**
 * Assign the calling OS thread's runtime slot (real-thread mode).
 * @throws SlotRangeError if a pool is current and `tid` is not a
 *         valid slot of it.
 */
void setThreadTid(unsigned tid);

/** The calling context's runtime slot. */
unsigned currentTid();

/**
 * Hook notified after every txCommit issued through txn::run. The
 * durability validator (src/analysis/durability.h) implements this to
 * audit the cache-model state at each commit point; when no observer
 * is installed the commit path pays one predictable null check.
 */
class CommitObserver {
 public:
    virtual ~CommitObserver() = default;
    virtual void afterCommit(unsigned tid) = 0;
};

struct Engine {
    explicit Engine(Runtime& runtime, CommitObserver* obs = nullptr)
        : rt(runtime), commitObserver(obs) {}

    Runtime& rt;
    CommitObserver* commitObserver = nullptr;

    /** Result of the most recent recover() issued through this engine
     *  (default-constructed until one runs). */
    RecoveryReport lastRecovery;

    /** Run recovery and keep its report in lastRecovery. */
    RecoveryReport
    recover()
    {
        lastRecovery = rt.recover();
        return lastRecovery;
    }

    unsigned tid() const { return currentTid(); }

    /**
     * Bind the calling OS thread to slot `tid`, validated against
     * THIS engine's pool (server workers use this; the free-function
     * setThreadTid can only check the ambient Pool::current()).
     * @throws SlotRangeError on an out-of-range slot.
     */
    void bindThisThread(unsigned tid) const;
};

}  // namespace cnvm::txn

#endif  // CNVM_TXN_ENGINE_H
