/**
 * @file
 * Coordinator for lazy (instant-restart) recovery.
 *
 * Engine::recover(RecoveryMode::lazy) runs the runtime's bounded
 * triage pass and parks the resulting RecoveryIndex here. Foreground
 * transactions are admitted immediately; each pending slot heals
 * exactly once, either on *first touch* (a transaction wants the slot:
 * Engine::admitSlot blocks until its entry heals) or from the
 * background salvage thread. The heap's full reconciliation
 * (Runtime::healHeap) runs once, after every entry has healed.
 *
 * Concurrency contract:
 *  - each entry carries a once-latch (kPending -> kHealing -> kHealed);
 *    losers of the latch race wait on the winner;
 *  - the actual Runtime::healSlot / healHeap calls are additionally
 *    serialized through one heal mutex — the runtime's RecoverySession
 *    machinery (the report_ pointer) is not reentrant;
 *  - a heal that throws (the torture harness's CrashInjected) returns
 *    the entry to kPending: healing is idempotent, so the retry — or a
 *    fresh triage after a re-tear — simply runs it again;
 *  - per-entry reports merge into one cumulative RecoveryReport
 *    (RecoveryReport::merge), and the owning slot's allocator holds
 *    are released the moment its entry heals.
 */
#ifndef CNVM_TXN_LAZY_RECOVERY_H
#define CNVM_TXN_LAZY_RECOVERY_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "txn/recovery_index.h"
#include "txn/recovery_report.h"
#include "txn/runtime.h"

namespace cnvm::txn {

class LazyRecovery {
 public:
    /** Take ownership of a triage index. Does not start the healer. */
    LazyRecovery(Runtime& rt, RecoveryIndex idx);

    /** Stops and joins the background healer. */
    ~LazyRecovery();

    LazyRecovery(const LazyRecovery&) = delete;
    LazyRecovery& operator=(const LazyRecovery&) = delete;

    /**
     * First-touch gate: block until slot `tid`'s pending entry (if it
     * has one) is healed, healing it on the calling thread when the
     * once-latch is won. Cheap for slots without an entry (no lock).
     * Rethrows the heal's exception (entry returns to pending).
     */
    void admit(unsigned tid);

    /**
     * Heal everything still pending — entries, then the heap — on the
     * calling thread, waiting out concurrent healers. On return the
     * session is fully healed (unless a heal threw, which propagates).
     */
    void drain();

    /** Spawn the background salvage thread (at most one). */
    void startHealer();

    /** Cooperatively stop and join the healer (idempotent). */
    void stopHealer();

    /** All entries healed and the heap reconciled? */
    bool done() const;

    /** Heal work items (entries + heap pass) not yet done / done. */
    uint64_t pendingCount() const;
    uint64_t healedCount() const;

    /** Did the background healer die on an exception? (drain() can
     *  still finish the job.) */
    bool healerDied() const;

    /** Snapshot of the cumulative (merged) report so far. */
    RecoveryReport report() const;

    const RecoveryIndex& index() const { return idx_; }

 private:
    enum State : uint8_t { kPending = 0, kHealing = 1, kHealed = 2 };

    /** Heal entry `i`, waiting out a concurrent healer. `lk` holds
     *  mu_ on entry and on exit (released across the heal itself). */
    void healEntryLocked(size_t i, std::unique_lock<std::mutex>& lk);

    /** Run the heap pass if pending (same locking contract). */
    void healHeapLocked(std::unique_lock<std::mutex>& lk);

    void healerLoop();

    Runtime& rt_;
    RecoveryIndex idx_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<uint8_t> state_;     ///< per-entry once-latch
    std::vector<int32_t> byTid_;     ///< tid -> entry index (-1: none)
    size_t healedEntries_ = 0;
    bool heapHealing_ = false;
    bool heapHealed_ = false;
    RecoveryReport report_;

    /** Serializes the actual Runtime heal calls (report_ pointer). */
    std::mutex healMu_;

    std::thread healer_;
    bool healerStarted_ = false;
    bool stop_ = false;
    bool healerDied_ = false;
};

}  // namespace cnvm::txn

#endif  // CNVM_TXN_LAZY_RECOVERY_H
