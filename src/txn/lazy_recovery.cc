#include "txn/lazy_recovery.h"

#include <algorithm>

#include "alloc/pm_allocator.h"

namespace cnvm::txn {

LazyRecovery::LazyRecovery(Runtime& rt, RecoveryIndex idx)
    : rt_(rt), idx_(std::move(idx)),
      state_(idx_.entries.size(), kPending)
{
    unsigned maxTid = 0;
    for (const IndexEntry& e : idx_.entries)
        maxTid = std::max(maxTid, e.tid);
    byTid_.assign(idx_.entries.empty() ? 0 : maxTid + 1, -1);
    for (size_t i = 0; i < idx_.entries.size(); i++)
        byTid_[idx_.entries[i].tid] = static_cast<int32_t>(i);
    if (!idx_.heapPending)
        heapHealed_ = true;
}

LazyRecovery::~LazyRecovery()
{
    stopHealer();
}

void
LazyRecovery::healEntryLocked(size_t i, std::unique_lock<std::mutex>& lk)
{
    while (state_[i] == kHealing)
        cv_.wait(lk);
    if (state_[i] == kHealed)
        return;
    state_[i] = kHealing;
    lk.unlock();
    RecoveryReport r;
    try {
        std::lock_guard<std::mutex> heal(healMu_);
        r = rt_.healSlot(idx_.entries[i]);
    } catch (...) {
        // Idempotent retry contract: the entry goes back to pending
        // so the next toucher (or a fresh triage after a re-tear)
        // runs the heal again.
        lk.lock();
        state_[i] = kPending;
        cv_.notify_all();
        throw;
    }
    lk.lock();
    state_[i] = kHealed;
    healedEntries_++;
    report_.merge(r);
    rt_.heap().releaseHolds(idx_.entries[i].tid);
    cv_.notify_all();
}

void
LazyRecovery::healHeapLocked(std::unique_lock<std::mutex>& lk)
{
    while (heapHealing_)
        cv_.wait(lk);
    if (heapHealed_)
        return;
    heapHealing_ = true;
    lk.unlock();
    RecoveryReport r;
    try {
        std::lock_guard<std::mutex> heal(healMu_);
        r = rt_.healHeap();
    } catch (...) {
        lk.lock();
        heapHealing_ = false;
        cv_.notify_all();
        throw;
    }
    lk.lock();
    heapHealing_ = false;
    heapHealed_ = true;
    report_.merge(r);
    cv_.notify_all();
}

void
LazyRecovery::admit(unsigned tid)
{
    if (tid >= byTid_.size() || byTid_[tid] < 0)
        return;  // no pending entry for this slot
    auto i = static_cast<size_t>(byTid_[tid]);
    std::unique_lock<std::mutex> lk(mu_);
    if (state_[i] == kHealed)
        return;
    healEntryLocked(i, lk);
}

void
LazyRecovery::drain()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (size_t i = 0; i < state_.size(); i++)
        healEntryLocked(i, lk);
    healHeapLocked(lk);
}

void
LazyRecovery::healerLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_) {
        size_t i = 0;
        for (; i < state_.size(); i++) {
            if (state_[i] == kPending)
                break;
        }
        if (i < state_.size()) {
            try {
                healEntryLocked(i, lk);
            } catch (...) {
                healerDied_ = true;
                cv_.notify_all();
                return;
            }
            continue;
        }
        if (healedEntries_ == state_.size()) {
            if (!heapHealed_ && !heapHealing_) {
                try {
                    healHeapLocked(lk);
                } catch (...) {
                    healerDied_ = true;
                    cv_.notify_all();
                    return;
                }
                continue;
            }
            if (heapHealed_)
                return;  // fully healed
        }
        // Someone else is mid-heal (entry or heap): their finish — or
        // a throw returning work to pending — wakes us.
        cv_.wait(lk);
    }
}

void
LazyRecovery::startHealer()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (healerStarted_)
        return;
    healerStarted_ = true;
    stop_ = false;
    healer_ = std::thread([this] { healerLoop(); });
}

void
LazyRecovery::stopHealer()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
        cv_.notify_all();
    }
    if (healer_.joinable())
        healer_.join();
    std::lock_guard<std::mutex> lk(mu_);
    healerStarted_ = false;
}

bool
LazyRecovery::done() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return healedEntries_ == state_.size() && heapHealed_;
}

uint64_t
LazyRecovery::pendingCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t n = state_.size() - healedEntries_;
    if (!heapHealed_)
        n++;
    return n;
}

uint64_t
LazyRecovery::healedCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t n = healedEntries_;
    if (heapHealed_ && idx_.heapPending)
        n++;
    return n;
}

bool
LazyRecovery::healerDied() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return healerDied_;
}

RecoveryReport
LazyRecovery::report() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return report_;
}

}  // namespace cnvm::txn
