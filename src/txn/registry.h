/**
 * @file
 * Registry of transaction functions (txfuncs).
 *
 * Recovery-via-resumption needs "a convenient handle to initiate
 * reexecution" (paper §4.1): the v_log records the txfunc's name and
 * arguments, and recovery re-invokes it. FuncIds are derived from the
 * function name by hashing, so they are stable across processes and
 * registration orders.
 */
#ifndef CNVM_TXN_REGISTRY_H
#define CNVM_TXN_REGISTRY_H

#include <string>

#include "txn/args.h"
#include "txn/runtime.h"

namespace cnvm::txn {

class Tx;

/** A transaction body: reads args, performs interposed accesses. */
using TxFn = void (*)(Tx&, ArgReader&);

/**
 * Register `fn` under `name`.
 * @return the stable FuncId (hash of the name).
 * Registering two different functions under colliding ids is fatal.
 */
FuncId registerTxFunc(const std::string& name, TxFn fn);

/** Look up a registered function; fatal if unknown. */
TxFn lookupTxFunc(FuncId fid);

/** Name of a registered function ("?" if unknown). */
const char* txFuncName(FuncId fid);

}  // namespace cnvm::txn

#endif  // CNVM_TXN_REGISTRY_H
