#include "txn/recovery_report.h"

#include <algorithm>

#include "common/error.h"

namespace cnvm::txn {

const char*
slotActionName(SlotAction a)
{
    switch (a) {
        case SlotAction::none: return "none";
        case SlotAction::rolledBack: return "rolled-back";
        case SlotAction::rolledForward: return "rolled-forward";
        case SlotAction::reexecuted: return "re-executed";
        case SlotAction::intentsCompleted: return "intents-completed";
        case SlotAction::intentsReverted: return "intents-reverted";
        case SlotAction::salvageAborted: return "salvage-aborted";
    }
    return "?";
}

void
RecoveryReport::add(SlotRecovery s)
{
    logEntriesApplied += s.entriesApplied;
    logEntriesDropped += s.entriesDropped;
    if (s.action == SlotAction::salvageAborted)
        salvageAborted++;
    slots.push_back(std::move(s));
}

void
RecoveryReport::merge(const RecoveryReport& other)
{
    slotsScanned = std::max(slotsScanned, other.slotsScanned);
    logEntriesApplied += other.logEntriesApplied;
    logEntriesDropped += other.logEntriesDropped;
    poisonedReads += other.poisonedReads;
    transientRetries += other.transientRetries;
    quarantinedBlocks += other.quarantinedBlocks;
    quarantinedBytes += other.quarantinedBytes;
    intentTablesLost += other.intentTablesLost;
    salvageAborted += other.salvageAborted;
    slots.insert(slots.end(), other.slots.begin(), other.slots.end());
}

std::string
RecoveryReport::toString() const
{
    std::string out = strprintf(
        "recovery: %llu slots scanned, %llu entries applied, "
        "%llu dropped, %llu salvage-aborted\n"
        "  media: %llu poisoned reads, %llu transient retries, "
        "%llu intent tables lost\n"
        "  quarantine: %llu blocks (%llu bytes)\n",
        static_cast<unsigned long long>(slotsScanned),
        static_cast<unsigned long long>(logEntriesApplied),
        static_cast<unsigned long long>(logEntriesDropped),
        static_cast<unsigned long long>(salvageAborted),
        static_cast<unsigned long long>(poisonedReads),
        static_cast<unsigned long long>(transientRetries),
        static_cast<unsigned long long>(intentTablesLost),
        static_cast<unsigned long long>(quarantinedBlocks),
        static_cast<unsigned long long>(quarantinedBytes));
    for (const SlotRecovery& s : slots) {
        out += strprintf("  slot %u: %s, %llu applied, %llu dropped%s%s\n",
                         s.tid, slotActionName(s.action),
                         static_cast<unsigned long long>(s.entriesApplied),
                         static_cast<unsigned long long>(s.entriesDropped),
                         s.note.empty() ? "" : " -- ",
                         s.note.c_str());
    }
    return out;
}

}  // namespace cnvm::txn
