/**
 * @file
 * txn::run — execute a registered txfunc failure-atomically.
 *
 * Equivalent to the paper's pattern (Figure 2a): the caller acquires
 * its locks, run() marks the transaction begun (persisting the v_log
 * entry for recovery-via-resumption runtimes), invokes the txfunc with
 * its serialized arguments, and commits. Locks are released by the
 * caller after run() returns — conservative strong strict two-phase
 * locking, as both PMDK and Clobber-NVM require.
 */
#ifndef CNVM_TXN_TXRUN_H
#define CNVM_TXN_TXRUN_H

#include "txn/args.h"
#include "txn/engine.h"
#include "txn/registry.h"
#include "txn/tx.h"

namespace cnvm::txn {

template <typename... Args>
void
run(Engine& eng, FuncId fid, const Args&... args)
{
    ArgWriter w;
    (writeArg(w, args), ...);
    unsigned tid = eng.tid();
    // Lazy recovery's first-touch gate: the slot's pending heal (if
    // any) must complete before a new transaction can scribble over
    // its descriptor and log area.
    eng.admitSlot(tid);
    eng.rt.txBegin(tid, fid, w.bytes());
    Tx tx(eng.rt, tid);
    ArgReader r(eng.rt.argBlob(tid));
    try {
        lookupTxFunc(fid)(tx, r);
        eng.rt.txCommit(tid);
    } catch (const LogOverflowError&) {
        // Overflow is per-transaction, not fatal: roll this
        // transaction back and rethrow so the caller learns it did
        // not happen. Everything else (CrashInjected, media faults)
        // propagates untouched — the torture harness and recovery
        // own those.
        eng.rt.txAbort(tid);
        throw;
    }
    if (eng.commitObserver) [[unlikely]]
        eng.commitObserver->afterCommit(tid);
}

}  // namespace cnvm::txn

#endif  // CNVM_TXN_TXRUN_H
