/**
 * @file
 * RecoveryIndex: the output of a triage pass — the bounded "what needs
 * healing" catalogue that instant restart is built on (DESIGN.md §17).
 *
 * Full recovery is stop-the-world: no transaction runs until every
 * slot has been rolled back / re-executed and the allocator bitmap has
 * been rescanned. Lazy recovery splits that work in two:
 *
 *   triage  — a bounded pass over the per-slot TxDescriptors (and the
 *             allocator/quarantine metadata headers) that only
 *             *classifies* each slot, producing this index. It writes
 *             nothing a re-run would not rewrite identically, so the
 *             index is "persistent" in the only sense that matters
 *             after a crash: it rebuilds bit-for-bit from the same
 *             on-media descriptors, no matter how many times triage
 *             itself is interrupted.
 *   heal    — the existing salvage logic, now runnable one index entry
 *             at a time (Runtime::healSlot), on first touch or from a
 *             background salvage thread (txn::LazyRecovery).
 *
 * Hold ranges: a slot that crashed with a live alloc-intent table may
 * own heap blocks whose allocation bits never retired to media. Until
 * that slot heals, those ranges must not re-enter the allocator's free
 * map — triage reads them out of the (checksummed) intent table and
 * the engine registers them as holds with the allocator.
 */
#ifndef CNVM_TXN_RECOVERY_INDEX_H
#define CNVM_TXN_RECOVERY_INDEX_H

#include <cstdint>
#include <vector>

namespace cnvm::txn {

/** How Engine::recover() brings a pool back. */
enum class RecoveryMode : uint8_t {
    full,  ///< stop-the-world: heal everything before admitting
    lazy,  ///< triage, admit immediately, heal on touch/in background
};

/** CNVM_RECOVERY=lazy selects lazy mode; anything else is full. */
RecoveryMode recoveryModeFromEnv();

const char* recoveryModeName(RecoveryMode m);

/** Triage classification of one slot's on-media descriptor state. */
enum class SlotClass : uint8_t {
    clean = 0,    ///< idle, no live intents: nothing to heal
    ongoing,      ///< persistent begin record: tx was mid-flight
    committing,   ///< redo: commit record sealed, replay owed
    idleIntents,  ///< idle but a live alloc-intent table to settle
    damaged,      ///< descriptor unreadable/tainted: salvage owed
};

const char* slotClassName(SlotClass c);

/** One dirty slot awaiting a heal pass. */
struct IndexEntry {
    unsigned tid = 0;
    SlotClass cls = SlotClass::clean;
};

/** A heap range pinned out of the free map until its slot heals. */
struct HoldRange {
    unsigned tid = 0;    ///< owning slot (released on its heal)
    uint64_t off = 0;    ///< block offset (header included)
    uint64_t bytes = 0;  ///< granule-aligned block size
};

/** Result of Runtime::recoveryTriage(). */
struct RecoveryIndex {
    /** False when the runtime has no triage/heal split (mocks, future
     *  protocols): the engine falls back to full recovery. */
    bool supportsLazy = false;
    /** The allocator's free map still needs (incremental) rebuilding. */
    bool heapPending = false;
    /** Dirty slots, ascending tid. Clean slots are omitted. */
    std::vector<IndexEntry> entries;
    /** Heap ranges to pin until the owning slot heals. */
    std::vector<HoldRange> holds;
};

}  // namespace cnvm::txn

#endif  // CNVM_TXN_RECOVERY_INDEX_H
