#include "stats/simtime.h"

namespace cnvm::stats {

PersistParams&
persistParams()
{
    static PersistParams p;
    return p;
}

}  // namespace cnvm::stats
