/**
 * @file
 * Simulated persistence-time model.
 *
 * The evaluation machine in the paper stalls on `clwb`/`sfence` pairs to
 * Optane DCPMM; on this (single-core, DRAM-only) host we model those
 * stalls instead of experiencing them. Every logical thread owns a
 * PersistClock; the runtimes report flush/fence events to it and the
 * executor (src/sim) folds the resulting stall nanoseconds into the
 * thread's logical clock.
 *
 * Model: flushes are issued asynchronously and complete FLUSH_NS after
 * issue (they overlap freely with each other and with execution, as clwb
 * does). A fence waits for the latest outstanding flush to complete and
 * then costs FENCE_NS itself. This captures the paper's first-order
 * effect: "frequent ordering fences limit the overlapping of long-latency
 * flush instructions".
 */
#ifndef CNVM_STATS_SIMTIME_H
#define CNVM_STATS_SIMTIME_H

#include <cstdint>

namespace cnvm::stats {

/** Latency parameters, loosely calibrated to Optane DCPMM AppDirect. */
struct PersistParams {
    uint64_t flushNs = 400;     ///< clwb issue-to-durable latency
    uint64_t fenceNs = 100;     ///< sfence cost once flushes drained
    double writeNsPerByte = 0.5;  ///< NVM write bandwidth term (~2 GB/s)
    /**
     * Per-interposed-load latency of redo logging's read redirection
     * (Mnemosyne consults its write set on every transactional read —
     * the paper's "longer read path").
     */
    uint64_t redoReadNs = 60;
};

/** Global (process-wide) parameter block used by new clocks. */
PersistParams& persistParams();

/**
 * Tracks one logical thread's persistence stalls.
 *
 * `now` is maintained by the caller (the executor advances it with
 * measured compute time); this class only accounts for the extra
 * nanoseconds spent waiting on flush/fence completion.
 */
class PersistClock {
 public:
    explicit PersistClock(const PersistParams& p = persistParams())
        : params_(p) {}

    /** Record a flush of `bytes` issued at logical time `now`. */
    void
    onFlush(uint64_t now, uint64_t bytes = 64)
    {
        uint64_t done = now + params_.flushNs +
            static_cast<uint64_t>(
                params_.writeNsPerByte * static_cast<double>(bytes));
        if (done > lastFlushDone_)
            lastFlushDone_ = done;
    }

    /**
     * Record a fence issued at logical time `now`.
     * @return the stall in nanoseconds the fence causes.
     */
    uint64_t
    onFence(uint64_t now)
    {
        uint64_t t = now;
        if (lastFlushDone_ > t)
            t = lastFlushDone_;
        t += params_.fenceNs;
        lastFlushDone_ = 0;
        return t - now;
    }

    void reset() { lastFlushDone_ = 0; }

 private:
    PersistParams params_;
    uint64_t lastFlushDone_ = 0;
};

}  // namespace cnvm::stats

#endif  // CNVM_STATS_SIMTIME_H
