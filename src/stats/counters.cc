#include "stats/counters.h"

#include <mutex>
#include <sstream>
#include <vector>

namespace cnvm::stats {

namespace {

/** Registry of live thread blocks plus totals from exited threads. */
struct Registry {
    std::mutex mu;
    std::vector<ThreadCounters*> live;
    Snapshot retired;
};

Registry&
registry()
{
    static Registry r;
    return r;
}

}  // namespace

const char*
counterName(Counter c)
{
    switch (c) {
      case Counter::nvmWrites: return "nvm_writes";
      case Counter::nvmWriteBytes: return "nvm_write_bytes";
      case Counter::nvmReads: return "nvm_reads";
      case Counter::nvmReadBytes: return "nvm_read_bytes";
      case Counter::flushes: return "flushes";
      case Counter::fences: return "fences";
      case Counter::txBegins: return "tx_begins";
      case Counter::txCommits: return "tx_commits";
      case Counter::undoEntries: return "undo_entries";
      case Counter::undoBytes: return "undo_bytes";
      case Counter::redoEntries: return "redo_entries";
      case Counter::redoBytes: return "redo_bytes";
      case Counter::vlogEntries: return "vlog_entries";
      case Counter::vlogBytes: return "vlog_bytes";
      case Counter::clobberEntries: return "clobber_entries";
      case Counter::clobberBytes: return "clobber_bytes";
      case Counter::idoEntries: return "ido_entries";
      case Counter::idoBytes: return "ido_bytes";
      case Counter::lockLogEntries: return "lock_log_entries";
      case Counter::depRecords: return "dep_records";
      case Counter::logEntries: return "log_entries";
      case Counter::logBytes: return "log_bytes";
      case Counter::logFlushes: return "log_flushes";
      case Counter::allocs: return "allocs";
      case Counter::frees: return "frees";
      case Counter::recoveries: return "recoveries";
      case Counter::reexecutions: return "reexecutions";
      case Counter::persistChecks: return "persist_checks";
      case Counter::persistDirtyAtCommit:
        return "persist_dirty_at_commit";
      case Counter::persistPendingAtCommit:
        return "persist_pending_at_commit";
      case Counter::mediaBitFlips: return "media_bit_flips";
      case Counter::mediaPoisons: return "media_poisons";
      case Counter::mediaTransients: return "media_transients";
      case Counter::mediaPoisonReads: return "media_poison_reads";
      case Counter::mediaRetries: return "media_retries";
      case Counter::salvageDroppedEntries:
        return "salvage_dropped_entries";
      case Counter::salvageAborts: return "salvage_aborts";
      case Counter::quarantinedBlocks: return "quarantined_blocks";
      case Counter::quarantinedBytes: return "quarantined_bytes";
      case Counter::kNumCounters: break;
    }
    return "unknown";
}

Snapshot&
Snapshot::operator+=(const Snapshot& o)
{
    for (size_t i = 0; i < kNumCounters; i++)
        v[i] += o.v[i];
    return *this;
}

Snapshot
Snapshot::operator-(const Snapshot& o) const
{
    Snapshot out;
    for (size_t i = 0; i < kNumCounters; i++)
        out.v[i] = v[i] - o.v[i];
    return out;
}

std::string
Snapshot::toString() const
{
    std::ostringstream os;
    for (size_t i = 0; i < kNumCounters; i++) {
        if (v[i] == 0)
            continue;
        os << counterName(static_cast<Counter>(i)) << " = " << v[i]
           << "\n";
    }
    return os.str();
}

ThreadCounters::ThreadCounters()
{
    auto& r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    r.live.push_back(this);
}

ThreadCounters::~ThreadCounters()
{
    auto& r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    r.retired += snap_;
    std::erase(r.live, this);
}

Snapshot
aggregate()
{
    auto& r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    Snapshot out = r.retired;
    for (auto* t : r.live)
        out += t->snap_;
    return out;
}

void
resetAll()
{
    auto& r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    r.retired = Snapshot{};
    for (auto* t : r.live)
        t->snap_ = Snapshot{};
}

}  // namespace cnvm::stats
