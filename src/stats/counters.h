/**
 * @file
 * Event counters for the persistence subsystem.
 *
 * Every runtime (undo, redo, clobber, atlas, ido) and the NVM layer report
 * events here. The counters drive the paper's log-volume analysis
 * (Figures 7, 8, 13) and the headline ratios in Section 5.3.
 *
 * Counters are per-thread (no contention on the hot path); a global
 * registry aggregates them on demand.
 */
#ifndef CNVM_STATS_COUNTERS_H
#define CNVM_STATS_COUNTERS_H

#include <array>
#include <cstdint>
#include <string>

namespace cnvm::stats {

/** Identifiers of every counted event. */
enum class Counter : unsigned {
    nvmWrites,        ///< interposed stores reaching NVM addresses
    nvmWriteBytes,    ///< bytes of those stores
    nvmReads,         ///< interposed loads from NVM addresses
    nvmReadBytes,
    flushes,          ///< clwb/clflush issued
    fences,           ///< sfence issued
    txBegins,
    txCommits,
    undoEntries,      ///< undo-log entries (PMDK / Atlas / clobber_log)
    undoBytes,        ///< payload bytes of those entries
    redoEntries,
    redoBytes,
    vlogEntries,      ///< v_log records (one per Clobber-NVM transaction)
    vlogBytes,
    clobberEntries,   ///< clobber_log entries (subset of undoEntries)
    clobberBytes,
    idoEntries,       ///< idempotent-region boundary logs
    idoBytes,
    lockLogEntries,   ///< Atlas lock acquire/release log records
    depRecords,       ///< Atlas cross-FASE dependency records
    logEntries,       ///< log appends through RuntimeBase (any protocol)
    logBytes,         ///< log-area bytes those appends consumed
    logFlushes,       ///< flush operations issued for log bytes
                      ///  (per entry for write-through writers, per
                      ///  staging-window copy-out for zerocached)
    allocs,
    frees,
    recoveries,       ///< transactions repaired at recovery
    reexecutions,     ///< transactions re-executed at recovery
    persistChecks,    ///< commits audited by the durability validator
    persistDirtyAtCommit,    ///< lines dirty (never flushed) at commit
    persistPendingAtCommit,  ///< lines flushed but unfenced at commit
    mediaBitFlips,    ///< injected bit flips (FaultModel)
    mediaPoisons,     ///< injected poisoned lines
    mediaTransients,  ///< injected transient-fault lines
    mediaPoisonReads, ///< guarded reads that hit a poisoned line
    mediaRetries,     ///< transient-fault read retries
    salvageDroppedEntries,   ///< log entries dropped by salvage scans
    salvageAborts,    ///< transactions declared salvage-aborted
    quarantinedBlocks,       ///< heap ranges quarantined at rebuild
    quarantinedBytes,
    kNumCounters
};

constexpr size_t kNumCounters =
    static_cast<size_t>(Counter::kNumCounters);

/** Human-readable counter name (for reports). */
const char* counterName(Counter c);

/** A flat bundle of counter values. */
struct Snapshot {
    std::array<uint64_t, kNumCounters> v{};

    uint64_t
    operator[](Counter c) const
    {
        return v[static_cast<size_t>(c)];
    }

    Snapshot& operator+=(const Snapshot& o);
    Snapshot operator-(const Snapshot& o) const;

    /** Multi-line "name = value" dump of the non-zero counters. */
    std::string toString() const;
};

/** Per-thread counter block, registered globally on construction. */
class ThreadCounters {
 public:
    ThreadCounters();
    ~ThreadCounters();

    void
    add(Counter c, uint64_t n = 1)
    {
        snap_.v[static_cast<size_t>(c)] += n;
    }

    const Snapshot& snapshot() const { return snap_; }

 private:
    friend Snapshot aggregate();
    friend void resetAll();
    Snapshot snap_;
};

/** The calling thread's counter block. Inline: bump() is on the
 *  per-store hot path of the NVM model. */
inline ThreadCounters&
local()
{
    static thread_local ThreadCounters tc;
    return tc;
}

/** Shorthand: bump a counter on the calling thread. */
inline void
bump(Counter c, uint64_t n = 1)
{
    local().add(c, n);
}

/** Sum of all live (and retired) thread counters. */
Snapshot aggregate();

/** Zero every counter (between benchmark configurations). */
void resetAll();

}  // namespace cnvm::stats

#endif  // CNVM_STATS_COUNTERS_H
