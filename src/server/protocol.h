/**
 * @file
 * Memcached text protocol: incremental request parser and response
 * formatting (the subset the paper's memslap workload exercises, plus
 * the cas/gets pair).
 *
 * Supported commands:
 *
 *   get <key>+                       → VALUE <key> <flags> <bytes>
 *   gets <key>+                      → VALUE ... <casunique>
 *   set <key> <flags> <exp> <bytes> [noreply]  + data block
 *   cas <key> <flags> <exp> <bytes> <casunique> [noreply] + data
 *   delete <key> [noreply]
 *   stats | version | quit
 *
 * exptime is parsed and ignored (the persistent store does not
 * expire), matching how the paper's port drives memcached with
 * never-expiring items. The parser is incremental: feed() bytes as
 * they arrive off the socket, next() pops complete commands; partial
 * lines and split data blocks simply wait for more bytes.
 */
#ifndef CNVM_SERVER_PROTOCOL_H
#define CNVM_SERVER_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cnvm::server::proto {

enum class Cmd : uint8_t {
    get,
    gets,
    set,
    cas,
    del,
    stats,
    version,
    quit,
};

struct Command {
    Cmd cmd = Cmd::get;
    std::vector<std::string> keys;  ///< get/gets: 1+, others: exactly 1
    std::string data;               ///< set/cas payload
    uint32_t flags = 0;
    uint32_t exptime = 0;           ///< parsed, ignored
    uint64_t casUnique = 0;         ///< cas only
    bool noreply = false;
};

/** Hard cap on a declared data block; larger is a protocol error
 *  (the store's own limit, ds::kMaxValLen, is enforced upstream). */
constexpr size_t kMaxDataBytes = 1 << 20;
/** memcached's key limit (the store may impose a tighter one). */
constexpr size_t kMaxProtoKeyLen = 250;

class Parser {
 public:
    enum class Status {
        need,   ///< no complete command buffered yet
        ok,     ///< *out filled
        error,  ///< malformed line consumed; *error holds the response
    };

    void feed(const char* data, size_t n);

    /**
     * Pop the next complete command. On Status::error the offending
     * line (and, when its header declared a parseable length, its
     * data block) has been consumed, so the connection can keep
     * going; `*error` is the full response line to send (ERROR /
     * CLIENT_ERROR ...).
     */
    Status next(Command* out, std::string* error);

    size_t buffered() const { return buf_.size() - pos_; }

 private:
    Status parseLine(std::string_view line, Command* out,
                     std::string* error);

    std::string buf_;
    size_t pos_ = 0;
    /** set/cas whose header parsed but whose data is still in flight */
    bool wantData_ = false;
    size_t pendingBytes_ = 0;
    Command pending_;
};

/** @name Response formatting */
/// @{
void appendValue(std::string& out, std::string_view key,
                 uint32_t flags, std::string_view data, bool withCas,
                 uint64_t casUnique);
inline void
appendEnd(std::string& out)
{
    out += "END\r\n";
}
/// @}

/** @name Request formatting (client side: load generator, tests) */
/// @{
void formatGet(std::string& out, std::string_view key, bool withCas);
void formatSet(std::string& out, std::string_view key,
               std::string_view val, uint32_t flags, bool noreply);
void formatCas(std::string& out, std::string_view key,
               std::string_view val, uint32_t flags,
               uint64_t casUnique, bool noreply);
void formatDelete(std::string& out, std::string_view key,
                  bool noreply);
/// @}

}  // namespace cnvm::server::proto

#endif  // CNVM_SERVER_PROTOCOL_H
