#include "server/tcp_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <string>

#include "common/error.h"
#include "server/protocol.h"
#include "structures/kv.h"

namespace cnvm::server {

namespace {

bool
sendAll(int fd, const std::string& data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/** One response slot per parsed command, kept in command order. */
struct Slot {
    bool immediate = false;  ///< text already final (errors, quit)
    std::string text;        ///< immediate payload
    proto::Cmd cmd = proto::Cmd::get;
    bool noreply = false;
    bool statsSnapshot = false;  ///< fill from stats at format time
    size_t first = 0;            ///< index of first request
    size_t count = 0;            ///< requests covered (gets: #keys)
};

}  // namespace

TcpServer::TcpServer(KvService& svc, apps::KvServer& kv,
                     const TcpConfig& cfg)
    : svc_(svc), kv_(kv), cfg_(cfg)
{
}

TcpServer::~TcpServer()
{
    if (running_)
        stop();
}

void
TcpServer::start()
{
    CNVM_CHECK(!running_, "server already started");
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal(strprintf("socket(): %s", std::strerror(errno)));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(cfg_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
        fatal(strprintf("bind(port %u): %s", unsigned(cfg_.port),
                       std::strerror(errno)));
    if (::listen(listenFd_, cfg_.backlog) != 0)
        fatal(strprintf("listen(): %s", std::strerror(errno)));

    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);

    stopping_.store(false, std::memory_order_relaxed);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    running_ = true;
}

void
TcpServer::stop()
{
    if (!running_)
        return;
    stopping_.store(true, std::memory_order_relaxed);
    // Closing the listener makes accept() fail → accept thread exits.
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    acceptThread_.join();
    listenFd_ = -1;

    {
        std::lock_guard<std::mutex> g(connMu_);
        for (auto& c : conns_) {
            if (!c->closed)
                ::shutdown(c->fd, SHUT_RDWR);
        }
    }
    for (auto& c : conns_)
        c->thread.join();
    conns_.clear();
    running_ = false;
}

void
TcpServer::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;  // listener closed (stop) or fatal
        }
        if (stopping_.load(std::memory_order_relaxed)) {
            ::close(fd);
            return;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        accepted_.fetch_add(1, std::memory_order_relaxed);

        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        Conn* cp = conn.get();
        {
            std::lock_guard<std::mutex> g(connMu_);
            conns_.push_back(std::move(conn));
        }
        cp->thread = std::thread([this, cp] {
            handleConnection(cp->fd);
            // Close under the lock so stop() never shutdown()s a
            // recycled descriptor.
            std::lock_guard<std::mutex> g(connMu_);
            ::close(cp->fd);
            cp->closed = true;
        });
    }
}

void
TcpServer::handleConnection(int fd)
{
    proto::Parser parser;
    char buf[16384];
    bool open = true;
    std::vector<std::vector<Request*>> byWorker(svc_.workers());

    while (open) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        parser.feed(buf, static_cast<size_t>(n));

        // Turn the burst into a window: parse every complete command,
        // submit the storage ops, then answer in order.
        std::vector<Slot> slots;
        std::deque<Request> reqs;
        std::deque<apps::KvReadResult> reads;
        Completion done;

        proto::Command c;
        std::string err;
        for (;;) {
            auto st = parser.next(&c, &err);
            if (st == proto::Parser::Status::need)
                break;
            Slot slot;
            if (st == proto::Parser::Status::error) {
                slot.immediate = true;
                slot.text = err;
                slots.push_back(std::move(slot));
                continue;
            }
            slot.cmd = c.cmd;
            slot.noreply = c.noreply;
            switch (c.cmd) {
            case proto::Cmd::quit:
                open = false;
                break;
            case proto::Cmd::version:
                slot.immediate = true;
                slot.text = "VERSION cnvm-kv/1.0\r\n";
                break;
            case proto::Cmd::stats:
                slot.statsSnapshot = true;
                break;
            case proto::Cmd::get:
            case proto::Cmd::gets:
                slot.first = reqs.size();
                for (const auto& key : c.keys) {
                    if (key.size() > ds::kMaxKeyLen)
                        continue;  // cannot exist in the store
                    reqs.emplace_back();
                    Request& r = reqs.back();
                    r.op = Request::Op::get;
                    r.key = key;
                    reads.emplace_back();
                    r.read = &reads.back();
                    r.done = &done;
                }
                slot.count = reqs.size() - slot.first;
                break;
            case proto::Cmd::set:
            case proto::Cmd::cas:
            case proto::Cmd::del: {
                if (c.keys[0].size() > ds::kMaxKeyLen) {
                    slot.immediate = true;
                    slot.text =
                        "CLIENT_ERROR key too long for store\r\n";
                    break;
                }
                if (c.cmd != proto::Cmd::del &&
                    c.data.size() > ds::kMaxValLen) {
                    slot.immediate = true;
                    slot.text =
                        "SERVER_ERROR object too large for cache\r\n";
                    break;
                }
                slot.first = reqs.size();
                slot.count = 1;
                reqs.emplace_back();
                Request& r = reqs.back();
                r.op = c.cmd == proto::Cmd::set ? Request::Op::set
                       : c.cmd == proto::Cmd::cas
                           ? Request::Op::cas
                           : Request::Op::del;
                r.key = c.keys[0];
                r.value = std::move(c.data);
                r.flags = c.flags;
                r.casVersion = static_cast<uint32_t>(c.casUnique);
                r.done = &done;
                break;
            }
            }
            slots.push_back(std::move(slot));
            if (!open)
                break;
        }

        if (!reqs.empty()) {
            done.expect(static_cast<unsigned>(reqs.size()));
            // Bucket the window by owning worker: one enqueue (one
            // lock, one wakeup) per worker per window instead of one
            // per request. Bucketing is stable and a key always maps
            // to one worker, so per-key FIFO order is preserved.
            for (auto& b : byWorker)
                b.clear();
            for (auto& r : reqs)
                byWorker[svc_.workerOf(r.key)].push_back(&r);
            for (unsigned w = 0; w < byWorker.size(); w++)
                if (!byWorker[w].empty())
                    svc_.submitMany(w, byWorker[w].data(),
                                    byWorker[w].size());
            done.wait();
        }

        std::string out;
        for (const Slot& slot : slots) {
            if (slot.immediate) {
                if (!slot.noreply)
                    out += slot.text;
                continue;
            }
            switch (slot.cmd) {
            case proto::Cmd::quit:
                break;
            case proto::Cmd::stats: {
                auto kv = kv_.statsTotals();
                auto sv = svc_.totalStats();
                char line[128];
                auto stat = [&](const char* k, uint64_t v) {
                    int m = std::snprintf(
                        line, sizeof(line), "STAT %s %llu\r\n", k,
                        static_cast<unsigned long long>(v));
                    out.append(line, static_cast<size_t>(m));
                };
                stat("cmd_get", kv.gets);
                stat("get_hits", kv.hits);
                stat("get_misses", kv.gets - kv.hits);
                stat("cmd_set", kv.sets + kv.casStores + kv.casMisses);
                stat("cas_hits", kv.casStores);
                stat("cas_badval", kv.casMisses);
                stat("delete_hits", kv.delHits);
                stat("delete_misses", kv.dels - kv.delHits);
                stat("svc_ops", sv.ops);
                stat("svc_batches", sv.batches);
                stat("svc_batched_ops", sv.batchedOps);
                stat("svc_singles", sv.singles);
                stat("svc_overflows", sv.overflows);
                stat("svc_workers", svc_.workers());
                stat("svc_batch_max", svc_.batchMax());
                // Lazy-recovery progress: pending/healed heal work
                // items (slots + the heap pass); all zero after
                // finishRecovery or under full recovery.
                auto& eng = kv_.engine();
                stat("recovery_active", eng.recoveryActive() ? 1 : 0);
                stat("recovery_pending", eng.recoveryPending());
                stat("recovery_healed", eng.recoveryHealed());
                out += "END\r\n";
                break;
            }
            case proto::Cmd::get:
            case proto::Cmd::gets:
                for (size_t i = 0; i < slot.count; i++) {
                    const Request& r = reqs[slot.first + i];
                    if (!r.read->found)
                        continue;
                    proto::appendValue(
                        out, r.key, r.read->flags,
                        {r.read->value, r.read->len},
                        slot.cmd == proto::Cmd::gets,
                        r.read->version);
                }
                proto::appendEnd(out);
                break;
            case proto::Cmd::set:
            case proto::Cmd::cas:
            case proto::Cmd::del: {
                if (slot.noreply)
                    break;
                const Request& r = reqs[slot.first];
                switch (r.result) {
                case apps::MutResult::stored:
                    out += "STORED\r\n";
                    break;
                case apps::MutResult::deleted:
                    out += "DELETED\r\n";
                    break;
                case apps::MutResult::notFound:
                    out += "NOT_FOUND\r\n";
                    break;
                case apps::MutResult::exists:
                    out += "EXISTS\r\n";
                    break;
                case apps::MutResult::error:
                    out += "SERVER_ERROR transaction failed\r\n";
                    break;
                }
                break;
            }
            case proto::Cmd::version:
                break;  // handled as immediate
            }
        }

        if (!out.empty() && !sendAll(fd, out))
            break;
    }
    // The caller closes fd (under the connection lock).
}

}  // namespace cnvm::server
