#include "server/protocol.h"

#include <charconv>
#include <cstdio>

namespace cnvm::server::proto {

namespace {

/** Split a command line into whitespace-separated tokens. */
std::vector<std::string_view>
tokenize(std::string_view line)
{
    std::vector<std::string_view> out;
    size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && line[i] == ' ')
            i++;
        size_t start = i;
        while (i < line.size() && line[i] != ' ')
            i++;
        if (i > start)
            out.push_back(line.substr(start, i - start));
    }
    return out;
}

template <typename T>
bool
parseNum(std::string_view tok, T* out)
{
    auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), *out);
    return ec == std::errc() && p == tok.data() + tok.size();
}

bool
validKey(std::string_view key)
{
    if (key.empty() || key.size() > kMaxProtoKeyLen)
        return false;
    for (char c : key) {
        if (c <= ' ' || c == 0x7f)  // no control chars or spaces
            return false;
    }
    return true;
}

}  // namespace

void
Parser::feed(const char* data, size_t n)
{
    // Compact lazily: only once the consumed prefix dominates.
    if (pos_ > 4096 && pos_ > buf_.size() / 2) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(data, n);
}

Parser::Status
Parser::next(Command* out, std::string* error)
{
    if (wantData_) {
        // A set/cas header already parsed; wait for bytes + CRLF.
        size_t declared = pendingBytes_;
        if (buf_.size() - pos_ < declared + 2)
            return Status::need;
        std::string_view block(buf_.data() + pos_, declared);
        bool terminated = buf_[pos_ + declared] == '\r' &&
                          buf_[pos_ + declared + 1] == '\n';
        pos_ += declared + 2;
        wantData_ = false;
        if (!terminated) {
            *error = "CLIENT_ERROR bad data chunk\r\n";
            return Status::error;
        }
        pending_.data.assign(block);
        *out = std::move(pending_);
        pending_ = Command{};
        return Status::ok;
    }

    auto nl = buf_.find("\r\n", pos_);
    if (nl == std::string::npos) {
        // Tolerate bare-\n clients (telnet-style testing).
        auto bare = buf_.find('\n', pos_);
        if (bare == std::string::npos)
            return Status::need;
        std::string_view line(buf_.data() + pos_, bare - pos_);
        pos_ = bare + 1;
        return parseLine(line, out, error);
    }
    std::string_view line(buf_.data() + pos_, nl - pos_);
    pos_ = nl + 2;
    return parseLine(line, out, error);
}

Parser::Status
Parser::parseLine(std::string_view line, Command* out,
                  std::string* error)
{
    auto toks = tokenize(line);
    if (toks.empty())
        return Status::need;  // empty line: ignore, wait for more

    Command c;
    std::string_view verb = toks[0];
    if (verb == "get" || verb == "gets") {
        if (toks.size() < 2) {
            *error = "ERROR\r\n";
            return Status::error;
        }
        c.cmd = verb == "get" ? Cmd::get : Cmd::gets;
        for (size_t i = 1; i < toks.size(); i++) {
            if (!validKey(toks[i])) {
                *error = "CLIENT_ERROR bad key\r\n";
                return Status::error;
            }
            c.keys.emplace_back(toks[i]);
        }
        *out = std::move(c);
        return Status::ok;
    }
    if (verb == "set" || verb == "cas") {
        bool isCas = verb == "cas";
        size_t fixed = isCas ? 6 : 5;
        if (toks.size() < fixed || toks.size() > fixed + 1) {
            *error = "ERROR\r\n";
            return Status::error;
        }
        uint32_t bytes = 0;
        if (!validKey(toks[1]) || !parseNum(toks[2], &c.flags) ||
            !parseNum(toks[3], &c.exptime) ||
            !parseNum(toks[4], &bytes) ||
            (isCas && !parseNum(toks[5], &c.casUnique))) {
            *error = "CLIENT_ERROR bad command line format\r\n";
            return Status::error;
        }
        if (bytes > kMaxDataBytes) {
            *error = "SERVER_ERROR object too large for cache\r\n";
            return Status::error;
        }
        if (toks.size() == fixed + 1) {
            if (toks[fixed] != "noreply") {
                *error = "CLIENT_ERROR bad command line format\r\n";
                return Status::error;
            }
            c.noreply = true;
        }
        c.cmd = isCas ? Cmd::cas : Cmd::set;
        c.keys.emplace_back(toks[1]);
        pending_ = std::move(c);
        pendingBytes_ = bytes;
        wantData_ = true;
        return next(out, error);  // data may already be buffered
    }
    if (verb == "delete") {
        if (toks.size() < 2 || !validKey(toks[1])) {
            *error = "CLIENT_ERROR bad key\r\n";
            return Status::error;
        }
        c.cmd = Cmd::del;
        c.keys.emplace_back(toks[1]);
        if (toks.back() == "noreply" && toks.size() > 2)
            c.noreply = true;
        *out = std::move(c);
        return Status::ok;
    }
    if (verb == "stats") {
        c.cmd = Cmd::stats;
        *out = std::move(c);
        return Status::ok;
    }
    if (verb == "version") {
        c.cmd = Cmd::version;
        *out = std::move(c);
        return Status::ok;
    }
    if (verb == "quit") {
        c.cmd = Cmd::quit;
        *out = std::move(c);
        return Status::ok;
    }
    *error = "ERROR\r\n";
    return Status::error;
}

void
appendValue(std::string& out, std::string_view key, uint32_t flags,
            std::string_view data, bool withCas, uint64_t casUnique)
{
    char head[128];
    int n;
    if (withCas) {
        n = std::snprintf(head, sizeof(head),
                          "VALUE %.*s %u %zu %llu\r\n",
                          static_cast<int>(key.size()), key.data(),
                          flags, data.size(),
                          static_cast<unsigned long long>(casUnique));
    } else {
        n = std::snprintf(head, sizeof(head), "VALUE %.*s %u %zu\r\n",
                          static_cast<int>(key.size()), key.data(),
                          flags, data.size());
    }
    out.append(head, static_cast<size_t>(n));
    out.append(data);
    out += "\r\n";
}

void
formatGet(std::string& out, std::string_view key, bool withCas)
{
    out += withCas ? "gets " : "get ";
    out.append(key);
    out += "\r\n";
}

void
formatSet(std::string& out, std::string_view key, std::string_view val,
          uint32_t flags, bool noreply)
{
    char head[128];
    int n = std::snprintf(head, sizeof(head), "set %.*s %u 0 %zu%s\r\n",
                          static_cast<int>(key.size()), key.data(),
                          flags, val.size(), noreply ? " noreply" : "");
    out.append(head, static_cast<size_t>(n));
    out.append(val);
    out += "\r\n";
}

void
formatCas(std::string& out, std::string_view key, std::string_view val,
          uint32_t flags, uint64_t casUnique, bool noreply)
{
    char head[160];
    int n = std::snprintf(
        head, sizeof(head), "cas %.*s %u 0 %zu %llu%s\r\n",
        static_cast<int>(key.size()), key.data(), flags, val.size(),
        static_cast<unsigned long long>(casUnique),
        noreply ? " noreply" : "");
    out.append(head, static_cast<size_t>(n));
    out.append(val);
    out += "\r\n";
}

void
formatDelete(std::string& out, std::string_view key, bool noreply)
{
    out += "delete ";
    out.append(key);
    if (noreply)
        out += " noreply";
    out += "\r\n";
}

}  // namespace cnvm::server::proto
