/**
 * @file
 * TCP front-end for the KV service: one accept thread plus a thread
 * per connection, speaking the memcached text protocol
 * (server/protocol.h) over loopback or LAN.
 *
 * Each connection thread turns a burst of received bytes into a
 * *window* of parsed commands, submits them all to the KvService
 * (which routes each to its shard-owning worker and group-commits
 * runs of mutations), waits for the window's completion, then writes
 * every response back in command order. Pipelining clients therefore
 * get batching for free: the deeper the pipeline, the more mutations
 * fuse into one transaction.
 *
 * Replies are sent only after the covering transaction committed, so
 * any response the client has seen is durable across a crash
 * (kill -9 included) — the invariant the kill-mid-traffic torture
 * lane checks.
 */
#ifndef CNVM_SERVER_TCP_SERVER_H
#define CNVM_SERVER_TCP_SERVER_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "server/kv_service.h"

namespace cnvm::server {

struct TcpConfig {
    /** 0 → ephemeral; read the bound port back with port(). */
    uint16_t port = 0;
    int backlog = 64;
};

class TcpServer {
 public:
    TcpServer(KvService& svc, apps::KvServer& kv,
              const TcpConfig& cfg);
    ~TcpServer();

    TcpServer(const TcpServer&) = delete;
    TcpServer& operator=(const TcpServer&) = delete;

    /** Bind + listen on 127.0.0.1 and launch the accept thread.
     *  @throws FatalError if the socket cannot be bound. */
    void start();

    /** Close the listener, shut down live connections, join all
     *  threads. In-flight windows finish first. */
    void stop();

    /** The bound port (valid after start()). */
    uint16_t port() const { return port_; }

    uint64_t connectionsAccepted() const
    {
        return accepted_.load(std::memory_order_relaxed);
    }

 private:
    struct Conn {
        int fd = -1;
        std::thread thread;
        bool closed = false;
    };

    void acceptLoop();
    void handleConnection(int fd);

    KvService& svc_;
    apps::KvServer& kv_;
    TcpConfig cfg_;

    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::thread acceptThread_;
    std::atomic<bool> stopping_{false};
    std::atomic<uint64_t> accepted_{0};

    std::mutex connMu_;
    std::vector<std::unique_ptr<Conn>> conns_;
    bool running_ = false;
};

}  // namespace cnvm::server

#endif  // CNVM_SERVER_TCP_SERVER_H
