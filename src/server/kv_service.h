/**
 * @file
 * Thread-per-core KV service: the execution layer between a front-end
 * (TCP server or in-process load generator) and the persistent
 * KvServer store.
 *
 * Topology. The store's shards are partitioned statically over N
 * worker threads: shard s belongs to worker s % N, and every request
 * for a key is routed to the worker that owns the key's shard
 * (workerOf). Each worker binds a dedicated engine slot
 * (Engine::bindThisThread), so per-thread log areas are never shared
 * and no two workers ever contend on a slot. Because routing is by
 * shard, per-key ordering is total: all operations on one key land in
 * one worker's FIFO queue.
 *
 * Group commit. A worker drains its queue in FIFO order and groups
 * consecutive *mutations* (set/del/cas) into one transaction via
 * KvServer::applyBatch, up to batchMax per transaction — one begin
 * persist, one log seal, one commit fence for the whole group. Reads
 * break a group (read-your-writes: a get must observe the mutations
 * queued before it, so those commit first). Completions are signaled
 * only after the covering transaction commits, which is what makes a
 * client-visible ack a durability guarantee (DESIGN.md §16).
 *
 * If a batch overflows the slot's log area (txn::LogOverflowError,
 * thrown before any mutation applies), the worker falls back to
 * applying that group op-by-op; an op that overflows alone reports
 * MutResult::error.
 */
#ifndef CNVM_SERVER_KV_SERVICE_H
#define CNVM_SERVER_KV_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/kv/kv_server.h"

namespace cnvm::server {

/**
 * Completion latch: a front-end submits a window of requests, arms
 * expect(n), and wait()s until every one has been executed (and, for
 * mutations, committed).
 *
 * arrive() is lock-free except for the final arrival of a window:
 * workers signal once per request, so the latch sits on the per-op
 * hot path and must not cost a mutex round trip per op.
 */
class Completion {
 public:
    void
    expect(unsigned n)
    {
        outstanding_.fetch_add(n, std::memory_order_acq_rel);
    }

    void
    arrive(long n = 1)
    {
        if (outstanding_.fetch_sub(n, std::memory_order_acq_rel) == n) {
            std::lock_guard<std::mutex> g(mu_);
            cv_.notify_all();
        }
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> g(mu_);
        cv_.wait(g, [&] {
            return outstanding_.load(std::memory_order_acquire) <= 0;
        });
    }

 private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::atomic<long> outstanding_{0};
};

/** One queued operation. String members own their bytes (the socket
 *  buffer they were parsed from is reused immediately). */
struct Request {
    enum class Op : uint8_t { get, set, del, cas };

    Op op = Op::get;
    std::string key;
    std::string value;        ///< set/cas payload
    uint32_t flags = 0;
    uint32_t casVersion = 0;  ///< cas: expected item version

    /** get: caller-owned result buffer, filled before arrive(). */
    apps::KvReadResult* read = nullptr;
    /** set/del/cas outcome, written before arrive(). */
    apps::MutResult result = apps::MutResult::error;

    Completion* done = nullptr;
};

struct ServiceConfig {
    unsigned workers = 2;
    /** Max mutations fused into one transaction; 0 → $CNVM_BATCH,
     *  default 8. 1 disables group commit (one tx per mutation). */
    unsigned batchMax = 0;
    /** Per-worker queue bound; submit() blocks when full. */
    size_t queueCap = 4096;
    /** First engine slot; worker w binds slot slotBase + w. */
    unsigned slotBase = 0;

    /** batchMax with the env default applied. */
    unsigned resolvedBatchMax() const;
};

class KvService {
 public:
    struct WorkerStats {
        uint64_t ops = 0;        ///< requests executed
        uint64_t batches = 0;    ///< group-commit transactions
        uint64_t batchedOps = 0; ///< mutations covered by those
        uint64_t singles = 0;    ///< mutations run one-per-tx
        uint64_t overflows = 0;  ///< batches retried op-by-op
    };

    KvService(apps::KvServer& kv, const ServiceConfig& cfg);
    ~KvService();

    KvService(const KvService&) = delete;
    KvService& operator=(const KvService&) = delete;

    /** Bind shards to workers and launch the worker threads.
     *  @throws txn::SlotRangeError if slotBase + workers exceeds the
     *          pool's runtime slots. */
    void start();

    /** Drain every queue, then stop and join the workers. Queued
     *  requests still execute and signal their completions. */
    void stop();

    /** Worker owning `key`'s shard. */
    unsigned workerOf(std::string_view key) const;

    /**
     * Hand one request to its owning worker (FIFO per worker). Blocks
     * while the worker's queue is at queueCap. The request object must
     * stay alive until its completion arrives.
     */
    void submit(Request* req);

    /**
     * Hand a run of requests that all route to worker `worker`
     * (workerOf on each key must agree) to that worker in one lock
     * acquisition and one wakeup — the per-window submission path.
     * Order within the run is preserved. Blocks for queue room.
     */
    void submitMany(unsigned worker, Request* const* reqs, size_t n);

    unsigned workers() const { return cfg_.workers; }
    unsigned batchMax() const { return batchMax_; }

    WorkerStats workerStats(unsigned w) const;
    WorkerStats totalStats() const;

 private:
    struct Worker {
        mutable std::mutex mu;
        std::condition_variable nonEmpty;
        std::condition_variable nonFull;
        std::deque<Request*> queue;
        WorkerStats stats;  ///< guarded by mu
        std::thread thread;
    };

    void workerLoop(unsigned w);
    void execGroup(Worker& wk, Request** group, size_t n);

    apps::KvServer& kv_;
    ServiceConfig cfg_;
    unsigned batchMax_;
    bool running_ = false;
    std::atomic<bool> stopping_{false};
    std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace cnvm::server

#endif  // CNVM_SERVER_KV_SERVICE_H
