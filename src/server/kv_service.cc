#include "server/kv_service.h"

#include <cstdlib>

#include "common/error.h"
#include "nvm/pool.h"
#include "txn/runtime.h"

namespace cnvm::server {

unsigned
ServiceConfig::resolvedBatchMax() const
{
    if (batchMax != 0)
        return batchMax;
    if (const char* v = std::getenv("CNVM_BATCH")) {
        unsigned long n = std::strtoul(v, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n);
    }
    return 8;
}

KvService::KvService(apps::KvServer& kv, const ServiceConfig& cfg)
    : kv_(kv), cfg_(cfg), batchMax_(cfg.resolvedBatchMax())
{
    CNVM_CHECK(cfg_.workers >= 1, "need at least one worker");
    CNVM_CHECK(cfg_.queueCap >= 1, "queueCap must be positive");
}

KvService::~KvService()
{
    if (running_)
        stop();
}

void
KvService::start()
{
    CNVM_CHECK(!running_, "service already started");
    // Validate the whole slot range up front, on the caller's thread,
    // so a misconfigured worker count is a catchable error instead of
    // an uncaught exception inside a std::thread.
    unsigned slots = kv_.engine().rt.pool().maxThreads();
    if (cfg_.slotBase + cfg_.workers > slots)
        throw txn::SlotRangeError(cfg_.slotBase + cfg_.workers - 1,
                                  slots);

    for (size_t s = 0; s < kv_.shardCount(); s++)
        kv_.shardState(s).ownerSlot =
            cfg_.slotBase + static_cast<unsigned>(s) % cfg_.workers;

    stopping_.store(false, std::memory_order_relaxed);
    workers_.clear();
    for (unsigned w = 0; w < cfg_.workers; w++)
        workers_.push_back(std::make_unique<Worker>());
    for (unsigned w = 0; w < cfg_.workers; w++)
        workers_[w]->thread =
            std::thread([this, w] { workerLoop(w); });
    running_ = true;
}

void
KvService::stop()
{
    if (!running_)
        return;
    stopping_.store(true, std::memory_order_relaxed);
    for (auto& wk : workers_) {
        {
            std::lock_guard<std::mutex> g(wk->mu);
        }
        wk->nonEmpty.notify_all();
        wk->nonFull.notify_all();
    }
    for (auto& wk : workers_)
        wk->thread.join();
    running_ = false;
}

unsigned
KvService::workerOf(std::string_view key) const
{
    return static_cast<unsigned>(kv_.shardOf(key)) % cfg_.workers;
}

void
KvService::submit(Request* req)
{
    submitMany(workerOf(req->key), &req, 1);
}

void
KvService::submitMany(unsigned worker, Request* const* reqs, size_t n)
{
    Worker& wk = *workers_[worker];
    size_t i = 0;
    while (i < n) {
        std::unique_lock<std::mutex> g(wk.mu);
        wk.nonFull.wait(g, [&] {
            return wk.queue.size() < cfg_.queueCap ||
                   stopping_.load(std::memory_order_relaxed);
        });
        while (i < n && wk.queue.size() < cfg_.queueCap)
            wk.queue.push_back(reqs[i++]);
        g.unlock();
        wk.nonEmpty.notify_one();
    }
}

KvService::WorkerStats
KvService::workerStats(unsigned w) const
{
    const Worker& wk = *workers_[w];
    std::lock_guard<std::mutex> g(wk.mu);
    return wk.stats;
}

KvService::WorkerStats
KvService::totalStats() const
{
    WorkerStats t;
    for (unsigned w = 0; w < workers_.size(); w++) {
        WorkerStats s = workerStats(w);
        t.ops += s.ops;
        t.batches += s.batches;
        t.batchedOps += s.batchedOps;
        t.singles += s.singles;
        t.overflows += s.overflows;
    }
    return t;
}

namespace {

apps::MutOp
toMutOp(const Request& r)
{
    apps::MutOp op;
    switch (r.op) {
    case Request::Op::set:
        op.kind = apps::MutKind::set;
        break;
    case Request::Op::del:
        op.kind = apps::MutKind::del;
        break;
    case Request::Op::cas:
        op.kind = apps::MutKind::cas;
        break;
    case Request::Op::get:
        panic("get in mutation group");
    }
    op.key = r.key;
    op.val = r.value;
    op.flags = r.flags;
    op.casVersion = r.casVersion;
    return op;
}

}  // namespace

void
KvService::execGroup(Worker& wk, Request** group, size_t n)
{
    WorkerStats delta;
    auto single = [&](Request* r) {
        try {
            switch (r->op) {
            case Request::Op::set:
                kv_.set(r->key, r->value, r->flags);
                r->result = apps::MutResult::stored;
                break;
            case Request::Op::del:
                r->result = kv_.del(r->key)
                                ? apps::MutResult::deleted
                                : apps::MutResult::notFound;
                break;
            case Request::Op::cas:
                r->result =
                    kv_.cas(r->key, r->value, r->flags, r->casVersion);
                break;
            case Request::Op::get:
                panic("get in mutation group");
            }
        } catch (const txn::LogOverflowError&) {
            r->result = apps::MutResult::error;
        }
        delta.singles++;
    };

    if (n == 1) {
        single(group[0]);
    } else {
        std::vector<apps::MutOp> ops;
        std::vector<apps::MutResult> results(n,
                                             apps::MutResult::error);
        ops.reserve(n);
        for (size_t i = 0; i < n; i++)
            ops.push_back(toMutOp(*group[i]));
        try {
            kv_.applyBatch(ops, results.data());
            for (size_t i = 0; i < n; i++)
                group[i]->result = results[i];
            delta.batches++;
            delta.batchedOps += n;
        } catch (const txn::LogOverflowError&) {
            // Nothing applied (the batch aborted whole): replay the
            // group op-by-op, preserving order.
            delta.overflows++;
            for (size_t i = 0; i < n; i++)
                single(group[i]);
        }
    }
    delta.ops += n;

    // Merge stats BEFORE signaling completions: once a caller has
    // seen every ack, totalStats() must already cover those ops.
    {
        std::lock_guard<std::mutex> g(wk.mu);
        wk.stats.ops += delta.ops;
        wk.stats.batches += delta.batches;
        wk.stats.batchedOps += delta.batchedOps;
        wk.stats.singles += delta.singles;
        wk.stats.overflows += delta.overflows;
    }

    // The covering transaction has committed: acks are durable now.
    // Requests of one window share a Completion; coalesce runs of the
    // same latch into one arrive so the latch is touched once per
    // group, not once per op.
    size_t i = 0;
    while (i < n) {
        Completion* done = group[i]->done;
        size_t j = i + 1;
        while (j < n && group[j]->done == done)
            j++;
        if (done != nullptr)
            done->arrive(static_cast<long>(j - i));
        i = j;
    }
}

void
KvService::workerLoop(unsigned w)
{
    Worker& wk = *workers_[w];
    unsigned slot = cfg_.slotBase + w;
    kv_.engine().bindThisThread(slot);

    std::vector<Request*> local;
    for (;;) {
        // Lazy-recovery first-touch gate. txn::run repeats this for
        // mutations, but gets bypass txn::run entirely — and even they
        // must not serve from a slot whose interrupted transaction has
        // not healed. One pointer test once recovery is over.
        kv_.engine().admitSlot(slot);
        local.clear();
        {
            std::unique_lock<std::mutex> g(wk.mu);
            wk.nonEmpty.wait(g, [&] {
                return !wk.queue.empty() ||
                       stopping_.load(std::memory_order_relaxed);
            });
            if (wk.queue.empty()) {
                if (stopping_.load(std::memory_order_relaxed))
                    return;
                continue;
            }
            while (!wk.queue.empty()) {
                local.push_back(wk.queue.front());
                wk.queue.pop_front();
            }
        }
        wk.nonFull.notify_all();

        size_t i = 0;
        while (i < local.size()) {
            Request* r = local[i];
            if (r->op == Request::Op::get) {
                apps::KvReadResult scratch;
                apps::KvReadResult* out =
                    r->read != nullptr ? r->read : &scratch;
                kv_.get(r->key, out);
                {
                    std::lock_guard<std::mutex> g(wk.mu);
                    wk.stats.ops++;
                }
                if (r->done != nullptr)
                    r->done->arrive();
                i++;
                continue;
            }
            // Fuse the run of consecutive mutations, capped at
            // batchMax, into one group-commit transaction.
            size_t j = i + 1;
            while (j < local.size() &&
                   local[j]->op != Request::Op::get &&
                   j - i < batchMax_)
                j++;
            execGroup(wk, local.data() + i, j - i);
            i = j;
        }
    }
}

}  // namespace cnvm::server
