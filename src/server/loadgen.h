/**
 * @file
 * Saturating load generator + crash-consistency verifier for the KV
 * service (memslap/YCSB-style mixed traffic over the memcached text
 * protocol).
 *
 * runLoad() opens N connections to 127.0.0.1:<port>, each driving
 * pipelined windows of mixed get/gets/set/delete traffic over a
 * partitioned keyspace and measuring window round-trip latency.
 * Deep windows are what makes group commit visible: the server fuses
 * a window's run of mutations into one transaction.
 *
 * Shadow mode (shadowPath != "") writes one journal per connection,
 * `<shadowPath>.<conn>`, recording every mutation twice: a pending
 * line *before* it is sent and an acked line once the server's reply
 * arrives. Because the server acks only after commit, an acked line
 * is a durability promise. After a kill -9 and restart,
 * verifyShadow() replays each journal into the set of values every
 * key is *allowed* to hold (acked value, or any still-unacked pending
 * value — the crash may have landed before or after an in-flight
 * op) and checks the recovered server against it. Journal line
 * protocol: "P key val" pending set, "S key val" acked set,
 * "Q key" pending delete, "D key" acked delete.
 */
#ifndef CNVM_SERVER_LOADGEN_H
#define CNVM_SERVER_LOADGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace cnvm::server {

struct LoadConfig {
    uint16_t port = 0;
    unsigned connections = 2;
    uint64_t totalOps = 100000;   ///< across all connections
    unsigned window = 16;         ///< pipelined ops per round trip
    uint64_t keySpace = 10000;    ///< partitioned over connections
    size_t valueLen = 64;         ///< paper's memslap config
    double writeRatio = 0.5;      ///< set+delete fraction
    double deleteFrac = 0.05;     ///< of writes, how many delete
    double getsFrac = 0.1;        ///< of reads, how many use `gets`
    uint64_t seed = 1;
    std::string shadowPath;       ///< "" → no shadow journal
    /** Wall-clock cap; 0 → none. Load stops early once exceeded. */
    double maxSeconds = 0;
};

struct LoadResult {
    uint64_t opsAcked = 0;     ///< responses received
    uint64_t errors = 0;       ///< SERVER_ERROR / protocol surprises
    double seconds = 0;
    double opsPerSec = 0;
    double p50us = 0, p95us = 0, p99us = 0;  ///< window round trips
    bool serverDied = false;   ///< connection dropped mid-run
};

LoadResult runLoad(const LoadConfig& cfg);

struct VerifyResult {
    uint64_t keysChecked = 0;
    uint64_t violations = 0;
    std::vector<std::string> examples;  ///< first few, for the log
};

/**
 * Check a recovered server at `port` against the shadow journals a
 * previous runLoad(shadowPath) left behind.
 */
VerifyResult verifyShadow(const std::string& shadowPath,
                          unsigned connections, uint16_t port);

}  // namespace cnvm::server

#endif  // CNVM_SERVER_LOADGEN_H
