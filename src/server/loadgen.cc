#include "server/loadgen.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "server/protocol.h"

namespace cnvm::server {

namespace {

int
connectTo(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

bool
sendAll(int fd, const std::string& data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

/** Buffered line/byte reader over a socket. */
struct LineReader {
    int fd;
    std::string buf;
    size_t pos = 0;

    explicit LineReader(int f) : fd(f) {}

    bool
    fill()
    {
        char tmp[8192];
        for (;;) {
            ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            buf.append(tmp, static_cast<size_t>(n));
            return true;
        }
    }

    void
    compact()
    {
        if (pos > 65536) {
            buf.erase(0, pos);
            pos = 0;
        }
    }

    /** Read one \r\n-terminated line (without the terminator). */
    bool
    readLine(std::string* line)
    {
        for (;;) {
            auto nl = buf.find("\r\n", pos);
            if (nl != std::string::npos) {
                line->assign(buf, pos, nl - pos);
                pos = nl + 2;
                compact();
                return true;
            }
            if (!fill())
                return false;
        }
    }

    /** Read exactly n raw bytes. */
    bool
    readBytes(size_t n, std::string* out)
    {
        while (buf.size() - pos < n) {
            if (!fill())
                return false;
        }
        out->assign(buf, pos, n);
        pos += n;
        compact();
        return true;
    }
};

uint64_t
xorshift(uint64_t& s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

std::string
keyName(uint64_t idx)
{
    char k[32];
    std::snprintf(k, sizeof(k), "k%08llu",
                  static_cast<unsigned long long>(idx));
    return k;
}

std::string
makeValue(unsigned conn, uint64_t seq, size_t len)
{
    char head[48];
    int n = std::snprintf(head, sizeof(head), "v%u-%llu-", conn,
                          static_cast<unsigned long long>(seq));
    std::string v(head, static_cast<size_t>(n));
    while (v.size() < len)
        v += 'x';
    v.resize(len);
    return v;
}

enum class OpKind : uint8_t { get, gets, set, del };

struct PerConn {
    uint64_t acked = 0;
    uint64_t errors = 0;
    bool died = false;
    std::vector<double> windowUs;
};

void
loadWorker(const LoadConfig& cfg, unsigned conn, uint64_t opsTarget,
           PerConn* out)
{
    int fd = connectTo(cfg.port);
    if (fd < 0) {
        out->died = true;
        return;
    }
    LineReader rd(fd);

    FILE* shadow = nullptr;
    if (!cfg.shadowPath.empty()) {
        std::string path =
            cfg.shadowPath + "." + std::to_string(conn);
        shadow = std::fopen(path.c_str(), "w");
        if (shadow == nullptr) {
            ::close(fd);
            out->died = true;
            return;
        }
    }

    uint64_t lo = cfg.keySpace * conn / cfg.connections;
    uint64_t hi = cfg.keySpace * (conn + 1) / cfg.connections;
    if (hi <= lo)
        hi = lo + 1;

    uint64_t rng = cfg.seed * 0x9e3779b97f4a7c15ull + conn + 1;
    uint64_t seq = 0;
    uint64_t done = 0;
    auto t0 = std::chrono::steady_clock::now();

    struct WinOp {
        OpKind kind;
        std::string key;
        std::string val;
    };
    std::vector<WinOp> ops;
    std::string wire;
    std::string line;

    while (done < opsTarget && !out->died) {
        if (cfg.maxSeconds > 0) {
            std::chrono::duration<double> el =
                std::chrono::steady_clock::now() - t0;
            if (el.count() > cfg.maxSeconds)
                break;
        }
        size_t w = static_cast<size_t>(
            std::min<uint64_t>(cfg.window, opsTarget - done));
        ops.clear();
        wire.clear();
        for (size_t i = 0; i < w; i++) {
            WinOp op;
            op.key = keyName(lo + xorshift(rng) % (hi - lo));
            double r = double(xorshift(rng) >> 11) / double(1ull << 53);
            if (r < cfg.writeRatio) {
                double r2 =
                    double(xorshift(rng) >> 11) / double(1ull << 53);
                if (r2 < cfg.deleteFrac) {
                    op.kind = OpKind::del;
                } else {
                    op.kind = OpKind::set;
                    op.val = makeValue(conn, seq++, cfg.valueLen);
                }
            } else {
                double r2 =
                    double(xorshift(rng) >> 11) / double(1ull << 53);
                op.kind =
                    r2 < cfg.getsFrac ? OpKind::gets : OpKind::get;
            }
            switch (op.kind) {
            case OpKind::get:
                proto::formatGet(wire, op.key, false);
                break;
            case OpKind::gets:
                proto::formatGet(wire, op.key, true);
                break;
            case OpKind::set:
                proto::formatSet(wire, op.key, op.val, 0, false);
                if (shadow != nullptr)
                    std::fprintf(shadow, "P %s %s\n", op.key.c_str(),
                                 op.val.c_str());
                break;
            case OpKind::del:
                proto::formatDelete(wire, op.key, false);
                if (shadow != nullptr)
                    std::fprintf(shadow, "Q %s\n", op.key.c_str());
                break;
            }
            ops.push_back(std::move(op));
        }
        if (shadow != nullptr)
            std::fflush(shadow);

        auto w0 = std::chrono::steady_clock::now();
        if (!sendAll(fd, wire)) {
            out->died = true;
            break;
        }
        for (const WinOp& op : ops) {
            if (op.kind == OpKind::get || op.kind == OpKind::gets) {
                // VALUE lines until END.
                for (;;) {
                    if (!rd.readLine(&line)) {
                        out->died = true;
                        break;
                    }
                    if (line == "END")
                        break;
                    if (line.rfind("VALUE ", 0) == 0) {
                        // header: VALUE <key> <flags> <bytes> [cas]
                        std::istringstream hs(line);
                        std::string tag, k;
                        uint32_t flags = 0;
                        size_t bytes = 0;
                        hs >> tag >> k >> flags >> bytes;
                        std::string data;
                        if (!rd.readBytes(bytes + 2, &data)) {
                            out->died = true;
                            break;
                        }
                    } else {
                        out->errors++;
                        break;  // ERROR-ish line terminates response
                    }
                }
            } else {
                if (!rd.readLine(&line)) {
                    out->died = true;
                    break;
                }
                if (op.kind == OpKind::set) {
                    if (line == "STORED") {
                        if (shadow != nullptr)
                            std::fprintf(shadow, "S %s %s\n",
                                         op.key.c_str(),
                                         op.val.c_str());
                    } else {
                        out->errors++;
                    }
                } else {  // del
                    if (line == "DELETED" || line == "NOT_FOUND") {
                        if (shadow != nullptr)
                            std::fprintf(shadow, "D %s\n",
                                         op.key.c_str());
                    } else {
                        out->errors++;
                    }
                }
            }
            if (out->died)
                break;
            out->acked++;
            done++;
        }
        if (shadow != nullptr)
            std::fflush(shadow);
        std::chrono::duration<double, std::micro> wel =
            std::chrono::steady_clock::now() - w0;
        out->windowUs.push_back(wel.count());
    }

    if (shadow != nullptr)
        std::fclose(shadow);
    ::close(fd);
}

double
percentile(std::vector<double>& v, double p)
{
    if (v.empty())
        return 0;
    size_t idx = static_cast<size_t>(p * double(v.size() - 1));
    return v[idx];
}

}  // namespace

LoadResult
runLoad(const LoadConfig& cfg)
{
    LoadResult res;
    unsigned conns = std::max(1u, cfg.connections);
    std::vector<PerConn> per(conns);
    std::vector<std::thread> threads;
    uint64_t opsPerConn = cfg.totalOps / conns;
    if (opsPerConn == 0)
        opsPerConn = 1;

    auto t0 = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < conns; c++)
        threads.emplace_back(loadWorker, std::cref(cfg), c,
                             opsPerConn, &per[c]);
    for (auto& t : threads)
        t.join();
    std::chrono::duration<double> el =
        std::chrono::steady_clock::now() - t0;
    res.seconds = el.count();

    std::vector<double> lat;
    for (const PerConn& p : per) {
        res.opsAcked += p.acked;
        res.errors += p.errors;
        res.serverDied = res.serverDied || p.died;
        lat.insert(lat.end(), p.windowUs.begin(), p.windowUs.end());
    }
    std::sort(lat.begin(), lat.end());
    res.p50us = percentile(lat, 0.50);
    res.p95us = percentile(lat, 0.95);
    res.p99us = percentile(lat, 0.99);
    res.opsPerSec =
        res.seconds > 0 ? double(res.opsAcked) / res.seconds : 0;
    return res;
}

VerifyResult
verifyShadow(const std::string& shadowPath, unsigned connections,
             uint16_t port)
{
    VerifyResult res;

    /** What a key is allowed to look like after the crash. */
    struct Allowed {
        bool baseKnown = false;  ///< an acked op pinned the state
        bool absentOk = false;
        std::vector<std::string> vals;
    };
    std::map<std::string, Allowed> keys;

    for (unsigned c = 0; c < connections; c++) {
        std::ifstream in(shadowPath + "." + std::to_string(c));
        if (!in.is_open())
            continue;  // connection died before writing its journal
        std::string tag, key, val;
        std::string lineBuf;
        while (std::getline(in, lineBuf)) {
            std::istringstream ls(lineBuf);
            if (!(ls >> tag >> key))
                continue;
            Allowed& a = keys[key];
            if (tag == "S") {
                if (!(ls >> val))
                    continue;
                a.baseKnown = true;
                a.absentOk = false;
                a.vals.clear();
                a.vals.push_back(val);
            } else if (tag == "D") {
                a.baseKnown = true;
                a.absentOk = true;
                a.vals.clear();
            } else if (tag == "P") {
                if (!(ls >> val))
                    continue;
                a.vals.push_back(val);
            } else if (tag == "Q") {
                a.absentOk = true;
            }
        }
    }

    int fd = connectTo(port);
    if (fd < 0) {
        res.violations = 1;
        res.examples.push_back("cannot connect to server");
        return res;
    }
    LineReader rd(fd);
    std::string wire, line;

    for (const auto& [key, a] : keys) {
        if (!a.baseKnown)
            continue;  // never acked: prior state unknown, unverifiable
        wire.clear();
        proto::formatGet(wire, key, false);
        if (!sendAll(fd, wire))
            break;
        bool found = false;
        std::string got;
        for (;;) {
            if (!rd.readLine(&line))
                break;
            if (line == "END")
                break;
            if (line.rfind("VALUE ", 0) == 0) {
                std::istringstream hs(line);
                std::string tag, k;
                uint32_t flags = 0;
                size_t bytes = 0;
                hs >> tag >> k >> flags >> bytes;
                std::string data;
                if (!rd.readBytes(bytes + 2, &data))
                    break;
                found = true;
                got = data.substr(0, bytes);
            } else {
                break;
            }
        }
        res.keysChecked++;
        bool ok;
        if (found) {
            ok = std::find(a.vals.begin(), a.vals.end(), got) !=
                 a.vals.end();
        } else {
            ok = a.absentOk;
        }
        if (!ok) {
            res.violations++;
            if (res.examples.size() < 5) {
                std::string ex = "key " + key + ": server=" +
                                 (found ? got.substr(0, 32) : "MISS") +
                                 " allowed={";
                for (const auto& v : a.vals)
                    ex += v.substr(0, 16) + ",";
                if (a.absentOk)
                    ex += "MISS";
                ex += "}";
                res.examples.push_back(std::move(ex));
            }
        }
    }
    ::close(fd);
    return res;
}

}  // namespace cnvm::server
