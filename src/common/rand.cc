#include "common/rand.h"

#include <cmath>

#include "common/error.h"

namespace cnvm {

Zipfian::Zipfian(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed)
{
    CNVM_CHECK(n > 0, "zipfian needs a non-empty key space");
    zetan_ = zeta(n, theta);
    double zeta2 = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
}

double
Zipfian::zeta(uint64_t n, double theta)
{
    double sum = 0;
    for (uint64_t i = 1; i <= n; i++)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

uint64_t
Zipfian::nextRank()
{
    double u = rng_.nextDouble();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto rank = static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

uint64_t
Zipfian::next()
{
    return mixHash(nextRank()) % n_;
}

uint64_t
fnv1a(const void* data, size_t len)
{
    const auto* p = static_cast<const unsigned char*>(data);
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < len; i++) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

}  // namespace cnvm
