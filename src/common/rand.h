/**
 * @file
 * Deterministic pseudo-random number generation used across benchmarks,
 * workload generators, and the crash-injection machinery.
 *
 * All randomness in the repository flows through Xorshift so experiments
 * are reproducible bit-for-bit across runs.
 */
#ifndef CNVM_COMMON_RAND_H
#define CNVM_COMMON_RAND_H

#include <cstddef>
#include <cstdint>

namespace cnvm {

/** xorshift128+ generator: fast, seedable, deterministic. */
class Xorshift {
 public:
    explicit Xorshift(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 seeding avoids degenerate all-zero states.
        state0_ = splitmix(seed);
        state1_ = splitmix(seed + 1);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t s1 = state0_;
        const uint64_t s0 = state1_;
        state0_ = s0;
        s1 ^= s1 << 23;
        state1_ = s1 ^ s0 ^ (s1 >> 17) ^ (s0 >> 26);
        return state1_ + s0;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t
    nextUint(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

 private:
    static uint64_t
    splitmix(uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    uint64_t state0_;
    uint64_t state1_;
};

/**
 * Zipfian key chooser over [0, n), as used by YCSB.
 *
 * Implements the Gray et al. rejection-free method YCSB uses, so hot keys
 * match the reference generator's distribution.
 */
class Zipfian {
 public:
    Zipfian(uint64_t n, double theta = 0.99, uint64_t seed = 1);

    /** Next key in [0, n), scrambled so hot keys are spread out. */
    uint64_t next();

    /** Next key without scrambling (rank 0 is the hottest). */
    uint64_t nextRank();

 private:
    static double zeta(uint64_t n, double theta);

    uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    Xorshift rng_;
};

/** 64-bit finalizer-style hash (used for key scrambling / bucket choice). */
inline uint64_t
mixHash(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/** FNV-1a hash over raw bytes. */
uint64_t fnv1a(const void* data, size_t len);

}  // namespace cnvm

#endif  // CNVM_COMMON_RAND_H
