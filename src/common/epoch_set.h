/**
 * @file
 * Open-addressing hash set of uint64 keys with O(1) clear.
 *
 * The runtimes track per-transaction read sets, write sets, and dirty
 * cache-line sets; transactions are short and frequent, so clearing must
 * not touch every bucket. Buckets carry an epoch tag: bumping the epoch
 * empties the set.
 */
#ifndef CNVM_COMMON_EPOCH_SET_H
#define CNVM_COMMON_EPOCH_SET_H

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace cnvm {

class EpochSet {
 public:
    explicit EpochSet(size_t initialCapacity = 1024)
    {
        size_t cap = 16;
        while (cap < initialCapacity)
            cap <<= 1;
        buckets_.resize(cap);
    }

    /** Insert `key`. @return true iff newly inserted. @pre key != 0. */
    bool
    insert(uint64_t key)
    {
        CNVM_CHECK(key != 0, "EpochSet cannot hold key 0");
        if ((count_ + 1) * 10 > buckets_.size() * 7)
            grow();
        return insertNoGrow(key);
    }

    bool
    contains(uint64_t key) const
    {
        size_t mask = buckets_.size() - 1;
        size_t i = mix(key) & mask;
        while (true) {
            const Bucket& b = buckets_[i];
            if (b.epoch != epoch_)
                return false;
            if (b.key == key)
                return true;
            i = (i + 1) & mask;
        }
    }

    void
    clear()
    {
        epoch_++;
        count_ = 0;
        if (epoch_ == 0) {
            // Epoch wrapped: hard-reset every bucket once per 2^32
            // clears.
            for (auto& b : buckets_)
                b = Bucket{};
            epoch_ = 1;
        }
    }

    size_t size() const { return count_; }

    /**
     * Test-only: jump the epoch counter to its maximum (re-tagging the
     * live keys so contents are preserved) so the next clear()
     * exercises the wrap hard-reset branch, otherwise reached once per
     * 2^32 clears.
     */
    void
    forceWrap()
    {
        for (auto& b : buckets_) {
            if (b.epoch == epoch_)
                b.epoch = ~0u;
        }
        epoch_ = ~0u;
    }

    /** Visit every key currently in the set. */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (const auto& b : buckets_) {
            if (b.epoch == epoch_)
                fn(b.key);
        }
    }

 private:
    struct Bucket {
        uint64_t key = 0;
        uint32_t epoch = 0;
    };

    static uint64_t
    mix(uint64_t x)
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 29;
        return x;
    }

    bool
    insertNoGrow(uint64_t key)
    {
        size_t mask = buckets_.size() - 1;
        size_t i = mix(key) & mask;
        while (true) {
            Bucket& b = buckets_[i];
            if (b.epoch != epoch_) {
                b.key = key;
                b.epoch = epoch_;
                count_++;
                return true;
            }
            if (b.key == key)
                return false;
            i = (i + 1) & mask;
        }
    }

    void
    grow()
    {
        std::vector<Bucket> old = std::move(buckets_);
        buckets_.assign(old.size() * 2, Bucket{});
        uint32_t oldEpoch = epoch_;
        count_ = 0;
        for (const auto& b : old) {
            if (b.epoch == oldEpoch)
                insertNoGrow(b.key);
        }
    }

    std::vector<Bucket> buckets_;
    uint32_t epoch_ = 1;
    size_t count_ = 0;
};

}  // namespace cnvm

#endif  // CNVM_COMMON_EPOCH_SET_H
