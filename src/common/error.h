/**
 * @file
 * Error-reporting helpers shared by every Clobber-NVM module.
 *
 * Follows the gem5 panic/fatal split: panic() flags an internal invariant
 * violation (a library bug), fatal() flags a condition caused by the caller
 * or the environment (bad configuration, unusable pool file, ...).
 */
#ifndef CNVM_COMMON_ERROR_H
#define CNVM_COMMON_ERROR_H

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace cnvm {

/** Exception thrown for user/environment errors (fatal()). */
class FatalError : public std::runtime_error {
 public:
    explicit FatalError(const std::string& what)
        : std::runtime_error(what) {}
};

/** Exception thrown for internal invariant violations (panic()). */
class PanicError : public std::logic_error {
 public:
    explicit PanicError(const std::string& what)
        : std::logic_error(what) {}
};

/** printf-style formatting into a std::string. */
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user/environment error. Throws FatalError. */
[[noreturn]] void fatal(const std::string& msg);

/** Report an internal bug. Throws PanicError. */
[[noreturn]] void panic(const std::string& msg);

}  // namespace cnvm

/** Assert an internal invariant; cheap enough to keep in release builds. */
#define CNVM_CHECK(cond, msg)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::cnvm::panic(::cnvm::strprintf(                            \
                "%s:%d: check failed: %s (%s)", __FILE__, __LINE__,     \
                #cond, (msg)));                                         \
        }                                                               \
    } while (0)

#endif  // CNVM_COMMON_ERROR_H
