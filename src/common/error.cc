#include "common/error.h"

#include <cstdio>

namespace cnvm {

std::string
strprintf(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

void
fatal(const std::string& msg)
{
    throw FatalError(msg);
}

void
panic(const std::string& msg)
{
    throw PanicError(msg);
}

}  // namespace cnvm
