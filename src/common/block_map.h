/**
 * @file
 * Open-addressing hash map from uint64 block number to a small
 * per-block state bitmask, with O(1) clear.
 *
 * The runtimes used to keep up to four separate EpochSets per
 * transaction slot (read set, write set, logged-block set, and the iDO
 * per-region sets), so one interposed store paid up to four independent
 * hash probes per 8-byte block. BlockMap folds all of that into one
 * epoch-tagged table: a single probe returns a mutable state byte
 * holding every per-block fact a protocol needs for its
 * clobber/suppress/log decision.
 *
 * Like EpochSet, clearing bumps an epoch tag instead of touching every
 * bucket; a bucket is live iff its epoch matches, so key 0 is a valid
 * block number here (EpochSet reserved it for "empty").
 */
#ifndef CNVM_COMMON_BLOCK_MAP_H
#define CNVM_COMMON_BLOCK_MAP_H

#include <cstdint>
#include <vector>

namespace cnvm {

class BlockMap {
 public:
    /** Per-block state bits (meaning assigned by the runtimes). */
    enum : uint8_t {
        kRead = 1,           ///< read before first written (clobber input)
        kWritten = 2,        ///< written (incl. fresh allocations)
        kLogged = 4,         ///< already undo-logged (PMDK range dedup)
        kRegionRead = 8,     ///< iDO: read in the current region
        kRegionWritten = 16  ///< iDO: written in the current region
    };
    /**
     * The region bits are scoped to an iDO idempotent region, not the
     * transaction: clearRegionBits() drops them map-wide in O(1) via a
     * second epoch tag (boundaries are per-store-site frequent, so an
     * O(capacity) sweep there would dominate the whole store path).
     */
    static constexpr uint8_t kRegionBits = kRegionRead | kRegionWritten;

    explicit BlockMap(size_t initialCapacity = 1024)
    {
        size_t cap = 16;
        while (cap < initialCapacity)
            cap <<= 1;
        buckets_.resize(cap);
    }

    /**
     * The one-probe hot path: state byte for `key`, inserting an empty
     * (state 0) entry if absent. The reference is invalidated by any
     * later ref() call (growth) and by clear().
     */
    uint8_t&
    ref(uint64_t key)
    {
        if ((count_ + 1) * 10 > buckets_.size() * 7)
            grow();
        size_t mask = buckets_.size() - 1;
        size_t i = mix(key) & mask;
        while (true) {
            Bucket& b = buckets_[i];
            if (b.epoch != epoch_) {
                b.key = key;
                b.epoch = epoch_;
                b.regionEpoch = regionEpoch_;
                b.state = 0;
                count_++;
                return b.state;
            }
            if (b.key == key) {
                if (b.regionEpoch != regionEpoch_) {
                    b.state &= static_cast<uint8_t>(~kRegionBits);
                    b.regionEpoch = regionEpoch_;
                }
                return b.state;
            }
            i = (i + 1) & mask;
        }
    }

    /** State of `key`; 0 if absent (absent and all-clear look alike). */
    uint8_t
    get(uint64_t key) const
    {
        size_t mask = buckets_.size() - 1;
        size_t i = mix(key) & mask;
        while (true) {
            const Bucket& b = buckets_[i];
            if (b.epoch != epoch_)
                return 0;
            if (b.key == key) {
                uint8_t st = b.state;
                if (b.regionEpoch != regionEpoch_)
                    st &= static_cast<uint8_t>(~kRegionBits);
                return st;
            }
            i = (i + 1) & mask;
        }
    }

    void
    clear()
    {
        epoch_++;
        count_ = 0;
        if (epoch_ == 0) {
            // Epoch wrapped: hard-reset every bucket once per 2^32
            // clears.
            for (auto& b : buckets_)
                b = Bucket{};
            epoch_ = 1;
        }
    }

    /**
     * Strip kRegionRead|kRegionWritten from every live entry in O(1)
     * (the iDO region-boundary reset): bump the region epoch; stale
     * region bits are masked lazily on the next access to each entry.
     */
    void
    clearRegionBits()
    {
        regionEpoch_++;
        if (regionEpoch_ == 0) {
            // Region epoch wrapped: hard-strip once per 2^32 regions.
            for (auto& b : buckets_) {
                b.state &= static_cast<uint8_t>(~kRegionBits);
                b.regionEpoch = 0;
            }
            regionEpoch_ = 1;
        }
    }

    size_t size() const { return count_; }
    size_t capacity() const { return buckets_.size(); }

    /** Visit every live (key, state) pair. */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (const auto& b : buckets_) {
            if (b.epoch == epoch_) {
                uint8_t st = b.state;
                if (b.regionEpoch != regionEpoch_)
                    st &= static_cast<uint8_t>(~kRegionBits);
                fn(b.key, st);
            }
        }
    }

    /**
     * Test-only: jump the epoch counter to its maximum (re-tagging the
     * live entries so contents are preserved) so the next clear()
     * exercises the wrap hard-reset branch, otherwise reached once per
     * 2^32 transactions.
     */
    void
    forceWrap()
    {
        for (auto& b : buckets_) {
            if (b.epoch == epoch_)
                b.epoch = ~0u;
        }
        epoch_ = ~0u;
    }

 private:
    struct Bucket {
        uint64_t key = 0;
        uint32_t epoch = 0;
        uint32_t regionEpoch = 0;
        uint8_t state = 0;
    };

    static uint64_t
    mix(uint64_t x)
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 29;
        return x;
    }

    void
    grow()
    {
        std::vector<Bucket> old = std::move(buckets_);
        buckets_.assign(old.size() * 2, Bucket{});
        uint32_t oldEpoch = epoch_;
        size_t mask = buckets_.size() - 1;
        count_ = 0;
        for (const auto& ob : old) {
            if (ob.epoch != oldEpoch)
                continue;
            size_t i = mix(ob.key) & mask;
            while (buckets_[i].epoch == epoch_)
                i = (i + 1) & mask;
            buckets_[i].key = ob.key;
            buckets_[i].epoch = epoch_;
            buckets_[i].regionEpoch = ob.regionEpoch;
            buckets_[i].state = ob.state;
            count_++;
        }
    }

    std::vector<Bucket> buckets_;
    uint32_t epoch_ = 1;
    uint32_t regionEpoch_ = 1;
    size_t count_ = 0;
};

}  // namespace cnvm

#endif  // CNVM_COMMON_BLOCK_MAP_H
