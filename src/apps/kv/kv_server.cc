#include "apps/kv/kv_server.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/rand.h"
#include "runtimes/descriptor.h"
#include "txn/txrun.h"

namespace cnvm::apps {

namespace {

uint64_t
bucketIndex(txn::Tx& tx, nvm::PPtr<PKvStore> root, std::string_view key)
{
    uint64_t shards = tx.ld(root->nShards);
    uint64_t perShard = tx.ld(root->bucketsPerShard);
    uint64_t h = fnv1a(key.data(), key.size());
    return (h % shards) * perShard + (h / shards) % perShard;
}

bool
keyEquals(txn::Tx& tx, nvm::PPtr<KvItem> it, std::string_view key)
{
    uint32_t klen = tx.ld(it->keyLen);
    if (klen != key.size())
        return false;
    char buf[ds::kMaxKeyLen];
    CNVM_CHECK(klen <= ds::kMaxKeyLen, "key too long");
    tx.ldBytes(buf, it->keyBytes(), klen);
    return std::memcmp(buf, key.data(), klen) == 0;
}

nvm::PPtr<KvItem>
makeItem(txn::Tx& tx, std::string_view key, std::string_view val,
         uint32_t flags, uint32_t version, nvm::PPtr<KvItem> next)
{
    auto it = tx.pnew<KvItem>(key.size() + val.size());
    tx.st(it->next, next);
    tx.st(it->keyLen, static_cast<uint32_t>(key.size()));
    tx.st(it->valLen, static_cast<uint32_t>(val.size()));
    tx.st(it->flags, flags);
    tx.st(it->version, version);
    tx.stBytes(it->keyBytes(), key.data(), key.size());
    tx.stBytes(it->valBytes(static_cast<uint32_t>(key.size())),
               val.data(), val.size());
    return it;
}

/**
 * Replace (or insert) the item under `key`. Shared by the set txfunc,
 * the cas txfunc (which passes the expected version through) and the
 * batch txfunc, so single-op and group-commit paths execute identical
 * structure code.
 */
void
doSet(txn::Tx& tx, nvm::PPtr<PKvStore> root, std::string_view key,
      std::string_view val, uint32_t flags)
{
    auto& head = root->buckets()[bucketIndex(tx, root, key)];
    auto prev = nvm::PPtr<KvItem>();
    for (auto it = tx.ld(head); !it.isNull();
         prev = it, it = tx.ld(it->next)) {
        if (!keyEquals(tx, it, key))
            continue;
        uint32_t version = tx.ld(it->version) + 1;
        if (tx.ld(it->valLen) == val.size()) {
            // In-place update: value bytes + metadata.
            tx.stBytes(it->valBytes(static_cast<uint32_t>(key.size())),
                       val.data(), val.size());
            tx.st(it->flags, flags);
            tx.st(it->version, version);
        } else {
            auto fresh = makeItem(tx, key, val, flags, version,
                                  tx.ld(it->next));
            if (prev.isNull())
                tx.st(head, fresh);
            else
                tx.st(prev->next, fresh);
            tx.pfree(it);
        }
        return;
    }
    auto fresh = makeItem(tx, key, val, flags, 1, tx.ld(head));
    tx.st(head, fresh);
}

MutResult
doDel(txn::Tx& tx, nvm::PPtr<PKvStore> root, std::string_view key)
{
    auto& head = root->buckets()[bucketIndex(tx, root, key)];
    auto prev = nvm::PPtr<KvItem>();
    for (auto it = tx.ld(head); !it.isNull();
         prev = it, it = tx.ld(it->next)) {
        if (!keyEquals(tx, it, key))
            continue;
        auto next = tx.ld(it->next);
        if (prev.isNull())
            tx.st(head, next);
        else
            tx.st(prev->next, next);
        tx.pfree(it);
        return MutResult::deleted;
    }
    return MutResult::notFound;
}

/**
 * Compare-and-store: the version check happens inside the
 * transaction, so the paper's CAS semantics hold under both normal
 * execution and recovery re-execution (the re-run sees the same
 * pre-transaction version the original run saw, because the original
 * run's effects were rolled back / never made durable).
 */
MutResult
doCas(txn::Tx& tx, nvm::PPtr<PKvStore> root, std::string_view key,
      std::string_view val, uint32_t flags, uint32_t expectedVersion)
{
    auto& head = root->buckets()[bucketIndex(tx, root, key)];
    auto prev = nvm::PPtr<KvItem>();
    for (auto it = tx.ld(head); !it.isNull();
         prev = it, it = tx.ld(it->next)) {
        if (!keyEquals(tx, it, key))
            continue;
        uint32_t version = tx.ld(it->version);
        if (version != expectedVersion)
            return MutResult::exists;
        uint32_t fresh = version + 1;
        if (tx.ld(it->valLen) == val.size()) {
            tx.stBytes(it->valBytes(static_cast<uint32_t>(key.size())),
                       val.data(), val.size());
            tx.st(it->flags, flags);
            tx.st(it->version, fresh);
        } else {
            auto repl = makeItem(tx, key, val, flags, fresh,
                                 tx.ld(it->next));
            if (prev.isNull())
                tx.st(head, repl);
            else
                tx.st(prev->next, repl);
            tx.pfree(it);
        }
        return MutResult::stored;
    }
    return MutResult::notFound;
}

void
kvSetFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PKvStore>(a.get<uint64_t>());
    auto key = a.getString();
    auto val = a.getString();
    auto flags = a.get<uint32_t>();
    doSet(tx, root, key, val, flags);
}

void
kvGetFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PKvStore>(a.get<uint64_t>());
    auto key = a.getString();
    auto* out = reinterpret_cast<KvReadResult*>(a.get<uint64_t>());
    // Read-only transactions are never re-executed (their begin record
    // is never persisted), but keep the dangling-pointer guard
    // anyway: it documents the volatile-out-pointer contract.
    if (tx.recovering())
        return;
    out->found = false;
    auto& head = root->buckets()[bucketIndex(tx, root, key)];
    for (auto it = tx.ld(head); !it.isNull(); it = tx.ld(it->next)) {
        if (!keyEquals(tx, it, key))
            continue;
        out->found = true;
        out->len = tx.ld(it->valLen);
        out->flags = tx.ld(it->flags);
        out->version = tx.ld(it->version);
        CNVM_CHECK(out->len <= ds::kMaxValLen, "value too long");
        tx.ldBytes(out->value,
                   it->valBytes(static_cast<uint32_t>(key.size())),
                   out->len);
        return;
    }
}

void
kvDelFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PKvStore>(a.get<uint64_t>());
    auto key = a.getString();
    auto* out = reinterpret_cast<MutResult*>(a.get<uint64_t>());
    MutResult r = doDel(tx, root, key);
    // The out pointer is a stack address of the crashed process during
    // recovery re-execution — never dereference it then.
    if (out != nullptr && !tx.recovering())
        *out = r;
}

void
kvCasFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PKvStore>(a.get<uint64_t>());
    auto key = a.getString();
    auto val = a.getString();
    auto flags = a.get<uint32_t>();
    auto expected = a.get<uint32_t>();
    auto* out = reinterpret_cast<MutResult*>(a.get<uint64_t>());
    MutResult r = doCas(tx, root, key, val, flags, expected);
    if (out != nullptr && !tx.recovering())
        *out = r;
}

/**
 * Group commit body: the serialized batch rides in one length-prefixed
 * blob (count, then per op: kind, flags, casVersion, key, val), so the
 * whole batch is one v_log entry and recovery re-executes it as one
 * unit — all of the batch or none of it is ever durable.
 */
void
kvBatchFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PKvStore>(a.get<uint64_t>());
    auto* results = reinterpret_cast<MutResult*>(a.get<uint64_t>());
    bool live = !tx.recovering();
    txn::ArgReader ops(a.getBytes());
    auto count = ops.get<uint32_t>();
    for (uint32_t i = 0; i < count; i++) {
        auto kind = static_cast<MutKind>(ops.get<uint8_t>());
        auto flags = ops.get<uint32_t>();
        auto casVersion = ops.get<uint32_t>();
        auto key = ops.getString();
        auto val = ops.getString();
        MutResult r = MutResult::error;
        switch (kind) {
          case MutKind::set:
            doSet(tx, root, key, val, flags);
            r = MutResult::stored;
            break;
          case MutKind::del:
            r = doDel(tx, root, key);
            break;
          case MutKind::cas:
            r = doCas(tx, root, key, val, flags, casVersion);
            break;
        }
        if (live && results != nullptr)
            results[i] = r;
    }
}

const txn::FuncId kKvSet = txn::registerTxFunc("kv_set", kvSetFn);
const txn::FuncId kKvGet = txn::registerTxFunc("kv_get", kvGetFn);
const txn::FuncId kKvDel = txn::registerTxFunc("kv_del", kvDelFn);
const txn::FuncId kKvCas = txn::registerTxFunc("kv_cas", kvCasFn);
const txn::FuncId kKvBatch = txn::registerTxFunc("kv_batch", kvBatchFn);

}  // namespace

KvServer::KvServer(txn::Engine& eng, uint64_t rootOff,
                   const Config& cfg)
    : eng_(eng), lockMode_(cfg.lockMode)
{
    if (rootOff == 0) {
        size_t nBuckets = cfg.shards * cfg.bucketsPerShard;
        rootOff = ds::rawCreate(
            eng_, sizeof(PKvStore) +
                      nBuckets * sizeof(nvm::PPtr<KvItem>));
        root_ = nvm::PPtr<PKvStore>(rootOff);
        auto& pool = eng_.rt.pool();
        PKvStore init{};
        init.nShards = cfg.shards;
        init.bucketsPerShard = cfg.bucketsPerShard;
        pool.write(root_.get(), &init, sizeof(init));
        pool.persist(root_.get(), sizeof(init));
    } else {
        root_ = nvm::PPtr<PKvStore>(rootOff);
    }
    shards_ = std::vector<ShardState>(root_->nShards);
}

size_t
KvServer::shardOf(std::string_view key) const
{
    return fnv1a(key.data(), key.size()) % root_->nShards;
}

void
KvServer::lockShard(size_t idx, bool exclusive)
{
    if (lockMode_ == LockMode::spin) {
        shards_[idx].spin.lock();
    } else if (exclusive) {
        shards_[idx].rw.lock();
    } else {
        shards_[idx].rw.lock_shared();
    }
}

void
KvServer::unlockShard(size_t idx, bool exclusive)
{
    if (lockMode_ == LockMode::spin) {
        shards_[idx].spin.unlock();
    } else if (exclusive) {
        shards_[idx].rw.unlock();
    } else {
        shards_[idx].rw.unlock_shared();
    }
}

namespace {

/** Exception-safe shard lock (a simulated crash mid-transaction must
 *  not leave the lock held). */
class ShardGuard {
 public:
    ShardGuard(KvServer& server, size_t idx, bool exclusive)
        : server_(server), idx_(idx), exclusive_(exclusive)
    {
        server_.lockShard(idx_, exclusive_);
    }
    ~ShardGuard() { server_.unlockShard(idx_, exclusive_); }
    ShardGuard(const ShardGuard&) = delete;
    ShardGuard& operator=(const ShardGuard&) = delete;

 private:
    KvServer& server_;
    size_t idx_;
    bool exclusive_;
};

/**
 * Exception-safe exclusive lock over a batch's shard set. Indices are
 * locked in ascending order — concurrent batches from different
 * workers may overlap shard sets, and ordered acquisition is what
 * rules deadlock out.
 */
class MultiShardGuard {
 public:
    MultiShardGuard(KvServer& server, std::vector<size_t>&& sorted)
        : server_(server), idx_(std::move(sorted))
    {
        for (size_t i : idx_)
            server_.lockShard(i, true);
    }
    ~MultiShardGuard()
    {
        for (auto it = idx_.rbegin(); it != idx_.rend(); ++it)
            server_.unlockShard(*it, true);
    }
    MultiShardGuard(const MultiShardGuard&) = delete;
    MultiShardGuard& operator=(const MultiShardGuard&) = delete;

 private:
    KvServer& server_;
    std::vector<size_t> idx_;
};

}  // namespace

void
KvServer::set(std::string_view key, std::string_view val,
              uint32_t flags)
{
    size_t shard = shardOf(key);
    shards_[shard].stats.sets.fetch_add(1, std::memory_order_relaxed);
    ShardGuard g(*this, shard, true);
    txn::run(eng_, kKvSet, root_.raw(), key, val, flags);
}

bool
KvServer::get(std::string_view key, KvReadResult* out)
{
    size_t shard = shardOf(key);
    auto& st = shards_[shard].stats;
    st.gets.fetch_add(1, std::memory_order_relaxed);
    ShardGuard g(*this, shard, false);
    txn::run(eng_, kKvGet, root_.raw(), key,
             reinterpret_cast<uint64_t>(out));
    if (out->found)
        st.hits.fetch_add(1, std::memory_order_relaxed);
    return out->found;
}

bool
KvServer::get(std::string_view key, ds::LookupResult* out)
{
    KvReadResult full;
    if (!get(key, &full)) {
        out->found = false;
        return false;
    }
    out->found = true;
    out->len = full.len;
    std::memcpy(out->value, full.value, full.len);
    return true;
}

MutResult
KvServer::cas(std::string_view key, std::string_view val,
              uint32_t flags, uint32_t expectedVersion)
{
    size_t shard = shardOf(key);
    MutResult r = MutResult::error;
    {
        ShardGuard g(*this, shard, true);
        txn::run(eng_, kKvCas, root_.raw(), key, val, flags,
                 expectedVersion, reinterpret_cast<uint64_t>(&r));
    }
    auto& st = shards_[shard].stats;
    if (r == MutResult::stored)
        st.casStores.fetch_add(1, std::memory_order_relaxed);
    else
        st.casMisses.fetch_add(1, std::memory_order_relaxed);
    return r;
}

bool
KvServer::del(std::string_view key)
{
    size_t shard = shardOf(key);
    auto& st = shards_[shard].stats;
    st.dels.fetch_add(1, std::memory_order_relaxed);
    MutResult r = MutResult::error;
    {
        ShardGuard g(*this, shard, true);
        txn::run(eng_, kKvDel, root_.raw(), key,
                 reinterpret_cast<uint64_t>(&r));
    }
    if (r == MutResult::deleted) {
        st.delHits.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
KvServer::applyBatch(std::span<const MutOp> ops, MutResult* results)
{
    if (ops.empty())
        return;
    std::vector<size_t> shardIdx;
    shardIdx.reserve(ops.size());
    for (const auto& op : ops)
        shardIdx.push_back(shardOf(op.key));
    std::sort(shardIdx.begin(), shardIdx.end());
    shardIdx.erase(std::unique(shardIdx.begin(), shardIdx.end()),
                   shardIdx.end());

    txn::ArgWriter blob;
    blob.put(static_cast<uint32_t>(ops.size()));
    for (const auto& op : ops) {
        blob.put(static_cast<uint8_t>(op.kind));
        blob.put(op.flags);
        blob.put(op.casVersion);
        blob.putBytes(op.key.data(), op.key.size());
        blob.putBytes(op.val.data(), op.val.size());
    }

    // The batch blob rides in the descriptor's v_log argument area
    // alongside the root/results words and span framing. Reject
    // oversized batches with the same typed error as a log overflow
    // so callers fall back to op-by-op replay instead of panicking.
    constexpr size_t kBatchArgSlack = 64;
    if (blob.bytes().size() + kBatchArgSlack > rt::kMaxArgBytes)
        throw txn::LogOverflowError(
            blob.bytes().size() + kBatchArgSlack, rt::kMaxArgBytes);

    for (const auto& op : ops) {
        auto& st = shards_[shardOf(op.key)].stats;
        if (op.kind == MutKind::set)
            st.sets.fetch_add(1, std::memory_order_relaxed);
        else if (op.kind == MutKind::del)
            st.dels.fetch_add(1, std::memory_order_relaxed);
    }

    MultiShardGuard g(*this, std::move(shardIdx));
    txn::run(eng_, kKvBatch, root_.raw(),
             reinterpret_cast<uint64_t>(results), blob.bytes());

    for (size_t i = 0; i < ops.size(); i++) {
        auto& st = shards_[shardOf(ops[i].key)].stats;
        if (ops[i].kind == MutKind::del &&
            results[i] == MutResult::deleted)
            st.delHits.fetch_add(1, std::memory_order_relaxed);
        else if (ops[i].kind == MutKind::cas &&
                 results[i] == MutResult::stored)
            st.casStores.fetch_add(1, std::memory_order_relaxed);
        else if (ops[i].kind == MutKind::cas)
            st.casMisses.fetch_add(1, std::memory_order_relaxed);
    }
}

uint64_t
KvServer::itemCount() const
{
    uint64_t n = 0;
    uint64_t buckets = root_->nShards * root_->bucketsPerShard;
    for (uint64_t b = 0; b < buckets; b++) {
        for (auto it = root_->buckets()[b]; !it.isNull();
             it = it->next) {
            n++;
        }
    }
    return n;
}

KvServer::StatsTotals
KvServer::statsTotals() const
{
    StatsTotals t;
    for (const auto& s : shards_) {
        t.gets += s.stats.gets.load(std::memory_order_relaxed);
        t.hits += s.stats.hits.load(std::memory_order_relaxed);
        t.sets += s.stats.sets.load(std::memory_order_relaxed);
        t.dels += s.stats.dels.load(std::memory_order_relaxed);
        t.delHits += s.stats.delHits.load(std::memory_order_relaxed);
        t.casStores +=
            s.stats.casStores.load(std::memory_order_relaxed);
        t.casMisses +=
            s.stats.casMisses.load(std::memory_order_relaxed);
    }
    return t;
}

}  // namespace cnvm::apps
