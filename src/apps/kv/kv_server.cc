#include "apps/kv/kv_server.h"

#include <cstring>

#include "common/error.h"
#include "common/rand.h"
#include "txn/txrun.h"

namespace cnvm::apps {

namespace {

uint64_t
bucketIndex(txn::Tx& tx, nvm::PPtr<PKvStore> root, std::string_view key)
{
    uint64_t shards = tx.ld(root->nShards);
    uint64_t perShard = tx.ld(root->bucketsPerShard);
    uint64_t h = fnv1a(key.data(), key.size());
    return (h % shards) * perShard + (h / shards) % perShard;
}

bool
keyEquals(txn::Tx& tx, nvm::PPtr<KvItem> it, std::string_view key)
{
    uint32_t klen = tx.ld(it->keyLen);
    if (klen != key.size())
        return false;
    char buf[ds::kMaxKeyLen];
    CNVM_CHECK(klen <= ds::kMaxKeyLen, "key too long");
    tx.ldBytes(buf, it->keyBytes(), klen);
    return std::memcmp(buf, key.data(), klen) == 0;
}

nvm::PPtr<KvItem>
makeItem(txn::Tx& tx, std::string_view key, std::string_view val,
         uint32_t flags, uint32_t version, nvm::PPtr<KvItem> next)
{
    auto it = tx.pnew<KvItem>(key.size() + val.size());
    tx.st(it->next, next);
    tx.st(it->keyLen, static_cast<uint32_t>(key.size()));
    tx.st(it->valLen, static_cast<uint32_t>(val.size()));
    tx.st(it->flags, flags);
    tx.st(it->version, version);
    tx.stBytes(it->keyBytes(), key.data(), key.size());
    tx.stBytes(it->valBytes(static_cast<uint32_t>(key.size())),
               val.data(), val.size());
    return it;
}

void
kvSetFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PKvStore>(a.get<uint64_t>());
    auto key = a.getString();
    auto val = a.getString();
    auto flags = a.get<uint32_t>();

    auto& head = root->buckets()[bucketIndex(tx, root, key)];
    auto prev = nvm::PPtr<KvItem>();
    for (auto it = tx.ld(head); !it.isNull();
         prev = it, it = tx.ld(it->next)) {
        if (!keyEquals(tx, it, key))
            continue;
        uint32_t version = tx.ld(it->version) + 1;
        if (tx.ld(it->valLen) == val.size()) {
            // In-place update: value bytes + metadata.
            tx.stBytes(it->valBytes(static_cast<uint32_t>(key.size())),
                       val.data(), val.size());
            tx.st(it->flags, flags);
            tx.st(it->version, version);
        } else {
            auto fresh = makeItem(tx, key, val, flags, version,
                                  tx.ld(it->next));
            if (prev.isNull())
                tx.st(head, fresh);
            else
                tx.st(prev->next, fresh);
            tx.pfree(it);
        }
        return;
    }
    auto fresh = makeItem(tx, key, val, flags, 1, tx.ld(head));
    tx.st(head, fresh);
}

void
kvGetFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PKvStore>(a.get<uint64_t>());
    auto key = a.getString();
    auto* out = reinterpret_cast<ds::LookupResult*>(a.get<uint64_t>());
    out->found = false;
    auto& head = root->buckets()[bucketIndex(tx, root, key)];
    for (auto it = tx.ld(head); !it.isNull(); it = tx.ld(it->next)) {
        if (!keyEquals(tx, it, key))
            continue;
        out->found = true;
        out->len = tx.ld(it->valLen);
        CNVM_CHECK(out->len <= ds::kMaxValLen, "value too long");
        tx.ldBytes(out->value,
                   it->valBytes(static_cast<uint32_t>(key.size())),
                   out->len);
        return;
    }
}

void
kvDelFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PKvStore>(a.get<uint64_t>());
    auto key = a.getString();
    auto* out = reinterpret_cast<bool*>(a.get<uint64_t>());
    auto& head = root->buckets()[bucketIndex(tx, root, key)];
    auto prev = nvm::PPtr<KvItem>();
    for (auto it = tx.ld(head); !it.isNull();
         prev = it, it = tx.ld(it->next)) {
        if (!keyEquals(tx, it, key))
            continue;
        auto next = tx.ld(it->next);
        if (prev.isNull())
            tx.st(head, next);
        else
            tx.st(prev->next, next);
        tx.pfree(it);
        if (out != nullptr)
            *out = true;
        return;
    }
    if (out != nullptr)
        *out = false;
}

const txn::FuncId kKvSet = txn::registerTxFunc("kv_set", kvSetFn);
const txn::FuncId kKvGet = txn::registerTxFunc("kv_get", kvGetFn);
const txn::FuncId kKvDel = txn::registerTxFunc("kv_del", kvDelFn);

}  // namespace

KvServer::KvServer(txn::Engine& eng, uint64_t rootOff,
                   const Config& cfg)
    : eng_(eng), lockMode_(cfg.lockMode)
{
    if (rootOff == 0) {
        size_t nBuckets = cfg.shards * cfg.bucketsPerShard;
        rootOff = ds::rawCreate(
            eng_, sizeof(PKvStore) +
                      nBuckets * sizeof(nvm::PPtr<KvItem>));
        root_ = nvm::PPtr<PKvStore>(rootOff);
        auto& pool = eng_.rt.pool();
        PKvStore init{};
        init.nShards = cfg.shards;
        init.bucketsPerShard = cfg.bucketsPerShard;
        pool.write(root_.get(), &init, sizeof(init));
        pool.persist(root_.get(), sizeof(init));
    } else {
        root_ = nvm::PPtr<PKvStore>(rootOff);
    }
    shards_ = std::vector<Shard>(root_->nShards);
}

size_t
KvServer::shardOf(std::string_view key) const
{
    return fnv1a(key.data(), key.size()) % root_->nShards;
}

void
KvServer::lockShard(size_t idx, bool exclusive)
{
    if (lockMode_ == LockMode::spin) {
        shards_[idx].spin.lock();
    } else if (exclusive) {
        shards_[idx].rw.lock();
    } else {
        shards_[idx].rw.lock_shared();
    }
}

void
KvServer::unlockShard(size_t idx, bool exclusive)
{
    if (lockMode_ == LockMode::spin) {
        shards_[idx].spin.unlock();
    } else if (exclusive) {
        shards_[idx].rw.unlock();
    } else {
        shards_[idx].rw.unlock_shared();
    }
}

namespace {

/** Exception-safe shard lock (a simulated crash mid-transaction must
 *  not leave the lock held). */
class ShardGuard {
 public:
    ShardGuard(KvServer& server, size_t idx, bool exclusive)
        : server_(server), idx_(idx), exclusive_(exclusive)
    {
        server_.lockShard(idx_, exclusive_);
    }
    ~ShardGuard() { server_.unlockShard(idx_, exclusive_); }
    ShardGuard(const ShardGuard&) = delete;
    ShardGuard& operator=(const ShardGuard&) = delete;

 private:
    KvServer& server_;
    size_t idx_;
    bool exclusive_;
};

}  // namespace

void
KvServer::set(std::string_view key, std::string_view val,
              uint32_t flags)
{
    ShardGuard g(*this, shardOf(key), true);
    txn::run(eng_, kKvSet, root_.raw(), key, val, flags);
}

bool
KvServer::get(std::string_view key, ds::LookupResult* out)
{
    ShardGuard g(*this, shardOf(key), false);
    txn::run(eng_, kKvGet, root_.raw(), key,
             reinterpret_cast<uint64_t>(out));
    return out->found;
}

bool
KvServer::del(std::string_view key)
{
    ShardGuard g(*this, shardOf(key), true);
    bool removed = false;
    txn::run(eng_, kKvDel, root_.raw(), key,
             reinterpret_cast<uint64_t>(&removed));
    return removed;
}

uint64_t
KvServer::itemCount() const
{
    uint64_t n = 0;
    uint64_t buckets = root_->nShards * root_->bucketsPerShard;
    for (uint64_t b = 0; b < buckets; b++) {
        for (auto it = root_->buckets()[b]; !it.isNull();
             it = it->next) {
            n++;
        }
    }
    return n;
}

}  // namespace cnvm::apps
