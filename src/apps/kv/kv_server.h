/**
 * @file
 * Memcached-like persistent key-value store (paper Section 5.6).
 *
 * The paper ports memcached 1.2.5 to Mnemosyne/PMDK/Clobber-NVM and
 * drives it with memslap (16-byte keys, 64-byte values). This module
 * is the equivalent server core: a persistent hash table with
 * memcached-style items (flags + version for CAS), sharded locking,
 * and — because old memcached's coarse lock scaled poorly — two
 * selectable lock implementations, spinlock and reader-writer lock
 * (the paper's Figure 10 compares exactly these).
 */
#ifndef CNVM_APPS_KV_SERVER_H
#define CNVM_APPS_KV_SERVER_H

#include <string_view>
#include <vector>

#include "nvm/pptr.h"
#include "sim/lock.h"
#include "structures/kv.h"
#include "txn/engine.h"

namespace cnvm::apps {

/** Persistent item: header + inline key and value bytes. */
struct KvItem {
    nvm::PPtr<KvItem> next;
    uint32_t keyLen;
    uint32_t valLen;
    uint32_t flags;
    uint32_t version;  ///< bumped on update (memcached CAS id)

    char*
    keyBytes()
    {
        return reinterpret_cast<char*>(this + 1);
    }
    char*
    valBytes(uint32_t klen)
    {
        return keyBytes() + klen;
    }
};

struct PKvStore {
    uint64_t nShards;
    uint64_t bucketsPerShard;

    nvm::PPtr<KvItem>*
    buckets()
    {
        return reinterpret_cast<nvm::PPtr<KvItem>*>(this + 1);
    }
};

class KvServer {
 public:
    enum class LockMode { spin, rw };

    struct Config {
        size_t shards = 64;
        size_t bucketsPerShard = 2048;
        LockMode lockMode = LockMode::rw;
    };

    explicit KvServer(txn::Engine& eng, uint64_t rootOff,
                      const Config& cfg);
    explicit KvServer(txn::Engine& eng) : KvServer(eng, 0, Config{}) {}

    uint64_t rootOff() const { return root_.raw(); }

    /** Store (insert or replace). */
    void set(std::string_view key, std::string_view val,
             uint32_t flags = 0);

    /** @return true and fill `out` on hit. */
    bool get(std::string_view key, ds::LookupResult* out);

    /** @return true if the key existed. */
    bool del(std::string_view key);

    /** Item count by direct traversal (diagnostics). */
    uint64_t itemCount() const;

    /** @name internal (public for the RAII guard) */
    /// @{
    void lockShard(size_t idx, bool exclusive);
    void unlockShard(size_t idx, bool exclusive);
    /// @}

 private:
    struct Shard {
        sim::SimMutex spin{/* spin */ true};
        sim::SimSharedMutex rw;
    };

    size_t shardOf(std::string_view key) const;

    txn::Engine& eng_;
    nvm::PPtr<PKvStore> root_;
    LockMode lockMode_;
    std::vector<Shard> shards_;
};

}  // namespace cnvm::apps

#endif  // CNVM_APPS_KV_SERVER_H
