/**
 * @file
 * Memcached-like persistent key-value store (paper Section 5.6).
 *
 * The paper ports memcached 1.2.5 to Mnemosyne/PMDK/Clobber-NVM and
 * drives it with memslap (16-byte keys, 64-byte values). This module
 * is the equivalent server core: a persistent hash table with
 * memcached-style items (flags + version for CAS), sharded locking,
 * and — because old memcached's coarse lock scaled poorly — two
 * selectable lock implementations, spinlock and reader-writer lock
 * (the paper's Figure 10 compares exactly these).
 *
 * The store is the engine room of the network-facing KV service
 * (src/server/): every piece of state one shard owns — its locks,
 * its served-request counters, and the engine slot of the worker
 * thread that owns it in thread-per-core mode — lives in one
 * ShardState struct, so a server worker touches exactly one cache
 * neighborhood per shard. Mutations can be applied one per
 * transaction (set/del/cas) or batched into a single transaction
 * (applyBatch — the group-commit path: one begin persist, one seal,
 * one commit fence for the whole batch).
 */
#ifndef CNVM_APPS_KV_SERVER_H
#define CNVM_APPS_KV_SERVER_H

#include <atomic>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "nvm/pptr.h"
#include "sim/lock.h"
#include "structures/kv.h"
#include "txn/engine.h"

namespace cnvm::apps {

/** Persistent item: header + inline key and value bytes. */
struct KvItem {
    nvm::PPtr<KvItem> next;
    uint32_t keyLen;
    uint32_t valLen;
    uint32_t flags;
    uint32_t version;  ///< bumped on update (memcached CAS id)

    char*
    keyBytes()
    {
        return reinterpret_cast<char*>(this + 1);
    }
    char*
    valBytes(uint32_t klen)
    {
        return keyBytes() + klen;
    }
};

struct PKvStore {
    uint64_t nShards;
    uint64_t bucketsPerShard;

    nvm::PPtr<KvItem>*
    buckets()
    {
        return reinterpret_cast<nvm::PPtr<KvItem>*>(this + 1);
    }
};

/**
 * Volatile out-parameter of get/gets: the value plus the memcached
 * item metadata (flags and the CAS id, i.e. KvItem::version).
 */
struct KvReadResult {
    bool found = false;
    uint32_t len = 0;
    uint32_t flags = 0;
    uint32_t version = 0;  ///< memcached "cas unique"
    char value[ds::kMaxValLen];

    std::string
    str() const
    {
        return {value, len};
    }
};

/** Mutation kinds accepted by applyBatch. */
enum class MutKind : uint8_t { set = 0, del = 1, cas = 2 };

/** Outcome of one mutation (maps 1:1 onto protocol responses). */
enum class MutResult : uint8_t {
    stored = 0,    ///< set/cas wrote the item
    deleted = 1,   ///< del removed the item
    notFound = 2,  ///< del/cas: no such key
    exists = 3,    ///< cas: version mismatch, item untouched
    error = 4,     ///< transaction failed (e.g. log overflow)
};

/** One mutation of a batch. Views must outlive applyBatch. */
struct MutOp {
    MutKind kind = MutKind::set;
    std::string_view key;
    std::string_view val;     ///< unused for del
    uint32_t flags = 0;
    uint32_t casVersion = 0;  ///< cas only: expected KvItem::version
};

class KvServer {
 public:
    enum class LockMode { spin, rw };

    struct Config {
        size_t shards = 64;
        size_t bucketsPerShard = 2048;
        LockMode lockMode = LockMode::rw;
    };

    /**
     * Everything one shard owns, in one struct: its two lock
     * implementations (one is active per LockMode), its serving
     * counters, and — in thread-per-core server mode — the engine
     * slot of the worker thread that owns the shard. The counters
     * are relaxed atomics: they are served from the protocol `stats`
     * command while workers mutate them.
     */
    struct ShardState {
        sim::SimMutex spin{/* spin */ true};
        sim::SimSharedMutex rw;

        struct Stats {
            std::atomic<uint64_t> gets{0};
            std::atomic<uint64_t> hits{0};
            std::atomic<uint64_t> sets{0};
            std::atomic<uint64_t> dels{0};
            std::atomic<uint64_t> delHits{0};
            std::atomic<uint64_t> casStores{0};
            std::atomic<uint64_t> casMisses{0};
        } stats;

        /** Engine slot of the owning worker (server mode; set by
         *  KvService before its workers start, 0 otherwise). */
        unsigned ownerSlot = 0;
    };

    /** Aggregate of every shard's counters (stats command). */
    struct StatsTotals {
        uint64_t gets = 0, hits = 0, sets = 0, dels = 0, delHits = 0,
                 casStores = 0, casMisses = 0;
    };

    explicit KvServer(txn::Engine& eng, uint64_t rootOff,
                      const Config& cfg);
    explicit KvServer(txn::Engine& eng) : KvServer(eng, 0, Config{}) {}

    uint64_t rootOff() const { return root_.raw(); }

    /** Store (insert or replace). */
    void set(std::string_view key, std::string_view val,
             uint32_t flags = 0);

    /** @return true and fill `out` on hit. */
    bool get(std::string_view key, ds::LookupResult* out);

    /** get with item metadata (the `gets`/CAS read path). */
    bool get(std::string_view key, KvReadResult* out);

    /**
     * Compare-and-store: replace the item iff its version equals
     * `expectedVersion` (memcached `cas`).
     * @return stored, exists (version mismatch) or notFound.
     */
    MutResult cas(std::string_view key, std::string_view val,
                  uint32_t flags, uint32_t expectedVersion);

    /** @return true if the key existed. */
    bool del(std::string_view key);

    /**
     * Group commit: apply every mutation of `ops` in ONE transaction,
     * paying one begin persist, one log seal and one commit fence for
     * the whole batch. Locks every involved shard (in index order, so
     * concurrent batches cannot deadlock) for the duration. Fills
     * `results[i]` for each op. Throws txn::LogOverflowError — with
     * no mutation applied — when the batch outgrows the slot's log
     * area; callers retry op-by-op (see server::KvService).
     */
    void applyBatch(std::span<const MutOp> ops, MutResult* results);

    /** Item count by direct traversal (diagnostics; not safe against
     *  concurrent mutation). */
    uint64_t itemCount() const;

    /** @name Shard topology (the server partitions these) */
    /// @{
    size_t shardCount() const { return shards_.size(); }
    size_t shardOf(std::string_view key) const;
    ShardState& shardState(size_t idx) { return shards_[idx]; }
    StatsTotals statsTotals() const;
    /// @}

    txn::Engine& engine() { return eng_; }
    LockMode lockMode() const { return lockMode_; }

    /** @name internal (public for the RAII guard) */
    /// @{
    void lockShard(size_t idx, bool exclusive);
    void unlockShard(size_t idx, bool exclusive);
    /// @}

 private:
    txn::Engine& eng_;
    nvm::PPtr<PKvStore> root_;
    LockMode lockMode_;
    std::vector<ShardState> shards_;
};

}  // namespace cnvm::apps

#endif  // CNVM_APPS_KV_SERVER_H
