#include "apps/vacation/vacation.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "common/error.h"
#include "common/rand.h"
#include "txn/txrun.h"

namespace cnvm::apps {

namespace {

constexpr uint64_t kNumItemTables = 3;  // cars, flights, rooms

/** Uniform intra-tx view over an RB or AVL table. */
class Table {
 public:
    Table(TableKind kind, uint64_t rootOff)
        : kind_(kind), rootOff_(rootOff) {}

    static uint64_t
    create(txn::Tx& tx, TableKind kind)
    {
        if (kind == TableKind::rbtree)
            return ds::RbMap::create(tx).raw();
        return ds::AvlMap::create(tx).raw();
    }

    bool
    put(txn::Tx& tx, uint64_t key, uint64_t value)
    {
        if (kind_ == TableKind::rbtree)
            return rb().put(tx, key, value);
        return avl().put(tx, key, value);
    }

    bool
    get(txn::Tx& tx, uint64_t key, uint64_t* value) const
    {
        if (kind_ == TableKind::rbtree)
            return rb().get(tx, key, value);
        return avl().get(tx, key, value);
    }

    bool
    erase(txn::Tx& tx, uint64_t key)
    {
        if (kind_ == TableKind::rbtree)
            return rb().erase(tx, key);
        return avl().erase(tx, key);
    }

    bool
    floor(txn::Tx& tx, uint64_t key, uint64_t* foundKey,
          uint64_t* value) const
    {
        if (kind_ == TableKind::rbtree)
            return rb().floor(tx, key, foundKey, value);
        return avl().floor(tx, key, foundKey, value);
    }

 private:
    ds::RbMap
    rb() const
    {
        return ds::RbMap(nvm::PPtr<ds::PRbTree>(rootOff_));
    }
    ds::AvlMap
    avl() const
    {
        return ds::AvlMap(nvm::PPtr<ds::PAvlTree>(rootOff_));
    }

    TableKind kind_;
    uint64_t rootOff_;
};

Table
itemTable(txn::Tx& tx, nvm::PPtr<PVacation> root, uint64_t type)
{
    auto kind = static_cast<TableKind>(tx.ld(root->tableKind));
    return Table(kind, tx.ld(root->tables[type]));
}

Table
customerTable(txn::Tx& tx, nvm::PPtr<PVacation> root)
{
    auto kind = static_cast<TableKind>(tx.ld(root->tableKind));
    return Table(kind, tx.ld(root->customers));
}

/** Create the root and its four empty tables. */
void
vacInitFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto kind = static_cast<TableKind>(a.get<uint64_t>());
    auto* rootOut = reinterpret_cast<uint64_t*>(a.get<uint64_t>());
    auto root = tx.pnew<PVacation>();
    tx.st(root->tableKind, static_cast<uint64_t>(kind));
    for (uint64_t t = 0; t < kNumItemTables; t++)
        tx.st(root->tables[t], Table::create(tx, kind));
    tx.st(root->customers, Table::create(tx, kind));
    *rootOut = root.raw();
}

/** Add `total` units of item (type, id) at `price` (create/extend). */
void
vacAddItemFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PVacation>(a.get<uint64_t>());
    auto type = a.get<uint64_t>();
    auto id = a.get<uint64_t>();
    auto total = a.get<uint64_t>();
    auto price = a.get<uint64_t>();

    Table tbl = itemTable(tx, root, type);
    uint64_t off = 0;
    if (tbl.get(tx, id, &off)) {
        auto item = nvm::PPtr<ResvItem>(off);
        tx.st(item->total, tx.ld(item->total) + total);
        tx.st(item->price, price);
        return;
    }
    auto item = tx.pnew<ResvItem>();
    tx.st(item->id, id);
    tx.st(item->total, total);
    tx.st(item->price, price);
    tbl.put(tx, id, item.raw());
}

/** Remove item (type, id) if it has no outstanding reservations. */
void
vacRemoveItemFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PVacation>(a.get<uint64_t>());
    auto type = a.get<uint64_t>();
    auto id = a.get<uint64_t>();

    Table tbl = itemTable(tx, root, type);
    uint64_t off = 0;
    if (!tbl.get(tx, id, &off))
        return;
    auto item = nvm::PPtr<ResvItem>(off);
    if (tx.ld(item->used) != 0)
        return;  // reservations outstanding: keep it
    tbl.erase(tx, id);
    tx.pfree(item.raw());
}

/**
 * The reservation task: `q` queries over random tables, then reserve
 * the highest-priced available item found per type (STAMP's client
 * behaviour).
 */
void
vacMakeReservationFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PVacation>(a.get<uint64_t>());
    auto custId = a.get<uint64_t>();
    auto seed = a.get<uint64_t>();
    auto q = a.get<uint64_t>();
    auto records = a.get<uint64_t>();

    Xorshift rng(seed);
    uint64_t bestOff[kNumItemTables] = {0, 0, 0};
    uint64_t bestPrice[kNumItemTables] = {0, 0, 0};
    for (uint64_t j = 0; j < q; j++) {
        uint64_t type = rng.nextUint(kNumItemTables);
        uint64_t id = 1 + rng.nextUint(records);
        Table tbl = itemTable(tx, root, type);
        uint64_t off = 0;
        if (!tbl.floor(tx, id, nullptr, &off))
            continue;
        auto item = nvm::PPtr<ResvItem>(off);
        uint64_t price = tx.ld(item->price);
        bool available = tx.ld(item->used) < tx.ld(item->total);
        if (available && price > bestPrice[type]) {
            bestPrice[type] = price;
            bestOff[type] = off;
        }
    }

    // Reserve the winners.
    bool any = false;
    for (uint64_t type = 0; type < kNumItemTables; type++) {
        if (bestOff[type] != 0)
            any = true;
    }
    if (!any)
        return;

    // Ensure the customer record exists.
    Table cust = customerTable(tx, root);
    uint64_t custOff = 0;
    if (!cust.get(tx, custId, &custOff)) {
        auto c = tx.pnew<Customer>();
        tx.st(c->id, custId);
        cust.put(tx, custId, c.raw());
        custOff = c.raw();
    }
    auto customer = nvm::PPtr<Customer>(custOff);

    for (uint64_t type = 0; type < kNumItemTables; type++) {
        if (bestOff[type] == 0)
            continue;
        auto item = nvm::PPtr<ResvItem>(bestOff[type]);
        uint64_t used = tx.ld(item->used);
        if (used >= tx.ld(item->total))
            continue;
        tx.st(item->used, used + 1);  // clobbered input
        auto resv = tx.pnew<CustResv>();
        tx.st(resv->type, type);
        tx.st(resv->id, tx.ld(item->id));
        tx.st(resv->price, tx.ld(item->price));
        tx.st(resv->next, tx.ld(customer->reservations));
        tx.st(customer->reservations, resv);
    }
}

/** Cancel everything a customer holds and delete the record. */
void
vacDeleteCustomerFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PVacation>(a.get<uint64_t>());
    auto custId = a.get<uint64_t>();

    Table cust = customerTable(tx, root);
    uint64_t custOff = 0;
    if (!cust.get(tx, custId, &custOff))
        return;
    auto customer = nvm::PPtr<Customer>(custOff);

    auto resv = tx.ld(customer->reservations);
    while (!resv.isNull()) {
        Table tbl = itemTable(tx, root, tx.ld(resv->type));
        uint64_t off = 0;
        if (tbl.get(tx, tx.ld(resv->id), &off)) {
            auto item = nvm::PPtr<ResvItem>(off);
            tx.st(item->used, tx.ld(item->used) - 1);
        }
        auto next = tx.ld(resv->next);
        tx.pfree(resv.raw());
        resv = next;
    }
    cust.erase(tx, custId);
    tx.pfree(custOff);
}

/** Batched populate: insert `count` sequential items in one tx. */
void
vacAddBatchFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<PVacation>(a.get<uint64_t>());
    auto type = a.get<uint64_t>();
    auto idStart = a.get<uint64_t>();
    auto count = a.get<uint64_t>();
    auto seed = a.get<uint64_t>();

    Xorshift rng(seed);
    Table tbl = itemTable(tx, root, type);
    for (uint64_t i = 0; i < count; i++) {
        auto item = tx.pnew<ResvItem>();
        tx.st(item->id, idStart + i);
        tx.st(item->total, uint64_t(100));
        tx.st(item->price, 50 + rng.nextUint(450));
        tbl.put(tx, idStart + i, item.raw());
    }
}

const txn::FuncId kVacInit = txn::registerTxFunc("vac_init", vacInitFn);
const txn::FuncId kVacAddBatch =
    txn::registerTxFunc("vac_add_batch", vacAddBatchFn);
const txn::FuncId kVacAddItem =
    txn::registerTxFunc("vac_add_item", vacAddItemFn);
const txn::FuncId kVacRemoveItem =
    txn::registerTxFunc("vac_remove_item", vacRemoveItemFn);
const txn::FuncId kVacMakeResv =
    txn::registerTxFunc("vac_make_reservation", vacMakeReservationFn);
const txn::FuncId kVacDeleteCust =
    txn::registerTxFunc("vac_delete_customer", vacDeleteCustomerFn);

/** @name Direct (non-transactional) traversal for validate(). */
/// @{
template <typename Fn>
void
walkRb(const ds::RbNode* n, Fn&& fn)
{
    if (n == nullptr)
        return;
    walkRb(n->left.get(), fn);
    fn(n->key, n->val.raw());
    walkRb(n->right.get(), fn);
}

template <typename Fn>
void
walkAvl(const ds::AvlNode* n, Fn&& fn)
{
    if (n == nullptr)
        return;
    walkAvl(n->left.get(), fn);
    fn(n->key, n->value);
    walkAvl(n->right.get(), fn);
}

template <typename Fn>
void
walkTable(TableKind kind, uint64_t rootOff, Fn&& fn)
{
    if (kind == TableKind::rbtree) {
        auto t = nvm::PPtr<ds::PRbTree>(rootOff);
        walkRb(t->root.get(), fn);
    } else {
        auto t = nvm::PPtr<ds::PAvlTree>(rootOff);
        walkAvl(t->root.get(), fn);
    }
}
/// @}

}  // namespace

Vacation::Vacation(txn::Engine& eng, uint64_t rootOff,
                   const Config& cfg)
    : eng_(eng), cfg_(cfg)
{
    if (rootOff == 0) {
        uint64_t newRoot = 0;
        txn::run(eng_, kVacInit,
                 static_cast<uint64_t>(cfg.tableKind),
                 reinterpret_cast<uint64_t>(&newRoot));
        root_ = nvm::PPtr<PVacation>(newRoot);
        // Populate in batches (bounded per-transaction log volume).
        constexpr uint64_t kBatch = 64;
        for (uint64_t t = 0; t < kNumItemTables; t++) {
            for (uint64_t id = 1; id <= cfg.recordsPerTable;
                 id += kBatch) {
                uint64_t n =
                    std::min(kBatch, cfg.recordsPerTable - id + 1);
                txn::run(eng_, kVacAddBatch, root_.raw(), t, id, n,
                         id * 31 + t);
            }
        }
    } else {
        root_ = nvm::PPtr<PVacation>(rootOff);
    }
}

void
Vacation::runTask(uint64_t seed)
{
    Xorshift rng(seed);
    uint64_t action = rng.nextUint(100);
    std::lock_guard<sim::SimMutex> g(lock_);
    if (action < 90) {
        uint64_t custId = 1 + rng.nextUint(cfg_.recordsPerTable);
        txn::run(eng_, kVacMakeResv, root_.raw(), custId, rng.next(),
                 uint64_t(cfg_.queriesPerTask),
                 cfg_.recordsPerTable);
    } else if (action < 99) {
        uint64_t custId = 1 + rng.nextUint(cfg_.recordsPerTable);
        txn::run(eng_, kVacDeleteCust, root_.raw(), custId);
    } else if (action == 99 && rng.nextBool(0.5)) {
        txn::run(eng_, kVacAddItem, root_.raw(),
                 rng.nextUint(kNumItemTables),
                 1 + rng.nextUint(cfg_.recordsPerTable), uint64_t(10),
                 50 + rng.nextUint(450));
    } else {
        txn::run(eng_, kVacRemoveItem, root_.raw(),
                 rng.nextUint(kNumItemTables),
                 1 + rng.nextUint(cfg_.recordsPerTable));
    }
}

bool
Vacation::validate() const
{
    auto kind = static_cast<TableKind>(root_->tableKind);
    // Tally reservations held by customers.
    std::unordered_map<uint64_t, uint64_t> held;  // type<<32|id -> n
    walkTable(kind, root_->customers, [&](uint64_t, uint64_t off) {
        auto cust = nvm::PPtr<Customer>(off);
        for (auto r = cust->reservations; !r.isNull(); r = r->next)
            held[(r->type << 32) | r->id]++;
    });
    // Compare with item used counts.
    bool ok = true;
    uint64_t usedSum = 0;
    for (uint64_t t = 0; t < kNumItemTables; t++) {
        walkTable(kind, root_->tables[t],
                  [&](uint64_t id, uint64_t off) {
                      auto item = nvm::PPtr<ResvItem>(off);
                      usedSum += item->used;
                      auto it = held.find((t << 32) | id);
                      uint64_t h =
                          it == held.end() ? 0 : it->second;
                      if (item->used != h || item->used > item->total)
                          ok = false;
                  });
    }
    uint64_t heldSum = 0;
    for (const auto& [k, n] : held)
        heldSum += n;
    return ok && usedSum == heldSum;
}

uint64_t
Vacation::totalReservations() const
{
    auto kind = static_cast<TableKind>(root_->tableKind);
    uint64_t n = 0;
    walkTable(kind, root_->customers, [&](uint64_t, uint64_t off) {
        auto cust = nvm::PPtr<Customer>(off);
        for (auto r = cust->reservations; !r.isNull(); r = r->next)
            n++;
    });
    return n;
}

}  // namespace cnvm::apps
