/**
 * @file
 * STAMP vacation (Cao Minh et al., IISWC '08) ported to the
 * failure-atomicity runtimes (paper Section 5.7 / Figure 11).
 *
 * A travel agency keeps four reservation tables — cars, flights,
 * rooms, customers — persisted in NVM; client threads stay volatile.
 * Each *task* is one transaction performing `queriesPerTask` table
 * queries followed by reservations (or a customer deletion / item
 * add-remove). The tables run on either red-black trees (STAMP's
 * default) or the STAMP AVL tree — the paper swaps them to show how
 * the underlying structure changes logging volume.
 *
 * Workload mix, per the paper: 99% reservation/cancellation tasks,
 * 1% create/destroy items.
 */
#ifndef CNVM_APPS_VACATION_H
#define CNVM_APPS_VACATION_H

#include "nvm/pptr.h"
#include "sim/lock.h"
#include "structures/avltree.h"
#include "structures/rbtree.h"
#include "txn/engine.h"

namespace cnvm::apps {

enum class TableKind : uint64_t { rbtree = 0, avltree = 1 };

/** A reservable item (car, flight, or room). */
struct ResvItem {
    uint64_t id;
    uint64_t total;
    uint64_t used;
    uint64_t price;
};

/** One reservation held by a customer. */
struct CustResv {
    nvm::PPtr<CustResv> next;
    uint64_t type;   ///< 0 car, 1 flight, 2 room
    uint64_t id;
    uint64_t price;
};

struct Customer {
    uint64_t id;
    nvm::PPtr<CustResv> reservations;
};

/** Persistent root: table kind + the four table roots. */
struct PVacation {
    uint64_t tableKind;
    uint64_t tables[3];   ///< car/flight/room map roots
    uint64_t customers;   ///< customer map root
};

class Vacation {
 public:
    struct Config {
        TableKind tableKind = TableKind::rbtree;
        uint64_t recordsPerTable = 4096;  ///< paper: 100000
        unsigned queriesPerTask = 4;      ///< paper sweeps 2..6
    };

    /** Create (rootOff = 0) or reattach; create populates tables. */
    Vacation(txn::Engine& eng, uint64_t rootOff, const Config& cfg);

    uint64_t rootOff() const { return root_.raw(); }

    /**
     * Run one task. `seed` drives the task's deterministic RNG (it is
     * a transaction input, preserved in the v_log for re-execution).
     * Mix: 99% make/cancel reservations, 1% add/remove items.
     */
    void runTask(uint64_t seed);

    /**
     * Consistency check (direct traversal): every item's used count
     * equals the reservations customers hold on it.
     * @return true if consistent.
     */
    bool validate() const;

    /** Items reserved across all customers (diagnostics). */
    uint64_t totalReservations() const;

 private:
    txn::Engine& eng_;
    nvm::PPtr<PVacation> root_;
    Config cfg_;
    sim::SimMutex lock_;  ///< STAMP uses coarse transactions
};

}  // namespace cnvm::apps

#endif  // CNVM_APPS_VACATION_H
