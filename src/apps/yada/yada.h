/**
 * @file
 * yada: Ruppert's Delaunay mesh refinement (STAMP), persistent
 * (paper Section 5.8 / Figure 12).
 *
 * The STAMP input file (ttimeu10000.2) is not available offline, so
 * the initial mesh is *generated*: a jittered grid of points inside
 * the unit square is Delaunay-triangulated by incremental insertion
 * (Bowyer-Watson) — the same cavity machinery refinement uses — over
 * the square's two seed triangles. The square's four sides are the
 * boundary segments.
 *
 * As in the paper, the persistent state is the triangle mesh, the
 * boundary-segment set, and the work queue of bad triangles; each
 * refinement step (pop a bad triangle, insert its circumcenter or
 * split an encroached boundary segment, retriangulate the cavity) is
 * one failure-atomic transaction. Refinement runs until no triangle
 * has a minimum angle below the configured constraint (15-30 degrees
 * in Figure 12).
 */
#ifndef CNVM_APPS_YADA_H
#define CNVM_APPS_YADA_H

#include "apps/yada/geometry.h"
#include "nvm/pptr.h"
#include "txn/engine.h"

namespace cnvm::apps {

/** Persistent triangle. Vertices CCW; nbr[i] shares the edge opposite
 *  vertex i (v[i+1], v[i+2]). */
struct YTri {
    uint32_t v[3];
    uint32_t alive;
    nvm::PPtr<YTri> nbr[3];
    nvm::PPtr<YTri> qnext;   ///< work-queue link
    uint32_t inQueue;
    uint32_t pad;
};

/** Persistent growable point array. */
struct YPoints {
    uint64_t count;
    uint64_t cap;

    geom::Pt*
    data()
    {
        return reinterpret_cast<geom::Pt*>(this + 1);
    }
};

/** Persistent boundary segment (linked list; few dozen entries). */
struct YSeg {
    nvm::PPtr<YSeg> next;
    uint32_t a;
    uint32_t b;
};

struct PMesh {
    uint64_t pointsOff;
    nvm::PPtr<YTri> queueHead;
    nvm::PPtr<YSeg> segHead;
    nvm::PPtr<YTri> anyAlive;   ///< walk entry point
    uint64_t aliveTriangles;
    uint64_t badThresholdMilliDeg;  ///< angle constraint * 1000
};

class Yada {
 public:
    struct Config {
        uint64_t gridSide = 24;       ///< ~gridSide^2 initial points
        double angleConstraintDeg = 20.0;
        uint64_t maxPoints = 200000;
        uint64_t maxSteps = 400000;   ///< safety cap (>20.7 degrees
                                      ///< Ruppert may not terminate)
    };

    /** Create (rootOff = 0: generate + triangulate) or reattach. */
    Yada(txn::Engine& eng, uint64_t rootOff, const Config& cfg);

    uint64_t rootOff() const { return root_.raw(); }

    /** True iff bad triangles remain in the queue. */
    bool hasWork() const { return !root_->queueHead.isNull(); }

    /** One refinement transaction. @return false if queue was empty. */
    bool refineStep();

    /** Run refinement to completion (or the step cap). @return steps. */
    uint64_t refineAll();

    /** Alive triangles (the paper's "final mesh size"). */
    uint64_t meshSize() const { return root_->aliveTriangles; }

    uint64_t pointCount() const;

    /**
     * Direct full-mesh validation: neighbor symmetry, CCW orientation,
     * alive count, and (optionally) the angle constraint.
     * @return true if the mesh is consistent.
     */
    bool validate(bool requireQuality) const;

 private:
    txn::Engine& eng_;
    nvm::PPtr<PMesh> root_;
    Config cfg_;
};

}  // namespace cnvm::apps

#endif  // CNVM_APPS_YADA_H
