/**
 * @file
 * 2D geometric predicates for Delaunay triangulation and Ruppert
 * refinement (yada, paper Section 5.8).
 *
 * Plain double-precision evaluation — inputs are generated jittered
 * grids well away from degeneracy, so adaptive-precision predicates
 * are unnecessary.
 */
#ifndef CNVM_APPS_YADA_GEOMETRY_H
#define CNVM_APPS_YADA_GEOMETRY_H

#include <cmath>

namespace cnvm::apps::geom {

struct Pt {
    double x;
    double y;
};

/** > 0 iff (a,b,c) wind counter-clockwise. */
inline double
orient2d(const Pt& a, const Pt& b, const Pt& c)
{
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/**
 * > 0 iff d lies inside the circumcircle of CCW triangle (a,b,c).
 */
inline double
inCircle(const Pt& a, const Pt& b, const Pt& c, const Pt& d)
{
    double adx = a.x - d.x, ady = a.y - d.y;
    double bdx = b.x - d.x, bdy = b.y - d.y;
    double cdx = c.x - d.x, cdy = c.y - d.y;
    double ad2 = adx * adx + ady * ady;
    double bd2 = bdx * bdx + bdy * bdy;
    double cd2 = cdx * cdx + cdy * cdy;
    return adx * (bdy * cd2 - cdy * bd2) -
           ady * (bdx * cd2 - cdx * bd2) +
           ad2 * (bdx * cdy - cdx * bdy);
}

/** Circumcenter of triangle (a,b,c). */
inline Pt
circumcenter(const Pt& a, const Pt& b, const Pt& c)
{
    double d = 2.0 * orient2d(a, b, c);
    double a2 = a.x * a.x + a.y * a.y;
    double b2 = b.x * b.x + b.y * b.y;
    double c2 = c.x * c.x + c.y * c.y;
    Pt out;
    out.x = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) /
            d;
    out.y = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) /
            d;
    return out;
}

inline double
dist(const Pt& a, const Pt& b)
{
    double dx = a.x - b.x;
    double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

/** Smallest interior angle of (a,b,c), in degrees. */
inline double
minAngleDeg(const Pt& a, const Pt& b, const Pt& c)
{
    double la = dist(b, c);
    double lb = dist(a, c);
    double lc = dist(a, b);
    auto angle = [](double opp, double s1, double s2) {
        double cosv = (s1 * s1 + s2 * s2 - opp * opp) / (2 * s1 * s2);
        if (cosv > 1)
            cosv = 1;
        if (cosv < -1)
            cosv = -1;
        return std::acos(cosv) * 180.0 / M_PI;
    };
    double aa = angle(la, lb, lc);
    double ab = angle(lb, la, lc);
    double ac = 180.0 - aa - ab;
    return std::fmin(aa, std::fmin(ab, ac));
}

/** True iff p lies inside the diametral circle of segment (a,b). */
inline bool
encroaches(const Pt& a, const Pt& b, const Pt& p)
{
    // Angle apb > 90 degrees <=> p inside the diametral circle.
    double vx1 = a.x - p.x, vy1 = a.y - p.y;
    double vx2 = b.x - p.x, vy2 = b.y - p.y;
    return vx1 * vx2 + vy1 * vy2 < 0;
}

}  // namespace cnvm::apps::geom

#endif  // CNVM_APPS_YADA_GEOMETRY_H
