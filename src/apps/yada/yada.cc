#include "apps/yada/yada.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.h"
#include "common/rand.h"
#include "txn/txrun.h"

namespace cnvm::apps {

namespace {

using geom::Pt;
using TP = nvm::PPtr<YTri>;

YPoints*
points(txn::Tx& tx, nvm::PPtr<PMesh> mesh)
{
    return static_cast<YPoints*>(
        tx.pool().at(tx.ld(mesh->pointsOff)));
}

Pt
loadPt(txn::Tx& tx, nvm::PPtr<PMesh> mesh, uint32_t idx)
{
    Pt p;
    tx.ldBytes(&p, &points(tx, mesh)->data()[idx], sizeof(Pt));
    return p;
}

void
triPts(txn::Tx& tx, nvm::PPtr<PMesh> mesh, TP t, Pt out[3])
{
    for (int i = 0; i < 3; i++)
        out[i] = loadPt(tx, mesh, tx.ld(t->v[i]));
}

bool
isBad(txn::Tx& tx, nvm::PPtr<PMesh> mesh, TP t)
{
    Pt p[3];
    triPts(tx, mesh, t, p);
    double threshold =
        static_cast<double>(tx.ld(mesh->badThresholdMilliDeg)) / 1000.0;
    return geom::minAngleDeg(p[0], p[1], p[2]) < threshold;
}

void
pushIfBad(txn::Tx& tx, nvm::PPtr<PMesh> mesh, TP t)
{
    if (tx.ld(t->inQueue) != 0 || !isBad(tx, mesh, t))
        return;
    tx.st(t->qnext, tx.ld(mesh->queueHead));
    tx.st(mesh->queueHead, t);
    tx.st(t->inQueue, 1u);
}

/** Result of walking toward a point. */
struct Located {
    TP tri;          ///< triangle containing p (or the last one)
    int exitEdge;    ///< -1 if inside; else the hull edge index
};

/**
 * Visibility walk from `start` toward p. Returns the containing
 * triangle, or the triangle + hull edge p lies beyond.
 */
Located
locate(txn::Tx& tx, nvm::PPtr<PMesh> mesh, const Pt& p, TP start)
{
    TP cur = start;
    size_t guard = 0;
    while (true) {
        CNVM_CHECK(++guard < 100000, "point-location walk diverged");
        Pt v[3];
        triPts(tx, mesh, cur, v);
        int exit = -1;
        for (int i = 0; i < 3 && exit < 0; i++) {
            const Pt& a = v[(i + 1) % 3];
            const Pt& b = v[(i + 2) % 3];
            if (geom::orient2d(a, b, p) < 0)
                exit = i;
        }
        if (exit < 0)
            return {cur, -1};
        TP next = tx.ld(cur->nbr[exit]);
        if (next.isNull())
            return {cur, exit};
        cur = next;
    }
}

/** A directed cavity-boundary edge (interior on the left). */
struct BoundaryEdge {
    uint32_t a;
    uint32_t b;
    TP ext;  ///< outside neighbor (null on the hull)
};

/**
 * Insert point index `pIdx` (coordinates `p`) whose containing
 * triangle is `startTri`. If `splitA`/`splitB` name a hull edge the
 * point lies on, no triangle is created across that edge (the fan
 * stays open and (a,p),(p,b) become hull edges).
 * @return number of new triangles pushed as bad.
 */
void
insertPoint(txn::Tx& tx, nvm::PPtr<PMesh> mesh, const Pt& p,
            uint32_t pIdx, TP startTri, uint32_t splitA,
            uint32_t splitB)
{
    // 1. Grow the cavity: BFS over triangles whose circumcircle
    //    contains p.
    std::vector<TP> cavity;
    std::unordered_set<uint64_t> inCavity;
    std::vector<TP> stack{startTri};
    inCavity.insert(startTri.raw());
    while (!stack.empty()) {
        TP t = stack.back();
        stack.pop_back();
        cavity.push_back(t);
        for (int i = 0; i < 3; i++) {
            TP n = tx.ld(t->nbr[i]);
            if (n.isNull() || inCavity.count(n.raw()) != 0)
                continue;
            Pt v[3];
            triPts(tx, mesh, n, v);
            if (geom::inCircle(v[0], v[1], v[2], p) > 0) {
                inCavity.insert(n.raw());
                stack.push_back(n);
            }
        }
    }

    // 2. Collect the cavity's boundary edges (deterministic order).
    std::vector<BoundaryEdge> boundary;
    for (TP t : cavity) {
        for (int i = 0; i < 3; i++) {
            TP n = tx.ld(t->nbr[i]);
            if (!n.isNull() && inCavity.count(n.raw()) != 0)
                continue;
            BoundaryEdge e;
            e.a = tx.ld(t->v[(i + 1) % 3]);
            e.b = tx.ld(t->v[(i + 2) % 3]);
            e.ext = n;
            boundary.push_back(e);
        }
    }

    // 3. Delete the cavity triangles. Triangles still linked into the
    //    work queue are only marked dead (the queue pop frees them).
    for (TP t : cavity) {
        tx.st(t->alive, 0u);
        if (tx.ld(t->inQueue) == 0)
            tx.pfree(t.raw());
    }
    tx.st(mesh->aliveTriangles,
          tx.ld(mesh->aliveTriangles) - cavity.size());

    // 4. Re-triangulate: fan p to every boundary edge.
    std::unordered_map<uint32_t, TP> byA;  // edge start vertex -> tri
    std::unordered_map<uint32_t, TP> byB;  // edge end vertex -> tri
    std::vector<std::pair<BoundaryEdge, TP>> created;
    for (const auto& e : boundary) {
        if ((e.a == splitA && e.b == splitB) ||
            (e.a == splitB && e.b == splitA)) {
            continue;  // p lies on this hull edge: leave the fan open
        }
        auto t = tx.pnew<YTri>();
        tx.st(t->v[0], e.a);
        tx.st(t->v[1], e.b);
        tx.st(t->v[2], pIdx);
        tx.st(t->alive, 1u);
        byA[e.a] = t;
        byB[e.b] = t;
        created.emplace_back(e, t);
    }
    CNVM_CHECK(!created.empty(), "cavity retriangulation empty");

    // 5. Wire neighbors.
    for (auto& [e, t] : created) {
        // Edge (v0,v1) = (a,b), opposite v2: the outside neighbor.
        tx.st(t->nbr[2], e.ext);
        if (!e.ext.isNull()) {
            // Fix the outside triangle's back pointer on edge (b,a).
            for (int i = 0; i < 3; i++) {
                uint32_t ea = tx.ld(e.ext->v[(i + 1) % 3]);
                uint32_t eb = tx.ld(e.ext->v[(i + 2) % 3]);
                if (ea == e.b && eb == e.a) {
                    tx.st(e.ext->nbr[i], t);
                    break;
                }
            }
        }
        // Edge (v1,v2) = (b,p), opposite v0: the fan tri starting at b.
        auto itA = byA.find(e.b);
        tx.st(t->nbr[0], itA == byA.end() ? TP() : itA->second);
        // Edge (v2,v0) = (p,a), opposite v1: the fan tri ending at a.
        auto itB = byB.find(e.a);
        tx.st(t->nbr[1], itB == byB.end() ? TP() : itB->second);
    }

    tx.st(mesh->anyAlive, created.front().second);
    tx.st(mesh->aliveTriangles,
          tx.ld(mesh->aliveTriangles) + created.size());
    for (auto& [e, t] : created)
        pushIfBad(tx, mesh, t);
}

/** Append a point to the persistent array. @return its index. */
uint32_t
appendPoint(txn::Tx& tx, nvm::PPtr<PMesh> mesh, const Pt& p)
{
    YPoints* pts = points(tx, mesh);
    uint64_t count = tx.ld(pts->count);
    CNVM_CHECK(count < tx.ld(pts->cap), "point arena exhausted");
    tx.stBytes(&pts->data()[count], &p, sizeof(Pt));
    tx.st(pts->count, count + 1);
    return static_cast<uint32_t>(count);
}

/** Split boundary segment (a,b) in the segment list at point m. */
void
splitSegment(txn::Tx& tx, nvm::PPtr<PMesh> mesh, uint32_t a,
             uint32_t b, uint32_t m)
{
    for (auto s = tx.ld(mesh->segHead); !s.isNull();
         s = tx.ld(s->next)) {
        uint32_t sa = tx.ld(s->a);
        uint32_t sb = tx.ld(s->b);
        if ((sa == a && sb == b) || (sa == b && sb == a)) {
            // Reuse this node for (a,m), prepend (m,b).
            tx.st(s->b, m);
            tx.st(s->a, a);
            auto half = tx.pnew<YSeg>();
            tx.st(half->a, m);
            tx.st(half->b, b);
            tx.st(half->next, tx.ld(mesh->segHead));
            tx.st(mesh->segHead, half);
            return;
        }
    }
    // Edge not registered (can happen after simplifier-skipped
    // cascades): register both halves so future splits find them.
    auto h1 = tx.pnew<YSeg>();
    tx.st(h1->a, a);
    tx.st(h1->b, m);
    auto h2 = tx.pnew<YSeg>();
    tx.st(h2->a, m);
    tx.st(h2->b, b);
    tx.st(h2->next, tx.ld(mesh->segHead));
    tx.st(h1->next, h2);
    tx.st(mesh->segHead, h1);
}

/** Create the square domain: 4 corners, 2 seed triangles, 4 sides. */
void
yadaCreateFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto maxPoints = a.get<uint64_t>();
    auto thresholdMilli = a.get<uint64_t>();
    auto* rootOut = reinterpret_cast<uint64_t*>(a.get<uint64_t>());

    auto mesh = tx.pnew<PMesh>();
    uint64_t ptsOff = tx.pmallocOff(sizeof(YPoints) +
                                    maxPoints * sizeof(Pt));
    tx.st(mesh->pointsOff, ptsOff);
    auto* pts = static_cast<YPoints*>(tx.pool().at(ptsOff));
    tx.st(pts->count, uint64_t(0));
    tx.st(pts->cap, maxPoints);
    tx.st(mesh->badThresholdMilliDeg, thresholdMilli);

    const Pt corners[4] = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
    for (const Pt& c : corners)
        appendPoint(tx, mesh, c);

    auto t0 = tx.pnew<YTri>();
    auto t1 = tx.pnew<YTri>();
    // t0 = (0,1,2), t1 = (0,2,3); shared diagonal (0,2).
    tx.st(t0->v[0], 0u);
    tx.st(t0->v[1], 1u);
    tx.st(t0->v[2], 2u);
    tx.st(t0->alive, 1u);
    tx.st(t0->nbr[1], t1);  // edge (2,0)
    tx.st(t1->v[0], 0u);
    tx.st(t1->v[1], 2u);
    tx.st(t1->v[2], 3u);
    tx.st(t1->alive, 1u);
    tx.st(t1->nbr[2], t0);  // edge (0,2)
    tx.st(mesh->anyAlive, t0);
    tx.st(mesh->aliveTriangles, uint64_t(2));

    const uint32_t sides[4][2] = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
    for (const auto& s : sides) {
        auto seg = tx.pnew<YSeg>();
        tx.st(seg->a, s[0]);
        tx.st(seg->b, s[1]);
        tx.st(seg->next, tx.ld(mesh->segHead));
        tx.st(mesh->segHead, seg);
    }
    *rootOut = mesh.raw();
}

/** Build-phase insertion of an interior point. */
void
yadaInsertFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto mesh = nvm::PPtr<PMesh>(a.get<uint64_t>());
    Pt p;
    p.x = a.get<double>();
    p.y = a.get<double>();
    Located loc = locate(tx, mesh, p, tx.ld(mesh->anyAlive));
    CNVM_CHECK(loc.exitEdge < 0, "build point outside the domain");
    uint32_t idx = appendPoint(tx, mesh, p);
    insertPoint(tx, mesh, p, idx, loc.tri, ~0u, ~0u);
}

/** Seed the work queue with every bad triangle (mesh-wide BFS). */
void
yadaSeedQueueFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto mesh = nvm::PPtr<PMesh>(a.get<uint64_t>());
    std::unordered_set<uint64_t> seen;
    std::vector<TP> stack{tx.ld(mesh->anyAlive)};
    seen.insert(stack.back().raw());
    while (!stack.empty()) {
        TP t = stack.back();
        stack.pop_back();
        pushIfBad(tx, mesh, t);
        for (int i = 0; i < 3; i++) {
            TP n = tx.ld(t->nbr[i]);
            if (!n.isNull() && seen.insert(n.raw()).second)
                stack.push_back(n);
        }
    }
}

/** One refinement step: pop, insert circumcenter or split segment. */
void
yadaStepFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto mesh = nvm::PPtr<PMesh>(a.get<uint64_t>());
    TP tri = tx.ld(mesh->queueHead);
    if (tri.isNull())
        return;
    tx.st(mesh->queueHead, tx.ld(tri->qnext));
    tx.st(tri->inQueue, 0u);
    if (tx.ld(tri->alive) == 0) {
        tx.pfree(tri.raw());  // deferred free from a cavity deletion
        return;
    }
    if (!isBad(tx, mesh, tri))
        return;

    Pt v[3];
    triPts(tx, mesh, tri, v);
    Pt center = geom::circumcenter(v[0], v[1], v[2]);

    // Ruppert: if the circumcenter encroaches a boundary segment,
    // split that segment's midpoint instead of inserting the center.
    uint32_t encA = ~0u, encB = ~0u;
    for (auto s = tx.ld(mesh->segHead); !s.isNull();
         s = tx.ld(s->next)) {
        uint32_t sa = tx.ld(s->a);
        uint32_t sb = tx.ld(s->b);
        Pt pa = loadPt(tx, mesh, sa);
        Pt pb = loadPt(tx, mesh, sb);
        if (geom::encroaches(pa, pb, center)) {
            encA = sa;
            encB = sb;
            break;
        }
    }

    if (encA != ~0u) {
        Pt pa = loadPt(tx, mesh, encA);
        Pt pb = loadPt(tx, mesh, encB);
        Pt mid{(pa.x + pb.x) / 2, (pa.y + pb.y) / 2};
        // Locate the triangle owning this hull edge by walking to a
        // point nudged just inside the domain.
        Pt inward{mid.x + (pb.y - pa.y) * 1e-7,
                  mid.y - (pb.x - pa.x) * 1e-7};
        Located loc = locate(tx, mesh, inward, tri);
        uint32_t m = appendPoint(tx, mesh, mid);
        splitSegment(tx, mesh, encA, encB, m);
        // Re-queue `tri` (still bad) *before* inserting: if the
        // cavity swallows it, the queued flag defers its free to the
        // pop that drains it — touching it afterwards would be a
        // use-after-free.
        pushIfBad(tx, mesh, tri);
        insertPoint(tx, mesh, mid, m, loc.tri, encA, encB);
        return;
    }

    Located loc = locate(tx, mesh, center, tri);
    if (loc.exitEdge >= 0) {
        // Center escapes through a hull edge: split that segment.
        uint32_t ea = tx.ld(loc.tri->v[(loc.exitEdge + 1) % 3]);
        uint32_t eb = tx.ld(loc.tri->v[(loc.exitEdge + 2) % 3]);
        Pt pa = loadPt(tx, mesh, ea);
        Pt pb = loadPt(tx, mesh, eb);
        Pt mid{(pa.x + pb.x) / 2, (pa.y + pb.y) / 2};
        uint32_t m = appendPoint(tx, mesh, mid);
        splitSegment(tx, mesh, ea, eb, m);
        pushIfBad(tx, mesh, tri);  // see encroachment path above
        insertPoint(tx, mesh, mid, m, loc.tri, ea, eb);
        return;
    }
    uint32_t idx = appendPoint(tx, mesh, center);
    insertPoint(tx, mesh, center, idx, loc.tri, ~0u, ~0u);
}

const txn::FuncId kYadaCreate =
    txn::registerTxFunc("yada_create", yadaCreateFn);
const txn::FuncId kYadaInsert =
    txn::registerTxFunc("yada_insert", yadaInsertFn);
const txn::FuncId kYadaSeed =
    txn::registerTxFunc("yada_seed_queue", yadaSeedQueueFn);
const txn::FuncId kYadaStep =
    txn::registerTxFunc("yada_step", yadaStepFn);

}  // namespace

Yada::Yada(txn::Engine& eng, uint64_t rootOff, const Config& cfg)
    : eng_(eng), cfg_(cfg)
{
    if (rootOff != 0) {
        root_ = nvm::PPtr<PMesh>(rootOff);
        return;
    }
    uint64_t newRoot = 0;
    txn::run(eng_, kYadaCreate, cfg.maxPoints,
             static_cast<uint64_t>(cfg.angleConstraintDeg * 1000),
             reinterpret_cast<uint64_t>(&newRoot));
    root_ = nvm::PPtr<PMesh>(newRoot);

    // Generate the jittered interior grid and insert point by point
    // (each insertion is one transaction, like refinement steps).
    Xorshift rng(20260707);
    double step = 0.9 / static_cast<double>(cfg.gridSide - 1);
    for (uint64_t gy = 0; gy < cfg.gridSide; gy++) {
        for (uint64_t gx = 0; gx < cfg.gridSide; gx++) {
            double jx = (rng.nextDouble() - 0.5) * step * 0.5;
            double jy = (rng.nextDouble() - 0.5) * step * 0.5;
            double x = 0.05 + static_cast<double>(gx) * step + jx;
            double y = 0.05 + static_cast<double>(gy) * step + jy;
            txn::run(eng_, kYadaInsert, root_.raw(), x, y);
        }
    }
    txn::run(eng_, kYadaSeed, root_.raw());
}

bool
Yada::refineStep()
{
    if (!hasWork())
        return false;
    txn::run(eng_, kYadaStep, root_.raw());
    return true;
}

uint64_t
Yada::refineAll()
{
    uint64_t steps = 0;
    while (hasWork() && steps < cfg_.maxSteps &&
           pointCount() + 8 < cfg_.maxPoints) {
        refineStep();
        steps++;
    }
    return steps;
}

uint64_t
Yada::pointCount() const
{
    auto* pts = static_cast<const YPoints*>(
        eng_.rt.pool().at(root_->pointsOff));
    return pts->count;
}

bool
Yada::validate(bool requireQuality) const
{
    auto& pool = eng_.rt.pool();
    auto* pts =
        static_cast<YPoints*>(pool.at(root_->pointsOff));
    double threshold =
        static_cast<double>(root_->badThresholdMilliDeg) / 1000.0;

    std::unordered_set<uint64_t> seen;
    std::vector<const YTri*> stack;
    const YTri* start = root_->anyAlive.get();
    if (start == nullptr)
        return false;
    stack.push_back(start);
    seen.insert(root_->anyAlive.raw());
    uint64_t alive = 0;
    bool ok = true;
    while (!stack.empty()) {
        const YTri* t = stack.back();
        stack.pop_back();
        if (t->alive == 0) {
            ok = false;
            continue;
        }
        alive++;
        Pt v[3];
        for (int i = 0; i < 3; i++)
            v[i] = pts->data()[t->v[i]];
        if (geom::orient2d(v[0], v[1], v[2]) <= 0)
            ok = false;
        if (requireQuality &&
            geom::minAngleDeg(v[0], v[1], v[2]) < threshold - 1e-9) {
            ok = false;
        }
        for (int i = 0; i < 3; i++) {
            const YTri* n = t->nbr[i].get();
            if (n == nullptr)
                continue;
            // Neighbor symmetry: n must point back at t.
            bool back = false;
            for (int j = 0; j < 3; j++) {
                if (n->nbr[j].get() == t)
                    back = true;
            }
            if (!back)
                ok = false;
            if (seen.insert(t->nbr[i].raw()).second)
                stack.push_back(n);
        }
    }
    return ok && alive == root_->aliveTriangles;
}

}  // namespace cnvm::apps
