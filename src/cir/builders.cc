#include "cir/builders.h"

namespace cnvm::cir {

Function
buildListInsert()
{
    Function f("list_insert");
    int entry = f.addBlock("entry");

    ValueId lst = emitArg(f, entry, "lst");
    ValueId vbuf = emitArg(f, entry, "v");

    ValueId n = emitMalloc(f, entry, "n");
    ValueId nVal = emitGep(f, entry, n, 0, "n.val");
    ValueId v0 = emitLoad(f, entry, vbuf, "v[0]");
    emitStore(f, entry, nVal, v0, "n.val = v");

    ValueId hdPtr = emitGep(f, entry, lst, 8, "lst.hd");
    ValueId hd = emitLoad(f, entry, hdPtr, "old head");
    ValueId nNxt = emitGep(f, entry, n, 8, "n.nxt");
    emitStore(f, entry, nNxt, hd, "n.nxt = hd");
    emitStore(f, entry, hdPtr, n, "lst.hd = n (clobber)");
    return f;
}

Function
buildHashmapInsert()
{
    Function f("hashmap_insert");
    int entry = f.addBlock("entry");
    int loop = f.addBlock("chain_walk");
    int insert = f.addBlock("prepend");
    f.addEdge(entry, loop);
    f.addEdge(loop, loop);
    f.addEdge(loop, insert);

    ValueId map = emitArg(f, entry, "map");
    ValueId key = emitArg(f, entry, "key");
    // Bucket chosen by hash: unknown offset into the bucket array.
    ValueId bslot = emitGep(f, entry, map, -1, "bucket slot");
    ValueId head = emitLoad(f, entry, bslot, "bucket head");

    // Walk the chain comparing keys (reads only).
    ValueId curKeyPtr = emitGep(f, loop, head, 0, "cur.key");
    ValueId curKey = emitLoad(f, loop, curKeyPtr, "cur key");
    emitBinop(f, loop, curKey, "compare");
    ValueId nextPtr = emitGep(f, loop, head, 8, "cur.next");
    emitLoad(f, loop, nextPtr, "advance");

    ValueId n = emitMalloc(f, insert, "n");
    ValueId nKey = emitGep(f, insert, n, 0, "n.key");
    emitStore(f, insert, nKey, key, "n.key = key");
    ValueId nNext = emitGep(f, insert, n, 8, "n.next");
    emitStore(f, insert, nNext, head, "n.next = head");
    emitStore(f, insert, bslot, n, "bucket = n (clobber)");
    return f;
}

Function
buildSkiplistInsert(unsigned levels)
{
    Function f("skiplist_insert");
    int entry = f.addBlock("entry");
    int search = f.addBlock("search");
    int splice = f.addBlock("splice");
    f.addEdge(entry, search);
    f.addEdge(search, search);
    f.addEdge(search, splice);

    ValueId list = emitArg(f, entry, "list");
    emitArg(f, entry, "key");

    // Search walks towers (reads only).
    ValueId lvlPtr = emitGep(f, search, list, -1, "tower slot");
    ValueId nxt = emitLoad(f, search, lvlPtr, "next");
    emitBinop(f, search, nxt, "compare");

    ValueId n = emitMalloc(f, splice, "n");
    for (unsigned i = 0; i < levels; i++) {
        auto off = static_cast<int64_t>(16 + 8 * i);
        ValueId predSlot =
            emitGep(f, splice, list, off, "pred.next[i]");
        ValueId old = emitLoad(f, splice, predSlot, "old next");
        ValueId nNext = emitGep(f, splice, n, off, "n.next[i]");
        emitStore(f, splice, nNext, old, "n.next[i] = old");
        emitStore(f, splice, predSlot, n,
                  "pred.next[i] = n (clobber)");
    }
    // False candidates the refinement removes:
    // 1. shadowed — the count field is written twice; the second
    //    store must-aliases the first (dominating) one.
    ValueId countPtr = emitGep(f, splice, list, 8, "list.count");
    ValueId c = emitLoad(f, splice, countPtr, "count");
    ValueId c1 = emitBinop(f, splice, c, "count+1");
    emitStore(f, splice, countPtr, c1, "count = c+1 (clobber)");
    emitStore(f, splice, countPtr, c1, "count fixup (shadowed)");
    // 2. unexposed — a scratch field is written before and after a
    //    may-aliasing read; if the late store hits the read's
    //    location, the early (must-aliasing) store already did.
    ValueId scratch = emitGep(f, splice, list, 0, "list.scratch");
    emitStore(f, splice, scratch, c1, "scratch = x");
    ValueId maybe = emitGep(f, splice, list, -1, "maybe scratch");
    emitLoad(f, splice, maybe, "read maybe");
    emitStore(f, splice, scratch, c, "scratch again (unexposed)");
    return f;
}

Function
buildRbtreeInsert()
{
    Function f("rbtree_insert");
    int entry = f.addBlock("entry");
    int descend = f.addBlock("descend");
    int attach = f.addBlock("attach");
    int fixup = f.addBlock("fixup");
    int rotate = f.addBlock("rotate");
    int done = f.addBlock("done");
    f.addEdge(entry, descend);
    f.addEdge(descend, descend);
    f.addEdge(descend, attach);
    f.addEdge(attach, fixup);
    f.addEdge(fixup, rotate);
    f.addEdge(fixup, done);
    f.addEdge(rotate, fixup);

    ValueId tree = emitArg(f, entry, "tree");
    ValueId key = emitArg(f, entry, "key");
    ValueId rootPtr = emitGep(f, entry, tree, 0, "tree.root");
    ValueId cur = emitLoad(f, entry, rootPtr, "root");

    ValueId curKeyPtr = emitGep(f, descend, cur, 0, "cur.key");
    ValueId curKey = emitLoad(f, descend, curKeyPtr, "cur key");
    emitBinop(f, descend, curKey, "compare");
    ValueId childPtr = emitGep(f, descend, cur, -1, "left or right");
    emitLoad(f, descend, childPtr, "descend");

    ValueId z = emitMalloc(f, attach, "z");
    ValueId zKey = emitGep(f, attach, z, 0, "z.key");
    emitStore(f, attach, zKey, key, "z.key = key");
    ValueId parentChild = emitGep(f, attach, cur, -1, "parent child");
    emitLoad(f, attach, parentChild, "old child");
    emitStore(f, attach, parentChild, z, "parent.child = z (clobber)");

    // Fixup reads colors and rewrites them.
    ValueId colorPtr = emitGep(f, fixup, cur, 16, "cur.color");
    ValueId color = emitLoad(f, fixup, colorPtr, "color");
    ValueId newColor = emitBinop(f, fixup, color, "flip");
    emitStore(f, fixup, colorPtr, newColor, "cur.color (clobber)");

    // Rotation rewires three links that the fixup read.
    ValueId xRight = emitGep(f, rotate, cur, 8, "x.right");
    ValueId y = emitLoad(f, rotate, xRight, "y");
    ValueId yLeft = emitGep(f, rotate, y, 4, "y.left");
    ValueId t2 = emitLoad(f, rotate, yLeft, "t2");
    emitStore(f, rotate, xRight, t2, "x.right = t2 (clobber)");
    emitStore(f, rotate, yLeft, cur, "y.left = x (clobber)");
    // The root may be rewritten twice on the same path: the second
    // store is unexposed/shadowed relative to the first.
    emitStore(f, rotate, rootPtr, y, "root = y (clobber)");
    emitStore(f, rotate, rootPtr, y, "root again (shadowed)");

    emitLoad(f, done, rootPtr, "reload root");
    return f;
}

Function
buildBptreeInsert()
{
    Function f("bptree_insert");
    int entry = f.addBlock("entry");
    int descend = f.addBlock("descend");
    int shift = f.addBlock("shift");
    int place = f.addBlock("place");
    f.addEdge(entry, descend);
    f.addEdge(descend, descend);
    f.addEdge(descend, shift);
    f.addEdge(shift, shift);
    f.addEdge(shift, place);

    ValueId tree = emitArg(f, entry, "tree");
    ValueId key = emitArg(f, entry, "key");
    ValueId rootPtr = emitGep(f, entry, tree, 0, "tree.root");
    ValueId node = emitLoad(f, entry, rootPtr, "root");

    ValueId kidPtr = emitGep(f, descend, node, -1, "kids[i]");
    emitLoad(f, descend, kidPtr, "child");

    // Slot shifting: read keys[i], write keys[i+1] (both offsets
    // unknown, so everything may-alias — the conservative pass
    // instruments heavily here and refinement removes little, which
    // is why B+Tree gains least in Figure 13).
    ValueId slotFrom = emitGep(f, shift, node, -1, "keys[i]");
    ValueId k = emitLoad(f, shift, slotFrom, "keys[i]");
    ValueId slotTo = emitGep(f, shift, node, -1, "keys[i+1]");
    emitStore(f, shift, slotTo, k, "keys[i+1] = keys[i] (clobber)");
    ValueId valFrom = emitGep(f, shift, node, -1, "vals[i]");
    ValueId v = emitLoad(f, shift, valFrom, "vals[i]");
    ValueId valTo = emitGep(f, shift, node, -1, "vals[i+1]");
    emitStore(f, shift, valTo, v, "vals[i+1] = vals[i] (clobber)");

    ValueId slot = emitGep(f, place, node, -1, "keys[pos]");
    emitStore(f, place, slot, key, "keys[pos] = key (clobber)");
    ValueId nk = emitGep(f, place, node, 4, "node.nKeys");
    ValueId count = emitLoad(f, place, nk, "nKeys");
    ValueId count1 = emitBinop(f, place, count, "nKeys+1");
    emitStore(f, place, nk, count1, "nKeys = n+1 (clobber)");
    return f;
}

Function
buildMemcachedSet()
{
    Function f("memcached_set");
    int entry = f.addBlock("entry");
    int walk = f.addBlock("lookup");
    int update = f.addBlock("update_in_place");
    int prepend = f.addBlock("prepend");
    int done = f.addBlock("done");
    f.addEdge(entry, walk);
    f.addEdge(walk, walk);
    f.addEdge(walk, update);
    f.addEdge(walk, prepend);
    f.addEdge(update, done);
    f.addEdge(prepend, done);

    ValueId store = emitArg(f, entry, "store");
    ValueId key = emitArg(f, entry, "key");
    ValueId val = emitArg(f, entry, "value");
    // The bucket index comes from a pure hash helper (memcached
    // compiles its whole project through the pass, helpers included).
    emitCall(f, entry, "memcached_hash", Effect::pure, {key},
             "hash(key)");
    ValueId bslot = emitGep(f, entry, store, -1, "bucket");
    ValueId head = emitLoad(f, entry, bslot, "head");

    ValueId itKey = emitGep(f, walk, head, 0, "item.key");
    ValueId k = emitLoad(f, walk, itKey, "key bytes");
    emitBinop(f, walk, k, "memcmp");
    ValueId itNext = emitGep(f, walk, head, 8, "item.next");
    emitLoad(f, walk, itNext, "next item");

    // In-place update: value bytes + version (read-modify-write).
    ValueId itVal = emitGep(f, update, head, 24, "item.value");
    emitLoad(f, update, itVal, "old value");
    emitStore(f, update, itVal, val, "item.value (clobber)");
    ValueId verPtr = emitGep(f, update, head, 16, "item.version");
    ValueId ver = emitLoad(f, update, verPtr, "version");
    ValueId ver1 = emitBinop(f, update, ver, "version+1");
    emitStore(f, update, verPtr, ver1, "item.version (clobber)");

    // Prepend path: fresh item, bucket head is the clobbered input.
    ValueId n = emitMalloc(f, prepend, "item");
    ValueId nKey = emitGep(f, prepend, n, 0, "item.key");
    emitStore(f, prepend, nKey, key, "fresh key");
    ValueId nVal = emitGep(f, prepend, n, 24, "item.value");
    emitStore(f, prepend, nVal, val, "fresh value");
    ValueId nNext = emitGep(f, prepend, n, 8, "item.next");
    emitStore(f, prepend, nNext, head, "item.next = head");
    emitStore(f, prepend, bslot, n, "bucket = item (clobber)");
    // The stats counter is bumped twice on this path (hit + write):
    // the second bump is shadowed by the first.
    ValueId statPtr = emitGep(f, prepend, store, 8, "stats.writes");
    ValueId sc = emitLoad(f, prepend, statPtr, "stat");
    ValueId sc1 = emitBinop(f, prepend, sc, "stat+1");
    emitStore(f, prepend, statPtr, sc1, "stats (clobber)");
    emitStore(f, prepend, statPtr, sc1, "stats again (shadowed)");

    emitLoad(f, done, bslot, "reload");
    return f;
}

Function
buildVacationReserve(unsigned queries)
{
    Function f("vacation_reserve");
    int entry = f.addBlock("entry");
    f.addBlock("queries");  // placeholder index continuity
    int q0 = 1;
    // One block per query iteration (statically unrolled).
    std::vector<int> qb;
    qb.push_back(q0);
    for (unsigned i = 1; i < queries; i++)
        qb.push_back(f.addBlock("query"));
    int reserve = f.addBlock("reserve");
    f.addEdge(entry, qb[0]);
    for (unsigned i = 0; i + 1 < queries; i++)
        f.addEdge(qb[i], qb[i + 1]);
    f.addEdge(qb[queries - 1], reserve);

    ValueId mgr = emitArg(f, entry, "manager");
    emitArg(f, entry, "customer");

    // Each query descends a table (reads only).
    for (unsigned i = 0; i < queries; i++) {
        ValueId tbl = emitGep(f, qb[i], mgr, -1, "table node");
        ValueId item = emitLoad(f, qb[i], tbl, "item");
        ValueId pricePtr = emitGep(f, qb[i], item, 16, "item.price");
        ValueId price = emitLoad(f, qb[i], pricePtr, "price");
        emitBinop(f, qb[i], price, "max");
    }

    // Reserve: used++, prepend reservation to the customer list.
    ValueId itemPtr = emitGep(f, reserve, mgr, -1, "best item");
    ValueId item = emitLoad(f, reserve, itemPtr, "item");
    ValueId usedPtr = emitGep(f, reserve, item, 8, "item.used");
    ValueId used = emitLoad(f, reserve, usedPtr, "used");
    ValueId used1 = emitBinop(f, reserve, used, "used+1");
    emitStore(f, reserve, usedPtr, used1, "item.used (clobber)");

    ValueId resv = emitMalloc(f, reserve, "reservation");
    ValueId rid = emitGep(f, reserve, resv, 0, "resv.id");
    emitStore(f, reserve, rid, used1, "resv.id");
    ValueId custList = emitGep(f, reserve, mgr, 24, "cust.resv");
    ValueId oldList = emitLoad(f, reserve, custList, "old list");
    ValueId rNext = emitGep(f, reserve, resv, 8, "resv.next");
    emitStore(f, reserve, rNext, oldList, "resv.next = old");
    emitStore(f, reserve, custList, resv, "cust.resv (clobber)");
    return f;
}

Function
buildYadaStep()
{
    Function f("yada_step");
    int entry = f.addBlock("pop");
    int cavity = f.addBlock("cavity_walk");
    int retri = f.addBlock("retriangulate");
    int wire = f.addBlock("wire");
    f.addEdge(entry, cavity);
    f.addEdge(cavity, cavity);
    f.addEdge(cavity, retri);
    f.addEdge(retri, wire);
    f.addEdge(wire, wire);

    ValueId mesh = emitArg(f, entry, "mesh");
    ValueId headPtr = emitGep(f, entry, mesh, 0, "queue head");
    ValueId tri = emitLoad(f, entry, headPtr, "bad triangle");
    ValueId qnextPtr = emitGep(f, entry, tri, 32, "tri.qnext");
    ValueId qnext = emitLoad(f, entry, qnextPtr, "next in queue");
    emitStore(f, entry, headPtr, qnext, "queue head (clobber)");

    // Cavity walk: geometry reads + alive-flag clears.
    ValueId nbrPtr = emitGep(f, cavity, tri, -1, "tri.nbr[i]");
    ValueId nbr = emitLoad(f, cavity, nbrPtr, "neighbor");
    ValueId vPtr = emitGep(f, cavity, nbr, 0, "nbr vertices");
    ValueId v = emitLoad(f, cavity, vPtr, "vertex");
    emitBinop(f, cavity, v, "inCircle");
    ValueId alivePtr = emitGep(f, cavity, nbr, 12, "nbr.alive");
    emitLoad(f, cavity, alivePtr, "alive");
    emitStore(f, cavity, alivePtr, v, "nbr.alive = 0 (clobber)");

    // New triangles are fresh.
    ValueId nt = emitMalloc(f, retri, "new tri");
    ValueId ntV = emitGep(f, retri, nt, 0, "new verts");
    emitStore(f, retri, ntV, v, "fresh verts");
    ValueId cntPtr = emitGep(f, retri, mesh, 8, "mesh.alive count");
    ValueId cnt = emitLoad(f, retri, cntPtr, "count");
    ValueId cnt1 = emitBinop(f, retri, cnt, "count+new");
    emitStore(f, retri, cntPtr, cnt1, "mesh.count (clobber)");
    // Count adjusted a second time after wiring (shadowed).
    emitStore(f, retri, cntPtr, cnt1, "count fixup (shadowed)");

    // Wiring rewires external neighbors' back pointers.
    ValueId extPtr = emitGep(f, wire, nbr, -1, "ext.nbr[j]");
    emitLoad(f, wire, extPtr, "old back pointer");
    emitStore(f, wire, extPtr, nt, "ext.nbr[j] = new (clobber)");
    return f;
}

namespace {

/** Self-logging RMW helper: the caller owes nothing — the clobber
    is logged, the store flushed, and the exit fenced inside. */
Function
buildNvmBumpHelper()
{
    Function f("nvm_bump");
    int b = f.addBlock("entry");
    ValueId p = emitArg(f, b, "p");
    ValueId x = emitLoad(f, b, p, "old");
    ValueId y = emitBinop(f, b, x, "old+delta");
    emitClobberLog(f, b, p, "clobber_log p");
    emitStore(f, b, p, y, "bump (clobber)");
    emitFlush(f, b, p, "flush p");
    emitFence(f, b, "helper fence");
    return f;
}

/** Pure scalar helper (key mixing). */
Function
buildMixHelper()
{
    Function f("mix64");
    int b = f.addBlock("entry");
    ValueId v = emitArg(f, b, "v");
    emitBinop(f, b, v, "v * phi");
    return f;
}

Function
buildTxIncr()
{
    Function f("tx_incr");
    int b = f.addBlock("entry");
    ValueId root = emitArg(f, b, "root");
    ValueId counter = emitGep(f, b, root, 0, "root.counter");
    emitCall(f, b, "nvm_bump", Effect::writesNVM, {counter},
             "nvm_bump(root.counter)");
    return f;
}

Function
buildTxPush()
{
    Function f("tx_push");
    int b = f.addBlock("entry");
    ValueId root = emitArg(f, b, "root");
    ValueId v = emitArg(f, b, "v");
    ValueId h = emitCall(f, b, "mix64", Effect::pure, {v},
                         "mix64(v)");
    ValueId n = emitMalloc(f, b, "node");
    ValueId nVal = emitGep(f, b, n, 0, "node.value");
    emitStore(f, b, nVal, h, "node.value = mix64(v)");
    emitFlush(f, b, nVal, "flush node.value");
    ValueId headPtr = emitGep(f, b, root, 16, "root.head");
    ValueId head = emitLoad(f, b, headPtr, "old head");
    ValueId nNext = emitGep(f, b, n, 8, "node.next");
    emitStore(f, b, nNext, head, "node.next = head");
    emitFlush(f, b, nNext, "flush node.next");
    emitClobberLog(f, b, headPtr, "clobber_log root.head");
    emitStore(f, b, headPtr, n, "root.head = node (clobber)");
    emitFlush(f, b, headPtr, "flush root.head");
    ValueId sumPtr = emitGep(f, b, root, 8, "root.sum");
    emitCall(f, b, "nvm_bump", Effect::writesNVM, {sumPtr},
             "nvm_bump(root.sum)");
    emitFence(f, b, "commit fence");
    return f;
}

Function
buildTxPop()
{
    Function f("tx_pop");
    int entry = f.addBlock("entry");
    int pop = f.addBlock("pop");
    int done = f.addBlock("done");
    f.addEdge(entry, pop);
    f.addEdge(entry, done);
    f.addEdge(pop, done);

    ValueId root = emitArg(f, entry, "root");
    ValueId headPtr = emitGep(f, entry, root, 16, "root.head");
    ValueId head = emitLoad(f, entry, headPtr, "head");
    emitBinop(f, entry, head, "head == null?");

    ValueId nextPtr = emitGep(f, pop, head, 8, "head.next");
    ValueId next = emitLoad(f, pop, nextPtr, "head.next");
    emitClobberLog(f, pop, headPtr, "clobber_log root.head");
    emitStore(f, pop, headPtr, next, "root.head = next (clobber)");
    emitFlush(f, pop, headPtr, "flush root.head");
    ValueId sumPtr = emitGep(f, pop, root, 8, "root.sum");
    emitCall(f, pop, "nvm_bump", Effect::writesNVM, {sumPtr},
             "nvm_bump(root.sum)");
    emitFence(f, done, "commit fence");
    return f;
}

}  // namespace

IrModule
runtimeTxModule()
{
    IrModule m{"runtime_tx", {}};
    m.functions.push_back(buildNvmBumpHelper());
    m.functions.push_back(buildMixHelper());
    m.functions.push_back(buildTxIncr());
    m.functions.push_back(buildTxPush());
    m.functions.push_back(buildTxPop());
    return m;
}

std::vector<IrModule>
benchmarkModules(unsigned scale)
{
    std::vector<IrModule> mods;
    auto add = [&](const char* name, std::vector<Function> fns,
                   unsigned copies) {
        IrModule m{name, {}};
        for (unsigned c = 0; c < copies * scale; c++) {
            for (const auto& fn : fns)
                m.functions.push_back(fn);
        }
        mods.push_back(std::move(m));
    };
    // Data-structure benchmarks: only the pmem-access files are
    // compiled with the Clobber-NVM compiler (paper Section 5.10).
    add("bptree", {buildBptreeInsert()}, 2);
    add("hashmap", {buildHashmapInsert(), buildListInsert()}, 2);
    add("rbtree", {buildRbtreeInsert()}, 2);
    add("skiplist", {buildSkiplistInsert()}, 2);
    // Applications compile many more files through the pass.
    add("memcached",
        {buildMemcachedSet(), buildHashmapInsert(), buildListInsert()},
        8);
    add("vacation",
        {buildVacationReserve(), buildRbtreeInsert()}, 5);
    add("yada", {buildYadaStep(), buildBptreeInsert()}, 5);
    return mods;
}

}  // namespace cnvm::cir
