#include "cir/summaries.h"

#include <set>

#include "cir/clobber_pass.h"
#include "common/error.h"

namespace cnvm::cir {

BaseResolver::BaseResolver(const Function& f) : info_(f.numValues())
{
    for (const auto& block : f.blocks()) {
        for (const auto& instr : block.instrs) {
            if (instr.result == kNoValue)
                continue;
            Info& in = info_[instr.result];
            switch (instr.op) {
              case Op::arg:
                in.kind = Kind::param;
                in.param = numParams_++;
                in.root = instr.result;
                break;
              case Op::alloca_:
                in.kind = Kind::alloca_;
                in.root = instr.result;
                break;
              case Op::malloc_:
                in.kind = Kind::fresh;
                in.root = instr.result;
                break;
              case Op::gep:
                // Follows gep chains (offset 0 is the plain
                // pointer-copy idiom in this IR).
                in = info_[instr.value];
                break;
              default:
                // Loaded pointers, call results, scalars.
                in.kind = Kind::unknown;
                break;
            }
        }
    }
}

namespace {

/** One monotone transfer step for a single function. */
FunctionSummary
computeOne(const Function& f,
           const std::map<std::string, FunctionSummary>& sums)
{
    BaseResolver bases(f);
    FunctionSummary out;
    out.name = f.name();
    out.numParams = bases.numParams();
    out.params.resize(out.numParams);

    auto resolve = [&](const Instr& c) -> FunctionSummary {
        auto it = sums.find(c.callee);
        if (it != sums.end())
            return it->second;
        return ModuleSummaries::declaredSummary(
            c.effect, static_cast<int>(c.args.size()));
    };
    auto argEffect = [](const FunctionSummary& cs,
                        size_t j) -> ArgEffect {
        if (j < cs.params.size())
            return cs.params[j];
        return ArgEffect{};
    };

    // Pass 1: which allocas escape (address stored into memory or
    // handed to a callee that lets its parameter escape).
    std::set<ValueId> escapedAllocas;
    for (const auto& block : f.blocks()) {
        for (const auto& instr : block.instrs) {
            if (instr.op == Op::store && instr.value != kNoValue) {
                if (bases.kind(instr.value) ==
                    BaseResolver::Kind::alloca_)
                    escapedAllocas.insert(
                        bases.allocaRoot(instr.value));
            }
            if (instr.op == Op::call) {
                FunctionSummary cs = resolve(instr);
                for (size_t j = 0; j < instr.args.size(); j++) {
                    ValueId a = instr.args[j];
                    if (a == kNoValue)
                        continue;
                    if (argEffect(cs, j).escapes &&
                        bases.kind(a) ==
                            BaseResolver::Kind::alloca_)
                        escapedAllocas.insert(bases.allocaRoot(a));
                }
            }
        }
    }

    // Pass 2: accumulate effects.
    for (const auto& block : f.blocks()) {
        for (const auto& instr : block.instrs) {
            using K = BaseResolver::Kind;
            switch (instr.op) {
              case Op::load:
                switch (bases.kind(instr.ptr)) {
                  case K::param:
                    out.params[bases.paramIndex(instr.ptr)].read =
                        true;
                    break;
                  case K::unknown: out.readsUnknown = true; break;
                  default: break;  // alloca / fresh: local
                }
                break;
              case Op::store:
                switch (bases.kind(instr.ptr)) {
                  case K::param:
                    out.params[bases.paramIndex(instr.ptr)]
                        .written = true;
                    break;
                  case K::unknown: out.writesUnknown = true; break;
                  case K::alloca_:
                    // A store to stack storage whose address has
                    // escaped: observable volatile state.
                    if (escapedAllocas.count(
                            bases.allocaRoot(instr.ptr)))
                        out.volatileEscape = true;
                    break;
                  default: break;  // fresh: local
                }
                if (instr.value != kNoValue &&
                    bases.kind(instr.value) == K::param)
                    out.params[bases.paramIndex(instr.value)]
                        .escapes = true;
                break;
              case Op::clobberlog:
                if (bases.kind(instr.ptr) == K::param)
                    out.params[bases.paramIndex(instr.ptr)].logged =
                        true;
                break;
              case Op::flush:
                if (bases.kind(instr.ptr) == K::param)
                    out.params[bases.paramIndex(instr.ptr)]
                        .flushed = true;
                break;
              case Op::call: {
                FunctionSummary cs = resolve(instr);
                if (sums.find(instr.callee) == sums.end())
                    out.callsUnknown = true;
                out.deterministic =
                    out.deterministic && cs.deterministic;
                out.doesIO = out.doesIO || cs.doesIO;
                out.volatileEscape =
                    out.volatileEscape || cs.volatileEscape;
                out.readsUnknown =
                    out.readsUnknown || cs.readsUnknown;
                out.writesUnknown =
                    out.writesUnknown || cs.writesUnknown;
                out.callsUnknown =
                    out.callsUnknown || cs.callsUnknown;
                for (size_t j = 0; j < instr.args.size(); j++) {
                    ValueId a = instr.args[j];
                    if (a == kNoValue)
                        continue;
                    ArgEffect eff = argEffect(cs, j);
                    switch (bases.kind(a)) {
                      case K::param: {
                        ArgEffect& p =
                            out.params[bases.paramIndex(a)];
                        p.read = p.read || eff.read;
                        p.written = p.written || eff.written;
                        p.clobbered = p.clobbered || eff.clobbered;
                        p.logged = p.logged || eff.logged;
                        p.flushed = p.flushed || eff.flushed;
                        p.escapes = p.escapes || eff.escapes;
                        break;
                      }
                      case K::unknown:
                        out.readsUnknown =
                            out.readsUnknown || eff.read;
                        out.writesUnknown =
                            out.writesUnknown || eff.written;
                        break;
                      case K::alloca_:
                        if (eff.written &&
                            escapedAllocas.count(
                                bases.allocaRoot(a)))
                            out.volatileEscape = true;
                        break;
                      default: break;  // fresh: local
                    }
                }
                break;
              }
              default: break;
            }
        }
    }

    // A parameter the function may both read and overwrite carries a
    // potential hidden clobber: conservatively flow-insensitive (a
    // dominating write would discharge it, but the caller cannot see
    // paths, so we keep the bit and let `logged` excuse it).
    for (auto& p : out.params)
        p.clobbered = p.clobbered || (p.read && p.written);

    // fencesOnExit: every exit block contains a fence, or calls a
    // function that itself fences on exit.
    bool anyExit = false;
    bool allFenced = true;
    for (const auto& block : f.blocks()) {
        bool leaves = false;
        for (int s : block.succs)
            leaves = leaves || &f.blocks()[s] != &block;
        if (leaves)
            continue;
        anyExit = true;
        bool fenced = false;
        for (const auto& instr : block.instrs) {
            if (instr.op == Op::fence)
                fenced = true;
            if (instr.op == Op::call && resolve(instr).fencesOnExit)
                fenced = true;
        }
        allFenced = allFenced && fenced;
    }
    out.fencesOnExit = anyExit && allFenced;
    return out;
}

}  // namespace

ModuleSummaries::ModuleSummaries(const std::vector<Function>& fns)
{
    for (const auto& f : fns) {
        BaseResolver bases(f);
        FunctionSummary bottom;
        bottom.name = f.name();
        bottom.numParams = bases.numParams();
        bottom.params.resize(bottom.numParams);
        sums_[f.name()] = bottom;
    }
    constexpr int kMaxIterations = 64;
    bool changed = true;
    while (changed) {
        CNVM_CHECK(iterations_ < kMaxIterations,
                   "summary fixpoint diverged");
        iterations_++;
        changed = false;
        for (const auto& f : fns) {
            FunctionSummary next = computeOne(f, sums_);
            FunctionSummary& cur = sums_[f.name()];
            if (!(next == cur)) {
                cur = next;
                changed = true;
            }
        }
    }
}

const FunctionSummary*
ModuleSummaries::lookup(const std::string& callee) const
{
    auto it = sums_.find(callee);
    return it == sums_.end() ? nullptr : &it->second;
}

FunctionSummary
ModuleSummaries::callSummary(const Instr& call) const
{
    if (const FunctionSummary* s = lookup(call.callee))
        return *s;
    return declaredSummary(call.effect,
                           static_cast<int>(call.args.size()));
}

FunctionSummary
ModuleSummaries::declaredSummary(Effect e, int numParams)
{
    FunctionSummary s;
    s.name = "<external>";
    s.numParams = numParams;
    s.params.resize(numParams);
    s.callsUnknown = true;
    switch (e) {
      case Effect::pure:
        s.callsUnknown = false;  // fully described by the class
        break;
      case Effect::readsNVM:
        for (auto& p : s.params)
            p.read = true;
        s.readsUnknown = true;
        break;
      case Effect::writesNVM:
        // Could read, overwrite, and stash any pointer it is given,
        // and nothing proves it logs or flushes what it writes.
        for (auto& p : s.params) {
            p.read = true;
            p.written = true;
            p.clobbered = true;
            p.escapes = true;
        }
        s.readsUnknown = true;
        s.writesUnknown = true;
        break;
      case Effect::volatileWrite: s.volatileEscape = true; break;
      case Effect::nondet: s.deterministic = false; break;
      case Effect::io: s.doesIO = true; break;
    }
    return s;
}

std::vector<std::string>
ModuleSummaries::callees(const Function& f) const
{
    std::set<std::string> seen;
    std::vector<std::string> out;
    for (const auto& block : f.blocks()) {
        for (const auto& instr : block.instrs) {
            if (instr.op != Op::call)
                continue;
            if (sums_.count(instr.callee) &&
                seen.insert(instr.callee).second)
                out.push_back(instr.callee);
        }
    }
    return out;
}

ModuleSummaries
singleFunctionSummaries(const Function& f)
{
    std::vector<Function> fns;
    fns.push_back(f);
    return ModuleSummaries(fns);
}

}  // namespace cnvm::cir
