#include "cir/clobber_pass.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace cnvm::cir {

namespace {

std::vector<InstrRef>
uniqueSites(const Function& f,
            const std::vector<std::pair<InstrRef, InstrRef>>& pairs)
{
    std::set<std::pair<int, int>> seen;
    std::vector<InstrRef> out;
    for (const auto& [r, w] : pairs) {
        if (seen.emplace(w.block, w.index).second)
            out.push_back(w);
    }
    (void)f;
    return out;
}

}  // namespace

ClobberResult
analyzeClobbers(const Function& f)
{
    AliasAnalysis aa(f);
    Dominators dom(f);
    ClobberResult out;

    auto loads =
        f.collect([](const Instr& i) { return i.op == Op::load; });
    auto stores =
        f.collect([](const Instr& i) { return i.op == Op::store; });

    // Step 1: candidate input reads.
    for (const auto& r : loads) {
        bool dominatedBySameLocStore = false;
        for (const auto& s : stores) {
            if (dom.dominates(s, r) &&
                aa.alias(f.at(s).ptr, f.at(r).ptr) == Alias::must) {
                dominatedBySameLocStore = true;
                break;
            }
        }
        if (!dominatedBySameLocStore)
            out.candidateReads.push_back(r);
    }

    // Step 2: candidate clobber writes per candidate read.
    for (const auto& r : out.candidateReads) {
        for (const auto& s : stores) {
            if (dom.mayFollow(r, s) &&
                aa.alias(f.at(s).ptr, f.at(r).ptr) != Alias::no) {
                out.conservativePairs.emplace_back(r, s);
            }
        }
    }

    // Refinement: drop unexposed and shadowed false candidates.
    for (const auto& pair : out.conservativePairs) {
        const auto& [r, s] = pair;
        ValueId rp = f.at(r).ptr;
        ValueId sp = f.at(s).ptr;

        // Unexposed (Figure 5, left): a store dominating the read
        // must-aliases the candidate write.
        bool unexposed = false;
        for (const auto& w : stores) {
            if (w == s)
                continue;
            if (dom.dominates(w, r) &&
                aa.alias(f.at(w).ptr, sp) == Alias::must) {
                unexposed = true;
                break;
            }
        }
        if (unexposed) {
            out.removedUnexposed++;
            continue;
        }

        // Shadowed (Figure 5, right): an earlier clobber candidate W
        // of the same read dominates S, and the alias relations
        // guarantee W hits the input's location whenever S does:
        // either W must-aliases S, or W must-aliases the read.
        bool shadowed = false;
        for (const auto& w : stores) {
            if (w == s || !dom.dominates(w, s))
                continue;
            if (!dom.mayFollow(r, w))
                continue;  // not a clobber candidate of this read
            ValueId wp = f.at(w).ptr;
            if (aa.alias(wp, rp) == Alias::no)
                continue;
            if (aa.alias(wp, sp) == Alias::must ||
                aa.alias(wp, rp) == Alias::must) {
                shadowed = true;
                break;
            }
        }
        if (shadowed) {
            out.removedShadowed++;
            continue;
        }
        out.refinedPairs.push_back(pair);
    }

    out.conservativeSites = uniqueSites(f, out.conservativePairs);
    out.refinedSites = uniqueSites(f, out.refinedPairs);
    return out;
}

uint64_t
baselineTraversal(const Function& f)
{
    uint64_t sum = 0;
    for (const auto& block : f.blocks()) {
        for (const auto& instr : block.instrs) {
            sum = sum * 31 + static_cast<uint64_t>(instr.op) +
                  static_cast<uint64_t>(instr.result + 7);
        }
        for (int s : block.succs)
            sum = sum * 17 + static_cast<uint64_t>(s);
    }
    return sum;
}

std::string
ClobberResult::summary(const Function& f) const
{
    std::ostringstream os;
    os << f.name() << ": " << candidateReads.size()
       << " candidate reads, " << conservativeSites.size()
       << " conservative clobber sites -> " << refinedSites.size()
       << " after refinement (" << removedUnexposed << " unexposed, "
       << removedShadowed << " shadowed pairs removed)";
    return os.str();
}

}  // namespace cnvm::cir
