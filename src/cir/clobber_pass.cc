#include "cir/clobber_pass.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace cnvm::cir {

namespace {

std::vector<InstrRef>
uniqueSites(const Function& f,
            const std::vector<std::pair<InstrRef, InstrRef>>& pairs)
{
    std::set<std::pair<int, int>> seen;
    std::vector<InstrRef> out;
    for (const auto& [r, w] : pairs) {
        if (seen.emplace(w.block, w.index).second)
            out.push_back(w);
    }
    (void)f;
    return out;
}

/**
 * One memory access the pass reasons about. Loads and stores are
 * `exact` (the pointer names the accessed location); call-derived
 * accesses through an argument may touch any offset inside the
 * argument's object, so they are inexact and never must-alias.
 */
struct MemAccess {
    InstrRef at;
    ValueId ptr = kNoValue;
    bool exact = true;
};

Alias
accessAlias(const AliasAnalysis& aa, const MemAccess& a,
            const MemAccess& b)
{
    Alias v = aa.alias(a.ptr, b.ptr);
    if (v == Alias::must && (!a.exact || !b.exact))
        return Alias::may;
    return v;
}

bool
sameAccess(const MemAccess& a, const MemAccess& b)
{
    return a.at == b.at && a.ptr == b.ptr;
}

ClobberResult
analyzeClobbersImpl(const Function& f, const ModuleSummaries* sums)
{
    AliasAnalysis aa(f);
    Dominators dom(f);
    ClobberResult out;

    std::vector<MemAccess> reads;
    std::vector<MemAccess> writes;
    // (call site, arg) pairs whose callee reads-then-overwrites the
    // argument's memory: the call alone is a clobber site.
    std::vector<MemAccess> selfClobbers;
    for (int b = 0; b < static_cast<int>(f.blocks().size()); b++) {
        const auto& instrs = f.blocks()[b].instrs;
        for (int i = 0; i < static_cast<int>(instrs.size()); i++) {
            const Instr& in = instrs[i];
            InstrRef at{b, i};
            if (in.op == Op::load)
                reads.push_back({at, in.ptr, true});
            if (in.op == Op::store)
                writes.push_back({at, in.ptr, true});
            if (in.op == Op::call && sums) {
                FunctionSummary cs = sums->callSummary(in);
                for (size_t j = 0; j < in.args.size(); j++) {
                    ValueId a = in.args[j];
                    if (a == kNoValue || j >= cs.params.size())
                        continue;
                    const ArgEffect& eff = cs.params[j];
                    if (eff.read)
                        reads.push_back({at, a, false});
                    if (eff.written)
                        writes.push_back({at, a, false});
                    if (eff.clobbered)
                        selfClobbers.push_back({at, a, false});
                }
            }
        }
    }

    // Step 1: candidate input reads — reads not dominated by a
    // must-aliasing store of the same location.
    std::vector<MemAccess> candidates;
    for (const auto& r : reads) {
        bool dominatedBySameLocStore = false;
        for (const auto& s : writes) {
            if (dom.dominates(s.at, r.at) &&
                accessAlias(aa, s, r) == Alias::must) {
                dominatedBySameLocStore = true;
                break;
            }
        }
        if (!dominatedBySameLocStore) {
            candidates.push_back(r);
            out.candidateReads.push_back(r.at);
        }
    }

    // Step 2: candidate clobber writes per candidate read.
    std::vector<std::pair<MemAccess, MemAccess>> pairs;
    for (const auto& r : candidates) {
        for (const auto& s : writes) {
            if (dom.mayFollow(r.at, s.at) &&
                accessAlias(aa, s, r) != Alias::no) {
                pairs.emplace_back(r, s);
            }
        }
    }
    // A callee that reads-then-overwrites its argument clobbers the
    // input inside one call site: pair the site with itself.
    for (const auto& c : selfClobbers)
        pairs.emplace_back(c, c);
    for (const auto& [r, s] : pairs)
        out.conservativePairs.emplace_back(r.at, s.at);

    // Refinement: drop unexposed and shadowed false candidates. The
    // must-alias requirements mean only exact accesses can license a
    // removal, so call-derived candidates are conservatively kept.
    for (const auto& pair : pairs) {
        const auto& [r, s] = pair;

        // Unexposed (Figure 5, left): a store dominating the read
        // must-aliases the candidate write.
        bool unexposed = false;
        for (const auto& w : writes) {
            if (sameAccess(w, s))
                continue;
            if (dom.dominates(w.at, r.at) &&
                accessAlias(aa, w, s) == Alias::must) {
                unexposed = true;
                break;
            }
        }
        if (unexposed) {
            out.removedUnexposed++;
            continue;
        }

        // Shadowed (Figure 5, right): an earlier clobber candidate W
        // of the same read dominates S, and the alias relations
        // guarantee W hits the input's location whenever S does:
        // either W must-aliases S, or W must-aliases the read.
        bool shadowed = false;
        for (const auto& w : writes) {
            if (sameAccess(w, s) || !dom.dominates(w.at, s.at))
                continue;
            if (!dom.mayFollow(r.at, w.at))
                continue;  // not a clobber candidate of this read
            if (accessAlias(aa, w, r) == Alias::no)
                continue;
            if (accessAlias(aa, w, s) == Alias::must ||
                accessAlias(aa, w, r) == Alias::must) {
                shadowed = true;
                break;
            }
        }
        if (shadowed) {
            out.removedShadowed++;
            continue;
        }
        out.refinedPairs.emplace_back(r.at, s.at);
    }

    out.conservativeSites = uniqueSites(f, out.conservativePairs);
    out.refinedSites = uniqueSites(f, out.refinedPairs);
    return out;
}

}  // namespace

ClobberResult
analyzeClobbers(const Function& f)
{
    return analyzeClobbersImpl(f, nullptr);
}

ClobberResult
analyzeClobbers(const Function& f, const ModuleSummaries& sums)
{
    return analyzeClobbersImpl(f, &sums);
}

uint64_t
baselineTraversal(const Function& f)
{
    uint64_t sum = 0;
    for (const auto& block : f.blocks()) {
        for (const auto& instr : block.instrs) {
            sum = sum * 31 + static_cast<uint64_t>(instr.op) +
                  static_cast<uint64_t>(instr.result + 7);
        }
        for (int s : block.succs)
            sum = sum * 17 + static_cast<uint64_t>(s);
    }
    return sum;
}

std::string
ClobberResult::summary(const Function& f) const
{
    std::ostringstream os;
    os << f.name() << ": " << candidateReads.size()
       << " candidate reads, " << conservativeSites.size()
       << " conservative clobber sites -> " << refinedSites.size()
       << " after refinement (" << removedUnexposed << " unexposed, "
       << removedShadowed << " shadowed pairs removed)";
    return os.str();
}

}  // namespace cnvm::cir
