#include "cir/ir.h"

namespace cnvm::cir {

const char*
effectName(Effect e)
{
    switch (e) {
      case Effect::pure: return "pure";
      case Effect::readsNVM: return "reads-nvm";
      case Effect::writesNVM: return "writes-nvm";
      case Effect::volatileWrite: return "volatile-write";
      case Effect::nondet: return "nondeterministic";
      case Effect::io: return "io";
    }
    return "?";
}

ValueId
emitArg(Function& f, int block, const std::string& name)
{
    Instr i;
    i.op = Op::arg;
    i.name = name;
    return f.append(block, i);
}

ValueId
emitAlloca(Function& f, int block, const std::string& name)
{
    Instr i;
    i.op = Op::alloca_;
    i.name = name;
    return f.append(block, i);
}

ValueId
emitMalloc(Function& f, int block, const std::string& name)
{
    Instr i;
    i.op = Op::malloc_;
    i.name = name;
    return f.append(block, i);
}

ValueId
emitGep(Function& f, int block, ValueId base, int64_t offset,
        const std::string& name)
{
    Instr i;
    i.op = Op::gep;
    i.value = base;
    i.offset = offset;
    i.name = name;
    return f.append(block, i);
}

ValueId
emitLoad(Function& f, int block, ValueId ptr, const std::string& name)
{
    Instr i;
    i.op = Op::load;
    i.ptr = ptr;
    i.name = name;
    return f.append(block, i);
}

void
emitStore(Function& f, int block, ValueId ptr, ValueId value,
          const std::string& name)
{
    Instr i;
    i.op = Op::store;
    i.ptr = ptr;
    i.value = value;
    i.name = name;
    f.append(block, i);
}

ValueId
emitBinop(Function& f, int block, ValueId in, const std::string& name)
{
    Instr i;
    i.op = Op::binop;
    i.value = in;
    i.name = name;
    return f.append(block, i);
}

ValueId
emitCall(Function& f, int block, const std::string& callee,
         Effect effect, std::vector<ValueId> args,
         const std::string& name)
{
    Instr i;
    i.op = Op::call;
    i.callee = callee;
    i.effect = effect;
    i.args = std::move(args);
    i.name = name.empty() ? "call " + callee : name;
    return f.append(block, i);
}

void
emitFlush(Function& f, int block, ValueId ptr, const std::string& name)
{
    Instr i;
    i.op = Op::flush;
    i.ptr = ptr;
    i.name = name;
    f.append(block, i);
}

void
emitFence(Function& f, int block, const std::string& name)
{
    Instr i;
    i.op = Op::fence;
    i.name = name;
    f.append(block, i);
}

void
emitClobberLog(Function& f, int block, ValueId ptr,
               const std::string& name)
{
    Instr i;
    i.op = Op::clobberlog;
    i.ptr = ptr;
    i.name = name;
    f.append(block, i);
}

}  // namespace cnvm::cir
