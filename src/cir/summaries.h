/**
 * @file
 * Interprocedural analysis framework: call graph + bottom-up
 * per-function effect summaries.
 *
 * The clobber pass and the persistency lint were intraprocedural —
 * Op::call used to be opaque — so any helper call made them blind.
 * This module computes, for every function in a compilation unit, a
 * conservative summary of what the function may do to memory
 * reachable from each pointer parameter (mod/ref, hidden clobbers,
 * clobber_log / flush coverage, escapes) plus whole-function verdicts
 * (determinism, I/O, escaping volatile writes, exit fencing).
 *
 * Summaries are computed by an optimistic fixpoint: every function
 * starts with the bottom summary (no effects, deterministic) and
 * effects accumulate monotonically until nothing changes, which
 * handles recursion and mutual recursion soundly (least fixed point
 * of a monotone transfer). Calls to symbols not defined in the module
 * fall back to the conservative meaning of their declared
 * cir::Effect class.
 */
#ifndef CNVM_CIR_SUMMARIES_H
#define CNVM_CIR_SUMMARIES_H

#include <map>
#include <string>
#include <vector>

#include "cir/ir.h"

namespace cnvm::cir {

/**
 * Resolves every pointer value in a function to its base object:
 * a positional parameter, a fresh (malloc) allocation, stack
 * (alloca) storage, or unknown (loaded / call-returned pointers).
 * Follows gep chains and plain pointer copies.
 */
class BaseResolver {
 public:
    enum class Kind { param, fresh, alloca_, unknown };

    explicit BaseResolver(const Function& f);

    Kind kind(ValueId v) const { return info_[v].kind; }
    /** Positional parameter index; valid when kind() == param. */
    int paramIndex(ValueId v) const { return info_[v].param; }
    /** Defining alloca value; valid when kind() == alloca_. */
    ValueId allocaRoot(ValueId v) const { return info_[v].root; }
    /** Number of Op::arg instructions, in program order. */
    int numParams() const { return numParams_; }

 private:
    struct Info {
        Kind kind = Kind::unknown;
        int param = -1;
        ValueId root = kNoValue;
    };
    std::vector<Info> info_;
    int numParams_ = 0;
};

/** What a function may do to memory reachable from one parameter. */
struct ArgEffect {
    bool read = false;       ///< may load through it (input read)
    bool written = false;    ///< may store through it
    bool clobbered = false;  ///< may overwrite memory it also reads
    bool logged = false;     ///< clobber_log through it on some path
    bool flushed = false;    ///< flush through it on some path
    bool escapes = false;    ///< the pointer is stored into memory

    bool operator==(const ArgEffect&) const = default;
};

/** Conservative whole-function effect summary. */
struct FunctionSummary {
    std::string name;
    int numParams = 0;
    std::vector<ArgEffect> params;
    bool readsUnknown = false;   ///< loads through non-param bases
    bool writesUnknown = false;  ///< stores through non-param bases
    /** Writes volatile state observable outside the function: a
        store through an escaping alloca, or any reachable call with
        declared Effect::volatileWrite. */
    bool volatileEscape = false;
    bool deterministic = true;  ///< no nondet effect on any path
    bool doesIO = false;        ///< reaches an Effect::io call
    /** Every exit path ends in (or calls into) an sfence, so the
        caller need not fence after the call. */
    bool fencesOnExit = false;
    bool callsUnknown = false;  ///< calls a symbol not in the module

    bool operator==(const FunctionSummary&) const = default;
};

/**
 * Call-graph + summary store for one compilation unit (a set of
 * functions analyzed together; callees resolve by symbol name).
 */
class ModuleSummaries {
 public:
    explicit ModuleSummaries(const std::vector<Function>& fns);

    /** Summary of a defined function, or nullptr if unresolved. */
    const FunctionSummary* lookup(const std::string& callee) const;

    /** Summary for a call instruction: the callee's computed
        summary if defined in the module, else the conservative
        meaning of the call's declared effect class. */
    FunctionSummary callSummary(const Instr& call) const;

    /** Conservative summary implied by a declared effect class for
        an external callee taking `numParams` arguments. */
    static FunctionSummary declaredSummary(Effect e, int numParams);

    /** Direct callees of `f` present in the module (call-graph
        edge list; unresolved callees are omitted). */
    std::vector<std::string> callees(const Function& f) const;

    /** Fixpoint iterations taken (diagnostics / tests). */
    int iterations() const { return iterations_; }

 private:
    std::map<std::string, FunctionSummary> sums_;
    int iterations_ = 0;
};

/** Convenience: summaries over a single function (no callees). */
ModuleSummaries singleFunctionSummaries(const Function& f);

}  // namespace cnvm::cir

#endif  // CNVM_CIR_SUMMARIES_H
