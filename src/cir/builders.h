/**
 * @file
 * Mini-IR encodings of the benchmark transactions.
 *
 * The paper runs its compiler passes over the real C sources of the
 * four data structures and three applications; here each workload's
 * transaction bodies are encoded as cir functions with the same
 * memory-access structure (what the analysis consumes), so Figures 13
 * and 14 can replay the pass per workload.
 */
#ifndef CNVM_CIR_BUILDERS_H
#define CNVM_CIR_BUILDERS_H

#include <vector>

#include "cir/ir.h"

namespace cnvm::cir {

/** A compilation unit: one workload's transaction functions. */
struct IrModule {
    std::string name;
    std::vector<Function> functions;
};

/** Figure 2a's list insert (1 clobber site: the head pointer). */
Function buildListInsert();

/** Hashmap insert: bucket search loop + head prepend. */
Function buildHashmapInsert();

/**
 * Skiplist insert with `levels` statically-known tower levels: one
 * genuine clobber per level plus removable false candidates (the
 * paper reports 2 of 5 candidates removed, leaving 3 logged).
 */
Function buildSkiplistInsert(unsigned levels = 3);

/** RB-tree insert with a rotation: unexposed false candidates. */
Function buildRbtreeInsert();

/** B+Tree leaf insert: slot-shift loop with unknown offsets. */
Function buildBptreeInsert();

/** memcached set: lookup loop + in-place update / prepend branches. */
Function buildMemcachedSet();

/** vacation reservation: q query iterations + reserve updates. */
Function buildVacationReserve(unsigned queries = 4);

/** yada refinement step: cavity loop + retriangulation stores. */
Function buildYadaStep();

/**
 * The seven benchmark modules (bptree/hashmap/rbtree/skiplist +
 * memcached/vacation/yada). `scale` replicates the functions to model
 * larger compilation units (memcached compiles its whole project with
 * the Clobber-NVM compiler — paper Section 5.10).
 */
std::vector<IrModule> benchmarkModules(unsigned scale = 1);

/**
 * Mini-IR encodings of the runtime transaction bodies the lint
 * drives dynamically (lint_incr / lint_push / lint_pop), written
 * call-structured: the tx functions delegate the shared counter RMW
 * to a self-logging helper and key mixing to a pure helper, so the
 * interprocedural summaries are load-bearing. Bodies are
 * pre-instrumented (clobber_log + flush + fence); the summary-aware
 * persistency checker and the reexec verifier must both come back
 * clean on every function.
 */
IrModule runtimeTxModule();

}  // namespace cnvm::cir

#endif  // CNVM_CIR_BUILDERS_H
