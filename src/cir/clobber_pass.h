/**
 * @file
 * The clobber-write identification pass (paper Section 4.4).
 *
 * Step 1 — candidate input reads: every load not dominated by a
 * must-aliasing store (Figure 4, left).
 *
 * Step 2 — candidate clobber writes: for each candidate read, every
 * store that may execute after it and may alias it (Figure 4, right).
 *
 * Refinement — dependency-analysis propagation removing two classes
 * of false candidates (Figure 5):
 *  - *unexposed*: a store W dominating the read must-aliases the
 *    candidate write S — if S ever overwrote the read's location, W
 *    already wrote it first, so the read was never an input;
 *  - *shadowed*: an earlier candidate clobber write W dominates S and
 *    the alias relations guarantee that whenever S clobbers the
 *    input, W has already clobbered (and logged) it.
 *
 * A store site is instrumented (gets a clobber_log callback) iff it
 * survives in at least one (read, write) pair.
 */
#ifndef CNVM_CIR_CLOBBER_PASS_H
#define CNVM_CIR_CLOBBER_PASS_H

#include <string>
#include <utility>
#include <vector>

#include "cir/analysis.h"
#include "cir/ir.h"
#include "cir/summaries.h"

namespace cnvm::cir {

struct ClobberResult {
    std::vector<InstrRef> candidateReads;
    /** (input read, clobber write) pairs before refinement. */
    std::vector<std::pair<InstrRef, InstrRef>> conservativePairs;
    /** Pairs surviving refinement. */
    std::vector<std::pair<InstrRef, InstrRef>> refinedPairs;
    /** Unique store sites to instrument (pre / post refinement). */
    std::vector<InstrRef> conservativeSites;
    std::vector<InstrRef> refinedSites;
    int removedUnexposed = 0;
    int removedShadowed = 0;

    /** Human-readable summary (for the bench/report output). */
    std::string summary(const Function& f) const;
};

/** Run the full pass (conservative identification + refinement). */
ClobberResult analyzeClobbers(const Function& f);

/**
 * Summary-aware (interprocedural) variant: calls contribute memory
 * accesses through their pointer arguments, derived from the
 * callee's FunctionSummary (or its declared effect class when the
 * callee is not in the module). A call whose callee reads an
 * argument's memory acts as an input read of that pointer; one whose
 * callee writes it acts as a clobber write; a callee that both reads
 * and overwrites it makes the call site itself a clobber site. Call
 * accesses target unknown offsets inside the argument's object, so
 * they never participate in must-alias refinement (conservatively
 * kept).
 */
ClobberResult analyzeClobbers(const Function& f,
                              const ModuleSummaries& sums);

/**
 * The instrumentation baseline: walk the function once, as a plain
 * compile pipeline would. Used to measure the pass's compile-time
 * overhead (Figure 14).
 * @return an opaque checksum so the walk cannot be optimized away.
 */
uint64_t baselineTraversal(const Function& f);

}  // namespace cnvm::cir

#endif  // CNVM_CIR_CLOBBER_PASS_H
