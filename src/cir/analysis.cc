#include "cir/analysis.h"

#include "common/error.h"

namespace cnvm::cir {

AliasAnalysis::AliasAnalysis(const Function& f)
    : info_(f.numValues()), allocaBase_(f.numValues(), false)
{
    for (const auto& block : f.blocks()) {
        for (const auto& instr : block.instrs) {
            if (instr.result == kNoValue)
                continue;
            PtrInfo& pi = info_[instr.result];
            switch (instr.op) {
              case Op::arg:
                pi.kind = BaseKind::arg;
                pi.base = instr.result;
                pi.offsetKnown = true;
                break;
              case Op::alloca_:
              case Op::malloc_:
                pi.kind = BaseKind::fresh;
                pi.base = instr.result;
                pi.offsetKnown = true;
                allocaBase_[instr.result] = instr.op == Op::alloca_;
                break;
              case Op::gep: {
                const PtrInfo& base = info_[instr.value];
                pi = base;
                if (instr.offset < 0 || !base.offsetKnown) {
                    pi.offsetKnown = false;
                } else {
                    pi.offset = base.offset + instr.offset;
                }
                allocaBase_[instr.result] = allocaBase_[instr.value];
                break;
              }
              case Op::load:
                // A loaded pointer: unknown target, identified by the
                // SSA value (the same value reused is the same target).
                pi.kind = BaseKind::loaded;
                pi.base = instr.result;
                pi.offsetKnown = true;
                break;
              default:
                pi.kind = BaseKind::unknown;
                break;
            }
        }
    }
}

bool
AliasAnalysis::basedOnAlloca(ValueId p) const
{
    return allocaBase_[p];
}

Alias
AliasAnalysis::alias(ValueId p, ValueId q) const
{
    if (p == q)
        return Alias::must;
    const PtrInfo& a = info_[p];
    const PtrInfo& b = info_[q];

    if (a.kind == BaseKind::unknown || b.kind == BaseKind::unknown)
        return Alias::may;

    if (a.base == b.base) {
        if (a.offsetKnown && b.offsetKnown) {
            return a.offset == b.offset ? Alias::must : Alias::no;
        }
        return Alias::may;
    }

    // Distinct fresh allocations never alias anything pre-existing,
    // nor each other.
    if (a.kind == BaseKind::fresh &&
        (b.kind == BaseKind::fresh || b.kind == BaseKind::arg)) {
        return Alias::no;
    }
    if (b.kind == BaseKind::fresh && a.kind == BaseKind::arg)
        return Alias::no;

    // arg-vs-arg, arg-vs-loaded, loaded-vs-loaded, fresh-vs-loaded
    // (a loaded pointer could point into a just-published fresh
    // object): may alias.
    return Alias::may;
}

Dominators::Dominators(const Function& f) : f_(f)
{
    auto n = static_cast<int>(f.blocks().size());
    CNVM_CHECK(n > 0, "empty function");

    // Iterative dominator dataflow: dom(b) = {b} U intersect(preds).
    std::vector<std::vector<int>> preds(n);
    for (int b = 0; b < n; b++) {
        for (int s : f.blocks()[b].succs)
            preds[s].push_back(b);
    }
    dom_.assign(n, std::vector<bool>(n, true));
    dom_[0].assign(n, false);
    dom_[0][0] = true;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = 1; b < n; b++) {
            std::vector<bool> next(n, preds[b].empty() ? false : true);
            for (int p : preds[b]) {
                for (int i = 0; i < n; i++)
                    next[i] = next[i] && dom_[p][i];
            }
            next[b] = true;
            if (next != dom_[b]) {
                dom_[b] = next;
                changed = true;
            }
        }
    }

    // Post-dominators, by the same dataflow over the reversed CFG:
    // pdom(b) = {b} U intersect(succs). Exit blocks are those with no
    // successors; a pure self-loop (terminal spin) also terminates.
    std::vector<bool> isExit(n, false);
    for (int b = 0; b < n; b++) {
        bool leaves = false;
        for (int s : f.blocks()[b].succs)
            leaves = leaves || s != b;
        isExit[b] = !leaves;
    }
    pdom_.assign(n, std::vector<bool>(n, true));
    for (int b = 0; b < n; b++) {
        if (isExit[b]) {
            pdom_[b].assign(n, false);
            pdom_[b][b] = true;
        }
    }
    changed = true;
    while (changed) {
        changed = false;
        for (int b = n - 1; b >= 0; b--) {
            if (isExit[b])
                continue;
            std::vector<bool> next(n, true);
            for (int s : f.blocks()[b].succs) {
                for (int i = 0; i < n; i++)
                    next[i] = next[i] && pdom_[s][i];
            }
            next[b] = true;
            if (next != pdom_[b]) {
                pdom_[b] = next;
                changed = true;
            }
        }
    }

    // Block reachability closure (including cycles back to self).
    reach_.assign(n, std::vector<bool>(n, false));
    for (int b = 0; b < n; b++) {
        std::vector<int> stack{b};
        std::vector<bool> seen(n, false);
        while (!stack.empty()) {
            int cur = stack.back();
            stack.pop_back();
            for (int s : f.blocks()[cur].succs) {
                if (!reach_[b][s]) {
                    reach_[b][s] = true;
                    if (!seen[s]) {
                        seen[s] = true;
                        stack.push_back(s);
                    }
                }
            }
        }
    }
}

bool
Dominators::blockDominates(int a, int b) const
{
    return dom_[b][a];
}

bool
Dominators::dominates(const InstrRef& a, const InstrRef& b) const
{
    if (a.block == b.block)
        return a.index < b.index;
    return blockDominates(a.block, b.block);
}

bool
Dominators::blockPostDominates(int a, int b) const
{
    return pdom_[b][a];
}

bool
Dominators::mayFollow(const InstrRef& a, const InstrRef& b) const
{
    if (a.block == b.block && a.index < b.index)
        return true;
    return reach_[a.block][b.block];
}

bool
Dominators::alwaysFollows(const InstrRef& a, const InstrRef& b) const
{
    // Within a block, execution runs to the block's end: everything
    // after a executes.
    if (a.block == b.block)
        return b.index > a.index;
    return blockPostDominates(b.block, a.block);
}

}  // namespace cnvm::cir
